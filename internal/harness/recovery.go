package harness

import (
	"fmt"

	"ihc/internal/campaign"
	"ihc/internal/tablefmt"
	"ihc/internal/topology"
)

func init() {
	register(Experiment{ID: "recovery", Paper: "beyond the paper", Title: "Self-healing IHC: frontier with repair vs the static γ bound", Run: runRecovery})
}

// runRecovery sweeps the broken-link tolerance frontier with the
// self-healing layer enabled. The static masking bound is exact at γ
// broken links (the fault campaign finds violating placements there);
// deadline-based detection, NAK-driven retransmission, and
// Hamiltonian-cycle route patching must push the measured frontier
// strictly past γ, at a latency overhead the table reports.
func runRecovery(cfg Config) ([]*tablefmt.Table, error) {
	graphs := []*topology.Graph{topology.MustSquareTorus(4), topology.MustHypercube(4)}
	search := campaign.Search{Budget: 30, Samples: 15}
	if !cfg.Quick {
		graphs = append(graphs, topology.MustHypercube(6))
		search = campaign.Search{Budget: 60, Samples: 40}
	}

	front := tablefmt.New("Broken-link tolerance frontier with self-healing repair (violation = some pair undelivered after recovery)",
		"Network", "N", "γ (static bound)", "Repaired max safe t", "Beats static")
	activity := tablefmt.New("Repair activity per frontier point (sums over graded placements; partitioned placements screened out)",
		"Network", "t", "Placements", "Partitioned", "Timeouts", "NAKs", "Retrans", "Dead links", "Detours", "Overhead %")

	type result struct {
		g       *topology.Graph
		gamma   int
		maxSafe int
		reports []*campaign.RepairedReport
	}
	results, err := sweep(cfg, len(graphs), func(i int, _ *Env) (result, error) {
		g := graphs[i]
		x, err := newIHC(g)
		if err != nil {
			return result{}, err
		}
		gamma := x.Gamma()
		reports, maxSafe, err := campaign.RepairedFrontier(x, gamma+1, search, 12)
		if err != nil {
			return result{}, err
		}
		if maxSafe <= gamma {
			return result{}, fmt.Errorf("recovery: %s repaired frontier %d does not beat static bound γ=%d", g.Name(), maxSafe, gamma)
		}
		return result{g, gamma, maxSafe, reports}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		front.Addf(r.g.Name(), r.g.N(), r.gamma, r.maxSafe, r.maxSafe > r.gamma)
		for _, rep := range r.reports {
			activity.Addf(r.g.Name(), rep.T, rep.Placements, rep.PartitionedSkipped,
				rep.Timeouts, rep.Naks, rep.Retransmissions, rep.DeadLinks, rep.Detours,
				fmt.Sprintf("%.1f", rep.MeanOverheadPct))
		}
	}
	front.Note("the static frontier breaks at exactly γ; with repair, every connected placement at γ and γ+1 still delivers")
	activity.Note("overhead %% is the repaired run's finish time vs the fault-free baseline; fault-free placements cost 0")
	return []*tablefmt.Table{front, activity}, nil
}
