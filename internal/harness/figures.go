package harness

import (
	"fmt"

	"ihc/internal/baseline/ks"
	"ihc/internal/baseline/vsq"
	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/tablefmt"
	"ihc/internal/topology"
)

func init() {
	register(Experiment{ID: "fig1", Paper: "Fig. 1", Title: "Cut-through operation of a multi-flit packet", Run: runFig1})
	register(Experiment{ID: "fig3", Paper: "Figs. 2-3", Title: "Edge-disjoint Hamiltonian cycles in Q4 / SQ4", Run: runFig3})
	register(Experiment{ID: "fig5", Paper: "Figs. 4-5", Title: "C-wrapped hexagonal mesh and its three HCs", Run: runFig5})
	register(Experiment{ID: "fig6", Paper: "Fig. 6", Title: "Interleaved packet initiation pattern (η=3)", Run: runFig6})
	register(Experiment{ID: "fig7", Paper: "Fig. 7", Title: "Node architecture: all links used concurrently", Run: runFig7})
	register(Experiment{ID: "fig8", Paper: "Fig. 8", Title: "KS broadcast pattern profile on hex meshes", Run: runFig8})
	register(Experiment{ID: "fig9", Paper: "Fig. 9", Title: "VSQ broadcast pattern profile on square tori", Run: runFig9})
}

// runFig1 reproduces the Fig. 1 scenario: a packet of 10 flits spread
// across three nodes mid-flight. The trace shows the header advancing by
// α per node while the tail lags by the full transmission time.
func runFig1(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	g := topology.MustCycle(8)
	net, err := simnet.New(g, p)
	if err != nil {
		return nil, err
	}
	res, err := net.Run([]simnet.PacketSpec{{
		ID:    simnet.PacketID{Source: 0},
		Route: []topology.Node{0, 1, 2, 3},
		Flits: 10,
		Tee:   true,
	}}, simnet.Options{Trace: true})
	if err != nil {
		return nil, err
	}
	t := tablefmt.New("Fig. 1 — 10-flit packet cutting through nodes 1 and 2 (times in ticks)",
		"Hop", "Kind", "HeaderDeparts", "TailArrives")
	for _, hop := range res.Traces[simnet.PacketID{Source: 0}] {
		t.Addf(fmt.Sprintf("%d→%d", hop.From, hop.To), hop.Kind.String(), hop.HeaderDepart, hop.TailArrive)
	}
	t.Note("header advances α=%d per node; the 10-flit tail lags by 10α=%d — the packet is spread", p.Alpha, 10*p.Alpha)
	t.Note("across source, intermediate FIFOs, and receiver exactly as in the paper's Fig. 1")
	return []*tablefmt.Table{t}, nil
}

// renderCycles prints a decomposition with verification status.
func renderCycles(g *topology.Graph, cycles []hamilton.Cycle, cover bool) (*tablefmt.Table, error) {
	if err := hamilton.VerifyDecomposition(g, cycles, cover); err != nil {
		return nil, err
	}
	t := tablefmt.New(fmt.Sprintf("%s: %d edge-disjoint Hamiltonian cycles (verified)", g, len(cycles)),
		"HC", "Cycle")
	for i, c := range cycles {
		line := ""
		limit := len(c)
		if limit > 24 {
			limit = 24
		}
		for j := 0; j < limit; j++ {
			if j > 0 {
				line += " "
			}
			line += fmt.Sprintf("%d", c[j])
		}
		if limit < len(c) {
			line += fmt.Sprintf(" … (%d nodes)", len(c))
		}
		t.Addf(fmt.Sprintf("HC%d", i+1), line)
	}
	return t, nil
}

// runFig3 regenerates Fig. 3: the two edge-disjoint HCs of SQ4 (which is
// also Q4 redrawn as a 4x4 torus), plus the decompositions of larger
// hypercubes constructed by Theorem 1.
func runFig3(cfg Config) ([]*tablefmt.Table, error) {
	var out []*tablefmt.Table
	sq, err := hamilton.SquareTorus(4)
	if err != nil {
		return nil, err
	}
	t, err := renderCycles(topology.MustSquareTorus(4), sq, true)
	if err != nil {
		return nil, err
	}
	out = append(out, t)

	dims := []int{4, 6}
	if !cfg.Quick {
		dims = append(dims, 8, 10)
	}
	dims = append(dims, 3, 5, 7)
	sum := tablefmt.New("Theorem 1/2 — constructed hypercube decompositions (all verified)",
		"Cube", "N", "HCs", "Covers all edges")
	// Each dimension's construction and verification is independent (the
	// larger even cubes dominate the cost), so they share the pool.
	rows, err := sweep(cfg, len(dims), func(i int, _ *Env) (row, error) {
		m := dims[i]
		cycles, err := hamilton.Hypercube(m)
		if err != nil {
			return nil, err
		}
		if m%2 != 0 {
			return row{fmt.Sprintf("Q%d", m), 1 << m, len(cycles), "no (perfect matching left)"}, nil
		}
		if err := hamilton.VerifyDecomposition(topology.MustHypercube(m), cycles, true); err != nil {
			return nil, err
		}
		return row{fmt.Sprintf("Q%d", m), 1 << m, len(cycles), true}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		sum.Addf(r...)
	}
	out = append(out, sum)
	return out, nil
}

// runFig5 regenerates Figs. 4-5: the C-wrapped hex mesh structure and its
// three direction Hamiltonian cycles.
func runFig5(cfg Config) ([]*tablefmt.Table, error) {
	m := 3
	g := topology.MustHexMesh(m)
	cycles, err := hamilton.HexMesh(m)
	if err != nil {
		return nil, err
	}
	t, err := renderCycles(g, cycles, true)
	if err != nil {
		return nil, err
	}
	steps := topology.HexSteps(m)
	t.Note("H%d: N=%d, C-wrap address steps +1, +%d, +%d (each coprime with N ⇒ each direction is a HC)",
		m, g.N(), steps[1], steps[2])
	return []*tablefmt.Table{t}, nil
}

// runFig6 regenerates Fig. 6: which nodes initiate packets in which stage
// along one directed HC for η=3.
func runFig6(cfg Config) ([]*tablefmt.Table, error) {
	g := topology.MustSquareTorus(3) // 9 nodes, divisible by η=3
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		return nil, err
	}
	x, err := core.New(g, cycles)
	if err != nil {
		return nil, err
	}
	const eta = 3
	pattern, err := x.InitiationPattern(0, eta)
	if err != nil {
		return nil, err
	}
	c := x.DirectedCycle(0)
	t := tablefmt.New("Fig. 6 — nodes initiating packets in one directed HC (η=3)",
		"Position (ID_j)", "Node", "Initiates in stage")
	for i, v := range c {
		t.Addf(i, v, pattern[i])
	}
	t.Note("every η-th node along the cycle initiates in the same stage — the interleaving distance")
	return []*tablefmt.Table{t}, nil
}

// runFig7 demonstrates the Fig. 7 node architecture: a node can drive all
// of its receivers and transmitters simultaneously, so γ packets through
// one node finish as fast as one.
func runFig7(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	g := topology.MustHypercube(3) // node 0 has 3 in-links and 3 out-links
	net, err := simnet.New(g, p)
	if err != nil {
		return nil, err
	}
	// Three packets cut through node 0 simultaneously, each on its own
	// receiver/transmitter pair.
	specs := []simnet.PacketSpec{
		{ID: simnet.PacketID{Source: 1}, Route: []topology.Node{1, 0, 2}},
		{ID: simnet.PacketID{Source: 2, Channel: 1}, Route: []topology.Node{2, 0, 4}},
		{ID: simnet.PacketID{Source: 4, Channel: 2}, Route: []topology.Node{4, 0, 1}},
	}
	res, err := net.Run(specs, simnet.Options{})
	if err != nil {
		return nil, err
	}
	single := p.TauS + p.Alpha + p.PacketTime()
	t := tablefmt.New("Fig. 7 — all receivers and transmitters of one node operate concurrently",
		"Packets through node 0", "Makespan", "Single-packet time", "Contentions")
	t.Addf(len(specs), res.Finish, single, res.Contentions)
	if res.Finish != single || res.Contentions != 0 {
		return nil, fmt.Errorf("fig7: concurrent node use broken: makespan %d (single %d), %d contentions",
			res.Finish, single, res.Contentions)
	}
	t.Note("three simultaneous cut-throughs through one node cost the same as one — the HARTS-style")
	t.Note("architecture the IHC algorithm assumes (and the degree-independence of its run time)")
	return []*tablefmt.Table{t}, nil
}

// runFig8 regenerates Fig. 8's content: the per-direction KS pattern
// profile (store-and-forwards and cut-throughs on the longest path) as a
// function of hex mesh size.
func runFig8(cfg Config) ([]*tablefmt.Table, error) {
	sizes := []int{2, 3, 4, 5}
	if !cfg.Quick {
		sizes = append(sizes, 6, 7, 8)
	}
	t := tablefmt.New("Fig. 8 — KS pattern per-path profile vs paper (3 s&f + 2m-5 cut-throughs)",
		"H_m", "N", "Max chain depth (s&f)", "Paper s&f", "Max hops", "Paper hops (2m-2)")
	rows, err := sweep(cfg, len(sizes), func(i int, _ *Env) (row, error) {
		m := sizes[i]
		b := ks.MustNew(m, 0)
		depth, hops := chainProfileKS(b)
		return row{fmt.Sprintf("H%d", m), b.N, depth, 3, hops, 2*m - 2}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("reconstruction: the original pattern exists only as a figure; ours keeps the Θ(1) s&f and")
	t.Note("Θ(√N) cut-through shape that Table II's KS-ATA row relies on")
	return []*tablefmt.Table{t}, nil
}

func chainProfileKS(b *ks.Broadcast) (maxDepth, maxHops int) {
	for _, ch := range b.Chains {
		d := 1
		for parent := ch.Parent; parent >= 0; parent = b.Chains[parent].Parent {
			d++
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	for dir := 0; dir < 6; dir++ {
		for v := 1; v < b.N; v++ {
			if h := len(b.PathTo(dir, topology.Node(v))) - 1; h > maxHops {
				maxHops = h
			}
		}
	}
	return maxDepth, maxHops
}

// runFig9 regenerates Fig. 9's content for the VSQ pattern.
func runFig9(cfg Config) ([]*tablefmt.Table, error) {
	sizes := []int{3, 4, 5, 6}
	if !cfg.Quick {
		sizes = append(sizes, 8, 12, 16)
	}
	t := tablefmt.New("Fig. 9 — VSQ pattern per-path profile vs paper (3 s&f + 2√N-6 cut-throughs)",
		"SQ_m", "N", "Max chain depth (s&f)", "Paper s&f", "Max hops", "Paper hops (2m-3)")
	rows, err := sweep(cfg, len(sizes), func(i int, _ *Env) (row, error) {
		m := sizes[i]
		b := vsq.MustNew(m, 0)
		maxDepth := 0
		for _, ch := range b.Chains {
			d := 1
			for parent := ch.Parent; parent >= 0; parent = b.Chains[parent].Parent {
				d++
			}
			if d > maxDepth {
				maxDepth = d
			}
		}
		maxHops := 0
		for dir := 0; dir < 4; dir++ {
			for v := 1; v < m*m; v++ {
				if h := len(b.PathTo(dir, topology.Node(v))) - 1; h > maxHops {
					maxHops = h
				}
			}
		}
		return row{fmt.Sprintf("SQ%d", m), m * m, maxDepth, 3, maxHops, 2*m - 3}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("our explicit comb uses one fewer s&f on the tooth paths and one extra hop on the wrap leg")
	return []*tablefmt.Table{t}, nil
}
