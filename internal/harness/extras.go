package harness

import (
	"fmt"
	"strings"

	"ihc/internal/campaign"
	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/hamilton"
	"ihc/internal/model"
	"ihc/internal/reliable"
	"ihc/internal/sched"
	"ihc/internal/simnet"
	"ihc/internal/tablefmt"
	"ihc/internal/topology"
	"ihc/internal/wormhole"
)

func init() {
	register(Experiment{ID: "theorem4", Paper: "Theorem 4", Title: "Optimality of IHC with η=μ=1", Run: runTheorem4})
	register(Experiment{ID: "overlap", Paper: "Sec. VI-A", Title: "Modified IHC: overlapped stages save (μ-1)²α", Run: runOverlap})
	register(Experiment{ID: "headline", Paper: "Sec. VI-A", Title: "Headline numbers: 68.7 billion packets in under 2 ms", Run: runHeadline})
	register(Experiment{ID: "crossover", Paper: "Sec. VI-A", Title: "Crossovers: where IHC stops winning", Run: runCrossover})
	register(Experiment{ID: "reliability", Paper: "Sec. I/IV", Title: "Fault tolerance of the γ-copy delivery", Run: runReliability})
	register(Experiment{ID: "load", Paper: "Sec. VI", Title: "IHC under background traffic ρ (between Tables II and IV)", Run: runLoad})
	register(Experiment{ID: "utilization", Paper: "Sec. IV", Title: "Link utilization μ/η trade-off", Run: runUtilization})
	register(Experiment{ID: "wormhole", Paper: "Sec. IV", Title: "Wormhole deadlock and Dally-Seitz virtual channels", Run: runWormhole})
}

func newIHC(g *topology.Graph) (*core.IHC, error) {
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		return nil, err
	}
	return core.New(g, cycles)
}

// runTheorem4 verifies the optimality theorem: measured IHC time with
// η=μ=1 equals the lower bound τ_S+(N-1)α on every topology family.
func runTheorem4(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	p.Mu = 1
	mp := cfg.modelParams()
	mp.Mu = 1
	graphs := []*topology.Graph{topology.MustHypercube(4), topology.MustSquareTorus(5), topology.MustHexMesh(3)}
	if !cfg.Quick {
		graphs = append(graphs, topology.MustHypercube(8), topology.MustSquareTorus(12), topology.MustHexMesh(5))
	}
	t := tablefmt.New("Theorem 4 — IHC with η=μ=1 meets the lower bound τ_S+(N-1)α exactly",
		"Network", "N", "Lower bound", "Measured", "Match")
	rows, err := sweep(cfg, len(graphs), func(i int, env *Env) (row, error) {
		g := graphs[i]
		x, err := newIHC(g)
		if err != nil {
			return nil, err
		}
		res, err := x.Run(core.Config{Eta: 1, Params: p, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
		if err != nil {
			return nil, err
		}
		cfg.addEvents(res.Events)
		bound := model.OptimalATATime(mp, g.N())
		if res.Finish != bound {
			return nil, fmt.Errorf("theorem4: %s measured %d != bound %d", g.Name(), res.Finish, bound)
		}
		return row{g.Name(), g.N(), bound, res.Finish, match(res.Finish, bound)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("the bound: γN(N-1) packets spread over N nodes' γ links each carrying N-1 packets of α")
	return []*tablefmt.Table{t}, nil
}

// runOverlap measures the modified IHC algorithm: stage i+1 starting
// (μ-1)α before stage i completes, reverse stage order, still
// contention-free, saving exactly (η-1)(μ-1)α.
func runOverlap(cfg Config) ([]*tablefmt.Table, error) {
	g := topology.MustHypercube(4)
	if !cfg.Quick {
		g = topology.MustHypercube(6)
	}
	x, err := newIHC(g)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New(fmt.Sprintf("Modified IHC on %s — overlapped stages (η=μ)", g.Name()),
		"μ=η", "Plain", "Overlapped", "Saving", "(μ-1)²α", "Contentions")
	p := cfg.params()
	mus := []int{1, 2, 4}
	rows, err := sweep(cfg, len(mus), func(i int, env *Env) (row, error) {
		mu := mus[i]
		pm := p
		pm.Mu = mu
		plain, err := x.Run(core.Config{Eta: mu, Params: pm, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
		if err != nil {
			return nil, err
		}
		over, err := x.Run(core.Config{Eta: mu, Params: pm, Overlap: true, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
		if err != nil {
			return nil, err
		}
		cfg.addEvents(plain.Events + over.Events)
		want := simnet.Time((mu-1)*(mu-1)) * pm.Alpha
		if plain.Finish-over.Finish != want || over.Contentions != 0 {
			return nil, fmt.Errorf("overlap: μ=%d saving %d != %d or contended", mu, plain.Finish-over.Finish, want)
		}
		return row{mu, plain.Finish, over.Finish, plain.Finish - over.Finish, want, over.Contentions}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	return []*tablefmt.Table{t}, nil
}

// runHeadline reproduces the paper's quoted numbers with Dally's 20 ns
// cut-through time and τ_S = 0.5 ms: ATA on Q10 and on a 64K-node Q16,
// "over 68.7 billion packets sent and received in under 2 ms per stage
// window". The analytic values are cross-checked by simulation on Q10
// (Q16's 68.7e9 packet-hops are left to the model, as in the paper).
func runHeadline(cfg Config) ([]*tablefmt.Table, error) {
	t := tablefmt.New("Headline — IHC with η=μ=2, α=20 ns, τ_S=0.5 ms (1 tick = 1 ns)",
		"Network", "N", "Packets γN(N-1)", "Model total", "Per stage (less τ_S)", "Paper quotes")
	quotes := map[string]string{
		"Q10": "2τ_S + 0.02 ms per stage",
		"Q16": "2τ_S + 1.31 ms; 68.7e9 pkts in 1.81 ms",
	}
	for _, h := range model.Headlines() {
		perStage := h.TimeLessTau / 2
		t.Add(h.Name, fmt.Sprintf("%d", h.N), fmt.Sprintf("%.3g", float64(h.Packets)),
			ns(h.Time), ns(perStage), quotes[h.Name])
	}
	t.Note("the paper's '0.02 ms'/'1.31 ms' are per-stage times less startup: 2(N-2)α/2; with")
	t.Note("τ_S=0.5 ms the 64K-cube total is dominated by the two startups, matching '1.81 ms'")
	t.Note("for the transfer part (1.31 ms) plus one 0.5 ms startup")

	if !cfg.Quick {
		// Simulate Q10 end-to-end and check the model exactly.
		p := simnet.Params{TauS: 500_000, Alpha: 20, Mu: 2}
		x, err := newIHC(topology.MustHypercube(10))
		if err != nil {
			return nil, err
		}
		res, err := x.Run(core.Config{Eta: 2, Params: p, SkipCopies: true})
		if err != nil {
			return nil, err
		}
		hp := model.HeadlineParams()
		want := model.IHCBest(hp, 1024, 2)
		v := tablefmt.New("Headline cross-check — Q10 simulated at 1 tick = 1 ns",
			"Measured", "Model", "Match", "Deliveries", "Contentions")
		v.Addf(ns(res.Finish), ns(want), match(res.Finish, want), res.Deliveries, res.Contentions)
		if res.Finish != want || res.Contentions != 0 {
			return nil, fmt.Errorf("headline: Q10 measured %d != model %d (contentions %d)", res.Finish, want, res.Contentions)
		}
		return []*tablefmt.Table{t, v}, nil
	}
	return []*tablefmt.Table{t}, nil
}

// runCrossover sweeps the interleaving distance η and reports where IHC
// stops beating each alternative, against the paper's closed-form bound
// η <= min{log2 N - 1, 2√((N-1)/3) - 2, 2√N - 3}; and the τ_S condition
// against FRS.
func runCrossover(cfg Config) ([]*tablefmt.Table, error) {
	mp := cfg.modelParams()
	n := 1 << 6
	if !cfg.Quick {
		n = 1 << 10
	}
	sqM := 8
	hexM := 5
	if !cfg.Quick {
		sqM, hexM = 32, 19
	}
	bound := model.MaxEtaBeatingCutThroughBaselines(n)
	t := tablefmt.New(fmt.Sprintf("Crossover — largest η where IHC (N=%d) still beats each baseline (model)", n),
		"Baseline", "Crossover η (computed)", "Paper bound term")
	find := func(other simnet.Time) int {
		eta := 0
		for e := 1; e <= n; e++ {
			if model.IHCBest(mp, n, e) < other {
				eta = e
			} else {
				break
			}
		}
		return eta
	}
	t.Addf("VRS-ATA", find(model.VRSATABest(mp, n)), fmt.Sprintf("log2 N - 1 = %d", model.Log2(n)-1))
	t.Addf("KS-ATA", find(model.KSATABest(mp, hexM)), fmt.Sprintf("2sqrt((N-1)/3)-2 ≈ %d (hex N=%d)", 2*hexM-2, topology.HexMeshSize(hexM)))
	t.Addf("VSQ-ATA", find(model.VSQATABest(mp, sqM)), fmt.Sprintf("2sqrt(N)-3 = %d (torus N=%d)", 2*sqM-3, sqM*sqM))
	t.Addf("all cut-through", bound, "min of the three")
	t.Note("crossover η values exceed the paper's bound terms because the bounds compare per-broadcast")
	t.Note("path lengths while the full formulas multiply the baselines by N; the paper's point — η can")
	t.Note("grow to ~log N before IHC loses its lead — is what the computed columns confirm")

	// FRS condition: τ_S >= μ²α/2 at η=μ.
	f := tablefmt.New("IHC vs FRS at η=μ — the τ_S >= μ²α/2 condition", "τ_S", "μ²α/2", "Condition", "IHC beats FRS (model)")
	for _, tau := range []simnet.Time{10, 39, 40, 100, 1000} {
		pm := mp
		pm.TauS = tau
		cond := model.IHCBeatsFRS(pm)
		wins := model.IHCBest(pm, n, pm.Mu) < model.FRSBest(pm, n)
		f.Addf(tau, simnet.Time(pm.Mu*pm.Mu)*pm.Alpha/2, cond, wins)
	}
	return []*tablefmt.Table{t, f}, nil
}

// runReliability measures delivery correctness under node faults: signed
// vs unsigned voting, crash vs corrupt vs Byzantine, fault counts up to
// and beyond the Dolev / signed bounds.
func runReliability(cfg Config) ([]*tablefmt.Table, error) {
	g := topology.MustSquareTorus(4)
	trials := int64(10)
	if !cfg.Quick {
		g = topology.MustHexMesh(3)
		trials = 25
	}
	x, err := newIHC(g)
	if err != nil {
		return nil, err
	}
	kr := reliable.NewKeyring(g.N(), 77)
	gamma := x.Gamma()
	t := tablefmt.New(
		fmt.Sprintf("Reliability on %s — fraction of fault-free pairs delivered correctly (avg over %d fault placements)",
			g.Name(), trials),
		"Faults t", "Kind", "Unsigned", "Signed", "Bounds")
	bounds := fmt.Sprintf("Dolev %d / signed %d", reliable.DolevBound(gamma, g.N()), reliable.SignedBound(gamma))
	type cell struct {
		kind    fault.Kind
		tFaults int
	}
	var cells []cell
	for _, kind := range []fault.Kind{fault.Crash, fault.Corrupt, fault.Byzantine} {
		for _, tFaults := range []int{1, 2, gamma - 1, gamma + 1} {
			cells = append(cells, cell{kind, tFaults})
		}
	}
	// Each (kind, fault-count) cell averages over its own deterministic
	// fault placements and reads the shared IHC instance and keyring
	// read-only, so the cells fan out across the pool independently.
	rows, err := sweep(cfg, len(cells), func(i int, _ *Env) (row, error) {
		c := cells[i]
		var su, ss float64
		for seed := int64(0); seed < trials; seed++ {
			plan, err := fault.RandomNodeFaults(g.N(), c.tFaults, c.kind, seed*31+int64(c.tFaults))
			if err != nil {
				return row{}, err
			}
			ou, err := reliable.EvaluateIHC(x, plan, false, nil)
			if err != nil {
				return row{}, err
			}
			os, err := reliable.EvaluateIHC(x, plan, true, kr)
			if err != nil {
				return row{}, err
			}
			su += ou.CorrectFraction()
			ss += os.CorrectFraction()
		}
		return row{c.tFaults, c.kind.String(), su / float64(trials), ss / float64(trials), bounds}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("a single fault is always tolerated (it blocks one direction of one HC per cycle pair);")
	t.Note("signed voting never decides wrongly — it only loses pairs whose every cycle path is cut")

	front, err := adversarialFrontier(cfg)
	if err != nil {
		return nil, err
	}
	return []*tablefmt.Table{t, front}, nil
}

// adversarialFrontier runs the campaign adversary search over a few
// (topology, signedness, domain) series and tabulates the measured
// tolerance frontier: the largest t with no violating placement found
// and the smallest t where one was found (shrunk to a 1-minimal,
// engine-confirmed counterexample).
func adversarialFrontier(cfg Config) (*tablefmt.Table, error) {
	graphs := []*topology.Graph{topology.MustSquareTorus(4)}
	search := campaign.Search{Budget: 600, Samples: 200, CrossCheck: 251}
	if !cfg.Quick {
		graphs = append(graphs, topology.MustHexMesh(3))
		search = campaign.Search{Budget: 50000, Samples: 4000, CrossCheck: 997}
	}
	type series struct {
		label  string
		signed bool
		domain campaign.Domain
		kind   fault.Kind
		tMax   func(gamma int) int
	}
	all := []series{
		{"noisy links, unsigned", false, campaign.DomainLinks, fault.Corrupt, func(g int) int { return (g + 1) / 2 }},
		{"noisy links, signed", true, campaign.DomainLinks, fault.Corrupt, func(g int) int { return g }},
		{"crash nodes, unsigned", false, campaign.DomainNodes, fault.Crash, func(int) int { return 3 }},
	}
	type job struct {
		x  *core.IHC
		s  series
		tm int
	}
	var jobs []job
	for _, g := range graphs {
		x, err := newIHC(g)
		if err != nil {
			return nil, err
		}
		for _, s := range all {
			jobs = append(jobs, job{x, s, s.tMax(x.Gamma())})
		}
	}
	t := tablefmt.New("Adversarial tolerance frontier — worst-case fault placement per series",
		"Network", "Series", "Paper bound", "Max safe t", "Min broken t", "Placements", "Counterexample")
	rows, err := sweep(cfg, len(jobs), func(i int, _ *Env) (row, error) {
		j := jobs[i]
		f, err := campaign.RunFrontier(campaign.Point{
			X: j.x, Signed: j.s.signed, Domain: j.s.domain, Kind: j.s.kind, Seed: 1,
		}, search, j.tm)
		if err != nil {
			return nil, err
		}
		placements := 0
		for _, rep := range f.Reports {
			placements += rep.Placements
		}
		broken, cex := "none", "-"
		if f.MinBroken > 0 {
			broken = fmt.Sprintf("%d", f.MinBroken)
			last := f.Reports[len(f.Reports)-1]
			cex = strings.Join(last.Counterexample, " ")
		}
		return row{f.Topo, j.s.label, f.Bound, f.MaxSafe, broken, placements, cex}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("links are the domain where the bounds are exact (a faulty link touches at most one of a")
	t.Note("pair's γ arc-disjoint copies); the node bounds do not survive adversarial placement, since")
	t.Note("an interior node lies on γ/2 of a pair's routes — see cmd/faultcamp for the full campaign")
	return t, nil
}

// runLoad sweeps the background utilization ρ and shows measured IHC time
// moving from the Table II best case toward the Table IV worst case.
func runLoad(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	mp := cfg.modelParams()
	g := topology.MustSquareTorus(4)
	if !cfg.Quick {
		g = topology.MustSquareTorus(8)
	}
	x, err := newIHC(g)
	if err != nil {
		return nil, err
	}
	eta := p.Mu
	best := model.IHCBest(mp, g.N(), eta)
	worst := model.IHCWorst(mp, g.N(), eta)
	t := tablefmt.New(fmt.Sprintf("IHC on %s under background load (η=μ=%d)", g.Name(), eta),
		"ρ", "Measured", "vs best", "Cut-throughs kept", "BgBlocked hops")
	rhos := []float64{0, 0.2, 0.5, 0.8}
	rows, err := sweep(cfg, len(rhos), func(i int, env *Env) (row, error) {
		rho := rhos[i]
		pr := p
		pr.Rho = rho
		pr.Seed = 4242
		res, err := x.Run(core.Config{Eta: eta, Params: pr, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
		if err != nil {
			return nil, err
		}
		cfg.addEvents(res.Events)
		if rho == 0 && res.Finish != best {
			return nil, fmt.Errorf("load: ρ=0 measured %d != best %d", res.Finish, best)
		}
		total := x.Gamma() * g.N() * (g.N() - 2)
		return row{fmt.Sprintf("%.1f", rho), res.Finish, ratio(res.Finish, best),
			fmt.Sprintf("%.1f%%", 100*float64(res.CutThroughs)/float64(total)), res.BgBlocked}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Addf("(best)", best, "1.0x", "100%", 0)
	t.Addf("(worst bound)", worst, ratio(worst, best), "0%", "-")
	t.Note("the general-ρ execution falls between the Table II and Table IV forms, as the paper states")
	return []*tablefmt.Table{t}, nil
}

// runUtilization verifies the μ/η link-utilization trade-off: larger η
// leaves proportionally more capacity to other traffic during the
// broadcast.
func runUtilization(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	g := topology.MustHypercube(4)
	if !cfg.Quick {
		g = topology.MustHypercube(6)
	}
	x, err := newIHC(g)
	if err != nil {
		return nil, err
	}
	t := tablefmt.New(fmt.Sprintf("Link utilization of the IHC broadcast on %s (μ=%d)", g.Name(), p.Mu),
		"η", "Measured utilization", "μ/η", "Static peak concurrency", "Time")
	links := 2 * g.M()
	etas := []int{2, 4, 8, 16}
	rows, err := sweep(cfg, len(etas), func(i int, env *Env) (row, error) {
		eta := etas[i]
		res, err := x.Run(core.Config{Eta: eta, Params: p, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
		if err != nil {
			return nil, err
		}
		cfg.addEvents(res.Events)
		specs, _, err := x.StaticSchedule(core.Config{Eta: eta, Params: p})
		if err != nil {
			return nil, err
		}
		ivs := sched.IdealIntervals(p, specs)
		return row{eta, fmt.Sprintf("%.3f", res.Utilization(links)), fmt.Sprintf("%.3f", float64(p.Mu)/float64(eta)),
			sched.MaxConcurrency(ivs), res.Finish}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("utilization tracks μ/η (the steady-state fraction each link is held by broadcast packets);")
	t.Note("doubling η halves the load on normal traffic at the cost of doubling broadcast time")
	return []*tablefmt.Table{t}, nil
}

// runWormhole reproduces the Section IV wormhole discussion: dedicated
// η=μ operation needs no virtual channels; oversubscribed rings deadlock
// on one channel; Dally & Seitz's dateline virtual channels restore
// progress.
func runWormhole(cfg Config) ([]*tablefmt.Table, error) {
	n := 12
	if !cfg.Quick {
		n = 32
	}
	g := topology.MustCycle(n)
	t := tablefmt.New(
		fmt.Sprintf("Wormhole deadlock study on a %d-ring (flit-level model)", n),
		"Scenario", "VCs", "Dateline", "Outcome", "Steps", "Peak blocked")
	type scenario struct {
		name     string
		eta, mu  int
		vcs      int
		dateline bool
	}
	for _, sc := range []scenario{
		{"IHC spacing η=μ", 2, 2, 1, false},
		{"η=μ=1 (full ring rotates)", 1, 1, 1, false},
		{"oversubscribed η<μ", 1, 2, 1, false},
		{"oversubscribed, 2 VCs no dateline", 1, 2, 2, false},
		{"oversubscribed, Dally-Seitz VCs", 1, 2, 2, true},
	} {
		net, err := wormhole.New(g, sc.vcs)
		if err != nil {
			return nil, err
		}
		var packets []wormhole.Packet
		id := 0
		for s := 0; s < n; s += sc.eta {
			route := make([]topology.Node, n)
			for i := range route {
				route[i] = topology.Node((s + i) % n)
			}
			dl := -1
			if sc.dateline {
				dl = (n - s) % n
			}
			packets = append(packets, wormhole.Packet{ID: id, Route: route, Flits: sc.mu, Dateline: dl})
			id++
		}
		res, err := net.Run(packets, 1_000_000)
		if err != nil {
			return nil, err
		}
		outcome := "completed"
		if res.Deadlocked {
			outcome = fmt.Sprintf("DEADLOCK (%d-cycle wait)", len(res.WaitCycle))
		}
		t.Addf(sc.name, sc.vcs, sc.dateline, outcome, res.Steps, res.MaxQueued)
	}
	t.Note("the η >= μ interleaving is itself the deadlock-avoidance mechanism in dedicated mode;")
	t.Note("with other traffic, one Dally-Seitz dateline channel pair per link suffices (Section IV)")
	return []*tablefmt.Table{t}, nil
}
