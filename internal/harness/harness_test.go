package harness

import (
	"strings"
	"testing"

	"ihc/internal/simnet"
)

// Every registered experiment must run clean in quick mode and produce
// non-empty, renderable tables. The experiments contain their own
// internal assertions (exact model matches, zero contentions, etc.), so
// an error here is a real reproduction failure.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true}
	exps := All()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Paper, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				s := tab.String()
				if len(s) < 20 {
					t.Fatalf("%s rendered suspiciously short table: %q", e.ID, s)
				}
				if !strings.Contains(s, "\n") {
					t.Fatalf("%s table has no rows", e.ID)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("table2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs/All mismatch")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	p := cfg.params()
	if p.Alpha != 20 || p.TauS != 100 || p.Mu != 2 || p.D != 37 {
		t.Fatalf("default params = %+v", p)
	}
	custom := Config{Params: simnet.Params{TauS: 7, Alpha: 3, Mu: 1}}
	if custom.params().TauS != 7 {
		t.Fatalf("custom params ignored")
	}
	// A partially set Params keeps every given field; only the fields
	// whose zero value is invalid (α, μ) fall back to defaults. The seed
	// bug replaced the whole struct with defaults whenever Alpha was 0.
	partial := Config{Params: simnet.Params{TauS: 7}}.params()
	if partial.TauS != 7 {
		t.Fatalf("partial params: TauS = %d, want 7 kept", partial.TauS)
	}
	if partial.Alpha != 20 || partial.Mu != 2 {
		t.Fatalf("partial params: Alpha/Mu = %d/%d, want defaults 20/2", partial.Alpha, partial.Mu)
	}
	if partial.D != 0 {
		t.Fatalf("partial params: D = %d, want explicit 0 kept", partial.D)
	}
	noAlpha := Config{Params: simnet.Params{TauS: 50, Mu: 3, D: 11}}.params()
	if noAlpha.TauS != 50 || noAlpha.Mu != 3 || noAlpha.D != 11 || noAlpha.Alpha != 20 {
		t.Fatalf("partial params without alpha = %+v", noAlpha)
	}
	mp := cfg.modelParams()
	if mp.TauS != 100 || mp.Alpha != 20 {
		t.Fatalf("model params = %+v", mp)
	}
}

func TestHelperFormatting(t *testing.T) {
	if match(10, 10) != "exact" {
		t.Fatal("match(10,10)")
	}
	if !strings.Contains(match(11, 10), "+1") {
		t.Fatalf("match(11,10) = %q", match(11, 10))
	}
	if ns(500) != "500 ns" || !strings.Contains(ns(2_500), "µs") || !strings.Contains(ns(3_000_000), "ms") {
		t.Fatalf("ns formatting: %q %q %q", ns(500), ns(2_500), ns(3_000_000))
	}
}
