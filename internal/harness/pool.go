package harness

// The parallel sweep executor. Every experiment in this package is a
// sweep over independent (topology, η, params) points, and every point
// runs on a fresh simnet.Network (the engine documents that link state
// persists across Run calls on one Network, so sharing one across
// goroutines would be both a data race and a correctness bug). That
// independence makes the whole suite embarrassingly parallel: sweep()
// fans points out across a bounded worker pool and merges the results
// back in input order, and RunAll() does the same across whole
// experiments in the registry's stable ID order — so the rendered output
// is byte-identical to a sequential run regardless of worker count.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ihc/internal/observe"
	"ihc/internal/simnet"
	"ihc/internal/tablefmt"
)

// ErrCanceled is returned by sweep points that were skipped because
// the Config's Cancel channel closed before they ran.
var ErrCanceled = errors.New("harness: run canceled")

// RunStats accumulates observable execution counters across a batch of
// experiment runs and sweep points. All updates are atomic, so one
// RunStats may be shared by every goroutine of a parallel sweep; the
// summed per-run wall-clock compared against elapsed time is what makes
// a parallel speedup directly observable.
type RunStats struct {
	runs     atomic.Int64
	failures atomic.Int64
	events   atomic.Int64
	wall     atomic.Int64 // summed per-run wall-clock, nanoseconds
}

// record logs one completed run or sweep point.
func (s *RunStats) record(wall time.Duration, err error) {
	s.runs.Add(1)
	s.wall.Add(int64(wall))
	if err != nil {
		s.failures.Add(1)
	}
}

// AddEvents credits simulator events processed by a run.
func (s *RunStats) AddEvents(n int64) { s.events.Add(n) }

// Runs returns the number of completed runs/sweep points.
func (s *RunStats) Runs() int64 { return s.runs.Load() }

// Failures returns the number of runs that ended in error.
func (s *RunStats) Failures() int64 { return s.failures.Load() }

// Events returns the total simulator events processed.
func (s *RunStats) Events() int64 { return s.events.Load() }

// Wall returns the per-run wall-clock summed over all runs; with W
// workers saturated this exceeds elapsed time by up to a factor of W.
func (s *RunStats) Wall() time.Duration { return time.Duration(s.wall.Load()) }

// Summary renders the counters in one line.
func (s *RunStats) Summary() string {
	msg := fmt.Sprintf("%d runs in %v summed run time, %.3g simulator events",
		s.Runs(), s.Wall().Round(time.Millisecond), float64(s.Events()))
	if f := s.Failures(); f > 0 {
		msg += fmt.Sprintf(", %d failed", f)
	}
	return msg
}

// workers resolves the effective worker-pool width. A raw trace sink
// is inherently single-stream, so tracing forces sequential execution
// regardless of the configured width — the exported stream is then the
// engine's deterministic event order, every time. When within-run
// sharding is on (EngineWorkers > 1), the across-run budget is divided
// by it: the product of the two widths, not their sum, is what lands on
// the machine, and the caller's Workers (or GOMAXPROCS) is the budget
// for that product.
func (c Config) workers() int {
	if c.Trace != nil {
		return 1
	}
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if c.EngineWorkers > 1 {
		w /= c.EngineWorkers
		if w < 1 {
			w = 1
		}
	}
	return w
}

// engineWorkers resolves the per-run sharding width experiments should
// pass into core.Config/simnet.Options (0 = sequential engine).
func (c Config) engineWorkers() int {
	if c.EngineWorkers > 1 {
		return c.EngineWorkers
	}
	return 0
}

// Env is the execution environment a sweep worker hands to every point
// it runs: reusable simulator working memory plus the observability
// sink the point should attach to its simulation runs (nil when no
// sink is configured — the engine's fast path).
type Env struct {
	Scratch *simnet.Scratch
	Obs     simnet.Observer

	metrics *observe.Metrics // this worker's private aggregator, absorbed at drain
}

// newEnv builds one worker's environment from the run Config.
func newEnv(cfg Config) *Env {
	env := &Env{Scratch: simnet.NewScratch()}
	var obs []simnet.Observer
	if cfg.Trace != nil {
		obs = append(obs, cfg.Trace)
	}
	if cfg.Metrics != nil {
		env.metrics = observe.NewMetrics()
		obs = append(obs, env.metrics)
	}
	env.Obs = observe.Tee(obs...)
	return env
}

// close merges the worker's private metrics into the shared aggregate.
// Merging is commutative and associative over whole runs, so the final
// snapshot is identical for every worker count and drain order.
func (e *Env) close(cfg Config) {
	if e.metrics != nil {
		cfg.Metrics.Absorb(e.metrics)
	}
}

// addEvents credits simulator events to the run's stats collector, when
// one is attached.
func (c Config) addEvents(n int64) {
	if c.Stats != nil {
		c.Stats.AddEvents(n)
	}
}

// sweep runs fn(0..n-1) — the independent points of one experiment sweep
// — on a bounded pool of cfg.workers() goroutines and returns the
// results in index order, so callers produce output identical to a
// sequential loop. Each worker goroutine owns one Env (simulator
// scratch plus, when configured, a private metrics sink absorbed into
// cfg.Metrics when the worker drains), handed to every point it runs;
// points that do not simulate simply ignore it. Each point is timed
// into cfg.Stats. On failure the error of the lowest-indexed failing
// point is returned, matching what a sequential loop would have
// surfaced first.
func sweep[T any](cfg Config, n int, fn func(i int, env *Env) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		env := newEnv(cfg)
		defer env.close(cfg)
		for i := 0; i < n; i++ {
			out[i], errs[i] = runPoint(cfg, i, env, fn)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := newEnv(cfg) // per-worker: never shared across goroutines
			defer env.close(cfg)
			for i := range idx {
				out[i], errs[i] = runPoint(cfg, i, env, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func runPoint[T any](cfg Config, i int, env *Env, fn func(int, *Env) (T, error)) (T, error) {
	select {
	case <-cfg.Cancel:
		var zero T
		return zero, ErrCanceled
	default:
	}
	start := time.Now()
	v, err := fn(i, env)
	if cfg.Stats != nil {
		cfg.Stats.record(time.Since(start), err)
	}
	return v, err
}

// row is one rendered table row: the cells passed to tablefmt.Addf.
type row []interface{}

// sweepRows is sweep specialized to experiments whose points each
// produce exactly one table row.
func sweepRows(cfg Config, points []func(env *Env) (row, error)) ([]row, error) {
	return sweep(cfg, len(points), func(i int, env *Env) (row, error) { return points[i](env) })
}

// Report is one experiment's outcome in a batch run.
type Report struct {
	Experiment
	Tables []*tablefmt.Table
	Err    error
	Wall   time.Duration
}

// RunAll executes every registered experiment on the Config's worker
// pool and returns the reports in the registry's stable ID order — the
// same order, and therefore byte-identical rendered output, as running
// the experiments one at a time.
func RunAll(cfg Config) []Report { return RunExperiments(All(), cfg) }

// RunExperiments executes the given experiments on the Config's worker
// pool, returning reports in input order. Experiments themselves fan
// their internal sweep points across the same pool width; failures are
// reported per experiment rather than aborting the batch.
func RunExperiments(exps []Experiment, cfg Config) []Report {
	reports := make([]Report, len(exps))
	workers := cfg.workers()
	if workers > len(exps) {
		workers = len(exps)
	}
	runOne := func(i int) {
		e := exps[i]
		select {
		case <-cfg.Cancel:
			reports[i] = Report{Experiment: e, Err: ErrCanceled}
			return
		default:
		}
		start := time.Now()
		tables, err := e.Run(cfg)
		reports[i] = Report{Experiment: e, Tables: tables, Err: err, Wall: time.Since(start)}
	}
	if workers <= 1 {
		for i := range exps {
			runOne(i)
		}
		return reports
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return reports
}
