// Package harness regenerates every table and figure of the paper's
// evaluation: it runs the IHC algorithm and the baseline ATA reliable
// broadcast algorithms on the simulator, evaluates the closed-form
// model, and renders paper-vs-measured comparisons. Each experiment is
// registered with the id of the paper artifact it reproduces (Table I-IV,
// Fig. 1-9, Theorem 4, plus the headline numbers, crossover analysis, and
// reliability study).
package harness

import (
	"fmt"
	"sort"

	"ihc/internal/model"
	"ihc/internal/observe"
	"ihc/internal/simnet"
	"ihc/internal/tablefmt"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks network sizes so the full suite runs in seconds
	// (used by tests); the default exercises the largest practical
	// sizes.
	Quick bool
	// Params are the timing parameters; the zero value selects the
	// defaults (τ_S=100, α=20, μ=2, D=37 ticks). A partially set Params
	// keeps every field given and defaults only α and μ, whose zero
	// values are invalid — see simnet.Params.Defaulted.
	Params simnet.Params
	// Workers bounds the pool that fans independent experiment runs and
	// sweep points across goroutines, each on a fresh simnet.Network.
	// 0 selects GOMAXPROCS; 1 forces sequential execution. Results are
	// merged in stable order, so output is identical for every value.
	Workers int
	// EngineWorkers shards each individual simulation run across that
	// many goroutines (simnet.Options.EngineWorkers). The two widths
	// multiply — EngineWorkers goroutines inside each of up to Workers
	// concurrent runs — so the across-run pool budget is divided by
	// EngineWorkers to keep total goroutine pressure at the configured
	// level: within-run parallelism pays off on few large runs, the
	// across-run pool on many small ones. 0 or 1 selects the sequential
	// engine; results are byte-identical for every value.
	EngineWorkers int
	// Stats, when non-nil, accumulates per-run wall-clock and simulator
	// event counters (atomically) across all concurrent runs.
	Stats *RunStats
	// Metrics, when non-nil, aggregates the observability metrics of
	// every simulation the experiments run: each sweep worker feeds a
	// private observe.Metrics sink (no locking on the hot path) that is
	// absorbed into this shared aggregate when the worker drains.
	// Aggregation is merge-order independent, so the final snapshot is
	// identical for every worker count.
	Metrics *observe.Shared
	// Trace, when non-nil, receives the raw per-hop observer stream of
	// every simulation (e.g. an observe.JSONL or observe.ChromeTrace
	// exporter). A trace sink is single-stream: it forces the worker
	// pool to width 1 so the stream is the engine's deterministic
	// sequential order.
	Trace simnet.Observer
	// Cancel, when non-nil, stops the batch between sweep points once
	// it is closed: in-flight points finish, queued ones return
	// ErrCanceled. Wire a signal-bound context's Done() channel here
	// for interruptible command-line runs.
	Cancel <-chan struct{}
}

// params returns the effective timing parameters.
func (c Config) params() simnet.Params { return c.Params.Defaulted() }

func (c Config) modelParams() model.Params {
	p := c.params()
	return model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	ID    string // e.g. "table2", "fig6", "theorem4"
	Paper string // the artifact reproduced, e.g. "Table II"
	Title string
	Run   func(Config) ([]*tablefmt.Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in a stable order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, IDs())
}

// IDs lists the registered experiment ids.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// match formats an exact model-vs-measured comparison cell.
func match(measured, modeled simnet.Time) string {
	if measured == modeled {
		return "exact"
	}
	return fmt.Sprintf("%+d (%.2f%%)", measured-modeled, 100*float64(measured-modeled)/float64(modeled))
}

// ns renders a tick count as nanoseconds-based human units, used by the
// headline experiment where 1 tick = 1 ns.
func ns(t simnet.Time) string {
	switch {
	case t >= 1_000_000:
		return fmt.Sprintf("%.3f ms", float64(t)/1e6)
	case t >= 1_000:
		return fmt.Sprintf("%.3f µs", float64(t)/1e3)
	default:
		return fmt.Sprintf("%d ns", t)
	}
}
