package harness

import (
	"fmt"
	"strings"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/tablefmt"
	"ihc/internal/topology"
)

func init() {
	register(Experiment{ID: "families", Paper: "Sec. III (generalized)",
		Title: "Decomposition registry: twisted cubes and k-ary tori vs the per-link load bound", Run: runFamilies})
}

// runFamilies exercises the decomposition registry end-to-end: an
// overview of every registered family, the twisted-cube series checked
// against the Table II closed form, and the k-ary n-torus series
// checked against the Jung-Sakho per-link load bound τ_S+(N-1)μα.
func runFamilies(cfg Config) ([]*tablefmt.Table, error) {
	overview, err := familiesOverview()
	if err != nil {
		return nil, err
	}
	tq, err := familiesTwisted(cfg)
	if err != nil {
		return nil, err
	}
	kt, err := familiesKAry(cfg)
	if err != nil {
		return nil, err
	}
	return []*tablefmt.Table{overview, tq, kt}, nil
}

// familiesOverview lists every family the registry resolves, with the
// instances its conformance battery runs. No simulation: New is lazy,
// so enumerating the registry only computes invariants.
func familiesOverview() (*tablefmt.Table, error) {
	t := tablefmt.New("Decomposition registry — families answering hamilton.Parse/Decompose",
		"Key", "Family", "Conformance instances")
	for _, f := range hamilton.Families() {
		names := make([]string, 0, 4)
		for _, params := range f.Conformance() {
			in, err := f.New(params...)
			if err != nil {
				return nil, err
			}
			names = append(names, fmt.Sprintf("%s (N=%d γ=%d)", in.Name, in.N, in.Gamma))
		}
		t.Addf(f.Key(), f.Describe(), strings.Join(names, ", "))
	}
	t.Note("each instance passes the five-property conformance battery: build validity, static")
	t.Note("contention-freeness, exact live-oracle finish, γ-copy ATA postcondition, sharded identity")
	return t, nil
}

// familiesTwisted runs IHC on the twisted cubes and requires the
// measured finish to equal the Table II closed form η(τ_S+μα+(N-2)α)
// exactly: the stage formula is topology-free for contention-free
// cut-through runs, so it holds verbatim on the twisted adjacency even
// in reduced-reliability mode (γ=4 < n for n >= 5).
func familiesTwisted(cfg Config) (*tablefmt.Table, error) {
	dims := []int{3, 4, 5}
	if !cfg.Quick {
		dims = append(dims, 6, 7, 8)
	}
	p := cfg.params()
	mp := cfg.modelParams()
	t := tablefmt.New("Twisted cubes — IHC finish vs the Table II closed form (η=μ)",
		"Network", "N", "γ", "η=μ", "Model", "Measured", "Match")
	rows, err := sweep(cfg, len(dims), func(i int, env *Env) (row, error) {
		g := topology.MustTwistedCube(dims[i])
		x, err := newIHC(g)
		if err != nil {
			return nil, err
		}
		res, err := x.Run(core.Config{Eta: p.Mu, Params: p, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
		if err != nil {
			return nil, err
		}
		cfg.addEvents(res.Events)
		want := model.IHCBest(mp, g.N(), p.Mu)
		if res.Finish != want || res.Contentions != 0 {
			return nil, fmt.Errorf("families: %s finish %d != model %d (contentions %d)",
				g.Name(), res.Finish, want, res.Contentions)
		}
		return row{g.Name(), g.N(), x.Gamma(), p.Mu, want, res.Finish, match(res.Finish, want)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("TQ_3 decomposes into one Hamiltonian cycle (γ=2); TQ_n for n >= 4 into two (γ=4),")
	t.Note("full edge cover only at n=4 — n >= 5 runs reduced-reliability like odd hypercubes")
	return t, nil
}

// familiesKAry compares measured IHC finish on k-ary n-dimensional
// tori against the Jung-Sakho per-link load bound τ_S+(N-1)μα. At
// η=μ=1 IHC meets the bound exactly (Theorem 4 generalized); at μ>1
// the gap must be exactly the fixed pipelining term (η-1)(τ_S+μα).
// The η=μ=2 leg runs only on even-N sizes, where the interleaving is
// contention-free (N mod η = 0, as the oracle sweep requires).
func familiesKAry(cfg Config) (*tablefmt.Table, error) {
	type size struct{ k, n int }
	sizes := []size{{3, 2}, {4, 2}}
	if !cfg.Quick {
		sizes = append(sizes, size{5, 2}, size{3, 3}, size{6, 2})
	}
	type job struct {
		g  *topology.Graph
		mu int
	}
	var jobs []job
	for _, s := range sizes {
		g := topology.MustKAryTorus(s.k, s.n)
		jobs = append(jobs, job{g, 1})
		if g.N()%2 == 0 {
			jobs = append(jobs, job{g, 2})
		}
	}
	base := cfg.params()
	t := tablefmt.New("k-ary n-tori — IHC finish vs the Jung-Sakho per-link load bound τ_S+(N-1)μα",
		"Network", "N", "γ", "η=μ", "Bound", "Measured", "Gap", "(η-1)(τ_S+μα)")
	rows, err := sweep(cfg, len(jobs), func(i int, env *Env) (row, error) {
		j := jobs[i]
		p := base
		p.Mu = j.mu
		mp := model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: j.mu, D: p.D}
		x, err := newIHC(j.g)
		if err != nil {
			return nil, err
		}
		res, err := x.Run(core.Config{Eta: j.mu, Params: p, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
		if err != nil {
			return nil, err
		}
		cfg.addEvents(res.Events)
		bound := model.JungSakhoBound(mp, j.g.N())
		wantGap := simnet.Time(j.mu-1) * (mp.TauS + mp.PacketTime())
		if res.Contentions != 0 || res.Finish-bound != wantGap {
			return nil, fmt.Errorf("families: %s μ=%d finish %d vs bound %d: gap %d != %d (contentions %d)",
				j.g.Name(), j.mu, res.Finish, bound, res.Finish-bound, wantGap, res.Contentions)
		}
		return row{j.g.Name(), j.g.N(), x.Gamma(), j.mu, bound, res.Finish, res.Finish - bound, wantGap}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("γ = 2n from the Jung-Sakho edge-disjoint Hamiltonian cycle construction; η=μ=1 meets")
	t.Note("the bound exactly, and the μ=2 gap is the constant pipelining overhead, independent of N")
	return t, nil
}
