package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"ihc/internal/observe"
	"ihc/internal/simnet"
)

// runWithMetrics runs one experiment with a shared metrics aggregate
// attached and returns its snapshot serialized to JSON.
func runWithMetrics(t *testing.T, id string, workers int) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	sh := observe.NewShared()
	if _, err := e.Run(Config{Quick: true, Workers: workers, Metrics: sh}); err != nil {
		t.Fatalf("%s with metrics: %v", id, err)
	}
	buf, err := json.Marshal(sh.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// The observability invariant mirrors the output one: per-worker metric
// sinks absorbed into Config.Metrics yield a snapshot independent of the
// pool width.
func TestMetricsWorkerCountIndependent(t *testing.T) {
	for _, id := range []string{"contention", "table2"} {
		seq := runWithMetrics(t, id, 1)
		if bytes.Contains(seq, []byte(`"hops":0,`)) {
			t.Fatalf("%s: sequential metrics snapshot saw no hops", id)
		}
		for _, workers := range []int{2, 4} {
			got := runWithMetrics(t, id, workers)
			if !bytes.Equal(seq, got) {
				t.Fatalf("%s: metrics snapshot differs at workers=%d\nseq: %s\ngot: %s", id, workers, seq, got)
			}
		}
	}
}

// counting trace sink; also records the max goroutine-unsafe reentry it
// would have seen if two workers ran concurrently (the pool must force
// width 1 under a trace sink, so plain ints suffice and -race stays quiet).
type countTrace struct {
	hops, dels int
}

func (c *countTrace) OnHop(simnet.HopEvent) { c.hops++ }
func (c *countTrace) OnDeliver(d simnet.Delivery) {
	c.dels++
}

// A trace sink forces the pool sequential — the unsynchronized counter
// above is safe and must see every hop of the run.
func TestTraceForcesSequentialPool(t *testing.T) {
	cfg := Config{Quick: true, Workers: 8, Trace: &countTrace{}}
	if w := cfg.workers(); w != 1 {
		t.Fatalf("workers() = %d with a trace sink, want 1", w)
	}
	e, err := ByID("contention")
	if err != nil {
		t.Fatal(err)
	}
	tr := &countTrace{}
	sh := observe.NewShared()
	if _, err := e.Run(Config{Quick: true, Workers: 8, Trace: tr, Metrics: sh}); err != nil {
		t.Fatal(err)
	}
	if tr.hops == 0 || tr.dels == 0 {
		t.Fatalf("trace sink saw %d hops, %d deliveries", tr.hops, tr.dels)
	}
	s := sh.Snapshot()
	if int(s.Hops) != tr.hops || int(s.Deliveries) != tr.dels {
		t.Fatalf("trace saw %d/%d, metrics aggregated %d/%d — sinks out of sync",
			tr.hops, tr.dels, s.Hops, s.Deliveries)
	}
}
