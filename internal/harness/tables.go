package harness

import (
	"fmt"

	"ihc/internal/baseline/atarun"
	"ihc/internal/baseline/frs"
	"ihc/internal/baseline/ks"
	"ihc/internal/baseline/rs"
	"ihc/internal/baseline/vsq"
	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/tablefmt"
	"ihc/internal/topology"
)

func init() {
	register(Experiment{ID: "table1", Paper: "Table I", Title: "RS communication pattern on Q4 (source 0)", Run: runTable1})
	register(Experiment{ID: "table2", Paper: "Table II", Title: "Execution times with ρ=0 (dedicated network)", Run: runTable2})
	register(Experiment{ID: "table3", Paper: "Table III", Title: "Execution times with ρ=0 and η=μ=2", Run: runTable3})
	register(Experiment{ID: "table4", Paper: "Table IV", Title: "Worst-case execution times (saturated network)", Run: runTable4})
}

// runTable1 regenerates Table I: the step-by-step send-receive pattern of
// the RS reliable broadcast from node 0 in Q4, grouped into the
// cut-through columns of the VRS conversion.
func runTable1(cfg Config) ([]*tablefmt.Table, error) {
	b := rs.MustNew(4, 0, true)
	steps := b.StepOps()
	t := tablefmt.New("Table I — RS broadcast from node 0 in Q4 (send ops per step; *=optional return)",
		"Step", "Operations")
	for i, ops := range steps {
		line := ""
		for _, op := range ops {
			mark := ""
			if op.Return {
				mark = "*"
			}
			if line != "" {
				line += " "
			}
			line += fmt.Sprintf("%d→%d%s", op.From, op.To, mark)
		}
		t.Addf(i+1, line)
	}
	t.Note("γ+1 = 5 steps; %d sends incl. %d optional returns; %d cut-through columns",
		b.Sends(), 4, len(b.Columns))

	// Column view: the maximal cut-through chains (paper's columns).
	ct := tablefmt.New("Table I columns — cut-through chains (head hop is injection/redirect = store-and-forward)",
		"Col", "Tree", "HeadStep", "Chain")
	for i, col := range b.Columns {
		line := ""
		for j, v := range col.Route {
			if j > 0 {
				line += "→"
			}
			line += fmt.Sprintf("%d", v)
		}
		ct.Addf(i+1, col.Tree, col.HeadStep, line)
	}
	return []*tablefmt.Table{t, ct}, nil
}

// ihcMeasured runs IHC on a fresh network over g and returns the
// measured finish, crediting simulator events to cfg.Stats. env is the
// calling sweep worker's environment: reusable scratch plus the
// configured observer sink, both attached to the run.
func ihcMeasured(cfg Config, g *topology.Graph, p simnet.Params, eta int, env *Env) (simnet.Time, *core.Result, error) {
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		return 0, nil, err
	}
	x, err := core.New(g, cycles)
	if err != nil {
		return 0, nil, err
	}
	res, err := x.Run(core.Config{Eta: eta, Params: p, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
	if err != nil {
		return 0, nil, err
	}
	cfg.addEvents(res.Events)
	return res.Finish, res, nil
}

// table2Sizes returns the network sizes exercised by Tables II-IV.
func table2Sizes(quick bool) (qDim, sqM, hM int) {
	if quick {
		return 4, 4, 3
	}
	return 8, 12, 4
}

// runTable2 reproduces Table II: dedicated-network execution times, model
// (the paper's closed forms) against measured simulation, for every
// algorithm on its topology. The seven (algorithm, topology) points are
// independent simulations on fresh networks, fanned across the worker
// pool and merged back in row order.
func runTable2(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	mp := cfg.modelParams()
	eta := p.Mu
	qDim, sqM, hM := table2Sizes(cfg.Quick)
	t := tablefmt.New(
		fmt.Sprintf("Table II — execution times, ρ=0 (τ_S=%d α=%d μ=%d, η=%d ticks)", p.TauS, p.Alpha, p.Mu, eta),
		"Algorithm", "Network", "N", "Model", "Measured", "Measured-Model")

	var points []func(env *Env) (row, error)
	// IHC on all three families.
	for _, g := range []*topology.Graph{
		topology.MustHypercube(qDim), topology.MustSquareTorus(sqM), topology.MustHexMesh(hM),
	} {
		g := g
		points = append(points, func(env *Env) (row, error) {
			measured, res, err := ihcMeasured(cfg, g, p, eta, env)
			if err != nil {
				return nil, err
			}
			if res.Contentions != 0 && g.N()%eta == 0 {
				return nil, fmt.Errorf("table2: IHC on %s had %d contentions", g.Name(), res.Contentions)
			}
			m := model.IHCBest(mp, g.N(), eta)
			return row{"IHC", g.Name(), g.N(), m, measured, match(measured, m)}, nil
		})
	}
	points = append(points,
		func(env *Env) (row, error) {
			vres, err := rs.ATA(qDim, p, atarun.Options{Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return nil, err
			}
			cfg.addEvents(vres.Events)
			vm := model.VRSATABest(mp, 1<<qDim)
			return row{"VRS-ATA", fmt.Sprintf("Q%d", qDim), 1 << qDim, vm, vres.Finish, match(vres.Finish, vm)}, nil
		},
		func(env *Env) (row, error) {
			kres, err := ks.ATA(hM, p, atarun.Options{Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return nil, err
			}
			cfg.addEvents(kres.Events)
			km := model.KSATABest(mp, hM)
			return row{"KS-ATA", fmt.Sprintf("H%d", hM), topology.HexMeshSize(hM), km, kres.Finish, match(kres.Finish, km)}, nil
		},
		func(env *Env) (row, error) {
			sres, err := vsq.ATA(sqM, p, atarun.Options{Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return nil, err
			}
			cfg.addEvents(sres.Events)
			sm := model.VSQATABest(mp, sqM)
			return row{"VSQ-ATA", fmt.Sprintf("SQ%d", sqM), sqM * sqM, sm, sres.Finish, match(sres.Finish, sm)}, nil
		},
		func(env *Env) (row, error) {
			fres, err := frs.Run(qDim, p, false)
			if err != nil {
				return nil, err
			}
			cfg.addEvents(fres.Events)
			fm := model.FRSBest(mp, 1<<qDim)
			return row{"FRS", fmt.Sprintf("Q%d", qDim), 1 << qDim, fm, fres.Finish, match(fres.Finish, fm)}, nil
		},
	)
	rows, err := sweepRows(cfg, points)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}

	t.Note("IHC and FRS match their closed forms exactly; the serialized baselines measure at or")
	t.Note("below the paper's structural bounds (our causal simulation overlaps redirects that the")
	t.Note("paper's longest-path accounting serializes; KS/VSQ patterns are reconstructions).")
	return []*tablefmt.Table{t}, nil
}

// runTable3 reproduces Table III: the η=μ=2 instantiation — the paper's
// headline comparison — expressed as the factor by which IHC wins. The
// seven measured runs are independent; the winning ratios need several
// finishes at once, so the sweep collects all finish times in a fixed
// order and the rows are assembled afterwards.
func runTable3(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	p.Mu = 2
	mp := cfg.modelParams()
	mp.Mu = 2
	qDim, sqM, hM := table2Sizes(cfg.Quick)
	n := 1 << qDim

	points := []func(env *Env) (simnet.Time, error){
		func(env *Env) (simnet.Time, error) {
			f, _, err := ihcMeasured(cfg, topology.MustHypercube(qDim), p, 2, env)
			return f, err
		},
		func(env *Env) (simnet.Time, error) {
			vres, err := rs.ATA(qDim, p, atarun.Options{Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return 0, err
			}
			cfg.addEvents(vres.Events)
			return vres.Finish, nil
		},
		func(env *Env) (simnet.Time, error) {
			fres, err := frs.Run(qDim, p, false)
			if err != nil {
				return 0, err
			}
			cfg.addEvents(fres.Events)
			return fres.Finish, nil
		},
		func(env *Env) (simnet.Time, error) {
			f, _, err := ihcMeasured(cfg, topology.MustSquareTorus(sqM), p, 2, env)
			return f, err
		},
		func(env *Env) (simnet.Time, error) {
			sres, err := vsq.ATA(sqM, p, atarun.Options{Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return 0, err
			}
			cfg.addEvents(sres.Events)
			return sres.Finish, nil
		},
		func(env *Env) (simnet.Time, error) {
			f, _, err := ihcMeasured(cfg, topology.MustHexMesh(hM), p, 2, env)
			return f, err
		},
		func(env *Env) (simnet.Time, error) {
			kres, err := ks.ATA(hM, p, atarun.Options{Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return 0, err
			}
			cfg.addEvents(kres.Events)
			return kres.Finish, nil
		},
	}
	fin, err := sweep(cfg, len(points), func(i int, env *Env) (simnet.Time, error) { return points[i](env) })
	if err != nil {
		return nil, err
	}
	ihcQ, vrs, frsF, ihcSQ, vsqF, ihcH, ksF := fin[0], fin[1], fin[2], fin[3], fin[4], fin[5], fin[6]

	t := tablefmt.New(
		fmt.Sprintf("Table III — ρ=0, η=μ=2 (hypercube Q%d, N=%d): IHC vs the alternatives", qDim, n),
		"Algorithm", "Model", "Measured", "Slower than IHC (measured)")
	t.Addf("IHC (2τ_S+2Nα form)", model.IHCBest(mp, n, 2), ihcQ, "1.0x")
	t.Addf("VRS-ATA", model.VRSATABest(mp, n), vrs, ratio(vrs, ihcQ))
	t.Addf("FRS", model.FRSBest(mp, n), frsF, ratio(frsF, ihcQ))
	t.Addf(fmt.Sprintf("VSQ-ATA (SQ%d vs IHC on SQ%d)", sqM, sqM), model.VSQATABest(mp, sqM), vsqF, ratio(vsqF, ihcSQ))
	t.Addf(fmt.Sprintf("KS-ATA (H%d vs IHC on H%d)", hM, hM), model.KSATABest(mp, hM), ksF, ratio(ksF, ihcH))
	t.Note("the paper's qualitative claim — IHC clearly better than all alternatives in a dedicated")
	t.Note("network — holds with factors growing linearly in N (serialized baselines cost N broadcasts).")
	return []*tablefmt.Table{t}, nil
}

func ratio(a, b simnet.Time) string { return fmt.Sprintf("%.1fx", float64(a)/float64(b)) }

// runTable4 reproduces Table IV: worst-case (saturated) execution times.
// The simulator's Saturated mode forces every hop through intermediate
// storage with queueing delay D, the paper's limiting regime.
func runTable4(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	mp := cfg.modelParams()
	eta := p.Mu
	qDim, sqM, hM := table2Sizes(cfg.Quick)
	if !cfg.Quick {
		// Saturated serialized baselines are slow to simulate at Q8;
		// Table IV's shape shows at moderate sizes.
		qDim, sqM, hM = 6, 8, 4
	}
	n := 1 << qDim
	t := tablefmt.New(
		fmt.Sprintf("Table IV — worst-case times (every hop buffered + queued; τ_S=%d α=%d μ=%d D=%d)", p.TauS, p.Alpha, p.Mu, p.D),
		"Algorithm", "Network", "Model (paper)", "Measured", "Measured-Model")

	points := []func(env *Env) (row, error){
		func(env *Env) (row, error) {
			cycles, err := hamilton.Decompose(topology.MustHypercube(qDim))
			if err != nil {
				return nil, err
			}
			x, err := core.New(topology.MustHypercube(qDim), cycles)
			if err != nil {
				return nil, err
			}
			res, err := x.Run(core.Config{Eta: eta, Params: p, Saturated: true, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return nil, err
			}
			cfg.addEvents(res.Events)
			im := model.IHCWorst(mp, n, eta)
			return row{"IHC", fmt.Sprintf("Q%d", qDim), im, res.Finish, match(res.Finish, im)}, nil
		},
		func(env *Env) (row, error) {
			vres, err := rs.ATA(qDim, p, atarun.Options{Saturated: true, Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return nil, err
			}
			cfg.addEvents(vres.Events)
			vm := model.VRSATAWorst(mp, n)
			return row{"VRS-ATA", fmt.Sprintf("Q%d", qDim), vm, vres.Finish, match(vres.Finish, vm)}, nil
		},
		func(env *Env) (row, error) {
			kres, err := ks.ATA(hM, p, atarun.Options{Saturated: true, Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return nil, err
			}
			cfg.addEvents(kres.Events)
			km := model.KSATAWorst(mp, hM)
			return row{"KS-ATA", fmt.Sprintf("H%d", hM), km, kres.Finish, match(kres.Finish, km)}, nil
		},
		func(env *Env) (row, error) {
			sres, err := vsq.ATA(sqM, p, atarun.Options{Saturated: true, Scratch: env.Scratch, Observe: env.Obs})
			if err != nil {
				return nil, err
			}
			cfg.addEvents(sres.Events)
			sm := model.VSQATAWorst(mp, sqM)
			return row{"VSQ-ATA", fmt.Sprintf("SQ%d", sqM), sm, sres.Finish, match(sres.Finish, sm)}, nil
		},
		func(env *Env) (row, error) {
			// FRS's worst case only adds D per step (its packets are
			// already store-and-forward); model it and measure with D
			// folded into τ_S.
			pf := p
			pf.TauS += p.D
			fres, err := frs.Run(qDim, pf, false)
			if err != nil {
				return nil, err
			}
			cfg.addEvents(fres.Events)
			fm := model.FRSWorst(mp, n)
			return row{"FRS", fmt.Sprintf("Q%d", qDim), fm, fres.Finish, match(fres.Finish, fm)}, nil
		},
	}
	rows, err := sweepRows(cfg, points)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}

	t.Note("who wins flips under saturation: FRS (merging store-and-forward) is fastest, as the paper")
	t.Note("concludes; among cut-through algorithms IHC keeps the best worst case (η(N-1) vs N·path).")
	return []*tablefmt.Table{t}, nil
}
