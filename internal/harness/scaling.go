package harness

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/model"
	"ihc/internal/tablefmt"
	"ihc/internal/topology"
)

func init() {
	register(Experiment{ID: "scaling", Paper: "beyond §VI", Title: "Engine scaling: IHC at Q14 / 32×32-torus sizes", Run: runScaling})
}

// scalingPoint is one large-topology run: IHC on g with η=μ, optionally
// restricted to a subset of the γ directed cycles. Restricting cycles
// scales the event count down linearly while leaving the critical path —
// and hence the Table II closed form the measurement is checked against
// — exactly unchanged (parallel cycles share no directed links, so each
// stage takes τ_S + μα + (N-2)α regardless of how many cycles run).
type scalingPoint struct {
	graph  func() *topology.Graph
	cycles []int // nil = all γ directed cycles
}

// runScaling exercises the flat-array engine at topology sizes an order
// of magnitude beyond the paper's Q10 evaluation — the hypercube and
// torus scales studied in the follow-on literature (PAPERS.md: Jung &
// Sakho's k-ary n-dimensional tori). Every point still asserts exact
// agreement with the Table II closed form and zero contentions, so this
// is a correctness experiment that happens to be a stress test: the
// rendered table reports deterministic quantities only (event counts,
// not wall-clock), keeping suite output byte-identical across worker
// counts. Throughput itself is recorded by `make bench-engine`.
func runScaling(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	eta := p.Mu
	mp := cfg.modelParams()

	// Quick keeps the same shape (one cycle-restricted hypercube, one
	// full torus) at sizes that stay sub-second; full runs the headline
	// Q14 (16384 nodes, one of its 14 directed cycles ≈ 2.7×10⁸ events)
	// and the complete 32×32 torus ATA.
	points := []scalingPoint{
		{graph: func() *topology.Graph { return topology.MustHypercube(8) }, cycles: []int{0}},
		{graph: func() *topology.Graph { return topology.MustSquareTorus(16) }},
	}
	if !cfg.Quick {
		points = []scalingPoint{
			{graph: func() *topology.Graph { return topology.MustHypercube(14) }, cycles: []int{0}},
			{graph: func() *topology.Graph { return topology.MustSquareTorus(32) }},
		}
	}

	t := tablefmt.New(
		fmt.Sprintf("Engine scaling — IHC beyond the paper's Q10 (η=μ=%d, exactness preserved at scale)", eta),
		"Network", "N", "Cycles run", "Injections", "Deliveries", "Events", "Measured", "Model", "Match")
	rows, err := sweep(cfg, len(points), func(i int, env *Env) (row, error) {
		pt := points[i]
		g := pt.graph()
		x, err := newIHC(g)
		if err != nil {
			return nil, err
		}
		res, err := x.Run(core.Config{
			Eta: eta, Params: p, Cycles: pt.cycles, SkipCopies: true, Scratch: env.Scratch, Observe: env.Obs,
			// The few-large-runs experiment is the natural consumer of
			// within-run sharding; results are byte-identical either way.
			EngineWorkers: cfg.engineWorkers(),
		})
		if err != nil {
			return nil, err
		}
		cfg.addEvents(res.Events)
		m := model.IHCBest(mp, g.N(), eta)
		if res.Finish != m {
			return nil, fmt.Errorf("scaling: %s measured %d != model %d", g.Name(), res.Finish, m)
		}
		if res.Contentions != 0 {
			return nil, fmt.Errorf("scaling: %s had %d contentions", g.Name(), res.Contentions)
		}
		used := len(pt.cycles)
		if pt.cycles == nil {
			used = x.Gamma()
		}
		return row{g.Name(), g.N(), fmt.Sprintf("%d of %d", used, x.Gamma()),
			res.Injections, res.Deliveries, res.Events, res.Finish, m, match(res.Finish, m)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("restricting a run to a subset of cycles scales events linearly but leaves each stage's")
	t.Note("critical path — and the closed form it must match — unchanged; the full-size points push")
	t.Note("the flat-array engine ~50× past Q10's event count within one suite run")
	return []*tablefmt.Table{t}, nil
}
