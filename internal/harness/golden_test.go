package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// renderOne renders a single experiment exactly as cmd/ihcbench prints
// it to stdout: the header line, then each table followed by one blank
// line.
func renderOne(t *testing.T, id string, workers int) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Config{Quick: true, Workers: workers})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "=== %s (%s): %s ===\n", e.ID, e.Paper, e.Title)
	for _, tab := range tables {
		tab.Render(&buf)
		fmt.Fprintln(&buf)
	}
	return buf.Bytes()
}

// TestGoldenOutput compares rendered experiment output against recorded
// files captured from the pre-flat-array engine (`ihcbench -quick -run
// <id>`). Byte identity across engine rewrites — and across worker-pool
// widths — is the regression oracle for the whole simulation stack: any
// change to event ordering, timing arithmetic, or sweep merging shows up
// as a diff here.
func TestGoldenOutput(t *testing.T) {
	for _, id := range []string{"table1", "fig6"} {
		want, err := os.ReadFile(filepath.Join("testdata", id+"_quick.golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got := renderOne(t, id, workers)
			if !bytes.Equal(got, want) {
				t.Errorf("%s (workers=%d) differs from recorded output\n--- got ---\n%s\n--- want ---\n%s",
					id, workers, got, want)
			}
		}
	}
}
