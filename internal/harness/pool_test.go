package harness

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"ihc/internal/tablefmt"
)

// renderAll runs the full suite at the given pool width and renders every
// table into one byte stream, exactly as cmd/ihcbench prints it.
func renderAll(t *testing.T, workers int, stats *RunStats) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range RunAll(Config{Quick: true, Workers: workers, Stats: stats}) {
		if r.Err != nil {
			t.Fatalf("workers=%d: %s failed: %v", workers, r.ID, r.Err)
		}
		fmt.Fprintf(&buf, "=== %s ===\n", r.ID)
		for _, tab := range r.Tables {
			tab.Render(&buf)
		}
		if r.Wall < 0 {
			t.Fatalf("workers=%d: %s negative wall time", workers, r.ID)
		}
	}
	return buf.Bytes()
}

// The tentpole invariant: the parallel sweep executor merges results in
// stable order, so the rendered suite output is byte-identical for every
// worker-pool width.
func TestParallelOutputDeterministic(t *testing.T) {
	seq := renderAll(t, 1, nil)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := renderAll(t, workers, nil)
		if !bytes.Equal(seq, got) {
			t.Fatalf("workers=%d output differs from sequential run\nseq %d bytes, got %d bytes",
				workers, len(seq), len(got))
		}
	}
}

func TestRunStatsPopulated(t *testing.T) {
	stats := &RunStats{}
	renderAll(t, 0, stats)
	if stats.Runs() == 0 {
		t.Fatal("no sweep points recorded")
	}
	if stats.Failures() != 0 {
		t.Fatalf("%d failures recorded in a clean run", stats.Failures())
	}
	if stats.Events() == 0 {
		t.Fatal("no simulator events recorded")
	}
	if stats.Wall() <= 0 {
		t.Fatal("no wall-clock recorded")
	}
	s := stats.Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}

func TestSweepMergesInOrderAndReportsFirstError(t *testing.T) {
	cfg := Config{Workers: 4}
	out, err := sweep(cfg, 64, func(i int, _ *Env) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// The lowest-indexed failure is surfaced, matching a sequential loop.
	_, err = sweep(cfg, 64, func(i int, _ *Env) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("point %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "point 3 failed" {
		t.Fatalf("err = %v, want point 3 failed", err)
	}
}

func TestRunExperimentsReportsPerExperimentErrors(t *testing.T) {
	exps := []Experiment{
		{ID: "a", Run: func(Config) ([]*tablefmt.Table, error) { return []*tablefmt.Table{tablefmt.New("t", "c")}, nil }},
		{ID: "b", Run: func(Config) ([]*tablefmt.Table, error) { return nil, fmt.Errorf("boom") }},
		{ID: "c", Run: func(Config) ([]*tablefmt.Table, error) { return []*tablefmt.Table{tablefmt.New("t", "c")}, nil }},
	}
	reports := RunExperiments(exps, Config{Workers: 3})
	if len(reports) != 3 {
		t.Fatalf("%d reports", len(reports))
	}
	for i, want := range []string{"a", "b", "c"} {
		if reports[i].ID != want {
			t.Fatalf("reports out of order: %d = %s", i, reports[i].ID)
		}
	}
	if reports[0].Err != nil || reports[2].Err != nil {
		t.Fatal("clean experiments reported errors")
	}
	if reports[1].Err == nil || reports[1].Err.Error() != "boom" {
		t.Fatalf("failing experiment: err = %v", reports[1].Err)
	}
}
