package harness

// The oracle sweep: every point runs IHC with a live observe.Oracle
// attached and asserts the paper's runtime theorems from the raw hop
// stream — not from the engine's own counters. Points with η >= μ (and
// N mod η == 0) must verify contention-free with every copy on its
// compiled cycle; points with η < μ must make the oracle COUNT
// contention, proving the checker has teeth; η = μ = 1 points must
// finish at exactly Theorem 4's T = τ_S + (N-1)α.

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/model"
	"ihc/internal/observe"
	"ihc/internal/simnet"
	"ihc/internal/tablefmt"
	"ihc/internal/topology"
)

func init() {
	register(Experiment{ID: "contention", Paper: "Theorems 3 & 4",
		Title: "Live-oracle sweep: contention-freeness, FIFO occupancy, route conformance, exact finish",
		Run:   runContention})
}

// oraclePoint is one (topology, η, μ) cell of the sweep.
type oraclePoint struct {
	graph       func() *topology.Graph
	eta, mu     int
	light       bool // Light oracle (O(arcs) state) for the largest networks
	exactFinish bool // assert the closed-form finish exactly (η = μ regimes)
}

// free reports whether Theorem 3 promises this point contention-free.
func (pt oraclePoint) free(n int) bool { return pt.eta >= pt.mu && n%pt.eta == 0 }

func oraclePoints(quick bool) []oraclePoint {
	q := func(m int) func() *topology.Graph { return func() *topology.Graph { return topology.MustHypercube(m) } }
	sq := func(m int) func() *topology.Graph { return func() *topology.Graph { return topology.MustSquareTorus(m) } }
	t3 := func(d int) func() *topology.Graph { return func() *topology.Graph { return topology.MustTorusND(d, d, d) } }

	// Pass points (η >= μ): Theorem 3 regimes across all families.
	pts := []oraclePoint{
		{graph: sq(4), eta: 2, mu: 2, exactFinish: true},
		{graph: q(4), eta: 2, mu: 2, exactFinish: true},
		{graph: q(4), eta: 4, mu: 2}, // η > μ: still contention-free, no exact closed form asserted
		// Theorem 4: η = μ = 1 finishes at exactly τ_S + (N-1)α.
		{graph: q(4), eta: 1, mu: 1, exactFinish: true},
		{graph: q(5), eta: 1, mu: 1, exactFinish: true},
		{graph: q(6), eta: 1, mu: 1, exactFinish: true},
		// Fail points (η < μ): the oracle must observe contention here,
		// or the experiment errors — the checker has teeth.
		{graph: sq(4), eta: 1, mu: 2},
		{graph: sq(4), eta: 1, mu: 4},
		{graph: q(4), eta: 2, mu: 4},
	}
	if quick {
		return pts
	}
	return append(pts,
		oraclePoint{graph: sq(6), eta: 2, mu: 2, exactFinish: true},
		oraclePoint{graph: q(6), eta: 2, mu: 2, exactFinish: true},
		oraclePoint{graph: q(7), eta: 2, mu: 2, exactFinish: true},
		oraclePoint{graph: t3(4), eta: 2, mu: 2, exactFinish: true},
		// Theorem 4 at scale, Light oracle for the O(N²) sizes.
		oraclePoint{graph: q(7), eta: 1, mu: 1, exactFinish: true},
		oraclePoint{graph: q(8), eta: 1, mu: 1, exactFinish: true, light: true},
		oraclePoint{graph: q(9), eta: 1, mu: 1, exactFinish: true, light: true},
		oraclePoint{graph: q(10), eta: 1, mu: 1, exactFinish: true, light: true},
		// More η < μ teeth at larger size.
		oraclePoint{graph: q(6), eta: 1, mu: 2},
		oraclePoint{graph: t3(4), eta: 1, mu: 2},
	)
}

// runOraclePoint simulates one sweep cell with a live oracle teed onto
// the worker's configured sinks and turns the verdict into a table row.
func runOraclePoint(cfg Config, pt oraclePoint, env *Env) (row, error) {
	g := pt.graph()
	n := g.N()
	p := cfg.params()
	p.Mu = pt.mu
	mp := cfg.modelParams()
	mp.Mu = pt.mu

	cycles, err := hamilton.Decompose(g)
	if err != nil {
		return nil, err
	}
	x, err := core.New(g, cycles)
	if err != nil {
		return nil, err
	}

	free := pt.free(n)
	fin := simnet.Time(-1)
	var want simnet.Time
	if pt.exactFinish {
		want = model.IHCBest(mp, n, pt.eta) // = OptimalATATime for η = μ = 1
		fin = want
	}
	copies := 0
	if free && !pt.light && n <= 64 {
		copies = x.Gamma() // full γ-edge-disjoint copy ledger on the small passes
	}
	orc, err := observe.NewOracle(observe.OracleConfig{
		X: x, Params: p, Eta: pt.eta,
		ExpectContentionFree: free,
		ExpectFinish:         fin,
		ExpectCopies:         copies,
		Light:                pt.light,
	})
	if err != nil {
		return nil, err
	}

	res, err := x.Run(core.Config{
		Eta: pt.eta, Params: p, SkipCopies: true,
		Scratch: env.Scratch, Observe: observe.Tee(env.Obs, orc),
	})
	if err != nil {
		return nil, err
	}
	cfg.addEvents(res.Events)

	if err := orc.Finalize(); err != nil {
		return nil, fmt.Errorf("oracle on %s η=%d μ=%d: %w", g.Name(), pt.eta, pt.mu, err)
	}
	st := orc.Stats()
	if st.OverlapViolations != 0 {
		return nil, fmt.Errorf("oracle on %s η=%d μ=%d: engine let %d packets overlap on a link",
			g.Name(), pt.eta, pt.mu, st.OverlapViolations)
	}
	verdict := "contention-free"
	if free {
		if st.Contentions != 0 {
			return nil, fmt.Errorf("oracle on %s η=%d μ=%d: %d contentions despite η >= μ",
				g.Name(), pt.eta, pt.mu, st.Contentions)
		}
	} else {
		// The teeth check: an η < μ run that the oracle scores clean
		// means the checker is blind, not that the run was lucky.
		if st.Contentions == 0 {
			return nil, fmt.Errorf("oracle on %s η=%d μ=%d: no contention detected at η < μ — checker has no teeth",
				g.Name(), pt.eta, pt.mu)
		}
		if res.Contentions > 0 && st.Contentions < res.Contentions {
			return nil, fmt.Errorf("oracle on %s η=%d μ=%d: saw %d contentions, engine counted %d",
				g.Name(), pt.eta, pt.mu, st.Contentions, res.Contentions)
		}
		verdict = fmt.Sprintf("contended (%d hops)", st.Contentions)
	}
	finish := "—"
	if pt.exactFinish {
		finish = "exact"
	}
	checks := "routes+occupancy+exclusivity"
	if copies > 0 {
		checks = fmt.Sprintf("routes+occupancy+exclusivity+%d-copies", copies)
	}
	if pt.light {
		checks = "routes+exclusivity (light)"
	}
	return row{g.Name(), n, pt.eta, pt.mu, st.DataHops, verdict, st.PeakOccupancy, res.Finish, finish, checks}, nil
}

// runContention reproduces the runtime claims of Theorems 3 and 4 as a
// live verification sweep over (topology, η, μ).
func runContention(cfg Config) ([]*tablefmt.Table, error) {
	p := cfg.params()
	pts := oraclePoints(cfg.Quick)
	t := tablefmt.New(
		fmt.Sprintf("Oracle sweep — Theorems 3 & 4 verified live from the hop stream (τ_S=%d α=%d D=%d)", p.TauS, p.Alpha, p.D),
		"Network", "N", "η", "μ", "DataHops", "Theorem 3", "PeakFIFO", "Finish", "Closed form", "Checks")
	rows, err := sweep(cfg, len(pts), func(i int, env *Env) (row, error) {
		return runOraclePoint(cfg, pts[i], env)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	t.Note("η >= μ rows must verify zero contention, ≤ μ-flit FIFOs, every copy on its compiled")
	t.Note("cycle, and (η = μ) the exact closed-form finish; η < μ rows must make the oracle count")
	t.Note("contention — a clean score there fails the experiment, so the checker provably has teeth.")
	return []*tablefmt.Table{t}, nil
}
