// Package conformance is the cross-family verification battery behind
// the decomposition registry: one table-driven property suite that any
// registered hamilton.Family passes end to end, so a new family gets
// the repository's full checking stack — decomposition validity,
// schedule feasibility, the live Theorem 3/4 oracles, sequential-vs-
// sharded byte identity, and the γ-copy ledger postcondition — by
// registering. The suite is what `internal/hamilton/conformance_test.go`
// and `make families-quick` run; it lives outside internal/core because
// it drives core and observe together (core cannot import observe).
package conformance

import (
	"fmt"
	"reflect"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/model"
	"ihc/internal/observe"
	"ihc/internal/simnet"
)

// Options tune the battery; the zero value is the standard quick run.
type Options struct {
	// Params are the timing parameters (zero value → the repository
	// defaults τ_S=100 α=20 μ=2 D=37, with μ overridden per point).
	Params simnet.Params
	// Workers are the sharded engine widths compared against the
	// sequential run (default 2 and 4).
	Workers []int
	// MaxOracleN caps the sizes that run the full O(N²) copy-matrix
	// oracle leg (default 64; larger instances still run every other
	// check).
	MaxOracleN int
}

func (o Options) defaulted() Options {
	if o.Params == (simnet.Params{}) {
		o.Params = simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{2, 4}
	}
	if o.MaxOracleN == 0 {
		o.MaxOracleN = 64
	}
	return o
}

// Check runs the full battery on one registry instance. A nil error
// means every property held; the error otherwise names the first
// failing property.
func Check(in *hamilton.Instance, opt Options) error {
	opt = opt.defaulted()

	// Property 1 — decomposition validity: every cycle Hamiltonian,
	// cycles pairwise edge-disjoint, full cover iff declared, and the
	// declared N/γ matching the construction. Build verifies all of it.
	g, cycles, err := in.Build()
	if err != nil {
		return fmt.Errorf("decomposition: %w", err)
	}
	if g.N() != in.N {
		return fmt.Errorf("decomposition: declared N=%d, graph has %d", in.N, g.N())
	}

	x, err := core.New(g, cycles)
	if err != nil {
		return fmt.Errorf("core rejects decomposition: %w", err)
	}
	if x.Gamma() != in.Gamma {
		return fmt.Errorf("core γ=%d, declared %d", x.Gamma(), in.Gamma)
	}

	// Theorem 3 needs the η-interleaving to divide the ring evenly;
	// odd-N families run the η = μ = 1 regime (Theorem 4), exactly as
	// the fault campaign's preflight does.
	eta := 2
	if in.N%2 != 0 {
		eta = 1
	}
	p := opt.Params
	p.Mu = eta

	// Property 2 — schedule feasibility: the static η ≥ μ schedule
	// verifies contention-free before anything is simulated.
	if err := x.VerifyContentionFree(core.Config{Eta: eta, Params: p}); err != nil {
		return fmt.Errorf("static schedule (η=μ=%d): %w", eta, err)
	}

	// Property 3 — oracle cleanliness: a live oracle on the hop stream
	// must score the run contention-free with every copy on its
	// compiled cycle and the exact Theorem 3/4 closed-form finish.
	mp := model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
	copies := 0
	if in.N <= opt.MaxOracleN {
		copies = x.Gamma()
	}
	orc, err := observe.NewOracle(observe.OracleConfig{
		X: x, Params: p, Eta: eta,
		ExpectContentionFree: true,
		ExpectFinish:         model.IHCBest(mp, in.N, eta),
		ExpectCopies:         copies,
		Light:                copies == 0,
	})
	if err != nil {
		return fmt.Errorf("oracle setup: %w", err)
	}
	if _, err := x.Run(core.Config{Eta: eta, Params: p, SkipCopies: true, Observe: orc}); err != nil {
		return fmt.Errorf("oracle run: %w", err)
	}
	if err := orc.Finalize(); err != nil {
		return fmt.Errorf("oracle (η=μ=%d): %w", eta, err)
	}

	// Property 4 — γ-copy ledger: the full run must satisfy the exact
	// ATA postcondition in both the copy matrix and the counters-only
	// ledger.
	base := core.Config{Eta: eta, Params: p, RecordDeliveries: true, Ledger: true}
	want, err := x.Run(base)
	if err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	if err := want.Copies.VerifyATA(x.Gamma()); err != nil {
		return fmt.Errorf("copy matrix: %w", err)
	}
	if err := want.Ledger.VerifyATA(x.Gamma()); err != nil {
		return fmt.Errorf("copy ledger: %w", err)
	}

	// Property 5 — sequential-vs-sharded byte identity: the sharded
	// engine must reproduce the sequential run exactly, including the
	// ordered delivery log, at every requested worker count.
	for _, w := range opt.Workers {
		cfg := base
		cfg.EngineWorkers = w
		got, err := x.Run(cfg)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		if got.Finish != want.Finish || got.Contentions != want.Contentions ||
			got.Deliveries != want.Deliveries || got.Events != want.Events ||
			got.CutThroughs != want.CutThroughs || got.Injections != want.Injections ||
			got.LinkBusy != want.LinkBusy {
			return fmt.Errorf("workers=%d: aggregate result differs from sequential", w)
		}
		if !reflect.DeepEqual(got.StageFinish, want.StageFinish) {
			return fmt.Errorf("workers=%d: stage finish times differ", w)
		}
		if !reflect.DeepEqual(got.Deliveriesv, want.Deliveriesv) {
			return fmt.Errorf("workers=%d: delivery log differs (%d vs %d entries)",
				w, len(got.Deliveriesv), len(want.Deliveriesv))
		}
		if err := got.Ledger.VerifyATA(x.Gamma()); err != nil {
			return fmt.Errorf("workers=%d: copy ledger: %w", w, err)
		}
	}
	return nil
}

// CheckFamily runs Check on every conformance size the family declares,
// returning the first failure annotated with the instance name.
func CheckFamily(f hamilton.Family, opt Options) error {
	for _, params := range f.Conformance() {
		in, err := f.New(params...)
		if err != nil {
			return fmt.Errorf("%s%v: %w", f.Key(), params, err)
		}
		if err := Check(in, opt); err != nil {
			return fmt.Errorf("%s: %w", in.Name, err)
		}
	}
	return nil
}
