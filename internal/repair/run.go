package repair

import (
	"ihc/internal/core"
)

// Run executes a full repair-enabled ATA broadcast: it builds a Manager
// for x, wires it into cfg (Control + PatchRoutes), and runs the IHC.
// Params are defaulted and η defaults to μ, mirroring the reliability
// graders. The returned Stats describe everything the repair layer did.
//
// Note for graders: NAK packets appear in Result.Deliveriesv with
// negative Seq — coverage accounting must filter them out (see
// reliable.EvaluateRepaired).
func Run(x *core.IHC, cfg core.Config, rcfg Config) (*core.Result, Stats, error) {
	cfg.Params = cfg.Params.Defaulted()
	if cfg.Eta == 0 {
		cfg.Eta = cfg.Params.Mu
	}
	m := NewManager(x, cfg.Params, rcfg)
	cfg.Control = m
	cfg.PatchRoutes = m.PatchSpecs
	res, err := x.Run(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	return res, m.Stats(), nil
}
