// Package repair is the self-healing layer on top of the IHC broadcast:
// it turns the paper's static γ-way redundancy into an active recovery
// protocol. The closed-form stage schedule gives every copy an exact
// expected-arrival tick (τ_S + μα + (position−1)·α after injection), so
// the Manager derives per-(source, HC, destination) deadlines, inflated
// for μ, the queueing delay D, and background-traffic load ρ so that a
// healthy run never trips them. A missed deadline raises a timeout: the
// first destination position without a copy localizes the loss to one
// directed arc, a NAK travels from the detector back to the source
// along a surviving directed Hamiltonian cycle, and the source
// retransmits with exponential backoff, bounded by MaxAttempts.
// Repeated loss on one arc diagnoses the underlying link dead, after
// which routes — retransmissions immediately, subsequent stages via
// core.Config.PatchRoutes — detour around it using edge-disjoint paths.
//
// Everything the Manager does is a deterministic function of the
// simulation events it observes, so repair-enabled runs are exactly
// reproducible; with no faults it injects nothing and the delivery
// stream is byte-identical to a repair-off run.
package repair

import (
	"ihc/internal/core"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Config tunes detection and recovery. The zero value selects defaults
// derived from the network parameters at Manager construction.
type Config struct {
	// SlackBase is added to every deadline on top of the closed-form
	// arrival tick. Default: μα + τ_S + D.
	SlackBase simnet.Time
	// SlackPerHop is added per route hop, covering the worst case a
	// healthy hop can suffer (buffered fallback + one background burst +
	// queueing). Default: 0 when ρ = 0 (the schedule is contention-free,
	// arrivals are exact), else 2·(2μα + τ_S + D).
	SlackPerHop simnet.Time
	// Backoff is the delay between a NAK reaching the source and the
	// first retransmission; it doubles with every further attempt.
	// Default: τ_S + 2μα.
	Backoff simnet.Time
	// MaxAttempts bounds recovery rounds (NAK + retransmission) per lost
	// packet. Default: 5.
	MaxAttempts int
	// SuspectThreshold is how many independent losses must localize to
	// the same directed arc before its link is diagnosed dead and routed
	// around. Default: 2 ("repeated loss").
	SuspectThreshold int
}

func (c Config) withDefaults(p simnet.Params) Config {
	pt := p.PacketTime()
	if c.SlackBase == 0 {
		c.SlackBase = pt + p.TauS + p.D
	}
	if c.SlackPerHop == 0 && (p.Rho > 0 || p.Mode != simnet.VirtualCutThrough) {
		c.SlackPerHop = 2 * (2*pt + p.TauS + p.D)
	}
	if c.Backoff == 0 {
		c.Backoff = p.TauS + 2*pt
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 5
	}
	if c.SuspectThreshold == 0 {
		c.SuspectThreshold = 2
	}
	return c
}

// Stats aggregates what the repair layer observed and did across every
// stage run the Manager was attached to.
type Stats struct {
	Timeouts        int // copies missing at their deadline when first detected
	Naks            int // NAK packets injected
	Retransmissions int // retransmission packets injected
	Recovered       int // copies delivered to a previously-missing destination
	GaveUp          int // copies abandoned (MaxAttempts exhausted or no route)
	DeadLinks       int // links diagnosed dead
	DeadNodes       int // nodes with ≥2 dead links, avoided as detour relays
	Detours         int // stage routes rewritten by PatchSpecs
}

type trackKind int8

const (
	kindData trackKind = iota
	kindNak
	kindRetrans
)

// origin is the per-broadcast-packet recovery state: which destinations
// have the copy, how many recovery rounds were spent.
type origin struct {
	specIdx  int32 // index of the data spec in the current run
	id       simnet.PacketID
	route    []topology.Node
	got      []bool // per node: holds a copy of this packet
	missing  int    // expected destinations still without a copy
	attempts int
	timedOut bool
}

// track is the per-spec view (data, NAK, or retransmission packet).
type track struct {
	kind  trackKind
	route []topology.Node
	got   []bool // per node: delivered by THIS spec (aliases origin.got for data)
	o     *origin
	dest  topology.Node // NAK destination (the origin's source)
	done  bool          // NAK reached dest
	// sched marks a spec running on the contention-free stage schedule:
	// its deadline is sound, so a miss is proof of loss and feeds link
	// diagnosis. Recovery traffic and patched routes run outside the
	// schedule — they may simply be late, so they NAK and retry but
	// never convict an arc.
	sched bool
}

type arc struct{ u, v topology.Node }

// Manager implements simnet.Controller. One Manager serves every stage
// of an IHC run (attach it via core.Config.Control and
// core.Config.PatchRoutes): per-stage tracking resets on Attach, while
// fault diagnosis (suspected and dead links) persists, which is what
// lets later stages route around earlier stages' losses.
type Manager struct {
	x   *core.IHC
	g   *topology.Graph
	p   simnet.Params
	cfg Config

	suspect  map[arc]int
	deadLink map[topology.Edge]bool
	deadInc  map[topology.Node]int // dead links incident to the node
	deadNode map[topology.Node]bool

	stats Stats

	// Per-run state, reset by Attach.
	rt      *simnet.Runtime
	tracked []*track
}

// NewManager builds a repair controller for x under network parameters
// p (must equal the Params of the runs it is attached to — deadlines
// are computed from them).
func NewManager(x *core.IHC, p simnet.Params, cfg Config) *Manager {
	p = p.Defaulted()
	return &Manager{
		x: x, g: x.Graph(), p: p, cfg: cfg.withDefaults(p),
		suspect:  map[arc]int{},
		deadLink: map[topology.Edge]bool{},
		deadInc:  map[topology.Node]int{},
		deadNode: map[topology.Node]bool{},
	}
}

// Stats returns a snapshot of the accumulated counters.
func (m *Manager) Stats() Stats { return m.stats }

// DeadLinkList returns the diagnosed-dead links in sorted order.
func (m *Manager) DeadLinkList() []topology.Edge {
	out := make([]topology.Edge, 0, len(m.deadLink))
	for e := range m.deadLink {
		out = append(out, e)
	}
	// Insertion sort: the list is tiny (diagnosed faults).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.U < b.U || (a.U == b.U && a.V <= b.V) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// Token layout: low 2 bits select the action, the rest index tracked.
const (
	tokDeadline = 0 // check the spec's deadline
	tokRetrans  = 1 // fire a retransmission for the origin's data spec
)

func token(idx int32, kind int) int64 { return int64(idx)<<2 | int64(kind) }

// deadline returns the latest healthy arrival of the spec's final copy
// plus slack: inject + τ_S + pt + (hops−1)·α is the closed-form
// cut-through arrival at the last route position.
func (m *Manager) deadline(inject simnet.Time, routeLen, flits int, perHop simnet.Time) simnet.Time {
	pt := m.p.PacketTime()
	if flits > 0 {
		pt = simnet.Time(flits) * m.p.Alpha
	}
	hops := simnet.Time(routeLen - 1)
	return inject + m.p.TauS + pt + (hops-1)*m.p.Alpha + m.cfg.SlackBase + hops*m.perHopOr(perHop)
}

func (m *Manager) perHopOr(perHop simnet.Time) simnet.Time {
	if perHop > m.cfg.SlackPerHop {
		return perHop
	}
	return m.cfg.SlackPerHop
}

// recoverySlackPerHop is the per-hop slack for NAKs, retransmissions,
// and patched routes: these run outside the contention-free schedule
// (they can collide with data traffic and each other), so they always
// get the generous bound even at ρ = 0.
func (m *Manager) recoverySlackPerHop() simnet.Time {
	return 2 * (2*m.p.PacketTime() + m.p.TauS + m.p.D)
}

// DeadlineFor exposes the detection deadline of a stage data spec for
// tests: the closed-form arrival of its final copy plus configured
// slack.
func (m *Manager) DeadlineFor(s simnet.PacketSpec) simnet.Time {
	perHop := simnet.Time(0)
	if len(s.Route) != m.x.N() {
		perHop = m.recoverySlackPerHop()
	}
	return m.deadline(s.Inject, len(s.Route), s.Flits, perHop)
}

// Attach resets per-run tracking and arms one deadline timer per spec.
// Diagnosed faults persist across attaches.
func (m *Manager) Attach(rt *simnet.Runtime, specs []simnet.PacketSpec) {
	m.rt = rt
	m.tracked = m.tracked[:0]
	n := m.x.N()
	for i := range specs {
		s := &specs[i]
		o := &origin{specIdx: int32(i), id: s.ID, route: s.Route, got: make([]bool, n)}
		o.got[s.Route[0]] = true
		for _, v := range s.Route[1:] {
			if !o.got[v] {
				o.got[v] = true
				o.missing++
			}
		}
		// got doubles as the expected set during setup: flip it back to
		// "only the source holds a copy".
		for _, v := range s.Route[1:] {
			o.got[v] = false
		}
		o.got[s.Route[0]] = true
		// A stage route normally spans the whole cycle (N nodes); a
		// patched one is longer and runs outside the contention-free
		// schedule, so it gets recovery slack and loses conviction power.
		// Once any link is diagnosed, the stage mixes patched and
		// scheduled routes, whose detours contend with the schedule —
		// every spec then needs the generous slack (convictions remain
		// sound: with enough slack a miss still means loss).
		sched := len(s.Route) == n
		m.tracked = append(m.tracked, &track{kind: kindData, route: s.Route, got: o.got, o: o, sched: sched})
		perHop := simnet.Time(0)
		if !sched || len(m.deadLink) > 0 {
			perHop = m.recoverySlackPerHop()
		}
		rt.SetTimer(m.deadline(s.Inject, len(s.Route), s.Flits, perHop), token(int32(i), tokDeadline))
	}
}

// OnDeliver keeps per-spec and per-origin coverage current; a NAK
// reaching its destination (the source of the lost packet) schedules
// the retransmission after the current backoff.
func (m *Manager) OnDeliver(pkt int32, node topology.Node, at simnet.Time) {
	if int(pkt) >= len(m.tracked) {
		return
	}
	tr := m.tracked[pkt]
	if tr == nil {
		return
	}
	switch tr.kind {
	case kindData:
		// tr.got aliases o.got.
		if !tr.got[node] {
			tr.got[node] = true
			tr.o.missing--
		}
	case kindRetrans:
		if !tr.got[node] {
			tr.got[node] = true
		}
		if !tr.o.got[node] {
			tr.o.got[node] = true
			tr.o.missing--
			m.stats.Recovered++
		}
	case kindNak:
		if !tr.got[node] {
			tr.got[node] = true
		}
		if node == tr.dest && !tr.done {
			tr.done = true
			m.rt.SetTimer(at+m.backoff(tr.o), token(tr.o.specIdx, tokRetrans))
		}
	}
}

func (m *Manager) backoff(o *origin) simnet.Time {
	shift := o.attempts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16
	}
	return m.cfg.Backoff << uint(shift)
}

// OnTimer dispatches deadline checks and retransmission firings.
func (m *Manager) OnTimer(at simnet.Time, tok int64) {
	idx := int32(tok >> 2)
	if int(idx) >= len(m.tracked) {
		return
	}
	tr := m.tracked[idx]
	if tr == nil {
		return
	}
	switch tok & 3 {
	case tokDeadline:
		m.checkDeadline(tr, at)
	case tokRetrans:
		m.fireRetrans(tr.o, at)
	}
}

// checkDeadline runs when a spec's last copy should long have arrived.
// Missing coverage localizes the loss, feeds diagnosis, and starts (or
// continues) the NAK/retransmission loop.
func (m *Manager) checkDeadline(tr *track, at simnet.Time) {
	o := tr.o
	if tr.kind == kindNak {
		if tr.done {
			return // delivered; retransmission already scheduled
		}
		// The NAK itself was lost or is hopelessly late: retry. (No
		// suspicion from it — recovery traffic contends and may merely
		// be slow.)
		m.sendNak(o, tr, at)
		return
	}
	if o.missing == 0 {
		return
	}
	if tr.kind == kindData && !o.timedOut {
		o.timedOut = true
		m.stats.Timeouts += o.missing
	}
	// The teed copies form a prefix of the route: the first position
	// without a copy pins the loss to the arc entering it. Only specs on
	// the contention-free schedule convict (see track.sched).
	if p := firstMissing(tr); p > 0 {
		if tr.sched {
			m.suspectArc(tr.route[p-1], tr.route[p])
		}
		m.sendNak(o, tr, at)
		return
	}
	// This spec delivered everywhere on its own route, yet the origin
	// still misses destinations (a partial-coverage retransmission):
	// skip the NAK round-trip and go straight to another attempt.
	if o.attempts >= m.cfg.MaxAttempts {
		m.stats.GaveUp += o.missing
		return
	}
	o.attempts++
	m.rt.SetTimer(at+m.backoff(o), token(o.specIdx, tokRetrans))
}

// firstMissing returns the first route position (≥ 1) whose node has no
// copy from this spec, or -1 when the whole route is covered.
func firstMissing(tr *track) int {
	for p := 1; p < len(tr.route); p++ {
		if !tr.got[tr.route[p]] {
			return p
		}
	}
	return -1
}

// suspectArc accumulates loss evidence; at SuspectThreshold the
// underlying link is diagnosed dead (link faults in the fault model cut
// both directions, so diagnosis is per undirected link), and a node
// accumulating two dead links is flagged so detours avoid relaying
// through it.
func (m *Manager) suspectArc(u, v topology.Node) {
	a := arc{u, v}
	m.suspect[a]++
	e := topology.NewEdge(u, v)
	if m.deadLink[e] || m.suspect[a]+m.suspect[arc{v, u}] < m.cfg.SuspectThreshold {
		return
	}
	m.deadLink[e] = true
	m.stats.DeadLinks++
	for _, w := range []topology.Node{u, v} {
		m.deadInc[w]++
		if m.deadInc[w] >= 2 && !m.deadNode[w] {
			m.deadNode[w] = true
			m.stats.DeadNodes++
		}
	}
}

// sendNak injects a NAK from the first node that missed its copy back
// to the packet's source, along the shortest surviving directed HC
// segment (falling back to BFS around diagnosed faults). NAK packets
// are 1 flit, tee so every relay learns of the loss, and carry
// Seq = -attempt so graders can filter them out of coverage.
func (m *Manager) sendNak(o *origin, tr *track, at simnet.Time) {
	if o.attempts >= m.cfg.MaxAttempts {
		m.stats.GaveUp += o.missing
		return
	}
	p := firstMissing(tr)
	if p < 0 {
		// Nothing to localize on this spec; fall back to a direct retry.
		o.attempts++
		m.rt.SetTimer(at+m.backoff(o), token(o.specIdx, tokRetrans))
		return
	}
	detector := tr.route[p]
	src := o.route[0]
	if detector == src {
		// A patched route can revisit the source; treat as unlocalizable.
		o.attempts++
		m.rt.SetTimer(at+m.backoff(o), token(o.specIdx, tokRetrans))
		return
	}
	o.attempts++
	route := m.nakRoute(detector, src)
	if route == nil {
		m.stats.GaveUp += o.missing
		return
	}
	spec := simnet.PacketSpec{
		ID:     simnet.PacketID{Source: detector, Channel: o.id.Channel, Seq: -o.attempts},
		Route:  route,
		Inject: at,
		Tee:    true,
		Flits:  1,
	}
	idx, err := m.rt.Inject(spec)
	if err != nil {
		m.stats.GaveUp += o.missing
		return
	}
	m.stats.Naks++
	nt := &track{kind: kindNak, route: route, got: make([]bool, m.x.N()), o: o, dest: src}
	nt.got[route[0]] = true
	m.trackAt(idx, nt)
	m.rt.SetTimer(m.deadline(at, len(route), 1, m.recoverySlackPerHop()), token(idx, tokDeadline))
}

// fireRetrans re-injects the lost packet from its source. Preferred
// shape: the full cyclic route with every diagnosed-dead link replaced
// by a detour (so one packet re-covers everything, including nodes
// that never saw the original). If no consistent patched cycle exists,
// it degrades to per-destination shortest paths around the faults.
func (m *Manager) fireRetrans(o *origin, at simnet.Time) {
	if o.missing == 0 || o.attempts > m.cfg.MaxAttempts {
		return
	}
	routes := m.recoveryRoutes(o)
	if len(routes) == 0 {
		m.stats.GaveUp += o.missing
		return
	}
	for _, r := range routes {
		spec := simnet.PacketSpec{
			ID: simnet.PacketID{
				Source:  o.id.Source,
				Channel: o.id.Channel,
				Seq:     o.id.Seq + retransSeqStride*o.attempts,
			},
			Route:  r,
			Inject: at,
			Tee:    true,
		}
		idx, err := m.rt.Inject(spec)
		if err != nil {
			continue
		}
		m.stats.Retransmissions++
		rt := &track{kind: kindRetrans, route: r, got: make([]bool, m.x.N()), o: o}
		rt.got[r[0]] = true
		m.trackAt(idx, rt)
		m.rt.SetTimer(m.deadline(at, len(r), 0, m.recoverySlackPerHop()), token(idx, tokDeadline))
	}
}

// RetransSeqStride keeps retransmission sequence numbers disjoint from
// stage indices (Seq = stage < N for data packets) while staying
// non-negative, so graders count them as genuine copies yet tests can
// still tell them apart.
const RetransSeqStride = 1 << 20

// retransSeqStride is the historical private alias.
const retransSeqStride = RetransSeqStride

// Traffic classifies a packet by the repair layer's sequence-number
// conventions; see Classify.
type Traffic int

const (
	// TrafficData is an original stage packet (Seq = stage index).
	TrafficData Traffic = iota
	// TrafficNak is a negative-Seq NAK traveling back toward a source.
	TrafficNak
	// TrafficRetransmission is a recovery copy re-injected after a
	// deadline miss (Seq = stage + RetransSeqStride·attempt).
	TrafficRetransmission
)

func (t Traffic) String() string {
	switch t {
	case TrafficData:
		return "data"
	case TrafficNak:
		return "nak"
	case TrafficRetransmission:
		return "retransmission"
	default:
		return "unknown"
	}
}

// Classify reports which traffic class a packet's sequence number
// encodes. Observability sinks use it to separate repair-control
// traffic from the broadcast payload stream.
func Classify(id simnet.PacketID) Traffic {
	switch {
	case id.Seq < 0:
		return TrafficNak
	case id.Seq >= RetransSeqStride:
		return TrafficRetransmission
	default:
		return TrafficData
	}
}

// trackAt records tr at spec index idx. Runtime.Inject hands out
// consecutive indices, so idx is normally exactly len(tracked).
func (m *Manager) trackAt(idx int32, tr *track) {
	for int(idx) > len(m.tracked) {
		m.tracked = append(m.tracked, nil)
	}
	if int(idx) == len(m.tracked) {
		m.tracked = append(m.tracked, tr)
	} else {
		m.tracked[idx] = tr
	}
}
