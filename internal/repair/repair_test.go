package repair

import (
	"testing"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

func newIHC(t testing.TB, g *topology.Graph) *core.IHC {
	t.Helper()
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func testTopologies(t testing.TB) map[string]*core.IHC {
	return map[string]*core.IHC{
		"sq4": newIHC(t, topology.MustSquareTorus(4)),
		"q4":  newIHC(t, topology.MustHypercube(4)),
		"q6":  newIHC(t, topology.MustHypercube(6)),
	}
}

// coverage rebuilds the (receiver, source) copy counts from recorded
// deliveries, skipping NAK packets (negative Seq) and corrupted copies.
func coverage(n int, ds []simnet.Delivery) [][]int {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for _, d := range ds {
		if d.ID.Seq < 0 || d.Corrupted {
			continue
		}
		m[d.Node][d.ID.Source]++
	}
	return m
}

// TestFaultFreeNoFalsePositives is the detection-false-positive
// property: with repair enabled and no faults, at ρ ∈ {0, 0.1, 0.3} on
// SQ4/Q4/Q6, the manager must raise zero timeouts, send nothing, and
// the delivery stream must be byte-identical to a repair-off run.
func TestFaultFreeNoFalsePositives(t *testing.T) {
	for name, x := range testTopologies(t) {
		for _, rho := range []float64{0, 0.1, 0.3} {
			cfg := core.Config{
				Params:           simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37, Rho: rho, Seed: 7},
				Eta:              2,
				SkipCopies:       true,
				RecordDeliveries: true,
			}
			base, err := x.Run(cfg)
			if err != nil {
				t.Fatalf("%s ρ=%g baseline: %v", name, rho, err)
			}
			res, st, err := Run(x, cfg, Config{})
			if err != nil {
				t.Fatalf("%s ρ=%g repaired: %v", name, rho, err)
			}
			if st.Timeouts != 0 || st.Naks != 0 || st.Retransmissions != 0 || st.DeadLinks != 0 {
				t.Fatalf("%s ρ=%g: false positives: %+v", name, rho, st)
			}
			if len(base.Deliveriesv) != len(res.Deliveriesv) {
				t.Fatalf("%s ρ=%g: delivery counts differ: %d vs %d",
					name, rho, len(base.Deliveriesv), len(res.Deliveriesv))
			}
			for i := range base.Deliveriesv {
				if base.Deliveriesv[i] != res.Deliveriesv[i] {
					t.Fatalf("%s ρ=%g: delivery %d differs: %+v vs %+v",
						name, rho, i, base.Deliveriesv[i], res.Deliveriesv[i])
				}
			}
			if base.Finish != res.Finish {
				t.Fatalf("%s ρ=%g: finish differs: %d vs %d", name, rho, base.Finish, res.Finish)
			}
		}
	}
}

// runRepaired executes a repair-enabled broadcast against a set of
// permanently broken links and returns the result, stats, and coverage.
func runRepaired(t *testing.T, x *core.IHC, broken []topology.Edge, rcfg Config) (*core.Result, Stats, [][]int) {
	t.Helper()
	tp := &fault.TemporalPlan{}
	for _, e := range broken {
		tp.Links = append(tp.Links, fault.LinkFault{U: e.U, V: e.V, Until: fault.Forever})
	}
	inj, err := tp.Compile(x.Graph())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Params:           simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37},
		SkipCopies:       true,
		RecordDeliveries: true,
		Fault:            inj,
	}
	res, st, err := Run(x, cfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, st, coverage(x.N(), res.Deliveriesv)
}

func assertFullCoverage(t *testing.T, name string, cov [][]int) {
	t.Helper()
	for v := range cov {
		for s := range cov[v] {
			if v == s {
				continue
			}
			if cov[v][s] == 0 {
				t.Fatalf("%s: node %d never received source %d's message", name, v, s)
			}
		}
	}
}

// TestSingleBrokenLinkRecovers: one permanently dead link loses copies
// on both directed cycles crossing it; repair must detect, diagnose the
// link, retransmit, and restore full (receiver, source) coverage.
func TestSingleBrokenLinkRecovers(t *testing.T) {
	for name, x := range testTopologies(t) {
		g := x.Graph()
		e := g.Edges()[0]
		_, st, cov := runRepaired(t, x, []topology.Edge{e}, Config{})
		assertFullCoverage(t, name, cov)
		if st.Timeouts == 0 || st.Naks == 0 || st.Retransmissions == 0 {
			t.Fatalf("%s: no repair activity despite broken link: %+v", name, st)
		}
		if st.DeadLinks != 1 {
			t.Fatalf("%s: diagnosed %d dead links, want 1 (%+v)", name, st.DeadLinks, st)
		}
		if st.Recovered == 0 {
			t.Fatalf("%s: nothing recovered: %+v", name, st)
		}
		if st.Detours == 0 {
			t.Fatalf("%s: later stages were not patched around the dead link: %+v", name, st)
		}
	}
}

// TestBeyondStaticBound: γ broken links break the static masking bound
// (PR 3 showed exactness at γ); repair must still recover every pair as
// long as the residual graph is connected.
func TestBeyondStaticBound(t *testing.T) {
	for name, x := range testTopologies(t) {
		g := x.Graph()
		gamma := x.Gamma()
		// Break γ+1 links forming a matching (no shared endpoints), so no
		// node loses more than one link and the graph stays connected —
		// verified below.
		var broken []topology.Edge
		usedNode := map[topology.Node]bool{}
		for _, e := range g.Edges() {
			if len(broken) >= gamma+1 {
				break
			}
			if usedNode[e.U] || usedNode[e.V] {
				continue
			}
			usedNode[e.U], usedNode[e.V] = true, true
			broken = append(broken, e)
		}
		res := topology.New("residual", g.N())
		for _, e := range g.Edges() {
			dead := false
			for _, b := range broken {
				if e == b {
					dead = true
					break
				}
			}
			if !dead {
				res.AddEdge(e.U, e.V)
			}
		}
		if !res.Connected() {
			t.Fatalf("%s: test setup broke connectivity", name)
		}
		_, st, cov := runRepaired(t, x, broken, Config{})
		assertFullCoverage(t, name, cov)
		if st.DeadLinks == 0 {
			t.Fatalf("%s: no diagnosis with %d broken links: %+v", name, len(broken), st)
		}
	}
}

// TestPatchedRouteValidity: white-box check that patched routes avoid
// dead links and never reuse a directed arc (the engine would reject
// the whole stage otherwise).
func TestPatchedRouteValidity(t *testing.T) {
	x := newIHC(t, topology.MustSquareTorus(4))
	m := NewManager(x, simnet.Params{}.Defaulted(), Config{})
	g := x.Graph()
	// Diagnose three links dead by brute suspicion.
	for _, e := range g.Edges()[:3] {
		m.suspectArc(e.U, e.V)
		m.suspectArc(e.U, e.V)
	}
	if len(m.deadLink) != 3 {
		t.Fatalf("diagnosed %d links, want 3", len(m.deadLink))
	}
	for j := 0; j < x.Gamma(); j++ {
		c := x.DirectedCycle(j)
		route := append(append([]topology.Node{}, c...), c[0])
		out, _, ok := m.patched(route)
		if !ok {
			t.Fatalf("cycle %d: patch failed", j)
		}
		seen := map[arc]bool{}
		for h := 0; h+1 < len(out); h++ {
			u, w := out[h], out[h+1]
			if !g.HasEdge(u, w) {
				t.Fatalf("cycle %d: hop {%d,%d} is not an edge", j, u, w)
			}
			if m.deadEdge(u, w) {
				t.Fatalf("cycle %d: patched route still crosses dead link {%d,%d}", j, u, w)
			}
			if seen[arc{u, w}] {
				t.Fatalf("cycle %d: patched route reuses directed arc %d→%d", j, u, w)
			}
			seen[arc{u, w}] = true
		}
		// Every node of the original route is still visited.
		vis := map[topology.Node]bool{}
		for _, v := range out {
			vis[v] = true
		}
		for _, v := range route {
			if !vis[v] {
				t.Fatalf("cycle %d: patched route skips node %d", j, v)
			}
		}
	}
}

// TestNakRouteSurvives: the NAK return path must avoid diagnosed-dead
// links and reach the source.
func TestNakRouteSurvives(t *testing.T) {
	x := newIHC(t, topology.MustSquareTorus(4))
	m := NewManager(x, simnet.Params{}.Defaulted(), Config{})
	g := x.Graph()
	for _, e := range g.Edges()[:2] {
		m.suspectArc(e.U, e.V)
		m.suspectArc(e.U, e.V)
	}
	for v := topology.Node(1); int(v) < x.N(); v++ {
		r := m.nakRoute(v, 0)
		if r == nil {
			t.Fatalf("no NAK route from %d to 0", v)
		}
		if r[0] != v || r[len(r)-1] != 0 {
			t.Fatalf("NAK route %v does not run %d→0", r, v)
		}
		for h := 0; h+1 < len(r); h++ {
			if !g.HasEdge(r[h], r[h+1]) {
				t.Fatalf("NAK route %v: hop {%d,%d} not an edge", r, r[h], r[h+1])
			}
			if m.deadEdge(r[h], r[h+1]) {
				t.Fatalf("NAK route %v crosses dead link {%d,%d}", r, r[h], r[h+1])
			}
		}
	}
}

// TestDeadlineIsSufficient: every fault-free delivery of a stage must
// beat the deadline its spec is given — the formal version of "no false
// positives" for the deadline formula itself. One stage with known
// inject times suffices: the dynamic run hands Attach each stage's real
// inject times, so per-stage sufficiency extends to the whole run.
func TestDeadlineIsSufficient(t *testing.T) {
	for name, x := range testTopologies(t) {
		for _, rho := range []float64{0, 0.1, 0.3} {
			p := simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37, Rho: rho, Seed: 11}
			m := NewManager(x, p, Config{})
			specs, err := x.StagePackets(nil, 0, 2, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			byID := map[simnet.PacketID]simnet.Time{}
			for _, s := range specs {
				byID[s.ID] = m.DeadlineFor(s)
			}
			net, err := simnet.New(x.Graph(), p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := net.Run(specs, simnet.Options{RecordDeliveries: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Deliveriesv {
				if d.At > byID[d.ID] {
					t.Fatalf("%s ρ=%g: packet %v reached node %d at %d, after its deadline %d",
						name, rho, d.ID, d.Node, d.At, byID[d.ID])
				}
			}
		}
	}
}
