package repair

import (
	"testing"
	"time"

	"ihc/internal/topology"
)

func fixedDelay(d time.Duration) func(int) time.Duration {
	return func(int) time.Duration { return d }
}

func TestPlannerPullLifecycle(t *testing.T) {
	t0 := time.Unix(100, 0)
	p := NewPlanner(PullConfig{MaxAttempts: 3, Delay: fixedDelay(time.Second)})
	w := Want{Source: 5, Channel: 1}
	p.Expect(w, t0, []topology.Node{4, 6, 7})
	p.Expect(w, t0.Add(time.Hour), nil) // duplicate: ignored

	if p.Pending() != 1 || p.Done() {
		t.Fatalf("pending=%d done=%v after Expect", p.Pending(), p.Done())
	}
	// Not due before the deadline.
	if pulls := p.Due(t0.Add(-time.Millisecond), nil); len(pulls) != 0 {
		t.Fatalf("pulls before deadline: %v", pulls)
	}
	if at, ok := p.NextWake(); !ok || !at.Equal(t0) {
		t.Fatalf("NextWake = %v %v, want %v", at, ok, t0)
	}
	// First pull goes to the cycle predecessor, then the next-retry
	// time moves out by the backoff delay.
	pulls := p.Due(t0, nil)
	if len(pulls) != 1 || pulls[0].Provider != 4 || pulls[0].Attempt != 1 || pulls[0].Want != w {
		t.Fatalf("first pulls = %+v", pulls)
	}
	if pulls := p.Due(t0.Add(time.Second/2), nil); len(pulls) != 0 {
		t.Fatalf("pull fired before backoff elapsed: %v", pulls)
	}
	// A MISS reply halves the wait; rotation then advances to the next
	// provider.
	p.Miss(w, t0.Add(100*time.Millisecond))
	pulls = p.Due(t0.Add(600*time.Millisecond), nil)
	if len(pulls) != 1 || pulls[0].Provider != 6 || pulls[0].Attempt != 2 {
		t.Fatalf("post-MISS pulls = %+v", pulls)
	}
	// The copy arrives: satisfied, no further pulls, duplicate Got is
	// reported as such.
	if !p.Got(w) {
		t.Fatal("Got returned false for a pending want")
	}
	if p.Got(w) {
		t.Fatal("duplicate Got returned true")
	}
	if !p.Done() || p.Pending() != 0 {
		t.Fatalf("pending=%d done=%v after Got", p.Pending(), p.Done())
	}
	if pulls := p.Due(t0.Add(time.Hour), nil); len(pulls) != 0 {
		t.Fatalf("satisfied want still pulled: %v", pulls)
	}
	if _, ok := p.NextWake(); ok {
		t.Fatal("NextWake still scheduled after completion")
	}
}

func TestPlannerSkipsDownPeersAndExhausts(t *testing.T) {
	t0 := time.Unix(0, 0)
	p := NewPlanner(PullConfig{MaxAttempts: 3, Delay: fixedDelay(time.Second)})
	w := Want{Source: 2, Channel: 0}
	p.Expect(w, t0, []topology.Node{1, 3})

	// Provider 1's breaker is open: rotation lands on 3.
	down1 := func(v topology.Node) bool { return v == 1 }
	pulls := p.Due(t0, down1)
	if len(pulls) != 1 || pulls[0].Provider != 3 {
		t.Fatalf("pulls with 1 down = %+v", pulls)
	}
	// Everyone down: the attempt slot burns with no pull emitted.
	pulls = p.Due(t0.Add(time.Second), func(topology.Node) bool { return true })
	if len(pulls) != 0 {
		t.Fatalf("pulls with all peers down = %+v", pulls)
	}
	// Third (final) attempt fires, then the want is exhausted: no more
	// pulls, no wake, reported by Exhausted.
	pulls = p.Due(t0.Add(2*time.Second), nil)
	if len(pulls) != 1 || pulls[0].Attempt != 3 {
		t.Fatalf("final-attempt pulls = %+v", pulls)
	}
	if pulls := p.Due(t0.Add(time.Hour), nil); len(pulls) != 0 {
		t.Fatalf("exhausted want still pulled: %v", pulls)
	}
	if _, ok := p.NextWake(); ok {
		t.Fatal("NextWake scheduled for an exhausted want")
	}
	ex := p.Exhausted()
	if len(ex) != 1 || ex[0] != w {
		t.Fatalf("Exhausted = %v, want [%v]", ex, w)
	}
	if p.Done() {
		t.Fatal("exhausted want counted as done")
	}
	// A late copy still satisfies it.
	if !p.Got(w) {
		t.Fatal("late Got refused")
	}
	if len(p.Exhausted()) != 0 || !p.Done() {
		t.Fatal("late copy did not clear the exhausted state")
	}
}
