package repair

import (
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Route construction around diagnosed faults: NAK return paths along
// surviving directed Hamiltonian cycles, detours for single dead hops
// (edge-disjoint path candidates first, BFS fallback), and whole-route
// patching for retransmissions and subsequent stages.

// deadEdge reports whether the link {u,v} has been diagnosed dead.
func (m *Manager) deadEdge(u, v topology.Node) bool {
	return m.deadLink[topology.NewEdge(u, v)]
}

// nakRoute picks the shortest surviving return path from the detector v
// to the source s: for each of the γ directed HCs, the forward segment
// v→s along that cycle, skipping segments that cross a dead link;
// falling back to BFS around dead links/nodes if every cycle segment is
// severed. Returns a fresh slice, or nil when s is unreachable.
func (m *Manager) nakRoute(v, s topology.Node) []topology.Node {
	n := m.x.N()
	bestJ, bestLen := -1, n+1
	for j := 0; j < m.x.Gamma(); j++ {
		l := (m.x.ID(j, s) - m.x.ID(j, v) + n) % n
		if l == 0 || l >= bestLen {
			continue
		}
		if m.cycleSegmentDead(j, v, l) {
			continue
		}
		bestJ, bestLen = j, l
	}
	if bestJ >= 0 {
		return m.cycleSegment(bestJ, v, bestLen)
	}
	return m.g.ShortestPathAvoiding(v, s, func(a, b topology.Node) bool {
		return m.deadEdge(a, b) || (b != s && m.deadNode[b])
	})
}

// cycleSegment returns the l-hop forward segment of directed cycle j
// starting at node v as a fresh slice.
func (m *Manager) cycleSegment(j int, v topology.Node, l int) []topology.Node {
	c := m.x.DirectedCycle(j)
	n := len(c)
	p := m.x.ID(j, v)
	out := make([]topology.Node, l+1)
	for i := 0; i <= l; i++ {
		out[i] = c[(p+i)%n]
	}
	return out
}

func (m *Manager) cycleSegmentDead(j int, v topology.Node, l int) bool {
	c := m.x.DirectedCycle(j)
	n := len(c)
	p := m.x.ID(j, v)
	for i := 0; i < l; i++ {
		if m.deadEdge(c[(p+i)%n], c[(p+i+1)%n]) {
			return true
		}
	}
	return false
}

// patched rewrites route so that no hop crosses a diagnosed-dead link,
// inserting detours while keeping every directed arc of the result
// unique (the engine rejects a route using one directed link twice).
// Returns (route, false, true) untouched when nothing on it is dead.
func (m *Manager) patched(route []topology.Node) (out []topology.Node, changed, ok bool) {
	needs := false
	for h := 0; h+1 < len(route); h++ {
		if m.deadEdge(route[h], route[h+1]) {
			needs = true
			break
		}
	}
	if !needs {
		return route, false, true
	}
	used := make(map[arc]bool, len(route))
	tail := make(map[arc]int, len(route))
	for h := 0; h+1 < len(route); h++ {
		tail[arc{route[h], route[h+1]}]++
	}
	out = make([]topology.Node, 1, len(route)+8)
	out[0] = route[0]
	for h := 0; h+1 < len(route); h++ {
		u, w := route[h], route[h+1]
		tail[arc{u, w}]--
		if !m.deadEdge(u, w) && !used[arc{u, w}] {
			used[arc{u, w}] = true
			out = append(out, w)
			continue
		}
		d := m.detour(u, w, used, tail)
		if d == nil {
			return nil, true, false
		}
		for i := 1; i < len(d); i++ {
			used[arc{d[i-1], d[i]}] = true
			out = append(out, d[i])
		}
	}
	return out, true, true
}

// detour finds a u→w replacement path that avoids dead links, directed
// arcs already consumed by the route being built, and — preferably —
// arcs the rest of the original route still needs. Edge-disjoint path
// candidates (the flow decomposition of EdgeDisjointPaths) are tried
// first: at most one of them can contain any given dead link, so with
// γ ≥ 2 one usually survives; BFS handles the remainder.
func (m *Manager) detour(u, w topology.Node, used map[arc]bool, tail map[arc]int) []topology.Node {
	avoidFull := func(a, b topology.Node) bool {
		return m.deadEdge(a, b) || used[arc{a, b}] || tail[arc{a, b}] > 0 || (b != w && m.deadNode[b])
	}
	for _, cand := range m.g.EdgeDisjointPathRoutes(u, w) {
		good := true
		for i := 1; i < len(cand); i++ {
			if avoidFull(cand[i-1], cand[i]) {
				good = false
				break
			}
		}
		if good {
			return cand
		}
	}
	if p := m.g.ShortestPathAvoiding(u, w, avoidFull); p != nil {
		return p
	}
	// Last resort: allow stealing arcs the original route still wants;
	// the stolen hop will itself be detoured when its turn comes.
	return m.g.ShortestPathAvoiding(u, w, func(a, b topology.Node) bool {
		return m.deadEdge(a, b) || used[arc{a, b}]
	})
}

// recoveryRoutes builds the retransmission route set for an origin: the
// fully patched cyclic route when one exists, else per-destination
// shortest paths around the faults for every still-missing node.
func (m *Manager) recoveryRoutes(o *origin) [][]topology.Node {
	if full, changed, ok := m.patched(o.route); ok {
		if !changed {
			// Re-send the original route unchanged (transient loss or a
			// not-yet-diagnosed fault: this retry is the diagnosis probe).
			full = append([]topology.Node(nil), o.route...)
		}
		return [][]topology.Node{full}
	}
	src := o.route[0]
	var out [][]topology.Node
	seen := make(map[topology.Node]bool, len(o.route))
	for _, w := range o.route[1:] {
		if seen[w] || o.got[w] {
			seen[w] = true
			continue
		}
		seen[w] = true
		p := m.g.ShortestPathAvoiding(src, w, func(a, b topology.Node) bool {
			return m.deadEdge(a, b) || (b != w && m.deadNode[b])
		})
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// PatchSpecs is the core.Config.PatchRoutes hook: before each stage is
// simulated, every route crossing a diagnosed-dead link is replaced by
// its patched copy, so subsequent stages route around the fault instead
// of retrying into it. Routes are swapped, never edited in place (they
// alias the IHC's shared backing storage).
func (m *Manager) PatchSpecs(specs []simnet.PacketSpec) {
	if len(m.deadLink) == 0 {
		return
	}
	for i := range specs {
		if p, changed, ok := m.patched(specs[i].Route); ok && changed {
			specs[i].Route = p
			m.stats.Detours++
		}
	}
}
