package repair

import (
	"time"

	"ihc/internal/topology"
)

// This file is the wall-clock counterpart of the simulated-time Manager
// above: the same closed-form-deadline → NAK → bounded-backoff-retry
// design, recast as a pure state machine a real-transport node drives
// off actual timers. It owns no clocks and no sockets — the caller
// feeds it the current time and carries out the pulls it emits — so the
// retry policy is unit-testable with a manual clock and shared between
// the in-process loopback cluster and the multi-process TCP daemon.
//
// The protocol it plans is pull-based anti-entropy rather than the
// Manager's source-side retransmission: on a real mesh the failed
// element is unknown (crashed process? cut link? slow host?), so the
// node that misses a deadline asks its own graph neighbors for the copy
// — the cycle-j predecessor first (the node that would have relayed it
// to us), then the remaining neighbors in rotation — backing off with
// jitter between rounds and skipping peers whose circuit breakers are
// open. Every node stores each copy it accepts (and its own at
// injection), so any neighbor that already holds the copy can serve it;
// while the surviving subgraph stays connected, rotation finds a holder
// and the pull converges.

// Want names one expected broadcast copy: source s's message on
// directed Hamiltonian cycle j.
type Want struct {
	Source  topology.Node
	Channel uint8
}

// Pull is one planned repair action: send a NAK for Want to Provider.
type Pull struct {
	Want
	Provider topology.Node
	Attempt  int // 1-based attempt number this pull represents
}

// PullConfig shapes the planner.
type PullConfig struct {
	// MaxAttempts bounds the NAKs sent per missing copy; afterwards
	// the want is reported by Exhausted instead of retried forever.
	// Default 12.
	MaxAttempts int
	// Delay returns the wait before attempt k+1 (k = attempts made so
	// far, so Delay(1) follows the first NAK). Callers pass a jittered
	// exponential backoff; required.
	Delay func(attempt int) time.Duration
}

type pullState struct {
	w         Want
	providers []topology.Node
	idx       int // rotation position
	attempts  int
	nextAt    time.Time
	satisfied bool
}

// Planner tracks every copy a node still expects and decides, given the
// current time, which NAKs to send to whom. Not safe for concurrent
// use; the node's event loop owns it.
type Planner struct {
	cfg     PullConfig
	wants   map[Want]*pullState
	order   []*pullState // insertion order, for deterministic emission
	pending int
}

// NewPlanner returns an empty planner.
func NewPlanner(cfg PullConfig) *Planner {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 12
	}
	if cfg.Delay == nil {
		panic("repair: PullConfig.Delay is required")
	}
	return &Planner{cfg: cfg, wants: make(map[Want]*pullState)}
}

// Expect registers a copy the node is owed. deadline is when the
// schedule's closed form (stage start + hops·per-hop latency + slack)
// says it should have arrived; the first pull fires then. providers is
// the rotation order, normally the cycle predecessor followed by the
// node's remaining graph neighbors.
func (p *Planner) Expect(w Want, deadline time.Time, providers []topology.Node) {
	if _, dup := p.wants[w]; dup {
		return
	}
	st := &pullState{w: w, providers: providers, nextAt: deadline}
	p.wants[w] = st
	p.order = append(p.order, st)
	p.pending++
}

// Got marks a copy received. Reports whether it was still pending (the
// first copy; duplicates return false).
func (p *Planner) Got(w Want) bool {
	st, ok := p.wants[w]
	if !ok || st.satisfied {
		return false
	}
	st.satisfied = true
	p.pending--
	return true
}

// Miss records a provider answering "I don't hold that copy either":
// rotation has already advanced past it, so the only adjustment is to
// retry sooner than the full deadline-miss backoff would.
func (p *Planner) Miss(w Want, now time.Time) {
	st, ok := p.wants[w]
	if !ok || st.satisfied || st.attempts >= p.cfg.MaxAttempts {
		return
	}
	next := now.Add(p.cfg.Delay(st.attempts) / 2)
	if next.Before(st.nextAt) {
		st.nextAt = next
	}
}

// Due returns the pulls whose time has come, advancing each want's
// rotation, attempt count, and next-retry time. peerDown (optional)
// lets the rotation skip providers whose circuit breakers are open; if
// every provider is down the want just waits out its backoff.
func (p *Planner) Due(now time.Time, peerDown func(topology.Node) bool) []Pull {
	var out []Pull
	for _, st := range p.order {
		if st.satisfied || st.attempts >= p.cfg.MaxAttempts || now.Before(st.nextAt) {
			continue
		}
		provider, ok := p.pickProvider(st, peerDown)
		st.attempts++
		st.nextAt = now.Add(p.cfg.Delay(st.attempts))
		if !ok {
			continue // all providers down; burn the attempt slot and wait
		}
		out = append(out, Pull{Want: st.w, Provider: provider, Attempt: st.attempts})
	}
	return out
}

func (p *Planner) pickProvider(st *pullState, peerDown func(topology.Node) bool) (topology.Node, bool) {
	for i := 0; i < len(st.providers); i++ {
		cand := st.providers[st.idx%len(st.providers)]
		st.idx++
		if peerDown == nil || !peerDown(cand) {
			return cand, true
		}
	}
	return 0, false
}

// NextWake returns the earliest time any unsatisfied, unexhausted want
// becomes due. ok is false when nothing is left to do.
func (p *Planner) NextWake() (at time.Time, ok bool) {
	for _, st := range p.order {
		if st.satisfied || st.attempts >= p.cfg.MaxAttempts {
			continue
		}
		if !ok || st.nextAt.Before(at) {
			at, ok = st.nextAt, true
		}
	}
	return at, ok
}

// Pending returns how many expected copies are still missing.
func (p *Planner) Pending() int { return p.pending }

// Done reports whether every expected copy has arrived.
func (p *Planner) Done() bool { return p.pending == 0 }

// Terminal reports whether the planner has no live work left: every
// expected copy has either arrived or burned its full attempt budget.
// Done() distinguishes the happy case; Terminal && !Done means the
// round ends in an Exhausted verdict. A late Got on an exhausted want
// still counts it satisfied, so a terminal-failed round can be revived
// by an unsolicited copy (a rejoining node's late injection) as long
// as the caller keeps feeding the planner.
func (p *Planner) Terminal() bool {
	return p.pending == 0 || p.pending <= len(p.Exhausted())
}

// Exhausted lists wants that burned MaxAttempts without a copy
// arriving — the node's final verdict will fail on these.
func (p *Planner) Exhausted() []Want {
	var out []Want
	for _, st := range p.order {
		if !st.satisfied && st.attempts >= p.cfg.MaxAttempts {
			out = append(out, st.w)
		}
	}
	return out
}
