package sched

import (
	"testing"

	"ihc/internal/simnet"
	"ihc/internal/topology"
)

var p = simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

func ringRoute(n, src, hops int) []topology.Node {
	r := make([]topology.Node, hops+1)
	for i := range r {
		r[i] = topology.Node((src + i) % n)
	}
	return r
}

func TestIdealIntervalsTiming(t *testing.T) {
	specs := []simnet.PacketSpec{{
		ID:     simnet.PacketID{Source: 0},
		Route:  ringRoute(8, 0, 3),
		Inject: 10,
	}}
	ivs := IdealIntervals(p, specs)
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	// Hop h occupies [inject+τ_S+hα, ...+μα).
	for h, iv := range ivs {
		wantStart := simnet.Time(10) + p.TauS + simnet.Time(h)*p.Alpha
		if iv.Start != wantStart || iv.End != wantStart+p.PacketTime() {
			t.Fatalf("hop %d: [%d,%d), want start %d", h, iv.Start, iv.End, wantStart)
		}
		if iv.Link != (topology.Arc{From: topology.Node(h), To: topology.Node(h + 1)}) {
			t.Fatalf("hop %d link = %v", h, iv.Link)
		}
	}
}

func TestIdealIntervalsFlitsOverride(t *testing.T) {
	specs := []simnet.PacketSpec{{
		ID:    simnet.PacketID{Source: 0},
		Route: ringRoute(8, 0, 1),
		Flits: 5,
	}}
	ivs := IdealIntervals(p, specs)
	if got := ivs[0].End - ivs[0].Start; got != 5*p.Alpha {
		t.Fatalf("flit-override occupancy = %d, want %d", got, 5*p.Alpha)
	}
}

func TestFindConflictsDetectsOverlap(t *testing.T) {
	specs := []simnet.PacketSpec{
		{ID: simnet.PacketID{Source: 0}, Route: ringRoute(8, 0, 2)},
		{ID: simnet.PacketID{Source: 1, Channel: 1}, Route: ringRoute(8, 1, 1), Inject: 10},
	}
	// Packet 0 occupies link 1->2 at [τ_S+α, τ_S+α+μα); packet 1 occupies
	// it at [10+τ_S, 10+τ_S+μα): overlap since α=20 > 10.
	conflicts := FindConflicts(IdealIntervals(p, specs))
	if len(conflicts) != 1 {
		t.Fatalf("got %d conflicts, want 1", len(conflicts))
	}
	c := conflicts[0]
	if c.Link != (topology.Arc{From: 1, To: 2}) {
		t.Fatalf("conflict link = %v", c.Link)
	}
	if c.String() == "" {
		t.Fatal("empty conflict string")
	}
	if err := Verify(p, specs); err == nil {
		t.Fatal("Verify accepted conflicting schedule")
	}
}

func TestVerifyAcceptsSpacedPipeline(t *testing.T) {
	// Ring pipeline with sources μ apart: the IHC invariant.
	const n = 12
	var specs []simnet.PacketSpec
	for s := 0; s < n; s += p.Mu {
		specs = append(specs, simnet.PacketSpec{
			ID:    simnet.PacketID{Source: topology.Node(s)},
			Route: ringRoute(n, s, n-1),
		})
	}
	if err := Verify(p, specs); err != nil {
		t.Fatalf("spaced pipeline rejected: %v", err)
	}
	// Spacing 1 with μ=2 must conflict.
	specs = specs[:0]
	for s := 0; s < n; s++ {
		specs = append(specs, simnet.PacketSpec{
			ID:    simnet.PacketID{Source: topology.Node(s)},
			Route: ringRoute(n, s, n-1),
		})
	}
	if err := Verify(p, specs); err == nil {
		t.Fatal("η=1 < μ=2 pipeline accepted")
	}
}

func TestLinkLoadAndMaxConcurrency(t *testing.T) {
	specs := []simnet.PacketSpec{
		{ID: simnet.PacketID{Source: 0}, Route: ringRoute(8, 0, 2)},
		{ID: simnet.PacketID{Source: 4, Channel: 1}, Route: ringRoute(8, 4, 2)},
	}
	ivs := IdealIntervals(p, specs)
	load := LinkLoad(ivs)
	if len(load) != 4 {
		t.Fatalf("got %d loaded links", len(load))
	}
	for l, v := range load {
		if v != p.PacketTime() {
			t.Fatalf("link %v load = %d", l, v)
		}
	}
	// Both packets move in lockstep: two links busy simultaneously...
	// hop 0 of both overlaps, and adjacent hops overlap since μα > α.
	if mc := MaxConcurrency(ivs); mc < 2 || mc > 4 {
		t.Fatalf("MaxConcurrency = %d", mc)
	}
	if MaxConcurrency(nil) != 0 {
		t.Fatal("empty concurrency not 0")
	}
}
