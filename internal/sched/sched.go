// Package sched performs static (offline) analysis of packet schedules:
// given the packets an algorithm would inject and the network timing
// parameters, it computes every directed link's occupancy intervals under
// the ideal dedicated-network assumption (every hop after injection cuts
// through) and reports any two packets that would contend for the same
// link at the same time.
//
// This is an independent check of the IHC algorithm's central claim — with
// interleaving distance η >= μ, no two packets ever contend for the same
// link — complementary to the event-driven simulator in package simnet,
// which detects contention dynamically. The static analysis is exact for
// contention-free schedules: if it finds no overlap, the ideal timing is
// feasible and the simulator will realize it.
package sched

import (
	"fmt"
	"sort"

	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Interval is one packet's occupancy of one directed link.
type Interval struct {
	Link       topology.Arc
	Start, End simnet.Time // [Start, End): header departure to tail passage
	ID         simnet.PacketID
}

// Conflict reports two packets overlapping on a link.
type Conflict struct {
	Link   topology.Arc
	A, B   simnet.PacketID
	AStart simnet.Time
	AEnd   simnet.Time
	BStart simnet.Time
}

func (c Conflict) String() string {
	return fmt.Sprintf("link %v: %v [%d,%d) overlaps %v starting %d",
		c.Link, c.A, c.AStart, c.AEnd, c.B, c.BStart)
}

// IdealIntervals computes, for each packet and hop, the interval during
// which the packet occupies the hop's directed link assuming ideal
// cut-through operation: the header leaves the source at Inject+τ_S,
// advances by α per intermediate node, and each link is held for the
// packet's transmission time (μα, or Flits·α if overridden).
func IdealIntervals(p simnet.Params, specs []simnet.PacketSpec) []Interval {
	var out []Interval
	for _, s := range specs {
		pt := p.PacketTime()
		if s.Flits > 0 {
			pt = simnet.Time(s.Flits) * p.Alpha
		}
		depart := s.Inject + p.TauS
		for h := 0; h+1 < len(s.Route); h++ {
			out = append(out, Interval{
				Link:  topology.Arc{From: s.Route[h], To: s.Route[h+1]},
				Start: depart,
				End:   depart + pt,
				ID:    s.ID,
			})
			depart += p.Alpha
		}
	}
	return out
}

// FindConflicts returns every pair of intervals that overlap on the same
// directed link, sorted by link and time. A contention-free schedule
// returns an empty slice.
func FindConflicts(intervals []Interval) []Conflict {
	byLink := make(map[topology.Arc][]Interval)
	for _, iv := range intervals {
		byLink[iv.Link] = append(byLink[iv.Link], iv)
	}
	links := make([]topology.Arc, 0, len(byLink))
	for l := range byLink {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	var out []Conflict
	for _, l := range links {
		ivs := byLink[l]
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].Start != ivs[j].Start {
				return ivs[i].Start < ivs[j].Start
			}
			return ivs[i].End < ivs[j].End
		})
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].End {
				out = append(out, Conflict{
					Link:   l,
					A:      ivs[i-1].ID,
					B:      ivs[i].ID,
					AStart: ivs[i-1].Start,
					AEnd:   ivs[i-1].End,
					BStart: ivs[i].Start,
				})
			}
		}
	}
	return out
}

// Verify is a convenience wrapper: it returns an error describing the
// first few conflicts if the schedule is not contention-free.
func Verify(p simnet.Params, specs []simnet.PacketSpec) error {
	conflicts := FindConflicts(IdealIntervals(p, specs))
	if len(conflicts) == 0 {
		return nil
	}
	limit := len(conflicts)
	if limit > 3 {
		limit = 3
	}
	msg := fmt.Sprintf("sched: %d link conflicts; first %d:", len(conflicts), limit)
	for _, c := range conflicts[:limit] {
		msg += "\n  " + c.String()
	}
	return fmt.Errorf("%s", msg)
}

// LinkLoad returns, for each directed link used by the schedule, the total
// occupied time — useful for utilization studies (the paper's trade-off:
// larger η lowers instantaneous link utilization by the broadcast).
func LinkLoad(intervals []Interval) map[topology.Arc]simnet.Time {
	load := make(map[topology.Arc]simnet.Time)
	for _, iv := range intervals {
		load[iv.Link] += iv.End - iv.Start
	}
	return load
}

// MaxConcurrency returns the peak number of links simultaneously busy at
// any instant, a direct measure of instantaneous network usage.
func MaxConcurrency(intervals []Interval) int {
	type ev struct {
		t     simnet.Time
		delta int
	}
	evs := make([]ev, 0, 2*len(intervals))
	for _, iv := range intervals {
		evs = append(evs, ev{iv.Start, 1}, ev{iv.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // process ends before starts
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
