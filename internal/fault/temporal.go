package fault

import (
	"fmt"
	"math"

	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Forever is a window end meaning "never recovers".
const Forever = simnet.Time(math.MaxInt64)

// NodeFault is a node whose failure behaviour switches on at a simulated
// time: before At the node relays faithfully, from At on it behaves as
// Kind. At = 0 reproduces a statically faulty node.
type NodeFault struct {
	Node topology.Node
	Kind Kind
	At   simnet.Time
}

// LinkFault is an undirected link that misbehaves during the half-open
// window [From, Until): copies whose header departs across it inside the
// window are lost (Corrupt == false) or payload-corrupted
// (Corrupt == true). Until = Forever models a link that never recovers;
// a finite Until models repair. Several windows may target one link.
type LinkFault struct {
	U, V    topology.Node
	From    simnet.Time
	Until   simnet.Time
	Corrupt bool
}

// TemporalPlan is a fault plan over simulated time, executed by the simnet
// engine through a compiled Injector rather than combinatorially. The
// zero value is fault-free.
type TemporalPlan struct {
	Nodes []NodeFault
	Links []LinkFault
	Seed  int64 // drives Byzantine coin flips, same formula as Plan.TraceRoute
}

// FromStatic lifts a combinatorial Plan into the temporal model: every
// faulty node is faulty from time 0, every broken or noisy link is down
// for all time. Grading a static plan through the engine with
// FromStatic(p).Compile(g) must agree exactly with TraceRoute-based
// grading of p — the injector's per-hop decisions use the same Byzantine
// coin and the same precedence (loss dominates corruption).
func FromStatic(p *Plan) *TemporalPlan {
	tp := &TemporalPlan{}
	if p == nil {
		return tp
	}
	tp.Seed = p.Seed
	for v, k := range p.Nodes {
		if k == Healthy {
			continue
		}
		tp.Nodes = append(tp.Nodes, NodeFault{Node: v, Kind: k})
	}
	for e, broken := range p.Links {
		if broken {
			tp.Links = append(tp.Links, LinkFault{U: e.U, V: e.V, Until: Forever})
		}
	}
	for e, noisy := range p.Noisy {
		if noisy {
			tp.Links = append(tp.Links, LinkFault{U: e.U, V: e.V, Until: Forever, Corrupt: true})
		}
	}
	return tp
}

// Validate checks the plan against a concrete graph: nodes in [0, N),
// links that are edges of g, non-negative activation times, and non-empty
// windows. A node may appear at most once (two activation times for one
// node would make the compiled behaviour order-dependent).
func (tp *TemporalPlan) Validate(g *topology.Graph) error {
	if tp == nil {
		return nil
	}
	seen := make(map[topology.Node]bool, len(tp.Nodes))
	for _, nf := range tp.Nodes {
		if nf.Node < 0 || int(nf.Node) >= g.N() {
			return fmt.Errorf("fault: temporal plan names node %d outside %s (N=%d)", nf.Node, g.Name(), g.N())
		}
		if seen[nf.Node] {
			return fmt.Errorf("fault: temporal plan names node %d twice", nf.Node)
		}
		seen[nf.Node] = true
		if nf.At < 0 {
			return fmt.Errorf("fault: node %d has negative activation time %d", nf.Node, nf.At)
		}
	}
	for _, lf := range tp.Links {
		if !g.HasEdge(lf.U, lf.V) {
			return fmt.Errorf("fault: temporal plan names link {%d,%d} that is not an edge of %s", lf.U, lf.V, g.Name())
		}
		if lf.From < 0 || lf.From >= lf.Until {
			return fmt.Errorf("fault: link {%d,%d} has empty or negative window [%d,%d)", lf.U, lf.V, lf.From, lf.Until)
		}
	}
	return nil
}

// window is a compiled link-fault interval.
type window struct {
	from, until simnet.Time
	corrupt     bool
}

// Injector is a TemporalPlan compiled against a graph, implementing
// simnet.FaultHook. Node state is dense (one kind and one activation time
// per node), so the common all-nodes-healthy-links-only and
// all-links-healthy-nodes-only plans cost a couple of array reads per
// hop; link windows live in a map consulted only when the plan has link
// faults at all.
type Injector struct {
	seed     int64
	kind     []Kind
	at       []simnet.Time
	windows  map[topology.Edge][]window
	hasLinks bool
}

// Compile validates tp against g and builds the engine hook.
func (tp *TemporalPlan) Compile(g *topology.Graph) (*Injector, error) {
	if err := tp.Validate(g); err != nil {
		return nil, err
	}
	in := &Injector{
		kind: make([]Kind, g.N()),
		at:   make([]simnet.Time, g.N()),
	}
	if tp == nil {
		return in, nil
	}
	in.seed = tp.Seed
	for _, nf := range tp.Nodes {
		in.kind[nf.Node] = nf.Kind
		in.at[nf.Node] = nf.At
	}
	if len(tp.Links) > 0 {
		in.hasLinks = true
		in.windows = make(map[topology.Edge][]window, len(tp.Links))
		for _, lf := range tp.Links {
			e := topology.NewEdge(lf.U, lf.V)
			in.windows[e] = append(in.windows[e], window{lf.From, lf.Until, lf.Corrupt})
		}
	}
	return in, nil
}

// Relay implements simnet.FaultHook with the same semantics TraceRoute
// applies combinatorially: the relaying node's fault (only for hop >= 1 —
// a faulty *source* is the grader's concern, it sends wrong payloads
// rather than mis-relaying) composes with the outgoing link's state, and
// loss dominates corruption within a hop. The Byzantine coin is the
// TraceRoute formula with k = hop, so a statically-lifted plan makes
// bitwise-identical decisions in both graders.
func (in *Injector) Relay(id simnet.PacketID, hop int, from, to topology.Node, depart simnet.Time) simnet.FaultAction {
	act := simnet.FaultNone
	if hop >= 1 {
		if k := in.kind[from]; k != Healthy && depart >= in.at[from] {
			switch k {
			case Crash:
				return simnet.FaultDrop
			case Corrupt:
				act = simnet.FaultCorrupt
			case Byzantine:
				h := uint64(in.seed) ^ uint64(from)*2654435761 ^ uint64(id.Channel)*40503 ^ uint64(hop)*97
				switch h % 3 {
				case 0:
					return simnet.FaultDrop
				case 1:
					act = simnet.FaultCorrupt
				}
			}
		}
	}
	if in.hasLinks {
		for _, w := range in.windows[topology.NewEdge(from, to)] {
			if depart >= w.from && depart < w.until {
				if !w.corrupt {
					return simnet.FaultDrop
				}
				act = simnet.FaultCorrupt
			}
		}
	}
	return act
}
