package fault

import (
	"testing"
	"testing/quick"

	"ihc/internal/topology"
)

func route(nodes ...topology.Node) []topology.Node { return nodes }

func TestKindAndFateStrings(t *testing.T) {
	for _, k := range []Kind{Healthy, Crash, Corrupt, Byzantine, Kind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	for _, f := range []CopyFate{Intact, Corrupted, Lost, CopyFate(9)} {
		if f.String() == "" {
			t.Fatal("empty fate string")
		}
	}
}

func TestTraceRouteFaultFree(t *testing.T) {
	p := NewPlan(1)
	fates := p.TraceRoute(route(0, 1, 2, 3), 0)
	for k := 1; k < 4; k++ {
		if fates[k] != Intact {
			t.Fatalf("fault-free fate[%d] = %v", k, fates[k])
		}
	}
}

func TestTraceRouteNilPlanIsHealthy(t *testing.T) {
	var p *Plan
	if p.Node(3) != Healthy || p.LinkBroken(0, 1) {
		t.Fatal("nil plan not healthy")
	}
}

func TestTraceRouteCrashKillsDownstream(t *testing.T) {
	p := NewPlan(1)
	p.Nodes[2] = Crash
	fates := p.TraceRoute(route(0, 1, 2, 3, 4), 0)
	want := []CopyFate{Intact, Intact, Intact, Lost, Lost}
	for k := 1; k < 5; k++ {
		if fates[k] != want[k] {
			t.Fatalf("fate[%d] = %v, want %v", k, fates[k], want[k])
		}
	}
}

func TestTraceRouteCorruptTaintsDownstream(t *testing.T) {
	p := NewPlan(1)
	p.Nodes[1] = Corrupt
	fates := p.TraceRoute(route(0, 1, 2, 3), 0)
	// Node 1 itself receives intact (the copy passes through its FIFO
	// before its faulty relay logic), nodes 2, 3 get the tainted copy.
	if fates[1] != Intact || fates[2] != Corrupted || fates[3] != Corrupted {
		t.Fatalf("fates = %v", fates)
	}
}

func TestTraceRouteFinalNodeFaultIrrelevant(t *testing.T) {
	p := NewPlan(1)
	p.Nodes[3] = Crash
	fates := p.TraceRoute(route(0, 1, 2, 3), 0)
	if fates[3] != Intact {
		t.Fatalf("copy to the final (faulty) node should still arrive intact, got %v", fates[3])
	}
}

func TestTraceRouteBrokenLink(t *testing.T) {
	p := NewPlan(1)
	p.Links[topology.NewEdge(1, 2)] = true
	fates := p.TraceRoute(route(0, 1, 2, 3), 0)
	if fates[1] != Intact || fates[2] != Lost || fates[3] != Lost {
		t.Fatalf("fates = %v", fates)
	}
	// Broken links are bidirectional.
	fates = p.TraceRoute(route(3, 2, 1, 0), 0)
	if fates[1] != Intact || fates[2] != Lost {
		t.Fatalf("reverse fates = %v", fates)
	}
}

func TestByzantineDeterministic(t *testing.T) {
	p := NewPlan(99)
	p.Nodes[1] = Byzantine
	p.Nodes[2] = Byzantine
	a := p.TraceRoute(route(0, 1, 2, 3, 4), 5)
	b := p.TraceRoute(route(0, 1, 2, 3, 4), 5)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("byzantine trace not deterministic at %d", k)
		}
	}
	// Different channels may behave differently (two-faced relaying);
	// just require the trace is well-formed: once Lost, stays Lost.
	for ch := 0; ch < 8; ch++ {
		fates := p.TraceRoute(route(0, 1, 2, 3, 4), ch)
		lost := false
		for k := 1; k < len(fates); k++ {
			if lost && fates[k] != Lost {
				t.Fatalf("ch %d: copy resurrected at %d: %v", ch, k, fates)
			}
			if fates[k] == Lost {
				lost = true
			}
		}
	}
}

func TestRandomNodeFaults(t *testing.T) {
	p, err := RandomNodeFaults(16, 5, Crash, 7, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.FaultyNodes()) != 5 {
		t.Fatalf("got %d faults", len(p.FaultyNodes()))
	}
	for _, v := range p.FaultyNodes() {
		if v == 0 || v == 15 {
			t.Fatalf("excluded node %d is faulty", v)
		}
		if p.Node(v) != Crash {
			t.Fatalf("node %d kind %v", v, p.Node(v))
		}
	}
	// Determinism.
	q, err := RandomNodeFaults(16, 5, Crash, 7, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.FaultyNodes(), q.FaultyNodes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}

// TestRandomNodeFaultsErrorsWhenImpossible pins the satellite fix: an
// unsatisfiable request is an error, not a panic or an infinite loop.
func TestRandomNodeFaultsErrorsWhenImpossible(t *testing.T) {
	if _, err := RandomNodeFaults(4, 4, Crash, 1, 0); err == nil {
		t.Fatal("no error placing 4 faults in 4 nodes with 1 excluded")
	}
	if _, err := RandomNodeFaults(8, -1, Crash, 1); err == nil {
		t.Fatal("no error for negative fault count")
	}
}

func TestRandomLinkFaults(t *testing.T) {
	g := topology.MustHypercube(3)
	p, err := RandomLinkFaults(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Links) != 4 {
		t.Fatalf("got %d broken links", len(p.Links))
	}
	for e := range p.Links {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("broken non-edge %v", e)
		}
	}
	if _, err := RandomLinkFaults(g, len(g.Edges())+1, 3); err == nil {
		t.Fatal("no error breaking more links than exist")
	}
}

// Property: the number of Lost/Corrupted receivers never decreases as
// more faults are added along a route.
func TestQuickFaultMonotone(t *testing.T) {
	base := route(0, 1, 2, 3, 4, 5, 6, 7)
	f := func(aRaw, bRaw uint8) bool {
		a := topology.Node(aRaw%6 + 1)
		b := topology.Node(bRaw%6 + 1)
		p1 := NewPlan(1)
		p1.Nodes[a] = Crash
		p2 := NewPlan(1)
		p2.Nodes[a] = Crash
		p2.Nodes[b] = Crash
		bad1, bad2 := 0, 0
		for k, f := range p1.TraceRoute(base, 0) {
			if k > 0 && f != Intact {
				bad1++
			}
		}
		for k, f := range p2.TraceRoute(base, 0) {
			if k > 0 && f != Intact {
				bad2++
			}
		}
		return bad2 >= bad1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
