package fault

import (
	"testing"

	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// planFromRaw deterministically decodes fuzzer bytes into a TemporalPlan
// with deliberately out-of-range candidates: node ids and link endpoints
// span beyond the graph, activation times and windows can be negative,
// empty, inverted, or Forever. Validate must classify, never panic.
func planFromRaw(raw []byte) *TemporalPlan {
	tp := &TemporalPlan{}
	i := 0
	next := func() int64 {
		if i >= len(raw) {
			return 0
		}
		b := raw[i]
		i++
		return int64(b) - 64 // negative values included
	}
	nNodes := int(next()) & 7
	for k := 0; k < nNodes; k++ {
		tp.Nodes = append(tp.Nodes, NodeFault{
			Node: topology.Node(next()),
			Kind: Kind(next() & 3),
			At:   simnet.Time(next() * 1000),
		})
	}
	nLinks := int(next()) & 7
	for k := 0; k < nLinks; k++ {
		until := simnet.Time(next() * 1000)
		if until > 100_000 {
			until = Forever
		}
		tp.Links = append(tp.Links, LinkFault{
			U:       topology.Node(next()),
			V:       topology.Node(next()),
			From:    simnet.Time(next() * 1000),
			Until:   until,
			Corrupt: next()&1 == 0,
		})
	}
	tp.Seed = next()
	return tp
}

// FuzzTemporalPlan: Validate and Compile on arbitrary plans never panic
// or index out of bounds, they agree (Compile errors exactly when
// Validate does), and a successfully compiled injector answers Relay for
// every in-graph arc and a sweep of times without panicking.
func FuzzTemporalPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 64, 65, 66, 70, 1, 80, 3, 64, 65, 66, 67, 68})
	f.Add([]byte{1, 255, 0, 0, 1, 255, 255, 0, 0, 0})
	f.Add([]byte{7, 64, 64, 64, 65, 64, 64, 66, 64, 64, 67, 64, 64})
	g := topology.MustSquareTorus(3)
	f.Fuzz(func(t *testing.T, raw []byte) {
		tp := planFromRaw(raw)
		verr := tp.Validate(g)
		inj, cerr := tp.Compile(g)
		if (verr == nil) != (cerr == nil) {
			t.Fatalf("Validate err=%v but Compile err=%v", verr, cerr)
		}
		if cerr != nil {
			return
		}
		id := simnet.PacketID{Source: 0, Channel: 1, Seq: 2}
		for _, e := range g.Edges() {
			for _, at := range []simnet.Time{0, 1, 999, 100_000, Forever - 1} {
				inj.Relay(id, 1, e.U, e.V, at)
				inj.Relay(id, 0, e.V, e.U, at)
			}
		}
	})
}
