// Package fault defines the fault models used to exercise the *reliable*
// part of ATA reliable broadcast: Byzantine processors that may corrupt,
// drop, or differently retransmit messages they relay, crashed
// processors, and broken links. Injection operates at the packet-route
// level: given a broadcast packet's route and the tee-copy receivers
// along it, the injector determines which receivers obtain the copy and
// whether it arrives corrupted — the earliest faulty intermediate node
// (or link) on the prefix decides.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"ihc/internal/topology"
)

// Kind classifies a node's failure behaviour.
type Kind int

const (
	// Healthy nodes relay faithfully.
	Healthy Kind = iota
	// Crash nodes stop relaying entirely: every copy that must pass
	// through them dies there.
	Crash
	// Corrupt nodes alter the payload of every packet they relay
	// (detectable with signed messages, harmful without).
	Corrupt
	// Byzantine nodes behave arbitrarily: per relayed copy they
	// deterministically-pseudorandomly either drop it, corrupt it, or
	// pass it through; as sources they are two-faced, sending different
	// payloads on different channels.
	Byzantine
)

func (k Kind) String() string {
	switch k {
	case Healthy:
		return "healthy"
	case Crash:
		return "crash"
	case Corrupt:
		return "corrupt"
	case Byzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan assigns failure behaviour to nodes and links. The zero value is a
// fault-free plan.
type Plan struct {
	Nodes map[topology.Node]Kind
	Links map[topology.Edge]bool // broken (bidirectional) links: copies crossing them are lost
	// Noisy links deliver every crossing copy with a corrupted payload
	// instead of losing it — the link-level analogue of a Corrupt node.
	// This is the adversary model under which the paper's bounds are
	// exact: the γ routes of a (source, receiver) pair are arc-disjoint,
	// so each noisy link taints at most one of the pair's copies, whereas
	// an interior *node* sits on γ/2 of them. A link both broken and noisy
	// acts broken (loss dominates).
	Noisy map[topology.Edge]bool
	Seed  int64 // drives Byzantine coin flips
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		Nodes: make(map[topology.Node]Kind),
		Links: make(map[topology.Edge]bool),
		Noisy: make(map[topology.Edge]bool),
		Seed:  seed,
	}
}

// Node returns the failure kind of v.
func (p *Plan) Node(v topology.Node) Kind {
	if p == nil || p.Nodes == nil {
		return Healthy
	}
	return p.Nodes[v]
}

// LinkBroken reports whether the undirected link {u, v} is broken.
func (p *Plan) LinkBroken(u, v topology.Node) bool {
	if p == nil || p.Links == nil {
		return false
	}
	return p.Links[topology.NewEdge(u, v)]
}

// LinkNoisy reports whether the undirected link {u, v} corrupts payloads.
func (p *Plan) LinkNoisy(u, v topology.Node) bool {
	if p == nil || p.Noisy == nil {
		return false
	}
	return p.Noisy[topology.NewEdge(u, v)]
}

// Validate checks that every node and link the plan names actually exists
// in g: nodes must lie in [0, N) and links must be edges of the graph.
// Out-of-graph entries used to be silently ignored by TraceRoute (a route
// never visits them), which turned typos in fault placements into
// vacuously passing experiments; all entry points that accept a plan now
// reject them instead.
func (p *Plan) Validate(g *topology.Graph) error {
	if p == nil {
		return nil
	}
	for v := range p.Nodes {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("fault: plan names node %d outside %s (N=%d)", v, g.Name(), g.N())
		}
	}
	for _, links := range []map[topology.Edge]bool{p.Links, p.Noisy} {
		for e := range links {
			if !g.HasEdge(e.U, e.V) {
				return fmt.Errorf("fault: plan names link {%d,%d} that is not an edge of %s", e.U, e.V, g.Name())
			}
		}
	}
	return nil
}

// FaultyNodes returns the sorted list of non-healthy nodes.
func (p *Plan) FaultyNodes() []topology.Node {
	var out []topology.Node
	for v, k := range p.Nodes {
		if k != Healthy {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RandomNodeFaults returns a plan with t distinct faulty nodes of the
// given kind, drawn deterministically from seed, chosen among nodes
// 0..n-1 excluding the nodes in exclude (e.g., a source/receiver pair
// whose correctness is under study). It errors when t faults cannot fit
// in the n-len(exclude) eligible nodes.
func RandomNodeFaults(n, t int, kind Kind, seed int64, exclude ...topology.Node) (*Plan, error) {
	if t < 0 || t > n-len(exclude) {
		return nil, fmt.Errorf("fault: cannot place %d faults in %d nodes excluding %d", t, n, len(exclude))
	}
	p := NewPlan(seed)
	rng := rand.New(rand.NewSource(seed))
	ex := make(map[topology.Node]bool, len(exclude))
	for _, v := range exclude {
		ex[v] = true
	}
	for len(p.Nodes) < t {
		v := topology.Node(rng.Intn(n))
		if ex[v] || p.Nodes[v] != Healthy {
			continue
		}
		p.Nodes[v] = kind
	}
	return p, nil
}

// RandomLinkFaults returns a plan with t distinct broken links of g. It
// errors when t exceeds the number of links.
func RandomLinkFaults(g *topology.Graph, t int, seed int64) (*Plan, error) {
	edges := g.Edges()
	if t < 0 || t > len(edges) {
		return nil, fmt.Errorf("fault: cannot break %d of %d links", t, len(edges))
	}
	p := NewPlan(seed)
	rng := rand.New(rand.NewSource(seed))
	for len(p.Links) < t {
		e := edges[rng.Intn(len(edges))]
		p.Links[e] = true
	}
	return p, nil
}

// CopyFate describes what happened to one tee copy.
type CopyFate int

const (
	// Delivered intact.
	Intact CopyFate = iota
	// Delivered with corrupted payload.
	Corrupted
	// Never arrived.
	Lost
)

func (f CopyFate) String() string {
	switch f {
	case Intact:
		return "intact"
	case Corrupted:
		return "corrupted"
	case Lost:
		return "lost"
	default:
		return fmt.Sprintf("CopyFate(%d)", int(f))
	}
}

// TraceRoute computes, for each position k >= 1 of the route, the fate of
// the tee copy received by route[k], given the plan. A crash or drop at
// an intermediate node (or a broken link) kills the copy for that node
// and everything downstream; corruption taints everything downstream.
// The source's own fault kind is not considered here — a faulty source is
// handled by the caller (two-faced payload selection).
func (p *Plan) TraceRoute(route []topology.Node, channel int) []CopyFate {
	fates := make([]CopyFate, len(route))
	state := Intact
	for k := 1; k < len(route); k++ {
		if state == Lost {
			fates[k] = Lost
			continue
		}
		if p.LinkBroken(route[k-1], route[k]) {
			state = Lost
			fates[k] = Lost
			continue
		}
		if p.LinkNoisy(route[k-1], route[k]) {
			state = Corrupted
		}
		// The copy reaches route[k] in the current state; the node's own
		// fault affects only what it relays onward.
		fates[k] = state
		if k == len(route)-1 {
			break
		}
		switch p.Node(route[k]) {
		case Crash:
			state = Lost
		case Corrupt:
			state = Corrupted
		case Byzantine:
			// Deterministic per (node, channel, position) coin.
			h := uint64(p.Seed) ^ uint64(route[k])*2654435761 ^ uint64(channel)*40503 ^ uint64(k)*97
			switch h % 3 {
			case 0:
				state = Lost
			case 1:
				state = Corrupted
			}
		}
	}
	return fates
}
