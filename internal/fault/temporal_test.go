package fault

import (
	"math/rand"
	"testing"

	"ihc/internal/simnet"
	"ihc/internal/topology"
)

func TestPlanValidate(t *testing.T) {
	g := topology.MustHypercube(3)
	ok := NewPlan(1)
	ok.Nodes[3] = Crash
	ok.Links[topology.NewEdge(0, 1)] = true
	ok.Noisy[topology.NewEdge(0, 2)] = true
	if err := ok.Validate(g); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := (*Plan)(nil).Validate(g); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}

	badNode := NewPlan(1)
	badNode.Nodes[8] = Crash // Q3 has nodes 0..7
	if err := badNode.Validate(g); err == nil {
		t.Fatal("plan naming node 8 in Q3 accepted")
	}
	badLink := NewPlan(1)
	badLink.Links[topology.NewEdge(0, 7)] = true // 000-111 is not a Q3 edge
	if err := badLink.Validate(g); err == nil {
		t.Fatal("plan breaking non-edge {0,7} accepted")
	}
	badNoisy := NewPlan(1)
	badNoisy.Noisy[topology.NewEdge(0, 7)] = true
	if err := badNoisy.Validate(g); err == nil {
		t.Fatal("plan with noisy non-edge {0,7} accepted")
	}
}

func TestTemporalPlanValidate(t *testing.T) {
	g := topology.MustHypercube(3)
	cases := []struct {
		name string
		tp   TemporalPlan
		ok   bool
	}{
		{"empty", TemporalPlan{}, true},
		{"good", TemporalPlan{
			Nodes: []NodeFault{{Node: 1, Kind: Crash, At: 500}},
			Links: []LinkFault{{U: 0, V: 1, From: 0, Until: Forever}},
		}, true},
		{"node out of range", TemporalPlan{Nodes: []NodeFault{{Node: 8, Kind: Crash}}}, false},
		{"node twice", TemporalPlan{Nodes: []NodeFault{{Node: 1, Kind: Crash}, {Node: 1, Kind: Corrupt, At: 9}}}, false},
		{"negative activation", TemporalPlan{Nodes: []NodeFault{{Node: 1, Kind: Crash, At: -1}}}, false},
		{"non-edge link", TemporalPlan{Links: []LinkFault{{U: 0, V: 7, Until: Forever}}}, false},
		{"empty window", TemporalPlan{Links: []LinkFault{{U: 0, V: 1, From: 10, Until: 10}}}, false},
		{"inverted window", TemporalPlan{Links: []LinkFault{{U: 0, V: 1, From: 10, Until: 5}}}, false},
	}
	for _, c := range cases {
		err := c.tp.Validate(g)
		if c.ok && err != nil {
			t.Errorf("%s: rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		if _, cerr := c.tp.Compile(g); (cerr == nil) != (err == nil) {
			t.Errorf("%s: Compile and Validate disagree (%v vs %v)", c.name, cerr, err)
		}
	}
}

func TestTraceRouteNoisyLink(t *testing.T) {
	p := NewPlan(0)
	p.Noisy[topology.NewEdge(2, 3)] = true
	route := []topology.Node{0, 1, 2, 3, 4}
	fates := p.TraceRoute(route, 0)
	want := []CopyFate{Intact, Intact, Intact, Corrupted, Corrupted}
	for k := 1; k < len(route); k++ {
		if fates[k] != want[k] {
			t.Errorf("position %d: fate %v, want %v", k, fates[k], want[k])
		}
	}
	// Broken dominates noisy on the same link.
	p.Links[topology.NewEdge(2, 3)] = true
	fates = p.TraceRoute(route, 0)
	for _, k := range []int{3, 4} {
		if fates[k] != Lost {
			t.Errorf("broken+noisy link: position %d fate %v, want lost", k, fates[k])
		}
	}
}

// randomSimpleRoute returns a random simple route of up to maxLen nodes
// in g (a self-avoiding walk), always of length >= 2.
func randomSimpleRoute(g *topology.Graph, rng *rand.Rand, maxLen int) []topology.Node {
	for {
		cur := topology.Node(rng.Intn(g.N()))
		route := []topology.Node{cur}
		used := map[topology.Node]bool{cur: true}
		for len(route) < maxLen {
			nbrs := g.Neighbors(cur)
			next := topology.Node(-1)
			for _, off := range rng.Perm(len(nbrs)) {
				if !used[nbrs[off]] {
					next = nbrs[off]
					break
				}
			}
			if next < 0 {
				break
			}
			route = append(route, next)
			used[next] = true
			cur = next
		}
		if len(route) >= 2 {
			return route
		}
	}
}

// foldRelay replays the injector's per-hop decisions along a route and
// folds them into per-position fates the way the engine would: a drop
// kills everything downstream, a corrupt taints it.
func foldRelay(in *Injector, route []topology.Node, channel int, depart simnet.Time) []CopyFate {
	fates := make([]CopyFate, len(route))
	state := Intact
	for h := 0; h+1 < len(route); h++ {
		switch in.Relay(simnet.PacketID{Channel: channel}, h, route[h], route[h+1], depart) {
		case simnet.FaultDrop:
			for k := h + 1; k < len(route); k++ {
				fates[k] = Lost
			}
			return fates
		case simnet.FaultCorrupt:
			state = Corrupted
		}
		fates[h+1] = state
	}
	return fates
}

// TestInjectorMatchesTraceRoute is the bridge between the combinatorial
// and the timed fault models: for random static plans and random simple
// routes, folding the compiled injector's hop decisions must reproduce
// TraceRoute's fates exactly — same Byzantine coin, same precedence.
func TestInjectorMatchesTraceRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := topology.MustHypercube(4)
	edges := g.Edges()
	for trial := 0; trial < 300; trial++ {
		p := NewPlan(rng.Int63())
		for i := 0; i < 3; i++ {
			v := topology.Node(rng.Intn(g.N()))
			p.Nodes[v] = Kind(1 + rng.Intn(3)) // Crash, Corrupt, or Byzantine
		}
		for i := 0; i < 2; i++ {
			p.Links[edges[rng.Intn(len(edges))]] = true
			p.Noisy[edges[rng.Intn(len(edges))]] = true
		}
		in, err := FromStatic(p).Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 10; r++ {
			route := randomSimpleRoute(g, rng, 12)
			channel := rng.Intn(6)
			want := p.TraceRoute(route, channel)
			got := foldRelay(in, route, channel, simnet.Time(rng.Int63n(1e6)))
			for k := 1; k < len(route); k++ {
				if got[k] != want[k] {
					t.Fatalf("trial %d route %v channel %d position %d: injector %v, TraceRoute %v\nplan: %+v",
						trial, route, channel, k, got[k], want[k], p)
				}
			}
		}
	}
}

// TestInjectorTemporalWindows exercises what the static model cannot
// express: a node that crashes mid-run and a link that is down for a
// window and then recovers.
func TestInjectorTemporalWindows(t *testing.T) {
	g := topology.MustHypercube(3)
	tp := &TemporalPlan{
		Nodes: []NodeFault{{Node: 1, Kind: Crash, At: 1000}},
		Links: []LinkFault{
			{U: 2, V: 3, From: 500, Until: 600},
			{U: 2, V: 6, From: 0, Until: Forever, Corrupt: true},
		},
	}
	in, err := tp.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	id := simnet.PacketID{}
	// Node 1 relays fine before its crash time, drops after.
	if act := in.Relay(id, 1, 1, 0, 999); act != simnet.FaultNone {
		t.Errorf("node 1 at t=999: %v, want none", act)
	}
	if act := in.Relay(id, 1, 1, 0, 1000); act != simnet.FaultDrop {
		t.Errorf("node 1 at t=1000: %v, want drop", act)
	}
	// Node faults do not apply at hop 0 (the source's own hop).
	if act := in.Relay(id, 0, 1, 0, 5000); act != simnet.FaultNone {
		t.Errorf("node 1 as source at t=5000: %v, want none (hop 0 exempt)", act)
	}
	// Link {2,3} is down only inside [500, 600).
	for _, c := range []struct {
		at   simnet.Time
		want simnet.FaultAction
	}{{499, simnet.FaultNone}, {500, simnet.FaultDrop}, {599, simnet.FaultDrop}, {600, simnet.FaultNone}} {
		if act := in.Relay(id, 2, 2, 3, c.at); act != c.want {
			t.Errorf("link {2,3} at t=%d: %v, want %v", c.at, act, c.want)
		}
	}
	// Noisy link corrupts in both directions, forever.
	if act := in.Relay(id, 3, 6, 2, 1e9); act != simnet.FaultCorrupt {
		t.Errorf("noisy link {2,6} reversed at t=1e9: %v, want corrupt", act)
	}
}
