package topology

import (
	"fmt"
	"math/bits"
)

// twistedMaxDim caps TQ_n at the same 2^22-node budget as TorusND.
const twistedMaxDim = 22

// TwistedCube returns the n-dimensional twisted cube TQ_n (n >= 3) with
// N = 2^n nodes, named "TQ<n>". The twisted cube is the classic
// variant of the hypercube with diameter ~n/2 (Hilbers, Koppelaar &
// Snepscheut); Hung (arXiv:1006.3909) shows TQ_n carries two
// edge-disjoint Hamiltonian cycles, which is what makes it interesting
// here: it is NOT in the paper's class Λ (it is not edge-decomposable
// into Hamiltonian cycles for n >= 5), yet IHC runs on it in the same
// reduced-reliability mode as odd hypercubes.
//
// For odd n the standard definition is used. Addresses are n-bit
// integers; writing P_i(u) for the parity of bits 0..i of u, node u is
// adjacent to:
//
//   - u ^ 1 (dimension 0);
//   - for each bit pair (2k, 2k-1), 1 <= k <= (n-1)/2: the node with
//     both bits flipped, plus — depending on the pair parity
//     P_{2k-2}(u) — the node with only bit 2k flipped (parity 0) or
//     only bit 2k-1 flipped (parity 1).
//
// Twisted cubes are classically defined only for odd n. For even n
// this package uses the standard product extension TQ_n = K_2 x
// TQ_{n-1}: bit n-1 is an ordinary (untwisted) hypercube dimension.
// Every TQ_n is n-regular.
func TwistedCube(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: TwistedCube requires n >= 3, got %d", n)
	}
	if n > twistedMaxDim {
		return nil, fmt.Errorf("topology: TwistedCube dimension %d exceeds the 2^%d-node cap", n, twistedMaxDim)
	}
	size := 1 << n
	g := New(fmt.Sprintf("TQ%d", n), size)
	add := func(u, v int) {
		if u < v {
			g.AddEdge(Node(u), Node(v))
		}
	}
	pairs := (n - 1) / 2
	for u := 0; u < size; u++ {
		add(u, u^1)
		for k := 1; k <= pairs; k++ {
			hi, lo := 2*k, 2*k-1
			add(u, u^(1<<hi|1<<lo))
			// P_{2k-2}(u): parity of bits 0..2k-2. Flipping bit hi
			// or lo leaves it unchanged, so the relation is
			// symmetric and the u < v guard adds each edge once.
			if bits.OnesCount(uint(u)&(1<<lo-1))%2 == 0 {
				add(u, u^(1<<hi))
			} else {
				add(u, u^(1<<lo))
			}
		}
		if n%2 == 0 {
			add(u, u^(1<<(n-1)))
		}
	}
	return g, nil
}

// MustTwistedCube is TwistedCube for statically known-good dimensions.
func MustTwistedCube(n int) *Graph { return must(TwistedCube(n)) }

// TwistedDim parses a TwistedCube name "TQ<n>" back into its dimension,
// returning ok=false for other names.
func TwistedDim(name string) (int, bool) {
	if len(name) < 3 || name[:2] != "TQ" {
		return 0, false
	}
	n := 0
	for _, ch := range name[2:] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	return n, true
}

// KAryTorus returns the k-ary n-dimensional torus — n dimensions of
// extent k each — named "KT<k>x<n>" to keep the family distinct from
// the mixed-radix TorusND("T<k1>x<k2>...") spelling. Node numbering is
// identical to TorusND(k, ..., k) (mixed radix, last dimension
// fastest), so every TorusND helper applies unchanged. This is the
// topology of the Jung & Sakho ATA-optimality bound (arXiv:0909.1374):
// degree 2n, N = k^n.
func KAryTorus(k, n int) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("topology: KAryTorus arity must be >= 3, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: KAryTorus needs >= 1 dimension, got %d", n)
	}
	size := 1
	for i := 0; i < n; i++ {
		if size > 1<<22/k {
			return nil, fmt.Errorf("topology: KAryTorus(%d,%d) exceeds the 2^22-node cap", k, n)
		}
		size *= k
	}
	dims := make([]int, n)
	for i := range dims {
		dims[i] = k
	}
	t, err := TorusND(dims...)
	if err != nil {
		return nil, err
	}
	// Rebuild under the family's own name; TorusND already validated
	// and constructed the edge set.
	g := New(fmt.Sprintf("KT%dx%d", k, n), size)
	for _, e := range t.Edges() {
		g.AddEdge(e.U, e.V)
	}
	return g, nil
}

// MustKAryTorus is KAryTorus for statically known-good parameters.
func MustKAryTorus(k, n int) *Graph { return must(KAryTorus(k, n)) }

// KAryDims parses a KAryTorus name "KT<k>x<n>" back into (k, n),
// returning ok=false for other names.
func KAryDims(name string) (k, n int, ok bool) {
	if len(name) < 5 || name[:2] != "KT" {
		return 0, 0, false
	}
	dims, ok := TorusDims(name[1:]) // "T<k>x<n>"
	if !ok || len(dims) != 2 {
		return 0, 0, false
	}
	return dims[0], dims[1], true
}
