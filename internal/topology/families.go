package topology

import "fmt"

// must unwraps a constructor result whose input is a compile-time
// constant — the regexp.MustCompile idiom. Validation of *variable*
// input belongs to the error-returning constructors: a bad size must
// not crash a long-running daemon.
func must(g *Graph, err error) *Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// Cycle returns the undirected cycle C_k on k >= 3 nodes, with node i
// adjacent to (i±1) mod k.
func Cycle(k int) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("topology: Cycle requires k >= 3, got %d", k)
	}
	g := New(fmt.Sprintf("C%d", k), k)
	for i := 0; i < k; i++ {
		g.AddEdge(Node(i), Node((i+1)%k))
	}
	return g, nil
}

// MustCycle is Cycle for statically known-good sizes: it panics on the
// error a variable size should handle.
func MustCycle(k int) *Graph { return must(Cycle(k)) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(fmt.Sprintf("K%d", n), n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(Node(u), Node(v))
		}
	}
	return g
}

// Hypercube returns the m-dimensional binary hypercube Q_m with N = 2^m
// nodes. Node addresses are m-bit integers; two nodes are adjacent iff
// their addresses differ in exactly one bit. Bit i of the address is the
// paper's "direction i" (0 <= i <= m-1).
func Hypercube(m int) (*Graph, error) {
	if m < 0 || m > 30 {
		return nil, fmt.Errorf("topology: Hypercube dimension %d out of range [0,30]", m)
	}
	n := 1 << m
	g := New(fmt.Sprintf("Q%d", m), n)
	for u := 0; u < n; u++ {
		for i := 0; i < m; i++ {
			v := u ^ (1 << i)
			if u < v {
				g.AddEdge(Node(u), Node(v))
			}
		}
	}
	return g, nil
}

// MustHypercube is Hypercube for statically known-good dimensions.
func MustHypercube(m int) *Graph { return must(Hypercube(m)) }

// HypercubeDirection returns which direction (differing bit index) joins
// adjacent hypercube nodes u and v, or -1 if they are not adjacent in Q_m.
func HypercubeDirection(u, v Node) int {
	x := uint(u ^ v)
	if x == 0 || x&(x-1) != 0 {
		return -1
	}
	d := 0
	for x > 1 {
		x >>= 1
		d++
	}
	return d
}

// SquareTorus returns the torus-wrapped square mesh SQ_m: an m x m grid
// (m >= 3) with wraparound in both rows and columns. Node (r, c) has index
// r*m + c. Every node has degree 4, so SQ_m is in class Λ with γ = 4.
func SquareTorus(m int) (*Graph, error) {
	if m < 3 {
		return nil, fmt.Errorf("topology: SquareTorus requires m >= 3, got %d", m)
	}
	g := New(fmt.Sprintf("SQ%d", m), m*m)
	id := func(r, c int) Node { return Node(((r+m)%m)*m + (c+m)%m) }
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			g.AddEdge(id(r, c), id(r, c+1))
			g.AddEdge(id(r, c), id(r+1, c))
		}
	}
	return g, nil
}

// MustSquareTorus is SquareTorus for statically known-good sizes.
func MustSquareTorus(m int) *Graph { return must(SquareTorus(m)) }

// TorusNode returns the node index of grid position (r, c) in SQ_m, with
// both coordinates taken modulo m.
func TorusNode(m, r, c int) Node {
	return Node(((r%m+m)%m)*m + ((c%m + m) % m))
}

// TorusCoords returns the (row, column) of node u in SQ_m.
func TorusCoords(m int, u Node) (r, c int) {
	return int(u) / m, int(u) % m
}

// HexMeshSize returns the number of nodes in a C-wrapped hexagonal mesh of
// size m: N = 3m(m-1) + 1.
func HexMeshSize(m int) int { return 3*m*(m-1) + 1 }

// HexSteps returns the three address steps that define the C-wrapped
// hexagonal mesh H_m: node s is adjacent to s±1, s±(3m-2) and s±(3m-1),
// all modulo N. Each step is coprime with N, so the edges of each of the
// three axis directions form a Hamiltonian cycle (Chen, Shin & Kandlur,
// IEEE ToC 1990), which is what puts H_m in class Λ with γ = 6.
func HexSteps(m int) [3]int { return [3]int{1, 3*m - 2, 3*m - 1} }

// HexMesh returns the C-wrapped hexagonal mesh H_m of size m >= 2, with
// N = 3m(m-1)+1 nodes and degree 6. H_2 is K_7.
func HexMesh(m int) (*Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("topology: HexMesh requires m >= 2, got %d", m)
	}
	n := HexMeshSize(m)
	g := New(fmt.Sprintf("H%d", m), n)
	for _, step := range HexSteps(m) {
		for s := 0; s < n; s++ {
			u, v := Node(s), Node((s+step)%n)
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
	return g, nil
}

// MustHexMesh is HexMesh for statically known-good sizes.
func MustHexMesh(m int) *Graph { return must(HexMesh(m)) }

// CartesianProduct returns the cartesian product g x h (also called the
// cartesian sum in Aubert & Schneider's terminology): nodes are pairs
// (a, b) with index a*h.N() + b; (a,b) ~ (a',b) iff a ~ a' in g, and
// (a,b) ~ (a,b') iff b ~ b' in h. The product of two cycles C_k x C_l is a
// k x l torus; Q_m = K_2 x Q_{m-1}.
func CartesianProduct(g, h *Graph) *Graph {
	n := g.N() * h.N()
	p := New(fmt.Sprintf("(%s x %s)", g.Name(), h.Name()), n)
	hn := h.N()
	for a := 0; a < g.N(); a++ {
		for b := 0; b < hn; b++ {
			u := Node(a*hn + b)
			for _, a2 := range g.Neighbors(Node(a)) {
				v := Node(int(a2)*hn + b)
				if u < v {
					p.AddEdge(u, v)
				}
			}
			for _, b2 := range h.Neighbors(Node(b)) {
				v := Node(a*hn + int(b2))
				if u < v {
					p.AddEdge(u, v)
				}
			}
		}
	}
	return p
}

// ProductNode returns the index in g x h of the pair (a, b) where b ranges
// over h's nodes.
func ProductNode(h *Graph, a, b Node) Node { return a*Node(h.N()) + b }

// ProductCoords splits a product-graph node index back into its (a, b)
// pair.
func ProductCoords(h *Graph, u Node) (a, b Node) {
	hn := Node(h.N())
	return u / hn, u % hn
}

// TorusND returns the d-dimensional torus C_k1 x C_k2 x ... x C_kd — the
// general "regular mesh" of the paper's class Λ, with degree γ = 2d.
// Every dimension must be >= 3 (a 2-long dimension would create parallel
// edges). Node coordinates are mixed-radix with the last dimension
// fastest: index = ((x1·k2 + x2)·k3 + x3)... The name is "T<k1>x<k2>x...".
func TorusND(dims ...int) (*Graph, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: TorusND needs at least one dimension")
	}
	n := 1
	name := "T"
	for i, k := range dims {
		if k < 3 {
			return nil, fmt.Errorf("topology: TorusND dimension %d is %d, need >= 3", i, k)
		}
		if n > 1<<22/k {
			return nil, fmt.Errorf("topology: TorusND with dimensions %v exceeds the 2^22-node cap", dims)
		}
		n *= k
		if i > 0 {
			name += "x"
		}
		name += fmt.Sprintf("%d", k)
	}
	g := New(name, n)
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	coords := make([]int, len(dims))
	for u := 0; u < n; u++ {
		// Decode u's coordinates.
		rem := u
		for i := range dims {
			coords[i] = rem / strides[i]
			rem %= strides[i]
		}
		// The +1 edge of every dimension; each undirected edge is
		// generated by exactly one (node, dimension) pair — the node
		// whose +1 step it is.
		for i, k := range dims {
			up := u - coords[i]*strides[i] + ((coords[i]+1)%k)*strides[i]
			g.AddEdge(Node(u), Node(up))
		}
	}
	return g, nil
}

// MustTorusND is TorusND for statically known-good dimension lists.
func MustTorusND(dims ...int) *Graph { return must(TorusND(dims...)) }

// TorusDims parses a TorusND name of the form "T<k1>x<k2>x..." back into
// its dimension list, returning ok=false for other names.
func TorusDims(name string) ([]int, bool) {
	if len(name) < 2 || name[0] != 'T' {
		return nil, false
	}
	var dims []int
	cur := 0
	seen := false
	for _, ch := range name[1:] {
		switch {
		case ch >= '0' && ch <= '9':
			cur = cur*10 + int(ch-'0')
			seen = true
		case ch == 'x' && seen:
			dims = append(dims, cur)
			cur, seen = 0, false
		default:
			return nil, false
		}
	}
	if !seen {
		return nil, false
	}
	dims = append(dims, cur)
	return dims, true
}
