package topology

import (
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want {2 5}", e)
	}
	if NewEdge(2, 5) != e {
		t.Fatalf("NewEdge not canonical")
	}
}

func TestNewEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewEdge(3,3) did not panic")
		}
	}()
	NewEdge(3, 3)
}

func TestArcReverseAndEdge(t *testing.T) {
	a := Arc{From: 7, To: 3}
	if a.Reverse() != (Arc{From: 3, To: 7}) {
		t.Fatalf("Reverse = %v", a.Reverse())
	}
	if a.Edge() != (Edge{U: 3, V: 7}) {
		t.Fatalf("Edge = %v", a.Edge())
	}
	if a.String() != "7->3" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestAddEdgeDuplicatePanics(t *testing.T) {
	g := New("g", 3)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate AddEdge did not panic")
		}
	}()
	g.AddEdge(1, 0)
}

func TestGraphBasics(t *testing.T) {
	g := New("tri", 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatalf("HasEdge failed")
	}
	if g.HasEdge(0, 0) || g.HasEdge(0, 5) || g.HasEdge(-1, 0) {
		t.Fatalf("HasEdge accepted invalid input")
	}
	if d, ok := g.IsRegular(); !ok || d != 2 {
		t.Fatalf("IsRegular = %d,%v", d, ok)
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", nbrs)
	}
	if len(g.Edges()) != 3 {
		t.Fatalf("Edges = %v", g.Edges())
	}
	if len(g.Arcs()) != 6 {
		t.Fatalf("Arcs = %v", g.Arcs())
	}
}

func TestCycle(t *testing.T) {
	for _, k := range []int{3, 4, 7, 12} {
		c := MustCycle(k)
		if c.N() != k || c.M() != k {
			t.Fatalf("C%d: N=%d M=%d", k, c.N(), c.M())
		}
		if d, ok := c.IsRegular(); !ok || d != 2 {
			t.Fatalf("C%d not 2-regular", k)
		}
		if c.Diameter() != k/2 {
			t.Fatalf("C%d diameter = %d, want %d", k, c.Diameter(), k/2)
		}
	}
}

func TestComplete(t *testing.T) {
	k := Complete(5)
	if k.M() != 10 {
		t.Fatalf("K5 edges = %d", k.M())
	}
	if k.NodeConnectivity() != 4 {
		t.Fatalf("κ(K5) = %d", k.NodeConnectivity())
	}
}

func TestHypercubeStructure(t *testing.T) {
	for m := 0; m <= 6; m++ {
		q := MustHypercube(m)
		wantN := 1 << m
		if q.N() != wantN {
			t.Fatalf("Q%d: N = %d", m, q.N())
		}
		if q.M() != m*wantN/2 {
			t.Fatalf("Q%d: M = %d, want %d", m, q.M(), m*wantN/2)
		}
		if m >= 1 {
			if d, ok := q.IsRegular(); !ok || d != m {
				t.Fatalf("Q%d not %d-regular", m, m)
			}
			if q.Diameter() != m {
				t.Fatalf("Q%d diameter = %d", m, q.Diameter())
			}
		}
	}
}

func TestHypercubeDirection(t *testing.T) {
	if d := HypercubeDirection(0, 4); d != 2 {
		t.Fatalf("direction(0,4) = %d", d)
	}
	if d := HypercubeDirection(5, 4); d != 0 {
		t.Fatalf("direction(5,4) = %d", d)
	}
	if d := HypercubeDirection(0, 3); d != -1 {
		t.Fatalf("direction(0,3) = %d, want -1", d)
	}
	if d := HypercubeDirection(6, 6); d != -1 {
		t.Fatalf("direction(6,6) = %d, want -1", d)
	}
}

func TestHypercubeConnectivity(t *testing.T) {
	for m := 2; m <= 4; m++ {
		q := MustHypercube(m)
		if k := q.NodeConnectivity(); k != m {
			t.Fatalf("κ(Q%d) = %d, want %d", m, k, m)
		}
		if k := q.EdgeConnectivity(); k != m {
			t.Fatalf("λ(Q%d) = %d, want %d", m, k, m)
		}
	}
}

func TestSquareTorusStructure(t *testing.T) {
	for _, m := range []int{3, 4, 5, 8} {
		sq := MustSquareTorus(m)
		if sq.N() != m*m {
			t.Fatalf("SQ%d: N = %d", m, sq.N())
		}
		if sq.M() != 2*m*m {
			t.Fatalf("SQ%d: M = %d", m, sq.M())
		}
		if d, ok := sq.IsRegular(); !ok || d != 4 {
			t.Fatalf("SQ%d not 4-regular", m)
		}
		// Torus diameter is 2*floor(m/2).
		if want := 2 * (m / 2); sq.Diameter() != want {
			t.Fatalf("SQ%d diameter = %d, want %d", m, sq.Diameter(), want)
		}
	}
}

func TestSquareTorusConnectivity(t *testing.T) {
	sq := MustSquareTorus(4)
	if k := sq.NodeConnectivity(); k != 4 {
		t.Fatalf("κ(SQ4) = %d, want 4", k)
	}
	if k := sq.EdgeConnectivity(); k != 4 {
		t.Fatalf("λ(SQ4) = %d, want 4", k)
	}
}

func TestTorusCoordsRoundTrip(t *testing.T) {
	m := 5
	for r := -2; r < 8; r++ {
		for c := -2; c < 8; c++ {
			u := TorusNode(m, r, c)
			rr, cc := TorusCoords(m, u)
			if rr != ((r%m)+m)%m || cc != ((c%m)+m)%m {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", r, c, u, rr, cc)
			}
		}
	}
}

func TestHexMeshStructure(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5} {
		h := MustHexMesh(m)
		wantN := 3*m*(m-1) + 1
		if h.N() != wantN {
			t.Fatalf("H%d: N = %d, want %d", m, h.N(), wantN)
		}
		if d, ok := h.IsRegular(); !ok || d != 6 {
			t.Fatalf("H%d not 6-regular (deg=%d ok=%v)", m, d, ok)
		}
		if h.M() != 3*wantN {
			t.Fatalf("H%d: M = %d, want %d", m, h.M(), 3*wantN)
		}
	}
}

func TestHexMeshH2IsK7(t *testing.T) {
	h := MustHexMesh(2)
	k := Complete(7)
	if h.N() != 7 || h.M() != k.M() {
		t.Fatalf("H2 has %d nodes %d edges", h.N(), h.M())
	}
	for u := 0; u < 7; u++ {
		for v := u + 1; v < 7; v++ {
			if !h.HasEdge(Node(u), Node(v)) {
				t.Fatalf("H2 missing edge {%d,%d}", u, v)
			}
		}
	}
}

func TestHexMeshConnectivity(t *testing.T) {
	h := MustHexMesh(3) // 19 nodes, the HARTS configuration
	if k := h.NodeConnectivity(); k != 6 {
		t.Fatalf("κ(H3) = %d, want 6", k)
	}
	if k := h.EdgeConnectivity(); k != 6 {
		t.Fatalf("λ(H3) = %d, want 6", k)
	}
}

func TestHexStepsCoprime(t *testing.T) {
	gcd := func(a, b int) int {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	for m := 2; m <= 40; m++ {
		n := HexMeshSize(m)
		for _, s := range HexSteps(m) {
			if gcd(s, n) != 1 {
				t.Fatalf("H%d: step %d shares a factor with N=%d", m, s, n)
			}
		}
	}
}

func TestCartesianProductTorus(t *testing.T) {
	// C4 x C4 must be exactly SQ4 up to the node numbering used by both
	// constructions (which coincide: (a,b) -> 4a+b).
	p := CartesianProduct(MustCycle(4), MustCycle(4))
	sq := MustSquareTorus(4)
	if p.N() != sq.N() || p.M() != sq.M() {
		t.Fatalf("C4xC4: %d nodes %d edges; SQ4: %d nodes %d edges",
			p.N(), p.M(), sq.N(), sq.M())
	}
	for _, e := range sq.Edges() {
		if !p.HasEdge(e.U, e.V) {
			t.Fatalf("C4xC4 missing torus edge %v", e)
		}
	}
}

func TestCartesianProductHypercubeRecursion(t *testing.T) {
	// Q_m = K2 x Q_{m-1} (up to relabeling; with our index order the
	// product node (a,b) = a*2^{m-1}+b matches the hypercube address).
	for m := 1; m <= 5; m++ {
		q := MustHypercube(m)
		p := CartesianProduct(Complete(2), MustHypercube(m-1))
		if p.N() != q.N() || p.M() != q.M() {
			t.Fatalf("m=%d: product %d/%d vs Q %d/%d", m, p.N(), p.M(), q.N(), q.M())
		}
		for _, e := range q.Edges() {
			if !p.HasEdge(e.U, e.V) {
				t.Fatalf("m=%d: product missing edge %v", m, e)
			}
		}
	}
}

func TestProductCoordsRoundTrip(t *testing.T) {
	h := MustCycle(5)
	for a := Node(0); a < 4; a++ {
		for b := Node(0); b < 5; b++ {
			u := ProductNode(h, a, b)
			a2, b2 := ProductCoords(h, u)
			if a2 != a || b2 != b {
				t.Fatalf("(%d,%d) -> %d -> (%d,%d)", a, b, u, a2, b2)
			}
		}
	}
}

func TestQ4IsomorphicToSQ4(t *testing.T) {
	// The paper (Fig. 3) notes Q4 can be redrawn as a 4x4 torus. The
	// explicit isomorphism maps torus cell (r,c) to hypercube address
	// gray(r)<<2 | gray(c).
	gray := [4]int{0, 1, 3, 2}
	q := MustHypercube(4)
	sq := MustSquareTorus(4)
	phi := func(u Node) Node {
		r, c := TorusCoords(4, u)
		return Node(gray[r]<<2 | gray[c])
	}
	for _, e := range sq.Edges() {
		if !q.HasEdge(phi(e.U), phi(e.V)) {
			t.Fatalf("image of torus edge %v is not a Q4 edge", e)
		}
	}
	// A degree-preserving injective edge map between equal-sized regular
	// graphs with equal edge counts is an isomorphism.
	seen := make(map[Node]bool)
	for u := Node(0); u < 16; u++ {
		v := phi(u)
		if seen[v] {
			t.Fatalf("phi not injective at %d", u)
		}
		seen[v] = true
	}
}

func TestBFSAndDiameter(t *testing.T) {
	q := MustHypercube(3)
	dist := q.BFS(0)
	for v := 0; v < 8; v++ {
		want := popcount(v)
		if dist[v] != want {
			t.Fatalf("dist(0,%d) = %d, want %d", v, dist[v], want)
		}
	}
	disc := New("disc", 4)
	disc.AddEdge(0, 1)
	if disc.Connected() {
		t.Fatalf("disconnected graph reported connected")
	}
	if disc.Diameter() != -1 {
		t.Fatalf("diameter of disconnected graph = %d", disc.Diameter())
	}
}

func popcount(v int) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}

// Property: in any hypercube, the number of node-disjoint paths between
// any two distinct nodes equals the dimension (Menger + κ(Q_m) = m).
func TestQuickHypercubeMenger(t *testing.T) {
	q := MustHypercube(4)
	f := func(a, b uint8) bool {
		u := Node(a % 16)
		v := Node(b % 16)
		if u == v {
			return true
		}
		return q.NodeDisjointPaths(u, v) == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distance in SQ_m equals the L1 torus distance.
func TestQuickTorusDistance(t *testing.T) {
	const m = 6
	sq := MustSquareTorus(m)
	torusAbs := func(d int) int {
		d = ((d % m) + m) % m
		if d > m/2 {
			d = m - d
		}
		return d
	}
	f := func(a, b uint16) bool {
		u := Node(int(a) % (m * m))
		v := Node(int(b) % (m * m))
		ur, uc := TorusCoords(m, u)
		vr, vc := TorusCoords(m, v)
		want := torusAbs(ur-vr) + torusAbs(uc-vc)
		return sq.BFS(u)[v] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAndString(t *testing.T) {
	q := MustHypercube(3)
	if q.Degree(5) != 3 {
		t.Fatalf("Degree = %d", q.Degree(5))
	}
	if q.String() != "Q3 (8 nodes, 12 edges)" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestPanicsOnBadNodes(t *testing.T) {
	// Internal-invariant violations still panic...
	g := New("g", 2)
	for _, f := range []func(){
		func() { g.AddEdge(0, 5) },
		func() { g.AddEdge(-1, 0) },
		func() { g.Neighbors(7) },
		func() { g.Degree(-2) },
		func() { New("neg", -1) },
		func() { Complete(3).EdgeDisjointPaths(1, 1) },
		func() { Complete(3).NodeDisjointPaths(2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
	// ...while the family constructors reject bad *input* as errors (a
	// daemon fed a bad size must not crash), and the Must wrappers
	// re-raise those errors as panics for static call sites.
	for _, c := range []func() (*Graph, error){
		func() (*Graph, error) { return Cycle(2) },
		func() (*Graph, error) { return Hypercube(31) },
		func() (*Graph, error) { return Hypercube(-1) },
		func() (*Graph, error) { return SquareTorus(2) },
		func() (*Graph, error) { return HexMesh(1) },
		func() (*Graph, error) { return TorusND() },
		func() (*Graph, error) { return TorusND(4, 2) },
	} {
		if g, err := c(); err == nil || g != nil {
			t.Fatalf("bad constructor input returned (%v, %v), want error", g, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustCycle(2) did not panic")
			}
		}()
		MustCycle(2)
	}()
}

func TestTorusNDBasics(t *testing.T) {
	g := MustTorusND(3, 4, 5)
	if g.Name() != "T3x4x5" {
		t.Fatalf("name = %q", g.Name())
	}
	if g.N() != 60 {
		t.Fatalf("N = %d", g.N())
	}
	if d, ok := g.IsRegular(); !ok || d != 6 {
		t.Fatalf("degree = %d, %v", d, ok)
	}
	if !g.Connected() {
		t.Fatal("disconnected")
	}
	dims, ok := TorusDims(g.Name())
	if !ok || len(dims) != 3 || dims[0] != 3 || dims[1] != 4 || dims[2] != 5 {
		t.Fatalf("TorusDims = %v, %v", dims, ok)
	}
	// Non-torus names do not parse.
	for _, bad := range []string{"Q4", "Tx", "T4x", ""} {
		if _, ok := TorusDims(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}

func TestIsRegularIrregular(t *testing.T) {
	g := New("irr", 3)
	g.AddEdge(0, 1)
	if _, ok := g.IsRegular(); ok {
		t.Fatal("irregular graph reported regular")
	}
	empty := New("e", 0)
	if d, ok := empty.IsRegular(); !ok || d != 0 {
		t.Fatal("empty graph regularity")
	}
}
