package topology

// This file provides the connectivity machinery used to validate class-Λ
// membership: by Menger's theorem a γ-connected graph has γ node-disjoint
// paths between any two nodes, and the paper's fault-tolerance argument
// rests on sending every message over γ edge-disjoint directed Hamiltonian
// cycles. Node and edge connectivity are computed with unit-capacity
// max-flow (Edmonds-Karp), which is ample for the network sizes under test.

// BFS returns the vector of hop distances from src; unreachable nodes get
// distance -1.
func (g *Graph) BFS(src Node) []int {
	g.checkNode(src)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []Node{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the largest hop distance between any pair of nodes, or
// -1 if the graph is disconnected.
func (g *Graph) Diameter() int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		for _, d := range g.BFS(Node(u)) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// flowNet is a unit-capacity residual network for Edmonds-Karp.
type flowNet struct {
	n     int
	head  []int
	next  []int
	to    []int
	cap   []int8
	prevE []int // BFS bookkeeping
}

func newFlowNet(n int) *flowNet {
	f := &flowNet{n: n, head: make([]int, n), prevE: make([]int, n)}
	for i := range f.head {
		f.head[i] = -1
	}
	return f
}

// addArc adds a directed arc u->v with capacity c and its residual v->u
// with capacity 0.
func (f *flowNet) addArc(u, v, c int) {
	f.to = append(f.to, v)
	f.cap = append(f.cap, int8(c))
	f.next = append(f.next, f.head[u])
	f.head[u] = len(f.to) - 1

	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.next = append(f.next, f.head[v])
	f.head[v] = len(f.to) - 1
}

// maxFlow computes the max flow from s to t, stopping early once the flow
// reaches limit (pass a negative limit for no early stop).
func (f *flowNet) maxFlow(s, t, limit int) int {
	flow := 0
	for limit < 0 || flow < limit {
		// BFS for an augmenting path.
		for i := range f.prevE {
			f.prevE[i] = -1
		}
		f.prevE[s] = -2
		queue := []int{s}
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for e := f.head[u]; e >= 0; e = f.next[e] {
				v := f.to[e]
				if f.cap[e] > 0 && f.prevE[v] == -1 {
					f.prevE[v] = e
					if v == t {
						found = true
						break bfs
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			break
		}
		// All capacities are 1, so each augmenting path carries 1 unit.
		for v := t; v != s; {
			e := f.prevE[v]
			f.cap[e]--
			f.cap[e^1]++
			v = f.to[e^1]
		}
		flow++
	}
	return flow
}

// EdgeDisjointPaths returns the maximum number of pairwise edge-disjoint
// paths between distinct nodes s and t.
func (g *Graph) EdgeDisjointPaths(s, t Node) int {
	g.checkNode(s)
	g.checkNode(t)
	if s == t {
		panic("topology: EdgeDisjointPaths with s == t")
	}
	f := newFlowNet(g.N())
	for _, e := range g.Edges() {
		f.addArc(int(e.U), int(e.V), 1)
		f.addArc(int(e.V), int(e.U), 1)
	}
	return f.maxFlow(int(s), int(t), -1)
}

// NodeDisjointPaths returns the maximum number of internally node-disjoint
// paths between distinct nodes s and t (standard node-splitting reduction:
// node v becomes v_in -> v_out with capacity 1).
func (g *Graph) NodeDisjointPaths(s, t Node) int {
	g.checkNode(s)
	g.checkNode(t)
	if s == t {
		panic("topology: NodeDisjointPaths with s == t")
	}
	n := g.N()
	// v_in = v, v_out = v + n.
	f := newFlowNet(2 * n)
	for v := 0; v < n; v++ {
		c := 1
		if Node(v) == s || Node(v) == t {
			c = len(g.adj[v]) // source/sink are not capacity-limited
		}
		f.addArc(v, v+n, c)
	}
	for _, e := range g.Edges() {
		f.addArc(int(e.U)+n, int(e.V), 1)
		f.addArc(int(e.V)+n, int(e.U), 1)
	}
	return f.maxFlow(int(s)+n, int(t), -1)
}

// EdgeConnectivity returns λ(G), the minimum over node pairs of the number
// of edge-disjoint paths. For a connected graph it suffices to fix s = 0
// and scan all t.
func (g *Graph) EdgeConnectivity() int {
	n := g.N()
	if n < 2 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	best := -1
	for t := 1; t < n; t++ {
		k := g.EdgeDisjointPaths(0, Node(t))
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

// NodeConnectivity returns κ(G), the minimum over all non-adjacent node
// pairs of the number of internally node-disjoint paths between them; for
// a complete graph κ = n-1. This is the exact definition evaluated
// directly — quadratic in n, which is fine for the validation-sized graphs
// it is applied to.
func (g *Graph) NodeConnectivity() int {
	n := g.N()
	if n < 2 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	best := n - 1
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if g.HasEdge(Node(s), Node(t)) {
				continue
			}
			if k := g.NodeDisjointPaths(Node(s), Node(t)); k < best {
				best = k
			}
		}
	}
	return best
}
