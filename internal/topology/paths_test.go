package topology

import "testing"

func validatePathSet(t *testing.T, g *Graph, s, to Node, paths [][]Node) {
	t.Helper()
	used := map[Edge]bool{}
	for pi, p := range paths {
		if len(p) < 2 || p[0] != s || p[len(p)-1] != to {
			t.Fatalf("path %d = %v: want %d…%d with ≥2 nodes", pi, p, s, to)
		}
		seen := map[Node]bool{}
		for _, v := range p {
			if seen[v] {
				t.Fatalf("path %d = %v revisits node %d", pi, p, v)
			}
			seen[v] = true
		}
		for h := 0; h+1 < len(p); h++ {
			if !g.HasEdge(p[h], p[h+1]) {
				t.Fatalf("path %d = %v: {%d,%d} is not an edge", pi, p, p[h], p[h+1])
			}
			e := NewEdge(p[h], p[h+1])
			if used[e] {
				t.Fatalf("edge %v used by two paths (second in path %d = %v)", e, pi, p)
			}
			used[e] = true
		}
	}
}

func TestEdgeDisjointPathRoutes(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"sq4", MustSquareTorus(4)},
		{"q4", MustHypercube(4)},
		{"q6", MustHypercube(6)},
		{"h3", MustHexMesh(3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			for _, pair := range [][2]Node{{0, 1}, {0, Node(g.N() - 1)}, {1, Node(g.N() / 2)}} {
				s, d := pair[0], pair[1]
				if s == d {
					continue
				}
				want := g.EdgeDisjointPaths(s, d)
				paths := g.EdgeDisjointPathRoutes(s, d)
				if len(paths) != want {
					t.Fatalf("%d→%d: %d routes, EdgeDisjointPaths says %d", s, d, len(paths), want)
				}
				validatePathSet(t, g, s, d, paths)
			}
		})
	}
}

func TestEdgeDisjointPathRoutesDeterministic(t *testing.T) {
	g := MustSquareTorus(4)
	a := g.EdgeDisjointPathRoutes(0, 10)
	b := g.EdgeDisjointPathRoutes(0, 10)
	if len(a) != len(b) {
		t.Fatalf("path counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("path %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("path %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestEdgeDisjointPathRoutesDisconnected(t *testing.T) {
	g := New("two-islands", 4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if paths := g.EdgeDisjointPathRoutes(0, 3); paths != nil {
		t.Fatalf("disconnected pair yielded paths %v", paths)
	}
}

func TestShortestPathAvoiding(t *testing.T) {
	g := MustSquareTorus(4)
	// Unrestricted: must match BFS distance.
	dist := g.BFS(0)
	for v := 1; v < g.N(); v++ {
		p := g.ShortestPathAvoiding(0, Node(v), nil)
		if p == nil || len(p)-1 != dist[v] {
			t.Fatalf("0→%d: path %v, want length %d", v, p, dist[v])
		}
	}
	// Avoiding the direct edge 0–1 forces a longer route that still
	// arrives without crossing it.
	avoid := func(u, v Node) bool { return NewEdge(u, v) == NewEdge(0, 1) }
	p := g.ShortestPathAvoiding(0, 1, avoid)
	if p == nil || len(p)-1 <= 1 {
		t.Fatalf("avoiding {0,1}: got %v, want a detour", p)
	}
	for h := 0; h+1 < len(p); h++ {
		if avoid(p[h], p[h+1]) {
			t.Fatalf("detour %v crosses the avoided edge", p)
		}
	}
	// Avoiding everything: unreachable.
	if p := g.ShortestPathAvoiding(0, 5, func(u, v Node) bool { return true }); p != nil {
		t.Fatalf("all-avoided BFS returned %v", p)
	}
	// Degenerate s == t.
	if p := g.ShortestPathAvoiding(3, 3, nil); len(p) != 1 || p[0] != 3 {
		t.Fatalf("s==t returned %v", p)
	}
}
