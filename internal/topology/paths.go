package topology

// Path extraction on top of the unit-capacity flow machinery in
// connectivity.go. EdgeDisjointPaths answers "how many"; the repair
// layer also needs the actual routes, so EdgeDisjointPathRoutes
// decomposes a maximum flow into explicit node sequences, and
// ShortestPathAvoiding finds a fallback detour that respects a
// caller-supplied dead-link predicate.

// EdgeDisjointPathRoutes returns a maximum-cardinality set of pairwise
// edge-disjoint s→t paths as explicit node sequences (each starting at
// s and ending at t). len(result) == EdgeDisjointPaths(s, t). The
// decomposition is deterministic: identical graphs yield identical path
// sets in identical order.
func (g *Graph) EdgeDisjointPathRoutes(s, t Node) [][]Node {
	g.checkNode(s)
	g.checkNode(t)
	if s == t {
		panic("topology: EdgeDisjointPathRoutes with s == t")
	}
	f := newFlowNet(g.N())
	for _, e := range g.Edges() {
		f.addArc(int(e.U), int(e.V), 1)
		f.addArc(int(e.V), int(e.U), 1)
	}
	k := f.maxFlow(int(s), int(t), -1)
	if k == 0 {
		return nil
	}
	// Each undirected edge contributed four arc slots: 4i is u→v, 4i+2
	// is v→u (odd slots are residuals). Cancel antiparallel unit flows —
	// they are pure circulation across one edge and would otherwise show
	// up as a two-step detour-and-return during the walk below.
	for e := 0; e+2 < len(f.cap); e += 4 {
		if f.cap[e] == 0 && f.cap[e+2] == 0 {
			f.cap[e], f.cap[e+1] = 1, 0
			f.cap[e+2], f.cap[e+3] = 1, 0
		}
	}
	// Outgoing flow arcs per node, in ascending arc order for
	// determinism. A forward arc carries flow iff its capacity was
	// exhausted.
	out := make([][]int32, g.N())
	for e := 0; e < len(f.cap); e += 2 {
		if f.cap[e] == 0 {
			u := f.to[e^1]
			out[u] = append(out[u], int32(f.to[e]))
		}
	}
	// Walk k times from s to t, consuming one flow arc per step. Flow
	// conservation guarantees each walk reaches t; residual circulation
	// (a cycle glued onto a path) is stripped by truncating at the first
	// repeated node.
	paths := make([][]Node, 0, k)
	pos := make([]int, g.N())
	for i := range pos {
		pos[i] = -1
	}
	for len(paths) < k {
		path := []Node{s}
		pos[s] = 0
		cur := int(s)
		for cur != int(t) {
			o := out[cur]
			if len(o) == 0 {
				// Conservation violated — cannot happen for a valid flow;
				// bail out rather than loop forever.
				break
			}
			next := int(o[len(o)-1])
			out[cur] = o[:len(o)-1]
			if p := pos[next]; p >= 0 {
				// Entered a cycle: drop the loop portion.
				for _, v := range path[p+1:] {
					pos[v] = -1
				}
				path = path[:p+1]
			} else {
				pos[next] = len(path)
				path = append(path, Node(next))
			}
			cur = next
		}
		for _, v := range path {
			pos[v] = -1
		}
		if cur != int(t) {
			break
		}
		paths = append(paths, path)
	}
	return paths
}

// ShortestPathAvoiding returns a shortest s→t path that never crosses an
// edge for which avoid(u, v) reports true (consulted in the traversal
// direction u→v), or nil when t is unreachable under that restriction.
// A nil avoid means plain BFS. s == t yields the single-node path.
func (g *Graph) ShortestPathAvoiding(s, t Node, avoid func(u, v Node) bool) []Node {
	g.checkNode(s)
	g.checkNode(t)
	if s == t {
		return []Node{s}
	}
	prev := make([]Node, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[s] = s
	queue := []Node{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if prev[v] >= 0 || (avoid != nil && avoid(u, v)) {
				continue
			}
			prev[v] = u
			if v == t {
				// Reconstruct back to s.
				var rev []Node
				for w := t; w != s; w = prev[w] {
					rev = append(rev, w)
				}
				rev = append(rev, s)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return nil
}
