// Package topology provides the undirected interconnection-network graphs
// used by the IHC all-to-all reliable broadcast algorithm and its baselines:
// binary hypercubes Q_m, torus-wrapped square meshes SQ_m, and C-wrapped
// hexagonal meshes H_m, together with the generic graph operations
// (cartesian product, connectivity, regularity) needed by the
// Hamiltonian-decomposition constructions of Lee & Shin (1990/1994).
//
// Graphs are simple and undirected. A directed view (each undirected edge
// replaced by two arcs) is what the routing layers operate on; see Arc.
package topology

import (
	"fmt"
	"sort"
)

// Node identifies a vertex of a Graph. Nodes of an N-node graph are always
// numbered 0..N-1.
type Node int

// Edge is an undirected edge in canonical form (U < V).
type Edge struct {
	U, V Node
}

// NewEdge returns the canonical (smaller endpoint first) form of the edge
// {u, v}. It panics if u == v, since all graphs here are simple.
func NewEdge(u, v Node) Edge {
	if u == v {
		panic(fmt.Sprintf("topology: self-loop at node %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Arc is a directed communication link from one node to an adjacent node.
// In the paper's notation, the directed graph G^dir has every undirected
// edge of G replaced by the two arcs (u,v) and (v,u).
type Arc struct {
	From, To Node
}

// Reverse returns the arc traversed in the opposite direction.
func (a Arc) Reverse() Arc { return Arc{a.To, a.From} }

// Edge returns the undirected edge underlying the arc.
func (a Arc) Edge() Edge { return NewEdge(a.From, a.To) }

func (a Arc) String() string { return fmt.Sprintf("%d->%d", a.From, a.To) }

// Graph is a simple undirected graph over nodes 0..N()-1.
//
// All mutation happens through AddEdge; every query method is a pure
// read. Both the edge set and the adjacency lists are maintained
// incrementally at insertion time — never lazily on first query — so a
// fully constructed Graph is safe for concurrent readers (the parallel
// sweep executor validates routes against a shared *Graph from many
// goroutines at once).
type Graph struct {
	name string
	adj  [][]Node // each list kept sorted by AddEdge
	// edgeSet provides O(1) membership tests; populated by AddEdge.
	edgeSet map[Edge]struct{}
}

// New returns an empty graph with n isolated nodes.
func New(name string, n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{name: name, adj: make([][]Node, n), edgeSet: make(map[Edge]struct{})}
}

// Name returns the human-readable name of the graph (e.g. "Q4", "SQ5").
func (g *Graph) Name() string { return g.name }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edgeSet) }

// AddEdge inserts the undirected edge {u, v}. Duplicate insertions and
// self-loops panic: the constructions in this repository are exact, and a
// duplicate edge always indicates a construction bug.
func (g *Graph) AddEdge(u, v Node) {
	if u == v {
		panic(fmt.Sprintf("topology: self-loop at node %d in %s", u, g.name))
	}
	g.checkNode(u)
	g.checkNode(v)
	e := NewEdge(u, v)
	if _, dup := g.edgeSet[e]; dup {
		panic(fmt.Sprintf("topology: duplicate edge {%d,%d} in %s", u, v, g.name))
	}
	g.edgeSet[e] = struct{}{}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
}

// insertSorted places v at its sorted position in s, keeping adjacency
// lists ordered at insertion time so queries never mutate the graph.
func insertSorted(s []Node, v Node) []Node {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func (g *Graph) checkNode(u Node) {
	if u < 0 || int(u) >= len(g.adj) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d) in %s", u, len(g.adj), g.name))
	}
}

// HasEdge reports whether {u, v} is an edge of g. It is a pure read and
// safe to call from concurrent goroutines once construction is done.
func (g *Graph) HasEdge(u, v Node) bool {
	if u == v || u < 0 || v < 0 || int(u) >= g.N() || int(v) >= g.N() {
		return false
	}
	_, ok := g.edgeSet[NewEdge(u, v)]
	return ok
}

// Neighbors returns the sorted adjacency list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u Node) []Node {
	g.checkNode(u)
	return g.adj[u]
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u Node) int {
	g.checkNode(u)
	return len(g.adj[u])
}

// Edges returns all undirected edges in canonical form, sorted. The
// adjacency lists are kept sorted by AddEdge, so iterating nodes in
// order already yields (U, V)-sorted canonical edges.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if Node(u) < v {
				edges = append(edges, Edge{Node(u), v})
			}
		}
	}
	return edges
}

// Arcs returns all 2*M() directed arcs of G^dir, sorted by (From, To).
// Arc i of this slice is the arc index used by simnet's dense link
// state; the order is a pure function of the graph, so it is stable
// across calls and processes.
func (g *Graph) Arcs() []Arc {
	arcs := make([]Arc, 0, 2*g.M())
	for u := range g.adj {
		for _, v := range g.adj[u] {
			arcs = append(arcs, Arc{Node(u), v})
		}
	}
	return arcs
}

// IsRegular reports whether every node has the same degree, and if so,
// returns that degree.
func (g *Graph) IsRegular() (degree int, ok bool) {
	if g.N() == 0 {
		return 0, true
	}
	degree = len(g.adj[0])
	for _, nbrs := range g.adj[1:] {
		if len(nbrs) != degree {
			return 0, false
		}
	}
	return degree, true
}

// String returns a short description such as "Q4 (16 nodes, 32 edges)".
func (g *Graph) String() string {
	return fmt.Sprintf("%s (%d nodes, %d edges)", g.name, g.N(), g.M())
}
