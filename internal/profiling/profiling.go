// Package profiling wires the standard -cpuprofile/-memprofile flags of
// the command-line tools to runtime/pprof, so engine hot spots can be
// inspected with `go tool pprof` against a real workload instead of a
// microbenchmark.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuFile (when non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memFile (when non-empty). Callers must invoke stop on every exit
// path that should produce profiles — typically via defer in main.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
