package hamilton

import (
	"fmt"

	"ihc/internal/topology"
)

// This file registers the built-in families. Each registration binds a
// topology constructor to its decomposition rule and declares the
// invariants (N, γ, full cover) the registry verifies on Build. The
// per-family size caps keep Build tractable (the topology layer caps
// node counts at 2^22 anyway) while New stays cheap: it only validates.

// family is the shared Family implementation: a bundle of closures.
type family struct {
	key, desc string
	build     func(params []int) (*Instance, error)
	parse     func(name string) ([]int, bool)
	conf      [][]int
}

func (f *family) Key() string                          { return f.key }
func (f *family) Describe() string                     { return f.desc }
func (f *family) New(params ...int) (*Instance, error) { return f.build(params) }
func (f *family) ParseName(name string) ([]int, bool)  { return f.parse(name) }
func (f *family) Conformance() [][]int {
	out := make([][]int, len(f.conf))
	for i, p := range f.conf {
		out[i] = append([]int(nil), p...)
	}
	return out
}

// one adapts single-integer families to the params-slice contract.
func one(params []int) (int, error) {
	if len(params) != 1 {
		return 0, fmt.Errorf("hamilton: family takes exactly 1 parameter, got %d", len(params))
	}
	return params[0], nil
}

// scanOne adapts scan to the ParseName contract.
func scanOne(prefix string) func(string) ([]int, bool) {
	return func(name string) ([]int, bool) {
		var m int
		if !scan(name, prefix, &m) {
			return nil, false
		}
		return []int{m}, true
	}
}

func init() {
	Register(&family{
		key:  "Q",
		desc: "binary hypercube Q_m: N=2^m, γ=2⌊m/2⌋ (odd m leaves a matching unused)",
		build: func(params []int) (*Instance, error) {
			m, err := one(params)
			if err != nil {
				return nil, err
			}
			if m < 2 || m > 22 {
				return nil, fmt.Errorf("hamilton: hypercube dimension %d out of range [2,22]", m)
			}
			return &Instance{
				FamilyKey: "Q",
				Name:      fmt.Sprintf("Q%d", m),
				Params:    []int{m},
				N:         1 << m,
				Gamma:     2 * (m / 2),
				FullCover: m%2 == 0,
				graph:     func() (*topology.Graph, error) { return topology.Hypercube(m) },
				decompose: func() ([]Cycle, error) { return Hypercube(m) },
			}, nil
		},
		parse: scanOne("Q"),
		conf:  [][]int{{2}, {3}, {4}, {5}, {6}},
	})

	Register(&family{
		key:  "SQ",
		desc: "torus-wrapped square mesh SQ_m: N=m², γ=4",
		build: func(params []int) (*Instance, error) {
			m, err := one(params)
			if err != nil {
				return nil, err
			}
			if m < 3 || m > 2048 {
				return nil, fmt.Errorf("hamilton: square torus size %d out of range [3,2048]", m)
			}
			return &Instance{
				FamilyKey: "SQ",
				Name:      fmt.Sprintf("SQ%d", m),
				Params:    []int{m},
				N:         m * m,
				Gamma:     4,
				FullCover: true,
				graph:     func() (*topology.Graph, error) { return topology.SquareTorus(m) },
				decompose: func() ([]Cycle, error) { return SquareTorus(m) },
			}, nil
		},
		parse: scanOne("SQ"),
		conf:  [][]int{{3}, {4}, {5}},
	})

	Register(&family{
		key:  "H",
		desc: "C-wrapped hexagonal mesh H_m: N=3m(m-1)+1, γ=6",
		build: func(params []int) (*Instance, error) {
			m, err := one(params)
			if err != nil {
				return nil, err
			}
			if m < 2 || m > 1180 {
				return nil, fmt.Errorf("hamilton: hex mesh size %d out of range [2,1180]", m)
			}
			return &Instance{
				FamilyKey: "H",
				Name:      fmt.Sprintf("H%d", m),
				Params:    []int{m},
				N:         topology.HexMeshSize(m),
				Gamma:     6,
				FullCover: true,
				graph:     func() (*topology.Graph, error) { return topology.HexMesh(m) },
				decompose: func() ([]Cycle, error) { return HexMesh(m) },
			}, nil
		},
		parse: scanOne("H"),
		conf:  [][]int{{2}, {3}},
	})

	Register(&family{
		key:  "T",
		desc: "mixed-radix torus C_k1 x ... x C_kd: N=∏ki, γ=2d",
		build: func(params []int) (*Instance, error) {
			if len(params) == 0 {
				return nil, fmt.Errorf("hamilton: torus needs at least one dimension")
			}
			n := 1
			name := "T"
			for i, k := range params {
				if k < 3 {
					return nil, fmt.Errorf("hamilton: torus dimension %d is %d, need >= 3", i, k)
				}
				if n > 1<<22/k {
					return nil, fmt.Errorf("hamilton: torus %v exceeds the 2^22-node cap", params)
				}
				n *= k
				if i > 0 {
					name += "x"
				}
				name += fmt.Sprintf("%d", k)
			}
			dims := append([]int(nil), params...)
			return &Instance{
				FamilyKey: "T",
				Name:      name,
				Params:    dims,
				N:         n,
				Gamma:     2 * len(dims),
				FullCover: true,
				graph:     func() (*topology.Graph, error) { return topology.TorusND(dims...) },
				decompose: func() ([]Cycle, error) { return MultiTorus(dims...) },
			}, nil
		},
		parse: func(name string) ([]int, bool) { return topology.TorusDims(name) },
		conf:  [][]int{{3, 3}, {4, 4}, {3, 3, 3}},
	})

	Register(&family{
		key:  "TQ",
		desc: "twisted cube TQ_n: N=2^n, two edge-disjoint HCs (γ=4; γ=2 for n=3)",
		build: func(params []int) (*Instance, error) {
			n, err := one(params)
			if err != nil {
				return nil, err
			}
			if n < 3 || n > 22 {
				return nil, fmt.Errorf("hamilton: twisted cube dimension %d out of range [3,22]", n)
			}
			gamma := 4
			if n == 3 {
				gamma = 2
			}
			return &Instance{
				FamilyKey: "TQ",
				Name:      fmt.Sprintf("TQ%d", n),
				Params:    []int{n},
				N:         1 << n,
				Gamma:     gamma,
				// TQ_4 is 4-regular, so its two HCs use all 2^5
				// edges; every other size leaves edges unused.
				FullCover: n == 4,
				graph:     func() (*topology.Graph, error) { return topology.TwistedCube(n) },
				decompose: func() ([]Cycle, error) { return TwistedCube(n) },
			}, nil
		},
		parse: func(name string) ([]int, bool) {
			n, ok := topology.TwistedDim(name)
			if !ok {
				return nil, false
			}
			return []int{n}, true
		},
		conf: [][]int{{3}, {4}, {5}, {6}},
	})

	Register(&family{
		key:  "KT",
		desc: "k-ary n-dimensional torus: N=k^n, γ=2n (Jung–Sakho ATA bound)",
		build: func(params []int) (*Instance, error) {
			if len(params) != 2 {
				return nil, fmt.Errorf("hamilton: k-ary torus takes exactly 2 parameters (k, n), got %d", len(params))
			}
			k, n := params[0], params[1]
			if k < 3 {
				return nil, fmt.Errorf("hamilton: k-ary torus arity %d must be >= 3", k)
			}
			if n < 1 {
				return nil, fmt.Errorf("hamilton: k-ary torus needs >= 1 dimension, got %d", n)
			}
			size := 1
			for i := 0; i < n; i++ {
				if size > 1<<22/k {
					return nil, fmt.Errorf("hamilton: KAryTorus(%d,%d) exceeds the 2^22-node cap", k, n)
				}
				size *= k
			}
			return &Instance{
				FamilyKey: "KT",
				Name:      fmt.Sprintf("KT%dx%d", k, n),
				Params:    []int{k, n},
				N:         size,
				Gamma:     2 * n,
				FullCover: true,
				graph:     func() (*topology.Graph, error) { return topology.KAryTorus(k, n) },
				decompose: func() ([]Cycle, error) { return KAryTorus(k, n) },
			}, nil
		},
		parse: func(name string) ([]int, bool) {
			k, n, ok := topology.KAryDims(name)
			if !ok {
				return nil, false
			}
			return []int{k, n}, true
		},
		conf: [][]int{{3, 2}, {4, 2}, {3, 3}},
	})
}
