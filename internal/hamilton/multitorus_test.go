package hamilton

import (
	"testing"

	"ihc/internal/topology"
)

func TestProductWithCycleMatchesLemma2(t *testing.T) {
	sq, err := SquareTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	c1 := GrayCycle(2)
	combine := func(a, b topology.Node) topology.Node { return a*16 + b }
	viaLemma2, err := Lemma2(c1, sq[0], sq[1], combine)
	if err != nil {
		t.Fatal(err)
	}
	viaGeneral, err := ProductWithCycle(c1, []Cycle{sq[0], sq[1]}, combine)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaLemma2) != 3 || len(viaGeneral) != 3 {
		t.Fatalf("cycle counts %d, %d", len(viaLemma2), len(viaGeneral))
	}
}

func TestProductWithCycleRejectsBadInput(t *testing.T) {
	combine := func(a, b topology.Node) topology.Node { return a*16 + b }
	sq, _ := SquareTorus(4)
	if _, err := ProductWithCycle(GrayCycle(2), nil, combine); err == nil {
		t.Fatal("empty cols accepted")
	}
	if _, err := ProductWithCycle(GrayCycle(2), []Cycle{sq[0], sq[0]}, combine); err == nil {
		t.Fatal("duplicate cols accepted")
	}
	if _, err := ProductWithCycle(GrayCycle(2), []Cycle{sq[0], sq[1][:8]}, combine); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTorusNDStructure(t *testing.T) {
	for _, dims := range [][]int{{5}, {3, 3}, {4, 4}, {3, 3, 3}, {4, 4, 4}, {3, 3, 3, 3}} {
		g := topology.MustTorusND(dims...)
		wantN := 1
		for _, k := range dims {
			wantN *= k
		}
		if g.N() != wantN {
			t.Fatalf("%s: N = %d, want %d", g.Name(), g.N(), wantN)
		}
		wantDeg := 2 * len(dims)
		if deg, ok := g.IsRegular(); !ok || deg != wantDeg {
			t.Fatalf("%s: degree %d, want %d", g.Name(), deg, wantDeg)
		}
		if !g.Connected() {
			t.Fatalf("%s disconnected", g.Name())
		}
	}
}

func TestTorusNDMatchesSquareTorus(t *testing.T) {
	a := topology.MustTorusND(5, 5)
	b := topology.MustSquareTorus(5)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch")
	}
	for _, e := range b.Edges() {
		if !a.HasEdge(e.U, e.V) {
			t.Fatalf("TorusND(5,5) missing SQ5 edge %v", e)
		}
	}
}

func TestTorusDims(t *testing.T) {
	if dims, ok := topology.TorusDims("T3x4x5"); !ok || len(dims) != 3 || dims[0] != 3 || dims[2] != 5 {
		t.Fatalf("parse = %v, %v", dims, ok)
	}
	for _, bad := range []string{"", "T", "Tx3", "T3x", "Q4", "T3y4"} {
		if _, ok := topology.TorusDims(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}

// The headline property of the extension: d-dimensional tori decompose
// into d edge-disjoint Hamiltonian cycles covering every edge (Foregger's
// theorem), which puts them in class Λ with γ = 2d.
func TestMultiTorusDecomposition(t *testing.T) {
	for _, dims := range [][]int{
		{3, 3}, {4, 4}, {4, 8}, {8, 4},
		{3, 3, 3}, {4, 4, 4}, {3, 9},
		{3, 3, 3, 3}, {4, 4, 4, 4},
	} {
		cycles, err := MultiTorus(dims...)
		if err != nil {
			t.Fatalf("MultiTorus(%v): %v", dims, err)
		}
		if len(cycles) != len(dims) {
			t.Fatalf("MultiTorus(%v): %d cycles", dims, len(cycles))
		}
		g := topology.MustTorusND(dims...)
		if err := VerifyDecomposition(g, cycles, true); err != nil {
			t.Fatalf("MultiTorus(%v): %v", dims, err)
		}
	}
}

func TestMultiTorusOneDimension(t *testing.T) {
	cycles, err := MultiTorus(7)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.MustTorusND(7)
	if err := VerifyDecomposition(g, cycles, true); err != nil {
		t.Fatal(err)
	}
}

func TestMultiTorusRejectsBadDims(t *testing.T) {
	for _, dims := range [][]int{{}, {2}, {3, 2}, {2, 3, 3}} {
		if _, err := MultiTorus(dims...); err == nil {
			t.Fatalf("MultiTorus(%v) accepted", dims)
		}
	}
}

func TestDecomposeDispatchTorusND(t *testing.T) {
	g := topology.MustTorusND(3, 3, 3)
	cycles, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 3 {
		t.Fatalf("got %d cycles", len(cycles))
	}
}
