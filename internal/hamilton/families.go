package hamilton

import (
	"fmt"

	"ihc/internal/topology"
)

// GrayCycle returns the Hamiltonian cycle of Q_m traced by the standard
// reflected binary Gray code (m >= 2): node i of the cycle is i ^ (i>>1).
// Consecutive codes differ in one bit, so consecutive cycle nodes are
// hypercube neighbors.
func GrayCycle(m int) Cycle {
	if m < 2 {
		panic(fmt.Sprintf("hamilton: GrayCycle requires m >= 2, got %d", m))
	}
	n := 1 << m
	c := make(Cycle, n)
	for i := 0; i < n; i++ {
		c[i] = topology.Node(i ^ (i >> 1))
	}
	return c
}

// Hypercube returns ⌊m/2⌋ edge-disjoint Hamiltonian cycles of Q_m,
// following the inductive constructions of the paper's Theorems 1 and 2:
//
//   - basis: Q2 and Q3 each contribute their Gray-code cycle;
//   - Q_m is split into Q_m1 x Q_m2 (equal halves when that yields equal
//     cycle counts, the ⌊m/2⌋∓1 split otherwise for even m);
//   - matching pairs of factor HCs are combined with Lemma 1
//     (ProductHCs), and when the factor counts differ by one the three
//     leftover cycles are combined with Lemma 2.
//
// For even m the cycles cover every edge of Q_m (a full Hamiltonian
// decomposition, Theorem 1); for odd m one perfect matching is left over
// (Theorem 2). The construction is self-verifying: any internal failure
// returns an error rather than an invalid decomposition.
func Hypercube(m int) ([]Cycle, error) {
	if m < 2 {
		return nil, fmt.Errorf("hamilton: Q%d has no Hamiltonian cycle", m)
	}
	if m == 2 || m == 3 {
		return []Cycle{GrayCycle(m)}, nil
	}
	var m1, m2 int
	switch {
	case m%2 == 0 && (m/2)%2 == 0:
		m1, m2 = m/2, m/2
	case m%2 == 0:
		m1, m2 = m/2-1, m/2+1
	default:
		m1, m2 = m/2, m/2+1
	}
	d1, err := Hypercube(m1)
	if err != nil {
		return nil, err
	}
	d2, err := Hypercube(m2)
	if err != nil {
		return nil, err
	}
	// Product node address: factor-1 node in the high m2..m-1 bits,
	// factor-2 node in the low bits — matching Q_m = Q_m1 x Q_m2.
	combine := func(a, b topology.Node) topology.Node {
		return a<<uint(m2) | b
	}
	n1, n2 := len(d1), len(d2)
	var out []Cycle
	switch {
	case n1 == n2:
		for i := 0; i < n1; i++ {
			red, blue, err := ProductHCs(d1[i], d2[i], combine)
			if err != nil {
				return nil, fmt.Errorf("hamilton: Q%d = Q%d x Q%d pair %d: %w", m, m1, m2, i, err)
			}
			out = append(out, red, blue)
		}
	case n2 == n1+1:
		for i := 0; i < n1-1; i++ {
			red, blue, err := ProductHCs(d1[i], d2[i], combine)
			if err != nil {
				return nil, fmt.Errorf("hamilton: Q%d = Q%d x Q%d pair %d: %w", m, m1, m2, i, err)
			}
			out = append(out, red, blue)
		}
		three, err := Lemma2(d1[n1-1], d2[n1-1], d2[n1], combine)
		if err != nil {
			return nil, fmt.Errorf("hamilton: Q%d = Q%d x Q%d leftover: %w", m, m1, m2, err)
		}
		out = append(out, three...)
	default:
		return nil, fmt.Errorf("hamilton: Q%d split Q%d x Q%d has incompatible counts %d, %d", m, m1, m2, n1, n2)
	}
	if len(out) != m/2 {
		return nil, fmt.Errorf("hamilton: Q%d produced %d cycles, want %d", m, len(out), m/2)
	}
	return out, nil
}

// SquareTorus returns the two edge-disjoint Hamiltonian cycles of the
// torus-wrapped square mesh SQ_m (m >= 3) — the paper's Fig. 3 pattern
// generalized to every m. The cycles cover all edges.
func SquareTorus(m int) ([]Cycle, error) {
	red, blue, err := TorusHCs(m, m)
	if err != nil {
		return nil, fmt.Errorf("hamilton: SQ%d: %w", m, err)
	}
	// TorusHCs already numbers node (r,c) as r*m+c, which is exactly
	// topology.SquareTorus's numbering.
	return []Cycle{red, blue}, nil
}

// HexMesh returns the three edge-disjoint Hamiltonian cycles of the
// C-wrapped hexagonal mesh H_m (m >= 2): the edges of each of the three
// axis directions form one HC because each address step is coprime with
// N = 3m(m-1)+1 (Chen, Shin & Kandlur). The cycles cover all edges.
func HexMesh(m int) ([]Cycle, error) {
	if m < 2 {
		return nil, fmt.Errorf("hamilton: H%d undefined, need m >= 2", m)
	}
	n := topology.HexMeshSize(m)
	var out []Cycle
	for _, step := range topology.HexSteps(m) {
		c := make(Cycle, n)
		cur := 0
		for i := 0; i < n; i++ {
			c[i] = topology.Node(cur)
			cur = (cur + step) % n
		}
		out = append(out, c)
	}
	return out, nil
}

// MultiTorus returns d edge-disjoint Hamiltonian cycles covering every
// edge of the d-dimensional torus C_k1 x ... x C_kd (each ki >= 3) —
// Foregger's theorem, built constructively: the base torus by Lemma 1 and
// each further dimension by ProductWithCycle (the generalized Lemma 2).
// Node numbering matches topology.TorusND.
//
// Coverage caveat: the Lemma 1 engine uses the staircase rule, which
// handles equal dimensions, power-of-two dimensions, and mixes where each
// new dimension relates arithmetically to the prefix product (e.g. k |
// prod or gcd structure); incompatible mixes such as (4,4,3) are reported
// as errors rather than constructed incorrectly. Foregger's theorem
// guarantees a decomposition exists for every mix; extending the pattern
// engine is future work.
func MultiTorus(dims ...int) ([]Cycle, error) {
	switch len(dims) {
	case 0:
		return nil, fmt.Errorf("hamilton: MultiTorus needs at least one dimension")
	case 1:
		if dims[0] < 3 {
			return nil, fmt.Errorf("hamilton: torus dimension %d < 3", dims[0])
		}
		c := make(Cycle, dims[0])
		for i := range c {
			c[i] = topology.Node(i)
		}
		return []Cycle{c}, nil
	}
	// A = the first d-1 dimensions, B = the last.
	sub, err := MultiTorus(dims[:len(dims)-1]...)
	if err != nil {
		return nil, err
	}
	kd := dims[len(dims)-1]
	if kd < 3 {
		return nil, fmt.Errorf("hamilton: torus dimension %d < 3", kd)
	}
	last := make(Cycle, kd)
	for i := range last {
		last[i] = topology.Node(i)
	}
	// TorusND numbering: last dimension fastest, so product node
	// (a in A, b in C_kd) has index a*kd + b.
	combine := func(b, a topology.Node) topology.Node {
		return a*topology.Node(kd) + b
	}
	out, err := ProductWithCycle(last, sub, combine)
	if err != nil {
		return nil, fmt.Errorf("hamilton: MultiTorus %v: %w", dims, err)
	}
	return out, nil
}

// scan parses names of the form <prefix><integer>.
func scan(name, prefix string, m *int) bool {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	v := 0
	for _, ch := range name[len(prefix):] {
		if ch < '0' || ch > '9' {
			return false
		}
		v = v*10 + int(ch-'0')
	}
	*m = v
	return true
}
