// The cross-family conformance suite: every family registered in the
// decomposition registry is run through the full verification battery
// (decomposition validity, schedule feasibility, Theorem 3/4 oracle
// cleanliness, sequential-vs-sharded byte identity, γ-copy ledger) at
// the small sizes the family declares via Conformance(). The battery
// itself lives in internal/conformance — this file is deliberately just
// the registry iteration, so registering a family is all it takes to be
// covered. External test package: the battery drives internal/core and
// internal/observe, which import hamilton.
package hamilton_test

import (
	"testing"

	"ihc/internal/conformance"
	"ihc/internal/hamilton"
)

func TestCrossFamilyConformance(t *testing.T) {
	fams := hamilton.Families()
	if len(fams) < 6 {
		t.Fatalf("registry has %d families, want >= 6 (Q, SQ, H, T, TQ, KT)", len(fams))
	}
	for _, f := range fams {
		f := f
		t.Run(f.Key(), func(t *testing.T) {
			t.Parallel()
			if len(f.Conformance()) == 0 {
				t.Fatalf("family %s declares no conformance sizes", f.Key())
			}
			if err := conformance.CheckFamily(f, conformance.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
