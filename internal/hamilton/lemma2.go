package hamilton

import (
	"fmt"

	"ihc/internal/topology"
)

// This file implements the constructive content of the paper's Lemma 2
// (Aubert & Schneider, Discrete Math. 1982): if a graph H on q nodes is
// the union of two edge-disjoint Hamiltonian cycles C2 and C3, and C1 is a
// cycle on r nodes, then the cartesian product H x C1 decomposes into
// three undirected edge-disjoint Hamiltonian cycles.
//
// Construction: relabel H's nodes by their position along C2 and C1's by
// position, so the product contains the canonical r x q torus C1 x C2
// (rows = C1, columns = C2) plus, in every row, a copy of C3 lifted into
// that row. Lemma 1 decomposes the torus part into two HCs F1 and F2 that
// together use all torus edges; the lifted C3 copies form r disjoint
// row-cycles G. The copies are then stitched into a single Hamiltonian
// cycle by r-1 "swap" moves: a swap at row boundary y picks a C3 edge
// {x, x'} such that one of F1/F2 contains both vertical edges
// (x,y)-(x,y+1) and (x',y)-(x',y+1), moves those two verticals from F into
// G, and moves the two lifted C3 edges (x,y)-(x',y), (x,y+1)-(x',y+1)
// from G into F. Each swap preserves all degrees, merges row y+1's cycle
// into the growing G-cycle, and — for candidates whose endpoints pair
// crosswise, which the code tests explicitly — leaves F a single
// Hamiltonian cycle. All three cycles are verified before returning.

// edgeAdj is a 2-regular graph stored as two adjacency slots per node.
type edgeAdj struct {
	n   int
	adj [][2]int32
	deg []int8
}

func newEdgeAdj(n int) *edgeAdj {
	return &edgeAdj{n: n, adj: make([][2]int32, n), deg: make([]int8, n)}
}

func edgeAdjFromCycle(c Cycle) *edgeAdj {
	ea := newEdgeAdj(len(c))
	for i := range c {
		ea.add(int(c[i]), int(c.Next(i)))
	}
	return ea
}

func (ea *edgeAdj) add(u, v int) {
	if ea.deg[u] >= 2 || ea.deg[v] >= 2 {
		panic("hamilton: edgeAdj degree overflow")
	}
	ea.adj[u][ea.deg[u]] = int32(v)
	ea.adj[v][ea.deg[v]] = int32(u)
	ea.deg[u]++
	ea.deg[v]++
}

func (ea *edgeAdj) has(u, v int) bool {
	for i := int8(0); i < ea.deg[u]; i++ {
		if ea.adj[u][i] == int32(v) {
			return true
		}
	}
	return false
}

func (ea *edgeAdj) remove(u, v int) {
	rm := func(a, b int) {
		switch {
		case ea.deg[a] >= 1 && ea.adj[a][0] == int32(b):
			ea.adj[a][0] = ea.adj[a][1]
			ea.deg[a]--
		case ea.deg[a] >= 2 && ea.adj[a][1] == int32(b):
			ea.deg[a]--
		default:
			panic(fmt.Sprintf("hamilton: removing absent edge {%d,%d}", u, v))
		}
	}
	rm(u, v)
	rm(v, u)
}

// singleCycle reports whether the structure is a single cycle over all n
// nodes, and returns it.
func (ea *edgeAdj) singleCycle() (Cycle, bool) {
	for u := 0; u < ea.n; u++ {
		if ea.deg[u] != 2 {
			return nil, false
		}
	}
	return walkCycle(ea.adj, ea.n)
}

func (ea *edgeAdj) clone() *edgeAdj {
	cp := &edgeAdj{n: ea.n, adj: make([][2]int32, ea.n), deg: make([]int8, ea.n)}
	copy(cp.adj, ea.adj)
	copy(cp.deg, ea.deg)
	return cp
}

// Lemma2 decomposes (C2 ∪ C3) x C1 into three edge-disjoint Hamiltonian
// cycles. c2 and c3 must be edge-disjoint Hamiltonian cycles over the same
// q >= 3 nodes; c1 is a cycle over r >= 3 nodes of the other factor.
// combine maps (node of c1's factor, node of c2's factor) to the product
// node.
func Lemma2(c1, c2, c3 Cycle, combine func(a, b topology.Node) topology.Node) ([]Cycle, error) {
	return ProductWithCycle(c1, []Cycle{c2, c3}, combine)
}

// ProductWithCycle generalizes Lemma 2 to any number of factor cycles: it
// decomposes (C_1 ∪ C_2 ∪ ... ∪ C_k) x D into k+1 edge-disjoint
// Hamiltonian cycles, where cols = C_1..C_k are pairwise edge-disjoint
// Hamiltonian cycles over the same q >= 3 nodes and d = D is a cycle over
// r >= 3 nodes of the other factor. This is the constructive engine
// behind Foregger's theorem that a product of d cycles decomposes into d
// Hamiltonian cycles — the d-dimensional tori of the paper's "regular
// meshes".
//
// Construction: Lemma 1 decomposes the torus D x C_1 into two HCs F1, F2
// that own all the D-lifted ("vertical") edges; every further factor
// cycle C_j lifts to r disjoint row-copies, which are stitched into one
// Hamiltonian cycle by r-1 swaps, each trading two vertical edges from
// F1 or F2 for two lifted C_j edges while provably keeping the donor a
// single cycle. combine maps (node of D's factor, node of C_1's factor)
// to the product node.
func ProductWithCycle(c1 Cycle, cols []Cycle, combine func(a, b topology.Node) topology.Node) ([]Cycle, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("hamilton: ProductWithCycle needs at least one column cycle")
	}
	r, q := len(c1), len(cols[0])
	if r < 3 || q < 3 {
		return nil, fmt.Errorf("hamilton: ProductWithCycle needs cycles of length >= 3, got r=%d q=%d", r, q)
	}
	for j, c := range cols {
		if len(c) != q {
			return nil, fmt.Errorf("hamilton: column cycle %d has %d nodes, want %d", j, len(c), q)
		}
	}
	if err := VerifyEdgeDisjoint(cols); err != nil {
		return nil, fmt.Errorf("hamilton: ProductWithCycle columns: %w", err)
	}
	n := r * q
	id := func(y, x int) int { return y*q + x }

	relabel := func(c Cycle) Cycle {
		out := make(Cycle, len(c))
		for i, v := range c {
			y, x := int(v)/q, int(v)%q
			out[i] = combine(c1[y], cols[0][x])
		}
		return out
	}

	// Base torus D x C_1 via Lemma 1: F1, F2 own all vertical edges.
	h1, h2, err := TorusHCs(r, q)
	if err != nil {
		return nil, fmt.Errorf("hamilton: ProductWithCycle torus step: %w", err)
	}
	if len(cols) == 1 {
		return []Cycle{relabel(h1), relabel(h2)}, nil
	}
	f1 := edgeAdjFromCycle(h1)
	f2 := edgeAdjFromCycle(h2)

	pos := cols[0].Positions()
	out := make([]*edgeAdj, 0, len(cols)+1)
	out = append(out, f1, f2)

	for j := 1; j < len(cols); j++ {
		cj := cols[j]
		// C_j in column-index space.
		sigma := make([][2]int, q)
		for i := range cj {
			x, ok1 := pos[cj[i]]
			x2, ok2 := pos[cj.Next(i)]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("hamilton: column cycle %d visits a node not in cycle 0", j)
			}
			if x == x2 || (x-x2+q)%q == 1 || (x2-x+q)%q == 1 {
				return nil, fmt.Errorf("hamilton: cycle-%d edge {%d,%d} collides with cycle 0", j, cj[i], cj.Next(i))
			}
			sigma[i] = [2]int{x, x2}
		}
		// G_j = r disjoint lifted copies of C_j, then stitch.
		g := newEdgeAdj(n)
		for y := 0; y < r; y++ {
			for _, e := range sigma {
				g.add(id(y, e[0]), id(y, e[1]))
			}
		}
		for y := 0; y < r-1; y++ {
			if !stitchBoundary(f1, f2, g, sigma, y, q, id) {
				return nil, fmt.Errorf("hamilton: ProductWithCycle: no valid swap for cycle %d at row boundary %d (r=%d q=%d)", j, y, r, q)
			}
		}
		out = append(out, g)
	}

	cycles := make([]Cycle, 0, len(out))
	for i, ea := range out {
		c, ok := ea.singleCycle()
		if !ok {
			return nil, fmt.Errorf("hamilton: ProductWithCycle postcondition failed on cycle %d", i)
		}
		cycles = append(cycles, relabel(c))
	}
	return cycles, nil
}

// stitchBoundary tries all candidate swaps at the boundary between rows y
// and y+1, committing and reporting true on the first one that keeps the
// donor torus cycle a single Hamiltonian cycle.
func stitchBoundary(f1, f2, g *edgeAdj, sigma [][2]int, y, q int, id func(y, x int) int) bool {
	for _, e := range sigma {
		x, x2 := e[0], e[1]
		uy, vy := id(y, x), id(y, x2)
		uy1, vy1 := id(y+1, x), id(y+1, x2)
		// Both lifted C3 edges must still belong to G.
		if !g.has(uy, vy) || !g.has(uy1, vy1) {
			continue
		}
		for _, f := range [2]*edgeAdj{f1, f2} {
			// The donor must own both vertical edges at columns x and x'.
			if !f.has(uy, uy1) || !f.has(vy, vy1) {
				continue
			}
			trial := f.clone()
			trial.remove(uy, uy1)
			trial.remove(vy, vy1)
			trial.add(uy, vy)
			trial.add(uy1, vy1)
			if _, ok := trial.singleCycle(); !ok {
				continue
			}
			// Commit.
			*f = *trial
			g.remove(uy, vy)
			g.remove(uy1, vy1)
			g.add(uy, uy1)
			g.add(vy, vy1)
			return true
		}
	}
	return false
}
