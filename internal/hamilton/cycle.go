// Package hamilton constructs the edge-disjoint Hamiltonian cycle (HC)
// decompositions that the IHC algorithm of Lee & Shin rides on: a graph G
// is in class Λ iff it is γ-regular for even γ and contains γ/2 undirected
// edge-disjoint HCs (condition LC2). The package provides constructive
// decompositions for the three network families of the paper —
//
//   - hypercubes Q_m (Theorems 1 and 2, via Lemma 1 [Foregger 1978] and
//     Lemma 2 [Aubert & Schneider 1982]),
//   - torus-wrapped square meshes SQ_m (the Fig. 3 pattern), and
//   - C-wrapped hexagonal meshes H_m (one HC per axis direction),
//
// plus the verification machinery used to check every construction at
// build time: Hamiltonicity, pairwise edge-disjointness, and full edge
// cover where the theory promises it.
package hamilton

import (
	"fmt"

	"ihc/internal/topology"
)

// Cycle is an undirected Hamiltonian cycle represented as the sequence of
// nodes visited; the edge from the last node back to the first is implicit.
// A Cycle of a graph with N nodes has length N.
type Cycle []topology.Node

// Len returns the number of nodes (= number of edges) in the cycle.
func (c Cycle) Len() int { return len(c) }

// Next returns the node after position i, wrapping around.
func (c Cycle) Next(i int) topology.Node { return c[(i+1)%len(c)] }

// Prev returns the node before position i, wrapping around.
func (c Cycle) Prev(i int) topology.Node { return c[(i-1+len(c))%len(c)] }

// Edges returns the cycle's undirected edges in canonical form.
func (c Cycle) Edges() []topology.Edge {
	edges := make([]topology.Edge, len(c))
	for i := range c {
		edges[i] = topology.NewEdge(c[i], c.Next(i))
	}
	return edges
}

// EdgeSet returns the cycle's edges as a set.
func (c Cycle) EdgeSet() map[topology.Edge]struct{} {
	set := make(map[topology.Edge]struct{}, len(c))
	for _, e := range c.Edges() {
		set[e] = struct{}{}
	}
	return set
}

// Positions returns a map from node to its index in the cycle.
func (c Cycle) Positions() map[topology.Node]int {
	pos := make(map[topology.Node]int, len(c))
	for i, v := range c {
		pos[v] = i
	}
	return pos
}

// Rotated returns the cycle re-anchored to start at the node currently at
// position i, preserving orientation.
func (c Cycle) Rotated(i int) Cycle {
	out := make(Cycle, 0, len(c))
	out = append(out, c[i:]...)
	out = append(out, c[:i]...)
	return out
}

// Reversed returns the cycle traversed in the opposite orientation,
// keeping the same starting node.
func (c Cycle) Reversed() Cycle {
	out := make(Cycle, len(c))
	out[0] = c[0]
	for i := 1; i < len(c); i++ {
		out[i] = c[len(c)-i]
	}
	return out
}

// DirectedArcs returns the cycle's arcs in traversal order.
func (c Cycle) DirectedArcs() []topology.Arc {
	arcs := make([]topology.Arc, len(c))
	for i := range c {
		arcs[i] = topology.Arc{From: c[i], To: c.Next(i)}
	}
	return arcs
}

// VerifyHamiltonian checks that c is a Hamiltonian cycle of g: it visits
// every node of g exactly once and every consecutive pair (including the
// wrap-around) is an edge of g.
func VerifyHamiltonian(g *topology.Graph, c Cycle) error {
	if len(c) != g.N() {
		return fmt.Errorf("hamilton: cycle length %d != node count %d of %s", len(c), g.N(), g.Name())
	}
	if g.N() < 3 {
		return fmt.Errorf("hamilton: %s too small for a Hamiltonian cycle", g.Name())
	}
	seen := make([]bool, g.N())
	for i, v := range c {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("hamilton: node %d out of range at position %d", v, i)
		}
		if seen[v] {
			return fmt.Errorf("hamilton: node %d repeated in cycle", v)
		}
		seen[v] = true
		if w := c.Next(i); !g.HasEdge(v, w) {
			return fmt.Errorf("hamilton: {%d,%d} is not an edge of %s", v, w, g.Name())
		}
	}
	return nil
}

// VerifyEdgeDisjoint checks that the given cycles are pairwise
// edge-disjoint.
func VerifyEdgeDisjoint(cycles []Cycle) error {
	seen := make(map[topology.Edge]int)
	for i, c := range cycles {
		for _, e := range c.Edges() {
			if j, dup := seen[e]; dup {
				return fmt.Errorf("hamilton: edge %d-%d shared by cycles %d and %d", e.U, e.V, j, i)
			}
			seen[e] = i
		}
	}
	return nil
}

// VerifyDecomposition checks that cycles form a set of edge-disjoint
// Hamiltonian cycles of g, and, if cover is true, that they use every edge
// of g (a full Hamiltonian decomposition, as guaranteed for even-degree
// members of class Λ).
func VerifyDecomposition(g *topology.Graph, cycles []Cycle, cover bool) error {
	for i, c := range cycles {
		if err := VerifyHamiltonian(g, c); err != nil {
			return fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	if err := VerifyEdgeDisjoint(cycles); err != nil {
		return err
	}
	if cover {
		if used := len(cycles) * g.N(); used != g.M() {
			return fmt.Errorf("hamilton: %d cycles use %d edges, %s has %d", len(cycles), used, g.Name(), g.M())
		}
	}
	return nil
}

// UnusedEdges returns the edges of g not used by any of the cycles. For
// even-dimensional hypercubes, SQ_m and H_m this is empty; for
// odd-dimensional hypercubes Q_{2k+1} it is the leftover perfect matching
// (the paper's "delete one link incident on each node").
func UnusedEdges(g *topology.Graph, cycles []Cycle) []topology.Edge {
	used := make(map[topology.Edge]struct{})
	for _, c := range cycles {
		for _, e := range c.Edges() {
			used[e] = struct{}{}
		}
	}
	var out []topology.Edge
	for _, e := range g.Edges() {
		if _, ok := used[e]; !ok {
			out = append(out, e)
		}
	}
	return out
}

// DirectedCycles orients each of the γ/2 undirected HCs both ways,
// producing the γ directed HCs HC_1..HC_γ over which the IHC algorithm
// pipelines packets. The forward orientation of undirected cycle i is at
// index 2i and the reverse at 2i+1.
func DirectedCycles(cycles []Cycle) []Cycle {
	out := make([]Cycle, 0, 2*len(cycles))
	for _, c := range cycles {
		fwd := make(Cycle, len(c))
		copy(fwd, c)
		out = append(out, fwd, c.Reversed())
	}
	return out
}
