package hamilton

import (
	"testing"
)

// FuzzFamilyParams is the registry's no-panic contract: for arbitrary
// (family key, parameters) the constructors must either return a valid
// instance or an error — never panic. Instances that construct are
// built (graph + decomposition + full verification) when small enough
// to be cheap, and their canonical name must round-trip through Parse
// back to the same family and parameters. The raw key is also thrown
// at Parse directly, so the name parsers share the contract.
func FuzzFamilyParams(f *testing.F) {
	f.Add("Q", 4, 0, 0)
	f.Add("Q", 31, -1, 9)
	f.Add("SQ", 4, 4, 0)
	f.Add("H", 3, 0, 0)
	f.Add("T", 4, 4, 4)
	f.Add("T", 3, -7, 2)
	f.Add("TQ", 5, 0, 0)
	f.Add("TQ", 23, 1, 1)
	f.Add("KT", 4, 2, 0)
	f.Add("KT", 3, -2, 8)
	f.Add("KT4x2", 0, 0, 0)
	f.Add("ZZZ9", 1 << 30, 3, -5)
	f.Fuzz(func(t *testing.T, key string, a, b, c int) {
		// Arbitrary names through the parsers: error or instance,
		// never a panic.
		if in, err := Parse(key); err == nil {
			checkInstance(t, in)
		}
		fam, ok := FamilyByKey(key)
		if !ok {
			return
		}
		for _, params := range [][]int{{}, {a}, {a, b}, {a, b, c}} {
			in, err := fam.New(params...)
			if err != nil {
				continue
			}
			checkInstance(t, in)
		}
	})
}

// checkInstance builds small instances and round-trips their name.
func checkInstance(t *testing.T, in *Instance) {
	t.Helper()
	if in.N <= 0 || in.Gamma <= 0 {
		t.Fatalf("%s: nonsensical invariants N=%d γ=%d", in.Name, in.N, in.Gamma)
	}
	again, err := Parse(in.Name)
	if err != nil {
		t.Fatalf("Parse(%q) does not round-trip: %v", in.Name, err)
	}
	if again.FamilyKey != in.FamilyKey || again.N != in.N || again.Gamma != in.Gamma {
		t.Fatalf("Parse(%q) = {%s N=%d γ=%d}, want {%s N=%d γ=%d}",
			in.Name, again.FamilyKey, again.N, again.Gamma, in.FamilyKey, in.N, in.Gamma)
	}
	// Building large instances is legitimate but not fuzz-cheap; the
	// cap keeps iterations fast while still covering every family's
	// construction path (all conformance sizes are far below it).
	if in.N > 4096 {
		return
	}
	if _, _, err := in.Build(); err != nil {
		// The mixed-radix torus family has a documented coverage
		// caveat: Foregger's theorem guarantees a decomposition for
		// every mix, but the staircase engine reports the mixes it
		// cannot construct (e.g. 3x7) as a clean error. Every other
		// family must build whatever its New accepts.
		if in.FamilyKey == "T" {
			return
		}
		t.Fatalf("%s: valid parameters failed to build: %v", in.Name, err)
	}
}
