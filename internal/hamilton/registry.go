package hamilton

import (
	"fmt"
	"sort"
	"sync"

	"ihc/internal/topology"
)

// Family is one registered topology family: a parameterized class of
// graphs together with its edge-disjoint Hamiltonian cycle
// construction. Families register themselves at init time; everything
// downstream — Decompose, the harness experiments, the fault campaign
// topology parser, and the cross-family conformance suite — dispatches
// through the registry instead of a hard-coded family switch, so a new
// family gets the full verification stack by registering.
type Family interface {
	// Key is the short family identifier ("Q", "SQ", "H", "T", "TQ",
	// "KT"), unique across the registry.
	Key() string
	// Describe is a one-line human description of the family.
	Describe() string
	// New validates params and returns the family member they select.
	// Invalid parameters return an error — never a panic: this is the
	// contract FuzzFamilyParams enforces.
	New(params ...int) (*Instance, error)
	// ParseName recovers the parameters from a canonical graph name
	// (the name the family's topology constructor bakes into the
	// Graph), reporting ok=false for names of other families.
	ParseName(name string) ([]int, bool)
	// Conformance lists small parameter sets the cross-family
	// conformance suite runs for this family.
	Conformance() [][]int
}

// Instance is one concrete family member. The graph and decomposition
// are constructed lazily — New only validates parameters and computes
// the instance's invariants, so enumerating or fuzzing the registry is
// cheap even for large parameterizations.
type Instance struct {
	// FamilyKey is the owning family's Key().
	FamilyKey string
	// Name is the canonical graph name ("TQ4", "KT4x2", "Q6", ...).
	Name string
	// Params are the validated family parameters.
	Params []int
	// N is the node count.
	N int
	// Gamma is the number of directed Hamiltonian cycles (message
	// copies): twice the undirected cycle count.
	Gamma int
	// FullCover reports whether the undirected cycles cover every
	// edge of the graph (a full Hamiltonian decomposition). False for
	// odd hypercubes and twisted cubes with n != 4, which run IHC in
	// reduced-reliability mode.
	FullCover bool

	graph     func() (*topology.Graph, error)
	decompose func() ([]Cycle, error)
}

// Graph constructs the instance's graph.
func (in *Instance) Graph() (*topology.Graph, error) { return in.graph() }

// Build constructs the graph and its decomposition and verifies the
// decomposition against both the graph and the instance's declared
// invariants (Gamma, FullCover).
func (in *Instance) Build() (*topology.Graph, []Cycle, error) {
	g, err := in.graph()
	if err != nil {
		return nil, nil, err
	}
	cycles, err := in.decompose()
	if err != nil {
		return nil, nil, err
	}
	if err := VerifyDecomposition(g, cycles, in.FullCover); err != nil {
		return nil, nil, fmt.Errorf("hamilton: %s decomposition invalid: %w", in.Name, err)
	}
	if got := 2 * len(cycles); got != in.Gamma {
		return nil, nil, fmt.Errorf("hamilton: %s declared γ=%d but decomposition yields %d directed cycles", in.Name, in.Gamma, got)
	}
	return g, cycles, nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]Family{}
)

// Register adds a family to the registry. A duplicate key panics:
// registration is init-time wiring, and a collision is a programming
// error, not a runtime condition.
func Register(f Family) {
	regMu.Lock()
	defer regMu.Unlock()
	key := f.Key()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("hamilton: family %q registered twice", key))
	}
	registry[key] = f
}

// Families returns every registered family, sorted by key for
// deterministic iteration order.
func Families() []Family {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// FamilyByKey looks a family up by its registry key.
func FamilyByKey(key string) (Family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[key]
	return f, ok
}

// Parse resolves a canonical graph name ("Q6", "SQ4", "T4x4x4", "TQ5",
// "KT4x2", ...) against every registered family and returns the
// matching instance.
func Parse(name string) (*Instance, error) {
	for _, f := range Families() {
		if params, ok := f.ParseName(name); ok {
			return f.New(params...)
		}
	}
	return nil, fmt.Errorf("hamilton: no decomposition rule for %q", name)
}

// Decompose returns the Hamiltonian decomposition for any graph of a
// registered family, dispatching on the graph's constructor name. The
// result is fully verified against g before being returned: every
// cycle Hamiltonian, pairwise edge-disjoint, and covering all edges
// when the family declares full cover (odd hypercubes and most twisted
// cubes legitimately leave edges unused, as in the paper).
func Decompose(g *topology.Graph) ([]Cycle, error) {
	in, err := Parse(g.Name())
	if err != nil {
		return nil, err
	}
	cycles, err := in.decompose()
	if err != nil {
		return nil, err
	}
	if err := VerifyDecomposition(g, cycles, in.FullCover); err != nil {
		return nil, fmt.Errorf("hamilton: %s decomposition invalid: %w", g.Name(), err)
	}
	return cycles, nil
}
