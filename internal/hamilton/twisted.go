package hamilton

import (
	"fmt"

	"ihc/internal/topology"
)

// This file constructs the two edge-disjoint Hamiltonian cycles of the
// twisted cube TQ_n (Hung, arXiv:1006.3909) and the k-ary torus
// decomposition. The TQ construction is recursive, mirroring Hung's
// inductive argument in a form the repository can verify mechanically:
//
//   - TQ_3 (8 nodes) carries a single HC, found by deterministic
//     search — 2·1 = 2 < 3 = degree, so like odd hypercubes it runs
//     IHC in reduced-reliability mode.
//   - Odd n: TQ_n splits on its top bit pair into four copies of
//     TQ_{n-2} whose induced subgraphs are identical (the twisted-pair
//     adjacency depends only on the low bits). Each HC of TQ_{n-2} is
//     lifted into the four copies and the copies are stitched into one
//     HC of TQ_n by the classic cycle-merge: drop one cycle edge from
//     each of two cycles and bridge them with two cross edges. A
//     shared used-edge set keeps HC_1's and HC_2's bridges disjoint.
//   - Even n: TQ_n = K_2 x TQ_{n-1}, so the same stitch merges the two
//     lifted copies of each HC through the untwisted top dimension.
//   - TQ_4 and TQ_5 inherit only one HC from their sub-cube; the
//     second is found by deterministic search on the residual graph.
//
// Every result is verified by the registry's Build/Decompose callers;
// the search and stitch are deterministic, so the decomposition is
// reproducible run to run.

// searchBudget bounds the backtracking HC search. The searched graphs
// are tiny (TQ_3 residual-free, TQ_4 and TQ_5 residuals); the budget
// turns a construction bug into an error instead of a hang.
const searchBudget = 20_000_000

// TwistedCube returns the edge-disjoint Hamiltonian cycles of TQ_n:
// one cycle for n = 3, two for n >= 4.
func TwistedCube(n int) ([]Cycle, error) {
	if n < 3 || n > 22 {
		return nil, fmt.Errorf("hamilton: twisted cube dimension %d out of range [3,22]", n)
	}
	g, err := topology.TwistedCube(n)
	if err != nil {
		return nil, err
	}
	return twistedCycles(n, g)
}

func twistedCycles(n int, g *topology.Graph) ([]Cycle, error) {
	if n == 3 {
		c, err := hamiltonianCycle(g, nil)
		if err != nil {
			return nil, fmt.Errorf("hamilton: TQ3: %w", err)
		}
		return []Cycle{c}, nil
	}
	if n == 4 || n == 5 {
		// The sub-cube contributes only one HC here, and not every
		// HC_1 leaves a Hamiltonian residual (TQ_4 minus an HC is
		// 2-regular — a single cycle only for the right HC_1), so the
		// pair is found jointly: enumerate HC_1 candidates in
		// deterministic order and search each residual for HC_2.
		cycles, err := twistedBase(g)
		if err != nil {
			return nil, fmt.Errorf("hamilton: TQ%d: %w", n, err)
		}
		return cycles, nil
	}

	// Recurse on the sub-cube and lift its cycles into the copies.
	var (
		subDim int
		copies int
	)
	if n%2 == 1 {
		subDim, copies = n-2, 4 // top bit pair = four TQ_{n-2} copies
	} else {
		subDim, copies = n-1, 2 // K_2 product = two TQ_{n-1} copies
	}
	subG, err := topology.TwistedCube(subDim)
	if err != nil {
		return nil, err
	}
	sub, err := twistedCycles(subDim, subG)
	if err != nil {
		return nil, err
	}
	shift := topology.Node(1) << uint(subDim)
	lift := func(c Cycle, copyIdx int) Cycle {
		off := topology.Node(copyIdx) * shift
		out := make(Cycle, len(c))
		for i, v := range c {
			out[i] = v + off
		}
		return out
	}
	parts := make([]Cycle, copies)
	used := map[topology.Edge]bool{}

	for i := range parts {
		parts[i] = lift(sub[0], i)
	}
	hc1, err := stitch(g, parts, used)
	if err != nil {
		return nil, fmt.Errorf("hamilton: TQ%d HC1: %w", n, err)
	}
	for _, e := range hc1.Edges() {
		used[e] = true
	}

	for i := range parts {
		parts[i] = lift(sub[1], i)
	}
	hc2, err := stitch(g, parts, used)
	if err != nil {
		return nil, fmt.Errorf("hamilton: TQ%d HC2: %w", n, err)
	}
	return []Cycle{hc1, hc2}, nil
}

// twistedBase finds two edge-disjoint Hamiltonian cycles of a small
// graph by joint search: HC_1 candidates are enumerated in
// deterministic order, and the first whose residual still carries a
// Hamiltonian cycle wins. The search budget is shared across the whole
// enumeration.
func twistedBase(g *topology.Graph) ([]Cycle, error) {
	budget := searchBudget
	var out []Cycle
	searchHC(g, nil, &budget, func(c1 Cycle) bool {
		avoid := make(map[topology.Edge]bool, len(c1))
		for _, e := range c1.Edges() {
			avoid[e] = true
		}
		var hc2 Cycle
		ok := searchHC(g, avoid, &budget, func(c2 Cycle) bool {
			hc2 = append(Cycle(nil), c2...)
			return true
		})
		if !ok {
			return false
		}
		out = []Cycle{append(Cycle(nil), c1...), hc2}
		return true
	})
	if out == nil {
		return nil, fmt.Errorf("no edge-disjoint HC pair found in %s (budget %d)", g.Name(), searchBudget)
	}
	return out, nil
}

// stitch merges node-disjoint cycles that together cover all of g's
// nodes into one Hamiltonian cycle. Each merge removes one cycle edge
// from each of two cycles and adds two bridging cross edges of g;
// bridges are recorded in used so a later stitch (or residual search)
// never reuses them. Deterministic: cycles, positions, and neighbor
// lists are scanned in fixed order.
func stitch(g *topology.Graph, parts []Cycle, used map[topology.Edge]bool) (Cycle, error) {
	cycles := append([]Cycle(nil), parts...)
	for len(cycles) > 1 {
		a := cycles[0]
		merged := false
	search:
		for bi := 1; bi < len(cycles); bi++ {
			b := cycles[bi]
			pos := b.Positions()
			for i := range a {
				u, u2 := a[i], a.Next(i)
				for _, v := range g.Neighbors(u) {
					j, ok := pos[v]
					if !ok || used[topology.NewEdge(u, v)] {
						continue
					}
					for _, dir := range [2]int{1, -1} {
						v2 := b[(j+dir+len(b))%len(b)]
						if !g.HasEdge(u2, v2) || used[topology.NewEdge(u2, v2)] {
							continue
						}
						// Drop (u,u2) and (v,v2); bridge with
						// (u,v) and (u2,v2). Walk a from u2
						// around to u, then b from v around to
						// v2 (away from the dropped edge).
						joined := make(Cycle, 0, len(a)+len(b))
						for k := 1; k <= len(a); k++ {
							joined = append(joined, a[(i+k)%len(a)])
						}
						for k := 0; k < len(b); k++ {
							joined = append(joined, b[(j-k*dir+len(b)*len(b))%len(b)])
						}
						used[topology.NewEdge(u, v)] = true
						used[topology.NewEdge(u2, v2)] = true
						cycles[0] = joined
						cycles = append(cycles[:bi], cycles[bi+1:]...)
						goto next
					}
				}
			}
			continue
		next:
			merged = true
			break search
		}
		if !merged {
			return nil, fmt.Errorf("stitch: no usable bridge between %d remaining cycles", len(cycles))
		}
	}
	return cycles[0], nil
}

// hamiltonianCycle finds the first Hamiltonian cycle of g avoiding the
// given edges, in deterministic search order.
func hamiltonianCycle(g *topology.Graph, avoid map[topology.Edge]bool) (Cycle, error) {
	budget := searchBudget
	var out Cycle
	searchHC(g, avoid, &budget, func(c Cycle) bool {
		out = append(Cycle(nil), c...)
		return true
	})
	if out == nil {
		if budget < 0 {
			return nil, fmt.Errorf("hamiltonian search: budget exhausted on %s", g.Name())
		}
		return nil, fmt.Errorf("hamiltonian search: no cycle in %s avoiding %d edges", g.Name(), len(avoid))
	}
	return out, nil
}

// searchHC enumerates Hamiltonian cycles of g that avoid the given
// edges, by bounded deterministic backtracking (sorted adjacency order,
// rooted at node 0). yield receives each cycle as the live search path
// — callers must copy it to keep it — and returns true to stop the
// enumeration. searchHC reports whether yield accepted a cycle; the
// shared budget counter converts pathological inputs into a clean
// failure instead of a hang. Only called on small graphs.
func searchHC(g *topology.Graph, avoid map[topology.Edge]bool, budget *int, yield func(Cycle) bool) bool {
	n := g.N()
	if n < 3 {
		return false
	}
	path := make(Cycle, 1, n)
	path[0] = 0
	visited := make([]bool, n)
	visited[0] = true
	ok := func(u, v topology.Node) bool { return !avoid[topology.NewEdge(u, v)] }

	var dfs func() bool
	dfs = func() bool {
		if *budget--; *budget < 0 {
			return false
		}
		u := path[len(path)-1]
		if len(path) == n {
			return g.HasEdge(u, 0) && ok(u, 0) && yield(path)
		}
		for _, v := range g.Neighbors(u) {
			if visited[v] || !ok(u, v) {
				continue
			}
			visited[v] = true
			path = append(path, v)
			if dfs() {
				return true
			}
			path = path[:len(path)-1]
			visited[v] = false
		}
		return false
	}
	return dfs()
}

// KAryTorus returns the 2n directed-cycle (n undirected) Hamiltonian
// decomposition of the k-ary n-dimensional torus, covering every edge.
// Node numbering matches topology.KAryTorus, which shares TorusND's,
// so this is MultiTorus on n equal dimensions.
func KAryTorus(k, n int) ([]Cycle, error) {
	if k < 3 {
		return nil, fmt.Errorf("hamilton: k-ary torus arity %d must be >= 3", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("hamilton: k-ary torus needs >= 1 dimension, got %d", n)
	}
	dims := make([]int, n)
	for i := range dims {
		dims[i] = k
	}
	cycles, err := MultiTorus(dims...)
	if err != nil {
		return nil, fmt.Errorf("hamilton: KT%dx%d: %w", k, n, err)
	}
	return cycles, nil
}
