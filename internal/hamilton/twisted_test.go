package hamilton

import (
	"testing"

	"ihc/internal/topology"
)

// TestTwistedCubeGraph pins the structural invariants of TQ_n: node
// count 2^n, n-regularity, and the hand-checked TQ_3 adjacency from the
// standard definition (pair parity P_0(u) = bit 0).
func TestTwistedCubeGraph(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g, err := topology.TwistedCube(n)
		if err != nil {
			t.Fatalf("TwistedCube(%d): %v", n, err)
		}
		if g.N() != 1<<n {
			t.Fatalf("TQ%d: N = %d, want %d", n, g.N(), 1<<n)
		}
		if deg, ok := g.IsRegular(); !ok || deg != n {
			t.Fatalf("TQ%d: degree %d regular=%v, want %d-regular", n, deg, ok, n)
		}
	}
	g := topology.MustTwistedCube(3)
	want := map[topology.Node][]topology.Node{
		0: {1, 4, 6}, 1: {0, 3, 7}, 2: {3, 4, 6}, 3: {1, 2, 5},
		4: {0, 2, 5}, 5: {3, 4, 7}, 6: {0, 2, 7}, 7: {1, 5, 6},
	}
	for u, nbrs := range want {
		got := g.Neighbors(u)
		if len(got) != len(nbrs) {
			t.Fatalf("TQ3 node %d: neighbors %v, want %v", u, got, nbrs)
		}
		for i := range nbrs {
			if got[i] != nbrs[i] {
				t.Fatalf("TQ3 node %d: neighbors %v, want %v", u, got, nbrs)
			}
		}
	}
}

// TestTwistedCubeDecomposition verifies the constructed HC pair on
// every size the repository exercises: Hamiltonian, edge-disjoint, and
// full-cover exactly for TQ_4 (the only size where 2 HCs use all n2^n/2
// edges).
func TestTwistedCubeDecomposition(t *testing.T) {
	for n := 3; n <= 9; n++ {
		g := topology.MustTwistedCube(n)
		cycles, err := TwistedCube(n)
		if err != nil {
			t.Fatalf("TwistedCube(%d): %v", n, err)
		}
		wantCycles := 2
		if n == 3 {
			wantCycles = 1
		}
		if len(cycles) != wantCycles {
			t.Fatalf("TQ%d: %d cycles, want %d", n, len(cycles), wantCycles)
		}
		if err := VerifyDecomposition(g, cycles, n == 4); err != nil {
			t.Fatalf("TQ%d decomposition: %v", n, err)
		}
	}
	if _, err := TwistedCube(2); err == nil {
		t.Fatal("TwistedCube(2) should fail")
	}
	if _, err := TwistedCube(23); err == nil {
		t.Fatal("TwistedCube(23) should fail")
	}
}

// TestKAryTorusDecomposition checks the k-ary family against its torus
// ancestry: same node numbering as TorusND, full-cover decomposition
// with n undirected cycles.
func TestKAryTorusDecomposition(t *testing.T) {
	for _, p := range [][2]int{{3, 1}, {3, 2}, {4, 2}, {5, 2}, {3, 3}, {4, 3}} {
		k, n := p[0], p[1]
		g := topology.MustKAryTorus(k, n)
		cycles, err := KAryTorus(k, n)
		if err != nil {
			t.Fatalf("KAryTorus(%d,%d): %v", k, n, err)
		}
		if len(cycles) != n {
			t.Fatalf("KT%dx%d: %d cycles, want %d", k, n, len(cycles), n)
		}
		if err := VerifyDecomposition(g, cycles, true); err != nil {
			t.Fatalf("KT%dx%d decomposition: %v", k, n, err)
		}
		dims := make([]int, n)
		for i := range dims {
			dims[i] = k
		}
		ref := topology.MustTorusND(dims...)
		if ref.M() != g.M() || ref.N() != g.N() {
			t.Fatalf("KT%dx%d: size (%d,%d) differs from TorusND (%d,%d)", k, n, g.N(), g.M(), ref.N(), ref.M())
		}
		for _, e := range ref.Edges() {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("KT%dx%d: missing TorusND edge %v", k, n, e)
			}
		}
	}
	if _, err := KAryTorus(2, 2); err == nil {
		t.Fatal("KAryTorus(2,2) should fail")
	}
	if _, err := KAryTorus(3, 0); err == nil {
		t.Fatal("KAryTorus(3,0) should fail")
	}
}

// TestRegistryParse pins name round-trips through the registry for
// every family, plus rejection of non-family names.
func TestRegistryParse(t *testing.T) {
	good := map[string]struct {
		family string
		n      int
		gamma  int
	}{
		"Q6":     {"Q", 64, 6},
		"Q5":     {"Q", 32, 4},
		"SQ4":    {"SQ", 16, 4},
		"H3":     {"H", 19, 6},
		"T4x4":   {"T", 16, 4},
		"T3x3x3": {"T", 27, 6},
		"TQ3":    {"TQ", 8, 2},
		"TQ4":    {"TQ", 16, 4},
		"TQ5":    {"TQ", 32, 4},
		"KT4x2":  {"KT", 16, 4},
		"KT3x3":  {"KT", 27, 6},
	}
	for name, want := range good {
		in, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if in.FamilyKey != want.family || in.N != want.n || in.Gamma != want.gamma || in.Name != name {
			t.Fatalf("Parse(%q) = {%s %s N=%d γ=%d}, want {%s N=%d γ=%d}",
				name, in.FamilyKey, in.Name, in.N, in.Gamma, want.family, want.n, want.gamma)
		}
	}
	for _, name := range []string{"", "X9", "TQ", "KT4", "KT4x", "T", "Q", "SQ", "TQx", "KT4x2x2", "Z3x3"} {
		if _, err := Parse(name); err == nil {
			t.Fatalf("Parse(%q) should fail", name)
		}
	}
}

// TestRegistryDecomposeCompat keeps the pre-registry Decompose contract:
// dispatch on the graph's own name, verification against the passed
// graph, and a clear error for unknown names.
func TestRegistryDecomposeCompat(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.MustHypercube(4),
		topology.MustHypercube(5),
		topology.MustSquareTorus(4),
		topology.MustHexMesh(2),
		topology.MustTorusND(4, 4),
		topology.MustTwistedCube(4),
		topology.MustKAryTorus(3, 2),
	} {
		if _, err := Decompose(g); err != nil {
			t.Fatalf("Decompose(%s): %v", g.Name(), err)
		}
	}
	if _, err := Decompose(topology.Complete(5)); err == nil {
		t.Fatal("Decompose(K5) should fail")
	}
}
