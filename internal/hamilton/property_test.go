package hamilton

import (
	"fmt"
	"testing"

	"ihc/internal/topology"
)

// The decomposition property suite: every generator the IHC layer can
// ride on, checked against the class-Λ definition with independent
// logic (not the package's own Verify* helpers, which the constructors
// already run): each cycle visits all N nodes exactly once over edges
// of the graph, no undirected edge appears in two cycles, the cycle
// count is the family's γ/2, and where the theory promises a full
// decomposition the cycles cover every edge of the graph.
func TestDecompositionProperties(t *testing.T) {
	type tc struct {
		name   string
		graph  *topology.Graph
		cycles func() ([]Cycle, error)
		want   int  // expected cycle count γ/2
		cover  bool // cycles use every edge of the graph
	}
	var cases []tc
	// Hypercubes Q3..Q10: ⌊m/2⌋ cycles, full cover for even m (odd m
	// leaves the paper's perfect matching unused).
	for m := 3; m <= 10; m++ {
		m := m
		cases = append(cases, tc{
			name:   fmt.Sprintf("Q%d", m),
			graph:  topology.MustHypercube(m),
			cycles: func() ([]Cycle, error) { return Hypercube(m) },
			want:   m / 2,
			cover:  m%2 == 0,
		})
	}
	// Square tori SQ4..SQ8: always 2 cycles covering all 2m² edges.
	for m := 4; m <= 8; m++ {
		m := m
		cases = append(cases, tc{
			name:   fmt.Sprintf("SQ%d", m),
			graph:  topology.MustSquareTorus(m),
			cycles: func() ([]Cycle, error) { return SquareTorus(m) },
			want:   2,
			cover:  true,
		})
	}
	// k-ary d-dim tori: d cycles covering all d·N edges.
	for _, dims := range [][]int{{3, 3}, {4, 4}, {3, 3, 3}, {4, 4, 4}} {
		dims := dims
		cases = append(cases, tc{
			name:   topology.MustTorusND(dims...).Name(),
			graph:  topology.MustTorusND(dims...),
			cycles: func() ([]Cycle, error) { return MultiTorus(dims...) },
			want:   len(dims),
			cover:  true,
		})
	}
	// C-wrapped hexagonal meshes H2..H4: 3 cycles (one per axis)
	// covering all 3N edges.
	for m := 2; m <= 4; m++ {
		m := m
		cases = append(cases, tc{
			name:   fmt.Sprintf("H%d", m),
			graph:  topology.MustHexMesh(m),
			cycles: func() ([]Cycle, error) { return HexMesh(m) },
			want:   3,
			cover:  true,
		})
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			g := c.graph
			cycles, err := c.cycles()
			if err != nil {
				t.Fatal(err)
			}
			if len(cycles) != c.want {
				t.Fatalf("%d cycles, want γ/2 = %d", len(cycles), c.want)
			}

			n := g.N()
			edgeUser := make(map[topology.Edge]int) // edge -> cycle index that used it
			for ci, cyc := range cycles {
				if len(cyc) != n {
					t.Fatalf("cycle %d has %d nodes, graph has %d", ci, len(cyc), n)
				}
				visits := make([]int, n)
				for i, v := range cyc {
					if v < 0 || int(v) >= n {
						t.Fatalf("cycle %d: node %d out of range", ci, v)
					}
					visits[v]++
					w := cyc[(i+1)%n]
					if !g.HasEdge(v, w) {
						t.Fatalf("cycle %d: consecutive pair {%d,%d} is not an edge", ci, v, w)
					}
					e := topology.NewEdge(v, w)
					if prev, used := edgeUser[e]; used {
						t.Fatalf("edge {%d,%d} in both cycle %d and cycle %d", e.U, e.V, prev, ci)
					}
					edgeUser[e] = ci
				}
				for v, k := range visits {
					if k != 1 {
						t.Fatalf("cycle %d visits node %d %d times", ci, v, k)
					}
				}
			}

			if c.cover && len(edgeUser) != g.M() {
				t.Fatalf("cycles cover %d edges, graph has %d — decomposition not full", len(edgeUser), g.M())
			}
			if !c.cover {
				// Odd hypercubes: the leftover must be a perfect matching —
				// every node incident to exactly one unused edge.
				left := make([]int, n)
				for _, e := range g.Edges() {
					if _, used := edgeUser[e]; !used {
						left[e.U]++
						left[e.V]++
					}
				}
				for v, k := range left {
					if k != 1 {
						t.Fatalf("node %d has %d unused incident edges, leftover is not a perfect matching", v, k)
					}
				}
			}

			// The directed doubling: γ arcs cycles, each node leaving on
			// γ distinct arcs (the IHC channel structure).
			directed := DirectedCycles(cycles)
			if len(directed) != 2*len(cycles) {
				t.Fatalf("%d directed cycles from %d undirected", len(directed), len(cycles))
			}
			outArcs := make(map[topology.Arc]int)
			for di, dc := range directed {
				for i, v := range dc {
					a := topology.Arc{From: v, To: dc[(i+1)%n]}
					if prev, used := outArcs[a]; used {
						t.Fatalf("arc %d→%d in both directed cycles %d and %d", a.From, a.To, prev, di)
					}
					outArcs[a] = di
				}
			}
			if len(outArcs) != 2*len(edgeUser) {
				t.Fatalf("%d directed arcs from %d undirected edges", len(outArcs), len(edgeUser))
			}
		})
	}
}
