package chaos

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ihc/internal/topology"
	"ihc/internal/transport"
)

// Proxy is a frame-aware fault proxy for one directed link of a live
// TCP cluster. The sender dials the proxy instead of the receiver; the
// proxy reads whole length-prefixed frames off the inbound connection,
// asks the Plan for a verdict per frame, and forwards the survivors —
// possibly corrupted, duplicated, or delayed — over its own connection
// to the real receiver.
//
// A partition window is enforced at the socket level, not just the
// frame level: frames in flight are dropped, live connections through
// the proxy are severed, and new connections are refused for the
// window's duration — so the sender's reconnect/backoff/breaker path
// is exercised exactly as a yanked cable would.
type Proxy struct {
	plan   *Plan
	from   topology.Node
	to     topology.Node
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// counters, for the harness's curiosity
	Forwarded  atomic.Int64
	Dropped    atomic.Int64
	Corrupted  atomic.Int64
	Duplicated atomic.Int64
	Severed    atomic.Int64
}

// NewProxy starts a proxy for the directed link from→to, forwarding to
// target (the receiver's real listener). It listens on an ephemeral
// localhost port; read it back with Addr.
func NewProxy(plan *Plan, from, to topology.Node, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy %d->%d listen: %w", from, to, err)
	}
	p := &Proxy{plan: plan, from: from, to: to, target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address — what the sender's peer
// table should point at.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the proxy and severs everything through it.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

func (p *Proxy) now() time.Duration { return time.Since(p.plan.Epoch()) }

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.plan.Partitioned(p.from, p.to, p.now()) {
			// Refuse service during the outage window: accept (the
			// listener queue is not ours to pause) but hang up
			// immediately, so the dialer sees a dead link.
			c.Close()
			p.Severed.Add(1)
			continue
		}
		if !p.track(c) {
			c.Close()
			return
		}
		p.wg.Add(1)
		go p.pipe(c)
	}
}

// pipe relays one sender connection frame by frame.
func (p *Proxy) pipe(in net.Conn) {
	defer p.wg.Done()
	defer p.untrack(in)
	out, err := net.DialTimeout("tcp", p.target, time.Second)
	if err != nil {
		return
	}
	if !p.track(out) {
		out.Close()
		return
	}
	defer p.untrack(out)
	for {
		body, err := transport.ReadFrame(in)
		if err != nil {
			return
		}
		now := p.now()
		if p.plan.Partitioned(p.from, p.to, now) {
			// Entering an outage mid-connection: sever both sides so
			// the sender's breaker and reconnect logic engage.
			p.Severed.Add(1)
			return
		}
		act := p.plan.Filter(p.from, p.to, now)
		if act.Drop {
			p.Dropped.Add(1)
			continue
		}
		if act.Corrupt && len(body) > 0 {
			body[len(body)/2] ^= 0xFF
			p.Corrupted.Add(1)
		}
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		writes := 1
		if act.Duplicate {
			writes = 2
			p.Duplicated.Add(1)
		}
		for i := 0; i < writes; i++ {
			if err := transport.WriteFrame(out, body); err != nil {
				return
			}
		}
		p.Forwarded.Add(1)
	}
}

// ProxyMesh is the full set of per-directed-link proxies for one
// cluster: every arc of the graph gets its own Proxy, and Addrs
// renders, per node, the peer table pointing each neighbor through the
// right proxy.
type ProxyMesh struct {
	plan    *Plan
	proxies map[[2]topology.Node]*Proxy
}

// NewProxyMesh builds a proxy per directed arc of plan's graph.
// realAddrs maps each node to its actual listener address.
func NewProxyMesh(plan *Plan, realAddrs map[topology.Node]string) (*ProxyMesh, error) {
	pm := &ProxyMesh{plan: plan, proxies: make(map[[2]topology.Node]*Proxy)}
	for _, a := range plan.cfg.Graph.Arcs() {
		target, ok := realAddrs[a.To]
		if !ok {
			pm.Close()
			return nil, fmt.Errorf("chaos: no real address for node %d", a.To)
		}
		px, err := NewProxy(plan, a.From, a.To, target)
		if err != nil {
			pm.Close()
			return nil, err
		}
		pm.proxies[[2]topology.Node{a.From, a.To}] = px
	}
	return pm, nil
}

// Addrs returns node v's peer table: neighbor → the v→neighbor proxy.
func (pm *ProxyMesh) Addrs(v topology.Node) map[topology.Node]string {
	out := make(map[topology.Node]string)
	for key, px := range pm.proxies {
		if key[0] == v {
			out[key[1]] = px.Addr()
		}
	}
	return out
}

// Proxy returns the proxy for one directed arc (nil if absent).
func (pm *ProxyMesh) Proxy(from, to topology.Node) *Proxy {
	return pm.proxies[[2]topology.Node{from, to}]
}

// Close stops every proxy.
func (pm *ProxyMesh) Close() error {
	for _, px := range pm.proxies {
		px.Close()
	}
	return nil
}
