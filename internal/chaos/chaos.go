// Package chaos attacks the real transport the way internal/fault
// attacks the simulator: a seeded plan of link misbehaviour — drop,
// delay, duplicate, corrupt, partition — applied to every frame
// crossing every directed link, either as a frame filter on the
// in-process loopback mesh or as a real socket-level TCP proxy
// interposed per link of a live cluster (proxy.go).
//
// The plan compiles from the same fault.TemporalPlan grammar the
// simulation campaigns use: link windows in simulated ticks map to wall
//-clock offsets at a configurable tick duration, so a placement the
// campaign found interesting can be replayed against real sockets
// unchanged. On top of the windows, seeded per-frame background rates
// (splitmix64 of link × frame-index, same mixer the engine uses for
// background traffic) exercise the retry machinery continuously.
//
// Every chaos outcome is drop-equivalent to the protocol: corrupted
// frames fail their HMAC and are discarded, duplicates are deduped
// before the ledger, delays are bounded — so the γ-copy postcondition
// must survive all of them, which is exactly what the harness asserts.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"ihc/internal/fault"
	"ihc/internal/topology"
	"ihc/internal/transport"
)

// Config shapes a chaos plan.
type Config struct {
	Graph *topology.Graph
	// Plan supplies link-fault windows on the simulated-tick axis:
	// Corrupt windows corrupt frames in flight, non-Corrupt windows
	// partition the link (drop everything, sever connections). Node
	// crash entries are not interpreted here — the harness or
	// launcher kills the process/goroutine itself.
	Plan *fault.TemporalPlan
	// TickDur maps the plan's tick axis to wall time. Default 1ms.
	TickDur time.Duration
	// Seed drives the per-frame background coins.
	Seed int64
	// Background per-frame misbehaviour rates in [0,1], applied to
	// every link all the time (independent of Plan windows).
	DropRate    float64
	DupRate     float64
	CorruptRate float64
	DelayRate   float64
	// MaxDelay bounds a delayed frame's extra latency. Default 5ms.
	MaxDelay time.Duration
	// Epoch anchors the wall-clock side of the tick mapping; defaults
	// to plan creation time. The harness sets it to the cluster's
	// agreed start.
	Epoch time.Time
}

type linkWindow struct {
	from, until time.Duration // wall offsets from Epoch
	corrupt     bool
}

// Plan is a compiled chaos plan. It implements transport.LinkFilter for
// the loopback mesh; proxies consult the same verdicts for TCP. Safe
// for concurrent use.
type Plan struct {
	cfg     Config
	windows map[[2]topology.Node][]linkWindow

	mu       sync.Mutex
	frameSeq map[[2]topology.Node]uint64
}

// splitmix64 is the same full-avalanche mixer the engine seeds
// background traffic with.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewPlan validates and compiles cfg.
func NewPlan(cfg Config) (*Plan, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("chaos: plan requires a graph")
	}
	for _, r := range []float64{cfg.DropRate, cfg.DupRate, cfg.CorruptRate, cfg.DelayRate} {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("chaos: rate %v outside [0,1]", r)
		}
	}
	if cfg.TickDur <= 0 {
		cfg.TickDur = time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Now()
	}
	p := &Plan{
		cfg:      cfg,
		windows:  make(map[[2]topology.Node][]linkWindow),
		frameSeq: make(map[[2]topology.Node]uint64),
	}
	if cfg.Plan != nil {
		if err := cfg.Plan.Validate(cfg.Graph); err != nil {
			return nil, err
		}
		for _, lf := range cfg.Plan.Links {
			w := linkWindow{
				from:    time.Duration(lf.From) * cfg.TickDur,
				until:   time.Duration(lf.Until) * cfg.TickDur,
				corrupt: lf.Corrupt,
			}
			if lf.Until == fault.Forever {
				w.until = time.Duration(1<<62 - 1)
			}
			// Link faults are undirected: both arcs misbehave.
			p.windows[[2]topology.Node{lf.U, lf.V}] = append(p.windows[[2]topology.Node{lf.U, lf.V}], w)
			p.windows[[2]topology.Node{lf.V, lf.U}] = append(p.windows[[2]topology.Node{lf.V, lf.U}], w)
		}
	}
	return p, nil
}

// Epoch returns the wall-clock anchor of the plan's tick axis.
func (p *Plan) Epoch() time.Time { return p.cfg.Epoch }

// Partitioned reports whether the directed link from→to is inside a
// (non-corrupt) outage window at wall offset now.
func (p *Plan) Partitioned(from, to topology.Node, now time.Duration) bool {
	for _, w := range p.windows[[2]topology.Node{from, to}] {
		if !w.corrupt && now >= w.from && now < w.until {
			return true
		}
	}
	return false
}

// corruptWindow reports whether the link is inside a corruption window.
func (p *Plan) corruptWindow(from, to topology.Node, now time.Duration) bool {
	for _, w := range p.windows[[2]topology.Node{from, to}] {
		if w.corrupt && now >= w.from && now < w.until {
			return true
		}
	}
	return false
}

// coin returns the k-th seeded uniform in [0,1) for this link's next
// frame index.
func (p *Plan) coins(from, to topology.Node) (drop, dup, corrupt, delay float64) {
	key := [2]topology.Node{from, to}
	p.mu.Lock()
	seq := p.frameSeq[key]
	p.frameSeq[key] = seq + 1
	p.mu.Unlock()
	base := splitmix64(uint64(p.cfg.Seed)) ^ splitmix64(uint64(from)<<32|uint64(uint32(to)))
	u := func(k uint64) float64 {
		return float64(splitmix64(base^(seq<<3|k))>>11) / float64(1<<53)
	}
	return u(0), u(1), u(2), u(3)
}

// Filter renders the chaos verdict for one frame on one directed link —
// the transport.LinkFilter implementation the loopback mesh calls, and
// the proxy's per-frame decision procedure.
func (p *Plan) Filter(from, to topology.Node, now time.Duration) transport.FilterAction {
	var act transport.FilterAction
	if p.Partitioned(from, to, now) {
		act.Drop = true
		return act
	}
	if p.corruptWindow(from, to, now) {
		act.Corrupt = true
	}
	cDrop, cDup, cCorrupt, cDelay := p.coins(from, to)
	if cDrop < p.cfg.DropRate {
		act.Drop = true
		return act
	}
	if cDup < p.cfg.DupRate {
		act.Duplicate = true
	}
	if cCorrupt < p.cfg.CorruptRate {
		act.Corrupt = true
	}
	if cDelay < p.cfg.DelayRate {
		act.Delay = time.Duration(float64(p.cfg.MaxDelay) * cDelay / p.cfg.DelayRate)
	}
	return act
}

// Crashes lists the plan's node-crash events as (node, wall offset)
// pairs for the harness or launcher to execute.
func (p *Plan) Crashes() map[topology.Node]time.Duration {
	out := make(map[topology.Node]time.Duration)
	if p.cfg.Plan == nil {
		return out
	}
	for _, nf := range p.cfg.Plan.Nodes {
		if nf.Kind == fault.Crash {
			out[nf.Node] = time.Duration(nf.At) * p.cfg.TickDur
		}
	}
	return out
}
