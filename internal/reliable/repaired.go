package reliable

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/repair"
	"ihc/internal/topology"
)

// RepairedOutcome is the grade of a repair-enabled run plus the repair
// layer's activity counters and the latency cost of recovery.
type RepairedOutcome struct {
	Outcome
	Stats repair.Stats

	// Finish is the repaired run's completion time; Baseline is the
	// fault-free, repair-off completion time of the same configuration.
	// OverheadPct = 100·(Finish−Baseline)/Baseline.
	Finish      int64
	Baseline    int64
	OverheadPct float64
}

// EvaluateRepaired runs the IHC all-to-all broadcast through the simnet
// engine with the self-healing repair layer attached, under a temporal
// fault plan, and grades the delivered copies like EvaluateTimed. NAK
// packets (negative Seq) are control traffic and are excluded from the
// grade; retransmitted copies count as genuine copies of the original.
//
// cfg selects the execution exactly as in EvaluateTimed; rcfg tunes the
// repair layer (the zero value picks the package defaults). The
// fault-free baseline run used for the overhead figure shares cfg but
// has no faults and no repair layer.
func EvaluateRepaired(x *core.IHC, tplan *fault.TemporalPlan, signed bool, kr *Keyring, cfg core.Config, rcfg repair.Config) (RepairedOutcome, error) {
	inj, err := tplan.Compile(x.Graph())
	if err != nil {
		return RepairedOutcome{}, err
	}
	cfg.Params = cfg.Params.Defaulted()
	if cfg.Eta == 0 {
		cfg.Eta = cfg.Params.Mu
	}
	cfg.RecordDeliveries = true
	cfg.SkipCopies = true

	base := cfg
	base.Fault = nil
	base.RecordDeliveries = false
	baseRes, err := x.Run(base)
	if err != nil {
		return RepairedOutcome{}, fmt.Errorf("reliable: repaired baseline run: %w", err)
	}

	cfg.Fault = inj
	res, st, err := repair.Run(x, cfg, rcfg)
	if err != nil {
		return RepairedOutcome{}, fmt.Errorf("reliable: repaired evaluation run: %w", err)
	}

	n := x.N()
	kind := make([]fault.Kind, n)
	if tplan != nil {
		for _, nf := range tplan.Nodes {
			kind[nf.Node] = nf.Kind
		}
	}
	copies := make([][][]Copy, n)
	for r := range copies {
		copies[r] = make([][]Copy, n)
	}
	for _, d := range res.Deliveriesv {
		if d.ID.Seq < 0 {
			continue // NAK control traffic, not a payload copy
		}
		src, recv := d.ID.Source, d.Node
		payload := TruthPayload(src)
		if kind[src] == fault.Byzantine && d.ID.Channel%2 == 1 {
			payload = TwoFacedPayload(src)
		}
		cp := Copy{Payload: payload, Valid: true}
		if d.Corrupted {
			cp = Copy{Payload: CorruptPayload(payload), Valid: false}
		}
		if signed && kr != nil && cp.Valid {
			msg, serr := kr.Sign(Message{Source: src, Payload: cp.Payload})
			if serr == nil {
				cp.Valid, serr = kr.Verify(msg)
			}
			if serr != nil {
				return RepairedOutcome{}, fmt.Errorf("reliable: repaired evaluation: %w", serr)
			}
		}
		copies[recv][src] = append(copies[recv][src], cp)
	}
	out := RepairedOutcome{
		Outcome: gradeCopies(n, copies, signed, func(v topology.Node) bool {
			return kind[v] != fault.Healthy
		}),
		Stats:    st,
		Finish:   int64(res.Finish),
		Baseline: int64(baseRes.Finish),
	}
	if out.Baseline > 0 {
		out.OverheadPct = 100 * float64(out.Finish-out.Baseline) / float64(out.Baseline)
	}
	return out, nil
}
