package reliable

import (
	"math/rand"
	"testing"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// TestTimedMatchesCombinatorial is the bridge theorem of the timed
// grader: for every static plan, running the schedule through the event
// engine with the compiled injector grades identically to TraceRoute
// fate propagation — same pairs, same correct/wrong/missing counts.
func TestTimedMatchesCombinatorial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, g := range []*topology.Graph{topology.MustSquareTorus(4), topology.MustHexMesh(3)} {
		x := mustIHC(t, g)
		kr := NewKeyring(g.N(), 2)
		edges := g.Edges()
		for trial := 0; trial < 8; trial++ {
			p := fault.NewPlan(rng.Int63())
			for i := 0; i < rng.Intn(4); i++ {
				p.Nodes[topology.Node(rng.Intn(g.N()))] = fault.Kind(1 + rng.Intn(3))
			}
			for i := 0; i < rng.Intn(3); i++ {
				p.Links[edges[rng.Intn(len(edges))]] = true
			}
			for i := 0; i < rng.Intn(3); i++ {
				p.Noisy[edges[rng.Intn(len(edges))]] = true
			}
			for _, signed := range []bool{false, true} {
				want := mustEval(t, x, p, signed, kr)
				got, err := EvaluateTimed(x, fault.FromStatic(p), signed, kr, core.Config{})
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s trial %d signed=%v: timed %+v != combinatorial %+v\nplan: %+v",
						g.Name(), trial, signed, got, want, p)
				}
			}
		}
	}
}

// TestTimedFaultFree sanity-checks the fault-free timed path on a
// non-trivial config (overlapped stages).
func TestTimedFaultFree(t *testing.T) {
	g := topology.MustHypercube(4)
	x := mustIHC(t, g)
	out, err := EvaluateTimed(x, &fault.TemporalPlan{}, false, nil, core.Config{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if out.Pairs != n*(n-1) || out.Correct != out.Pairs {
		t.Fatalf("fault-free timed run: %+v", out)
	}
}

// TestTimedTemporalWindow exercises what only the timed grader can see:
// links that are down for a window and then recover affect only the
// packets in flight during the window. The placement isolates node 5 —
// all γ incident links broken — which when permanent makes every pair
// involving node 5 undeliverable; a window covering only stage 0 loses
// exactly the copies whose packets flew then (node 0, with ID_j(0) = 0 on
// every cycle, injects all its packets in stage 0, so the pair 0→5 is
// still lost; stage-1 packets get through), and a window past the run's
// finish is harmless.
func TestTimedTemporalWindow(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	const victim = topology.Node(5)

	static := fault.NewPlan(0)
	var lfs []fault.LinkFault
	for _, v := range g.Neighbors(victim) {
		e := topology.NewEdge(victim, v)
		static.Links[e] = true
		lfs = append(lfs, fault.LinkFault{U: e.U, V: e.V})
	}
	wantBroken := mustEval(t, x, static, false, nil)
	// Isolated receiver + isolated sender: 2(N-1) missing pairs.
	if want := 2 * (g.N() - 1); wantBroken.Missing != want {
		t.Fatalf("isolating node %d: %+v, want %d missing", victim, wantBroken, want)
	}

	run := func(from, until simnet.Time) Outcome {
		t.Helper()
		tp := &fault.TemporalPlan{}
		for _, lf := range lfs {
			lf.From, lf.Until = from, until
			tp.Links = append(tp.Links, lf)
		}
		out, err := EvaluateTimed(x, tp, false, nil, core.Config{Eta: 2})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	if out := run(0, fault.Forever); out != wantBroken {
		t.Fatalf("always-broken temporal links %+v != static grade %+v", out, wantBroken)
	}
	res, err := x.Run(core.Config{Eta: 2, Params: simnet.Params{}.Defaulted(), SkipCopies: true})
	if err != nil {
		t.Fatal(err)
	}
	if out := run(res.Finish+1, fault.Forever); out.Missing != 0 || out.Correct != out.Pairs {
		t.Fatalf("window after the run still lost copies: %+v", out)
	}
	stage0 := run(0, res.StageFinish[0])
	if stage0.Missing == 0 {
		t.Fatalf("stage-0 window lost nothing: %+v", stage0)
	}
	if stage0.Missing >= wantBroken.Missing {
		t.Fatalf("stage-0 window lost %d pairs, permanent break lost %d — recovery had no effect",
			stage0.Missing, wantBroken.Missing)
	}
}

// TestTimedCrashMidRun: nodes that crash after stage 0 finishes let every
// stage-0 packet through untouched. Node 0 (ID_j(0) = 0 on every cycle)
// injects all its packets in stage 0, so a two-node crash placement that
// statically blocks some pair sourced at node 0 loses that pair
// crash-from-birth but saves it when the crash activates after stage 0 —
// the grade of the late crash is strictly better.
func TestTimedCrashMidRun(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	n := g.N()

	// Find two crash nodes that structurally cut all γ routes from source
	// 0 to some receiver (single crashes are always tolerated: each one
	// blocks only γ/2 of a pair's routes).
	var plan *fault.Plan
	for a := 1; a < n && plan == nil; a++ {
		for b := a + 1; b < n && plan == nil; b++ {
			cand := fault.NewPlan(0)
			cand.Nodes[topology.Node(a)] = fault.Crash
			cand.Nodes[topology.Node(b)] = fault.Crash
			for r := 1; r < n; r++ {
				if r == a || r == b {
					continue
				}
				if BlockablePair(x, cand, 0, topology.Node(r)) {
					plan = cand
					break
				}
			}
		}
	}
	if plan == nil {
		t.Fatal("no two-node crash placement blocks a source-0 pair on SQ4")
	}
	full := mustEval(t, x, plan, false, nil)
	if full.Missing == 0 {
		t.Fatalf("blocking placement lost nothing: %+v", full)
	}

	res, err := x.Run(core.Config{Eta: 2, Params: simnet.Params{}.Defaulted(), SkipCopies: true})
	if err != nil {
		t.Fatal(err)
	}
	tp := &fault.TemporalPlan{}
	for v := range plan.Nodes {
		tp.Nodes = append(tp.Nodes, fault.NodeFault{Node: v, Kind: fault.Crash, At: res.StageFinish[0] + 1})
	}
	late, err := EvaluateTimed(x, tp, false, nil, core.Config{Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if late.Pairs != full.Pairs {
		t.Fatalf("graded pair sets differ: %d vs %d", late.Pairs, full.Pairs)
	}
	if late.Correct <= full.Correct || late.Missing >= full.Missing {
		t.Fatalf("late crash %+v not strictly better than crash-from-birth %+v", late, full)
	}
}
