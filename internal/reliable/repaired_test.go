package reliable

import (
	"testing"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/repair"
	"ihc/internal/topology"
)

// TestRepairedFaultFree: no faults, repair on — the grade is perfect,
// the repair layer is silent, and the overhead is exactly zero (the
// fault-free repair-on run is byte-identical to the baseline).
func TestRepairedFaultFree(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	out, err := EvaluateRepaired(x, &fault.TemporalPlan{}, false, nil, core.Config{Eta: 2}, repair.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if out.Pairs != n*(n-1) || out.Correct != out.Pairs {
		t.Fatalf("fault-free repaired run: %+v", out.Outcome)
	}
	if out.Stats.Timeouts != 0 || out.Stats.Naks != 0 || out.Stats.Retransmissions != 0 {
		t.Fatalf("repair activity without faults: %+v", out.Stats)
	}
	if out.OverheadPct != 0 {
		t.Fatalf("fault-free overhead %.2f%%, want 0", out.OverheadPct)
	}
}

// TestRepairedRecoversBrokenLink: a permanently dead link loses pairs
// under EvaluateTimed but EvaluateRepaired restores a perfect grade,
// and the recovery's latency cost is visible in OverheadPct.
func TestRepairedRecoversBrokenLink(t *testing.T) {
	g := topology.MustHypercube(4)
	x := mustIHC(t, g)
	e := g.Edges()[0]
	tp := &fault.TemporalPlan{
		Links: []fault.LinkFault{{U: e.U, V: e.V, Until: fault.Forever}},
	}
	out, err := EvaluateRepaired(x, tp, false, nil, core.Config{}, repair.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Correct != out.Pairs || out.Missing != 0 || out.Wrong != 0 {
		t.Fatalf("repaired run did not recover: %+v", out.Outcome)
	}
	if out.Stats.Retransmissions == 0 || out.Stats.DeadLinks != 1 {
		t.Fatalf("unexpected repair activity: %+v", out.Stats)
	}
	if out.OverheadPct <= 0 {
		t.Fatalf("recovery claims non-positive overhead %.2f%%", out.OverheadPct)
	}
}

// TestRepairedRejectsBadPlan: plan errors surface as errors.
func TestRepairedRejectsBadPlan(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	tp := &fault.TemporalPlan{Nodes: []fault.NodeFault{{Node: 999, Kind: fault.Crash}}}
	if _, err := EvaluateRepaired(x, tp, false, nil, core.Config{}, repair.Config{}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
