package reliable

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/topology"
)

// EvaluateTimed runs the IHC all-to-all broadcast through the simnet
// event engine under a temporal fault plan and grades the delivered
// copies exactly like EvaluateIHC. Where the combinatorial evaluator
// propagates fates along routes in the abstract, this one compiles the
// plan into an engine hook, so the faults act at simulated timestamps: a
// node can crash between stages, a link can be down for a window and
// recover, and the grade reflects which copies were actually in flight
// when.
//
// cfg selects the execution (η, timing parameters, overlap, scratch);
// the zero Config picks the repository defaults with η = μ. cfg.Fault,
// cfg.RecordDeliveries, and cfg.SkipCopies are overridden — the grader
// owns them.
//
// Faulty-node grading matches EvaluateIHC: every node the plan names is
// excluded from the graded pairs regardless of its activation time, and
// a Byzantine node is two-faced as a source (TwoFacedPayload on odd
// cycles) from time zero even if its *relay* misbehaviour activates
// later — the payload choice happens at injection, which the engine does
// not model per-payload.
//
// For a statically-lifted plan the two evaluators agree exactly:
// EvaluateTimed(x, fault.FromStatic(p), ...) == EvaluateIHC(x, p, ...).
func EvaluateTimed(x *core.IHC, tplan *fault.TemporalPlan, signed bool, kr *Keyring, cfg core.Config) (Outcome, error) {
	inj, err := tplan.Compile(x.Graph())
	if err != nil {
		return Outcome{}, err
	}
	cfg.Params = cfg.Params.Defaulted()
	if cfg.Eta == 0 {
		cfg.Eta = cfg.Params.Mu
	}
	cfg.Fault = inj
	cfg.RecordDeliveries = true
	cfg.SkipCopies = true
	res, err := x.Run(cfg)
	if err != nil {
		return Outcome{}, fmt.Errorf("reliable: timed evaluation run: %w", err)
	}

	n := x.N()
	kind := make([]fault.Kind, n)
	if tplan != nil {
		for _, nf := range tplan.Nodes {
			kind[nf.Node] = nf.Kind
		}
	}
	copies := make([][][]Copy, n)
	for r := range copies {
		copies[r] = make([][]Copy, n)
	}
	for _, d := range res.Deliveriesv {
		src, recv := d.ID.Source, d.Node
		payload := TruthPayload(src)
		if kind[src] == fault.Byzantine && d.ID.Channel%2 == 1 {
			payload = TwoFacedPayload(src)
		}
		cp := Copy{Payload: payload, Valid: true}
		if d.Corrupted {
			cp = Copy{Payload: CorruptPayload(payload), Valid: false}
		}
		if signed && kr != nil && cp.Valid {
			msg, serr := kr.Sign(Message{Source: src, Payload: cp.Payload})
			if serr == nil {
				cp.Valid, serr = kr.Verify(msg)
			}
			if serr != nil {
				return Outcome{}, fmt.Errorf("reliable: timed evaluation: %w", serr)
			}
		}
		copies[recv][src] = append(copies[recv][src], cp)
	}
	return gradeCopies(n, copies, signed, func(v topology.Node) bool {
		return kind[v] != fault.Healthy
	}), nil
}
