// Package reliable implements the *reliable* layer of ATA reliable
// broadcast: message authentication, voting over the γ redundant copies
// each node receives, the Dolev fault-tolerance bounds the paper cites,
// and an end-to-end evaluator that runs the IHC schedule under a fault
// plan and grades the outcome.
//
// Signed messages follow Rivest et al. in spirit: any disruption of a
// signed message's contents is detected on receipt, raising the
// tolerable number of faulty nodes from min{⌈γ/2⌉-1, ⌈N/3⌉-1} to γ-1.
// The paper's RSA signatures are replaced by SHA-256 HMACs with per-node
// keys (a trusted keyring stands in for the PKI); what matters to the
// algorithm — tampering is detected, signatures are unforgeable by other
// nodes — is preserved.
package reliable

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"ihc/internal/topology"
)

// Message is one node's broadcast payload with optional authentication.
type Message struct {
	Source  topology.Node
	Payload []byte
	MAC     []byte // nil for unsigned operation
}

// Keyring holds every node's signing key. In a deployment each node
// would hold only its own key plus the ability to verify the others';
// for simulation one keyring plays both roles.
type Keyring struct {
	keys [][]byte
}

// NewKeyring derives n per-node keys from a master seed.
func NewKeyring(n int, seed int64) *Keyring {
	kr := &Keyring{keys: make([][]byte, n)}
	for i := range kr.keys {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
		binary.LittleEndian.PutUint64(buf[8:], uint64(i))
		sum := sha256.Sum256(buf[:])
		kr.keys[i] = sum[:]
	}
	return kr
}

// N returns the number of nodes the keyring holds keys for.
func (kr *Keyring) N() int { return len(kr.keys) }

// checkSource rejects source ids the keyring has no key for. A malformed
// message used to panic with a bare index error deep inside HMAC setup;
// it now surfaces as a diagnosable error, which matters once messages can
// arrive from a simulated Byzantine sender claiming an arbitrary source.
func (kr *Keyring) checkSource(msg Message) error {
	if msg.Source < 0 || int(msg.Source) >= len(kr.keys) {
		return fmt.Errorf("reliable: message claims source %d, keyring holds keys for nodes [0,%d)", msg.Source, len(kr.keys))
	}
	return nil
}

// Sign returns msg with its MAC filled in under the source's key, or an
// error when the keyring has no key for the claimed source.
func (kr *Keyring) Sign(msg Message) (Message, error) {
	if err := kr.checkSource(msg); err != nil {
		return Message{}, err
	}
	mac := hmac.New(sha256.New, kr.keys[msg.Source])
	mac.Write(msg.Payload)
	msg.MAC = mac.Sum(nil)
	return msg, nil
}

// Verify reports whether msg's MAC is valid under its claimed source's
// key. A source outside the keyring is an error, not merely an invalid
// signature: the caller sent a structurally malformed message.
func (kr *Keyring) Verify(msg Message) (bool, error) {
	if err := kr.checkSource(msg); err != nil {
		return false, err
	}
	if msg.MAC == nil {
		return false, nil
	}
	mac := hmac.New(sha256.New, kr.keys[msg.Source])
	mac.Write(msg.Payload)
	return hmac.Equal(mac.Sum(nil), msg.MAC), nil
}

// DolevBound returns the maximum number of Byzantine nodes tolerable for
// correct message delivery in a γ-connected N-node network without
// message authentication: t <= min{⌈γ/2⌉-1, ⌈N/3⌉-1} (Dolev).
func DolevBound(gamma, n int) int {
	a := (gamma+1)/2 - 1
	b := (n+2)/3 - 1
	if a < b {
		return a
	}
	return b
}

// SignedBound returns the maximum number of Byzantine nodes tolerable
// with authenticated (signed) messages: t <= γ-1 (Rivest et al.).
func SignedBound(gamma int) int { return gamma - 1 }

// Copy is one received copy of a message, as graded by the fault
// injector.
type Copy struct {
	Payload []byte
	Valid   bool // MAC verified (signed mode); meaningless unsigned
}

// VoteUnsigned returns the plurality payload among the copies, or ok =
// false when no strict plurality exists (counting equal payloads; at
// least one copy required). This is the voter a system without message
// authentication must use.
func VoteUnsigned(copies []Copy) ([]byte, bool) {
	counts := map[string]int{}
	for _, c := range copies {
		counts[string(c.Payload)]++
	}
	best, bestN, secondN := "", 0, 0
	for pay, n := range counts {
		switch {
		case n > bestN:
			best, secondN, bestN = pay, bestN, n
		case n > secondN:
			secondN = n
		}
	}
	if bestN == 0 || bestN == secondN {
		return nil, false
	}
	return []byte(best), true
}

// VoteSigned discards copies whose MAC failed and returns the surviving
// payload; ok is false when no valid copy arrived or valid copies
// disagree (a two-faced signed source).
func VoteSigned(copies []Copy) ([]byte, bool) {
	var payload []byte
	seen := false
	for _, c := range copies {
		if !c.Valid {
			continue
		}
		if !seen {
			payload, seen = c.Payload, true
			continue
		}
		if string(payload) != string(c.Payload) {
			return nil, false
		}
	}
	if !seen {
		return nil, false
	}
	return payload, true
}

// TruthPayload is the canonical payload node v broadcasts in the
// evaluation harness (a deterministic function of the node id).
func TruthPayload(v topology.Node) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v)*0x9e3779b97f4a7c15+0xabcd)
	return buf[:]
}

// CorruptPayload is what a corrupting relay turns a payload into; it is a
// deterministic function of the original so experiments are repeatable.
func CorruptPayload(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	if len(out) > 0 {
		out[0] ^= 0xff
	}
	return out
}

// TwoFacedPayload is the alternative payload a Byzantine source sends on
// odd channels.
func TwoFacedPayload(v topology.Node) []byte {
	p := TruthPayload(v)
	p[len(p)-1] ^= 0xaa
	return p
}

func (m Message) String() string {
	return fmt.Sprintf("msg(src=%d, %d bytes, signed=%v)", m.Source, len(m.Payload), m.MAC != nil)
}
