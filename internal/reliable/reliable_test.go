package reliable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/hamilton"
	"ihc/internal/topology"
)

func mustIHC(t *testing.T, g *topology.Graph) *core.IHC {
	t.Helper()
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// mustEval grades a plan that the test knows to be valid.
func mustEval(t *testing.T, x *core.IHC, plan *fault.Plan, signed bool, kr *Keyring) Outcome {
	t.Helper()
	out, err := EvaluateIHC(x, plan, signed, kr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// mustNodeFaults draws a plan the test knows to be satisfiable.
func mustNodeFaults(t *testing.T, n, tf int, kind fault.Kind, seed int64) *fault.Plan {
	t.Helper()
	p, err := fault.RandomNodeFaults(n, tf, kind, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mustSign is the test-side helper for messages known to be in range.
func mustSign(t *testing.T, kr *Keyring, msg Message) Message {
	t.Helper()
	out, err := kr.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustVerify(t *testing.T, kr *Keyring, msg Message) bool {
	t.Helper()
	ok, err := kr.Verify(msg)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestKeyringSignVerify(t *testing.T) {
	kr := NewKeyring(8, 42)
	if kr.N() != 8 {
		t.Fatalf("N() = %d, want 8", kr.N())
	}
	msg := mustSign(t, kr, Message{Source: 3, Payload: []byte("hello")})
	if !mustVerify(t, kr, msg) {
		t.Fatal("genuine message rejected")
	}
	tampered := msg
	tampered.Payload = []byte("hellp")
	if mustVerify(t, kr, tampered) {
		t.Fatal("tampered payload accepted")
	}
	forged := Message{Source: 5, Payload: msg.Payload, MAC: msg.MAC}
	if mustVerify(t, kr, forged) {
		t.Fatal("forged source accepted")
	}
	if mustVerify(t, kr, Message{Source: 1, Payload: []byte("x")}) {
		t.Fatal("unsigned message verified")
	}
	if msg.String() == "" {
		t.Fatal("empty message string")
	}
}

// TestKeyringSourceBounds pins the satellite fix: an out-of-keyring source
// is an error from both Sign and Verify, not an index panic.
func TestKeyringSourceBounds(t *testing.T) {
	kr := NewKeyring(8, 42)
	for _, src := range []topology.Node{-1, 8, 1000} {
		if _, err := kr.Sign(Message{Source: src, Payload: []byte("x")}); err == nil {
			t.Errorf("Sign accepted source %d in an 8-node keyring", src)
		}
		if _, err := kr.Verify(Message{Source: src, Payload: []byte("x"), MAC: make([]byte, 32)}); err == nil {
			t.Errorf("Verify accepted source %d in an 8-node keyring", src)
		}
	}
}

func TestKeyringDeterministic(t *testing.T) {
	a := mustSign(t, NewKeyring(4, 7), Message{Source: 2, Payload: []byte("p")})
	b := mustSign(t, NewKeyring(4, 7), Message{Source: 2, Payload: []byte("p")})
	if string(a.MAC) != string(b.MAC) {
		t.Fatal("keyring not deterministic")
	}
	c := mustSign(t, NewKeyring(4, 8), Message{Source: 2, Payload: []byte("p")})
	if string(a.MAC) == string(c.MAC) {
		t.Fatal("different seeds gave same MAC")
	}
}

func TestDolevBounds(t *testing.T) {
	// γ=6, N=19 (H3): min(⌈3⌉-1, ⌈19/3⌉-1) = min(2, 6) = 2.
	if got := DolevBound(6, 19); got != 2 {
		t.Fatalf("DolevBound(6,19) = %d, want 2", got)
	}
	// γ=4, N=16: min(1, 5) = 1.
	if got := DolevBound(4, 16); got != 1 {
		t.Fatalf("DolevBound(4,16) = %d, want 1", got)
	}
	// Large γ small N: the N/3 term binds: γ=10, N=8: min(4, 2) = 2.
	if got := DolevBound(10, 8); got != 2 {
		t.Fatalf("DolevBound(10,8) = %d, want 2", got)
	}
	if got := SignedBound(6); got != 5 {
		t.Fatalf("SignedBound(6) = %d", got)
	}
}

func TestVoteUnsigned(t *testing.T) {
	a, b := []byte("aa"), []byte("bb")
	if _, ok := VoteUnsigned(nil); ok {
		t.Fatal("vote with no copies decided")
	}
	if got, ok := VoteUnsigned([]Copy{{Payload: a}, {Payload: b}, {Payload: a}}); !ok || string(got) != "aa" {
		t.Fatalf("plurality vote = %q, %v", got, ok)
	}
	if _, ok := VoteUnsigned([]Copy{{Payload: a}, {Payload: b}}); ok {
		t.Fatal("tie decided")
	}
}

func TestVoteSigned(t *testing.T) {
	a, b := []byte("aa"), []byte("bb")
	if _, ok := VoteSigned([]Copy{{Payload: a, Valid: false}}); ok {
		t.Fatal("invalid-only copies decided")
	}
	if got, ok := VoteSigned([]Copy{{Payload: b, Valid: false}, {Payload: a, Valid: true}}); !ok || string(got) != "aa" {
		t.Fatalf("signed vote = %q, %v", got, ok)
	}
	if _, ok := VoteSigned([]Copy{{Payload: a, Valid: true}, {Payload: b, Valid: true}}); ok {
		t.Fatal("disagreeing valid copies decided (two-faced source not flagged)")
	}
}

func TestPayloadHelpers(t *testing.T) {
	p := TruthPayload(5)
	if string(CorruptPayload(p)) == string(p) {
		t.Fatal("corruption is a no-op")
	}
	if string(TwoFacedPayload(5)) == string(p) {
		t.Fatal("two-faced payload equals truth")
	}
	if string(TruthPayload(5)) != string(TruthPayload(5)) {
		t.Fatal("truth payload not deterministic")
	}
	if string(TruthPayload(5)) == string(TruthPayload(6)) {
		t.Fatal("distinct nodes share payloads")
	}
}

func TestEvaluateFaultFree(t *testing.T) {
	for _, g := range []*topology.Graph{topology.MustHypercube(4), topology.MustHexMesh(3)} {
		x := mustIHC(t, g)
		for _, signed := range []bool{false, true} {
			out := mustEval(t, x, fault.NewPlan(1), signed, NewKeyring(g.N(), 1))
			n := g.N()
			if out.Pairs != n*(n-1) || out.Correct != out.Pairs || out.Wrong != 0 || out.Missing != 0 {
				t.Fatalf("%s signed=%v: %+v", g.Name(), signed, out)
			}
		}
	}
}

// A single faulty node never disrupts delivery between fault-free pairs:
// it blocks at most one of the two directions of each undirected HC,
// leaving γ/2 clean paths.
func TestSingleFaultAlwaysTolerated(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	kr := NewKeyring(g.N(), 3)
	for v := topology.Node(0); int(v) < g.N(); v++ {
		for _, kind := range []fault.Kind{fault.Crash, fault.Corrupt, fault.Byzantine} {
			plan := fault.NewPlan(11)
			plan.Nodes[v] = kind
			signed := kind != fault.Corrupt && kind != fault.Byzantine
			out := mustEval(t, x, plan, true, kr)
			_ = signed
			if out.Correct != out.Pairs {
				t.Fatalf("node %d %v: %+v", v, kind, out)
			}
		}
	}
}

// Unsigned voting survives corruption up to the point where corrupt
// copies could outnumber intact ones; signed voting discards them. With
// one corrupt relay, both succeed; the unsigned Dolev bound for γ=4 is
// t=1, and indeed 2 corrupt nodes can produce wrong or missing results
// somewhere, while signed evaluation still only loses pairs whose every
// path is cut.
func TestSignedBeatsUnsignedUnderCorruption(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	kr := NewKeyring(g.N(), 3)
	worstUnsigned, worstSigned := 1.0, 1.0
	anyUnsignedBad := false
	for seed := int64(0); seed < 30; seed++ {
		plan := mustNodeFaults(t, g.N(), 3, fault.Corrupt, seed)
		u := mustEval(t, x, plan, false, nil)
		s := mustEval(t, x, plan, true, kr)
		if u.CorrectFraction() < worstUnsigned {
			worstUnsigned = u.CorrectFraction()
		}
		if s.CorrectFraction() < worstSigned {
			worstSigned = s.CorrectFraction()
		}
		if u.Correct < s.Correct {
			anyUnsignedBad = true
		}
		if s.Wrong != 0 {
			t.Fatalf("seed %d: signed evaluation produced wrong values: %+v", seed, s)
		}
	}
	if !anyUnsignedBad {
		t.Fatal("unsigned voting never lost to signed across 30 corrupt-fault plans")
	}
	if worstSigned < worstUnsigned {
		t.Fatalf("signed (%.3f) worse than unsigned (%.3f)", worstSigned, worstUnsigned)
	}
}

// Crash faults: a pair fails exactly when the faulty set cuts all γ
// directed-cycle paths — cross-check EvaluateIHC against BlockablePair.
func TestCrashFailureMatchesStructure(t *testing.T) {
	g := topology.MustHypercube(4)
	x := mustIHC(t, g)
	kr := NewKeyring(g.N(), 5)
	for seed := int64(0); seed < 10; seed++ {
		plan := mustNodeFaults(t, g.N(), 3, fault.Crash, seed)
		out := mustEval(t, x, plan, true, kr)
		blocked := 0
		for r := topology.Node(0); int(r) < g.N(); r++ {
			for s := topology.Node(0); int(s) < g.N(); s++ {
				if r == s || plan.Node(r) != fault.Healthy || plan.Node(s) != fault.Healthy {
					continue
				}
				if BlockablePair(x, plan, s, r) {
					blocked++
				}
			}
		}
		if out.Missing != blocked {
			t.Fatalf("seed %d: %d missing pairs vs %d structurally blocked", seed, out.Missing, blocked)
		}
		if out.Wrong != 0 {
			t.Fatalf("seed %d: crash faults caused wrong values", seed)
		}
	}
}

// Byzantine sources are excluded from grading, but their two-faced
// behaviour must be detected by signed receivers of conflicting copies —
// exercised implicitly: with a Byzantine source the fault-free pairs
// still grade perfectly.
func TestByzantineSourceDoesNotPolluteOthers(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	kr := NewKeyring(g.N(), 9)
	plan := fault.NewPlan(1)
	plan.Nodes[5] = fault.Byzantine
	out := mustEval(t, x, plan, true, kr)
	if out.Correct != out.Pairs {
		t.Fatalf("byzantine source disrupted fault-free pairs: %+v", out)
	}
}

// Link faults: γ/2-1 broken links can never block a pair (each broken
// undirected link removes at most one direction of at most... in fact at
// most 2 of the γ directed-cycle paths, both from the same undirected
// HC), so with γ=4, one broken link is always tolerated.
func TestSingleLinkFaultTolerated(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	kr := NewKeyring(g.N(), 5)
	for _, e := range g.Edges() {
		plan := fault.NewPlan(1)
		plan.Links[e] = true
		out := mustEval(t, x, plan, true, kr)
		if out.Correct != out.Pairs {
			t.Fatalf("link %v: %+v", e, out)
		}
	}
}

// Property: adding crash faults never increases the number of correctly
// delivered pairs. (The correct *fraction* may move either way, because
// extra faulty nodes also leave the graded set — the absolute count is
// the strictly monotone quantity: any pair fault-free and deliverable
// under the larger fault set is also fault-free and deliverable under
// the smaller one.)
func TestQuickNestedCrashMonotone(t *testing.T) {
	g := topology.MustHypercube(4)
	x := mustIHC(t, g)
	kr := NewKeyring(g.N(), 5)
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		p2 := mustNodeFaults(t, g.N(), 2, fault.Crash, seed)
		p4 := fault.NewPlan(seed)
		for v, k := range p2.Nodes {
			p4.Nodes[v] = k
		}
		extra := mustNodeFaults(t, g.N(), 2, fault.Crash, seed+1000)
		for v, k := range extra.Nodes {
			p4.Nodes[v] = k
		}
		o2 := mustEval(t, x, p2, true, kr)
		o4 := mustEval(t, x, p4, true, kr)
		return o4.Correct <= o2.Correct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
