package reliable

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/topology"
)

// Outcome grades an ATA reliable broadcast under faults, counting ordered
// (receiver, source) pairs of fault-free nodes.
type Outcome struct {
	Pairs   int // fault-free ordered pairs graded
	Correct int // voted to the true payload
	Wrong   int // voted to a different payload (undetected corruption)
	Missing int // no decision (no/ambiguous copies)
}

// CorrectFraction returns Correct / Pairs.
func (o Outcome) CorrectFraction() float64 {
	if o.Pairs == 0 {
		return 1
	}
	return float64(o.Correct) / float64(o.Pairs)
}

// EvaluateIHC runs the IHC all-to-all broadcast combinatorially (fault
// propagation along each directed-cycle route; timing is irrelevant to
// correctness) under the given fault plan, applies the selected voter at
// every fault-free receiver, and grades the result against the truth.
//
// Sources that are Byzantine are two-faced: they send TwoFacedPayload on
// odd-numbered directed cycles. Copies relayed through Corrupt or
// Byzantine nodes are corrupted (with valid=false in signed mode, since
// the relay cannot forge the source's MAC); copies through Crash nodes or
// broken links are lost.
func EvaluateIHC(x *core.IHC, plan *fault.Plan, signed bool, kr *Keyring) (Outcome, error) {
	// A plan naming nonexistent nodes or links would grade as vacuously
	// healthy (no route ever meets the phantom fault); that's a caller
	// bug, so it is reported rather than silently graded.
	if err := plan.Validate(x.Graph()); err != nil {
		return Outcome{}, fmt.Errorf("reliable: EvaluateIHC: %w", err)
	}
	n := x.N()
	gamma := x.Gamma()
	// copies[recv][src] collects the copies each receiver got.
	copies := make([][][]Copy, n)
	for r := range copies {
		copies[r] = make([][]Copy, n)
	}
	for j := 0; j < gamma; j++ {
		c := x.DirectedCycle(j)
		for p := 0; p < len(c); p++ {
			src := c[p]
			payload := TruthPayload(src)
			if plan.Node(src) == fault.Byzantine && j%2 == 1 {
				payload = TwoFacedPayload(src)
			}
			route := routeOf(c, p)
			fates := plan.TraceRoute(route, j)
			for k := 1; k < len(route); k++ {
				recv := route[k]
				var cp Copy
				switch fates[k] {
				case fault.Lost:
					continue
				case fault.Intact:
					cp = Copy{Payload: payload, Valid: true}
				case fault.Corrupted:
					// A corrupting relay cannot forge the source MAC.
					cp = Copy{Payload: CorruptPayload(payload), Valid: false}
				}
				if signed && kr != nil && cp.Valid {
					// Round-trip through real MACs to exercise the crypto
					// path rather than trusting the Valid flag. Sources come
					// from the cycle, so they are always keyed; an error here
					// means the keyring is sized for a different graph.
					msg, err := kr.Sign(Message{Source: src, Payload: cp.Payload})
					if err == nil {
						cp.Valid, err = kr.Verify(msg)
					}
					if err != nil {
						return Outcome{}, fmt.Errorf("reliable: EvaluateIHC: %w", err)
					}
				}
				copies[recv][src] = append(copies[recv][src], cp)
			}
		}
	}

	return gradeCopies(n, copies, signed, func(v topology.Node) bool {
		return plan.Node(v) != fault.Healthy
	}), nil
}

// gradeCopies applies the selected voter at every fault-free receiver for
// every fault-free source and tallies the outcomes against the truth —
// the shared back half of the combinatorial and timed evaluators.
func gradeCopies(n int, copies [][][]Copy, signed bool, faulty func(topology.Node) bool) Outcome {
	var out Outcome
	for r := 0; r < n; r++ {
		if faulty(topology.Node(r)) {
			continue
		}
		for s := 0; s < n; s++ {
			if r == s || faulty(topology.Node(s)) {
				continue
			}
			out.Pairs++
			var payload []byte
			var ok bool
			if signed {
				payload, ok = VoteSigned(copies[r][s])
			} else {
				payload, ok = VoteUnsigned(copies[r][s])
			}
			switch {
			case !ok:
				out.Missing++
			case string(payload) == string(TruthPayload(topology.Node(s))):
				out.Correct++
			default:
				out.Wrong++
			}
		}
	}
	return out
}

// routeOf returns the IHC packet route for the node at position p of
// directed cycle c: from c[p] around to its predecessor.
func routeOf(c []topology.Node, p int) []topology.Node {
	n := len(c)
	route := make([]topology.Node, n)
	for i := 0; i < n; i++ {
		route[i] = c[(p+i)%n]
	}
	return route
}

// BlockablePair reports whether the fault plan's faulty nodes cut every
// directed-cycle path from src to recv — the structural condition for
// delivery failure between a fault-free pair under crash faults.
func BlockablePair(x *core.IHC, plan *fault.Plan, src, recv topology.Node) bool {
	for j := 0; j < x.Gamma(); j++ {
		c := x.DirectedCycle(j)
		pos := x.ID(j, src)
		route := routeOf(c, pos)
		clean := true
		for k := 1; k < len(route); k++ {
			if route[k] == recv {
				break
			}
			if plan.Node(route[k]) != fault.Healthy {
				clean = false
				break
			}
		}
		if clean {
			return false
		}
	}
	return true
}
