package reliable

import (
	"bytes"
	"testing"

	"ihc/internal/topology"
)

// copiesFromRaw deterministically splits fuzzer-provided bytes into a
// slice of copies: the first byte of each 4-byte chunk is the validity
// bit, the rest the payload. Tiny payload alphabet (3 values) maximizes
// vote collisions, which is where the voter logic lives.
func copiesFromRaw(raw []byte) []Copy {
	var out []Copy
	for i := 0; i+3 < len(raw); i += 4 {
		out = append(out, Copy{
			Valid:   raw[i]%2 == 0,
			Payload: []byte{raw[i+1] % 3, raw[i+2] % 3},
		})
	}
	return out
}

// FuzzVoteUnsigned checks the unsigned voter's contract on arbitrary
// copy multisets: a decision is always a strict plurality payload, and
// no decision means no strict plurality exists.
func FuzzVoteUnsigned(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{1, 0, 0, 0, 0, 1, 1, 1, 0, 2, 2, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		copies := copiesFromRaw(raw)
		payload, ok := VoteUnsigned(copies)
		counts := map[string]int{}
		for _, c := range copies {
			counts[string(c.Payload)]++
		}
		best, second := 0, 0
		for _, n := range counts {
			switch {
			case n > best:
				best, second = n, best
			case n > second:
				second = n
			}
		}
		if ok {
			if got := counts[string(payload)]; got != best || best == second || best == 0 {
				t.Fatalf("decided %v with count %d (best=%d second=%d) over %v", payload, got, best, second, copies)
			}
		} else if best > second {
			t.Fatalf("refused to decide despite strict plurality (best=%d second=%d) over %v", best, second, copies)
		}

		// Signed voter: a decision must come from a valid copy and every
		// valid copy must agree with it.
		sp, sok := VoteSigned(copies)
		anyValid := false
		for _, c := range copies {
			if c.Valid {
				anyValid = true
				if sok && !bytes.Equal(sp, c.Payload) {
					t.Fatalf("signed decision %v disagrees with valid copy %v", sp, c.Payload)
				}
			}
		}
		if sok && !anyValid {
			t.Fatalf("signed voter decided %v with no valid copies", sp)
		}
	})
}

// FuzzKeyringVerify drives the MAC verify path with arbitrary claimed
// sources, payloads, and MACs: Verify must never panic, out-of-keyring
// sources must error, a signed message must round-trip, and any payload
// or MAC perturbation must be rejected.
func FuzzKeyringVerify(f *testing.F) {
	f.Add(int64(1), int8(0), []byte("hello"), []byte{})
	f.Add(int64(7), int8(-5), []byte{}, bytes.Repeat([]byte{0xaa}, 32))
	f.Add(int64(0), int8(120), []byte("x"), []byte("not a mac"))
	f.Fuzz(func(t *testing.T, seed int64, src int8, payload, mac []byte) {
		kr := NewKeyring(8, seed)
		msg := Message{Source: topology.Node(src), Payload: payload, MAC: mac}
		ok, err := kr.Verify(msg)
		if src < 0 || src >= 8 {
			if err == nil {
				t.Fatalf("source %d outside 8-node keyring verified without error (ok=%v)", src, ok)
			}
			if _, err := kr.Sign(msg); err == nil {
				t.Fatalf("source %d outside 8-node keyring signed without error", src)
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range source %d errored: %v", src, err)
		}
		signed, err := kr.Sign(Message{Source: topology.Node(src), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if ok2, err := kr.Verify(signed); err != nil || !ok2 {
			t.Fatalf("genuine signed message rejected (ok=%v err=%v)", ok2, err)
		}
		if ok && !bytes.Equal(mac, signed.MAC) {
			t.Fatalf("verified a MAC that is not the genuine one for this payload")
		}
		tampered := signed
		tampered.Payload = append(append([]byte{}, payload...), 0x01)
		if ok2, err := kr.Verify(tampered); err != nil || ok2 {
			t.Fatalf("extended payload accepted (ok=%v err=%v)", ok2, err)
		}
	})
}
