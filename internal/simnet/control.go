package simnet

import (
	"fmt"

	"ihc/internal/topology"
)

// A Controller is an online observer/actuator attached to a single Run
// via Options.Control. It is the engine-side half of the repair layer:
// the engine tells it about deliveries and fired timers, and through the
// Runtime it may set further timers and inject new packets (NAKs,
// retransmissions) into the running simulation.
//
// All callbacks run synchronously inside the event loop, so a Controller
// needs no locking but must respect two re-entrancy rules:
//
//   - OnDeliver is invoked from deep inside hop handling, while the
//     engine still holds references into its spec table. It may call
//     Runtime.SetTimer and Runtime.Now but must NOT call Runtime.Inject.
//   - OnTimer is invoked from the top of the event loop with no live
//     engine state on the stack; it may use the full Runtime, including
//     Inject.
//
// A Controller that derives every decision from callback arguments and
// its own deterministic state preserves the engine's determinism oracle:
// timer events consume sequence numbers but never reorder packet events
// relative to each other, so a controller that injects nothing leaves
// the delivery stream byte-identical to an unattached run.
type Controller interface {
	// Attach is called once per Run, after the initial packets have been
	// scheduled but before the first event is processed. specs is the
	// engine's (scratch-owned) copy of the run's packets; it must be
	// treated as read-only and not retained past the run.
	Attach(rt *Runtime, specs []PacketSpec)
	// OnDeliver reports that packet pkt (an index into the spec table)
	// delivered a copy at node at simulated time at.
	OnDeliver(pkt int32, node topology.Node, at Time)
	// OnTimer reports that a timer set via Runtime.SetTimer fired.
	OnTimer(at Time, token int64)
}

// Runtime is the controller's handle into a running simulation. It is
// valid only for the duration of the Run that issued it.
type Runtime struct {
	st *runState
}

// Now returns the timestamp of the event currently being processed.
func (rt *Runtime) Now() Time { return rt.st.now }

// NumSpecs returns the current size of the spec table, including
// packets injected mid-run.
func (rt *Runtime) NumSpecs() int { return len(rt.st.specs) }

// Spec returns a copy of spec i. The Route slice inside the copy is
// shared with the engine and must not be modified.
func (rt *Runtime) Spec(i int32) PacketSpec { return rt.st.specs[i] }

// SetTimer schedules OnTimer(at, token) — at is clamped to Now() so a
// timer can never fire in the simulated past. The token travels through
// the event's arr field (both are int64-sized), so timers cost one heap
// slot and no allocation.
func (rt *Runtime) SetTimer(at Time, token int64) {
	st := rt.st
	if at < st.now {
		at = st.now
	}
	st.pushTimer(at, token)
}

// Inject adds a new packet to the running simulation and returns its
// index in the spec table. The spec goes through the same route
// compilation and validation as the packets the run started with
// (adjacency, duplicate directed links); its inject time is clamped to
// Now(). Dependencies (After) are not supported for mid-run injections —
// the controller is the dependency mechanism. Inject must only be
// called from OnTimer (see Controller).
func (rt *Runtime) Inject(spec PacketSpec) (int32, error) {
	st := rt.st
	i := int32(len(st.specs))
	if len(spec.Route) < 2 {
		return -1, fmt.Errorf("simnet: injected packet %v has route of %d nodes", spec.ID, len(spec.Route))
	}
	if len(st.specs) >= maxSpecs || len(spec.Route) >= maxRouteLen {
		return -1, fmt.Errorf("simnet: injected packet %v exceeds engine capacity (%d specs, route %d)",
			spec.ID, len(st.specs), len(spec.Route))
	}
	if len(spec.After) > 0 {
		return -1, fmt.Errorf("simnet: injected packet %v must not have dependencies", spec.ID)
	}
	if spec.Inject < st.now {
		spec.Inject = st.now
	}
	// Appends may grow st.arcs beyond the capacity prepare() reserved;
	// that is safe: previously compiled specArcs windows keep aliasing the
	// old backing array (whose contents never change), only new windows
	// land in the grown one.
	base := len(st.arcs)
	for h := 0; h+1 < len(spec.Route); h++ {
		from, to := spec.Route[h], spec.Route[h+1]
		idx := st.net.arcIndex(from, to)
		if idx < 0 {
			st.arcs = st.arcs[:base]
			return -1, fmt.Errorf("simnet: injected packet %v route step %d: {%d,%d} not an edge of %s",
				spec.ID, h, from, to, st.net.g.Name())
		}
		if st.arcStamp[idx] == i+1 {
			st.arcs = st.arcs[:base]
			return -1, fmt.Errorf("simnet: injected packet %v route uses directed link %d→%d twice",
				spec.ID, from, to)
		}
		st.arcStamp[idx] = i + 1
		st.arcs = append(st.arcs, idx)
	}
	st.specs = append(st.specs, spec)
	st.ownSpecs = st.specs
	st.specArcs = append(st.specArcs, st.arcs[base:len(st.arcs):len(st.arcs)])
	st.children = append(st.children, nil)
	st.unmet = append(st.unmet, nil)
	st.ready = append(st.ready, 0)
	st.started = append(st.started, false)
	if st.opts.Fault != nil {
		st.corrupt = append(st.corrupt, false)
	}
	st.start(i, spec.Inject)
	return i, nil
}
