package simnet

import "ihc/internal/topology"

// HopEvent is one performed hop as seen by an Observer: the packet
// acquired the directed link From→To (dense arc id Arc) at HeaderDepart
// and its tail fully arrives at To at TailArrive. Hops canceled by a
// fault hook (FaultDrop) are never observed, and a blocked virtual
// cut-through attempt that falls back to buffering is observed once,
// when the buffered send finally departs — the same convention as
// Result.Traces and FaultHook.Relay.
type HopEvent struct {
	ID           PacketID
	Hop          int // index of From along the packet's route (0 = source injection)
	From, To     topology.Node
	Arc          int // dense arc id of From→To (position in Graph().Arcs())
	Kind         HopKind
	HeaderDepart Time // when the header left From
	TailArrive   Time // when the tail fully arrived at To
	Flits        int  // effective packet length (PacketSpec.Flits, or the network μ)
	Blocked      bool // transmitter (or background traffic) was busy
}

// Observer receives the engine's per-hop and per-delivery stream. It is
// the observability counterpart of FaultHook: a nil Options.Observe
// costs one predictable branch per event on the hot path, so runs with
// observation off keep the engine's allocation-free event loop and
// byte-identical results. Callbacks run synchronously inside the event
// loop in the engine's deterministic (time, seq) order; they must not
// retain the HopEvent beyond the call only if they copy it (it is
// passed by value, so plain field reads are always safe), and must not
// call back into the Network being simulated.
//
// See internal/observe for the standard sinks: a mergeable metrics
// aggregator, live theorem oracles, and JSONL/Chrome-trace exporters.
type Observer interface {
	// OnHop is called once per performed hop, after the hop's link is
	// acquired and before any deliveries the hop causes.
	OnHop(HopEvent)
	// OnDeliver is called once per delivered copy (tee and final),
	// immediately after the delivery is accounted.
	OnDeliver(Delivery)
}
