package simnet

import (
	"fmt"
	"math"
	"sync"
)

// Conservative sharded execution of a single run.
//
// The links (directed arcs) are partitioned into contiguous ranges, one
// per worker; every event belongs to exactly one arc (the link its hop
// requests), hence to exactly one shard. Workers process events in
// global (time, key) order *per shard* inside synchronized time windows:
//
//	window k = [minT, minT + L)
//
// where minT is the earliest pending event across all shards and L is
// the engine's lookahead (see Network.lookahead). The engine's spawn
// structure guarantees that handling an event at time t can create an
// event on a *different* arc no earlier than t + L — the same per-link
// independence that underlies the paper's Theorem 3 contention-freeness
// argument — so every event of window k already sits in some shard's
// heap when the window opens, and shards cannot affect one another
// within a window. Cross-shard spawns are buffered in per-target
// outboxes and drained at the window barrier; the one spawn that can
// share its spawner's timestamp (the blocked virtual-cut-through
// fallback) re-requests the same arc and therefore stays on its own
// shard, outside the lookahead argument entirely.
//
// Determinism is exact, not statistical. Because event keys make the
// sequential processing order a pure function of the event set (see
// packetKey), each shard's calendar queue replays precisely the
// sequential order restricted to its arcs: per-link state transitions,
// background-traffic RNG consumption, and every counter come out
// identical at any worker count. Order-sensitive outputs are
// reconstructed at merge time: each shard appends deliveries and traces
// in its own processing order — already globally (time, key)-sorted,
// since windows advance monotonically and each window is drained in
// order — so a W-way linear merge of the per-shard streams rebuilds the
// exact sequential log without a global sort; observer records are
// buffered per window and replayed to the sink from one goroutine the
// same way.
//
// Shared mutable state is confined to the dependency tables (After
// lists), which only the serialized baselines use: release operations
// commute (each parent removes itself once, readiness keeps a running
// max, the final removal starts the child), so a mutex around the rare
// release path preserves byte-identity there too. Controllers are
// refused: an online controller observes and actuates the global stream
// sequentially by contract.

// lookahead returns the window width L: the minimum simulated-time
// distance between an event and any event its handling can create on a
// different arc. Derivation over the engine's spawn sites, for an event
// at time t:
//
//   - next-hop cut-through request: depart + α with depart >= t, so >= t+α;
//   - next-hop store-and-forward send: depart + pt + τ_S >= t + α + τ_S
//     (pt >= α because packets are at least one flit);
//   - dependency release: the delivery happens at depart + pt >= t + α,
//     and the child injects no earlier than delivery + τ_S;
//   - blocked-cut-through fallback: may land at exactly t, but on the
//     same arc — shard-local, so it does not bound the window.
//
// Hence L = α universally, improved to α + τ_S in store-and-forward
// mode where no cut-through requests exist.
func (n *Network) lookahead() Time {
	if n.p.Mode == StoreAndForward {
		return n.p.Alpha + n.p.TauS
	}
	return n.p.Alpha
}

// taggedDeliv is a delivery tagged with its event's (time, key) so the
// merge can reconstruct the sequential append order. One event delivers
// at most one copy, so tags are unique and the sort is a total order.
type taggedDeliv struct {
	t   Time
	key uint64
	d   Delivery
}

// taggedHop is one trace entry tagged the same way. The engine performs
// each (packet, hop) at most once, so tags are unique here as well.
type taggedHop struct {
	t   Time
	key uint64
	pkt int32
	h   Hop
}

// obsRec is one buffered observer record: a hop when isHop, a delivery
// otherwise. Buffered per shard per window and replayed in (t, key)
// order; a hop and the delivery it causes carry the same tag, and the
// merge emits the hop first, matching the sequential callback order.
type obsRec struct {
	t     Time
	key   uint64
	isHop bool
	hop   HopEvent
	del   Delivery
}

// shard is one worker's slice of a sharded run: a contiguous arc range,
// the per-link state behind it (via its own event heap and runState
// counters), and the buffers that carry order-sensitive output to the
// merge. All slices are retained in the Scratch across runs.
type shard struct {
	st     runState
	id     int
	run    *shardedRun
	outbox [][]event // outbox[target]: cross-shard spawns for target, drained at the barrier
	delivs []taggedDeliv
	traces []taggedHop
	obs    []obsRec
	obsPos int         // consumption cursor during the per-window observer replay
	ledger *CopyLedger // shard-local Theorem-4 ledger (Options.Ledger runs), retained across runs
}

// owner maps an arc id to the shard that owns it.
func (sh *shard) owner(arc int32) int { return int(arc) / sh.run.chunk }

// shardedRun is the state shared by all shards of one run.
type shardedRun struct {
	chunk int // arcs per shard (ceiling); owner(arc) = arc / chunk
	depMu sync.Mutex
}

// drainCmd is the out-of-band worker command for the outbox-drain phase;
// any other value received is a window end time. Simulated times are
// non-negative, so the sentinel cannot collide.
const drainCmd = Time(math.MinInt64)

// runSharded is RunScratch's EngineWorkers > 1 path.
func (n *Network) runSharded(specs []PacketSpec, opts Options, sc *Scratch) (*Result, error) {
	if opts.Control != nil {
		return nil, fmt.Errorf("simnet: EngineWorkers=%d is incompatible with a Controller: controllers observe and actuate the event stream sequentially", opts.EngineWorkers)
	}
	if sc == nil {
		sc = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(sc)
	}
	st := &sc.st
	defer st.release()
	if err := st.prepare(n, specs, opts); err != nil {
		return nil, err
	}
	w := opts.EngineWorkers
	if nArcs := len(n.links); w > nArcs {
		// More workers than arcs would leave shards owning nothing.
		w = nArcs
	}
	if w < 2 {
		// Degenerate shard count (tiny graph): run the sequential loop —
		// identical results by construction, no worker machinery.
		for i, s := range specs {
			if len(s.After) == 0 {
				st.start(int32(i), s.Inject)
			}
		}
		st.drainUntil(Time(math.MaxInt64))
		return st.finish()
	}

	run := &shardedRun{chunk: (len(n.links) + w - 1) / w}
	shards := sc.shardSlots(w)
	defer releaseShards(shards)
	for i, sh := range shards {
		sh.id, sh.run = i, run
		if cap(sh.outbox) < w {
			sh.outbox = make([][]event, w)
		} else {
			sh.outbox = sh.outbox[:w]
		}
		sst := &sh.st
		sst.net, sst.specs, sst.opts = n, st.specs, opts
		sst.specArcs = st.specArcs
		sst.children, sst.unmet = st.children, st.unmet
		sst.ready, sst.started, sst.corrupt = st.ready, st.started, st.corrupt
		sst.hasDeps = st.hasDeps
		sst.res = &Result{}
		sst.queue.reset(spanForParams(n.p), false)
		sst.sh = sh
		if opts.Copies {
			sst.res.Copies = NewCopyMatrix(n.g.N())
		}
		if opts.Ledger != nil {
			// Shard-local ledger, merged commutatively after the run; the
			// backing arrays are retained in the scratch across runs.
			if sh.ledger == nil || sh.ledger.N() != opts.Ledger.N() {
				sh.ledger = NewCopyLedger(opts.Ledger.N())
			} else {
				sh.ledger.Reset()
			}
			sst.ledger = sh.ledger
		}
	}
	// Initial injections go straight into the owning shard's heap:
	// start() routes by the packet's first arc, which for the starting
	// shard is always local.
	for i := range st.specs {
		if len(st.specs[i].After) > 0 {
			continue
		}
		sh := shards[int(st.specArcs[i][0])/run.chunk]
		sh.st.start(int32(i), st.specs[i].Inject)
	}

	// Window loop: two barriers per window. Phase one processes every
	// event inside [minT, minT+L) shard-locally; phase two drains the
	// outboxes (each shard pulls its own inbound events, so the drain is
	// itself parallel — with scattered routes most spawns cross shards,
	// and a serial drain would dominate). Between barriers the main
	// goroutine alone reads shard heaps for the next minT and replays
	// buffered observer records; the channel handshakes order all of it.
	lookahead := n.lookahead()
	cmds := make([]chan Time, w)
	done := make(chan struct{}, w)
	for i, sh := range shards {
		cmds[i] = make(chan Time, 1)
		go func(sh *shard, cmd <-chan Time) {
			for c := range cmd {
				if c == drainCmd {
					sh.drain(shards)
				} else {
					sh.runWindow(c)
				}
				done <- struct{}{}
			}
		}(sh, cmds[i])
	}
	barrier := func(c Time) {
		for _, ch := range cmds {
			ch <- c
		}
		for range shards {
			<-done
		}
	}
	for {
		minT := Time(math.MaxInt64)
		for _, sh := range shards {
			// nextTick may migrate overflow events into the calendar ring;
			// between barriers only this goroutine touches shard queues, so
			// the reorganization is safe and the worker resumes from it.
			if t, ok := sh.st.queue.nextTick(); ok && t < minT {
				minT = t
			}
		}
		if minT == math.MaxInt64 {
			break
		}
		barrier(minT + lookahead)
		barrier(drainCmd)
		if opts.Observe != nil {
			replayObservations(shards, opts.Observe)
		}
	}
	for _, ch := range cmds {
		close(ch)
	}

	res := st.res
	for _, sh := range shards {
		r := sh.st.res
		res.Finish = max(res.Finish, r.Finish)
		res.Deliveries += r.Deliveries
		res.Contentions += r.Contentions
		res.BgBlocked += r.BgBlocked
		res.CutThroughs += r.CutThroughs
		res.BufferedHops += r.BufferedHops
		res.Stalls += r.Stalls
		res.Injections += r.Injections
		res.Events += r.Events
		res.LinkBusy += r.LinkBusy
		res.FaultDrops += r.FaultDrops
		res.FaultTaints += r.FaultTaints
		if res.Copies != nil {
			// Saturating merge is order-independent: min(a+b+c, cap) no
			// matter how the pairwise merges associate.
			res.Copies.Merge(r.Copies)
		}
		if opts.Ledger != nil {
			// Sum merge is commutative, so the caller's ledger ends up
			// identical at every worker count.
			opts.Ledger.Merge(sh.ledger)
		}
	}
	// Each shard appended its deliveries and traces in processing order,
	// which is already the global (time, key) order restricted to that
	// shard — so one W-way linear merge per stream reconstructs the
	// sequential engine's append order byte for byte, replacing the old
	// concatenate-and-sort (O(n log n) with a closure-calling comparator)
	// with a single O(n·W) pass into a pre-sized buffer.
	if opts.RecordDeliveries {
		total := 0
		for _, sh := range shards {
			total += len(sh.delivs)
		}
		res.Deliveriesv = make([]Delivery, 0, total)
		pos := make([]int, len(shards))
		for len(res.Deliveriesv) < total {
			best := -1
			var bt Time
			var bk uint64
			for s, sh := range shards {
				if pos[s] >= len(sh.delivs) {
					continue
				}
				r := &sh.delivs[pos[s]]
				if best < 0 || r.t < bt || (r.t == bt && r.key < bk) {
					best, bt, bk = s, r.t, r.key
				}
			}
			res.Deliveriesv = append(res.Deliveriesv, shards[best].delivs[pos[best]].d)
			pos[best]++
		}
	}
	if opts.Trace {
		total := 0
		for _, sh := range shards {
			total += len(sh.traces)
		}
		pos := make([]int, len(shards))
		for merged := 0; merged < total; merged++ {
			best := -1
			var bt Time
			var bk uint64
			for s, sh := range shards {
				if pos[s] >= len(sh.traces) {
					continue
				}
				r := &sh.traces[pos[s]]
				if best < 0 || r.t < bt || (r.t == bt && r.key < bk) {
					best, bt, bk = s, r.t, r.key
				}
			}
			th := &shards[best].traces[pos[best]]
			pos[best]++
			id := st.specs[th.pkt].ID
			res.Traces[id] = append(res.Traces[id], th.h)
		}
	}
	return st.finish()
}

// runWindow processes every pending event strictly before end, one
// whole tick-bucket at a time (see drainUntil). Spawns for this shard's
// own arcs enter the calendar immediately (and are drained within the
// window if they fall inside it); cross-shard spawns land in outboxes
// with t >= end by the lookahead bound.
func (sh *shard) runWindow(end Time) {
	sh.st.drainUntil(end)
}

// drain moves every event other shards spawned for this shard into its
// calendar queue. Each shard writes only its own outbox slot in every
// peer, so the phase runs without locks.
func (sh *shard) drain(all []*shard) {
	for _, o := range all {
		box := o.outbox[sh.id]
		for i := range box {
			sh.st.queue.push(box[i])
		}
		o.outbox[sh.id] = box[:0]
	}
}

// replayObservations merges the shards' buffered observer records in
// (time, key) order and replays them to the sink from the main
// goroutine. Within one event's tag a hop precedes the delivery it
// caused (isHop breaks the tie), matching the sequential callback order;
// an O(W) scan per record keeps the merge allocation-free.
func replayObservations(shards []*shard, obs Observer) {
	for {
		var best *obsRec
		bestShard := -1
		for s, sh := range shards {
			if sh.obsPos >= len(sh.obs) {
				continue
			}
			r := &sh.obs[sh.obsPos]
			if best == nil || r.t < best.t || (r.t == best.t && (r.key < best.key ||
				(r.key == best.key && r.isHop && !best.isHop))) {
				best, bestShard = r, s
			}
		}
		if best == nil {
			break
		}
		shards[bestShard].obsPos++
		if best.isHop {
			obs.OnHop(best.hop)
		} else {
			obs.OnDeliver(best.del)
		}
	}
	for _, sh := range shards {
		sh.obs, sh.obsPos = sh.obs[:0], 0
	}
}

// releaseShards drops everything a finished run would otherwise pin:
// result pointers, the shared dependency tables, buffered records. The
// backing arrays stay for the next run.
func releaseShards(shards []*shard) {
	for _, sh := range shards {
		sh.st.release()
		sh.st.children, sh.st.unmet = nil, nil
		sh.st.ready, sh.st.started, sh.st.corrupt = nil, nil, nil
		sh.run = nil
		for i := range sh.outbox {
			sh.outbox[i] = sh.outbox[i][:0]
		}
		sh.delivs = sh.delivs[:0]
		sh.traces = sh.traces[:0]
		sh.obs, sh.obsPos = sh.obs[:0], 0
	}
}
