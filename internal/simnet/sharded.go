package simnet

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Conservative sharded execution of a single run.
//
// The links (directed arcs) are partitioned into contiguous ranges, one
// per worker; every event belongs to exactly one arc (the link its hop
// requests), hence to exactly one shard. Workers process events in
// global (time, key) order *per shard* inside synchronized time windows:
//
//	window k = [minT, minT + L)
//
// where minT is the earliest pending event across all shards and L is
// the engine's lookahead (see Network.lookahead). The engine's spawn
// structure guarantees that handling an event at time t can create an
// event on a *different* arc no earlier than t + L — the same per-link
// independence that underlies the paper's Theorem 3 contention-freeness
// argument — so every event of window k already sits in some shard's
// heap when the window opens, and shards cannot affect one another
// within a window. Cross-shard spawns are buffered in per-target
// outboxes and drained at the window barrier; the one spawn that can
// share its spawner's timestamp (the blocked virtual-cut-through
// fallback) re-requests the same arc and therefore stays on its own
// shard, outside the lookahead argument entirely.
//
// Determinism is exact, not statistical. Because event keys make the
// sequential processing order a pure function of the event set (see
// packetKey), each shard's heap replays precisely the sequential order
// restricted to its arcs: per-link state transitions, background-traffic
// RNG consumption, and every counter come out identical at any worker
// count. Order-sensitive outputs are reconstructed at merge time:
// deliveries and traces are tagged with their event's (time, key) and
// sorted — which is exactly the order the sequential engine appended
// them in — and observer records are buffered per window and replayed to
// the sink from one goroutine in (time, key) order.
//
// Shared mutable state is confined to the dependency tables (After
// lists), which only the serialized baselines use: release operations
// commute (each parent removes itself once, readiness keeps a running
// max, the final removal starts the child), so a mutex around the rare
// release path preserves byte-identity there too. Controllers are
// refused: an online controller observes and actuates the global stream
// sequentially by contract.

// lookahead returns the window width L: the minimum simulated-time
// distance between an event and any event its handling can create on a
// different arc. Derivation over the engine's spawn sites, for an event
// at time t:
//
//   - next-hop cut-through request: depart + α with depart >= t, so >= t+α;
//   - next-hop store-and-forward send: depart + pt + τ_S >= t + α + τ_S
//     (pt >= α because packets are at least one flit);
//   - dependency release: the delivery happens at depart + pt >= t + α,
//     and the child injects no earlier than delivery + τ_S;
//   - blocked-cut-through fallback: may land at exactly t, but on the
//     same arc — shard-local, so it does not bound the window.
//
// Hence L = α universally, improved to α + τ_S in store-and-forward
// mode where no cut-through requests exist.
func (n *Network) lookahead() Time {
	if n.p.Mode == StoreAndForward {
		return n.p.Alpha + n.p.TauS
	}
	return n.p.Alpha
}

// taggedDeliv is a delivery tagged with its event's (time, key) so the
// merge can reconstruct the sequential append order. One event delivers
// at most one copy, so tags are unique and the sort is a total order.
type taggedDeliv struct {
	t   Time
	key uint64
	d   Delivery
}

// taggedHop is one trace entry tagged the same way. The engine performs
// each (packet, hop) at most once, so tags are unique here as well.
type taggedHop struct {
	t   Time
	key uint64
	pkt int32
	h   Hop
}

// obsRec is one buffered observer record: a hop when isHop, a delivery
// otherwise. Buffered per shard per window and replayed in (t, key)
// order; a hop and the delivery it causes carry the same tag, and the
// merge emits the hop first, matching the sequential callback order.
type obsRec struct {
	t     Time
	key   uint64
	isHop bool
	hop   HopEvent
	del   Delivery
}

// shard is one worker's slice of a sharded run: a contiguous arc range,
// the per-link state behind it (via its own event heap and runState
// counters), and the buffers that carry order-sensitive output to the
// merge. All slices are retained in the Scratch across runs.
type shard struct {
	st     runState
	id     int
	run    *shardedRun
	outbox [][]event // outbox[target]: cross-shard spawns for target, drained at the barrier
	delivs []taggedDeliv
	traces []taggedHop
	obs    []obsRec
	obsPos int // consumption cursor during the per-window observer replay
}

// owner maps an arc id to the shard that owns it.
func (sh *shard) owner(arc int32) int { return int(arc) / sh.run.chunk }

// shardedRun is the state shared by all shards of one run.
type shardedRun struct {
	chunk int // arcs per shard (ceiling); owner(arc) = arc / chunk
	depMu sync.Mutex
}

// drainCmd is the out-of-band worker command for the outbox-drain phase;
// any other value received is a window end time. Simulated times are
// non-negative, so the sentinel cannot collide.
const drainCmd = Time(math.MinInt64)

// runSharded is RunScratch's EngineWorkers > 1 path.
func (n *Network) runSharded(specs []PacketSpec, opts Options, sc *Scratch) (*Result, error) {
	if opts.Control != nil {
		return nil, fmt.Errorf("simnet: EngineWorkers=%d is incompatible with a Controller: controllers observe and actuate the event stream sequentially", opts.EngineWorkers)
	}
	if sc == nil {
		sc = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(sc)
	}
	st := &sc.st
	defer st.release()
	if err := st.prepare(n, specs, opts); err != nil {
		return nil, err
	}
	w := opts.EngineWorkers
	if nArcs := len(n.links); w > nArcs {
		// More workers than arcs would leave shards owning nothing.
		w = nArcs
	}
	if w < 2 {
		// Degenerate shard count (tiny graph): run the sequential loop —
		// identical results by construction, no worker machinery.
		for i, s := range specs {
			if len(s.After) == 0 {
				st.start(int32(i), s.Inject)
			}
		}
		for len(st.queue.a) > 0 {
			ev := st.queue.pop()
			st.res.Events++
			st.handle(ev)
		}
		return st.finish()
	}

	run := &shardedRun{chunk: (len(n.links) + w - 1) / w}
	shards := sc.shardSlots(w)
	defer releaseShards(shards)
	for i, sh := range shards {
		sh.id, sh.run = i, run
		if cap(sh.outbox) < w {
			sh.outbox = make([][]event, w)
		} else {
			sh.outbox = sh.outbox[:w]
		}
		sst := &sh.st
		sst.net, sst.specs, sst.opts = n, st.specs, opts
		sst.specArcs = st.specArcs
		sst.children, sst.unmet = st.children, st.unmet
		sst.ready, sst.started, sst.corrupt = st.ready, st.started, st.corrupt
		sst.hasDeps = st.hasDeps
		sst.res = &Result{}
		sst.queue.a = sst.queue.a[:0]
		sst.sh = sh
		if opts.Copies {
			sst.res.Copies = NewCopyMatrix(n.g.N())
		}
	}
	// Initial injections go straight into the owning shard's heap:
	// start() routes by the packet's first arc, which for the starting
	// shard is always local.
	for i := range st.specs {
		if len(st.specs[i].After) > 0 {
			continue
		}
		sh := shards[int(st.specArcs[i][0])/run.chunk]
		sh.st.start(int32(i), st.specs[i].Inject)
	}

	// Window loop: two barriers per window. Phase one processes every
	// event inside [minT, minT+L) shard-locally; phase two drains the
	// outboxes (each shard pulls its own inbound events, so the drain is
	// itself parallel — with scattered routes most spawns cross shards,
	// and a serial drain would dominate). Between barriers the main
	// goroutine alone reads shard heaps for the next minT and replays
	// buffered observer records; the channel handshakes order all of it.
	lookahead := n.lookahead()
	cmds := make([]chan Time, w)
	done := make(chan struct{}, w)
	for i, sh := range shards {
		cmds[i] = make(chan Time, 1)
		go func(sh *shard, cmd <-chan Time) {
			for c := range cmd {
				if c == drainCmd {
					sh.drain(shards)
				} else {
					sh.runWindow(c)
				}
				done <- struct{}{}
			}
		}(sh, cmds[i])
	}
	barrier := func(c Time) {
		for _, ch := range cmds {
			ch <- c
		}
		for range shards {
			<-done
		}
	}
	for {
		minT := Time(math.MaxInt64)
		for _, sh := range shards {
			if q := sh.st.queue.a; len(q) > 0 && q[0].t < minT {
				minT = q[0].t
			}
		}
		if minT == math.MaxInt64 {
			break
		}
		barrier(minT + lookahead)
		barrier(drainCmd)
		if opts.Observe != nil {
			replayObservations(shards, opts.Observe)
		}
	}
	for _, ch := range cmds {
		close(ch)
	}

	res := st.res
	for _, sh := range shards {
		r := sh.st.res
		res.Finish = max(res.Finish, r.Finish)
		res.Deliveries += r.Deliveries
		res.Contentions += r.Contentions
		res.BgBlocked += r.BgBlocked
		res.CutThroughs += r.CutThroughs
		res.BufferedHops += r.BufferedHops
		res.Stalls += r.Stalls
		res.Injections += r.Injections
		res.Events += r.Events
		res.LinkBusy += r.LinkBusy
		res.FaultDrops += r.FaultDrops
		res.FaultTaints += r.FaultTaints
		if res.Copies != nil {
			// Saturating merge is order-independent: min(a+b+c, cap) no
			// matter how the pairwise merges associate.
			res.Copies.Merge(r.Copies)
		}
	}
	if opts.RecordDeliveries {
		total := 0
		for _, sh := range shards {
			total += len(sh.delivs)
		}
		all := make([]taggedDeliv, 0, total)
		for _, sh := range shards {
			all = append(all, sh.delivs...)
		}
		// The sequential engine appends one delivery per delivering event,
		// in event order — so sorting by the event tag reconstructs its
		// Deliveriesv byte for byte.
		sort.Slice(all, func(i, j int) bool {
			if all[i].t != all[j].t {
				return all[i].t < all[j].t
			}
			return all[i].key < all[j].key
		})
		res.Deliveriesv = make([]Delivery, len(all))
		for i := range all {
			res.Deliveriesv[i] = all[i].d
		}
	}
	if opts.Trace {
		total := 0
		for _, sh := range shards {
			total += len(sh.traces)
		}
		all := make([]taggedHop, 0, total)
		for _, sh := range shards {
			all = append(all, sh.traces...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].t != all[j].t {
				return all[i].t < all[j].t
			}
			return all[i].key < all[j].key
		})
		for _, th := range all {
			id := st.specs[th.pkt].ID
			res.Traces[id] = append(res.Traces[id], th.h)
		}
	}
	return st.finish()
}

// runWindow processes every pending event strictly before end. Spawns
// for this shard's own arcs enter the heap immediately (and are popped
// within the window if they fall inside it); cross-shard spawns land in
// outboxes with t >= end by the lookahead bound.
func (sh *shard) runWindow(end Time) {
	st := &sh.st
	for len(st.queue.a) > 0 && st.queue.a[0].t < end {
		ev := st.queue.pop()
		st.res.Events++
		st.now, st.curKey = ev.t, ev.key
		st.handle(ev)
	}
}

// drain moves every event other shards spawned for this shard into its
// heap. Each shard writes only its own outbox slot in every peer, so the
// phase runs without locks.
func (sh *shard) drain(all []*shard) {
	for _, o := range all {
		box := o.outbox[sh.id]
		for i := range box {
			sh.st.queue.push(box[i])
		}
		o.outbox[sh.id] = box[:0]
	}
}

// replayObservations merges the shards' buffered observer records in
// (time, key) order and replays them to the sink from the main
// goroutine. Within one event's tag a hop precedes the delivery it
// caused (isHop breaks the tie), matching the sequential callback order;
// an O(W) scan per record keeps the merge allocation-free.
func replayObservations(shards []*shard, obs Observer) {
	for {
		var best *obsRec
		bestShard := -1
		for s, sh := range shards {
			if sh.obsPos >= len(sh.obs) {
				continue
			}
			r := &sh.obs[sh.obsPos]
			if best == nil || r.t < best.t || (r.t == best.t && (r.key < best.key ||
				(r.key == best.key && r.isHop && !best.isHop))) {
				best, bestShard = r, s
			}
		}
		if best == nil {
			break
		}
		shards[bestShard].obsPos++
		if best.isHop {
			obs.OnHop(best.hop)
		} else {
			obs.OnDeliver(best.del)
		}
	}
	for _, sh := range shards {
		sh.obs, sh.obsPos = sh.obs[:0], 0
	}
}

// releaseShards drops everything a finished run would otherwise pin:
// result pointers, the shared dependency tables, buffered records. The
// backing arrays stay for the next run.
func releaseShards(shards []*shard) {
	for _, sh := range shards {
		sh.st.release()
		sh.st.children, sh.st.unmet = nil, nil
		sh.st.ready, sh.st.started, sh.st.corrupt = nil, nil, nil
		sh.run = nil
		for i := range sh.outbox {
			sh.outbox[i] = sh.outbox[i][:0]
		}
		sh.delivs = sh.delivs[:0]
		sh.traces = sh.traces[:0]
		sh.obs, sh.obsPos = sh.obs[:0], 0
	}
}
