package simnet

import (
	"math"
	"testing"

	"ihc/internal/topology"
)

// pipelineSpecs builds the ring-pipeline workload used by the allocation
// tests: n/2 packets, each routed n-1 hops around an n-cycle.
func pipelineSpecs(n int) (*topology.Graph, []PacketSpec) {
	g := topology.MustCycle(n)
	ring := make([]topology.Node, 2*n)
	for i := range ring {
		ring[i] = topology.Node(i % n)
	}
	specs := make([]PacketSpec, 0, n/2)
	for s := 0; s < n; s += 2 {
		specs = append(specs, PacketSpec{
			ID:    PacketID{Source: topology.Node(s)},
			Route: ring[s : s+n],
			Tee:   true,
		})
	}
	return g, specs
}

// TestRunScratchAllocFree pins the tentpole property of the flat-array
// engine: with a warmed Scratch, a whole run allocates only O(1) —
// the Network, the Result — regardless of how many events it processes.
// The issue's acceptance bound is ≤ 0.1 allocs/event; steady state is
// about three orders of magnitude below that.
func TestRunScratchAllocFree(t *testing.T) {
	const n = 64
	g, specs := pipelineSpecs(n)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	sc := NewScratch()

	run := func() *Result {
		net, err := New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.RunScratch(specs, Options{}, sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run() // warm the scratch's backing arrays
	if res.Events == 0 {
		t.Fatal("no events processed")
	}

	allocs := testing.AllocsPerRun(10, func() { run() })
	perEvent := allocs / float64(res.Events)
	t.Logf("%.1f allocs/run over %d events = %.2g allocs/event", allocs, res.Events, perEvent)
	// The fresh Network and Result account for a handful of allocations
	// per run; anything per-event (the old container/heap boxing was one
	// alloc per push) would show up as thousands.
	if allocs > 16 {
		t.Fatalf("%.1f allocs per run, want O(1)", allocs)
	}
	if perEvent > 0.1 {
		t.Fatalf("%.3f allocs/event exceeds the 0.1 acceptance bound", perEvent)
	}
}

// resultKey projects the comparable counters of a Result, for exact
// run-to-run identity checks.
type resultKey struct {
	finish                             Time
	deliveries, contentions, bgBlocked int
	cutThroughs, bufferedHops, stalls  int
	injections                         int
	events                             int64
	linkBusy                           Time
}

func keyOf(r *Result) resultKey {
	return resultKey{r.Finish, r.Deliveries, r.Contentions, r.BgBlocked,
		r.CutThroughs, r.BufferedHops, r.Stalls, r.Injections, r.Events, r.LinkBusy}
}

// TestRunScratchReuseIdentical checks the determinism oracle at the unit
// level: a reused Scratch and a fresh one produce identical results.
func TestRunScratchReuseIdentical(t *testing.T) {
	g, specs := pipelineSpecs(32)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	sc := NewScratch()
	var first resultKey
	for i := 0; i < 3; i++ {
		net, err := New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.RunScratch(specs, Options{}, sc)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = keyOf(res)
			continue
		}
		if keyOf(res) != first {
			t.Fatalf("run %d with reused scratch differs: %+v != %+v", i, keyOf(res), first)
		}
	}
	net, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.RunScratch(specs, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(res) != first {
		t.Fatalf("nil-scratch run differs from reused-scratch run: %+v != %+v", keyOf(res), first)
	}
}

// TestCopyMatrixSaturates verifies the uint16 overflow guard: counts pin
// at 65535 instead of wrapping, in both Add and Merge, and a saturated
// cell still fails VerifyATA so the overflow is loud.
func TestCopyMatrixSaturates(t *testing.T) {
	cm := NewCopyMatrix(2)
	for i := 0; i < math.MaxUint16+100; i++ {
		cm.Add(0, 1)
	}
	if got := cm.Get(0, 1); got != math.MaxUint16 {
		t.Fatalf("Add wrapped: count = %d, want %d", got, math.MaxUint16)
	}
	if err := cm.VerifyATA(100); err == nil {
		t.Fatal("VerifyATA accepted a saturated cell")
	}

	a, b := NewCopyMatrix(2), NewCopyMatrix(2)
	for i := 0; i < math.MaxUint16-1; i++ {
		a.Add(1, 0)
		b.Add(1, 0)
	}
	a.Merge(b)
	if got := a.Get(1, 0); got != math.MaxUint16 {
		t.Fatalf("Merge wrapped: count = %d, want %d", got, math.MaxUint16)
	}
	// A merge that stays in range must remain exact.
	c, d := NewCopyMatrix(2), NewCopyMatrix(2)
	c.Add(0, 1)
	d.Add(0, 1)
	d.Add(0, 1)
	c.Merge(d)
	if got := c.Get(0, 1); got != 3 {
		t.Fatalf("in-range merge: count = %d, want 3", got)
	}
}
