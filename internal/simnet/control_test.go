package simnet

import (
	"testing"

	"ihc/internal/topology"
)

// lineGraph builds a path 0–1–…–(n-1).
func lineGraph(n int) *topology.Graph {
	g := topology.New("line", n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(topology.Node(i), topology.Node(i+1))
	}
	return g
}

// recController records every callback and optionally injects a packet
// when a designated timer token fires.
type recController struct {
	rt         *Runtime
	attached   int
	specsSeen  int
	delivers   []Delivery
	timers     []Time
	tokens     []int64
	injectOn   int64 // token that triggers injectSpec (0 = never)
	injectSpec PacketSpec
	injectIdx  int32
	injectErr  error
}

func (c *recController) Attach(rt *Runtime, specs []PacketSpec) {
	c.rt = rt
	c.attached++
	c.specsSeen = len(specs)
}

func (c *recController) OnDeliver(pkt int32, node topology.Node, at Time) {
	c.delivers = append(c.delivers, Delivery{ID: c.rt.Spec(pkt).ID, Node: node, At: at})
}

func (c *recController) OnTimer(at Time, token int64) {
	c.timers = append(c.timers, at)
	c.tokens = append(c.tokens, token)
	if c.injectOn != 0 && token == c.injectOn {
		c.injectIdx, c.injectErr = c.rt.Inject(c.injectSpec)
	}
}

func TestControllerTimerOrderingAndClamp(t *testing.T) {
	g := lineGraph(3)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	net, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctl := &recController{}
	spec := PacketSpec{
		ID:     PacketID{Source: 0, Channel: 0, Seq: 0},
		Route:  []topology.Node{0, 1, 2},
		Inject: 0, Tee: true,
	}
	// Timers at 1 (future), 0 (boundary), and one set from OnTimer in the
	// past, which must clamp to the firing time instead of time-traveling.
	wrap := &timerSetter{inner: ctl, at: []Time{1, 0}, tokens: []int64{2, 1}, pastToken: 3}
	res, err := net.Run([]PacketSpec{spec}, Options{Control: wrap, RecordDeliveries: true})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.attached != 1 || ctl.specsSeen != 1 {
		t.Fatalf("attach=%d specs=%d, want 1/1", ctl.attached, ctl.specsSeen)
	}
	// Tokens arrive in (time, seq) order: 1 at t=0, then the past timer
	// (set while handling token 1) clamped to t=0, then 2 at t=1.
	wantTokens := []int64{1, 3, 2}
	if len(ctl.tokens) != 3 {
		t.Fatalf("got %d timer firings (%v), want 3", len(ctl.tokens), ctl.tokens)
	}
	for i, w := range wantTokens {
		if ctl.tokens[i] != w {
			t.Fatalf("timer order %v, want %v", ctl.tokens, wantTokens)
		}
	}
	if ctl.timers[1] != 0 {
		t.Fatalf("past timer fired at %d, want clamped to 0", ctl.timers[1])
	}
	// Deliveries observed by the controller match the recorded log.
	if len(ctl.delivers) != len(res.Deliveriesv) {
		t.Fatalf("controller saw %d deliveries, engine recorded %d", len(ctl.delivers), len(res.Deliveriesv))
	}
	for i := range ctl.delivers {
		if ctl.delivers[i] != res.Deliveriesv[i] {
			t.Fatalf("delivery %d: controller %+v vs engine %+v", i, ctl.delivers[i], res.Deliveriesv[i])
		}
	}
}

// timerSetter decorates a recController: sets its timers during Attach,
// and from the first OnTimer sets one timer in the past to exercise the
// clamp.
type timerSetter struct {
	inner     *recController
	at        []Time
	tokens    []int64
	pastToken int64
	setPast   bool
}

func (w *timerSetter) Attach(rt *Runtime, specs []PacketSpec) {
	w.inner.Attach(rt, specs)
	for i, at := range w.at {
		rt.SetTimer(at, w.tokens[i])
	}
}
func (w *timerSetter) OnDeliver(pkt int32, node topology.Node, at Time) {
	w.inner.OnDeliver(pkt, node, at)
}
func (w *timerSetter) OnTimer(at Time, token int64) {
	w.inner.OnTimer(at, token)
	if !w.setPast {
		w.setPast = true
		w.inner.rt.SetTimer(at-1000, w.pastToken)
	}
}

func TestRuntimeInjectMidRun(t *testing.T) {
	g := lineGraph(4)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	net, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctl := &recController{
		injectOn: 7,
		injectSpec: PacketSpec{
			ID:    PacketID{Source: 1, Channel: 1, Seq: 5},
			Route: []topology.Node{1, 2, 3},
			Tee:   true,
		},
	}
	wrap := &timerSetter{inner: ctl, at: []Time{500}, tokens: []int64{7}, pastToken: 9}
	spec := PacketSpec{
		ID:    PacketID{Source: 0, Channel: 0, Seq: 0},
		Route: []topology.Node{0, 1},
	}
	res, err := net.Run([]PacketSpec{spec}, Options{Control: wrap, RecordDeliveries: true})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.injectErr != nil {
		t.Fatalf("inject: %v", ctl.injectErr)
	}
	if ctl.injectIdx != 1 {
		t.Fatalf("injected index %d, want 1", ctl.injectIdx)
	}
	// The injected packet's inject time clamps to the timer firing time,
	// and both its tee copy (node 2) and final copy (node 3) deliver.
	got := map[topology.Node]Time{}
	for _, d := range res.Deliveriesv {
		if d.ID.Seq == 5 {
			got[d.Node] = d.At
		}
	}
	if len(got) != 2 {
		t.Fatalf("injected packet delivered at %v, want nodes 2 and 3", got)
	}
	// Inject at 500 (clamped), startup 100 → depart 600, tail at node 2
	// at 640; the header cuts through at 600+α=620, tail at node 3 at 660.
	if got[2] != 640 {
		t.Errorf("node 2 copy at %d, want 640", got[2])
	}
	if got[3] != 660 {
		t.Errorf("node 3 copy at %d, want 660", got[3])
	}
	if res.Injections != 2 {
		t.Errorf("Injections = %d, want 2", res.Injections)
	}
}

func TestRuntimeInjectRejectsBadRoutes(t *testing.T) {
	g := lineGraph(3)
	net, err := New(g, Params{}.Defaulted())
	if err != nil {
		t.Fatal(err)
	}
	bad := []PacketSpec{
		{ID: PacketID{Seq: 1}, Route: []topology.Node{0}},                     // too short
		{ID: PacketID{Seq: 2}, Route: []topology.Node{0, 2}},                  // not an edge
		{ID: PacketID{Seq: 3}, Route: []topology.Node{0, 1, 0, 1}},            // duplicate directed link
		{ID: PacketID{Seq: 4}, Route: []topology.Node{0, 1}, After: []int{0}}, // dependencies unsupported
	}
	inj := &badInjector{specs: bad}
	spec := PacketSpec{ID: PacketID{}, Route: []topology.Node{0, 1}}
	if _, err := net.Run([]PacketSpec{spec}, Options{Control: inj}); err != nil {
		t.Fatal(err)
	}
	if len(inj.errs) != len(bad) {
		t.Fatalf("got %d inject results, want %d", len(inj.errs), len(bad))
	}
	for i, e := range inj.errs {
		if e == nil {
			t.Errorf("bad spec %d (Seq %d) was accepted", i, bad[i].ID.Seq)
		}
	}
	// A valid injection after the rejected ones still works (the arc
	// buffer rolled back cleanly).
	if inj.okErr != nil {
		t.Fatalf("valid inject after rejects: %v", inj.okErr)
	}
}

type badInjector struct {
	rt    *Runtime
	specs []PacketSpec
	errs  []error
	okErr error
}

func (b *badInjector) Attach(rt *Runtime, specs []PacketSpec) {
	b.rt = rt
	rt.SetTimer(0, 1)
}
func (b *badInjector) OnDeliver(pkt int32, node topology.Node, at Time) {}
func (b *badInjector) OnTimer(at Time, token int64) {
	if token != 1 {
		return
	}
	for _, s := range b.specs {
		_, err := b.rt.Inject(s)
		b.errs = append(b.errs, err)
	}
	_, b.okErr = b.rt.Inject(PacketSpec{ID: PacketID{Seq: 99}, Route: []topology.Node{1, 2}})
}

// TestControllerNoOpIdentical: attaching a controller that only watches
// (no injections) leaves the delivery stream byte-identical.
func TestControllerNoOpIdentical(t *testing.T) {
	g := topology.MustSquareTorus(4)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37, Rho: 0.3, Seed: 42}
	specs := func(net *Network) []PacketSpec {
		var out []PacketSpec
		// Every node sends a packet two hops to the right along its row.
		for u := 0; u < 16; u++ {
			r := u / 4 * 4
			out = append(out, PacketSpec{
				ID:    PacketID{Source: topology.Node(u), Seq: 0},
				Route: []topology.Node{topology.Node(u), topology.Node(r + (u+1)%4), topology.Node(r + (u+2)%4)},
				Tee:   true,
			})
		}
		return out
	}
	net1, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := net1.Run(specs(net1), Options{RecordDeliveries: true})
	if err != nil {
		t.Fatal(err)
	}
	net2, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctl := &recController{}
	watched, err := net2.Run(specs(net2), Options{RecordDeliveries: true, Control: ctl})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Deliveriesv) != len(watched.Deliveriesv) {
		t.Fatalf("delivery counts differ: %d vs %d", len(base.Deliveriesv), len(watched.Deliveriesv))
	}
	for i := range base.Deliveriesv {
		if base.Deliveriesv[i] != watched.Deliveriesv[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, base.Deliveriesv[i], watched.Deliveriesv[i])
		}
	}
	if base.Finish != watched.Finish {
		t.Fatalf("finish differs: %d vs %d", base.Finish, watched.Finish)
	}
}
