package simnet

import "sync"

// Scratch holds the reusable working memory of one simulation run: the
// calendar queue's bucket ring and overflow heap, the compiled per-spec
// routes, and the dependency bookkeeping. Reusing a Scratch across runs
// makes the
// steady-state event loop allocation-free; results are bit-identical
// with or without reuse.
//
// A Scratch may serve any number of sequential runs on any networks, but
// must never be shared by concurrent runs — each worker goroutine of a
// parallel sweep owns its own (see internal/harness/pool.go). The zero
// value is ready to use.
type Scratch struct {
	st runState
	// shards holds the per-worker states of sharded runs (EngineWorkers
	// > 1); each keeps its own calendar queue, counters, and merge
	// buffers across runs, so sharded steady state reuses memory like
	// the sequential path does.
	shards []*shard
}

// shardSlots returns w reusable shard slots, growing the slice as
// needed. Slots keep their backing arrays between runs.
func (sc *Scratch) shardSlots(w int) []*shard {
	for len(sc.shards) < w {
		sc.shards = append(sc.shards, &shard{})
	}
	return sc.shards[:w]
}

// NewScratch returns an empty scratch; capacity grows on first use and
// is retained for subsequent runs.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs Network.Run for callers that do not manage scratch
// explicitly; sync.Pool's per-P caching gives those callers per-worker
// reuse for free.
var scratchPool = sync.Pool{New: func() interface{} { return NewScratch() }}

// growInt32 returns a slice of length n, reusing s's backing array when
// it is large enough. Contents are unspecified.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growArcLists returns a slice of n route windows, reusing the outer
// backing array when large enough. Contents are unspecified; route
// compilation overwrites every entry.
func growArcLists(s [][]int32, n int) [][]int32 {
	if cap(s) < n {
		return make([][]int32, n)
	}
	return s[:n]
}

// growTimes is growInt32 for Time slices.
func growTimes(s []Time, n int) []Time {
	if cap(s) < n {
		return make([]Time, n)
	}
	return s[:n]
}

// growBools is growInt32 for bool slices.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// resetLists returns a slice of n empty sub-slices, retaining both the
// outer backing array and every sub-slice's capacity from prior runs —
// the slice-of-slices replacement for a freshly allocated map per run.
func resetLists(s [][]int32, n int) [][]int32 {
	if cap(s) < n {
		ns := make([][]int32, n)
		copy(ns, s[:cap(s)])
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}
