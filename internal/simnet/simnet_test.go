package simnet

import (
	"strings"
	"testing"
	"testing/quick"

	"ihc/internal/topology"
)

func dedicated(mu int) Params {
	return Params{TauS: 100, Alpha: 20, Mu: mu, D: 37, Mode: VirtualCutThrough}
}

// pathRoute returns the route 0 -> 1 -> ... -> h along a cycle graph.
func pathRoute(h int) []topology.Node {
	r := make([]topology.Node, h+1)
	for i := range r {
		r[i] = topology.Node(i)
	}
	return r
}

func mustRun(t *testing.T, g *topology.Graph, p Params, specs []PacketSpec, o Options) *Result {
	t.Helper()
	n, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(specs, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParamsValidate(t *testing.T) {
	good := dedicated(2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{TauS: -1, Alpha: 1, Mu: 1},
		{TauS: 0, Alpha: 0, Mu: 1},
		{TauS: 0, Alpha: 1, Mu: 0},
		{TauS: 0, Alpha: 1, Mu: 1, D: -5},
		{TauS: 0, Alpha: 1, Mu: 1, Rho: 1.0},
		{TauS: 0, Alpha: 1, Mu: 1, Rho: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted: %+v", i, p)
		}
	}
}

// A single packet over h hops in an otherwise empty cut-through network
// finishes at τ_S + (h-1)α + μα: one startup, h-1 cut-throughs, and the
// pipelined transmission — the paper's per-stage accounting.
func TestSinglePacketCutThroughTiming(t *testing.T) {
	g := topology.MustCycle(12)
	for _, mu := range []int{1, 2, 4} {
		for h := 1; h <= 11; h++ {
			p := dedicated(mu)
			res := mustRun(t, g, p, []PacketSpec{{
				ID:    PacketID{Source: 0},
				Route: pathRoute(h),
			}}, Options{})
			want := p.TauS + Time(h-1)*p.Alpha + p.PacketTime()
			if res.Finish != want {
				t.Fatalf("μ=%d h=%d: finish = %d, want %d", mu, h, res.Finish, want)
			}
			if res.CutThroughs != h-1 || res.BufferedHops != 0 || res.Contentions != 0 {
				t.Fatalf("μ=%d h=%d: cuts=%d buf=%d cont=%d", mu, h, res.CutThroughs, res.BufferedHops, res.Contentions)
			}
		}
	}
}

// The same packet under store-and-forward costs h(τ_S + μα).
func TestSinglePacketStoreAndForwardTiming(t *testing.T) {
	g := topology.MustCycle(12)
	for _, mu := range []int{1, 3} {
		for h := 1; h <= 11; h++ {
			p := dedicated(mu)
			p.Mode = StoreAndForward
			res := mustRun(t, g, p, []PacketSpec{{
				ID:    PacketID{Source: 0},
				Route: pathRoute(h),
			}}, Options{})
			want := Time(h) * (p.TauS + p.PacketTime())
			if res.Finish != want {
				t.Fatalf("μ=%d h=%d: finish = %d, want %d", mu, h, res.Finish, want)
			}
			if res.CutThroughs != 0 {
				t.Fatalf("S&F performed cut-throughs")
			}
		}
	}
}

// Saturated mode reproduces the worst-case per-hop cost τ_S + μα + D of
// the paper's Table IV analysis.
func TestSinglePacketSaturatedTiming(t *testing.T) {
	g := topology.MustCycle(12)
	p := dedicated(2)
	for h := 1; h <= 11; h++ {
		res := mustRun(t, g, p, []PacketSpec{{
			ID:    PacketID{Source: 0},
			Route: pathRoute(h),
		}}, Options{Saturated: true})
		want := Time(h) * (p.TauS + p.PacketTime() + p.D)
		if res.Finish != want {
			t.Fatalf("h=%d: finish = %d, want %d", h, res.Finish, want)
		}
	}
}

// Wormhole and virtual cut-through are identical in an uncontended
// network.
func TestWormholeMatchesVCTWhenDedicated(t *testing.T) {
	g := topology.MustCycle(10)
	pv := dedicated(2)
	pw := dedicated(2)
	pw.Mode = Wormhole
	spec := []PacketSpec{{ID: PacketID{Source: 0}, Route: pathRoute(9), Tee: true}}
	rv := mustRun(t, g, pv, spec, Options{})
	rw := mustRun(t, g, pw, spec, Options{})
	if rv.Finish != rw.Finish || rv.CutThroughs != rw.CutThroughs {
		t.Fatalf("VCT %d/%d vs wormhole %d/%d", rv.Finish, rv.CutThroughs, rw.Finish, rw.CutThroughs)
	}
}

func TestTeeDeliversToEveryNodeOnRoute(t *testing.T) {
	g := topology.MustCycle(8)
	p := dedicated(2)
	res := mustRun(t, g, p, []PacketSpec{{
		ID:    PacketID{Source: 0},
		Route: pathRoute(7),
		Tee:   true,
	}}, Options{Copies: true, RecordDeliveries: true})
	if res.Deliveries != 7 {
		t.Fatalf("deliveries = %d, want 7", res.Deliveries)
	}
	for v := topology.Node(1); v <= 7; v++ {
		if res.Copies.Get(v, 0) != 1 {
			t.Fatalf("node %d got %d copies", v, res.Copies.Get(v, 0))
		}
	}
	// Tee delivery at node i happens when the tail passes: τ_S + (i-1)α + μα.
	for _, d := range res.Deliveriesv {
		i := Time(d.Node)
		want := p.TauS + (i-1)*p.Alpha + p.PacketTime()
		if d.At != want {
			t.Fatalf("delivery at node %d: t=%d, want %d", d.Node, d.At, want)
		}
	}
}

func TestWithoutTeeOnlyFinalNodeReceives(t *testing.T) {
	g := topology.MustCycle(8)
	res := mustRun(t, g, dedicated(1), []PacketSpec{{
		ID:    PacketID{Source: 0},
		Route: pathRoute(5),
	}}, Options{Copies: true})
	if res.Deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1", res.Deliveries)
	}
	if res.Copies.Get(5, 0) != 1 || res.Copies.Get(3, 0) != 0 {
		t.Fatalf("copies wrong: final=%d mid=%d", res.Copies.Get(5, 0), res.Copies.Get(3, 0))
	}
}

// Two packets racing for the same link: the second is blocked, buffered,
// and the contention is counted.
func TestContentionDetectedAndResolved(t *testing.T) {
	// Path graph fragment of a cycle: both packets need link 2->3.
	g := topology.MustCycle(8)
	p := dedicated(2)
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 2, 3, 4}},
		{ID: PacketID{Source: 2, Channel: 1}, Route: []topology.Node{2, 3, 4, 5}, Inject: 10},
	}
	res := mustRun(t, g, p, specs, Options{Trace: true})
	if res.Contentions == 0 {
		t.Fatalf("expected contention on link 2->3")
	}
	// Packet 0 reaches link 2->3 at τ_S+2α (header) while packet 1
	// occupies it from τ_S to τ_S+μα; with α=20, μα=40, packet 0's
	// request at τ_S+40 collides exactly at the boundary... ensure both
	// packets still complete and the blocked one was buffered or delayed.
	if res.Deliveries != 2 {
		t.Fatalf("deliveries = %d", res.Deliveries)
	}
	if res.BufferedHops == 0 {
		t.Fatalf("blocked packet was never buffered")
	}
}

// Interleaved pipeline: packets injected μ nodes apart on a ring never
// contend (the IHC invariant at η = μ), but injected closer they do.
func TestRingPipelineContentionBoundary(t *testing.T) {
	const n = 24
	g := topology.MustCycle(n)
	route := func(src int) []topology.Node {
		r := make([]topology.Node, n)
		for i := range r {
			r[i] = topology.Node((src + i) % n)
		}
		return r
	}
	for _, mu := range []int{1, 2, 3, 4} {
		for _, eta := range []int{1, 2, 3, 4, 6} {
			if n%eta != 0 {
				continue
			}
			p := dedicated(mu)
			var specs []PacketSpec
			for s := 0; s < n; s += eta {
				specs = append(specs, PacketSpec{
					ID:    PacketID{Source: topology.Node(s)},
					Route: route(s),
					Tee:   true,
				})
			}
			res := mustRun(t, g, p, specs, Options{})
			if eta >= mu && res.Contentions != 0 {
				t.Fatalf("μ=%d η=%d: unexpected contentions %d", mu, eta, res.Contentions)
			}
			if eta < mu && res.Contentions == 0 {
				t.Fatalf("μ=%d η=%d: expected contention, got none", mu, eta)
			}
		}
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	g := topology.MustCycle(6)
	n, err := New(g, dedicated(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := []PacketSpec{
		{ID: PacketID{}, Route: []topology.Node{0}},
		{ID: PacketID{}, Route: []topology.Node{0, 2}}, // not adjacent
		{ID: PacketID{}, Route: []topology.Node{0, 1}, Inject: -1},
	}
	for i, s := range bad {
		if _, err := n.Run([]PacketSpec{s}, Options{}); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := topology.MustSquareTorus(4)
	p := dedicated(2)
	p.Rho = 0.3
	p.Seed = 42
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 2, 3}, Tee: true},
		{ID: PacketID{Source: 5, Channel: 1}, Route: []topology.Node{5, 1, 2, 6}, Tee: true},
		{ID: PacketID{Source: 12, Channel: 2}, Route: []topology.Node{12, 13, 14, 2, 1}, Tee: true},
	}
	run := func() *Result { return mustRun(t, g, p, specs, Options{RecordDeliveries: true}) }
	a, b := run(), run()
	if a.Finish != b.Finish || a.Deliveries != b.Deliveries || a.BgBlocked != b.BgBlocked {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Deliveriesv {
		if a.Deliveriesv[i] != b.Deliveriesv[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a.Deliveriesv[i], b.Deliveriesv[i])
		}
	}
}

func TestBackgroundTrafficDelaysPackets(t *testing.T) {
	g := topology.MustCycle(32)
	clean := dedicated(2)
	loaded := dedicated(2)
	loaded.Rho = 0.6
	loaded.Seed = 7
	spec := []PacketSpec{{ID: PacketID{Source: 0}, Route: pathRoute(31), Tee: true}}
	rc := mustRun(t, g, clean, spec, Options{})
	rl := mustRun(t, g, loaded, spec, Options{})
	if rl.Finish <= rc.Finish {
		t.Fatalf("ρ=0.6 finish %d not slower than dedicated %d", rl.Finish, rc.Finish)
	}
	if rl.BgBlocked == 0 {
		t.Fatalf("no background blocking recorded at ρ=0.6 over 31 hops")
	}
	// And the loaded run is still bounded by the all-buffered worst case.
	worst := Time(31) * (loaded.TauS + loaded.PacketTime() + loaded.D)
	// Background holding times can exceed D, so allow the generous bound
	// of worst case plus total background busy time.
	if rl.Finish > 10*worst {
		t.Fatalf("loaded finish %d implausibly large (worst-case %d)", rl.Finish, worst)
	}
}

func TestChainedRunsKeepLinkState(t *testing.T) {
	g := topology.MustCycle(6)
	n, err := New(g, dedicated(2))
	if err != nil {
		t.Fatal(err)
	}
	// First run occupies link 0->1 up to τ_S+μα.
	r1, err := n.Run([]PacketSpec{{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Second run injects at 0 again on the same link: must queue behind.
	r2, err := n.Run([]PacketSpec{{ID: PacketID{Source: 0, Seq: 1}, Route: []topology.Node{0, 1}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Contentions != 1 {
		t.Fatalf("second run saw %d contentions, want 1", r2.Contentions)
	}
	if r2.Finish <= r1.Finish {
		t.Fatalf("second packet finished at %d, not after %d", r2.Finish, r1.Finish)
	}
}

func TestCopyMatrixVerifyATA(t *testing.T) {
	cm := NewCopyMatrix(3)
	for r := topology.Node(0); r < 3; r++ {
		for s := topology.Node(0); s < 3; s++ {
			if r != s {
				cm.Add(r, s)
				cm.Add(r, s)
			}
		}
	}
	if err := cm.VerifyATA(2); err != nil {
		t.Fatal(err)
	}
	if cm.MinCopies() != 2 {
		t.Fatalf("MinCopies = %d", cm.MinCopies())
	}
	if err := cm.VerifyATA(3); err == nil {
		t.Fatalf("VerifyATA(3) should fail")
	}
	cm.Add(1, 1)
	if err := cm.VerifyATA(2); err == nil {
		t.Fatalf("self-copy not detected")
	}
}

func TestResultUtilization(t *testing.T) {
	r := &Result{Finish: 100, LinkBusy: 400}
	if u := r.Utilization(8); u != 0.5 {
		t.Fatalf("utilization = %g", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("zero links utilization = %g", u)
	}
	empty := &Result{}
	if u := empty.Utilization(8); u != 0 {
		t.Fatalf("empty utilization = %g", u)
	}
}

func TestModeAndHopKindStrings(t *testing.T) {
	if VirtualCutThrough.String() == "" || StoreAndForward.String() == "" || Wormhole.String() == "" {
		t.Fatal("empty mode string")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode string empty")
	}
	for _, k := range []HopKind{HopInject, HopCut, HopBuffer, HopStall, HopKind(42)} {
		if k.String() == "" {
			t.Fatal("empty hop kind string")
		}
	}
	if (PacketID{Source: 3, Channel: 1, Seq: 2}).String() == "" {
		t.Fatal("empty packet id string")
	}
}

// Property: for random hop counts and μ, cut-through is never slower than
// store-and-forward, and saturated is never faster than either.
func TestQuickModeOrdering(t *testing.T) {
	g := topology.MustCycle(16)
	f := func(hRaw, muRaw uint8) bool {
		h := int(hRaw)%15 + 1
		mu := int(muRaw)%4 + 1
		spec := []PacketSpec{{ID: PacketID{Source: 0}, Route: pathRoute(h)}}
		pv := dedicated(mu)
		ps := dedicated(mu)
		ps.Mode = StoreAndForward
		nv, _ := New(g, pv)
		ns, _ := New(g, ps)
		nsat, _ := New(g, pv)
		rv, err1 := nv.Run(spec, Options{})
		rs, err2 := ns.Run(spec, Options{})
		rsat, err3 := nsat.Run(spec, Options{Saturated: true})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return rv.Finish <= rs.Finish && rs.Finish <= rsat.Finish
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the trace of a dedicated single-packet run is internally
// consistent: hops are contiguous, departures non-decreasing, first hop is
// an injection, later hops cut-throughs.
func TestQuickTraceConsistency(t *testing.T) {
	g := topology.MustCycle(16)
	f := func(hRaw uint8) bool {
		h := int(hRaw)%15 + 1
		p := dedicated(2)
		n, _ := New(g, p)
		res, err := n.Run([]PacketSpec{{ID: PacketID{Source: 0}, Route: pathRoute(h)}}, Options{Trace: true})
		if err != nil {
			return false
		}
		trace := res.Traces[PacketID{Source: 0}]
		if len(trace) != h {
			return false
		}
		for i, hop := range trace {
			if i == 0 && hop.Kind != HopInject {
				return false
			}
			if i > 0 {
				if hop.Kind != HopCut {
					return false
				}
				if hop.From != trace[i-1].To {
					return false
				}
				if hop.HeaderDepart < trace[i-1].HeaderDepart {
					return false
				}
			}
			if hop.TailArrive != hop.HeaderDepart+p.PacketTime() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDependencyInjection(t *testing.T) {
	g := topology.MustCycle(8)
	p := dedicated(2)
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: pathRoute(3), Tee: true},
		// Redirect at node 2: starts once packet 0 delivers there.
		{ID: PacketID{Source: 2, Channel: 1}, Route: []topology.Node{2, 3, 4}, After: []int{0}},
	}
	res := mustRun(t, g, p, specs, Options{Trace: true})
	// Packet 0 tees at node 2 at τ_S + α + μα; packet 1 injects then,
	// departs τ_S later.
	tee := p.TauS + p.Alpha + p.PacketTime()
	tr := res.Traces[PacketID{Source: 2, Channel: 1}]
	if len(tr) != 2 {
		t.Fatalf("child trace has %d hops", len(tr))
	}
	if tr[0].HeaderDepart != tee+p.TauS {
		t.Fatalf("child departed at %d, want %d", tr[0].HeaderDepart, tee+p.TauS)
	}
}

func TestDependencyMultipleParentsUsesLatest(t *testing.T) {
	g := topology.MustCycle(8)
	p := dedicated(1)
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 2}, Tee: true},
		{ID: PacketID{Source: 4, Channel: 1}, Route: []topology.Node{4, 3, 2}, Inject: 500, Tee: true},
		// Merge at node 2 after both arrive, with 25 extra ticks of
		// processing.
		{ID: PacketID{Source: 2, Channel: 2}, Route: []topology.Node{2, 3}, After: []int{0, 1}, Inject: 25},
	}
	res := mustRun(t, g, p, specs, Options{Trace: true})
	// Parent 1 arrives at 2 at 500+τ_S+α+μα; child departs +25+τ_S.
	arrive := Time(500) + p.TauS + p.Alpha + p.PacketTime()
	tr := res.Traces[PacketID{Source: 2, Channel: 2}]
	if tr[0].HeaderDepart != arrive+25+p.TauS {
		t.Fatalf("merge departed at %d, want %d", tr[0].HeaderDepart, arrive+25+p.TauS)
	}
	if res.Injections != 3 {
		t.Fatalf("injections = %d", res.Injections)
	}
}

func TestDependencyNeverSatisfiedIsError(t *testing.T) {
	g := topology.MustCycle(8)
	n, err := New(g, dedicated(1))
	if err != nil {
		t.Fatal(err)
	}
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1}}, // delivers only at 1
		{ID: PacketID{Source: 5, Channel: 1}, Route: []topology.Node{5, 6}, After: []int{0}},
	}
	if _, err := n.Run(specs, Options{}); err == nil {
		t.Fatal("unsatisfiable dependency accepted")
	}
	// Cyclic dependencies must also error, not hang.
	cyc := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1}, After: []int{1}},
		{ID: PacketID{Source: 1, Channel: 1}, Route: []topology.Node{1, 0}, After: []int{0}},
	}
	if _, err := n.Run(cyc, Options{}); err == nil {
		t.Fatal("cyclic dependency accepted")
	}
	// Out-of-range and self dependencies are rejected up front.
	bad := []PacketSpec{{ID: PacketID{}, Route: []topology.Node{0, 1}, After: []int{5}}}
	if _, err := n.Run(bad, Options{}); err == nil {
		t.Fatal("out-of-range dependency accepted")
	}
	self := []PacketSpec{{ID: PacketID{}, Route: []topology.Node{0, 1}, After: []int{0}}}
	if _, err := n.Run(self, Options{}); err == nil {
		t.Fatal("self dependency accepted")
	}
}

func TestDependencyCycleReportedUpfront(t *testing.T) {
	g := topology.MustCycle(8)
	n, err := New(g, dedicated(1))
	if err != nil {
		t.Fatal(err)
	}
	// A 3-cycle hidden behind a clean prefix: detection must be up front
	// (Kahn), not a post-run "never injected" symptom, and must name the
	// cycle.
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1}},
		{ID: PacketID{Source: 1, Channel: 1}, Route: []topology.Node{1, 2}, After: []int{2}},
		{ID: PacketID{Source: 2, Channel: 2}, Route: []topology.Node{2, 3}, After: []int{3}},
		{ID: PacketID{Source: 3, Channel: 3}, Route: []topology.Node{3, 4}, After: []int{1}},
	}
	_, err = n.Run(specs, Options{})
	if err == nil {
		t.Fatal("cyclic dependency accepted")
	}
	if !strings.Contains(err.Error(), "dependency cycle") {
		t.Fatalf("error does not name the cycle: %v", err)
	}
}

func TestDuplicateRouteArcRejected(t *testing.T) {
	g := topology.MustCycle(8)
	n, err := New(g, dedicated(1))
	if err != nil {
		t.Fatal(err)
	}
	// 0→1 is used twice: the second traversal would silently corrupt the
	// link's busy-time bookkeeping, so it must be rejected.
	specs := []PacketSpec{{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 0, 1}}}
	if _, err := n.Run(specs, Options{}); err == nil {
		t.Fatal("route with duplicate directed arc accepted")
	}
	// Revisiting a node over distinct arcs stays legal (0→1, 1→2, 2→1).
	ok := []PacketSpec{{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 2, 1}}}
	if _, err := n.Run(ok, Options{}); err != nil {
		t.Fatalf("node-revisiting route rejected: %v", err)
	}
}

func TestDuplicateAfterEntryRejected(t *testing.T) {
	g := topology.MustCycle(8)
	n, err := New(g, dedicated(1))
	if err != nil {
		t.Fatal(err)
	}
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1}},
		{ID: PacketID{Source: 1, Channel: 1}, Route: []topology.Node{1, 2}, After: []int{0, 0}},
	}
	if _, err := n.Run(specs, Options{}); err == nil {
		t.Fatal("duplicate After entry accepted")
	}
}

// A parent whose route revisits the child's start node delivers there
// twice. The seed bug counted both deliveries against the child's pending
// total, releasing it before its other parent had arrived.
func TestDuplicateParentDeliveryDoesNotReleaseChild(t *testing.T) {
	g := topology.MustCycle(8)
	p := dedicated(1)
	specs := []PacketSpec{
		// Delivers at node 1 twice: mid-route tee and final delivery.
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 2, 1}, Tee: true},
		// The slow second parent, arriving at node 1 much later.
		{ID: PacketID{Source: 3, Channel: 1}, Route: []topology.Node{3, 2, 1}, Inject: 1000, Tee: true},
		{ID: PacketID{Source: 1, Channel: 2}, Route: []topology.Node{1, 0}, After: []int{0, 1}},
	}
	res := mustRun(t, g, p, specs, Options{Trace: true})
	// Parent 1 reaches node 1 at 1000 + τ_S + α + μα; only then may the
	// child start, τ_S later.
	arrive := Time(1000) + p.TauS + p.Alpha + p.PacketTime()
	tr := res.Traces[PacketID{Source: 1, Channel: 2}]
	if len(tr) != 1 {
		t.Fatalf("child trace has %d hops", len(tr))
	}
	if tr[0].HeaderDepart != arrive+p.TauS {
		t.Fatalf("child departed at %d, want %d (released by a duplicate delivery of parent 0?)",
			tr[0].HeaderDepart, arrive+p.TauS)
	}
}

func TestParamsDefaulted(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   Params
		want Params
	}{
		{"zero gets all defaults", Params{}, Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}},
		{"full is untouched", Params{TauS: 1, Alpha: 2, Mu: 3, D: 4}, Params{TauS: 1, Alpha: 2, Mu: 3, D: 4}},
		{"partial keeps given fields", Params{TauS: 7}, Params{TauS: 7, Alpha: 20, Mu: 2, D: 0}},
		{"zero taus and d survive", Params{TauS: 0, Alpha: 5, Mu: 1, D: 0}, Params{Alpha: 5, Mu: 1}},
	} {
		if got := tc.in.Defaulted(); got != tc.want {
			t.Errorf("%s: Defaulted() = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestResultCountsEvents(t *testing.T) {
	g := topology.MustCycle(8)
	res := mustRun(t, g, dedicated(2), []PacketSpec{
		{ID: PacketID{Source: 0}, Route: pathRoute(4), Tee: true},
	}, Options{})
	if res.Events <= 0 {
		t.Fatalf("Events = %d, want > 0", res.Events)
	}
}

func TestVariableFlitsTiming(t *testing.T) {
	g := topology.MustCycle(8)
	p := dedicated(2)
	p.Mode = StoreAndForward
	res := mustRun(t, g, p, []PacketSpec{{
		ID:    PacketID{Source: 0},
		Route: pathRoute(2),
		Flits: 7,
	}}, Options{})
	want := 2 * (p.TauS + 7*p.Alpha)
	if res.Finish != want {
		t.Fatalf("finish = %d, want %d", res.Finish, want)
	}
}
