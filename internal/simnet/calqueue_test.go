package simnet

import (
	"math/rand"
	"testing"
)

// The calendar queue's contract is exactly the heap's: pop every pushed
// event in (t, key) order, including events pushed mid-drain. These
// tests run the two side by side on the same event sets — initial
// pushes in arbitrary order (with same-tick collisions and times far
// outside the ring window), plus respawns generated as a pure function
// of each popped event, so both sides make identical spawn decisions —
// and require identical pop sequences.

// spawnedBase separates spawned keys from initial keys: initial events
// get even keys below it (their same-tick respawns the odd immediate
// successors), spawned future events get even keys at or above it and
// never spawn further, bounding the cascade.
const spawnedBase = uint64(1) << 32

// diffSpawner returns a respawn function for one drain side: decisions
// are a pure function of (popped event, salt) so the heap and calendar
// sides agree, while nextKey is side-local — if the pop orders agree,
// the generated keys agree too, and if they diverge the comparison
// fails anyway.
func diffSpawner(salt uint64, nextKey *uint64) func(event) []event {
	return func(ev event) []event {
		if ev.key&1 == 1 || ev.key >= spawnedBase {
			return nil
		}
		h := splitmix64(uint64(ev.t)*1000003 ^ ev.key ^ salt)
		var out []event
		if h&7 == 0 {
			// Same-tick respawn with the immediate-successor key — the
			// shape of the engine's blocked-cut-through fallback.
			out = append(out, event{t: ev.t, key: ev.key + 1})
		}
		if h&0x300 == 0 {
			// Future respawn, up to thousands of ticks ahead: crosses
			// window boundaries and, for small spans, lands in the
			// overflow heap and migrates back as lo advances.
			delta := Time(1 + (h>>16)%3000)
			k := spawnedBase + *nextKey*2
			*nextKey++
			out = append(out, event{t: ev.t + delta, key: k})
		}
		return out
	}
}

// calDrainAll drains q to empty through the batched tick protocol,
// feeding each popped event to spawn and pushing what it returns —
// the same shape as runState.drainUntil.
func calDrainAll(q *calQueue, spawn func(event) []event) []event {
	var out []event
	for {
		tick, ok := q.nextTick()
		if !ok {
			break
		}
		b := q.takeTick(tick)
		for i := range b {
			out = append(out, b[i])
			for _, s := range spawn(b[i]) {
				q.push(s)
			}
			for {
				ev, ok := q.takeSame()
				if !ok {
					break
				}
				out = append(out, ev)
				for _, s := range spawn(ev) {
					q.push(s)
				}
			}
		}
		q.finishTick(tick, b)
	}
	return out
}

// heapDrainAll is the reference: a plain pop loop over the 4-ary heap.
func heapDrainAll(h *eventHeap, spawn func(event) []event) []event {
	var out []event
	for len(h.a) > 0 {
		ev := h.pop()
		out = append(out, ev)
		for _, s := range spawn(ev) {
			h.push(s)
		}
	}
	return out
}

// diffCompare pushes the given initial events into both queues, drains
// both with identically-salted spawners, and requires identical (t,
// key) sequences.
func diffCompare(t *testing.T, span Time, initial []event, salt uint64) {
	t.Helper()
	var q calQueue
	q.reset(span, false)
	var h eventHeap
	for _, ev := range initial {
		q.push(ev)
		h.push(ev)
	}
	var calKeys, heapKeys uint64
	got := calDrainAll(&q, diffSpawner(salt, &calKeys))
	want := heapDrainAll(&h, diffSpawner(salt, &heapKeys))
	if len(got) != len(want) {
		t.Fatalf("calendar popped %d events, heap %d", len(got), len(want))
	}
	for i := range got {
		if got[i].t != want[i].t || got[i].key != want[i].key {
			t.Fatalf("pop %d: calendar (t=%d key=%#x), heap (t=%d key=%#x)",
				i, got[i].t, got[i].key, want[i].t, want[i].key)
		}
	}
	if !q.empty() || q.sameN != len(q.same) {
		t.Fatalf("calendar queue not empty after full drain: ring %d, overflow %d, same %d/%d",
			q.ringN, len(q.over.a), q.sameN, len(q.same))
	}
}

// genInitial builds an initial event set from a deterministic byte
// stream: times cluster on few ticks (collisions), spread over ranges
// far beyond any span (overflow), and arrive in arbitrary order
// (below-lo pushes after the window snapped to an early frontier).
func genInitial(data []byte) []event {
	n := 0
	var evs []event
	for i := 0; i+2 < len(data) && n < 300; i += 3 {
		// Two time regimes from the low bit: dense (collisions on a few
		// ticks) and sparse (tens of thousands of ticks apart).
		tRaw := Time(data[i])<<8 | Time(data[i+1])
		var tt Time
		if data[i+2]&1 == 0 {
			tt = tRaw % 40
		} else {
			tt = tRaw * 7
		}
		evs = append(evs, event{t: tt, key: uint64(n) * 2})
		n++
	}
	return evs
}

func FuzzCalendarQueue(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint64(1), false)
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 2}, uint64(42), true)
	f.Add([]byte{255, 255, 1, 0, 3, 0, 200, 100, 50, 9, 9, 9}, uint64(7), false)
	f.Fuzz(func(t *testing.T, data []byte, salt uint64, small bool) {
		span := Time(512)
		if small {
			// A 64-slot ring forces heavy overflow traffic and repeated
			// migration as lo advances.
			span = 64
		}
		evs := genInitial(data)
		if len(evs) == 0 {
			return
		}
		diffCompare(t, span, evs, salt)
	})
}

// TestCalQueueDifferentialRandom is the deterministic property-test
// cousin of FuzzCalendarQueue: many seeded random event sets, both span
// sizes, heavy same-tick collision rates.
func TestCalQueueDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(200)
		evs := make([]event, n)
		for i := range evs {
			var tt Time
			switch rng.Intn(3) {
			case 0:
				tt = Time(rng.Intn(25)) // dense: many same-tick collisions
			case 1:
				tt = Time(rng.Intn(5000))
			default:
				tt = Time(rng.Intn(200000)) // far beyond any ring span
			}
			evs[i] = event{t: tt, key: uint64(i) * 2}
		}
		span := Time(64)
		if round%2 == 0 {
			span = 1024
		}
		diffCompare(t, span, evs, rng.Uint64())
	}
}

// TestCalQueueHeapMode pins the controller path: in heap mode every
// push routes to the overflow heap and popHeap replays the exact heap
// order, including same-tick timer keys that are not successor-shaped.
func TestCalQueueHeapMode(t *testing.T) {
	var q calQueue
	q.reset(64, true)
	var h eventHeap
	evs := []event{
		{t: 10, key: packetKey(0, 0, evSend)},
		{t: 10, key: timerKeyBit | 0},
		{t: 10, key: timerKeyBit | 1},
		{t: 5, key: packetKey(1, 0, evSend)},
		{t: 10, key: packetKey(1, 1, evCut)},
	}
	for _, ev := range evs {
		q.push(ev)
		h.push(ev)
	}
	for h.a != nil && len(h.a) > 0 {
		if q.heapLen() == 0 {
			t.Fatal("calendar heap mode ran out of events early")
		}
		got, want := q.popHeap(), h.pop()
		if got.t != want.t || got.key != want.key {
			t.Fatalf("heap mode pop (t=%d key=%#x), want (t=%d key=%#x)", got.t, got.key, want.t, want.key)
		}
	}
	if q.heapLen() != 0 {
		t.Fatalf("heap mode retains %d events", q.heapLen())
	}
}

// TestCalQueueReuse pins scratch-style reuse: a queue drained by one
// run (including an aborted, partially-drained state) serves the next
// run with a different span without leaking stale events.
func TestCalQueueReuse(t *testing.T) {
	var q calQueue
	q.reset(64, false)
	for i := 0; i < 50; i++ {
		q.push(event{t: Time(i * 3), key: uint64(i) * 2})
	}
	// Partial drain: take one tick and abandon the rest mid-run.
	tick, ok := q.nextTick()
	if !ok {
		t.Fatal("expected pending events")
	}
	b := q.takeTick(tick)
	q.finishTick(tick, b)

	q.reset(128, false)
	if !q.empty() {
		t.Fatalf("reset queue not empty: ring %d, overflow %d", q.ringN, len(q.over.a))
	}
	q.push(event{t: 7, key: 2})
	q.push(event{t: 7, key: 0})
	got := calDrainAll(&q, func(event) []event { return nil })
	if len(got) != 2 || got[0].key != 0 || got[1].key != 2 {
		t.Fatalf("after reuse popped %v", got)
	}
}

// TestSortBucketSortedFastPath pins the lockstep fast path: an already
// key-sorted bucket must come back untouched, an unsorted one sorted.
func TestSortBucketSortedFastPath(t *testing.T) {
	sorted := []event{{key: 1}, {key: 2}, {key: 5}, {key: 9}}
	sortBucket(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i].key < sorted[i-1].key {
			t.Fatalf("sorted bucket reordered at %d", i)
		}
	}
	unsorted := []event{{key: 9}, {key: 2}, {key: 5}, {key: 1}}
	sortBucket(unsorted)
	for i, want := range []uint64{1, 2, 5, 9} {
		if unsorted[i].key != want {
			t.Fatalf("sortBucket: pos %d key %d, want %d", i, unsorted[i].key, want)
		}
	}
}

// TestSpanForParams pins the sizing rule: a power of two covering twice
// the common spawn offsets, clamped to [64, 8192].
func TestSpanForParams(t *testing.T) {
	cases := []struct {
		p    Params
		want Time
	}{
		{Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}, 512}, // default: 2*(100+40+37+20)=394 → 512
		{Params{TauS: 0, Alpha: 1, Mu: 1, D: 0}, 64},      // tiny: clamps at 64
		{Params{TauS: 100000, Alpha: 20, Mu: 2, D: 37}, 8192},
	}
	for _, tc := range cases {
		if got := spanForParams(tc.p); got != tc.want {
			t.Errorf("spanForParams(%+v) = %d, want %d", tc.p, got, tc.want)
		}
		got := spanForParams(tc.p)
		if got&(got-1) != 0 {
			t.Errorf("span %d not a power of two", got)
		}
	}
}
