package simnet

import (
	"cmp"
	"math"
	"math/bits"
	"slices"
)

// The engine's event queue: a bucketed calendar queue keyed on discrete
// ticks, replacing the comparison-based 4-ary heap on the hot path.
//
// The paper's α-spaced, closed-form schedule (Theorems 3/4) makes event
// timestamps highly clustered: every packet of a stage injects at the
// same instant and then advances one hop per α, so at any moment the
// pending set collapses onto a handful of distinct ticks, each holding a
// burst of events. A calendar queue turns that structure into O(1)
// scheduling work per event — append into the tick's bucket on push,
// one shared sort per bucket on drain — where a heap pays O(log n)
// sifting per event with no credit for the clustering.
//
// Layout. A ring of span one-tick buckets covers the window
// [lo, lo+span); the bucket for tick t is buckets[t&mask]. An occupancy
// bitmap (one bit per slot) lets the scan for the next non-empty tick
// skip 64 slots per word. Events outside the ring window land in an
// overflow min-heap (the old 4-ary eventHeap) and migrate into the ring
// as lo advances past them — correctness never depends on the span,
// only the constant factor does. Drained bucket arrays are recycled
// through a free list instead of staying pinned to their slot: at
// Q14/Q16 scale a tick bucket holds the whole in-flight cohort
// (hundreds of thousands of events), and per-slot retention would
// multiply that by the slot count, while the free list keeps only as
// many burst-sized arrays as there are simultaneously occupied ticks.
//
// Ordering. Within a bucket all events share one tick, so the total
// (t, key) order reduces to the pure event key; the drain sorts the
// bucket by key once and the engine handles it as a flat slice. The one
// spawn that can land on the tick currently being drained — the blocked
// virtual-cut-through fallback, at μ=1, τ_S=0 — has, by construction,
// the immediate-successor key of the event that spawned it (same packet
// and hop, evCut→evSend, and no key exists between the two kinds), so
// routing it through the `same` slip and handling it right after its
// spawner reproduces the heap's order exactly. Controller runs attach
// timers whose same-tick ordering is not successor-shaped, so they run
// in heap mode: every push goes straight to the overflow heap and the
// caller pops one event at a time — byte-for-byte the old engine.
type calQueue struct {
	buckets [][]event // ring: events for tick t at slot t&mask; nil when empty
	occ     []uint64  // occupancy bitmap over ring slots
	mask    Time      // span-1; span is a power of two
	lo      Time      // ring window start: every ring event has t in [lo, lo+span)
	ringN   int       // events currently in the ring
	over    eventHeap // events outside the ring window (and everything, in heap mode)
	free    [][]event // drained bucket arrays awaiting reuse
	same    []event   // respawns at the tick being drained (see push)
	sameN   int       // consumption cursor into same
	open    Time      // tick currently being drained; noTick otherwise
	heap    bool      // heap mode: controller runs bypass the calendar entirely
}

// noTick marks "no bucket open"; simulated times are non-negative, so it
// cannot collide with a real tick.
const noTick = Time(math.MinInt64)

// spanForParams sizes the ring to cover the common spawn offsets of one
// event: +α (cut-through chain), +μα+τ_S (buffered resend and
// store-and-forward hops), +D (queueing). Rarer, farther spawns — next
// stages, deep contention pile-ups, oversized Flits — ride the overflow
// heap; a miss costs a heap operation, never correctness.
func spanForParams(p Params) Time {
	want := 2 * (p.TauS + p.PacketTime() + p.D + p.Alpha)
	span := Time(64)
	for span < want && span < 8192 {
		span <<= 1
	}
	return span
}

// reset prepares the queue for a new run, retaining every backing array.
func (q *calQueue) reset(span Time, heapMode bool) {
	if q.ringN > 0 {
		// A previous run aborted mid-drain (panic recovered upstream);
		// scrub the ring so stale events cannot leak into this run.
		for s := range q.buckets {
			if b := q.buckets[s]; len(b) > 0 {
				q.buckets[s] = b[:0]
			}
		}
	}
	if Time(len(q.buckets)) != span {
		q.buckets = make([][]event, span)
		q.occ = make([]uint64, span>>6)
	} else {
		clear(q.occ)
	}
	q.mask = span - 1
	q.lo = 0
	q.ringN = 0
	q.over.a = q.over.a[:0]
	q.same = q.same[:0]
	q.sameN = 0
	q.open = noTick
	q.heap = heapMode
}

// empty reports whether no events are pending (unconsumed same-tick
// respawns are the drain loop's to finish, not pending work).
func (q *calQueue) empty() bool {
	return q.ringN == 0 && len(q.over.a) == 0
}

// push enqueues an event. O(1) amortized: a bucket append plus an
// occupancy bit, except for events outside the ring window (overflow
// heap) and same-tick respawns (the `same` slip).
func (q *calQueue) push(ev event) {
	if q.heap {
		q.over.push(ev)
		return
	}
	if ev.t == q.open {
		// Respawn at the tick being drained: its key is the immediate
		// successor of the spawning event's key (see the type comment),
		// so the drain loop consumes it next, before the rest of the
		// sorted bucket.
		q.same = append(q.same, ev)
		return
	}
	if q.ringN == 0 && len(q.over.a) == 0 {
		// Queue went empty: snap the window to the new frontier.
		q.lo = ev.t
	}
	if ev.t < q.lo || ev.t > q.lo+q.mask {
		q.over.push(ev)
		return
	}
	slot := ev.t & q.mask
	b := q.buckets[slot]
	if b == nil {
		if n := len(q.free); n > 0 {
			b, q.free = q.free[n-1], q.free[:n-1]
		}
	}
	q.buckets[slot] = append(b, ev)
	q.occ[slot>>6] |= 1 << uint(slot&63)
	q.ringN++
}

// nextTick returns the earliest tick holding a pending event, migrating
// overflow events that meanwhile fell inside the ring window. It only
// reads and reorganizes; takeTick performs the removal.
func (q *calQueue) nextTick() (Time, bool) {
	if q.ringN == 0 {
		if len(q.over.a) == 0 {
			return 0, false
		}
		// Ring empty: re-base the window to the overflow frontier so the
		// migration below captures it.
		q.lo = q.over.a[0].t
	}
	hi := q.lo + q.mask + 1
	for len(q.over.a) > 0 {
		t := q.over.a[0].t
		if t < q.lo || t >= hi {
			// Overflow events below lo predate the window (skewed initial
			// injections pushed out of time order); they drain straight
			// from the heap via the min below. Events at or past hi wait
			// for the window to reach them.
			break
		}
		ev := q.over.pop()
		slot := ev.t & q.mask
		b := q.buckets[slot]
		if b == nil {
			if n := len(q.free); n > 0 {
				b, q.free = q.free[n-1], q.free[:n-1]
			}
		}
		q.buckets[slot] = append(b, ev)
		q.occ[slot>>6] |= 1 << uint(slot&63)
		q.ringN++
	}
	t := Time(math.MaxInt64)
	if q.ringN > 0 {
		t = q.ringNext()
	}
	if len(q.over.a) > 0 && q.over.a[0].t < t {
		t = q.over.a[0].t
	}
	return t, true
}

// ringNext scans the occupancy bitmap, starting at lo's slot and
// wrapping once around the ring, for the first occupied slot; because
// every ring event lies in [lo, lo+span), the wrap-aware distance from
// lo's slot recovers the tick unambiguously. Must only be called with
// ringN > 0.
func (q *calQueue) ringNext() Time {
	s0 := int(q.lo & q.mask)
	words := len(q.occ)
	if w := q.occ[s0>>6] >> uint(s0&63); w != 0 {
		return q.lo + Time(bits.TrailingZeros64(w))
	}
	for i := 1; i <= words; i++ {
		wi := (s0>>6 + i) % words
		if w := q.occ[wi]; w != 0 {
			slot := wi<<6 + bits.TrailingZeros64(w)
			return q.lo + Time((slot-s0)&int(q.mask))
		}
	}
	// Unreachable: ringN > 0 guarantees an occupied slot.
	panic("simnet: calendar queue occupancy bitmap inconsistent with ring count")
}

// takeTick removes and returns every pending event at tick t, sorted by
// key — the caller's flat batch to drain in one tight loop. While the
// batch is being handled, pushes at tick t are routed to the same-tick
// slip (consume them via takeSame after each handled event); when the
// batch and slip are done, hand the slice back through finishTick.
func (q *calQueue) takeTick(t Time) []event {
	var b []event
	if t >= q.lo && t <= q.lo+q.mask {
		slot := t & q.mask
		if bb := q.buckets[slot]; len(bb) > 0 {
			b = bb
			q.buckets[slot] = nil
			q.occ[slot>>6] &^= 1 << uint(slot&63)
			q.ringN -= len(b)
		}
	}
	for len(q.over.a) > 0 && q.over.a[0].t == t {
		b = append(b, q.over.pop())
	}
	sortBucket(b)
	q.open = t
	return b
}

// takeSame pops the next unconsumed same-tick respawn, if any.
func (q *calQueue) takeSame() (event, bool) {
	if q.sameN >= len(q.same) {
		return event{}, false
	}
	ev := q.same[q.sameN]
	q.sameN++
	return ev, true
}

// finishTick closes the drain of tick t: the bucket array returns to
// the free list, the same-tick slip resets, and the window advances —
// every event at or before t has been handled, so lo can move past it,
// letting pushes near the new frontier use the ring instead of the
// overflow heap.
func (q *calQueue) finishTick(t Time, b []event) {
	q.open = noTick
	q.same = q.same[:0]
	q.sameN = 0
	if b != nil {
		q.free = append(q.free, b[:0])
	}
	if t+1 > q.lo {
		q.lo = t + 1
	}
}

// popHeap pops the globally least event in heap mode.
func (q *calQueue) popHeap() event { return q.over.pop() }

// heapLen reports pending events in heap mode.
func (q *calQueue) heapLen() int { return len(q.over.a) }

// sortBucket orders a drained bucket by event key (all entries share one
// tick, so the (t, key) order reduces to the key). The common case is
// already sorted: a stage's packets advance in lockstep, so tick t's
// batch — drained in key order — pushes tick t+α's events in key order
// too. One linear scan certifies that before falling back to a real
// sort (cross-shard outbox drains and mixed-stage ticks interleave
// sources and do need it).
func sortBucket(b []event) {
	for i := 1; i < len(b); i++ {
		if b[i].key < b[i-1].key {
			slices.SortFunc(b, func(x, y event) int {
				return cmp.Compare(x.key, y.key)
			})
			return
		}
	}
}
