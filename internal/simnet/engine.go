package simnet

import (
	"container/heap"
	"fmt"

	"ihc/internal/topology"
)

// The event engine. Each packet is driven by two kinds of events:
//
//   - evCut: the packet's header has reached an intermediate node and,
//     after the FIFO transit time α, requests the outgoing transmitter
//     hoping to cut through;
//   - evSend: the packet is fully stored at a node (or is being injected
//     by its source) and, after the startup time τ_S, requests the
//     transmitter for a store-and-forward style send.
//
// A request that finds the transmitter free acquires it immediately; a
// blocked cut-through falls back to reception + evSend; a blocked send
// reserves the next free slot and pays the queueing delay D. Wormhole
// packets stall in the network instead of buffering. Events are processed
// in (time, sequence) order, so runs are fully deterministic.

type evKind uint8

const (
	evCut evKind = iota
	evSend
)

type event struct {
	t    Time
	seq  int64
	pkt  int32
	hop  int32
	kind evKind
	arr  Time // header arrival time at the hop's source node
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// Options controls what a Run records beyond aggregate counters.
type Options struct {
	// Copies builds the (receiver, source) copy-count matrix. Costs
	// O(N^2) memory; leave off for very large networks.
	Copies bool
	// Trace records the per-hop trace of every packet.
	Trace bool
	// RecordDeliveries keeps an ordered log of every delivery.
	RecordDeliveries bool
	// Saturated models the heavy-traffic limiting regime of the paper's
	// worst-case analysis (Table IV): every hop is performed from
	// intermediate storage and pays the queueing delay D, regardless of
	// the actual transmitter state.
	Saturated bool
}

type runState struct {
	net      *Network
	specs    []PacketSpec
	opts     Options
	queue    eventQueue
	seq      int64
	res      *Result
	children map[int][]int32 // parent spec index -> dependent spec indices
	pending  []int32         // per spec: unmet dependency count
	ready    []Time          // per spec: latest parent delivery at Route[0]
	started  []bool
}

// Run simulates the given packets to completion and returns aggregate
// results. Link state (transmitter reservations, background-traffic
// phase) persists across calls on the same Network, so staged algorithms
// can chain Runs; use a fresh Network for independent experiments.
func (n *Network) Run(specs []PacketSpec, opts Options) (*Result, error) {
	for i, s := range specs {
		if len(s.Route) < 2 {
			return nil, fmt.Errorf("simnet: packet %d (%v) has route of %d nodes", i, s.ID, len(s.Route))
		}
		if s.Inject < 0 {
			return nil, fmt.Errorf("simnet: packet %d (%v) has negative inject time", i, s.ID)
		}
		for h := 0; h+1 < len(s.Route); h++ {
			if !n.g.HasEdge(s.Route[h], s.Route[h+1]) {
				return nil, fmt.Errorf("simnet: packet %d (%v) route step %d: {%d,%d} not an edge of %s",
					i, s.ID, h, s.Route[h], s.Route[h+1], n.g.Name())
			}
		}
	}
	st := &runState{
		net:      n,
		specs:    specs,
		opts:     opts,
		res:      &Result{},
		children: make(map[int][]int32),
		pending:  make([]int32, len(specs)),
		ready:    make([]Time, len(specs)),
		started:  make([]bool, len(specs)),
	}
	for i, s := range specs {
		for _, parent := range s.After {
			if parent < 0 || parent >= len(specs) || parent == i {
				return nil, fmt.Errorf("simnet: packet %d (%v) has invalid dependency %d", i, s.ID, parent)
			}
			st.children[parent] = append(st.children[parent], int32(i))
			st.pending[i]++
		}
	}
	if opts.Copies {
		st.res.Copies = NewCopyMatrix(n.g.N())
	}
	if opts.Trace {
		st.res.Traces = make(map[PacketID][]Hop, len(specs))
	}
	for i, s := range specs {
		if len(s.After) > 0 {
			continue
		}
		// Source injection: startup τ_S, then request the first link.
		st.start(int32(i), s.Inject)
	}
	for st.queue.Len() > 0 {
		ev := heap.Pop(&st.queue).(event)
		st.handle(ev)
	}
	for i := range specs {
		if !st.started[i] {
			return nil, fmt.Errorf("simnet: packet %d (%v) never injected: no parent delivered at node %d",
				i, specs[i].ID, specs[i].Route[0])
		}
	}
	return st.res, nil
}

// start injects packet i at absolute time at.
func (st *runState) start(i int32, at Time) {
	st.started[i] = true
	st.push(event{t: at + st.net.p.TauS, pkt: i, hop: 0, kind: evSend, arr: at})
	st.res.Injections++
}

func (st *runState) push(ev event) {
	ev.seq = st.seq
	st.seq++
	heap.Push(&st.queue, ev)
}

func (st *runState) handle(ev event) {
	spec := &st.specs[ev.pkt]
	p := st.net.p
	from := spec.Route[ev.hop]
	to := spec.Route[ev.hop+1]
	// Packet transmission time: Flits overrides the network default μ.
	pt := p.PacketTime()
	if spec.Flits > 0 {
		pt = Time(spec.Flits) * p.Alpha
	}
	l := st.net.links[topology.Arc{From: from, To: to}]

	var depart Time
	var kind HopKind
	var blocked bool

	switch {
	case ev.kind == evCut && !st.opts.Saturated:
		// Header requests the transmitter at ev.t = arr + α.
		req := ev.t
		avail, bgHit := st.linkFree(l, req)
		if avail <= req && !bgHit {
			depart, kind = req, HopCut
			st.res.CutThroughs++
		} else {
			if l.freeAt > req {
				st.res.Contentions++
			}
			if bgHit {
				st.res.BgBlocked++
			}
			if p.Mode == Wormhole {
				// Stall in the network until the transmitter frees.
				depart, kind, blocked = max(req, avail)+p.D, HopStall, true
				st.res.Stalls++
			} else {
				// Virtual cut-through: buffer the packet and retry as a
				// store-and-forward send once fully received + started up.
				st.push(event{t: ev.arr + pt + p.TauS, pkt: ev.pkt, hop: ev.hop, kind: evSend, arr: ev.arr})
				return
			}
		}

	default: // evSend, or any request in Saturated mode
		ready := ev.t
		if ev.kind == evCut {
			// Saturated mode forces even would-be cut-throughs through
			// storage: full reception plus startup.
			ready = ev.arr + pt + p.TauS
		}
		avail, bgHit := st.linkFree(l, ready)
		switch {
		case st.opts.Saturated:
			depart, blocked = max(ready, avail)+p.D, true
		case avail <= ready && !bgHit:
			depart = ready
		default:
			if l.freeAt > ready {
				st.res.Contentions++
			}
			if bgHit {
				st.res.BgBlocked++
			}
			depart, blocked = max(ready, avail)+p.D, true
		}
		if ev.hop == 0 {
			kind = HopInject
		} else {
			kind = HopBuffer
			st.res.BufferedHops++
		}
	}

	// Acquire the link for [depart, depart+μα].
	l.freeAt = depart + pt
	l.busy += pt
	st.res.LinkBusy += pt

	tailAtNext := depart + pt
	last := int32(len(spec.Route) - 2)
	if st.opts.Trace {
		st.res.Traces[spec.ID] = append(st.res.Traces[spec.ID], Hop{
			From: from, To: to, Kind: kind,
			HeaderDepart: depart, TailArrive: tailAtNext, Blocked: blocked,
		})
	}
	// The next node receives a copy if it is the final node, or by the
	// tee operation while the packet passes through.
	if ev.hop == last || spec.Tee {
		st.deliver(ev.pkt, to, tailAtNext)
	}
	if ev.hop < last {
		// Header arrives at `to` at depart; after the FIFO transit α it
		// requests the next transmitter (cut-through path), or goes
		// through storage in store-and-forward mode.
		if p.Mode == StoreAndForward {
			st.push(event{t: depart + pt + p.TauS, pkt: ev.pkt, hop: ev.hop + 1, kind: evSend, arr: depart})
		} else {
			st.push(event{t: depart + p.Alpha, pkt: ev.pkt, hop: ev.hop + 1, kind: evCut, arr: depart})
		}
	}
}

// linkFree returns the earliest time >= t the link is free of both
// broadcast and background traffic, and whether background traffic was
// occupying it at the query time.
func (st *runState) linkFree(l *link, t Time) (Time, bool) {
	avail := max(l.freeAt, t)
	if l.bg == nil {
		return avail, false
	}
	free, hit := l.bg.freeFrom(avail)
	return free, hit
}

func (st *runState) deliver(pkt int32, node topology.Node, at Time) {
	id := st.specs[pkt].ID
	st.res.Deliveries++
	for _, c := range st.children[int(pkt)] {
		child := &st.specs[c]
		if child.Route[0] != node {
			continue
		}
		if at > st.ready[c] {
			st.ready[c] = at
		}
		st.pending[c]--
		if st.pending[c] == 0 {
			st.start(c, st.ready[c]+child.Inject)
		}
	}
	if at > st.res.Finish {
		st.res.Finish = at
	}
	if st.res.Copies != nil {
		st.res.Copies.Add(node, id.Source)
	}
	if st.opts.RecordDeliveries {
		st.res.Deliveriesv = append(st.res.Deliveriesv, Delivery{ID: id, Node: node, At: at})
	}
}
