package simnet

import (
	"fmt"
	"math"

	"ihc/internal/topology"
)

// The event engine. Each packet is driven by two kinds of events:
//
//   - evCut: the packet's header has reached an intermediate node and,
//     after the FIFO transit time α, requests the outgoing transmitter
//     hoping to cut through;
//   - evSend: the packet is fully stored at a node (or is being injected
//     by its source) and, after the startup time τ_S, requests the
//     transmitter for a store-and-forward style send.
//
// A request that finds the transmitter free acquires it immediately; a
// blocked cut-through falls back to reception + evSend; a blocked send
// reserves the next free slot and pays the queueing delay D. Wormhole
// packets stall in the network instead of buffering. Events are processed
// in (time, key) order — see packetKey — so runs are fully deterministic.
//
// The hot path is flat and index-addressed: before the event loop starts,
// every route is compiled into a []int32 of arc indices (validating
// adjacency once), so handle() reaches its link by slice indexing into
// the network's dense []link — no map probes, no interface boxing, and,
// with a reused Scratch, no allocation per event.

type evKind uint8

const (
	evCut evKind = iota
	evSend
	// evTimer is a controller wake-up: it carries no packet, only an
	// opaque token (stashed in the event's arr field), and exists only
	// when Options.Control is attached. Timer events share the (time,
	// key) total order with packet events, so an attached controller
	// never perturbs the relative order of the packet events themselves.
	evTimer
)

// Capacity limits of the flat-array layout. Packet indices are int32 and
// an event's ordering key reserves 31 bits for the packet and 30 for the
// hop, so both are hard caps the run validates up front — at the paper's
// Q16 headline scale (524288 packets of 65535 hops per stage) they leave
// three orders of magnitude of headroom, but a silent wrap would corrupt
// the event order, so exceeding them is a loud error.
const (
	maxSpecs    = 1<<31 - 1
	maxRouteLen = 1 << 30
)

// packetKey is the deterministic tiebreak for packet events at equal
// simulated time: spec index, then hop, then kind (evCut orders before
// evSend). Together with the time it forms a total order over all
// possible packet events that is a pure function of the event *set* —
// not of heap push order — which is what lets the sharded engine
// (sharded.go) process disjoint link sets on concurrent workers and
// still reproduce the sequential event order exactly. Two properties
// make the order well defined and causal:
//
//   - distinct events have distinct keys: each (pkt, hop) produces at
//     most one evCut and at most one evSend per run;
//   - every event spawned while handling an event at (t, k) lands at a
//     strictly later (time, key): next-hop and dependency-release events
//     advance time by at least α, and the blocked-cut-through fallback
//     (the only spawn that can share its spawner's time, at μ=1, τ_S=0)
//     keeps the same pkt and hop but moves from evCut to evSend.
func packetKey(pkt, hop int32, kind evKind) uint64 {
	return uint64(uint32(pkt))<<32 | uint64(uint32(hop))<<2 | uint64(kind)
}

// timerKeyBit marks controller timer keys: bit 63 is never set by
// packetKey (31+30+2 = 63 bits), so all timers at a tick order after
// that tick's packet events — a deadline timer can never preempt a
// delivery landing on the deadline itself — and among themselves by
// their monotonic set sequence.
const timerKeyBit = uint64(1) << 63

type event struct {
	t    Time
	key  uint64 // deterministic tiebreak at equal t (packetKey / timer key)
	pkt  int32
	hop  int32
	kind evKind
	arr  Time // header arrival time at the hop's source node
}

// before reports whether a orders strictly before b: primary key is
// simulated time, tiebroken by the deterministic event key. The order is
// total (keys are unique), so every conforming priority queue pops the
// exact same event sequence — the determinism the regression oracle and
// the sharded engine's merge both rely on.
func (a *event) before(b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.key < b.key
}

// eventHeap is a monomorphic 4-ary min-heap over a reusable backing
// array. Compared to container/heap it avoids the interface{} boxing
// (one heap allocation per pushed event) and the dynamic Less/Swap
// dispatch; the 4-ary layout halves the tree depth, so a pop touches
// fewer cache lines at the cost of cheap in-line sibling comparisons.
type eventHeap struct {
	a []event
}

func (h *eventHeap) push(e event) {
	a := append(h.a, e)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = e
	h.a = a
}

func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	h.a = a[:n]
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for k := c + 1; k < hi; k++ {
			if a[k].before(&a[m]) {
				m = k
			}
		}
		if !a[m].before(&last) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = last
	return top
}

// Options controls what a Run records beyond aggregate counters.
type Options struct {
	// Copies builds the (receiver, source) copy-count matrix. Costs
	// O(N^2) memory; leave off for very large networks.
	Copies bool
	// Trace records the per-hop trace of every packet.
	Trace bool
	// RecordDeliveries keeps an ordered log of every delivery.
	RecordDeliveries bool
	// Saturated models the heavy-traffic limiting regime of the paper's
	// worst-case analysis (Table IV): every hop is performed from
	// intermediate storage and pays the queueing delay D, regardless of
	// the actual transmitter state.
	Saturated bool
	// Fault, when non-nil, is consulted once per performed hop and may
	// drop the copy or taint its payload (see FaultHook). Nil costs one
	// predictable branch per event on the hot path. In a sharded run
	// (EngineWorkers > 1) the hook is consulted from several goroutines
	// at once and must be safe for concurrent use; hooks that decide
	// purely from their arguments and immutable state — like the
	// compiled fault.Injector — qualify as-is.
	Fault FaultHook
	// Control, when non-nil, attaches an online controller (see
	// Controller): it observes deliveries, sets timers, and may inject
	// new packets mid-run — the machinery behind the repair layer. Nil
	// costs one predictable branch per event and one per delivery.
	// Controllers are inherently sequential; combining Control with
	// EngineWorkers > 1 is an error.
	Control Controller
	// Observe, when non-nil, streams every performed hop and every
	// delivery to an observability sink (see Observer and
	// internal/observe). Nil costs one predictable branch per event and
	// one per delivery, preserving the allocation-free hot path. Sharded
	// runs buffer the records per time window and replay them to the
	// sink from a single goroutine in the engine's deterministic (time,
	// key) order, so sinks never need locking and see the exact
	// sequential stream at any worker count.
	Observe Observer
	// EngineWorkers shards this run's links across that many worker
	// goroutines with conservative time-window synchronization
	// (sharded.go). 0 or 1 selects the sequential engine. Results are
	// byte-identical at every worker count; the paper's contention-
	// freeness theorem (per-link independence, minimum α between an
	// event and anything it causes on another link) is what makes the
	// window bound safe.
	EngineWorkers int
	// Ledger, when non-nil, accumulates every delivery into the O(N)
	// incremental Theorem-4 copy ledger (see CopyLedger) — the
	// counters-only replacement for the O(N²) Copies matrix at Q14+/Q16
	// scale. The engine only adds to it; callers may share one ledger
	// across chained runs (core does, per stage) and verify at the end.
	// Sharded runs accumulate into shard-local ledgers and merge them
	// commutatively, so the final counts are identical at every worker
	// count.
	Ledger *CopyLedger
}

// runState is the working state of one Run. It lives inside a Scratch so
// that every slice — the event queue, the compiled routes, the
// dependency bookkeeping — keeps its backing array across runs. In a
// sharded run each shard owns a runState of its own; the compiled
// routes and dependency tables are shared (read-only, or guarded — see
// sharded.go) while the queue, counters, and Result stay shard-local.
type runState struct {
	net      *Network
	specs    []PacketSpec
	opts     Options
	queue    calQueue
	seq      int64 // monotonic timer sequence (controller runs only)
	res      *Result
	ledger   *CopyLedger // delivery sink when Options.Ledger is set (shard-local in sharded runs)
	arcStamp []int32   // per arc: spec index + 1 that last used it (duplicate detection)
	arcs     []int32   // backing store for routes compiled by this run
	specArcs [][]int32 // per spec: one arc index per hop (into arcs, or a caller-supplied CompiledPath)
	children [][]int32 // per spec: dependent spec indices
	unmet    [][]int32 // per spec: parents that have not yet delivered at Route[0]
	ready    []Time    // per spec: latest parent delivery at Route[0]
	started  []bool
	corrupt  []bool // per spec: payload tainted by the fault hook (hook runs only)
	hasDeps  bool   // any spec has an After list (gates the dependency path)

	// Controller support (populated only when opts.Control != nil):
	// ownSpecs is a scratch-owned copy of the caller's specs so that
	// Runtime.Inject can append without aliasing caller memory, and now
	// is the time of the event currently being processed, so injections
	// can be validated against causality.
	ownSpecs []PacketSpec
	now      Time

	// Sharded-mode binding (nil in sequential runs): sh links this
	// runState to its shard, and curKey is the ordering key of the event
	// currently being handled — the tag that lets buffered deliveries
	// and observer records merge back into exact sequential order.
	sh     *shard
	curKey uint64
}

// release drops the pointers a finished run would otherwise pin in the
// scratch (the caller's specs and the returned Result), keeping only the
// reusable backing arrays.
func (st *runState) release() {
	st.net, st.specs, st.res = nil, nil, nil
	st.sh = nil
	st.ledger = nil
	// Route windows may alias caller-owned CompiledPaths; drop every
	// reference (including tail entries from earlier, larger runs) so the
	// scratch never pins a caller's compiled routes between runs.
	clear(st.specArcs[:cap(st.specArcs)])
	if len(st.ownSpecs) > 0 {
		// Spec copies hold route slices owned by the caller (or the
		// controller); drop them so the scratch pins only its own arrays.
		clear(st.ownSpecs)
		st.ownSpecs = st.ownSpecs[:0]
	}
}

// Run simulates the given packets to completion and returns aggregate
// results, drawing working memory from a pooled Scratch. Link state
// (transmitter reservations, background-traffic phase) persists across
// calls on the same Network, so staged algorithms can chain Runs; use a
// fresh Network for independent experiments.
func (n *Network) Run(specs []PacketSpec, opts Options) (*Result, error) {
	return n.RunScratch(specs, opts, nil)
}

// RunScratch is Run with caller-owned working memory: all transient
// allocations of the event loop live in sc and are reused by the next
// run. A nil sc borrows scratch from an internal pool. A Scratch must
// never be used by two goroutines at once; results are identical with
// or without reuse, and with any Options.EngineWorkers value.
func (n *Network) RunScratch(specs []PacketSpec, opts Options, sc *Scratch) (*Result, error) {
	if opts.EngineWorkers > 1 {
		return n.runSharded(specs, opts, sc)
	}
	if sc == nil {
		sc = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(sc)
	}
	st := &sc.st
	defer st.release()
	if err := st.prepare(n, specs, opts); err != nil {
		return nil, err
	}
	for i, s := range specs {
		if len(s.After) > 0 {
			continue
		}
		// Source injection: startup τ_S, then request the first link.
		st.start(int32(i), s.Inject)
	}
	if opts.Control == nil {
		st.drainUntil(Time(math.MaxInt64))
	} else {
		// Controller-attached loop: the specs are copied into scratch-owned
		// memory first so Runtime.Inject may append mid-run, and timer
		// events are dispatched to the controller instead of handle(). The
		// queue runs in heap mode here — controllers set same-tick timers
		// and inject packets whose keys are not successor-shaped, so the
		// calendar drain's ordering argument does not apply; the heap
		// reproduces the pre-calendar engine byte for byte.
		st.ownSpecs = append(st.ownSpecs[:0], specs...)
		st.specs = st.ownSpecs
		st.now = 0
		opts.Control.Attach(&Runtime{st: st}, st.specs)
		for st.queue.heapLen() > 0 {
			ev := st.queue.popHeap()
			st.res.Events++
			st.now = ev.t
			if ev.kind == evTimer {
				opts.Control.OnTimer(ev.t, int64(ev.arr))
				continue
			}
			st.handle(ev)
		}
	}
	return st.finish()
}

// drainUntil is the window-batched hot loop shared by the sequential
// engine (end = ∞) and each shard of a sharded run (end = the window
// bound): take one whole tick bucket as a key-sorted slice, handle it
// back to back in one tight loop — no per-event heap sifting — and
// consume each event's same-tick respawn (the blocked cut-through
// fallback, whose key is the immediate successor of its spawner's)
// right after the event that spawned it, exactly where the heap would
// have popped it.
func (st *runState) drainUntil(end Time) {
	q := &st.queue
	for {
		t, ok := q.nextTick()
		if !ok || t >= end {
			return
		}
		b := q.takeTick(t)
		st.res.Events += int64(len(b))
		st.now = t
		for i := range b {
			st.curKey = b[i].key
			st.handle(b[i])
			for {
				ev, ok := q.takeSame()
				if !ok {
					break
				}
				st.res.Events++
				st.curKey = ev.key
				st.handle(ev)
			}
		}
		q.finishTick(t, b)
	}
}

// prepare initializes the run state: it validates and compiles every
// route, builds the dependency tables, and sizes the per-run recording
// structures. It is shared verbatim by the sequential and sharded
// engines, so both compile the exact same program.
func (st *runState) prepare(n *Network, specs []PacketSpec, opts Options) error {
	st.net, st.specs, st.opts = n, specs, opts
	st.res = &Result{}
	st.queue.reset(spanForParams(n.p), opts.Control != nil)
	st.seq = 0
	st.ledger = opts.Ledger
	if len(specs) > maxSpecs {
		return fmt.Errorf("simnet: %d packets exceed the engine's %d-packet capacity", len(specs), maxSpecs)
	}

	// Route compilation: one pass validates adjacency and duplicate
	// directed links, and emits each hop's arc index so the event loop
	// addresses links by slice indexing instead of hashing. arcStamp
	// detects a route traversing the same directed link twice (such a
	// packet would contend with itself and the schedule is malformed);
	// stamped with spec index + 1 so one cleared array serves every
	// spec. Routes that carry a CompiledPath skip both per-hop checks:
	// the path validated adjacency once at compilation, and the caller
	// certifies the window repeats no directed link (see
	// PacketSpec.Path) — that is what keeps a Q16-scale run's compiled
	// footprint at O(γN) instead of O(γN²).
	st.arcStamp = growInt32(st.arcStamp, len(n.links))
	clear(st.arcStamp)
	st.specArcs = growArcLists(st.specArcs, len(specs))
	plainHops := 0
	for i := range specs {
		if specs[i].Path == nil {
			plainHops += len(specs[i].Route) - 1
		}
	}
	// Reserve the whole backing store up front: appends below never
	// reallocate, so the specArcs windows handed out stay valid.
	if cap(st.arcs) < plainHops {
		st.arcs = make([]int32, 0, plainHops)
	} else {
		st.arcs = st.arcs[:0]
	}
	hasDeps := false
	for i, s := range specs {
		if len(s.Route) < 2 {
			return fmt.Errorf("simnet: packet %d (%v) has route of %d nodes", i, s.ID, len(s.Route))
		}
		if len(s.Route) >= maxRouteLen {
			return fmt.Errorf("simnet: packet %d (%v) route of %d nodes exceeds the engine's %d-hop capacity",
				i, s.ID, len(s.Route), maxRouteLen-1)
		}
		if s.Inject < 0 {
			return fmt.Errorf("simnet: packet %d (%v) has negative inject time", i, s.ID)
		}
		if p := s.Path; p != nil {
			arcs, err := p.window(n, s.PathOff, s.Route)
			if err != nil {
				return fmt.Errorf("simnet: packet %d (%v): %w", i, s.ID, err)
			}
			st.specArcs[i] = arcs
		} else {
			base := len(st.arcs)
			for h := 0; h+1 < len(s.Route); h++ {
				from, to := s.Route[h], s.Route[h+1]
				idx := n.arcIndex(from, to)
				if idx < 0 {
					return fmt.Errorf("simnet: packet %d (%v) route step %d: {%d,%d} not an edge of %s",
						i, s.ID, h, from, to, n.g.Name())
				}
				if st.arcStamp[idx] == int32(i)+1 {
					return fmt.Errorf("simnet: packet %d (%v) route uses directed link %d→%d twice",
						i, s.ID, from, to)
				}
				st.arcStamp[idx] = int32(i) + 1
				st.arcs = append(st.arcs, idx)
			}
			st.specArcs[i] = st.arcs[base:len(st.arcs):len(st.arcs)]
		}
		if len(s.After) > 0 {
			hasDeps = true
		}
	}

	st.children = resetLists(st.children, len(specs))
	st.unmet = resetLists(st.unmet, len(specs))
	st.ready = growTimes(st.ready, len(specs))
	clear(st.ready)
	st.started = growBools(st.started, len(specs))
	clear(st.started)
	if opts.Fault != nil {
		// Taint bits are grown and cleared only when a hook is installed;
		// fault-free runs never touch the slice.
		st.corrupt = growBools(st.corrupt, len(specs))
		clear(st.corrupt)
	}
	st.hasDeps = hasDeps
	if hasDeps {
		for i, s := range specs {
			for _, parent := range s.After {
				if parent < 0 || parent >= len(specs) || parent == i {
					return fmt.Errorf("simnet: packet %d (%v) has invalid dependency %d", i, s.ID, parent)
				}
				for _, q := range st.unmet[i] {
					if q == int32(parent) {
						return fmt.Errorf("simnet: packet %d (%v) lists dependency %d twice", i, s.ID, parent)
					}
				}
				st.unmet[i] = append(st.unmet[i], int32(parent))
				st.children[parent] = append(st.children[parent], int32(i))
			}
		}
		if err := checkAcyclic(specs); err != nil {
			return err
		}
	}
	if opts.Copies {
		st.res.Copies = NewCopyMatrix(n.g.N())
	}
	if opts.Trace {
		st.res.Traces = make(map[PacketID][]Hop, len(specs))
	}
	return nil
}

// finish verifies every packet was eventually injected and returns the
// run's Result.
func (st *runState) finish() (*Result, error) {
	for i := range st.specs {
		if !st.started[i] {
			return nil, fmt.Errorf("simnet: packet %d (%v) never injected: no parent delivered at node %d",
				i, st.specs[i].ID, st.specs[i].Route[0])
		}
	}
	return st.res, nil
}

// checkAcyclic rejects dependency cycles among the specs' After lists up
// front: a cyclic chain can never inject any of its packets, so the run
// would silently simulate everything else and only fail afterwards with a
// misleading "no parent delivered" error. Kahn's algorithm over the
// dependency arcs finds the offending packets and an example cycle.
func checkAcyclic(specs []PacketSpec) error {
	indeg := make([]int, len(specs))
	children := make([][]int, len(specs))
	for i, s := range specs {
		indeg[i] = len(s.After)
		for _, parent := range s.After {
			children[parent] = append(children[parent], i)
		}
	}
	queue := make([]int, 0, len(specs))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, c := range children[i] {
			if indeg[c]--; indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if done == len(specs) {
		return nil
	}
	// Walk unresolved dependencies from any stuck packet until a spec
	// repeats; the walk stays within the cyclic component, so it yields a
	// concrete example cycle for the error message.
	start := -1
	for i, d := range indeg {
		if d > 0 {
			start = i
			break
		}
	}
	path := []int{start}
	seen := map[int]int{start: 0}
	for {
		cur := path[len(path)-1]
		next := -1
		for _, parent := range specs[cur].After {
			if indeg[parent] > 0 {
				next = parent
				break
			}
		}
		if at, ok := seen[next]; ok {
			cycle := ""
			for _, i := range path[at:] {
				cycle += fmt.Sprintf("%d (%v) → ", i, specs[i].ID)
			}
			return fmt.Errorf("simnet: dependency cycle: %s%d (%v)", cycle, next, specs[next].ID)
		}
		seen[next] = len(path)
		path = append(path, next)
	}
}

// start injects packet i at absolute time at.
func (st *runState) start(i int32, at Time) {
	st.started[i] = true
	st.push(event{t: at + st.net.p.TauS, pkt: i, hop: 0, kind: evSend, arr: at})
	st.res.Injections++
}

// push enqueues a packet event under its deterministic key. In a sharded
// run the event is routed to the shard owning its hop's arc: the shard's
// own heap when local, the target's outbox (drained at the next window
// barrier) otherwise. Same-arc respawns — the blocked-cut-through
// fallback — always stay local, which is what keeps the window bound at
// the cross-link minimum α.
func (st *runState) push(ev event) {
	ev.key = packetKey(ev.pkt, ev.hop, ev.kind)
	if sh := st.sh; sh != nil {
		if tgt := sh.owner(st.specArcs[ev.pkt][ev.hop]); tgt != sh.id {
			sh.outbox[tgt] = append(sh.outbox[tgt], ev)
			return
		}
	}
	st.queue.push(ev)
}

// pushTimer enqueues a controller timer. Timers order after all packet
// events at their tick and among themselves by set order.
func (st *runState) pushTimer(at Time, token int64) {
	st.queue.push(event{t: at, key: timerKeyBit | uint64(st.seq), kind: evTimer, arr: Time(token)})
	st.seq++
}

func (st *runState) handle(ev event) {
	spec := &st.specs[ev.pkt]
	p := st.net.p
	from := spec.Route[ev.hop]
	to := spec.Route[ev.hop+1]
	// Packet transmission time: Flits overrides the network default μ.
	pt := p.PacketTime()
	if spec.Flits > 0 {
		pt = Time(spec.Flits) * p.Alpha
	}
	arc := st.specArcs[ev.pkt][ev.hop]
	l := &st.net.links[arc]

	var depart Time
	var kind HopKind
	var blocked bool

	switch {
	case ev.kind == evCut && !st.opts.Saturated:
		// Header requests the transmitter at ev.t = arr + α.
		req := ev.t
		avail, bgHit := st.linkFree(l, req)
		if avail <= req && !bgHit {
			depart, kind = req, HopCut
			st.res.CutThroughs++
		} else {
			if l.freeAt > req {
				st.res.Contentions++
			}
			if bgHit {
				st.res.BgBlocked++
			}
			if p.Mode == Wormhole {
				// Stall in the network until the transmitter frees.
				depart, kind, blocked = max(req, avail)+p.D, HopStall, true
				st.res.Stalls++
			} else {
				// Virtual cut-through: buffer the packet and retry as a
				// store-and-forward send once fully received + started up.
				st.push(event{t: ev.arr + pt + p.TauS, pkt: ev.pkt, hop: ev.hop, kind: evSend, arr: ev.arr})
				return
			}
		}

	default: // evSend, or any request in Saturated mode
		ready := ev.t
		if ev.kind == evCut {
			// Saturated mode forces even would-be cut-throughs through
			// storage: full reception plus startup.
			ready = ev.arr + pt + p.TauS
		}
		avail, bgHit := st.linkFree(l, ready)
		switch {
		case st.opts.Saturated:
			depart, blocked = max(ready, avail)+p.D, true
		case avail <= ready && !bgHit:
			depart = ready
		default:
			if l.freeAt > ready {
				st.res.Contentions++
			}
			if bgHit {
				st.res.BgBlocked++
			}
			depart, blocked = max(ready, avail)+p.D, true
		}
		if ev.hop == 0 {
			kind = HopInject
		} else {
			kind = HopBuffer
			st.res.BufferedHops++
		}
	}

	// The fault hook sees the hop after its departure time is settled but
	// before the link is acquired: a dropped copy never occupies the
	// transmitter, schedules nothing downstream, and delivers nowhere.
	// (The hop-kind counters above record the switching decision that was
	// made; FaultDrops counts the hops canceled after that decision.)
	if st.opts.Fault != nil {
		switch st.opts.Fault.Relay(spec.ID, int(ev.hop), from, to, depart) {
		case FaultDrop:
			st.res.FaultDrops++
			return
		case FaultCorrupt:
			st.corrupt[ev.pkt] = true
			st.res.FaultTaints++
		}
	}

	// Acquire the link for [depart, depart+μα].
	l.freeAt = depart + pt
	l.busy += pt
	st.res.LinkBusy += pt

	tailAtNext := depart + pt
	last := int32(len(spec.Route) - 2)
	if st.opts.Trace {
		h := Hop{
			From: from, To: to, Kind: kind,
			HeaderDepart: depart, TailArrive: tailAtNext, Blocked: blocked,
		}
		if sh := st.sh; sh != nil {
			sh.traces = append(sh.traces, taggedHop{t: ev.t, key: ev.key, pkt: ev.pkt, h: h})
		} else {
			st.res.Traces[spec.ID] = append(st.res.Traces[spec.ID], h)
		}
	}
	if st.opts.Observe != nil {
		flits := p.Mu
		if spec.Flits > 0 {
			flits = spec.Flits
		}
		he := HopEvent{
			ID: spec.ID, Hop: int(ev.hop), From: from, To: to,
			Arc:  int(arc),
			Kind: kind, HeaderDepart: depart, TailArrive: tailAtNext,
			Flits: flits, Blocked: blocked,
		}
		if sh := st.sh; sh != nil {
			sh.obs = append(sh.obs, obsRec{t: ev.t, key: ev.key, isHop: true, hop: he})
		} else {
			st.opts.Observe.OnHop(he)
		}
	}
	// The next node receives a copy if it is the final node, or by the
	// tee operation while the packet passes through.
	if ev.hop == last || spec.Tee {
		st.deliver(ev.pkt, to, tailAtNext)
	}
	if ev.hop < last {
		// Header arrives at `to` at depart; after the FIFO transit α it
		// requests the next transmitter (cut-through path), or goes
		// through storage in store-and-forward mode.
		if p.Mode == StoreAndForward {
			st.push(event{t: depart + pt + p.TauS, pkt: ev.pkt, hop: ev.hop + 1, kind: evSend, arr: depart})
		} else {
			st.push(event{t: depart + p.Alpha, pkt: ev.pkt, hop: ev.hop + 1, kind: evCut, arr: depart})
		}
	}
}

// linkFree returns the earliest time >= t the link is free of both
// broadcast and background traffic, and whether background traffic was
// occupying it at the query time.
func (st *runState) linkFree(l *link, t Time) (Time, bool) {
	avail := max(l.freeAt, t)
	if l.bg == nil {
		return avail, false
	}
	free, hit := l.bg.freeFrom(avail)
	return free, hit
}

func (st *runState) deliver(pkt int32, node topology.Node, at Time) {
	id := st.specs[pkt].ID
	st.res.Deliveries++
	if st.hasDeps && len(st.children[pkt]) > 0 {
		// Dependency release mutates tables shared by every shard of a
		// sharded run; the mutex is taken only on this rare path (the
		// serialized baselines), never by dependency-free schedules like
		// IHC. Release order within a window cannot matter: each parent
		// removes only itself, ready keeps a max, and the last removal —
		// whichever shard performs it — observes the same final state.
		if sh := st.sh; sh != nil {
			sh.run.depMu.Lock()
			st.releaseDeps(pkt, node, at)
			sh.run.depMu.Unlock()
		} else {
			st.releaseDeps(pkt, node, at)
		}
	}
	if at > st.res.Finish {
		st.res.Finish = at
	}
	if st.res.Copies != nil {
		st.res.Copies.Add(node, id.Source)
	}
	if st.ledger != nil {
		st.ledger.Add(node, id.Source)
	}
	if st.opts.RecordDeliveries {
		d := Delivery{
			ID: id, Node: node, At: at,
			Corrupted: st.opts.Fault != nil && st.corrupt[pkt],
		}
		if sh := st.sh; sh != nil {
			sh.delivs = append(sh.delivs, taggedDeliv{t: st.now, key: st.curKey, d: d})
		} else {
			st.res.Deliveriesv = append(st.res.Deliveriesv, d)
		}
	}
	if st.opts.Observe != nil {
		d := Delivery{
			ID: id, Node: node, At: at,
			Corrupted: st.opts.Fault != nil && st.corrupt[pkt],
		}
		if sh := st.sh; sh != nil {
			sh.obs = append(sh.obs, obsRec{t: st.now, key: st.curKey, del: d})
		} else {
			st.opts.Observe.OnDeliver(d)
		}
	}
	if st.opts.Control != nil {
		st.opts.Control.OnDeliver(pkt, node, at)
	}
}

// releaseDeps satisfies pkt's delivery at node for every dependent
// child, starting children whose last parent this was.
func (st *runState) releaseDeps(pkt int32, node topology.Node, at Time) {
	for _, c := range st.children[pkt] {
		child := &st.specs[c]
		if child.Route[0] != node {
			continue
		}
		// Each parent satisfies its dependency at most once, even if it
		// delivers several copies at the child's source (e.g. a tee route
		// revisiting the node): a second copy from one parent must not
		// release a child still waiting on a different parent.
		w := st.unmet[c]
		k := -1
		for idx, parent := range w {
			if parent == pkt {
				k = idx
				break
			}
		}
		if k < 0 {
			continue
		}
		w[k] = w[len(w)-1]
		st.unmet[c] = w[:len(w)-1]
		if at > st.ready[c] {
			st.ready[c] = at
		}
		if len(st.unmet[c]) == 0 {
			st.start(c, st.ready[c]+child.Inject)
		}
	}
}
