package simnet

import (
	"reflect"
	"strings"
	"testing"

	"ihc/internal/topology"
)

// shardedWorkerCounts is the worker matrix every equivalence test runs:
// the degenerate single worker, powers of two, and a prime that leaves a
// ragged last shard.
var shardedWorkerCounts = []int{1, 2, 4, 7}

// recordingObserver captures the full observer stream for stream-level
// equivalence checks.
type recordingObserver struct {
	hops []HopEvent
	dels []Delivery
	log  []string // interleaving: "h" per hop, "d" per delivery
}

func (r *recordingObserver) OnHop(e HopEvent) { r.hops = append(r.hops, e); r.log = append(r.log, "h") }
func (r *recordingObserver) OnDeliver(d Delivery) {
	r.dels = append(r.dels, d)
	r.log = append(r.log, "d")
}

// fullResult bundles everything a run can output, for deep comparison.
type fullResult struct {
	key         resultKey
	faultDrops  int
	faultTaints int
	deliveries  []Delivery
	traces      map[PacketID][]Hop
	copies      [][]int
	obsHops     []HopEvent
	obsDels     []Delivery
	obsLog      string
}

func capture(t *testing.T, g *topology.Graph, p Params, specs []PacketSpec, opts Options, workers int) fullResult {
	t.Helper()
	net, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingObserver{}
	opts.Observe = rec
	opts.EngineWorkers = workers
	res, err := net.RunScratch(specs, opts, nil)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	f := fullResult{
		key:         keyOf(res),
		faultDrops:  res.FaultDrops,
		faultTaints: res.FaultTaints,
		deliveries:  res.Deliveriesv,
		traces:      res.Traces,
		obsHops:     rec.hops,
		obsDels:     rec.dels,
		obsLog:      strings.Join(rec.log, ""),
	}
	if res.Copies != nil {
		f.copies = make([][]int, g.N())
		for r := 0; r < g.N(); r++ {
			f.copies[r] = make([]int, g.N())
			for s := 0; s < g.N(); s++ {
				f.copies[r][s] = res.Copies.Get(topology.Node(r), topology.Node(s))
			}
		}
	}
	return f
}

// assertShardedIdentical runs the workload sequentially and under every
// worker count, requiring byte-identical output on every channel a run
// has: counters, the ordered delivery log, per-packet traces, the copy
// matrix, and the full observer stream including its interleaving.
func assertShardedIdentical(t *testing.T, g *topology.Graph, p Params, specs []PacketSpec, opts Options) {
	t.Helper()
	opts.RecordDeliveries = true
	opts.Trace = true
	want := capture(t, g, p, specs, opts, 0)
	if want.key.deliveries == 0 {
		t.Fatal("workload delivered nothing; equivalence check vacuous")
	}
	for _, w := range shardedWorkerCounts {
		got := capture(t, g, p, specs, opts, w)
		if got.key != want.key {
			t.Errorf("workers=%d: counters differ:\n got %+v\nwant %+v", w, got.key, want.key)
		}
		if got.faultDrops != want.faultDrops || got.faultTaints != want.faultTaints {
			t.Errorf("workers=%d: fault counters differ: got %d/%d want %d/%d",
				w, got.faultDrops, got.faultTaints, want.faultDrops, want.faultTaints)
		}
		if !reflect.DeepEqual(got.deliveries, want.deliveries) {
			t.Errorf("workers=%d: delivery log differs (%d vs %d entries)", w, len(got.deliveries), len(want.deliveries))
		}
		if !reflect.DeepEqual(got.traces, want.traces) {
			t.Errorf("workers=%d: traces differ", w)
		}
		if !reflect.DeepEqual(got.copies, want.copies) {
			t.Errorf("workers=%d: copy matrix differs", w)
		}
		if got.obsLog != want.obsLog {
			t.Errorf("workers=%d: observer interleaving differs", w)
		}
		if !reflect.DeepEqual(got.obsHops, want.obsHops) {
			t.Errorf("workers=%d: observed hop stream differs (%d vs %d)", w, len(got.obsHops), len(want.obsHops))
		}
		if !reflect.DeepEqual(got.obsDels, want.obsDels) {
			t.Errorf("workers=%d: observed delivery stream differs", w)
		}
	}
}

func TestShardedIdenticalModes(t *testing.T) {
	g, specs := pipelineSpecs(32)
	for _, mode := range []Mode{VirtualCutThrough, StoreAndForward, Wormhole} {
		t.Run(mode.String(), func(t *testing.T) {
			p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37, Mode: mode}
			assertShardedIdentical(t, g, p, specs, Options{Copies: true})
		})
	}
}

// TestShardedIdenticalContended drives every packet through the same few
// links (a short ring with long overlapping routes) so same-tick link
// contention — the case the deterministic event key exists for — is
// exercised heavily.
func TestShardedIdenticalContended(t *testing.T) {
	g := topology.MustCycle(6)
	ring := make([]topology.Node, 12)
	for i := range ring {
		ring[i] = topology.Node(i % 6)
	}
	var specs []PacketSpec
	for s := 0; s < 6; s++ {
		specs = append(specs, PacketSpec{
			ID:    PacketID{Source: topology.Node(s)},
			Route: ring[s : s+6],
			Tee:   true,
		})
	}
	// τ_S = 0 and μ = 1 make the blocked-cut-through fallback land at the
	// exact timestamp of its evCut — the tightest tie the key must break.
	p := Params{TauS: 0, Alpha: 20, Mu: 1, D: 37}
	assertShardedIdentical(t, g, p, specs, Options{Copies: true})
}

func TestShardedIdenticalBackground(t *testing.T) {
	g, specs := pipelineSpecs(24)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37, Rho: 0.35, Seed: 12345}
	assertShardedIdentical(t, g, p, specs, Options{})
}

func TestShardedIdenticalSaturated(t *testing.T) {
	g, specs := pipelineSpecs(16)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	assertShardedIdentical(t, g, p, specs, Options{Saturated: true})
}

func TestShardedIdenticalFlits(t *testing.T) {
	g, specs := pipelineSpecs(16)
	for i := range specs {
		specs[i].Flits = 1 + i%3
	}
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	assertShardedIdentical(t, g, p, specs, Options{})
}

// TestShardedIdenticalDeps exercises the cross-shard dependency-release
// path: a redirect chain where each packet is injected only after its
// parent delivered at the child's source node.
func TestShardedIdenticalDeps(t *testing.T) {
	g := topology.MustCycle(12)
	route := func(from, n int) []topology.Node {
		r := make([]topology.Node, n)
		for i := range r {
			r[i] = topology.Node((from + i) % 12)
		}
		return r
	}
	specs := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: route(0, 4), Tee: true},
		{ID: PacketID{Source: 3, Seq: 1}, Route: route(3, 4), Tee: true, After: []int{0}, Inject: 10},
		{ID: PacketID{Source: 6, Seq: 2}, Route: route(6, 4), Tee: true, After: []int{1}},
		{ID: PacketID{Source: 3, Channel: 1}, Route: route(3, 7), Tee: true, After: []int{0}},
		{ID: PacketID{Source: 9, Seq: 3}, Route: route(9, 4), Tee: true, After: []int{2, 3}},
	}
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	assertShardedIdentical(t, g, p, specs, Options{Copies: true})
}

// pureFault drops or taints hops as a pure function of its arguments —
// the concurrency-safety contract Options.Fault documents for sharded
// runs, and the shape internal/fault's compiled Injector has.
type pureFault struct{}

func (pureFault) Relay(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
	h := uint64(id.Source)*2654435761 + uint64(hop)*97 + uint64(from)*13
	switch h % 11 {
	case 0:
		return FaultDrop
	case 1, 2:
		return FaultCorrupt
	default:
		return FaultNone
	}
}

func TestShardedIdenticalFaults(t *testing.T) {
	g, specs := pipelineSpecs(24)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	assertShardedIdentical(t, g, p, specs, Options{Fault: pureFault{}})
}

// TestShardedRejectsController pins the contract: controllers are
// sequential by definition, so sharded runs must refuse them loudly
// rather than run them racily.
func TestShardedRejectsController(t *testing.T) {
	g, specs := pipelineSpecs(8)
	net, err := New(g, Params{TauS: 100, Alpha: 20, Mu: 2, D: 37})
	if err != nil {
		t.Fatal(err)
	}
	_, err = net.Run(specs, Options{Control: noopController{}, EngineWorkers: 4})
	if err == nil || !strings.Contains(err.Error(), "Controller") {
		t.Fatalf("sharded run with controller: got err %v, want refusal mentioning Controller", err)
	}
}

type noopController struct{}

func (noopController) Attach(*Runtime, []PacketSpec)        {}
func (noopController) OnDeliver(int32, topology.Node, Time) {}
func (noopController) OnTimer(Time, int64)                  {}

// TestShardedWorkerClamp asks for far more workers than the graph has
// arcs; the run must clamp rather than divide by zero or leave empty
// shards misrouting events.
func TestShardedWorkerClamp(t *testing.T) {
	g := topology.MustCycle(3) // 6 arcs
	specs := []PacketSpec{{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 2}, Tee: true}}
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	want := capture(t, g, p, specs, Options{RecordDeliveries: true}, 0)
	got := capture(t, g, p, specs, Options{RecordDeliveries: true}, 64)
	if got.key != want.key || !reflect.DeepEqual(got.deliveries, want.deliveries) {
		t.Fatalf("clamped run differs: got %+v want %+v", got.key, want.key)
	}
}

// TestScratchReuseAcrossTopologies is the aliasing regression test: one
// Scratch serves runs on networks of very different sizes and shapes,
// sequentially and sharded, interleaved — any stale compiled-route,
// dependency-table, or shard state leaking between runs shows up as a
// mismatch against a fresh-scratch reference.
func TestScratchReuseAcrossTopologies(t *testing.T) {
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	type workload struct {
		name  string
		g     *topology.Graph
		specs []PacketSpec
	}
	big, bigSpecs := pipelineSpecs(64)
	small, smallSpecs := pipelineSpecs(8)
	qube := topology.MustHypercube(3)
	var qubeSpecs []PacketSpec
	for s := 0; s < 8; s++ {
		// One 3-hop dimension-ordered route per source.
		qubeSpecs = append(qubeSpecs, PacketSpec{
			ID:    PacketID{Source: topology.Node(s)},
			Route: []topology.Node{topology.Node(s), topology.Node(s ^ 1), topology.Node(s ^ 1 ^ 2), topology.Node(s ^ 1 ^ 2 ^ 4)},
			Tee:   true,
		})
	}
	deps := []PacketSpec{
		{ID: PacketID{Source: 0}, Route: []topology.Node{0, 1, 2}, Tee: true},
		{ID: PacketID{Source: 2, Seq: 1}, Route: []topology.Node{2, 3, 4}, After: []int{0}},
	}
	workloads := []workload{
		{"ring64", big, bigSpecs},
		{"q3", qube, qubeSpecs},
		{"ring8", small, smallSpecs},
		{"deps", topology.MustCycle(8), deps},
		{"ring64-again", big, bigSpecs},
	}
	sc := NewScratch()
	for _, wl := range workloads {
		for _, w := range []int{0, 3} {
			opts := Options{RecordDeliveries: true, EngineWorkers: w}
			fresh := capture(t, wl.g, p, wl.specs, opts, w)
			net, err := New(wl.g, p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := net.RunScratch(wl.specs, opts, sc)
			if err != nil {
				t.Fatalf("%s workers=%d reused scratch: %v", wl.name, w, err)
			}
			if keyOf(res) != fresh.key {
				t.Errorf("%s workers=%d: reused scratch differs from fresh:\n got %+v\nwant %+v",
					wl.name, w, keyOf(res), fresh.key)
			}
			if !reflect.DeepEqual(res.Deliveriesv, fresh.deliveries) {
				t.Errorf("%s workers=%d: reused-scratch delivery log differs", wl.name, w)
			}
		}
	}
}

// TestCompiledPathWindows checks the shared-path route layout against
// per-hop compilation: specs referencing windows of one compiled doubled
// cycle must behave exactly like the same routes compiled individually.
func TestCompiledPathWindows(t *testing.T) {
	const n = 16
	g := topology.MustCycle(n)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	doubled := make([]topology.Node, 2*n)
	for i := range doubled {
		doubled[i] = topology.Node(i % n)
	}
	plain := make([]PacketSpec, 0, n/2)
	for s := 0; s < n; s += 2 {
		plain = append(plain, PacketSpec{
			ID:    PacketID{Source: topology.Node(s)},
			Route: doubled[s : s+n],
			Tee:   true,
		})
	}
	want := capture(t, g, p, plain, Options{Copies: true, RecordDeliveries: true}, 0)

	net, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := net.CompilePath(doubled)
	if err != nil {
		t.Fatal(err)
	}
	shared := make([]PacketSpec, len(plain))
	copy(shared, plain)
	for i := range shared {
		shared[i].Path, shared[i].PathOff = cp, int(shared[i].ID.Source)
	}
	res, err := net.Run(shared, Options{Copies: true, RecordDeliveries: true})
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(res) != want.key {
		t.Errorf("compiled-path run differs: got %+v want %+v", keyOf(res), want.key)
	}
	if !reflect.DeepEqual(res.Deliveriesv, want.deliveries) {
		t.Error("compiled-path delivery log differs from per-hop compilation")
	}

	// Misuse must fail loudly, not silently route over wrong arcs.
	bad := shared[:1:1]
	bad[0].PathOff = int(bad[0].ID.Source) + 1 // endpoints disagree with window
	if _, err := net.Run(bad, Options{}); err == nil {
		t.Error("mismatched path window accepted")
	}
	other, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Run(shared[:1], Options{}); err == nil {
		t.Error("compiled path accepted by a different network")
	}
}

// TestBackgroundSeedPerArc pins the satellite bugfix: background traffic
// is a pure function of (Seed, arc id). Two networks with the same seed
// must produce identical traffic; different seeds must not; and querying
// links in different orders (what sequential vs sharded engines do) must
// not change any link's pattern.
func TestBackgroundSeedPerArc(t *testing.T) {
	g := topology.MustCycle(8)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37, Rho: 0.5, Seed: 42}
	sample := func(net *Network, order []int) map[int][]Time {
		out := make(map[int][]Time)
		for _, i := range order {
			bg := net.links[i].bg
			var ts []Time
			for q := Time(0); q < 2000; q += 100 {
				free, _ := bg.freeFrom(q)
				ts = append(ts, free)
			}
			out[i] = ts
		}
		return out
	}
	a, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	fwd := []int{0, 1, 2, 3}
	rev := []int{3, 2, 1, 0}
	sa, sb := sample(a, fwd), sample(b, rev)
	for _, i := range fwd {
		if !reflect.DeepEqual(sa[i], sb[i]) {
			t.Errorf("arc %d: same seed, different query order: traffic differs", i)
		}
	}
	p2 := p
	p2.Seed = 43
	c, err := New(g, p2)
	if err != nil {
		t.Fatal(err)
	}
	sc := sample(c, fwd)
	same := 0
	for _, i := range fwd {
		if reflect.DeepEqual(sa[i], sc[i]) {
			same++
		}
	}
	if same == len(fwd) {
		t.Error("seeds 42 and 43 produced identical background traffic on every sampled arc")
	}
}
