package simnet

import (
	"testing"

	"ihc/internal/topology"
)

// recObserver records the full observed stream.
type recObserver struct {
	hops       []HopEvent
	deliveries []Delivery
}

func (o *recObserver) OnHop(h HopEvent)     { o.hops = append(o.hops, h) }
func (o *recObserver) OnDeliver(d Delivery) { o.deliveries = append(o.deliveries, d) }

// The observer sees exactly the performed hops (matching the per-hop
// counters and the recorded traces) and exactly the accounted
// deliveries, and its presence does not perturb the run.
func TestObserverSeesAllHopsAndDeliveries(t *testing.T) {
	g := topology.MustCycle(12)
	p := dedicated(2)
	specs := []PacketSpec{
		{ID: PacketID{Source: 0, Channel: 0}, Route: pathRoute(11), Tee: true},
		{ID: PacketID{Source: 0, Channel: 1}, Route: pathRoute(7), Inject: 40},
		{ID: PacketID{Source: 0, Channel: 2, Seq: 3}, Route: pathRoute(5), Inject: 80, Flits: 5},
	}
	base := mustRun(t, g, p, specs, Options{Trace: true, RecordDeliveries: true})

	obs := &recObserver{}
	res := mustRun(t, g, p, specs, Options{Trace: true, RecordDeliveries: true, Observe: obs})

	if res.Finish != base.Finish || res.Events != base.Events || res.Deliveries != base.Deliveries {
		t.Fatalf("observer perturbed the run: finish %d/%d events %d/%d deliveries %d/%d",
			res.Finish, base.Finish, res.Events, base.Events, res.Deliveries, base.Deliveries)
	}

	performed := res.Injections + res.CutThroughs + res.BufferedHops + res.Stalls
	if len(obs.hops) != performed {
		t.Fatalf("observed %d hops, counters say %d performed", len(obs.hops), performed)
	}
	if len(obs.deliveries) != res.Deliveries {
		t.Fatalf("observed %d deliveries, result says %d", len(obs.deliveries), res.Deliveries)
	}

	// Each observed hop must be byte-equal to the corresponding trace
	// entry, carry the right arc id and the effective flit count.
	seen := map[PacketID]int{}
	arcs := g.Arcs()
	for _, h := range obs.hops {
		k := seen[h.ID]
		seen[h.ID] = k + 1
		tr := res.Traces[h.ID]
		if k >= len(tr) {
			t.Fatalf("packet %v: observed %d hops, trace has %d", h.ID, k+1, len(tr))
		}
		want := tr[k]
		if h.From != want.From || h.To != want.To || h.Kind != want.Kind ||
			h.HeaderDepart != want.HeaderDepart || h.TailArrive != want.TailArrive ||
			h.Blocked != want.Blocked || h.Hop != k {
			t.Fatalf("packet %v hop %d: observed %+v, trace %+v", h.ID, k, h, want)
		}
		if h.Arc < 0 || h.Arc >= len(arcs) || arcs[h.Arc].From != h.From || arcs[h.Arc].To != h.To {
			t.Fatalf("packet %v hop %d: arc id %d does not resolve to %d→%d", h.ID, k, h.Arc, h.From, h.To)
		}
		wantFlits := p.Mu
		if h.ID.Channel == 2 {
			wantFlits = 5
		}
		if h.Flits != wantFlits {
			t.Fatalf("packet %v hop %d: flits = %d, want %d", h.ID, k, h.Flits, wantFlits)
		}
	}
	for id, tr := range res.Traces {
		if seen[id] != len(tr) {
			t.Fatalf("packet %v: observed %d hops, trace has %d", id, seen[id], len(tr))
		}
	}
	for i, d := range obs.deliveries {
		want := res.Deliveriesv[i]
		if d != want {
			t.Fatalf("delivery %d: observed %+v, recorded %+v", i, d, want)
		}
	}
}

// A FaultDrop cancels the hop before the link is acquired; the observer
// must never see the canceled hop nor any downstream delivery of the
// killed copy, and corrupted copies must be flagged on OnDeliver.
func TestObserverSkipsDroppedHops(t *testing.T) {
	g := topology.MustCycle(12)
	p := dedicated(2)
	specs := []PacketSpec{
		{ID: PacketID{Source: 0, Channel: 0}, Route: pathRoute(6), Tee: true},
		{ID: PacketID{Source: 0, Channel: 1}, Route: pathRoute(6), Inject: 1000, Tee: true},
	}
	hook := hookFunc(func(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
		if id.Channel == 0 && hop == 3 {
			return FaultDrop
		}
		if id.Channel == 1 && hop == 2 {
			return FaultCorrupt
		}
		return FaultNone
	})
	obs := &recObserver{}
	res := mustRun(t, g, p, specs, Options{Fault: hook, RecordDeliveries: true, Observe: obs})
	if res.FaultDrops != 1 || res.FaultTaints != 1 {
		t.Fatalf("drops=%d taints=%d, want 1 and 1", res.FaultDrops, res.FaultTaints)
	}
	for _, h := range obs.hops {
		if h.ID.Channel == 0 && h.Hop >= 3 {
			t.Fatalf("observed hop %d of the dropped packet", h.Hop)
		}
	}
	if len(obs.deliveries) != res.Deliveries {
		t.Fatalf("observed %d deliveries, result says %d", len(obs.deliveries), res.Deliveries)
	}
	for _, d := range obs.deliveries {
		wantCorrupt := d.ID.Channel == 1 && d.Node >= 3
		if d.Corrupted != wantCorrupt {
			t.Fatalf("delivery %+v: corrupted = %v, want %v", d, d.Corrupted, wantCorrupt)
		}
	}
}
