// Package simnet is a discrete-event simulator of point-to-point
// interconnection networks with virtual cut-through, wormhole, and
// store-and-forward switching, implementing exactly the timing model of
// Lee & Shin's analysis:
//
//   - τ_S (Params.TauS): message startup time paid whenever a packet is
//     injected or forwarded from intermediate storage;
//   - α (Params.Alpha): the delay for a packet header to cut through one
//     intermediate node's FIFO buffer;
//   - μ (Params.Mu): packet length in FIFO-buffer units, so the
//     transmission time of a whole packet is L·τ_L = μα;
//   - D (Params.D): additional queueing delay experienced by a packet
//     that found its transmitter busy.
//
// A cut-through hop therefore advances the header by α; a buffered hop
// costs full reception (μα) plus τ_S (plus D if the transmitter was
// busy). Every node can drive all of its transmitters and receivers
// concurrently (the paper's Fig. 7 HARTS-style architecture), and a node
// "tees" a copy of every packet that cuts through it, which is how a
// single packet circulating a directed Hamiltonian cycle delivers the
// message to all N-1 downstream nodes.
//
// Each directed link carries one packet at a time. The simulator counts
// every acquisition that found the link busy (a contention), so the IHC
// property "no two packets ever contend for the same link" is directly
// observable: a dedicated-mode run must report Contentions == 0.
// Background traffic from other tasks (the paper's ρ) is modeled per link
// as a deterministic seeded on/off renewal process occupying the fraction
// ρ of link capacity.
package simnet

import (
	"fmt"
	"math"
	"math/rand"

	"ihc/internal/topology"
)

// Time is simulated time in abstract ticks. The paper's headline numbers
// use 1 tick = 1 ns (α = 20).
type Time int64

// Mode selects the switching method.
type Mode int

const (
	// VirtualCutThrough advances headers directly from receiver to
	// transmitter; blocked packets are buffered at the node and later
	// forwarded store-and-forward style.
	VirtualCutThrough Mode = iota
	// StoreAndForward fully receives and re-transmits at every hop.
	StoreAndForward
	// Wormhole advances headers like cut-through, but blocked packets
	// stall in the network (no reception into intermediate storage) and
	// resume when the transmitter frees, paying only the queueing delay.
	Wormhole
)

func (m Mode) String() string {
	switch m {
	case VirtualCutThrough:
		return "virtual-cut-through"
	case StoreAndForward:
		return "store-and-forward"
	case Wormhole:
		return "wormhole"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Params collects the timing model and operating conditions of a network.
type Params struct {
	TauS  Time    // message startup time τ_S
	Alpha Time    // per-node cut-through delay α
	Mu    int     // packet length in FIFO-buffer units μ (>= 1)
	D     Time    // queueing delay when a transmitter is found busy
	Mode  Mode    // switching method
	Rho   float64 // background link utilization by other tasks, 0 <= ρ < 1
	Seed  int64   // seed for the background-traffic processes
}

// Defaulted returns p with unset fields replaced by the repository's
// standard experiment parameters (τ_S=100, α=20, μ=2, D=37 ticks,
// virtual cut-through). A fully zero Params selects all defaults. A
// partially filled Params keeps every field the caller set and defaults
// only the fields whose zero value is invalid (α and μ); explicit
// TauS=0 (free startup) and D=0 (no queueing penalty) are legitimate
// values and are preserved.
func (p Params) Defaulted() Params {
	def := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	if p == (Params{}) {
		return def
	}
	if p.Alpha == 0 {
		p.Alpha = def.Alpha
	}
	if p.Mu == 0 {
		p.Mu = def.Mu
	}
	return p
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.TauS < 0 || p.Alpha <= 0 || p.D < 0 {
		return fmt.Errorf("simnet: need TauS,D >= 0 and Alpha > 0, got τ_S=%d α=%d D=%d", p.TauS, p.Alpha, p.D)
	}
	if p.Mu < 1 {
		return fmt.Errorf("simnet: packet length μ must be >= 1, got %d", p.Mu)
	}
	if p.Rho < 0 || p.Rho >= 1 {
		return fmt.Errorf("simnet: background load ρ must be in [0,1), got %g", p.Rho)
	}
	return nil
}

// PacketTime returns μα, the time for a whole packet to cross one link.
func (p Params) PacketTime() Time { return Time(p.Mu) * p.Alpha }

// PacketID identifies a broadcast packet: the originating node, the
// logical channel it travels on (for IHC, the directed Hamiltonian cycle
// index; for tree-based baselines, the branch), and a sequence number for
// algorithms that send several packets per channel.
type PacketID struct {
	Source  topology.Node
	Channel int
	Seq     int
}

func (id PacketID) String() string {
	return fmt.Sprintf("pkt(src=%d ch=%d seq=%d)", id.Source, id.Channel, id.Seq)
}

// PacketSpec describes one packet to simulate: its identity, the exact
// node route it follows (len >= 2, consecutive nodes adjacent in the
// graph), and its injection time at Route[0]. If Tee is true every
// intermediate node on the route receives a copy as the packet passes
// (the HARTS "tee" operation); the final node always receives.
type PacketSpec struct {
	ID     PacketID
	Route  []topology.Node
	Inject Time
	Tee    bool
	// Flits is the packet length in FIFO-buffer units; 0 means the
	// network default μ. Store-and-forward algorithms that merge
	// messages (e.g. FRS) send progressively longer packets.
	Flits int
	// After lists indices (into the Run's spec slice) of packets this
	// packet depends on: it is injected only once every listed packet
	// has delivered a copy at this packet's Route[0], at the latest such
	// delivery time plus Inject (which is then a relative delay). This
	// models redirects (VRS/KS/VSQ: a node re-sends a packet it
	// received) and merges (FRS: a node combines two received messages
	// before relaying). Dependencies must be acyclic.
	After []int
	// Path, when non-nil, supplies this route's pre-compiled arc indices:
	// Route must equal the path's nodes [PathOff, PathOff+len(Route))
	// and the engine skips both per-hop adjacency resolution and the
	// duplicate-directed-link check for this spec — the caller certifies
	// the window repeats no directed link (a window of at most N nodes of
	// an IHC doubled Hamiltonian cycle never does). This is what keeps a
	// Q16-scale ATA's compiled-route footprint at O(γN) — one compiled
	// path per doubled cycle, shared by all N of its window routes —
	// instead of the O(γN²) of compiling every spec separately.
	Path    *CompiledPath
	PathOff int
}

// CompiledPath is a node path resolved to arc indices once, shared by
// every PacketSpec whose Route is a contiguous window of it. Compile
// with Network.CompilePath; a path is only valid for runs on the network
// that compiled it.
type CompiledPath struct {
	net   *Network
	nodes []topology.Node
	arcs  []int32 // arcs[i] = arc id of nodes[i] → nodes[i+1]
}

// CompilePath resolves and validates the node sequence against the
// network's adjacency once, so window routes referencing it skip per-hop
// resolution. The returned path aliases nodes; do not mutate it.
func (n *Network) CompilePath(nodes []topology.Node) (*CompiledPath, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("simnet: compiled path of %d nodes", len(nodes))
	}
	arcs := make([]int32, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		idx := n.arcIndex(nodes[i], nodes[i+1])
		if idx < 0 {
			return nil, fmt.Errorf("simnet: compiled path step %d: {%d,%d} not an edge of %s",
				i, nodes[i], nodes[i+1], n.g.Name())
		}
		arcs[i] = idx
	}
	return &CompiledPath{net: n, nodes: nodes, arcs: arcs}, nil
}

// window returns the arc slice for a spec routed over nodes
// [off, off+len(route)). The window's endpoints are checked against the
// route (a cheap guard against off-by-one staging bugs); interior
// equality is the caller's certification — checking it per spec would
// reintroduce the O(γN²) cost compiled paths exist to avoid.
func (p *CompiledPath) window(n *Network, off int, route []topology.Node) ([]int32, error) {
	if p.net != n {
		return nil, fmt.Errorf("simnet: compiled path belongs to a different network")
	}
	end := off + len(route)
	if off < 0 || end > len(p.nodes) {
		return nil, fmt.Errorf("simnet: path window [%d,%d) outside compiled path of %d nodes", off, end, len(p.nodes))
	}
	if route[0] != p.nodes[off] || route[len(route)-1] != p.nodes[end-1] {
		return nil, fmt.Errorf("simnet: route endpoints {%d,%d} disagree with path window {%d,%d}",
			route[0], route[len(route)-1], p.nodes[off], p.nodes[end-1])
	}
	return p.arcs[off : end-1 : end-1], nil
}

// Delivery records one node receiving one packet copy.
type Delivery struct {
	ID   PacketID
	Node topology.Node
	At   Time
	// Corrupted marks a copy whose payload was tainted by a fault hook at
	// some hop upstream of this receiver (always false without a hook).
	Corrupted bool
}

// FaultAction is a fault hook's verdict for one performed hop.
type FaultAction uint8

const (
	// FaultNone relays the copy faithfully.
	FaultNone FaultAction = iota
	// FaultCorrupt taints the packet's payload from this hop onward:
	// every downstream delivery (including this hop's receiver) is
	// recorded with Corrupted = true.
	FaultCorrupt
	// FaultDrop kills the copy before the hop is performed: the link is
	// not acquired, nothing is delivered at the next node, and no further
	// events are scheduled for the packet.
	FaultDrop
)

// FaultHook injects faults into the engine's relay path. It is consulted
// once per performed hop, immediately before the packet acquires the
// outgoing link — after the departure time is known, so temporal plans
// (a node that crashes mid-broadcast, a link that is down for a window
// and then recovers) can decide from the simulated clock. A nil hook
// costs one predictable branch per event; see internal/fault for the
// standard implementation.
//
// Hooks are consulted only for hops that are actually performed; a
// blocked virtual-cut-through attempt that falls back to buffering is
// consulted once, when the buffered send finally departs. Dropping a
// packet that later packets depend on (PacketSpec.After) leaves those
// dependents uninjected, which Run reports as an error — temporal fault
// injection is designed for dependency-free schedules like IHC's.
type FaultHook interface {
	// Relay decides the fate of the hop from→to of packet id. hop is the
	// index of `from` along the packet's route (0 = source injection; the
	// conventional fault models apply node relay faults only at hop >= 1,
	// matching fault.Plan.TraceRoute, where a source's own fault is the
	// caller's concern). depart is the header departure time at `from`.
	Relay(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction
}

// HopKind classifies how a hop was performed.
type HopKind int

const (
	HopInject HopKind = iota // source injection (startup + transmission)
	HopCut                   // cut-through at an intermediate node
	HopBuffer                // buffered: full reception + startup (+D if blocked)
	HopStall                 // wormhole stall: waited in network (+D)
)

func (k HopKind) String() string {
	switch k {
	case HopInject:
		return "inject"
	case HopCut:
		return "cut-through"
	case HopBuffer:
		return "buffered"
	case HopStall:
		return "stalled"
	default:
		return fmt.Sprintf("HopKind(%d)", int(k))
	}
}

// Hop is one step of a packet trace.
type Hop struct {
	From, To     topology.Node
	Kind         HopKind
	HeaderDepart Time // when the header left From
	TailArrive   Time // when the tail fully arrived at To
	Blocked      bool // transmitter (or background traffic) was busy
}

// Result aggregates a simulation run.
type Result struct {
	Finish       Time // latest delivery time (makespan)
	Deliveries   int  // total copies delivered (tee + final)
	Contentions  int  // link acquisitions that found the link busy with another broadcast packet
	BgBlocked    int  // link acquisitions delayed by background traffic
	CutThroughs  int  // hops performed as cut-throughs
	BufferedHops int  // hops performed from intermediate storage
	Stalls       int  // wormhole in-network stalls
	Injections   int  // packets injected
	// Events counts simulator events processed by the run. It is int64
	// explicitly — not platform int — because the paper's Q16 headline
	// run processes ~0.5·10¹² events, past 32-bit range; every counter a
	// Q16 run flows through carries the width end-to-end.
	Events      int64
	LinkBusy    Time // total busy time summed over all links (broadcast traffic only)
	FaultDrops  int  // hops canceled by the fault hook (copy killed in flight)
	FaultTaints int  // hops at which the fault hook corrupted a payload
	Copies      *CopyMatrix
	Traces      map[PacketID][]Hop // populated only when Options.Trace
	Deliveriesv []Delivery         // populated only when Options.RecordDeliveries
}

// Utilization returns the fraction of total link capacity used by the
// broadcast operation over the makespan: LinkBusy / (links * Finish).
func (r *Result) Utilization(links int) float64 {
	if r.Finish <= 0 || links == 0 {
		return 0
	}
	return float64(r.LinkBusy) / (float64(links) * float64(r.Finish))
}

// CopyMatrix counts, for every (receiver, source) pair, how many copies of
// source's message the receiver obtained.
type CopyMatrix struct {
	n      int
	counts []uint16
}

// NewCopyMatrix returns a zeroed n x n copy-count matrix.
func NewCopyMatrix(n int) *CopyMatrix {
	return &CopyMatrix{n: n, counts: make([]uint16, n*n)}
}

// Add records one more copy of src's message at recv. Counts saturate at
// 65535 rather than silently wrapping to 0: chained multi-round runs on
// one matrix can exceed uint16, and a wrapped count would make VerifyATA
// report a missing delivery that in fact happened. A saturated cell still
// fails VerifyATA (it no longer equals the expected exact count), so the
// overflow is loud, never silent.
func (cm *CopyMatrix) Add(recv, src topology.Node) {
	if c := &cm.counts[int(recv)*cm.n+int(src)]; *c < math.MaxUint16 {
		*c++
	}
}

// Merge adds all counts of other into cm, saturating at 65535 like Add.
// The matrices must be the same size.
func (cm *CopyMatrix) Merge(other *CopyMatrix) {
	if other.n != cm.n {
		panic(fmt.Sprintf("simnet: merging %d-node matrix into %d-node matrix", other.n, cm.n))
	}
	for i, c := range other.counts {
		if s := uint32(cm.counts[i]) + uint32(c); s < math.MaxUint16 {
			cm.counts[i] = uint16(s)
		} else {
			cm.counts[i] = math.MaxUint16
		}
	}
}

// Get returns how many copies of src's message recv obtained.
func (cm *CopyMatrix) Get(recv, src topology.Node) int {
	return int(cm.counts[int(recv)*cm.n+int(src)])
}

// VerifyATA checks the all-to-all reliable broadcast postcondition: every
// node received exactly want copies of every other node's message (and
// none of its own, beyond returned copies which the algorithms suppress).
func (cm *CopyMatrix) VerifyATA(want int) error {
	for r := 0; r < cm.n; r++ {
		for s := 0; s < cm.n; s++ {
			got := int(cm.counts[r*cm.n+s])
			switch {
			case r == s && got != 0:
				return fmt.Errorf("simnet: node %d received %d copies of its own message", r, got)
			case r != s && got != want:
				return fmt.Errorf("simnet: node %d received %d copies from %d, want %d", r, got, s, want)
			}
		}
	}
	return nil
}

// MinCopies returns the smallest copy count over all ordered pairs of
// distinct nodes.
func (cm *CopyMatrix) MinCopies() int {
	minC := math.MaxInt
	for r := 0; r < cm.n; r++ {
		for s := 0; s < cm.n; s++ {
			if r == s {
				continue
			}
			if c := int(cm.counts[r*cm.n+s]); c < minC {
				minC = c
			}
		}
	}
	if minC == math.MaxInt {
		return 0
	}
	return minC
}

// link is one directed communication link.
type link struct {
	freeAt Time
	busy   Time // accumulated busy time from broadcast packets
	bg     *bgProcess
}

// Network is a simulatable instance of a graph plus switching parameters.
// Link state is a dense slice indexed by arc id (the position of the arc
// in g.Arcs()). Because the graph's adjacency lists are sorted, the arc
// id of (u, v) is arcBase[u] plus the rank of v among u's neighbors, so
// route compilation resolves and validates each hop with a short scan of
// one adjacency list — the engine never hashes, not even at the
// construction/validation boundary.
type Network struct {
	g       *topology.Graph
	p       Params
	links   []link
	arcBase []int32 // arcBase[u] = number of arcs leaving nodes < u
}

// New builds a network over g with the given parameters.
func New(g *topology.Graph, p Params) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Arc ids are int32 throughout the engine (compiled routes, event
	// routing in the sharded engine); a graph whose 2M directed arcs
	// exceed that is a hard capacity limit, reported up front rather than
	// silently truncated. Q16 has 2M = 2²¹ arcs — about a thousandfold
	// of headroom.
	if 2*g.M() > math.MaxInt32 {
		return nil, fmt.Errorf("simnet: graph %s has %d directed arcs, exceeding the engine's int32 arc-index capacity", g.Name(), 2*g.M())
	}
	nn := g.N()
	n := &Network{
		g:       g,
		p:       p,
		links:   make([]link, 2*g.M()),
		arcBase: make([]int32, nn+1),
	}
	for u := 0; u < nn; u++ {
		n.arcBase[u+1] = n.arcBase[u] + int32(g.Degree(topology.Node(u)))
	}
	if p.Rho > 0 {
		// Each link's background process draws from its own RNG, seeded
		// by passing (Seed, arc id) through splitmix64. The per-stream
		// independence makes the ρ>0 traffic a pure function of (Seed,
		// arc id) — the order links are queried in can never perturb
		// another link's traffic, which is what lets the sharded engine
		// reproduce the sequential pattern exactly. The earlier xor-only
		// mixing kept whole seed bit-planes correlated across arcs;
		// splitmix64's full avalanche decorrelates neighboring arc ids.
		base := splitmix64(uint64(p.Seed))
		for i := range n.links {
			n.links[i].bg = newBgProcess(rand.New(rand.NewSource(int64(splitmix64(base^(uint64(i)+1)*0x9e3779b97f4a7c15)))), p)
		}
	}
	return n, nil
}

// arcIndex resolves the directed link from→to to its dense arc id, or
// -1 when {from, to} is not an edge of the graph (including nodes out of
// range). The id equals the arc's position in g.Arcs().
func (n *Network) arcIndex(from, to topology.Node) int32 {
	if from < 0 || to < 0 || int(from) >= n.g.N() || int(to) >= n.g.N() {
		return -1
	}
	for i, v := range n.g.Neighbors(from) {
		if v == to {
			return n.arcBase[from] + int32(i)
		}
	}
	return -1
}

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Params returns the network's timing parameters.
func (n *Network) Params() Params { return n.p }
