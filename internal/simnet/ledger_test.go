package simnet

import (
	"math/rand"
	"strings"
	"testing"

	"ihc/internal/topology"
)

// TestCopyLedgerBasics pins the closed-form checks: a uniform
// want-per-source fill passes, and each violation class — self copy,
// wrong total, per-source imbalance that preserves the total — fails
// with a distinguishable error.
func TestCopyLedgerBasics(t *testing.T) {
	const n, want = 8, 3
	fill := func() *CopyLedger {
		l := NewCopyLedger(n)
		for r := 0; r < n; r++ {
			for s := 0; s < n; s++ {
				if r == s {
					continue
				}
				for c := 0; c < want; c++ {
					l.Add(topology.Node(r), topology.Node(s))
				}
			}
		}
		return l
	}
	if err := fill().VerifyATA(want); err != nil {
		t.Fatalf("uniform fill rejected: %v", err)
	}

	l := fill()
	l.Add(2, 2)
	if err := l.VerifyATA(want); err == nil || !strings.Contains(err.Error(), "its own message") {
		t.Fatalf("self copy not caught: %v", err)
	}

	l = fill()
	l.Add(3, 5)
	if err := l.VerifyATA(want); err == nil || !strings.Contains(err.Error(), "in total") {
		t.Fatalf("extra copy not caught: %v", err)
	}

	// The adversarial case for a counters-only design: one copy from
	// source 5 replaced by one from source 6 — total preserved, only the
	// fingerprint checksum can notice.
	l = NewCopyLedger(n)
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			if r == s {
				continue
			}
			c := want
			if r == 3 && s == 5 {
				c = want - 1
			}
			if r == 3 && s == 6 {
				c = want + 1
			}
			for k := 0; k < c; k++ {
				l.Add(topology.Node(r), topology.Node(s))
			}
		}
	}
	if err := l.VerifyATA(want); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("per-source imbalance not caught by checksum: %v", err)
	}
}

// TestCopyLedgerMergeCommutes pins the sharded-merge contract: random
// delivery sets split across several ledgers merge to the same totals
// in any order, equal to one ledger fed everything.
func TestCopyLedgerMergeCommutes(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(5))
	type deliv struct{ r, s topology.Node }
	var all []deliv
	for i := 0; i < 2000; i++ {
		all = append(all, deliv{topology.Node(rng.Intn(n)), topology.Node(rng.Intn(n))})
	}
	whole := NewCopyLedger(n)
	parts := []*CopyLedger{NewCopyLedger(n), NewCopyLedger(n), NewCopyLedger(n)}
	for i, d := range all {
		whole.Add(d.r, d.s)
		parts[i%3].Add(d.r, d.s)
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		merged := NewCopyLedger(n)
		for _, i := range order {
			merged.Merge(parts[i])
		}
		for r := 0; r < n; r++ {
			if merged.count[r] != whole.count[r] || merged.self[r] != whole.self[r] || merged.fpSum[r] != whole.fpSum[r] {
				t.Fatalf("merge order %v: receiver %d (count %d self %d sum %#x) != whole (count %d self %d sum %#x)",
					order, r, merged.count[r], merged.self[r], merged.fpSum[r],
					whole.count[r], whole.self[r], whole.fpSum[r])
			}
		}
	}
}

// TestLedgerMatchesMatrix runs the same engine workload with both
// accountants attached and requires them to agree — the ledger is the
// matrix's O(N) shadow, not an independent truth.
func TestLedgerMatchesMatrix(t *testing.T) {
	g, specs := pipelineSpecs(32)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	for _, w := range shardedWorkerCounts {
		net, err := New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		ledger := NewCopyLedger(g.N())
		res, err := net.Run(specs, Options{Copies: true, Ledger: ledger, EngineWorkers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for r := 0; r < g.N(); r++ {
			var wantCount int64
			var wantSum uint64
			for s := 0; s < g.N(); s++ {
				c := int64(res.Copies.Get(topology.Node(r), topology.Node(s)))
				if r == s {
					if ledger.self[r] != c {
						t.Fatalf("workers=%d: receiver %d self copies ledger %d, matrix %d", w, r, ledger.self[r], c)
					}
					continue
				}
				wantCount += c
				wantSum += uint64(c) * ledgerMix(topology.Node(s))
			}
			if ledger.count[r] != wantCount || ledger.fpSum[r] != wantSum {
				t.Fatalf("workers=%d: receiver %d ledger (count %d sum %#x), matrix implies (count %d sum %#x)",
					w, r, ledger.count[r], ledger.fpSum[r], wantCount, wantSum)
			}
		}
	}
}

// TestLedgerShardedIdentical pins byte-identity of the counters-only
// mode across worker counts: the ledger a sharded run merges from its
// shard-locals equals the sequential ledger exactly.
func TestLedgerShardedIdentical(t *testing.T) {
	g, specs := pipelineSpecs(32)
	p := Params{TauS: 0, Alpha: 20, Mu: 1, D: 37} // tightest same-tick fallback regime
	seqNet, err := New(g, p)
	if err != nil {
		t.Fatal(err)
	}
	seqLedger := NewCopyLedger(g.N())
	if _, err := seqNet.Run(specs, Options{Ledger: seqLedger}); err != nil {
		t.Fatal(err)
	}
	for _, w := range shardedWorkerCounts {
		net, err := New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		ledger := NewCopyLedger(g.N())
		if _, err := net.Run(specs, Options{Ledger: ledger, EngineWorkers: w}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for r := 0; r < g.N(); r++ {
			if ledger.count[r] != seqLedger.count[r] || ledger.self[r] != seqLedger.self[r] || ledger.fpSum[r] != seqLedger.fpSum[r] {
				t.Fatalf("workers=%d: receiver %d ledger diverged from sequential", w, r)
			}
		}
	}
}
