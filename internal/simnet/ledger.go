package simnet

import (
	"fmt"

	"ihc/internal/topology"
)

// CopyLedger is the counters-only Theorem-4 accountant: O(N) memory
// where CopyMatrix is O(N²), so a Q14 (16384-node) or Q16 (65536-node)
// full ATA can verify "every node received exactly γ copies of every
// other node's message" without retaining a 536 MB–8.6 GB matrix or an
// O(events) delivery log.
//
// Per receiver it keeps two aggregates over the sources it heard from:
// the total copy count and the sum of a 64-bit fingerprint of each
// source (splitmix64 of the source id — the same full-avalanche mixer
// that seeds per-arc background traffic). The ATA postcondition "want
// copies from each of the N-1 other sources, none from itself" pins
// both aggregates to closed forms:
//
//	count[r] == want · (N-1)
//	fpSum[r] == want · (Σ_s mix(s) − mix(r))   (mod 2⁶⁴)
//
// A violating run escapes detection only if its multiset of source
// fingerprints collides with the expected one under 64-bit wrapping
// sums — for adversarially chosen inputs a checksum, not a proof, but
// for engine verification (where the failure modes are missed or
// duplicated deliveries, not chosen-preimage attacks) the collision
// probability is ~2⁻⁶⁴ per receiver. The exact matrix remains available
// via Options.Copies at scales where O(N²) is affordable; equivalence
// tests pin the two against each other.
//
// Add is single-goroutine (the engine calls it from the event loop);
// sharded runs give each shard a private ledger and Merge them — both
// aggregates are sums, so merging is commutative and the totals are
// identical at every worker count.
type CopyLedger struct {
	n     int
	count []int64  // copies received, per receiver, from any other node
	self  []int64  // copies received from the receiver itself (must stay 0)
	fpSum []uint64 // Σ mix(source) over received copies, per receiver, mod 2⁶⁴
	allFp uint64   // Σ_s mix(s) over all n nodes, mod 2⁶⁴
}

// ledgerMix fingerprints a node id for the ledger's checksum. The +1
// keeps node 0 off splitmix64's fixed seed path (mix(0) is a perfectly
// good value, but distinct inputs to the bijection guarantee distinct
// fingerprints, and offsetting costs nothing).
func ledgerMix(node topology.Node) uint64 {
	return splitmix64(uint64(node) + 1)
}

// NewCopyLedger returns a zeroed ledger for an n-node network.
func NewCopyLedger(n int) *CopyLedger {
	l := &CopyLedger{
		n:     n,
		count: make([]int64, n),
		self:  make([]int64, n),
		fpSum: make([]uint64, n),
	}
	for s := 0; s < n; s++ {
		l.allFp += ledgerMix(topology.Node(s))
	}
	return l
}

// N returns the node count the ledger was sized for.
func (l *CopyLedger) N() int { return l.n }

// Add records one copy of src's message delivered at recv.
func (l *CopyLedger) Add(recv, src topology.Node) {
	if recv == src {
		l.self[recv]++
		return
	}
	l.count[recv]++
	l.fpSum[recv] += ledgerMix(src)
}

// Count returns how many copies recv received from nodes other than
// itself.
func (l *CopyLedger) Count(recv topology.Node) int64 { return l.count[recv] }

// Merge adds all of other's aggregates into l. The ledgers must be the
// same size. Merging is commutative and associative, so shard-local
// ledgers combined in any order yield identical totals.
func (l *CopyLedger) Merge(other *CopyLedger) {
	if other.n != l.n {
		panic(fmt.Sprintf("simnet: merging %d-node ledger into %d-node ledger", other.n, l.n))
	}
	for i := 0; i < l.n; i++ {
		l.count[i] += other.count[i]
		l.self[i] += other.self[i]
		l.fpSum[i] += other.fpSum[i]
	}
}

// Reset zeroes the per-receiver aggregates, keeping the backing arrays
// (and the precomputed all-nodes fingerprint sum) for reuse.
func (l *CopyLedger) Reset() {
	clear(l.count)
	clear(l.self)
	clear(l.fpSum)
}

// VerifyReceiver checks the postcondition for a single receiver: node
// recv received exactly want copies of every other node's message and
// none of its own. This is the per-node verdict a live daemon renders
// over its own row — each cluster member keeps a full-size ledger but
// only ever adds to its own row, so the whole-network VerifyATA would
// wrongly flag the other (empty) rows.
func (l *CopyLedger) VerifyReceiver(recv topology.Node, want int) error {
	if int(recv) < 0 || int(recv) >= l.n {
		return fmt.Errorf("simnet: receiver %d outside [0,%d)", recv, l.n)
	}
	r := int(recv)
	if l.self[r] != 0 {
		return fmt.Errorf("simnet: node %d received %d copies of its own message", r, l.self[r])
	}
	wantCount := int64(want) * int64(l.n-1)
	if l.count[r] != wantCount {
		return fmt.Errorf("simnet: node %d received %d copies in total, want %d (%d from each of %d sources)",
			r, l.count[r], wantCount, want, l.n-1)
	}
	wantSum := uint64(want) * (l.allFp - ledgerMix(recv))
	if l.fpSum[r] != wantSum {
		return fmt.Errorf("simnet: node %d's copy checksum %#x differs from the uniform %d-per-source expectation %#x: some source is over-represented and another under-represented",
			r, l.fpSum[r], want, wantSum)
	}
	return nil
}

// VerifyATA checks the all-to-all postcondition against the ledger:
// every node received exactly want copies of every other node's message
// and none of its own. Count mismatches are exact; a per-source
// imbalance that preserves the total is caught by the fingerprint
// checksum (up to the ~2⁻⁶⁴ collision probability documented on the
// type).
func (l *CopyLedger) VerifyATA(want int) error {
	for r := 0; r < l.n; r++ {
		if l.self[r] != 0 {
			return fmt.Errorf("simnet: node %d received %d copies of its own message", r, l.self[r])
		}
		wantCount := int64(want) * int64(l.n-1)
		if l.count[r] != wantCount {
			return fmt.Errorf("simnet: node %d received %d copies in total, want %d (%d from each of %d sources)",
				r, l.count[r], wantCount, want, l.n-1)
		}
		wantSum := uint64(want) * (l.allFp - ledgerMix(topology.Node(r)))
		if l.fpSum[r] != wantSum {
			return fmt.Errorf("simnet: node %d's copy checksum %#x differs from the uniform %d-per-source expectation %#x: some source is over-represented and another under-represented",
				r, l.fpSum[r], want, wantSum)
		}
	}
	return nil
}
