package simnet

import "math/rand"

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators"): a full-avalanche
// bijection on 64-bit words, used to derive statistically independent
// per-arc RNG seeds from (Params.Seed, arc id).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// bgProcess models "normal network traffic" on one directed link as a
// renewal on/off process: busy periods of one packet time (μα) separated
// by idle periods drawn from an exponential distribution with mean chosen
// so the long-run busy fraction is ρ. The process is generated lazily and
// deterministically from the link's seeded RNG; queries must come with
// non-decreasing times, which the event loop guarantees.
type bgProcess struct {
	rng       *rand.Rand
	busyLen   float64 // μα
	idleMean  float64 // μα (1-ρ)/ρ
	busyStart Time    // start of the current/next busy period
	busyEnd   Time
}

func newBgProcess(rng *rand.Rand, p Params) *bgProcess {
	b := &bgProcess{
		rng:      rng,
		busyLen:  float64(p.PacketTime()),
		idleMean: float64(p.PacketTime()) * (1 - p.Rho) / p.Rho,
	}
	// Random initial phase: first busy period starts after one idle draw.
	b.busyStart = Time(b.rng.ExpFloat64() * b.idleMean)
	b.busyEnd = b.busyStart + Time(b.busyLen)
	return b
}

// advance generates busy periods until the current one ends at or after t.
func (b *bgProcess) advance(t Time) {
	for b.busyEnd <= t {
		idle := Time(b.rng.ExpFloat64() * b.idleMean)
		if idle < 1 {
			idle = 1
		}
		b.busyStart = b.busyEnd + idle
		b.busyEnd = b.busyStart + Time(b.busyLen)
	}
}

// freeFrom returns the earliest instant >= t at which the link is not
// occupied by background traffic, and whether t itself fell in a busy
// period. A transmission started at the returned time is assumed to hold
// the link, pushing subsequent background packets behind it (they are not
// separately accounted).
func (b *bgProcess) freeFrom(t Time) (Time, bool) {
	b.advance(t)
	if t >= b.busyStart && t < b.busyEnd {
		return b.busyEnd, true
	}
	return t, false
}
