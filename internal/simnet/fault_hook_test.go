package simnet

import (
	"testing"

	"ihc/internal/topology"
)

// hookFunc adapts a closure to the FaultHook interface for tests.
type hookFunc func(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction

func (f hookFunc) Relay(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
	return f(id, hop, from, to, depart)
}

// teeRun simulates one teed packet around a 6-cycle under the given hook
// and returns the result.
func teeRun(t *testing.T, hook FaultHook) *Result {
	t.Helper()
	g := topology.MustCycle(6)
	net, err := New(g, Params{TauS: 100, Alpha: 20, Mu: 2, D: 37})
	if err != nil {
		t.Fatal(err)
	}
	specs := []PacketSpec{{
		ID:    PacketID{Source: 0},
		Route: []topology.Node{0, 1, 2, 3, 4, 5},
		Tee:   true,
	}}
	res, err := net.Run(specs, Options{RecordDeliveries: true, Fault: hook})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultHookDrop kills the copy at hop 3 (node 3 → 4): nodes 1..3
// still receive, nodes 4 and 5 never do, and nothing downstream of the
// drop is simulated.
func TestFaultHookDrop(t *testing.T) {
	res := teeRun(t, hookFunc(func(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
		if hop == 3 {
			return FaultDrop
		}
		return FaultNone
	}))
	if res.FaultDrops != 1 {
		t.Fatalf("FaultDrops = %d, want 1", res.FaultDrops)
	}
	if res.Deliveries != 3 {
		t.Fatalf("Deliveries = %d, want 3 (nodes 1..3)", res.Deliveries)
	}
	got := map[topology.Node]bool{}
	for _, d := range res.Deliveriesv {
		if d.Corrupted {
			t.Fatalf("drop-only hook produced a corrupted delivery at node %d", d.Node)
		}
		got[d.Node] = true
	}
	for _, n := range []topology.Node{1, 2, 3} {
		if !got[n] {
			t.Errorf("node %d missing its copy", n)
		}
	}
	for _, n := range []topology.Node{4, 5} {
		if got[n] {
			t.Errorf("node %d received a copy past the drop point", n)
		}
	}
}

// TestFaultHookCorrupt taints the copy at hop 2 (node 2 → 3): deliveries
// at nodes 1 and 2 are clean, deliveries at 3..5 carry the taint.
func TestFaultHookCorrupt(t *testing.T) {
	res := teeRun(t, hookFunc(func(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
		if hop == 2 {
			return FaultCorrupt
		}
		return FaultNone
	}))
	if res.FaultTaints != 1 {
		t.Fatalf("FaultTaints = %d, want 1", res.FaultTaints)
	}
	if res.Deliveries != 5 {
		t.Fatalf("Deliveries = %d, want 5 (corruption must not drop copies)", res.Deliveries)
	}
	for _, d := range res.Deliveriesv {
		wantTaint := d.Node >= 3
		if d.Corrupted != wantTaint {
			t.Errorf("node %d: Corrupted = %v, want %v", d.Node, d.Corrupted, wantTaint)
		}
	}
}

// TestFaultHookTemporal exercises the clock the hook sees: a link that is
// "down" before a threshold departure time drops every early hop, so only
// the later ones go through. The hook also checks departs are
// non-decreasing along a single packet's route.
func TestFaultHookTemporal(t *testing.T) {
	var departs []Time
	cut := Time(0)
	first := true
	res := teeRun(t, hookFunc(func(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
		departs = append(departs, depart)
		if first {
			// Fail the link for a window that ends just after hop 1's
			// departure: hop 0 and 1 are dropped... except a drop at hop 0
			// kills the packet, so use the second hop's time from a probe
			// run instead. Simplest deterministic choice: drop while
			// depart is below the first observed depart + 1 tick means
			// only hop 0 would drop. Use a fixed cut at the first depart.
			cut = depart
			first = false
		}
		if depart <= cut && hop > 0 {
			return FaultDrop
		}
		return FaultNone
	}))
	for i := 1; i < len(departs); i++ {
		if departs[i] < departs[i-1] {
			t.Fatalf("departure times went backwards: %v", departs)
		}
	}
	// cut == hop 0's depart, and every later hop departs strictly later on
	// this uncontended route, so nothing else is dropped.
	if res.FaultDrops != 0 {
		t.Fatalf("FaultDrops = %d, want 0 (window closed before any relay hop)", res.FaultDrops)
	}
	if res.Deliveries != 5 {
		t.Fatalf("Deliveries = %d, want 5", res.Deliveries)
	}
}

// TestFaultHookScratchReuse pins two properties of the taint bookkeeping:
// a faulted run followed by a fault-free run on the same Scratch must not
// leak stale taint bits, and the fault-free run's aggregate counters must
// be identical to a never-faulted run (the nil-hook path is untouched).
func TestFaultHookScratchReuse(t *testing.T) {
	g, specs := pipelineSpecs(16)
	p := Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	sc := NewScratch()

	run := func(opts Options) *Result {
		net, err := New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.RunScratch(specs, opts, sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(Options{RecordDeliveries: true})
	tainted := run(Options{RecordDeliveries: true, Fault: hookFunc(
		func(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
			return FaultCorrupt
		})})
	if tainted.FaultTaints == 0 {
		t.Fatal("corrupt-everything hook tainted nothing")
	}
	for _, d := range tainted.Deliveriesv {
		if !d.Corrupted {
			t.Fatalf("delivery at node %d escaped the corrupt-everything hook", d.Node)
		}
	}
	after := run(Options{RecordDeliveries: true})
	if keyOf(after) != keyOf(clean) {
		t.Fatalf("fault-free run after a faulted run differs: %+v != %+v", keyOf(after), keyOf(clean))
	}
	for _, d := range after.Deliveriesv {
		if d.Corrupted {
			t.Fatalf("stale taint bit leaked into a fault-free run at node %d", d.Node)
		}
	}
	// And a second faulted run must re-clear its own bits: corrupt only
	// packet 0 and check the others are clean.
	partial := run(Options{RecordDeliveries: true, Fault: hookFunc(
		func(id PacketID, hop int, from, to topology.Node, depart Time) FaultAction {
			if id.Source == 0 && hop == 0 {
				return FaultCorrupt
			}
			return FaultNone
		})})
	for _, d := range partial.Deliveriesv {
		if want := d.ID.Source == 0; d.Corrupted != want {
			t.Fatalf("pkt src=%d at node %d: Corrupted = %v, want %v",
				d.ID.Source, d.Node, d.Corrupted, want)
		}
	}
}
