package observe

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestJSONLExport(t *testing.T) {
	_, rec := record(t, 2, testParams)
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	rec.replay(j)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := 0
	hops, dels := 0, 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var obj map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		switch obj["type"] {
		case "hop":
			hops++
			for _, k := range []string{"src", "ch", "seq", "hop", "from", "to", "arc", "kind", "depart", "tail", "flits"} {
				if _, ok := obj[k]; !ok {
					t.Fatalf("hop record missing %q: %v", k, obj)
				}
			}
		case "deliver":
			dels++
		default:
			t.Fatalf("unknown record type %v", obj["type"])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != len(rec.evs) || hops == 0 || dels == 0 {
		t.Fatalf("exported %d lines (%d hops, %d deliveries), recorded %d events", lines, hops, dels, len(rec.evs))
	}
}

func TestChromeTraceExport(t *testing.T) {
	_, rec := record(t, 2, testParams)
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	rec.replay(ct)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) != len(rec.evs) {
		t.Fatalf("trace has %d events, recorded %d", len(events), len(rec.evs))
	}
	for i, ev := range events {
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "i" {
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d: missing ts", i)
		}
	}
}

// An empty trace must still be a valid JSON array.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	var events []interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty trace invalid: %v %v", err, events)
	}
}
