package observe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ihc/internal/simnet"
)

// jsonlHop is the JSONL wire form of one hop record.
type jsonlHop struct {
	Type         string      `json:"type"` // "hop"
	Source       int         `json:"src"`
	Channel      int         `json:"ch"`
	Seq          int         `json:"seq"`
	Hop          int         `json:"hop"`
	From         int         `json:"from"`
	To           int         `json:"to"`
	Arc          int         `json:"arc"`
	Kind         string      `json:"kind"`
	HeaderDepart simnet.Time `json:"depart"`
	TailArrive   simnet.Time `json:"tail"`
	Flits        int         `json:"flits"`
	Blocked      bool        `json:"blocked,omitempty"`
}

// jsonlDeliver is the JSONL wire form of one delivery record.
type jsonlDeliver struct {
	Type      string      `json:"type"` // "deliver"
	Source    int         `json:"src"`
	Channel   int         `json:"ch"`
	Seq       int         `json:"seq"`
	Node      int         `json:"node"`
	At        simnet.Time `json:"at"`
	Corrupted bool        `json:"corrupted,omitempty"`
}

// JSONL streams every observed hop and delivery as one JSON object per
// line — greppable, jq-able, and replayable. Buffered; call Flush (or
// Close) when the run completes. The first write error sticks and is
// reported by Flush.
type JSONL struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL exporter writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// OnHop implements simnet.Observer.
func (j *JSONL) OnHop(h simnet.HopEvent) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonlHop{
		Type: "hop", Source: int(h.ID.Source), Channel: h.ID.Channel, Seq: h.ID.Seq,
		Hop: h.Hop, From: int(h.From), To: int(h.To), Arc: h.Arc,
		Kind: h.Kind.String(), HeaderDepart: h.HeaderDepart, TailArrive: h.TailArrive,
		Flits: h.Flits, Blocked: h.Blocked,
	})
}

// OnDeliver implements simnet.Observer.
func (j *JSONL) OnDeliver(d simnet.Delivery) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonlDeliver{
		Type: "deliver", Source: int(d.ID.Source), Channel: d.ID.Channel, Seq: d.ID.Seq,
		Node: int(d.Node), At: d.At, Corrupted: d.Corrupted,
	})
}

// Flush drains the buffer and reports the first error encountered.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// ChromeTrace writes the observed stream in the Chrome trace-event
// format (the JSON array flavor), loadable in chrome://tracing or
// Perfetto: each hop is a complete ("X") slice on the track of its
// directed link, each delivery an instant ("i") event on the track of
// the receiving node, and one simulated tick maps to one microsecond
// of trace time. Call Close to terminate the JSON array.
type ChromeTrace struct {
	w     *bufio.Writer
	err   error
	first bool
}

// NewChromeTrace returns a trace writer targeting w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	ct := &ChromeTrace{w: bufio.NewWriterSize(w, 1<<16), first: true}
	_, ct.err = ct.w.WriteString("[\n")
	return ct
}

func (ct *ChromeTrace) emit(raw string) {
	if ct.err != nil {
		return
	}
	if !ct.first {
		if _, ct.err = ct.w.WriteString(",\n"); ct.err != nil {
			return
		}
	}
	ct.first = false
	_, ct.err = ct.w.WriteString(raw)
}

// OnHop implements simnet.Observer.
func (ct *ChromeTrace) OnHop(h simnet.HopEvent) {
	name, err := json.Marshal(fmt.Sprintf("%v %s", h.ID, h.Kind))
	if err != nil {
		ct.err = err
		return
	}
	tid, err := json.Marshal(fmt.Sprintf("link %d→%d", h.From, h.To))
	if err != nil {
		ct.err = err
		return
	}
	ct.emit(fmt.Sprintf(`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%s,"args":{"hop":%d,"flits":%d,"blocked":%v}}`,
		name, h.HeaderDepart, h.TailArrive-h.HeaderDepart, tid, h.Hop, h.Flits, h.Blocked))
}

// OnDeliver implements simnet.Observer.
func (ct *ChromeTrace) OnDeliver(d simnet.Delivery) {
	name, err := json.Marshal(fmt.Sprintf("deliver %v", d.ID))
	if err != nil {
		ct.err = err
		return
	}
	tid, err := json.Marshal(fmt.Sprintf("node %d", d.Node))
	if err != nil {
		ct.err = err
		return
	}
	ct.emit(fmt.Sprintf(`{"name":%s,"ph":"i","ts":%d,"pid":1,"tid":%s,"s":"t","args":{"corrupted":%v}}`,
		name, d.At, tid, d.Corrupted))
}

// Close terminates the JSON array, flushes, and reports the first
// error encountered.
func (ct *ChromeTrace) Close() error {
	if ct.err != nil {
		return ct.err
	}
	if _, ct.err = ct.w.WriteString("\n]\n"); ct.err != nil {
		return ct.err
	}
	return ct.w.Flush()
}
