package observe

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StreamGauges is the continuous-streaming counterpart of Metrics: a
// lock-free (atomics plus one latency reservoir mutex) sink the
// internal/stream nodes publish admission, backpressure, and epoch
// progress into while the service runs. All counters are deltas, so a
// single shared sink across every node of a cluster aggregates
// cluster-wide totals — queue depth and inflight are maintained by
// +1/-1 adjustments and sum correctly across nodes.
//
// The zero value is ready to use; a nil *StreamGauges is a valid no-op
// sink (every method checks the receiver), mirroring the engine's
// zero-cost-when-nil Observer discipline.
type StreamGauges struct {
	submittedHigh atomic.Int64
	submittedLow  atomic.Int64
	shedHigh      atomic.Int64
	shedLow       atomic.Int64
	queueDepth    atomic.Int64
	queueBytes    atomic.Int64
	peakQueue     atomic.Int64
	inflight      atomic.Int64
	peakInflight  atomic.Int64

	epochsCompleted atomic.Int64
	epochsFailed    atomic.Int64
	epochsCaughtUp  atomic.Int64
	payloads        atomic.Int64
	payloadBytes    atomic.Int64
	repaired        atomic.Int64
	naks            atomic.Int64
	joins           atomic.Int64

	mu        sync.Mutex
	latencies []time.Duration
	started   time.Time
	ended     time.Time
}

// latencyReservoirCap bounds the per-epoch latency sample buffer; a
// soak that outruns it keeps the first samples (the steady state it
// measures is reached long before the cap).
const latencyReservoirCap = 1 << 16

// Submitted counts one client payload admitted into an ingress queue.
func (g *StreamGauges) Submitted(high bool, size int) {
	if g == nil {
		return
	}
	if high {
		g.submittedHigh.Add(1)
	} else {
		g.submittedLow.Add(1)
	}
	g.queueBytes.Add(int64(size))
	d := g.queueDepth.Add(1)
	peakMax(&g.peakQueue, d)
}

// Shed counts one client payload refused with ErrShed.
func (g *StreamGauges) Shed(high bool) {
	if g == nil {
		return
	}
	if high {
		g.shedHigh.Add(1)
	} else {
		g.shedLow.Add(1)
	}
}

// Drained counts payloads leaving an ingress queue into an epoch batch.
func (g *StreamGauges) Drained(count, bytes int) {
	if g == nil || count == 0 {
		return
	}
	g.queueDepth.Add(int64(-count))
	g.queueBytes.Add(int64(-bytes))
}

// EpochOpened tracks the inflight-epoch gauge.
func (g *StreamGauges) EpochOpened() {
	if g == nil {
		return
	}
	d := g.inflight.Add(1)
	peakMax(&g.peakInflight, d)
}

// EpochClosed records one epoch leaving the open set. completed
// distinguishes the γ-copy happy path from an exhausted round; latency
// is scheduled-start→local-completion (completed epochs only, and only
// when non-negative — catch-up epochs report their own counter).
func (g *StreamGauges) EpochClosed(completed bool, latency time.Duration) {
	if g == nil {
		return
	}
	g.inflight.Add(-1)
	if !completed {
		g.epochsFailed.Add(1)
		return
	}
	g.epochsCompleted.Add(1)
	if latency < 0 {
		return
	}
	g.mu.Lock()
	if g.started.IsZero() {
		g.started = time.Now().Add(-latency)
	}
	g.ended = time.Now()
	if len(g.latencies) < latencyReservoirCap {
		g.latencies = append(g.latencies, latency)
	}
	g.mu.Unlock()
}

// CaughtUp counts an epoch recovered after a rejoin (late completion of
// a round the node was dead for).
func (g *StreamGauges) CaughtUp() {
	if g == nil {
		return
	}
	g.epochsCaughtUp.Add(1)
}

// Delivered counts client payloads surfaced to the application on one
// node at epoch completion.
func (g *StreamGauges) Delivered(count, bytes int) {
	if g == nil {
		return
	}
	g.payloads.Add(int64(count))
	g.payloadBytes.Add(int64(bytes))
}

// Repaired counts a copy recovered via the pull path; Nak a pull sent;
// Join a rejoin handshake frame sent.
func (g *StreamGauges) Repaired() {
	if g == nil {
		return
	}
	g.repaired.Add(1)
}

func (g *StreamGauges) Nak() {
	if g == nil {
		return
	}
	g.naks.Add(1)
}

func (g *StreamGauges) Join() {
	if g == nil {
		return
	}
	g.joins.Add(1)
}

func peakMax(peak *atomic.Int64, v int64) {
	for {
		cur := peak.Load()
		if v <= cur || peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StreamSnapshot is a JSON-serializable view of a StreamGauges.
type StreamSnapshot struct {
	SubmittedHigh   int64 `json:"submitted_high"`
	SubmittedLow    int64 `json:"submitted_low"`
	ShedHigh        int64 `json:"shed_high"`
	ShedLow         int64 `json:"shed_low"`
	QueueDepth      int64 `json:"queue_depth"`
	QueueBytes      int64 `json:"queue_bytes"`
	PeakQueueDepth  int64 `json:"peak_queue_depth"`
	Inflight        int64 `json:"inflight"`
	PeakInflight    int64 `json:"peak_inflight"`
	EpochsCompleted int64 `json:"epochs_completed"`
	EpochsFailed    int64 `json:"epochs_failed"`
	EpochsCaughtUp  int64 `json:"epochs_caught_up"`
	Payloads        int64 `json:"payloads_delivered"`
	PayloadBytes    int64 `json:"payload_bytes_delivered"`
	Repaired        int64 `json:"repaired"`
	Naks            int64 `json:"naks"`
	Joins           int64 `json:"joins"`
	// Latency percentiles over completed per-node epoch rounds
	// (scheduled start → local γ-copy completion), nanoseconds.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`
	// Throughput over the observed completion span.
	PayloadsPerSec float64 `json:"payloads_per_sec"`
	BytesPerSec    float64 `json:"bytes_per_sec"`
}

// Snapshot renders the gauges. Safe to call concurrently with updates;
// the reservoir is copied before sorting.
func (g *StreamGauges) Snapshot() StreamSnapshot {
	if g == nil {
		return StreamSnapshot{}
	}
	s := StreamSnapshot{
		SubmittedHigh:   g.submittedHigh.Load(),
		SubmittedLow:    g.submittedLow.Load(),
		ShedHigh:        g.shedHigh.Load(),
		ShedLow:         g.shedLow.Load(),
		QueueDepth:      g.queueDepth.Load(),
		QueueBytes:      g.queueBytes.Load(),
		PeakQueueDepth:  g.peakQueue.Load(),
		Inflight:        g.inflight.Load(),
		PeakInflight:    g.peakInflight.Load(),
		EpochsCompleted: g.epochsCompleted.Load(),
		EpochsFailed:    g.epochsFailed.Load(),
		EpochsCaughtUp:  g.epochsCaughtUp.Load(),
		Payloads:        g.payloads.Load(),
		PayloadBytes:    g.payloadBytes.Load(),
		Repaired:        g.repaired.Load(),
		Naks:            g.naks.Load(),
		Joins:           g.joins.Load(),
	}
	g.mu.Lock()
	lat := append([]time.Duration(nil), g.latencies...)
	span := g.ended.Sub(g.started)
	g.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		s.LatencyP50 = lat[pctIdx(len(lat), 0.50)]
		s.LatencyP90 = lat[pctIdx(len(lat), 0.90)]
		s.LatencyP99 = lat[pctIdx(len(lat), 0.99)]
		s.LatencyMax = lat[len(lat)-1]
	}
	if span > 0 {
		s.PayloadsPerSec = float64(s.Payloads) / span.Seconds()
		s.BytesPerSec = float64(s.PayloadBytes) / span.Seconds()
	}
	return s
}

func pctIdx(n int, q float64) int {
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// Summary is a human-readable digest for soak reporting.
func (s StreamSnapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epochs: %d completed, %d failed, %d caught up after rejoin; peak inflight %d\n",
		s.EpochsCompleted, s.EpochsFailed, s.EpochsCaughtUp, s.PeakInflight)
	fmt.Fprintf(&b, "ingress: %d high / %d low admitted, %d high / %d low shed, peak queue depth %d\n",
		s.SubmittedHigh, s.SubmittedLow, s.ShedHigh, s.ShedLow, s.PeakQueueDepth)
	fmt.Fprintf(&b, "delivered: %d payloads (%d bytes), %.1f payloads/s, %.0f B/s\n",
		s.Payloads, s.PayloadBytes, s.PayloadsPerSec, s.BytesPerSec)
	fmt.Fprintf(&b, "round latency p50/p90/p99/max = %s/%s/%s/%s; repair: %d pulls answered, %d NAKs, %d JOINs\n",
		s.LatencyP50, s.LatencyP90, s.LatencyP99, s.LatencyMax, s.Repaired, s.Naks, s.Joins)
	return b.String()
}
