package observe

import (
	"encoding/json"
	"sync"
	"testing"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// fuzzStream is one recorded SQ4 run (η = 1 so the stream contains
// buffered hops, contention, and μ-flit FIFO peaks — the interesting
// aggregates) plus its reference single-sink snapshot, computed once.
var fuzzStream struct {
	once sync.Once
	evs  []recEvent
	ref  []byte
	err  error
}

func loadFuzzStream(t testing.TB) ([]recEvent, []byte) {
	t.Helper()
	fuzzStream.once.Do(func() {
		g := topology.MustSquareTorus(4)
		cycles, err := hamilton.Decompose(g)
		if err != nil {
			fuzzStream.err = err
			return
		}
		x, err := core.New(g, cycles)
		if err != nil {
			fuzzStream.err = err
			return
		}
		rec := &recorder{}
		p := simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
		if _, err := x.Run(core.Config{Eta: 1, Params: p, SkipCopies: true, Observe: rec}); err != nil {
			fuzzStream.err = err
			return
		}
		single := NewMetrics()
		rec.replay(single)
		buf, err := json.Marshal(single.Snapshot())
		if err != nil {
			fuzzStream.err = err
			return
		}
		fuzzStream.evs, fuzzStream.ref = rec.evs, buf
	})
	if fuzzStream.err != nil {
		t.Fatal(fuzzStream.err)
	}
	return fuzzStream.evs, fuzzStream.ref
}

// FuzzMetricsMerge: shard the observer stream of a real run over k
// worker sinks — whole packets per sink, as the harness guarantees —
// with a fuzzer-chosen assignment, then merge the sinks in a
// fuzzer-chosen order. Every choice must reproduce the single-sink
// snapshot byte for byte: aggregation is commutative and associative,
// so the parallel harness's metrics are worker-count independent.
func FuzzMetricsMerge(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 2, 3})
	f.Add(uint8(5), []byte{7, 3, 3, 0, 255, 9})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(16), []byte{1})
	f.Fuzz(func(t *testing.T, nsinks uint8, assign []byte) {
		evs, ref := loadFuzzStream(t)
		k := int(nsinks)%16 + 1
		sinks := make([]*Metrics, k)
		for i := range sinks {
			sinks[i] = NewMetrics()
		}
		pick := func(id simnet.PacketID) int {
			h := int(id.Source)*131071 + id.Channel*8191 + id.Seq*31 + 7
			if h < 0 {
				h = -h
			}
			if len(assign) > 0 {
				h += int(assign[h%len(assign)])
			}
			return h % k
		}
		for _, e := range evs {
			sink := sinks[pick(e.id())]
			if e.isHop {
				sink.OnHop(e.hop)
			} else {
				sink.OnDeliver(e.del)
			}
		}
		// Merge in a fuzzer-derived permutation (selection by rotating
		// offsets from assign).
		agg := NewMetrics()
		remaining := make([]*Metrics, k)
		copy(remaining, sinks)
		for i := 0; len(remaining) > 0; i++ {
			off := i
			if len(assign) > 0 {
				off += int(assign[i%len(assign)])
			}
			j := off % len(remaining)
			agg.Merge(remaining[j])
			remaining = append(remaining[:j], remaining[j+1:]...)
		}
		got, err := json.Marshal(agg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(ref) {
			t.Fatalf("merge of %d sinks diverged from single sink\n got: %s\nwant: %s", k, got, ref)
		}
	})
}
