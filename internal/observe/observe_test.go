package observe

import (
	"encoding/json"
	"testing"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

var testParams = simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

func newIHC(t testing.TB, g *topology.Graph) *core.IHC {
	t.Helper()
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// recEvent is one recorded observer callback, replayable into sinks.
type recEvent struct {
	hop   simnet.HopEvent
	del   simnet.Delivery
	isHop bool
}

func (e recEvent) id() simnet.PacketID {
	if e.isHop {
		return e.hop.ID
	}
	return e.del.ID
}

// recorder captures the observer stream for later replay.
type recorder struct {
	evs []recEvent
}

func (r *recorder) OnHop(h simnet.HopEvent) {
	r.evs = append(r.evs, recEvent{hop: h, isHop: true})
}

func (r *recorder) OnDeliver(d simnet.Delivery) {
	r.evs = append(r.evs, recEvent{del: d})
}

func (r *recorder) replay(o simnet.Observer) {
	for _, e := range r.evs {
		if e.isHop {
			o.OnHop(e.hop)
		} else {
			o.OnDeliver(e.del)
		}
	}
}

// record runs an SQ4 IHC broadcast once and returns the full stream.
func record(t testing.TB, eta int, p simnet.Params) (*core.IHC, *recorder) {
	t.Helper()
	x := newIHC(t, topology.MustSquareTorus(4))
	rec := &recorder{}
	if _, err := x.Run(core.Config{Eta: eta, Params: p, SkipCopies: true, Observe: rec}); err != nil {
		t.Fatal(err)
	}
	return x, rec
}

type countObserver struct{ hops, dels int }

func (c *countObserver) OnHop(simnet.HopEvent)     { c.hops++ }
func (c *countObserver) OnDeliver(simnet.Delivery) { c.dels++ }

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee must collapse to nil")
	}
	a := &countObserver{}
	if Tee(nil, a) != simnet.Observer(a) {
		t.Fatal("single-sink Tee must unwrap")
	}
	b := &countObserver{}
	_, rec := record(t, 2, testParams)
	rec.replay(Tee(a, nil, b))
	if a.hops != b.hops || a.dels != b.dels || a.hops == 0 || a.dels == 0 {
		t.Fatalf("tee fan-out mismatch: a=%d/%d b=%d/%d", a.hops, a.dels, b.hops, b.dels)
	}
}

func snapshotJSON(t *testing.T, m *Metrics) []byte {
	t.Helper()
	buf, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// Sharding the stream by packet over several sinks and merging them in
// any order must reproduce the single-sink snapshot exactly.
func TestMetricsMergeEqualsSingleSink(t *testing.T) {
	_, rec := record(t, 2, testParams)
	single := NewMetrics()
	rec.replay(single)
	want := snapshotJSON(t, single)

	for _, nsinks := range []int{2, 3, 5} {
		sinks := make([]*Metrics, nsinks)
		for i := range sinks {
			sinks[i] = NewMetrics()
		}
		for _, e := range rec.evs {
			id := e.id()
			sink := sinks[(int(id.Source)*31+id.Channel*7+id.Seq)%nsinks]
			if e.isHop {
				sink.OnHop(e.hop)
			} else {
				sink.OnDeliver(e.del)
			}
		}
		// Merge back to front, a different order than front to back.
		agg := NewMetrics()
		for i := nsinks - 1; i >= 0; i-- {
			agg.Merge(sinks[i])
		}
		if got := snapshotJSON(t, agg); string(got) != string(want) {
			t.Fatalf("%d-sink merge diverged from single sink:\n got %s\nwant %s", nsinks, got, want)
		}
	}
}
