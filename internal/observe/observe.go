// Package observe is the observability layer over the simulation
// engine: pluggable sinks for the zero-cost-when-nil per-hop stream
// exposed by simnet.Options.Observe.
//
// Three sink families are provided:
//
//   - Metrics: a mergeable aggregator of per-link utilization and
//     busy-interval histograms, per-node FIFO occupancy high-water
//     marks, per-stage injection/delivery latency percentiles, and
//     NAK/retransmission counters from the repair layer. Per-worker
//     sinks merge deterministically (Shared), like the harness's
//     RunStats.
//   - Oracle: a live checker of the paper's runtime invariants —
//     Theorem 3's contention-freeness for η >= μ, per-FIFO occupancy
//     <= μ flits, route conformance to the compiled directed
//     Hamiltonian cycles with γ edge-disjoint copies per (receiver,
//     source) pair, and Theorem 4's exact T = τ_S + (N-1)α for
//     η = μ = 1.
//   - JSONL / ChromeTrace: streaming exporters for offline inspection
//     (chrome://tracing, Perfetto, jq).
//
// Sinks compose with Tee. All sinks are single-goroutine, matching the
// engine's synchronous callback contract; Shared adds the mutex for
// cross-worker aggregation.
package observe

import "ihc/internal/simnet"

// tee fans one observer stream out to several sinks, in order.
type tee []simnet.Observer

func (t tee) OnHop(h simnet.HopEvent) {
	for _, o := range t {
		o.OnHop(h)
	}
}

func (t tee) OnDeliver(d simnet.Delivery) {
	for _, o := range t {
		o.OnDeliver(d)
	}
}

// Tee combines observers into one. Nil entries are dropped; Tee()
// of no (or all-nil) observers returns nil, preserving the engine's
// fast path, and a single observer is returned unwrapped.
func Tee(obs ...simnet.Observer) simnet.Observer {
	var live []simnet.Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}
