package observe

import (
	"strings"
	"testing"

	"ihc/internal/core"
	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

func modelParams(p simnet.Params) model.Params {
	return model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
}

func runWithOracle(t *testing.T, x *core.IHC, cfg core.Config, ocfg OracleConfig) (*Oracle, *core.Result) {
	t.Helper()
	o, err := NewOracle(ocfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observe = o
	res, err := x.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o, res
}

// η = μ on SQ4: every live check must pass — zero contention, exact
// Table II finish, γ edge-disjoint copies everywhere, occupancy 1.
func TestOracleContentionFreePass(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := newIHC(t, g)
	o, res := runWithOracle(t,
		x, core.Config{Eta: 2, Params: testParams, SkipCopies: true},
		OracleConfig{
			X: x, Params: testParams, Eta: 2,
			ExpectContentionFree: true,
			ExpectFinish:         model.IHCBest(modelParams(testParams), g.N(), 2),
			ExpectCopies:         x.Gamma(),
		})
	if err := o.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Contentions != 0 || st.Violations != 0 {
		t.Fatalf("violations on a contention-free run: %+v", st)
	}
	if st.Finish != res.Finish {
		t.Fatalf("oracle finish %d != result finish %d", st.Finish, res.Finish)
	}
	if st.PeakOccupancy != 1 {
		t.Fatalf("peak occupancy %d, pure cut-through holds 1 flit", st.PeakOccupancy)
	}
	if st.DataHops != x.Gamma()*g.N()*(g.N()-1) {
		t.Fatalf("observed %d data hops, want γN(N-1) = %d", st.DataHops, x.Gamma()*g.N()*(g.N()-1))
	}
}

// Theorem 4: η = μ = 1 finishes at exactly T = τ_S + (N-1)α.
func TestOracleTheorem4ExactFinish(t *testing.T) {
	p := simnet.Params{TauS: 100, Alpha: 20, Mu: 1, D: 37}
	for _, m := range []int{4, 5} {
		g := topology.MustHypercube(m)
		x := newIHC(t, g)
		o, _ := runWithOracle(t,
			x, core.Config{Eta: 1, Params: p, SkipCopies: true},
			OracleConfig{
				X: x, Params: p, Eta: 1,
				ExpectContentionFree: true,
				ExpectFinish:         model.OptimalATATime(modelParams(p), g.N()),
				ExpectCopies:         x.Gamma(),
			})
		if err := o.Finalize(); err != nil {
			t.Fatalf("Q%d: %v", m, err)
		}
	}
}

// η < μ: the engine buffers packets and the oracle must count the
// contention (the checker's teeth), while every structural invariant
// — routes, copies, exclusivity — still holds.
func TestOracleDetectsContention(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := newIHC(t, g)
	o, res := runWithOracle(t,
		x, core.Config{Eta: 1, Params: testParams, SkipCopies: true},
		OracleConfig{X: x, Params: testParams, Eta: 1, ExpectFinish: -1, ExpectCopies: x.Gamma()})
	if err := o.Finalize(); err != nil {
		t.Fatalf("structural invariants must survive contention: %v", err)
	}
	st := o.Stats()
	if st.Contentions == 0 {
		t.Fatal("η < μ run produced no contention — the oracle has no teeth")
	}
	if st.Contentions < res.BufferedHops {
		t.Fatalf("oracle counted %d contentions, engine buffered %d hops", st.Contentions, res.BufferedHops)
	}
	if st.OverlapViolations != 0 {
		t.Fatalf("engine let packets share a link: %d overlaps", st.OverlapViolations)
	}

	// The same run asserted contention-free must fail loudly.
	o2, _ := runWithOracle(t,
		x, core.Config{Eta: 1, Params: testParams, SkipCopies: true},
		OracleConfig{X: x, Params: testParams, Eta: 1, ExpectContentionFree: true, ExpectFinish: -1})
	err := o2.Finalize()
	if err == nil {
		t.Fatal("ExpectContentionFree did not flag an η < μ run")
	}
	if !strings.Contains(err.Error(), "despite η >= μ") {
		t.Fatalf("unhelpful violation message: %v", err)
	}
}

// Light mode keeps the checks that matter at Q8+ scale: route
// conformance, exclusivity, contention counting, exact finish.
func TestOracleLightMode(t *testing.T) {
	g := topology.MustHypercube(5)
	x := newIHC(t, g)
	o, _ := runWithOracle(t,
		x, core.Config{Eta: 2, Params: testParams, SkipCopies: true},
		OracleConfig{
			X: x, Params: testParams, Eta: 2, Light: true,
			ExpectContentionFree: true,
			ExpectFinish:         model.IHCBest(modelParams(testParams), g.N(), 2),
		})
	if err := o.Finalize(); err != nil {
		t.Fatal(err)
	}
	if o.Stats().DataHops == 0 {
		t.Fatal("light oracle observed nothing")
	}
}

// Synthetic streams: each invariant violation must be detected and
// attributed to the right counter.
func TestOracleSyntheticViolations(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := newIHC(t, g)
	cyc := x.DirectedCycle(0)
	alpha := testParams.Alpha

	newO := func(cfg OracleConfig) *Oracle {
		cfg.X = x
		cfg.Params = testParams
		if cfg.Eta == 0 {
			cfg.Eta = 2
		}
		if cfg.ExpectFinish == 0 {
			cfg.ExpectFinish = -1
		}
		o, err := NewOracle(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	// hop k of the cycle-0 packet injected by cyc[0], with correct
	// route endpoints; timing controlled by the caller.
	hop := func(k int, depart simnet.Time, kind simnet.HopKind) simnet.HopEvent {
		return simnet.HopEvent{
			ID:  simnet.PacketID{Source: cyc[0], Channel: 0, Seq: 0},
			Hop: k, From: cyc[k], To: cyc[(k+1)%len(cyc)], Arc: 100 + k,
			Kind: kind, HeaderDepart: depart, TailArrive: depart + testParams.PacketTime(),
			Flits: testParams.Mu,
		}
	}

	t.Run("overlap", func(t *testing.T) {
		o := newO(OracleConfig{})
		h1 := hop(0, 100, simnet.HopInject)
		h2 := hop(1, 100+alpha, simnet.HopCut)
		h2.Arc = h1.Arc // same directed link, overlapping interval, different packet
		h2.ID.Seq = 1
		h2.Hop = 0
		h2.From, h2.To = h1.From, h1.To
		h2.ID.Source = h1.From
		o.OnHop(h1)
		o.OnHop(h2)
		if o.Stats().OverlapViolations != 1 {
			t.Fatalf("overlap not detected: %+v", o.Stats())
		}
	})

	t.Run("route", func(t *testing.T) {
		o := newO(OracleConfig{})
		h := hop(1, 200, simnet.HopCut)
		h.From, h.To = h.To, h.From // traverse the cycle backwards
		o.OnHop(h)
		if o.Stats().RouteViolations != 1 {
			t.Fatalf("route violation not detected: %+v", o.Stats())
		}
		bad := hop(0, 100, simnet.HopInject)
		bad.ID.Channel = 99
		o.OnHop(bad)
		if o.Stats().RouteViolations != 2 {
			t.Fatalf("bogus channel not detected: %+v", o.Stats())
		}
	})

	t.Run("late-cut", func(t *testing.T) {
		o := newO(OracleConfig{})
		o.OnHop(hop(0, 100, simnet.HopInject))
		o.OnHop(hop(1, 100+3*alpha, simnet.HopCut)) // header 3α late
		st := o.Stats()
		if st.LateCuts != 1 {
			t.Fatalf("late cut not detected: %+v", st)
		}
	})

	t.Run("occupancy", func(t *testing.T) {
		o := newO(OracleConfig{})
		big := hop(0, 100, simnet.HopInject)
		big.Flits = 5
		o.OnHop(big)
		next := hop(1, 100+10*alpha, simnet.HopBuffer)
		next.Flits = 5
		next.Blocked = true
		o.OnHop(next)
		st := o.Stats()
		if st.OccupancyViolations != 1 || st.PeakOccupancy != 5 {
			t.Fatalf("occupancy breach (5 flits > μ = 2) not detected: %+v", st)
		}
	})

	t.Run("delivery", func(t *testing.T) {
		o := newO(OracleConfig{ExpectCopies: x.Gamma()})
		id := simnet.PacketID{Source: cyc[0], Channel: 0, Seq: 0}
		o.OnDeliver(simnet.Delivery{ID: id, Node: cyc[0], At: 500}) // own message
		o.OnDeliver(simnet.Delivery{ID: id, Node: cyc[1], At: 500})
		o.OnDeliver(simnet.Delivery{ID: id, Node: cyc[1], At: 540}) // duplicate on one cycle
		st := o.Stats()
		if st.SelfDeliveries != 1 || st.DuplicateCopies != 1 {
			t.Fatalf("delivery violations not detected: %+v", st)
		}
		if err := o.Finalize(); err == nil {
			t.Fatal("missing copies not reported at Finalize")
		} else if st := o.Stats(); st.MissingCopies == 0 {
			t.Fatalf("no missing-copy count: %+v", st)
		}
	})

	t.Run("finish", func(t *testing.T) {
		o := newO(OracleConfig{ExpectFinish: 1000})
		o.OnDeliver(simnet.Delivery{
			ID:   simnet.PacketID{Source: cyc[0], Channel: 0, Seq: 0},
			Node: cyc[1], At: 999,
		})
		if err := o.Finalize(); err == nil || o.Stats().FinishViolations != 1 {
			t.Fatalf("finish mismatch not detected: %v %+v", err, o.Stats())
		}
	})
}

func TestOracleConfigValidation(t *testing.T) {
	x := newIHC(t, topology.MustSquareTorus(4))
	bad := []OracleConfig{
		{},                              // no instance
		{X: x, Eta: 0},                  // η out of range
		{X: x, Eta: 17},                 // η > N
		{X: x, Eta: 1, ExpectCopies: 9}, // more copies than cycles
	}
	for i, cfg := range bad {
		if _, err := NewOracle(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
