package observe

import (
	"encoding/json"
	"testing"

	"ihc/internal/core"
	"ihc/internal/repair"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// A contention-free SQ4 run (η = μ = 2): the aggregator must account
// every hop and delivery, see a peak FIFO occupancy of one flit (pure
// cut-through everywhere), and cover all 64 directed links evenly —
// each with N-1 = 15 transits of μα = 40 ticks.
func TestMetricsContentionFreeRun(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := newIHC(t, g)
	m := NewMetrics()
	res, err := x.Run(core.Config{Eta: 2, Params: testParams, SkipCopies: true, Observe: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contentions != 0 {
		t.Fatalf("contention in a dedicated η = μ run: %d", res.Contentions)
	}
	s := m.Snapshot()

	performed := res.Injections + res.CutThroughs + res.BufferedHops + res.Stalls
	if s.Hops != performed {
		t.Fatalf("snapshot hops = %d, counters say %d", s.Hops, performed)
	}
	if s.Deliveries != res.Deliveries {
		t.Fatalf("snapshot deliveries = %d, result says %d", s.Deliveries, res.Deliveries)
	}
	if s.PeakFIFOFlits != 1 {
		t.Fatalf("peak FIFO = %d flits, pure cut-through holds exactly 1", s.PeakFIFOFlits)
	}
	if len(s.Links) != 2*g.M() {
		t.Fatalf("%d links observed, want all %d directed links", len(s.Links), 2*g.M())
	}
	n := g.N()
	for _, l := range s.Links {
		if l.Hops != n-1 {
			t.Fatalf("link %d→%d carried %d hops, want %d", l.From, l.To, l.Hops, n-1)
		}
		if want := simnet.Time(n-1) * testParams.PacketTime(); l.Busy != want {
			t.Fatalf("link %d→%d busy %d, want %d", l.From, l.To, l.Busy, want)
		}
		if l.MaxInterval != testParams.PacketTime() {
			t.Fatalf("link %d→%d max interval %d, want μα = %d", l.From, l.To, l.MaxInterval, testParams.PacketTime())
		}
		if l.Utilization <= 0 || l.Utilization > 1 {
			t.Fatalf("link %d→%d utilization %g out of (0,1]", l.From, l.To, l.Utilization)
		}
	}
	if len(s.Stages) != 2 {
		t.Fatalf("%d stages observed, want 2", len(s.Stages))
	}
	for _, st := range s.Stages {
		wantInj := n / 2 * x.Gamma() // N/η initiators per cycle, γ cycles
		if st.Injections != wantInj {
			t.Fatalf("stage %d: %d injections, want %d", st.Stage, st.Injections, wantInj)
		}
		if st.Deliveries != wantInj*(n-1) {
			t.Fatalf("stage %d: %d deliveries, want %d", st.Stage, st.Deliveries, wantInj*(n-1))
		}
		// Latency of a tee delivery k hops out is τ_S-free once in
		// flight: kα + μα after injection departure; min is hop 1.
		if min := testParams.Alpha + testParams.PacketTime(); st.LatencyP50 < min || st.LatencyMax < st.LatencyP99 ||
			st.LatencyP99 < st.LatencyP90 || st.LatencyP90 < st.LatencyP50 {
			t.Fatalf("stage %d: implausible latency quantiles %d/%d/%d/%d",
				st.Stage, st.LatencyP50, st.LatencyP90, st.LatencyP99, st.LatencyMax)
		}
		// The last hop (index N-2) departs (N-2)α after injection and
		// its tail lands μα later.
		if want := simnet.Time(n-2)*testParams.Alpha + testParams.PacketTime(); st.LatencyMax != want {
			t.Fatalf("stage %d: max latency %d, want (N-2)α + μα = %d", st.Stage, st.LatencyMax, want)
		}
	}
	if s.Naks != 0 || s.Retransmissions != 0 || s.Corrupted != 0 {
		t.Fatalf("phantom repair traffic: naks=%d retrans=%d corrupted=%d", s.Naks, s.Retransmissions, s.Corrupted)
	}
}

// η < μ: buffering shows up as FIFO pressure (μ flits resident) and as
// a wider busy-interval spread, without losing any hop accounting.
func TestMetricsSeesContention(t *testing.T) {
	x := newIHC(t, topology.MustSquareTorus(4))
	m := NewMetrics()
	res, err := x.Run(core.Config{Eta: 1, Params: testParams, SkipCopies: true, Observe: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contentions == 0 || res.BufferedHops == 0 {
		t.Fatalf("η < μ run reported no contention (cont=%d buf=%d)", res.Contentions, res.BufferedHops)
	}
	s := m.Snapshot()
	if s.PeakFIFOFlits != testParams.Mu {
		t.Fatalf("peak FIFO = %d flits, buffered hops must reach μ = %d", s.PeakFIFOFlits, testParams.Mu)
	}
	buffered := 0
	for _, nm := range s.Nodes {
		buffered += nm.BufferedHops
	}
	if buffered != res.BufferedHops {
		t.Fatalf("per-node buffered hops sum %d, result says %d", buffered, res.BufferedHops)
	}
}

// Repair traffic classification: NAKs (negative Seq) and
// retransmissions (Seq >= RetransSeqStride) are counted separately
// from data-stage metrics.
func TestMetricsClassifiesRepairTraffic(t *testing.T) {
	m := NewMetrics()
	mk := func(seq, hop int) simnet.HopEvent {
		return simnet.HopEvent{
			ID:  simnet.PacketID{Source: 1, Channel: 0, Seq: seq},
			Hop: hop, From: 1, To: 2, Arc: 3, Kind: simnet.HopCut,
			HeaderDepart: 100, TailArrive: 140, Flits: 2,
		}
	}
	m.OnHop(mk(-1, 0))                      // NAK injection
	m.OnHop(mk(-1, 1))                      // NAK relay
	m.OnHop(mk(repair.RetransSeqStride, 0)) // retransmission
	m.OnHop(mk(0, 0))                       // data
	s := m.Snapshot()
	if s.Naks != 1 || s.NakHops != 2 || s.Retransmissions != 1 {
		t.Fatalf("naks=%d nakHops=%d retrans=%d, want 1/2/1", s.Naks, s.NakHops, s.Retransmissions)
	}
	if len(s.Stages) != 1 || s.Stages[0].Injections != 1 {
		t.Fatalf("repair traffic leaked into stage metrics: %+v", s.Stages)
	}
}

// Shared must aggregate worker sinks into the same snapshot as one
// sink, both via Absorb and via direct (locked) observation.
func TestSharedAbsorb(t *testing.T) {
	_, rec := record(t, 2, testParams)
	single := NewMetrics()
	rec.replay(single)
	want := snapshotJSON(t, single)

	sh := NewShared()
	w1, w2 := NewMetrics(), NewMetrics()
	for _, e := range rec.evs {
		sink := w1
		if e.id().Channel%2 == 1 {
			sink = w2
		}
		if e.isHop {
			sink.OnHop(e.hop)
		} else {
			sink.OnDeliver(e.del)
		}
	}
	sh.Absorb(w2)
	sh.Absorb(w1)
	buf, err := json.Marshal(sh.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Fatalf("Shared.Absorb diverged from single sink")
	}

	direct := NewShared()
	rec.replay(direct)
	buf, err = json.Marshal(direct.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Fatalf("Shared direct observation diverged from single sink")
	}
}
