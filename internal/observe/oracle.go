package observe

import (
	"fmt"
	"math/bits"

	"ihc/internal/core"
	"ihc/internal/repair"
	"ihc/internal/simnet"
)

// OracleConfig binds a live theorem oracle to one IHC execution.
type OracleConfig struct {
	// X is the algorithm instance whose invariants are checked; its
	// directed Hamiltonian cycles define the only legal data routes.
	X *core.IHC
	// Params are the run's timing parameters (defaulted like the run).
	Params simnet.Params
	// Eta is the interleaving distance of the observed run.
	Eta int
	// ExpectContentionFree asserts Theorem 3's precondition η >= μ
	// holds for this run: any data hop that blocks, buffers, or stalls
	// is then a violation. With it false (η < μ), contention is merely
	// counted — the sweep campaign asserts the count is nonzero,
	// proving the checker has teeth.
	ExpectContentionFree bool
	// ExpectFinish, when >= 0, requires the latest observed delivery
	// to land at exactly this time (Theorem 4's T = τ_S + (N-1)α for
	// η = μ = 1, or Table II's closed form in general). Negative skips
	// the check.
	ExpectFinish simnet.Time
	// ExpectCopies, when > 0, requires every ordered pair of distinct
	// nodes to end with exactly this many copies, each arriving on a
	// distinct directed cycle (the γ edge-disjoint copies of the
	// reliability argument). Costs O(N²) memory; 0 skips.
	ExpectCopies int
	// Light drops the O(N²) copy ledger and the per-packet timing
	// state, keeping only O(arcs) exclusivity state and counters — for
	// Q8..Q10-scale runs where the full oracle's memory is the
	// bottleneck. Route conformance, link exclusivity, contention
	// counting, and the exact-finish check all remain live.
	Light bool
}

// OracleStats are the oracle's counters after (or during) a run.
type OracleStats struct {
	Hops       int
	DataHops   int
	Deliveries int
	Finish     simnet.Time // latest observed delivery

	// Contentions counts data hops that deviated from pure cut-through
	// relay: blocked on a busy transmitter, buffered, or stalled. Zero
	// is exactly Theorem 3's guarantee.
	Contentions int

	// Engine-soundness and theorem violations (all zero on a healthy
	// contention-free run):
	OverlapViolations   int // two packets occupying one directed link at once
	LateCuts            int // cut-through whose header departed != α after the previous hop
	RouteViolations     int // data hop off its compiled directed cycle
	OccupancyViolations int // receiving FIFO held more than μ flits
	SelfDeliveries      int // node received a copy of its own message
	DuplicateCopies     int // second copy of one message on one cycle at one node
	MissingCopies       int // (receiver, source) pairs short of ExpectCopies at Finalize
	FinishViolations    int // exact-finish mismatch at Finalize
	ExpectedContention  int // contention observed while ExpectContentionFree

	PeakOccupancy int // max flits simultaneously resident in one receiving FIFO
	Violations    int // total violations recorded
}

type arcState struct {
	end  simnet.Time
	id   simnet.PacketID
	used bool
}

// Oracle is a live invariant checker implementing simnet.Observer. It
// verifies, hop by hop, the paper's runtime claims for one IHC
// execution: Theorem 3 contention-freeness (η >= μ), per-FIFO
// occupancy <= μ flits, conformance of every data packet to its
// directed Hamiltonian cycle, γ edge-disjoint copies per (receiver,
// source) pair, engine link exclusivity, and Theorem 4's exact finish
// time. Call Finalize after the run; it returns an error iff any
// violation was observed.
//
// Repair-layer traffic (NAKs, retransmissions — recognized by the
// repair package's Seq conventions) is exempt from the cycle and
// contention checks but still subject to link exclusivity.
type Oracle struct {
	cfg   OracleConfig
	n     int
	gamma int
	alpha simnet.Time
	mu    int

	arcs  map[int]*arcState
	last  map[simnet.PacketID]simnet.Time // previous hop's header departure (full mode)
	chans []uint32                        // per (recv, src): bitmask of cycles delivered (ExpectCopies mode)

	stats      OracleStats
	violations []string
}

// maxViolationDetail caps the recorded violation strings; counting
// continues past the cap.
const maxViolationDetail = 12

// NewOracle validates the configuration and returns a live oracle.
func NewOracle(cfg OracleConfig) (*Oracle, error) {
	if cfg.X == nil {
		return nil, fmt.Errorf("observe: oracle needs an IHC instance")
	}
	cfg.Params = cfg.Params.Defaulted()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	n := cfg.X.N()
	if cfg.Eta < 1 || cfg.Eta > n {
		return nil, fmt.Errorf("observe: η = %d out of range [1,%d]", cfg.Eta, n)
	}
	if cfg.ExpectCopies > cfg.X.Gamma() {
		return nil, fmt.Errorf("observe: cannot expect %d copies from %d directed cycles",
			cfg.ExpectCopies, cfg.X.Gamma())
	}
	if cfg.Light {
		cfg.ExpectCopies = 0
	}
	o := &Oracle{
		cfg:   cfg,
		n:     n,
		gamma: cfg.X.Gamma(),
		alpha: cfg.Params.Alpha,
		mu:    cfg.Params.Mu,
		arcs:  make(map[int]*arcState),
	}
	if !cfg.Light {
		o.last = make(map[simnet.PacketID]simnet.Time)
	}
	if cfg.ExpectCopies > 0 {
		o.chans = make([]uint32, n*n)
	}
	if o.gamma > 32 {
		return nil, fmt.Errorf("observe: %d directed cycles exceed the 32-cycle copy ledger", o.gamma)
	}
	return o, nil
}

func (o *Oracle) violate(format string, args ...interface{}) {
	o.stats.Violations++
	if len(o.violations) < maxViolationDetail {
		o.violations = append(o.violations, fmt.Sprintf(format, args...))
	}
}

// OnHop implements simnet.Observer.
func (o *Oracle) OnHop(h simnet.HopEvent) {
	o.stats.Hops++

	// Link exclusivity: the engine must never let two packets occupy
	// one directed link in overlapping intervals — for η >= μ this is
	// Theorem 3 made observable, and for η < μ it still holds because
	// contention is resolved by buffering, never by sharing the wire.
	as := o.arcs[h.Arc]
	if as == nil {
		as = &arcState{}
		o.arcs[h.Arc] = as
	}
	if as.used && h.HeaderDepart < as.end && h.ID != as.id {
		o.stats.OverlapViolations++
		o.violate("link %d→%d: %v departs at %d while %v occupies it until %d",
			h.From, h.To, h.ID, h.HeaderDepart, as.id, as.end)
	}
	if !as.used || h.TailArrive > as.end {
		as.end, as.id, as.used = h.TailArrive, h.ID, true
	}

	if repair.Classify(h.ID) != repair.TrafficData {
		return
	}
	o.stats.DataHops++

	// Route conformance: hop k of the packet injected by source s on
	// directed cycle j must traverse the cycle's arc k positions past
	// ID_j(s). Pure arithmetic — no per-packet state.
	j := h.ID.Channel
	if j < 0 || j >= o.gamma {
		o.stats.RouteViolations++
		o.violate("%v: channel %d is not a directed cycle index [0,%d)", h.ID, j, o.gamma)
		return
	}
	cyc := o.cfg.X.DirectedCycle(j)
	pos := o.cfg.X.ID(j, h.ID.Source)
	if h.Hop >= o.n-1 {
		o.stats.RouteViolations++
		o.violate("%v: hop %d beyond the %d-hop cycle route", h.ID, h.Hop, o.n-1)
	} else if from, to := cyc[(pos+h.Hop)%o.n], cyc[(pos+h.Hop+1)%o.n]; h.From != from || h.To != to {
		o.stats.RouteViolations++
		o.violate("%v hop %d: traversed %d→%d, cycle %d expects %d→%d",
			h.ID, h.Hop, h.From, h.To, j+1, from, to)
	}

	// Theorem 3: with η >= μ every relay is a pure cut-through — a
	// blocked, buffered, or stalled data hop is contention.
	if h.Blocked || (h.Hop >= 1 && h.Kind != simnet.HopCut) {
		o.stats.Contentions++
		if o.cfg.ExpectContentionFree {
			o.stats.ExpectedContention++
			o.violate("%v hop %d (%d→%d): %s%s despite η >= μ",
				h.ID, h.Hop, h.From, h.To, h.Kind,
				map[bool]string{true: " (blocked)", false: ""}[h.Blocked])
		}
	}

	if o.last == nil {
		return
	}
	prev, ok := o.last[h.ID]
	o.last[h.ID] = h.HeaderDepart
	if h.Hop == 0 || !ok {
		return
	}
	// A cut-through header must leave exactly α after it left the
	// previous node — the pipelining Theorem 4's closed form rests on.
	span := h.HeaderDepart - prev
	if h.Kind == simnet.HopCut && span != o.alpha {
		o.stats.LateCuts++
		o.violate("%v hop %d: cut-through header departed %d ticks after previous hop, want α = %d",
			h.ID, h.Hop, span, o.alpha)
	}
	// FIFO occupancy at the relaying node: the header arrived at
	// h.From when it departed the previous node and flits drain at one
	// per α, so min(flits, ceil(span/α)) flits were simultaneously
	// resident. Theorem 3's corollary bounds this by μ.
	occ := int((span + o.alpha - 1) / o.alpha)
	if occ > h.Flits {
		occ = h.Flits
	}
	if occ > o.stats.PeakOccupancy {
		o.stats.PeakOccupancy = occ
	}
	if occ > o.mu {
		o.stats.OccupancyViolations++
		o.violate("%v hop %d: %d flits resident in node %d's FIFO, bound μ = %d",
			h.ID, h.Hop, occ, h.From, o.mu)
	}
}

// OnDeliver implements simnet.Observer.
func (o *Oracle) OnDeliver(d simnet.Delivery) {
	o.stats.Deliveries++
	if d.At > o.stats.Finish {
		o.stats.Finish = d.At
	}
	if repair.Classify(d.ID) != repair.TrafficData {
		return
	}
	if d.Node == d.ID.Source {
		o.stats.SelfDeliveries++
		o.violate("node %d received its own message back (%v)", d.Node, d.ID)
	}
	if o.chans == nil || d.ID.Channel < 0 || d.ID.Channel >= o.gamma {
		return
	}
	bit := uint32(1) << uint(d.ID.Channel)
	cell := &o.chans[int(d.Node)*o.n+int(d.ID.Source)]
	if *cell&bit != 0 {
		o.stats.DuplicateCopies++
		o.violate("node %d received a second copy of %d's message on cycle %d",
			d.Node, d.ID.Source, d.ID.Channel+1)
	}
	*cell |= bit
}

// Finalize runs the end-state checks and returns an error iff any
// violation was observed, live or final.
func (o *Oracle) Finalize() error {
	if o.cfg.ExpectFinish >= 0 && o.stats.Finish != o.cfg.ExpectFinish {
		o.stats.FinishViolations++
		o.violate("finish = %d, closed form expects exactly %d", o.stats.Finish, o.cfg.ExpectFinish)
	}
	if o.chans != nil && o.cfg.ExpectCopies > 0 {
		for r := 0; r < o.n; r++ {
			for s := 0; s < o.n; s++ {
				if r == s {
					continue
				}
				if got := bits.OnesCount32(o.chans[r*o.n+s]); got != o.cfg.ExpectCopies {
					o.stats.MissingCopies++
					o.violate("node %d holds %d edge-disjoint copies of %d's message, want %d",
						r, got, s, o.cfg.ExpectCopies)
				}
			}
		}
	}
	if o.stats.Violations == 0 {
		return nil
	}
	msg := ""
	for i, v := range o.violations {
		if i > 0 {
			msg += "; "
		}
		msg += v
	}
	if o.stats.Violations > len(o.violations) {
		msg += fmt.Sprintf("; ... (%d violations total)", o.stats.Violations)
	}
	return fmt.Errorf("observe: oracle found %d violation(s): %s", o.stats.Violations, msg)
}

// Stats returns the oracle's counters so far.
func (o *Oracle) Stats() OracleStats { return o.stats }

// Violations returns the recorded violation details (capped at
// maxViolationDetail; Stats().Violations has the full count).
func (o *Oracle) Violations() []string { return o.violations }
