package observe

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"ihc/internal/repair"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// histBuckets is the number of log2 buckets of the busy-interval
// histograms: bucket k counts intervals with 2^(k-1) <= ticks < 2^k
// (bucket 0 counts zero-length intervals). 24 buckets cover intervals
// up to ~8.4M ticks, far beyond any single packet transmission.
const histBuckets = 24

func histBucket(t simnet.Time) int {
	b := bits.Len64(uint64(t))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// LinkMetrics aggregates one directed link's observed traffic.
type LinkMetrics struct {
	From, To    topology.Node
	Hops        int
	Busy        simnet.Time // total occupancy (sum of busy intervals)
	MaxInterval simnet.Time // longest single busy interval
	Hist        [histBuckets]int64
}

// linkKey identifies a link by arc index AND endpoints: arc indices are
// per-topology, so an aggregate spanning several graphs (a multi-network
// experiment) must not conflate two graphs' arc k into one row — and
// must not let whichever worker reported first pick the endpoint labels.
type linkKey struct {
	arc      int
	from, to topology.Node
}

// NodeMetrics aggregates one node's switching behaviour and FIFO
// pressure. PeakFIFOFlits is the high-water mark of the occupancy a
// single hop implies at this node's receiving FIFO: a cut-through
// holds only the header flit while downstream transmission drains the
// packet, a buffered or stalled hop holds the whole packet.
type NodeMetrics struct {
	Injections    int
	CutThroughs   int
	BufferedHops  int
	Stalls        int
	PeakFIFOFlits int
}

// StageMetrics aggregates the data packets of one IHC stage (Seq).
type StageMetrics struct {
	Injections int
	Deliveries int
	Latency    []simnet.Time // per delivery: delivery time - injection departure
}

// pktState is per-packet in-flight bookkeeping (latency pairing).
type pktState struct {
	inject simnet.Time // hop-0 header departure
}

// Metrics is a mergeable observability sink: attach one per worker
// (simnet.Options.Observe), then combine with Merge/Shared.Absorb.
// Aggregation is commutative and associative over whole packets, so
// any merge order of per-worker sinks yields an identical Snapshot —
// the determinism FuzzMetricsMerge locks in.
//
// A Metrics must only be used by one goroutine at a time; reusing one
// across sequential runs is fine (packet IDs restart cleanly at each
// re-injection).
type Metrics struct {
	links    map[linkKey]*LinkMetrics
	nodes    map[topology.Node]*NodeMetrics
	stages   map[int]*StageMetrics
	inflight map[simnet.PacketID]pktState

	hops       int
	deliveries int
	corrupted  int
	naks       int
	retrans    int
	nakHops    int

	started    bool
	start, end simnet.Time
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics {
	return &Metrics{
		links:    make(map[linkKey]*LinkMetrics),
		nodes:    make(map[topology.Node]*NodeMetrics),
		stages:   make(map[int]*StageMetrics),
		inflight: make(map[simnet.PacketID]pktState),
	}
}

func (m *Metrics) span(t simnet.Time) {
	if !m.started || t < m.start {
		m.start = t
		m.started = true
	}
	if t > m.end {
		m.end = t
	}
}

// OnHop implements simnet.Observer.
func (m *Metrics) OnHop(h simnet.HopEvent) {
	m.hops++
	m.span(h.HeaderDepart)
	m.span(h.TailArrive)

	lk := linkKey{arc: h.Arc, from: h.From, to: h.To}
	lm := m.links[lk]
	if lm == nil {
		lm = &LinkMetrics{From: h.From, To: h.To}
		m.links[lk] = lm
	}
	busy := h.TailArrive - h.HeaderDepart
	lm.Hops++
	lm.Busy += busy
	if busy > lm.MaxInterval {
		lm.MaxInterval = busy
	}
	lm.Hist[histBucket(busy)]++

	nm := m.nodes[h.From]
	if nm == nil {
		nm = &NodeMetrics{}
		m.nodes[h.From] = nm
	}
	occ := 0
	switch h.Kind {
	case simnet.HopInject:
		nm.Injections++
		// The source's own send queue is not a network FIFO.
	case simnet.HopCut:
		nm.CutThroughs++
		occ = 1
	case simnet.HopBuffer:
		nm.BufferedHops++
		occ = h.Flits
	case simnet.HopStall:
		nm.Stalls++
		occ = h.Flits
	}
	if occ > nm.PeakFIFOFlits {
		nm.PeakFIFOFlits = occ
	}

	switch repair.Classify(h.ID) {
	case repair.TrafficData:
		if h.Hop == 0 {
			m.inflight[h.ID] = pktState{inject: h.HeaderDepart}
			sm := m.stage(h.ID.Seq)
			sm.Injections++
		}
	case repair.TrafficNak:
		m.nakHops++
		if h.Hop == 0 {
			m.naks++
		}
	case repair.TrafficRetransmission:
		if h.Hop == 0 {
			m.retrans++
		}
	}
}

// OnDeliver implements simnet.Observer.
func (m *Metrics) OnDeliver(d simnet.Delivery) {
	m.deliveries++
	m.span(d.At)
	if d.Corrupted {
		m.corrupted++
	}
	if repair.Classify(d.ID) != repair.TrafficData {
		return
	}
	if st, ok := m.inflight[d.ID]; ok {
		sm := m.stage(d.ID.Seq)
		sm.Deliveries++
		sm.Latency = append(sm.Latency, d.At-st.inject)
	}
}

func (m *Metrics) stage(seq int) *StageMetrics {
	sm := m.stages[seq]
	if sm == nil {
		sm = &StageMetrics{}
		m.stages[seq] = sm
	}
	return sm
}

// Merge folds other into m. Aggregates are sums, maxima, and sample
// concatenations, so merging per-worker sinks in any order produces
// the same Snapshot as long as each packet's events all went to one
// sink (the harness's per-worker attachment guarantees that).
func (m *Metrics) Merge(other *Metrics) {
	for lk, o := range other.links {
		lm := m.links[lk]
		if lm == nil {
			lm = &LinkMetrics{From: o.From, To: o.To}
			m.links[lk] = lm
		}
		lm.Hops += o.Hops
		lm.Busy += o.Busy
		if o.MaxInterval > lm.MaxInterval {
			lm.MaxInterval = o.MaxInterval
		}
		for i, c := range o.Hist {
			lm.Hist[i] += c
		}
	}
	for v, o := range other.nodes {
		nm := m.nodes[v]
		if nm == nil {
			nm = &NodeMetrics{}
			m.nodes[v] = nm
		}
		nm.Injections += o.Injections
		nm.CutThroughs += o.CutThroughs
		nm.BufferedHops += o.BufferedHops
		nm.Stalls += o.Stalls
		if o.PeakFIFOFlits > nm.PeakFIFOFlits {
			nm.PeakFIFOFlits = o.PeakFIFOFlits
		}
	}
	for seq, o := range other.stages {
		sm := m.stage(seq)
		sm.Injections += o.Injections
		sm.Deliveries += o.Deliveries
		sm.Latency = append(sm.Latency, o.Latency...)
	}
	for id, st := range other.inflight {
		m.inflight[id] = st
	}
	m.hops += other.hops
	m.deliveries += other.deliveries
	m.corrupted += other.corrupted
	m.naks += other.naks
	m.retrans += other.retrans
	m.nakHops += other.nakHops
	if other.started {
		if !m.started || other.start < m.start {
			m.start = other.start
			m.started = true
		}
		if other.end > m.end {
			m.end = other.end
		}
	}
}

// LinkSnapshot is one link's aggregates in a Snapshot, utilization
// normalized by the observed span.
type LinkSnapshot struct {
	Arc         int           `json:"arc"`
	From        topology.Node `json:"from"`
	To          topology.Node `json:"to"`
	Hops        int           `json:"hops"`
	Busy        simnet.Time   `json:"busy"`
	MaxInterval simnet.Time   `json:"max_interval"`
	Utilization float64       `json:"utilization"`
	Hist        []int64       `json:"busy_hist_log2,omitempty"`
}

// NodeSnapshot is one node's aggregates in a Snapshot.
type NodeSnapshot struct {
	Node          topology.Node `json:"node"`
	Injections    int           `json:"injections"`
	CutThroughs   int           `json:"cut_throughs"`
	BufferedHops  int           `json:"buffered_hops"`
	Stalls        int           `json:"stalls"`
	PeakFIFOFlits int           `json:"peak_fifo_flits"`
}

// StageSnapshot is one stage's aggregates in a Snapshot, latency
// percentiles over its delivery samples.
type StageSnapshot struct {
	Stage      int         `json:"stage"`
	Injections int         `json:"injections"`
	Deliveries int         `json:"deliveries"`
	LatencyP50 simnet.Time `json:"latency_p50"`
	LatencyP90 simnet.Time `json:"latency_p90"`
	LatencyP99 simnet.Time `json:"latency_p99"`
	LatencyMax simnet.Time `json:"latency_max"`
}

// Snapshot is a deterministic, JSON-serializable view of a Metrics:
// links/nodes/stages in sorted key order, latency samples sorted
// before percentile extraction, so equal aggregates yield byte-equal
// encodings regardless of map iteration or merge order.
type Snapshot struct {
	Start           simnet.Time     `json:"start"`
	End             simnet.Time     `json:"end"`
	Hops            int             `json:"hops"`
	Deliveries      int             `json:"deliveries"`
	Corrupted       int             `json:"corrupted,omitempty"`
	Naks            int             `json:"naks,omitempty"`
	NakHops         int             `json:"nak_hops,omitempty"`
	Retransmissions int             `json:"retransmissions,omitempty"`
	PeakFIFOFlits   int             `json:"peak_fifo_flits"`
	MaxUtilization  float64         `json:"max_utilization"`
	Links           []LinkSnapshot  `json:"links"`
	Nodes           []NodeSnapshot  `json:"nodes"`
	Stages          []StageSnapshot `json:"stages"`
}

func percentile(sorted []simnet.Time, q float64) simnet.Time {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Snapshot renders the current aggregates. The receiver is not
// modified (latency samples are copied before sorting), so snapshots
// may be taken mid-campaign.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{
		Start:           m.start,
		End:             m.end,
		Hops:            m.hops,
		Deliveries:      m.deliveries,
		Corrupted:       m.corrupted,
		Naks:            m.naks,
		NakHops:         m.nakHops,
		Retransmissions: m.retrans,
	}
	span := m.end - m.start

	keys := make([]linkKey, 0, len(m.links))
	for lk := range m.links {
		keys = append(keys, lk)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.arc != b.arc {
			return a.arc < b.arc
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	for _, lk := range keys {
		lm := m.links[lk]
		ls := LinkSnapshot{
			Arc: lk.arc, From: lm.From, To: lm.To,
			Hops: lm.Hops, Busy: lm.Busy, MaxInterval: lm.MaxInterval,
		}
		if span > 0 {
			ls.Utilization = float64(lm.Busy) / float64(span)
		}
		hi := len(lm.Hist)
		for hi > 0 && lm.Hist[hi-1] == 0 {
			hi--
		}
		if hi > 0 {
			ls.Hist = append([]int64(nil), lm.Hist[:hi]...)
		}
		if ls.Utilization > s.MaxUtilization {
			s.MaxUtilization = ls.Utilization
		}
		s.Links = append(s.Links, ls)
	}

	nodes := make([]int, 0, len(m.nodes))
	for v := range m.nodes {
		nodes = append(nodes, int(v))
	}
	sort.Ints(nodes)
	for _, v := range nodes {
		nm := m.nodes[topology.Node(v)]
		s.Nodes = append(s.Nodes, NodeSnapshot{
			Node: topology.Node(v), Injections: nm.Injections,
			CutThroughs: nm.CutThroughs, BufferedHops: nm.BufferedHops,
			Stalls: nm.Stalls, PeakFIFOFlits: nm.PeakFIFOFlits,
		})
		if nm.PeakFIFOFlits > s.PeakFIFOFlits {
			s.PeakFIFOFlits = nm.PeakFIFOFlits
		}
	}

	seqs := make([]int, 0, len(m.stages))
	for seq := range m.stages {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		sm := m.stages[seq]
		lat := append([]simnet.Time(nil), sm.Latency...)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var maxLat simnet.Time
		if len(lat) > 0 {
			maxLat = lat[len(lat)-1]
		}
		s.Stages = append(s.Stages, StageSnapshot{
			Stage: seq, Injections: sm.Injections, Deliveries: sm.Deliveries,
			LatencyP50: percentile(lat, 0.50),
			LatencyP90: percentile(lat, 0.90),
			LatencyP99: percentile(lat, 0.99),
			LatencyMax: maxLat,
		})
	}
	return s
}

// Summary is a human-readable digest for command-line reporting.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span [%d,%d] ticks: %d hops, %d deliveries over %d links / %d nodes\n",
		s.Start, s.End, s.Hops, s.Deliveries, len(s.Links), len(s.Nodes))
	fmt.Fprintf(&b, "peak link utilization %.3f, peak FIFO occupancy %d flits\n",
		s.MaxUtilization, s.PeakFIFOFlits)
	if s.Naks+s.Retransmissions > 0 {
		fmt.Fprintf(&b, "repair traffic: %d NAKs (%d hops), %d retransmissions\n",
			s.Naks, s.NakHops, s.Retransmissions)
	}
	if s.Corrupted > 0 {
		fmt.Fprintf(&b, "corrupted deliveries: %d\n", s.Corrupted)
	}
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "stage %d: %d injections, %d deliveries, latency p50/p90/p99/max = %d/%d/%d/%d\n",
			st.Stage, st.Injections, st.Deliveries,
			st.LatencyP50, st.LatencyP90, st.LatencyP99, st.LatencyMax)
	}
	return b.String()
}

// Shared is a mutex-guarded aggregate of per-worker Metrics sinks —
// the observability counterpart of the harness's RunStats. Workers
// each feed a private Metrics (no locking on the hot path) and Absorb
// it when done; Shared also implements simnet.Observer directly for
// single-goroutine callers that want one sink end to end.
type Shared struct {
	mu  sync.Mutex
	agg *Metrics
}

// NewShared returns an empty shared aggregate.
func NewShared() *Shared { return &Shared{agg: NewMetrics()} }

// Absorb merges a worker's sink into the aggregate.
func (s *Shared) Absorb(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agg.Merge(m)
}

// Snapshot renders the aggregate collected so far.
func (s *Shared) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg.Snapshot()
}

// OnHop implements simnet.Observer (locked; for single-worker use).
func (s *Shared) OnHop(h simnet.HopEvent) {
	s.mu.Lock()
	s.agg.OnHop(h)
	s.mu.Unlock()
}

// OnDeliver implements simnet.Observer (locked; for single-worker use).
func (s *Shared) OnDeliver(d simnet.Delivery) {
	s.mu.Lock()
	s.agg.OnDeliver(d)
	s.mu.Unlock()
}
