package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ihc/internal/hlc"
	"ihc/internal/reliable"
	"ihc/internal/topology"
)

// FrameKind discriminates the wire protocol's message types.
type FrameKind uint8

const (
	// FrameData carries one hop of a scheduled broadcast copy: the
	// source's payload for one channel, travelling its compiled
	// Hamiltonian-cycle route.
	FrameData FrameKind = iota + 1
	// FrameNak asks a peer to retransmit the copy (Source, Channel)
	// that missed its deadline at the requester.
	FrameNak
	// FrameRepair answers a NAK with the stored copy.
	FrameRepair
	// FrameMiss answers a NAK the provider cannot serve (it does not
	// hold the copy either); the requester rotates to the next peer
	// immediately instead of burning the full timeout.
	FrameMiss
	// FrameJoin asks a neighbor what epoch the stream has reached — the
	// first message a restarted node sends. Unsigned, like NAK: it can
	// only trigger a signed FrameEpoch response, never forge one.
	FrameJoin
	// FrameEpoch answers a JOIN with the responder's current epoch in
	// the Epoch field, HMAC-signed under the responder's key (Source =
	// responder) so a forged fast-forward fails verification.
	FrameEpoch
)

func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "DATA"
	case FrameNak:
		return "NAK"
	case FrameRepair:
		return "REPAIR"
	case FrameMiss:
		return "MISS"
	case FrameJoin:
		return "JOIN"
	case FrameEpoch:
		return "EPOCH"
	default:
		return fmt.Sprintf("FrameKind(%d)", uint8(k))
	}
}

// Frame is the unit the transport moves: one signed broadcast copy (or
// one repair-protocol control message) plus the routing state a
// store-and-forward relay needs.
type Frame struct {
	Kind    FrameKind
	From    topology.Node // immediate sender (previous hop), not the origin
	Source  topology.Node // broadcast source the payload belongs to
	Epoch   uint32        // streaming round the copy belongs to (0 for one-shot runs)
	Channel uint8         // Hamiltonian cycle index j < γ
	Stage   uint8         // schedule stage the copy was injected in
	Hop     uint16        // index into Route of the holder when it sent this frame
	HLC     hlc.Timestamp // sender's hybrid logical clock at send time
	// Route is the remaining relay chain for DATA/REPAIR frames: the
	// full node sequence of the copy's directed-cycle window. Empty
	// for NAK/MISS.
	Route   []topology.Node
	Payload []byte
	MAC     []byte // HMAC over the canonical bytes, under Source's key
}

// Wire limits. MaxFrame bounds what a reader will accept before
// decoding — a corrupt or hostile length prefix must not allocate
// gigabytes.
const (
	MaxFrame    = 1 << 16
	maxRouteLen = 1 << 12
	frameHdr    = 1 + 4 + 4 + 4 + 1 + 1 + 2 + 8 + 4 + 2 // through route length
)

var (
	ErrFrameTooLarge  = errors.New("transport: frame exceeds MaxFrame")
	ErrFrameTruncated = errors.New("transport: frame body truncated")
)

// EncodeFrame serialises f into a self-contained body (no length
// prefix; WriteFrame adds one). Layout, little-endian:
//
//	kind u8 | from i32 | source i32 | epoch u32 |
//	channel u8 | stage u8 | hop u16 | hlcWall i64 | hlcLogical u32 |
//	routeLen u16 | route i32×routeLen |
//	payloadLen u16 | payload | macLen u16 | mac
//
// The epoch word occupies what older encodings reserved as zero, so
// one-shot frames (Epoch 0) are byte-identical to the previous layout.
func EncodeFrame(f *Frame) ([]byte, error) {
	if len(f.Route) > maxRouteLen {
		return nil, fmt.Errorf("transport: route length %d exceeds %d", len(f.Route), maxRouteLen)
	}
	if len(f.Payload) > MaxFrame || len(f.MAC) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	n := frameHdr + 4*len(f.Route) + 2 + len(f.Payload) + 2 + len(f.MAC)
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	b := make([]byte, 0, n)
	b = append(b, byte(f.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(f.From)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(f.Source)))
	b = binary.LittleEndian.AppendUint32(b, f.Epoch)
	b = append(b, f.Channel, f.Stage)
	b = binary.LittleEndian.AppendUint16(b, f.Hop)
	b = binary.LittleEndian.AppendUint64(b, uint64(f.HLC.Wall))
	b = binary.LittleEndian.AppendUint32(b, f.HLC.Logical)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Route)))
	for _, v := range f.Route {
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(v)))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Payload)))
	b = append(b, f.Payload...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(f.MAC)))
	b = append(b, f.MAC...)
	return b, nil
}

// DecodeFrame parses a frame body produced by EncodeFrame. It never
// panics on malformed input: every length is bounds-checked before use,
// so a corrupted or adversarial body surfaces as an error.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if len(b) < frameHdr {
		return nil, ErrFrameTruncated
	}
	f := &Frame{}
	f.Kind = FrameKind(b[0])
	if f.Kind < FrameData || f.Kind > FrameEpoch {
		return nil, fmt.Errorf("transport: unknown frame kind %d", b[0])
	}
	f.From = topology.Node(int32(binary.LittleEndian.Uint32(b[1:])))
	f.Source = topology.Node(int32(binary.LittleEndian.Uint32(b[5:])))
	f.Epoch = binary.LittleEndian.Uint32(b[9:])
	f.Channel = b[13]
	f.Stage = b[14]
	f.Hop = binary.LittleEndian.Uint16(b[15:])
	f.HLC.Wall = int64(binary.LittleEndian.Uint64(b[17:]))
	f.HLC.Logical = binary.LittleEndian.Uint32(b[25:])
	routeLen := int(binary.LittleEndian.Uint16(b[29:]))
	off := frameHdr
	if routeLen > maxRouteLen || len(b) < off+4*routeLen+2 {
		return nil, ErrFrameTruncated
	}
	if routeLen > 0 {
		f.Route = make([]topology.Node, routeLen)
		for i := range f.Route {
			f.Route[i] = topology.Node(int32(binary.LittleEndian.Uint32(b[off+4*i:])))
		}
	}
	off += 4 * routeLen
	payloadLen := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+payloadLen+2 {
		return nil, ErrFrameTruncated
	}
	if payloadLen > 0 {
		f.Payload = append([]byte(nil), b[off:off+payloadLen]...)
	}
	off += payloadLen
	macLen := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) != off+macLen {
		return nil, ErrFrameTruncated
	}
	if macLen > 0 {
		f.MAC = append([]byte(nil), b[off:off+macLen]...)
	}
	return f, nil
}

// canonicalBytes is what the MAC covers: the fields a relay must not be
// able to alter undetected. From, Hop, Route, and HLC are deliberately
// excluded — they legitimately change at every hop; Source, Epoch,
// Channel, Stage, and Payload identify the broadcast copy itself.
// Binding the epoch prevents a stored copy from round e being replayed
// as a fresh copy in round e', and makes EPOCH handshake responses
// unforgeable.
func canonicalBytes(f *Frame) []byte {
	b := make([]byte, 0, 14+len(f.Payload))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(f.Source)))
	b = binary.LittleEndian.AppendUint32(b, f.Epoch)
	b = append(b, f.Channel, f.Stage)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Payload)))
	return append(b, f.Payload...)
}

// SignFrame fills in f.MAC under the source's key.
func SignFrame(kr *reliable.Keyring, f *Frame) error {
	msg, err := kr.Sign(reliable.Message{Source: f.Source, Payload: canonicalBytes(f)})
	if err != nil {
		return err
	}
	f.MAC = msg.MAC
	return nil
}

// VerifyFrame reports whether f's MAC is valid under its claimed
// source's key. Request-only control frames (NAK/MISS/JOIN) carry no
// payload MAC and are accepted unsigned — they can only trigger
// retransmission of signed data (or a signed EPOCH response), never
// forge it. EPOCH responses are signed: a rejoining node fast-forwards
// its epoch counter off them, so they must be unforgeable.
func VerifyFrame(kr *reliable.Keyring, f *Frame) (bool, error) {
	if f.Kind == FrameNak || f.Kind == FrameMiss || f.Kind == FrameJoin {
		return true, nil
	}
	return kr.Verify(reliable.Message{Source: f.Source, Payload: canonicalBytes(f), MAC: f.MAC})
}

// WriteFrame writes body to w as one length-prefixed record.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(body)))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed record from r. The length is
// validated against MaxFrame before any allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(pre[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
