package transport

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzFrameDecode hammers the wire codec with truncated, oversized,
// bit-flipped, and length-lying bodies. The invariants:
//
//   - DecodeFrame never panics and never over-allocates — every length
//     field is validated against the remaining input before use, so a
//     body claiming a 4096-entry route must actually carry the bytes;
//   - anything it accepts re-encodes canonically: encode(decode(b))
//     decodes back to the identical frame (no hidden state survives a
//     trip through the parser);
//   - inputs over MaxFrame are refused before any work.
func FuzzFrameDecode(f *testing.F) {
	seed, err := EncodeFrame(sampleFrame())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:frameHdr])
	f.Add([]byte{})
	// A length-lying specimen: valid header, route length claiming far
	// more entries than the body holds.
	lie := append([]byte(nil), seed...)
	lie[29], lie[30] = 0xFF, 0x0F
	f.Add(lie)
	for _, k := range []FrameKind{FrameNak, FrameMiss, FrameJoin, FrameEpoch} {
		b, err := EncodeFrame(&Frame{Kind: k, Source: 1, Epoch: 7})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if len(b) > MaxFrame {
			if err != ErrFrameTooLarge {
				t.Fatalf("oversized body (%d bytes): %v, want ErrFrameTooLarge", len(b), err)
			}
			return
		}
		if err != nil {
			return // rejected is always acceptable for hostile input
		}
		// Accepted frames must satisfy the same bounds the encoder
		// enforces — otherwise decode admitted what encode refuses.
		if len(fr.Route) > maxRouteLen {
			t.Fatalf("decode admitted a %d-entry route", len(fr.Route))
		}
		reenc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		again, err := DecodeFrame(reenc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(fr, again) {
			t.Fatalf("decode/encode/decode not a fixed point:\n first %+v\n again %+v", fr, again)
		}
		// The canonical encoding of a decoded frame is the accepted
		// body itself — the parser tolerates no redundant forms.
		if !bytes.Equal(reenc, b) {
			t.Fatalf("accepted body is not canonical:\n in  %x\n out %x", b, reenc)
		}
	})
}
