// Package transport lifts the IHC broadcast off the discrete-event
// simulator and onto a real message-passing mesh. It defines the
// Transport abstraction every higher layer (the ihcd node protocol, the
// wall-clock repair planner, the cluster harness) is written against,
// with two implementations:
//
//   - Loopback: an in-process deterministic test double. Frames cross
//     per-directed-link FIFO queues with a latency function derived
//     from the simnet timing model (one tick scaled to wall time), so
//     protocol logic can be driven — and chaos-tested — without
//     sockets, while keeping exactly the per-link FIFO and adjacency
//     discipline of the simulated network.
//   - TCP (tcpmesh.go): every node is a real process or goroutine
//     cluster exchanging length-prefixed, HMAC-signed frames over TCP
//     along the mesh's links, with per-peer reconnecting connections,
//     jittered exponential dial backoff, and circuit breakers.
//
// Both implementations expose the same Endpoint surface: adjacency-
// checked Send of an encoded Frame, a raw inbound frame stream, and
// counters. The chaos layer (internal/chaos) interposes on links of
// either implementation — as a frame filter on Loopback, as a real
// socket-level proxy per directed link on TCP.
package transport

import (
	"fmt"
	"time"

	"ihc/internal/topology"
)

// Endpoint is one node's attachment to a mesh. Send is adjacency-
// checked: a node may talk only to its graph neighbors, exactly like a
// physical router. Frames may be lost (queue overflow, peer down, chaos
// interference) — delivery is at-most-once per send, and the repair
// layer above is what turns that into reliable broadcast.
type Endpoint interface {
	// Self returns the node this endpoint belongs to.
	Self() topology.Node
	// Send encodes f and queues it toward the adjacent node `to`.
	// It never blocks: a full queue or an open circuit breaker drops
	// the frame and returns an error.
	Send(to topology.Node, f *Frame) error
	// Recv is the stream of raw inbound frame bodies (decode with
	// DecodeFrame). The channel closes when the endpoint closes.
	Recv() <-chan []byte
	// PeerDown reports whether the path to an adjacent peer is
	// currently considered dead (circuit breaker open). Planners use
	// it to rotate repair providers away from crashed peers.
	PeerDown(to topology.Node) bool
	// Stats returns a snapshot of the endpoint's counters.
	Stats() EndpointStats
	// Close releases the endpoint; further Sends fail.
	Close() error
}

// Mesh builds endpoints for the nodes of one network. The loopback mesh
// serves all nodes in-process; a TCP mesh normally serves exactly one
// (the local daemon's), with the rest reached over the network.
type Mesh interface {
	Endpoint(v topology.Node) (Endpoint, error)
	Close() error
}

// EndpointStats counts what an endpoint observed. All fields are
// monotonic totals.
type EndpointStats struct {
	Sent       int64 // frames handed to the link layer
	Received   int64 // frame bodies surfaced on Recv
	SendErrors int64 // frames rejected at Send (peer down, queue full, closed)
	DroppedRx  int64 // inbound frames dropped on a full Recv queue
	Reconnects int64 // successful re-dials after a connection was lost (TCP)
	DialFails  int64 // failed dial attempts (TCP)
}

// FilterAction is a chaos filter's verdict for one frame on one
// directed link.
type FilterAction struct {
	Drop      bool          // lose the frame
	Corrupt   bool          // flip a byte of the frame body
	Duplicate bool          // deliver the frame twice
	Delay     time.Duration // hold the frame before delivery
}

// LinkFilter interposes on every frame crossing a directed link; the
// chaos plan implements it. now is the wall-clock offset from the
// mesh's epoch.
type LinkFilter interface {
	Filter(from, to topology.Node, now time.Duration) FilterAction
}

// ErrPeerDown reports a send refused because the peer's circuit breaker
// is open.
type PeerDownError struct{ Peer topology.Node }

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("transport: peer %d down (circuit breaker open)", e.Peer)
}

// adjacency returns an error unless {from,to} is an edge of g.
func adjacency(g *topology.Graph, from, to topology.Node) error {
	if !g.HasEdge(from, to) {
		return fmt.Errorf("transport: %d->%d is not a link of %s", from, to, g.Name())
	}
	return nil
}
