package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ihc/internal/core"
	"ihc/internal/hlc"
	"ihc/internal/reliable"
	"ihc/internal/repair"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// NodeConfig shapes one protocol node: the IHC schedule it executes,
// the endpoint it speaks through, and the wall-clock timing that
// replaces the simulator's tick axis.
type NodeConfig struct {
	IHC  *core.IHC
	Eta  int
	Self topology.Node
	// Endpoint is the node's mesh attachment (loopback or TCP).
	Endpoint Endpoint
	// Keyring signs this node's injections and verifies every copy
	// accepted from the wire.
	Keyring *reliable.Keyring
	// Epoch is the cluster-agreed wall-clock start of stage 0; all
	// deadline arithmetic is anchored here.
	Epoch time.Time
	// StageDur is the wall-clock length of one schedule stage.
	StageDur time.Duration
	// HopLatency is the expected per-hop relay time, used only for
	// deadline computation (stage start + hops·HopLatency + slack).
	HopLatency time.Duration
	// Slack pads every deadline against scheduling noise before the
	// first NAK fires. Default StageDur.
	Slack time.Duration
	// Retry shapes the jittered backoff between pull rounds and
	// MaxAttempts bounds NAKs per missing copy.
	Retry       BackoffConfig
	MaxAttempts int
	// Clock is the node's hybrid logical clock; a fresh one is made
	// if nil.
	Clock *hlc.Clock
}

// NodeResult is a node's final verdict after Run returns.
type NodeResult struct {
	Self      topology.Node
	Ledger    *simnet.CopyLedger // only row Self is populated
	LedgerErr error              // VerifyReceiver(Self, γ) verdict
	Repaired  int                // copies that arrived via REPAIR, not the schedule
	NaksSent  int
	Exhausted []repair.Want // copies never recovered (fatal)
	Stats     EndpointStats
	// Copies[s] lists, per source, the channels a copy arrived on —
	// the node's delivery multiset, comparable against a simnet
	// CopyMatrix row.
	Copies map[topology.Node][]uint8
}

// Node executes the IHC broadcast schedule on a live Endpoint: it
// injects its own message on every directed cycle at its assigned
// stage, store-and-forward relays other nodes' copies along their
// cycle routes, dedups before counting (so retries and chaos
// duplicates can never over-count the ledger), and pulls missing
// copies from graph neighbors when closed-form deadlines pass.
//
// Stage starts are wall-clock timers corrected by the hybrid logical
// clock: every frame carries the sender's HLC, every receipt merges it,
// and a frame stamped with a later stage fast-forwards this node's own
// pending injections — the paper's "loosely synchronized stage starts"
// made operational on hosts whose physical clocks drift.
type Node struct {
	cfg     NodeConfig
	clock   *hlc.Clock
	planner *repair.Planner
	ledger  *simnet.CopyLedger

	n, gamma int

	// routes[j] is directed cycle j rotated to start at each packet's
	// source on demand; cycleOf[j] caches the cycle node sequence.
	cycleOf [][]topology.Node

	store    map[repair.Want][]byte // accepted payloads, incl. our own
	copies   map[topology.Node][]uint8
	injected []bool // per stage
	repaired int
	naksSent int

	doneCh   chan struct{}
	doneOnce sync.Once
}

// NewNode validates the configuration and prepares the node's schedule
// state. Run starts the event loop.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.IHC == nil || cfg.Endpoint == nil || cfg.Keyring == nil {
		return nil, fmt.Errorf("transport: node needs IHC, Endpoint, and Keyring")
	}
	if cfg.Eta < 1 || cfg.Eta > cfg.IHC.N() {
		return nil, fmt.Errorf("transport: eta %d outside [1,%d]", cfg.Eta, cfg.IHC.N())
	}
	if cfg.StageDur <= 0 {
		return nil, fmt.Errorf("transport: StageDur must be positive")
	}
	if cfg.Slack <= 0 {
		cfg.Slack = cfg.StageDur
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 12
	}
	if cfg.Clock == nil {
		cfg.Clock = hlc.New()
	}
	n := &Node{
		cfg:      cfg,
		clock:    cfg.Clock,
		ledger:   simnet.NewCopyLedger(cfg.IHC.N()),
		n:        cfg.IHC.N(),
		gamma:    cfg.IHC.Gamma(),
		store:    make(map[repair.Want][]byte),
		copies:   make(map[topology.Node][]uint8),
		injected: make([]bool, cfg.Eta),
		doneCh:   make(chan struct{}),
	}
	for j := 0; j < n.gamma; j++ {
		n.cycleOf = append(n.cycleOf, []topology.Node(cfg.IHC.DirectedCycle(j)))
	}
	backoff := NewBackoff(cfg.Retry)
	n.planner = repair.NewPlanner(repair.PullConfig{
		MaxAttempts: cfg.MaxAttempts,
		Delay:       func(int) time.Duration { return backoff.Next() },
	})
	n.expectAll()
	return n, nil
}

// routeOf returns the relay chain of copy (s, j): the N nodes of
// directed cycle j starting at s. The last node is the (N-1)-th
// receiver; the slice is freshly allocated (frames own their routes).
func (nd *Node) routeOf(s topology.Node, j int) []topology.Node {
	c := nd.cycleOf[j]
	p := nd.cfg.IHC.ID(j, s)
	route := make([]topology.Node, nd.n)
	for k := 0; k < nd.n; k++ {
		route[k] = c[(p+k)%nd.n]
	}
	return route
}

// stageOf returns the schedule stage copy (s, j) is injected in.
func (nd *Node) stageOf(s topology.Node, j int) int {
	return nd.cfg.IHC.ID(j, s) % nd.cfg.Eta
}

// expectAll registers every copy this node is owed with its closed-form
// deadline and provider rotation: the cycle-j predecessor (our upstream
// relay on that copy's route) first, then the remaining graph neighbors.
func (nd *Node) expectAll() {
	neighbors := nd.cfg.IHC.Graph().Neighbors(nd.cfg.Self)
	for j := 0; j < nd.gamma; j++ {
		c := nd.cycleOf[j]
		myPos := nd.cfg.IHC.ID(j, nd.cfg.Self)
		pred := c[(myPos+nd.n-1)%nd.n]
		providers := []topology.Node{pred}
		for _, nb := range neighbors {
			if nb != pred {
				providers = append(providers, nb)
			}
		}
		for s := 0; s < nd.n; s++ {
			src := topology.Node(s)
			if src == nd.cfg.Self {
				continue
			}
			hops := (myPos - nd.cfg.IHC.ID(j, src) + nd.n) % nd.n
			deadline := nd.cfg.Epoch.
				Add(time.Duration(nd.stageOf(src, j)) * nd.cfg.StageDur).
				Add(time.Duration(hops) * nd.cfg.HopLatency).
				Add(nd.cfg.Slack)
			nd.planner.Expect(repair.Want{Source: src, Channel: uint8(j)}, deadline, providers)
		}
	}
}

// Run executes the node until every expected copy arrived (it keeps
// serving repair pulls afterwards), the repair budget is exhausted, or
// ctx is cancelled. It always returns the node's result; the error is
// non-nil only for transport-level failures, not missing copies —
// those are the result's LedgerErr/Exhausted verdict.
func (nd *Node) Run(ctx context.Context) (*NodeResult, error) {
	timer := time.NewTimer(nd.wakeIn())
	defer timer.Stop()
	for {
		nd.step(time.Now())
		if nd.planner.Terminal() {
			// Whether complete or out of repair budget, make sure our
			// own copies are all injected before leaving the loop —
			// peers may still be pulling them (Serve answers those).
			for st := 0; st < nd.cfg.Eta; st++ {
				if !nd.injected[st] {
					nd.injectStage(st)
				}
			}
			nd.doneOnce.Do(func() { close(nd.doneCh) })
			return nd.result(), nil
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(nd.wakeIn())
		select {
		case <-ctx.Done():
			return nd.result(), ctx.Err()
		case <-timer.C:
		case body, ok := <-nd.cfg.Endpoint.Recv():
			if !ok {
				return nd.result(), fmt.Errorf("transport: endpoint closed under node %d", nd.cfg.Self)
			}
			nd.handle(body)
		}
	}
}

// Serve keeps answering repair pulls after Run returned, until ctx is
// cancelled — a finished node is often another node's only surviving
// provider.
func (nd *Node) Serve(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case body, ok := <-nd.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			nd.handle(body)
		}
	}
}

// Done is closed once every expected copy has arrived.
func (nd *Node) Done() <-chan struct{} { return nd.doneCh }

// step runs the timer-driven work due at now: stage injections whose
// wall-clock start has passed, then repair pulls whose deadlines have.
func (nd *Node) step(now time.Time) {
	elapsed := now.Sub(nd.cfg.Epoch)
	for st := 0; st < nd.cfg.Eta; st++ {
		if !nd.injected[st] && elapsed >= time.Duration(st)*nd.cfg.StageDur {
			nd.injectStage(st)
		}
	}
	for _, pull := range nd.planner.Due(now, nd.cfg.Endpoint.PeerDown) {
		nd.sendNak(pull)
	}
}

// wakeIn returns how long the event loop may sleep: until the next
// uninjected stage start or the planner's next deadline, whichever is
// sooner.
func (nd *Node) wakeIn() time.Duration {
	const idle = 250 * time.Millisecond
	wake := time.Now().Add(idle)
	for st := 0; st < nd.cfg.Eta; st++ {
		if !nd.injected[st] {
			if t := nd.cfg.Epoch.Add(time.Duration(st) * nd.cfg.StageDur); t.Before(wake) {
				wake = t
			}
			break
		}
	}
	if t, ok := nd.planner.NextWake(); ok && t.Before(wake) {
		wake = t
	}
	d := time.Until(wake)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// injectStage emits this node's own copies scheduled for stage st: on
// every directed cycle j where ID_j(self) ≡ st (mod η), sign the
// payload, store it (we are the root provider for pulls), and send the
// first hop.
func (nd *Node) injectStage(st int) {
	nd.injected[st] = true
	for j := 0; j < nd.gamma; j++ {
		if nd.stageOf(nd.cfg.Self, j) != st {
			continue
		}
		w := repair.Want{Source: nd.cfg.Self, Channel: uint8(j)}
		payload := reliable.TruthPayload(nd.cfg.Self)
		f := &Frame{
			Kind:    FrameData,
			From:    nd.cfg.Self,
			Source:  nd.cfg.Self,
			Channel: uint8(j),
			Stage:   uint8(st),
			Hop:     0,
			Route:   nd.routeOf(nd.cfg.Self, j),
			Payload: payload,
		}
		if err := SignFrame(nd.cfg.Keyring, f); err != nil {
			continue // unsignable own frame: config error, surfaces as peers' exhausted pulls
		}
		if _, dup := nd.store[w]; !dup {
			nd.store[w] = payload
		}
		nd.forward(f, 0)
	}
}

// forward sends f's next hop: Route[holder+1], if any remains.
func (nd *Node) forward(f *Frame, holder int) {
	if holder+1 >= len(f.Route) {
		return
	}
	next := f.Route[holder+1]
	out := *f
	out.From = nd.cfg.Self
	out.Hop = uint16(holder)
	out.HLC = nd.clock.Now()
	nd.cfg.Endpoint.Send(next, &out) // best-effort; losses are repair's job
}

// handle processes one raw inbound frame body.
func (nd *Node) handle(body []byte) {
	f, err := DecodeFrame(body)
	if err != nil {
		return // corrupt frame: drop; repair recovers the copy
	}
	nd.clock.Update(f.HLC)
	ok, err := VerifyFrame(nd.cfg.Keyring, f)
	if err != nil || !ok {
		return // bad MAC == drop-equivalent corruption
	}
	switch f.Kind {
	case FrameData, FrameRepair:
		nd.acceptCopy(f)
	case FrameNak:
		nd.serveNak(f)
	case FrameMiss:
		nd.planner.Miss(repair.Want{Source: f.Source, Channel: f.Channel}, time.Now())
	}
}

// acceptCopy ingests a DATA or REPAIR frame: fast-forward stage starts,
// dedup, store, count, relay.
func (nd *Node) acceptCopy(f *Frame) {
	// A frame from stage k proves the cluster has reached stage k:
	// start our own ≤k injections now instead of waiting out local
	// wall-clock drift.
	for st := 0; st <= int(f.Stage) && st < nd.cfg.Eta; st++ {
		if !nd.injected[st] {
			nd.injectStage(st)
		}
	}
	if int(f.Channel) >= nd.gamma || f.Source == nd.cfg.Self {
		return
	}
	w := repair.Want{Source: f.Source, Channel: f.Channel}
	if _, dup := nd.store[w]; dup {
		return // duplicate (chaos dup, retry overlap): never re-counted, never re-relayed
	}
	nd.store[w] = f.Payload
	nd.ledger.Add(nd.cfg.Self, f.Source)
	nd.copies[f.Source] = append(nd.copies[f.Source], f.Channel)
	if first := nd.planner.Got(w); first && f.Kind == FrameRepair {
		nd.repaired++
	}
	// Relay along the remaining route. A REPAIR resumes the original
	// chain too: the provider set Hop so we sit at Route[Hop+1], and
	// everyone downstream of us lost the copy with us.
	holder := int(f.Hop) + 1
	if holder < len(f.Route) && f.Route[holder] == nd.cfg.Self {
		nd.forward(f, holder)
	}
}

// serveNak answers a pull: REPAIR with the stored copy (resuming the
// relay chain at the requester's route position), or MISS so the
// requester rotates without burning its full timeout.
func (nd *Node) serveNak(f *Frame) {
	w := repair.Want{Source: f.Source, Channel: f.Channel}
	requester := f.From
	payload, held := nd.store[w]
	if !held {
		miss := &Frame{Kind: FrameMiss, From: nd.cfg.Self, Source: f.Source, Channel: f.Channel, HLC: nd.clock.Now()}
		nd.cfg.Endpoint.Send(requester, miss)
		return
	}
	route := nd.routeOf(w.Source, int(w.Channel))
	hop := 0
	for i, v := range route {
		if v == requester {
			hop = i - 1
			break
		}
	}
	rep := &Frame{
		Kind:    FrameRepair,
		From:    nd.cfg.Self,
		Source:  w.Source,
		Channel: w.Channel,
		Stage:   uint8(nd.stageOf(w.Source, int(w.Channel))),
		Hop:     uint16(hop),
		HLC:     nd.clock.Now(),
		Route:   route,
		Payload: payload,
	}
	if err := SignFrame(nd.cfg.Keyring, rep); err != nil {
		return
	}
	nd.cfg.Endpoint.Send(requester, rep)
}

// sendNak emits one planned pull.
func (nd *Node) sendNak(p repair.Pull) {
	nd.naksSent++
	f := &Frame{
		Kind:    FrameNak,
		From:    nd.cfg.Self,
		Source:  p.Source,
		Channel: p.Channel,
		HLC:     nd.clock.Now(),
	}
	nd.cfg.Endpoint.Send(p.Provider, f)
}

func (nd *Node) result() *NodeResult {
	res := &NodeResult{
		Self:      nd.cfg.Self,
		Ledger:    nd.ledger,
		LedgerErr: nd.ledger.VerifyReceiver(nd.cfg.Self, nd.gamma),
		Repaired:  nd.repaired,
		NaksSent:  nd.naksSent,
		Exhausted: nd.planner.Exhausted(),
		Stats:     nd.cfg.Endpoint.Stats(),
		Copies:    nd.copies,
	}
	return res
}
