package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffJitterBounds checks every delay against the documented
// envelope: attempt k is uniform in [d·(1−J), d] with
// d = min(Base·Factor^k, Max).
func TestBackoffJitterBounds(t *testing.T) {
	cfg := BackoffConfig{
		Base: 10 * time.Millisecond, Max: 200 * time.Millisecond,
		Factor: 2, Jitter: 0.25, Seed: 7,
	}
	b := NewBackoff(cfg)
	d := float64(cfg.Base)
	for k := 0; k < 12; k++ {
		got := b.Next()
		lo := time.Duration(d * (1 - cfg.Jitter))
		hi := time.Duration(d)
		if got < lo || got > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", k, got, lo, hi)
		}
		d *= cfg.Factor
		if d > float64(cfg.Max) {
			d = float64(cfg.Max)
		}
	}
	if b.Attempt() != 12 {
		t.Fatalf("attempt counter = %d, want 12", b.Attempt())
	}
}

// TestBackoffSaturatesAtMax: once the exponential passes Max, every
// delay stays within [Max·(1−J), Max] forever.
func TestBackoffSaturatesAtMax(t *testing.T) {
	cfg := BackoffConfig{
		Base: time.Millisecond, Max: 16 * time.Millisecond,
		Factor: 4, Jitter: 0.1, Seed: 3,
	}
	b := NewBackoff(cfg)
	for k := 0; k < 3; k++ {
		b.Next()
	}
	for k := 0; k < 50; k++ {
		got := b.Next()
		lo := time.Duration(float64(cfg.Max) * (1 - cfg.Jitter))
		if got < lo || got > cfg.Max {
			t.Fatalf("saturated attempt %d: delay %v outside [%v, %v]", k, got, lo, cfg.Max)
		}
	}
}

// TestBackoffDeterministicForSeed: two sequences under the same seed
// agree delay for delay; Reset rewinds the growth but not the RNG.
func TestBackoffDeterministicForSeed(t *testing.T) {
	cfg := BackoffConfig{Base: 5 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, Seed: 11}
	a, b := NewBackoff(cfg), NewBackoff(cfg)
	for k := 0; k < 20; k++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: %v != %v under equal seeds", k, da, db)
		}
	}
	a.Reset()
	if a.Attempt() != 0 {
		t.Fatalf("attempt after Reset = %d", a.Attempt())
	}
	if d := a.Next(); d > cfg.Base {
		t.Fatalf("first delay after Reset = %v, want <= Base %v", d, cfg.Base)
	}
}

// TestBackoffNoJitter: with Jitter 0 the sequence is exactly
// Base·Factor^k capped at Max.
func TestBackoffNoJitter(t *testing.T) {
	b := NewBackoff(BackoffConfig{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Factor: 2, Jitter: 0, Seed: 1})
	want := []time.Duration{2, 4, 8, 16, 16, 16}
	for k, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", k, got, w*time.Millisecond)
		}
	}
}

// TestBreakerTransitions walks the full closed → open → half-open →
// closed cycle, and the half-open → open failure path, on a manual
// clock.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	cfg := BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond}
	b := newBreakerAt(cfg, clock)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state %v, want closed", b.State())
	}
	// Failures below the threshold keep it closed.
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state %v after 2/3 failures, want closed+allowing", b.State())
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed traffic before cooldown")
	}
	if b.Admittable() {
		t.Fatal("open breaker admitted new traffic before cooldown")
	}
	// Cooldown not yet elapsed.
	now = now.Add(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker allowed traffic 1ms early")
	}
	// Cooldown elapsed: senders may queue again (without stealing the
	// probe slot), and exactly one probe is admitted.
	now = now.Add(time.Millisecond)
	if !b.Admittable() {
		t.Fatal("cooldown elapsed but traffic still refused")
	}
	if b.State() != BreakerOpen {
		t.Fatal("Admittable changed breaker state")
	}
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted during half-open probe")
	}
	// Probe failure re-opens immediately and restarts the cooldown.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed traffic without a fresh cooldown")
	}
	now = now.Add(cfg.Cooldown)
	if !b.Allow() {
		t.Fatal("second probe refused after fresh cooldown")
	}
	// Probe success closes it and clears the failure count: the next
	// trip needs a full Threshold of new failures.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("failure count not cleared on close: state %v after 2 failures", b.State())
	}
}

// TestBreakerStateStrings pins the operator-facing names.
func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "invalid",
	} {
		if s.String() != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", s, s, want)
		}
	}
}

// TestBreakerConcurrentSingleProbe hammers one tripped breaker from
// many goroutines mixing Allow, the non-mutating Admittable poll, and
// outcome recording. The contract under contention: after the cooldown
// elapses, exactly ONE caller wins the half-open probe slot per
// open→half-open transition — concurrent Allow calls during the probe
// are refused — and Admittable never steals the slot. Run under -race
// this also proves the locking.
func TestBreakerConcurrentSingleProbe(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	cfg := BreakerConfig{Threshold: 3, Cooldown: time.Second}
	b := newBreakerAt(cfg, clock)
	for i := 0; i < cfg.Threshold; i++ {
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("breaker %v after %d failures, want open", b.State(), cfg.Threshold)
	}

	const goroutines = 32
	for round := 0; round < 50; round++ {
		// Cooldown not yet elapsed: nobody gets in, Admittable agrees.
		var admitted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Admittable() {
					admitted.Add(1)
				}
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		wg.Wait()
		if admitted.Load() != 0 {
			t.Fatalf("round %d: %d callers admitted before cooldown", round, admitted.Load())
		}

		// Cooldown elapsed: every Admittable poll may say yes, but the
		// probe slot goes to exactly one Allow winner.
		advance(cfg.Cooldown)
		var wins atomic.Int64
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = b.Admittable() // non-mutating poll must not steal the slot
				if b.Allow() {
					wins.Add(1)
				}
				_ = b.Admittable()
			}()
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("round %d: %d probe winners, want exactly 1", round, wins.Load())
		}
		if b.State() != BreakerHalfOpen {
			t.Fatalf("round %d: state %v after probe admission, want half-open", round, b.State())
		}
		// The losing probe re-opens the breaker for the next round.
		b.Failure()
		if b.State() != BreakerOpen {
			t.Fatalf("round %d: failed probe left state %v, want open", round, b.State())
		}
	}

	// A winning probe closes it for everyone.
	advance(cfg.Cooldown)
	if !b.Allow() {
		t.Fatal("post-cooldown probe refused")
	}
	b.Success()
	var wg sync.WaitGroup
	var refused atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !b.Allow() || !b.Admittable() {
				refused.Add(1)
			}
		}()
	}
	wg.Wait()
	if refused.Load() != 0 {
		t.Fatalf("%d callers refused on a closed breaker", refused.Load())
	}
}
