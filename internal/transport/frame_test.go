package transport

import (
	"bytes"
	"reflect"
	"testing"

	"ihc/internal/hlc"
	"ihc/internal/reliable"
	"ihc/internal/topology"
)

func sampleFrame() *Frame {
	return &Frame{
		Kind:    FrameData,
		From:    3,
		Source:  5,
		Channel: 1,
		Stage:   2,
		Hop:     4,
		HLC:     hlc.Timestamp{Wall: 123456789, Logical: 7},
		Route:   []topology.Node{5, 4, 6, 7, 3, 2, 0, 1},
		Payload: []byte("payload-bytes"),
		MAC:     []byte{0xde, 0xad, 0xbe, 0xef},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []*Frame{
		sampleFrame(),
		{Kind: FrameNak, From: 1, Source: 2, Channel: 0},
		{Kind: FrameMiss, From: 6, Source: 0, Channel: 1, Stage: 3},
		{Kind: FrameRepair, Source: 7, Route: []topology.Node{7, 6}, Payload: []byte{1}},
		{Kind: FrameData, Source: 4, Epoch: 0xDEADBEEF, Route: []topology.Node{4, 5}, Payload: []byte{2}},
		{Kind: FrameJoin, From: 2, Source: 2},
		{Kind: FrameEpoch, From: 3, Source: 3, Epoch: 41, MAC: []byte{1, 2}},
	} {
		body, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Kind, err)
		}
		got, err := DecodeFrame(body)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Kind, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("%s round trip:\n sent %+v\n got  %+v", f.Kind, f, got)
		}
	}
}

// TestDecodeNeverPanics truncates and mutates a valid body every way a
// broken link could: all prefixes, plus every single-byte corruption.
// Decoding must return a frame or an error — never panic.
func TestDecodeNeverPanics(t *testing.T) {
	body, err := EncodeFrame(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeFrame(body[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	for i := range body {
		mut := append([]byte(nil), body...)
		mut[i] ^= 0xff
		DecodeFrame(mut) // outcome irrelevant; must not panic
	}
}

func TestDecodeRejectsBadKindAndLengths(t *testing.T) {
	body, _ := EncodeFrame(sampleFrame())
	bad := append([]byte(nil), body...)
	bad[0] = 0
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("kind 0 accepted")
	}
	bad[0] = 200
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("kind 200 accepted")
	}
	if _, err := DecodeFrame(make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversized body: %v, want ErrFrameTooLarge", err)
	}
	long := &Frame{Kind: FrameData, Route: make([]topology.Node, maxRouteLen+1)}
	if _, err := EncodeFrame(long); err == nil {
		t.Fatal("oversized route encoded")
	}
}

func TestSignAndVerifyFrame(t *testing.T) {
	kr := reliable.NewKeyring(8, 42)
	f := sampleFrame()
	f.MAC = nil
	if err := SignFrame(kr, f); err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyFrame(kr, f)
	if err != nil || !ok {
		t.Fatalf("signed frame rejected: ok=%v err=%v", ok, err)
	}
	// Per-hop mutable fields must not affect the MAC.
	f.From, f.Hop, f.HLC = 0, 99, hlc.Timestamp{Wall: 1}
	f.Route = nil
	if ok, _ := VerifyFrame(kr, f); !ok {
		t.Fatal("per-hop field change invalidated the MAC")
	}
	// MAC-covered fields must.
	tampered := *f
	tampered.Payload = append([]byte(nil), f.Payload...)
	tampered.Payload[0] ^= 1
	if ok, _ := VerifyFrame(kr, &tampered); ok {
		t.Fatal("payload tamper passed verification")
	}
	tampered = *f
	tampered.Channel ^= 1
	if ok, _ := VerifyFrame(kr, &tampered); ok {
		t.Fatal("channel tamper passed verification")
	}
	// The epoch is MAC-covered: a copy signed for round e must not
	// replay as a fresh copy in round e+1.
	tampered = *f
	tampered.Epoch++
	if ok, _ := VerifyFrame(kr, &tampered); ok {
		t.Fatal("cross-epoch replay passed verification")
	}
	// EPOCH responses are signed — a rejoiner fast-forwards off them.
	ep := &Frame{Kind: FrameEpoch, Source: 5, Epoch: 17}
	if err := SignFrame(kr, ep); err != nil {
		t.Fatal(err)
	}
	if ok, _ := VerifyFrame(kr, ep); !ok {
		t.Fatal("signed EPOCH rejected")
	}
	forged := *ep
	forged.Epoch = 99
	if ok, _ := VerifyFrame(kr, &forged); ok {
		t.Fatal("forged EPOCH fast-forward passed verification")
	}
	// Control frames are accepted unsigned.
	nak := &Frame{Kind: FrameNak, Source: 5}
	if ok, err := VerifyFrame(kr, nak); !ok || err != nil {
		t.Fatalf("unsigned NAK rejected: ok=%v err=%v", ok, err)
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{[]byte("one"), {}, []byte("three")}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range bodies {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: %q != %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("read past final record succeeded")
	}
	// A hostile length prefix is refused before allocation.
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversized write: %v", err)
	}
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("hostile prefix: %v, want ErrFrameTooLarge", err)
	}
}
