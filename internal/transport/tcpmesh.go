package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ihc/internal/topology"
)

// TCPConfig shapes one node's real-socket attachment to the mesh.
type TCPConfig struct {
	Self  topology.Node
	Graph *topology.Graph
	// Listen is the address to accept peer connections on; use
	// "127.0.0.1:0" for an ephemeral port and read it back via Addr.
	Listen string
	// Listener, when non-nil, is used instead of binding Listen — the
	// cluster harness pre-binds every node's listener so all addresses
	// are known before any node (or chaos proxy) is constructed.
	Listener net.Listener
	// Peers maps each graph neighbor to its dial address. Addresses
	// normally point at the peer's listener; the chaos harness points
	// them at per-link fault proxies instead.
	Peers map[topology.Node]string
	// Dial shapes the reconnect backoff; Breaker the per-peer circuit
	// breaker. Zero values take production defaults.
	Dial        BackoffConfig
	Breaker     BreakerConfig
	QueueLen    int           // per-peer outbound + shared inbox bound (default 1024)
	DialTimeout time.Duration // per-attempt dial timeout (default 1s)
}

// TCPNode is the tcpmesh Endpoint: one node's live attachment, with a
// listener for inbound peers and, per outbound neighbor, a lazily
// dialed, automatically reconnecting connection behind a circuit
// breaker. Frames that cannot be delivered are dropped, never blocked
// on — the wall-clock repair layer is what restores reliability.
type TCPNode struct {
	cfg   TCPConfig
	ln    net.Listener
	inbox chan []byte
	peers map[topology.Node]*tcpPeer
	stats EndpointStats

	mu     sync.Mutex // guards conns
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	done   chan struct{}
	closed atomic.Bool
}

type tcpPeer struct {
	node    topology.Node
	addr    string
	queue   chan []byte
	breaker *Breaker
	backoff *Backoff
	everUp  bool
}

// NewTCP binds the listener and starts the accept loop plus one writer
// goroutine per neighbor. Connections are dialed on first send.
func NewTCP(cfg TCPConfig) (*TCPNode, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("transport: tcp mesh requires a graph")
	}
	if int(cfg.Self) < 0 || int(cfg.Self) >= cfg.Graph.N() {
		return nil, fmt.Errorf("transport: self %d outside graph %s", cfg.Self, cfg.Graph.Name())
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	for _, nb := range cfg.Graph.Neighbors(cfg.Self) {
		if _, ok := cfg.Peers[nb]; !ok {
			return nil, fmt.Errorf("transport: no address for neighbor %d of %d", nb, cfg.Self)
		}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
	}
	n := &TCPNode{
		cfg:   cfg,
		ln:    ln,
		inbox: make(chan []byte, cfg.QueueLen),
		peers: make(map[topology.Node]*tcpPeer),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	for _, nb := range cfg.Graph.Neighbors(cfg.Self) {
		bo := cfg.Dial
		if bo.Seed != 0 {
			// Decorrelate per-peer jitter while keeping runs seeded.
			bo.Seed = bo.Seed*1000003 + int64(nb) + 1
		}
		p := &tcpPeer{
			node:    nb,
			addr:    cfg.Peers[nb],
			queue:   make(chan []byte, cfg.QueueLen),
			breaker: NewBreaker(cfg.Breaker),
			backoff: NewBackoff(bo),
		}
		n.peers[nb] = p
		n.wg.Add(1)
		go n.runWriter(p)
	}
	n.wg.Add(1)
	go n.runAccept()
	return n, nil
}

// Addr returns the listener's bound address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

func (n *TCPNode) Self() topology.Node { return n.cfg.Self }
func (n *TCPNode) Recv() <-chan []byte { return n.inbox }

// PeerDown reports whether the neighbor's circuit breaker is refusing
// traffic (open with the cooldown still running). Once the cooldown
// elapses the peer reads as up again so the next send can probe it.
func (n *TCPNode) PeerDown(to topology.Node) bool {
	p, ok := n.peers[to]
	return ok && !p.breaker.Admittable()
}

func (n *TCPNode) Stats() EndpointStats {
	return EndpointStats{
		Sent:       atomic.LoadInt64(&n.stats.Sent),
		Received:   atomic.LoadInt64(&n.stats.Received),
		SendErrors: atomic.LoadInt64(&n.stats.SendErrors),
		DroppedRx:  atomic.LoadInt64(&n.stats.DroppedRx),
		Reconnects: atomic.LoadInt64(&n.stats.Reconnects),
		DialFails:  atomic.LoadInt64(&n.stats.DialFails),
	}
}

// Send encodes f and queues it toward neighbor `to`. It refuses
// immediately — without queueing — when the peer's breaker is open, so
// a crashed neighbor costs callers nothing per attempt.
func (n *TCPNode) Send(to topology.Node, f *Frame) error {
	if n.closed.Load() {
		atomic.AddInt64(&n.stats.SendErrors, 1)
		return fmt.Errorf("transport: endpoint closed")
	}
	if err := adjacency(n.cfg.Graph, n.cfg.Self, to); err != nil {
		atomic.AddInt64(&n.stats.SendErrors, 1)
		return err
	}
	p := n.peers[to]
	if !p.breaker.Admittable() {
		atomic.AddInt64(&n.stats.SendErrors, 1)
		return &PeerDownError{Peer: to}
	}
	body, err := EncodeFrame(f)
	if err != nil {
		atomic.AddInt64(&n.stats.SendErrors, 1)
		return err
	}
	select {
	case p.queue <- body:
		atomic.AddInt64(&n.stats.Sent, 1)
		return nil
	default:
		atomic.AddInt64(&n.stats.SendErrors, 1)
		return fmt.Errorf("transport: queue to peer %d full", to)
	}
}

// Close shuts the listener, all connections, and all goroutines, then
// closes the Recv channel.
func (n *TCPNode) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	close(n.done)
	n.ln.Close()
	n.mu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	close(n.inbox)
	return nil
}

func (n *TCPNode) track(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed.Load() {
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *TCPNode) untrack(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
	c.Close()
}

func (n *TCPNode) runAccept() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.track(c) {
			c.Close()
			return
		}
		n.wg.Add(1)
		go n.runReader(c)
	}
}

// runReader drains one inbound connection, surfacing raw frame bodies
// on the shared inbox. Oversized or short-read records end the
// connection; the peer's writer will reconnect.
func (n *TCPNode) runReader(c net.Conn) {
	defer n.wg.Done()
	defer n.untrack(c)
	for {
		body, err := ReadFrame(c)
		if err != nil {
			return
		}
		select {
		case n.inbox <- body:
			atomic.AddInt64(&n.stats.Received, 1)
		default:
			atomic.AddInt64(&n.stats.DroppedRx, 1)
		}
	}
}

// runWriter owns one neighbor's outbound connection: it lazily dials
// with jittered exponential backoff behind the circuit breaker, writes
// queued frames in order, and on any write error abandons the
// connection and re-dials. A frame that fails to write is dropped (at-
// most-once), counted in SendErrors; reliability is the repair layer's
// job.
func (n *TCPNode) runWriter(p *tcpPeer) {
	defer n.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			n.untrack(conn)
		}
	}()
	for {
		var body []byte
		select {
		case <-n.done:
			return
		case body = <-p.queue:
		}
		if conn == nil {
			conn = n.dialPeer(p)
			if conn == nil {
				atomic.AddInt64(&n.stats.SendErrors, 1)
				continue // frame dropped; done may also have fired
			}
		}
		conn.SetWriteDeadline(time.Now().Add(n.cfg.DialTimeout))
		if err := WriteFrame(conn, body); err != nil {
			n.untrack(conn)
			conn = nil
			p.breaker.Failure()
			atomic.AddInt64(&n.stats.SendErrors, 1)
			continue
		}
		p.breaker.Success()
	}
}

// dialPeer attempts to establish p's connection, sleeping the backoff
// between failures, until it succeeds, the breaker trips open, or the
// node closes. Returns nil when giving up on this frame.
func (n *TCPNode) dialPeer(p *tcpPeer) net.Conn {
	for {
		select {
		case <-n.done:
			return nil
		default:
		}
		if !p.breaker.Allow() {
			// Open breaker: give up on this frame; Send refuses
			// new traffic until the cooldown admits a probe.
			return nil
		}
		c, err := net.DialTimeout("tcp", p.addr, n.cfg.DialTimeout)
		if err == nil {
			if !n.track(c) {
				c.Close()
				return nil
			}
			p.breaker.Success()
			p.backoff.Reset()
			if p.everUp {
				atomic.AddInt64(&n.stats.Reconnects, 1)
			}
			p.everUp = true
			return c
		}
		p.breaker.Failure()
		atomic.AddInt64(&n.stats.DialFails, 1)
		if p.breaker.State() == BreakerOpen {
			return nil
		}
		select {
		case <-n.done:
			return nil
		case <-time.After(p.backoff.Next()):
		}
	}
}
