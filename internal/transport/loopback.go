package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// LoopbackConfig shapes an in-process mesh.
type LoopbackConfig struct {
	Graph *topology.Graph
	// Latency is the per-hop link latency every frame pays. Use
	// SimLatency to derive it from simnet timing parameters.
	Latency time.Duration
	// Filter, when non-nil, interposes on every directed link — this
	// is where the chaos plan attaches.
	Filter LinkFilter
	// QueueLen bounds each link's and each inbox's queue; overflow
	// drops frames (counted). Default 1024.
	QueueLen int
	// Epoch anchors the Filter's time axis; defaults to creation time.
	Epoch time.Time
}

// SimLatency converts the simulator's per-hop store-and-forward cost
// (τ_S switching + α header transfer, in ticks) to wall time at the
// given tick duration. This is what makes Loopback the deterministic
// double of simnet: same topology, same per-link FIFO order, hop
// latency scaled from the same timing model.
func SimLatency(p simnet.Params, perTick time.Duration) time.Duration {
	p = p.Defaulted()
	return time.Duration(int64(p.TauS)+int64(p.Alpha)) * perTick
}

type loopQueued struct {
	body  []byte
	after time.Time
}

// Loopback is an in-process Mesh: every node of the graph gets an
// Endpoint, frames cross per-directed-link FIFO goroutines with a fixed
// latency, and an optional LinkFilter injects faults. It is the
// transport analogue of running the same schedule under simnet, and the
// race-detector-friendly substrate for the cluster protocol tests.
type Loopback struct {
	cfg    LoopbackConfig
	eps    []*loopEndpoint
	links  map[[2]topology.Node]chan loopQueued
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewLoopback builds the mesh and starts its link goroutines.
func NewLoopback(cfg LoopbackConfig) (*Loopback, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("transport: loopback requires a graph")
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Now()
	}
	lb := &Loopback{
		cfg:   cfg,
		links: make(map[[2]topology.Node]chan loopQueued),
		done:  make(chan struct{}),
	}
	n := cfg.Graph.N()
	lb.eps = make([]*loopEndpoint, n)
	for v := 0; v < n; v++ {
		lb.eps[v] = &loopEndpoint{
			mesh:  lb,
			self:  topology.Node(v),
			inbox: make(chan []byte, cfg.QueueLen),
		}
	}
	for _, a := range cfg.Graph.Arcs() {
		ch := make(chan loopQueued, cfg.QueueLen)
		lb.links[[2]topology.Node{a.From, a.To}] = ch
		lb.wg.Add(1)
		go lb.runLink(ch, lb.eps[a.To])
	}
	return lb, nil
}

// runLink drains one directed link in FIFO order, holding each frame
// until its delivery time. Because release times are assigned in send
// order from a monotonic clock plus non-decreasing delays only when the
// filter says so, per-link ordering matches the simulator's.
func (lb *Loopback) runLink(ch chan loopQueued, dst *loopEndpoint) {
	defer lb.wg.Done()
	for {
		select {
		case <-lb.done:
			return
		case q := <-ch:
			if wait := time.Until(q.after); wait > 0 {
				select {
				case <-time.After(wait):
				case <-lb.done:
					return
				}
			}
			select {
			case dst.inbox <- q.body:
				atomic.AddInt64(&dst.stats.Received, 1)
			default:
				atomic.AddInt64(&dst.stats.DroppedRx, 1)
			}
		}
	}
}

// Endpoint returns node v's attachment.
func (lb *Loopback) Endpoint(v topology.Node) (Endpoint, error) {
	if int(v) < 0 || int(v) >= len(lb.eps) {
		return nil, fmt.Errorf("transport: node %d outside [0,%d)", v, len(lb.eps))
	}
	return lb.eps[v], nil
}

// Close stops all link goroutines and closes every inbox.
func (lb *Loopback) Close() error {
	if lb.closed.Swap(true) {
		return nil
	}
	close(lb.done)
	lb.wg.Wait()
	for _, ep := range lb.eps {
		close(ep.inbox)
	}
	return nil
}

type loopEndpoint struct {
	mesh  *Loopback
	self  topology.Node
	inbox chan []byte
	stats EndpointStats
}

func (e *loopEndpoint) Self() topology.Node   { return e.self }
func (e *loopEndpoint) Recv() <-chan []byte   { return e.inbox }
func (e *loopEndpoint) Close() error          { return nil }
func (e *loopEndpoint) PeerDown(topology.Node) bool { return false }

func (e *loopEndpoint) Stats() EndpointStats {
	return EndpointStats{
		Sent:       atomic.LoadInt64(&e.stats.Sent),
		Received:   atomic.LoadInt64(&e.stats.Received),
		SendErrors: atomic.LoadInt64(&e.stats.SendErrors),
		DroppedRx:  atomic.LoadInt64(&e.stats.DroppedRx),
	}
}

func (e *loopEndpoint) Send(to topology.Node, f *Frame) error {
	lb := e.mesh
	if lb.closed.Load() {
		atomic.AddInt64(&e.stats.SendErrors, 1)
		return fmt.Errorf("transport: loopback closed")
	}
	if err := adjacency(lb.cfg.Graph, e.self, to); err != nil {
		atomic.AddInt64(&e.stats.SendErrors, 1)
		return err
	}
	body, err := EncodeFrame(f)
	if err != nil {
		atomic.AddInt64(&e.stats.SendErrors, 1)
		return err
	}
	delay := lb.cfg.Latency
	copies := 1
	if lb.cfg.Filter != nil {
		act := lb.cfg.Filter.Filter(e.self, to, time.Since(lb.cfg.Epoch))
		if act.Drop {
			// Chaos losses count as sent: the sender cannot tell.
			atomic.AddInt64(&e.stats.Sent, 1)
			return nil
		}
		if act.Corrupt && len(body) > 0 {
			body[len(body)/2] ^= 0xFF
		}
		if act.Duplicate {
			copies = 2
		}
		delay += act.Delay
	}
	ch := lb.links[[2]topology.Node{e.self, to}]
	q := loopQueued{body: body, after: time.Now().Add(delay)}
	for i := 0; i < copies; i++ {
		select {
		case ch <- q:
		default:
			atomic.AddInt64(&e.stats.SendErrors, 1)
			return fmt.Errorf("transport: link %d->%d queue full", e.self, to)
		}
	}
	atomic.AddInt64(&e.stats.Sent, 1)
	return nil
}
