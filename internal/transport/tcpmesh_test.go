package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"ihc/internal/topology"
)

// newPair builds two live endpoints on K2, pre-binding both listeners
// so each side knows the other's address up front (the same two-phase
// construction the cluster harness uses).
func newPair(t *testing.T) (*TCPNode, *TCPNode, *topology.Graph) {
	t.Helper()
	g := topology.Complete(2)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTCP(TCPConfig{
		Self: 0, Graph: g, Listener: lnA,
		Peers:   map[topology.Node]string{1: lnB.Addr().String()},
		Dial:    BackoffConfig{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.1, Seed: 1},
		Breaker: BreakerConfig{Threshold: 3, Cooldown: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(TCPConfig{
		Self: 1, Graph: g, Listener: lnB,
		Peers:   map[topology.Node]string{0: lnA.Addr().String()},
		Dial:    BackoffConfig{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.1, Seed: 2},
		Breaker: BreakerConfig{Threshold: 3, Cooldown: 30 * time.Millisecond},
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	return a, b, g
}

func recvFrame(t *testing.T, ep Endpoint, timeout time.Duration) *Frame {
	t.Helper()
	select {
	case body, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		f, err := DecodeFrame(body)
		if err != nil {
			t.Fatal(err)
		}
		return f
	case <-time.After(timeout):
		t.Fatal("no frame within timeout")
		return nil
	}
}

func TestTCPSendRecv(t *testing.T) {
	a, b, _ := newPair(t)
	defer a.Close()
	defer b.Close()
	f := &Frame{Kind: FrameData, From: 0, Source: 0, Channel: 1, Payload: []byte("hello")}
	if err := a.Send(1, f); err != nil {
		t.Fatal(err)
	}
	got := recvFrame(t, b, 2*time.Second)
	if got.Source != 0 || got.Channel != 1 || string(got.Payload) != "hello" {
		t.Fatalf("received %+v", got)
	}
	if err := a.Send(0, f); err == nil {
		t.Fatal("send to self accepted")
	}
	if s := a.Stats(); s.Sent != 1 {
		t.Fatalf("sent counter = %d, want 1", s.Sent)
	}
}

// TestTCPReconnectRecoversNakPath is the peer-dies-mid-stage scenario:
// node 1 dies, node 0's sends fail until the circuit breaker opens,
// node 1 comes back on the same address, and the next NAK → REPAIR
// exchange completes over fresh connections in both directions.
func TestTCPReconnectRecoversNakPath(t *testing.T) {
	a, b, g := newPair(t)
	defer a.Close()

	// Warm the connection, then kill the peer.
	if err := a.Send(1, &Frame{Kind: FrameData, Source: 0, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	recvFrame(t, b, 2*time.Second)
	bAddr := b.Addr()
	b.Close()

	// Sends now fail: the established conn breaks, redials are refused,
	// and the breaker must trip open, after which Send refuses
	// immediately with PeerDownError.
	deadline := time.Now().Add(5 * time.Second)
	for !a.PeerDown(1) {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened after peer death")
		}
		a.Send(1, &Frame{Kind: FrameData, Source: 0, Payload: []byte("lost")})
		time.Sleep(5 * time.Millisecond)
	}
	var pd *PeerDownError
	if err := a.Send(1, &Frame{Kind: FrameNak, Source: 0}); !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("send on open breaker: %v, want PeerDownError{Peer: 1}", err)
	}

	// Restart the peer on the same address — a fresh process with fresh
	// connections, as after a crash-recover.
	b2, err := NewTCP(TCPConfig{
		Self: 1, Graph: g, Listen: bAddr,
		Peers:   map[topology.Node]string{0: a.Addr()},
		Dial:    BackoffConfig{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.1, Seed: 3},
		Breaker: BreakerConfig{Threshold: 3, Cooldown: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("restart peer on %s: %v", bAddr, err)
	}
	defer b2.Close()

	// Keep retrying the NAK: once the cooldown admits a probe, the
	// redial succeeds, the breaker closes, and the frame goes through.
	reconnectsBefore := a.Stats().Reconnects
	deadline = time.Now().Add(5 * time.Second)
	var nak *Frame
	for nak == nil {
		if time.Now().After(deadline) {
			t.Fatal("NAK never arrived after peer restart")
		}
		a.Send(1, &Frame{Kind: FrameNak, From: 0, Source: 2, Channel: 1})
		select {
		case body, ok := <-b2.Recv():
			if !ok {
				t.Fatal("restarted peer's recv channel closed")
			}
			f, err := DecodeFrame(body)
			if err != nil {
				t.Fatal(err)
			}
			if f.Kind == FrameNak {
				nak = f
			}
		case <-time.After(10 * time.Millisecond):
		}
	}
	if a.PeerDown(1) {
		t.Fatal("breaker still open after successful delivery")
	}
	if got := a.Stats().Reconnects; got <= reconnectsBefore {
		t.Fatalf("reconnect counter did not advance (%d)", got)
	}

	// And the repair answer crosses the reverse direction's own fresh
	// connection.
	if err := b2.Send(0, &Frame{Kind: FrameRepair, From: 1, Source: 2, Channel: 1, Payload: []byte("copy")}); err != nil {
		t.Fatal(err)
	}
	rep := recvFrame(t, a, 2*time.Second)
	if rep.Kind != FrameRepair || rep.Source != 2 || string(rep.Payload) != "copy" {
		t.Fatalf("repair reply %+v", rep)
	}
}
