package transport

import (
	"math/rand"
	"sync"
	"time"
)

// BackoffConfig shapes a jittered exponential backoff sequence. The
// zero value is not usable; call Defaulted or fill every field.
type BackoffConfig struct {
	Base   time.Duration // first delay
	Max    time.Duration // ceiling the sequence saturates at
	Factor float64       // multiplier between attempts, ≥ 1
	// Jitter is the fraction of each delay randomized away: attempt k
	// yields a delay uniform in [d·(1−Jitter), d] where
	// d = min(Base·Factor^k, Max). 0 disables jitter; must be < 1.
	Jitter float64
	Seed   int64 // randomness seed; 0 means unseeded (time-based)
}

// Defaulted fills zero fields with production defaults: 50ms base,
// 5s cap, ×2 growth, 20% jitter.
func (c BackoffConfig) Defaulted() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 50 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 5 * time.Second
	}
	if c.Factor < 1 {
		c.Factor = 2
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	return c
}

// Backoff produces one peer's retry delays. Not safe for concurrent
// use; each retry loop owns its own.
type Backoff struct {
	cfg     BackoffConfig
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a backoff sequence over c (zero fields defaulted).
func NewBackoff(c BackoffConfig) *Backoff {
	c = c.Defaulted()
	seed := c.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{cfg: c, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay before the next attempt and advances the
// sequence. Deterministic for a fixed Seed.
func (b *Backoff) Next() time.Duration {
	d := float64(b.cfg.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.cfg.Factor
		if d >= float64(b.cfg.Max) {
			d = float64(b.cfg.Max)
			break
		}
	}
	if d > float64(b.cfg.Max) {
		d = float64(b.cfg.Max)
	}
	b.attempt++
	if b.cfg.Jitter > 0 {
		d -= d * b.cfg.Jitter * b.rng.Float64()
	}
	return time.Duration(d)
}

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the sequence to the first delay after a success.
func (b *Backoff) Reset() { b.attempt = 0 }

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe is in flight; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig shapes a per-peer circuit breaker.
type BreakerConfig struct {
	// Threshold consecutive failures trip the breaker open.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// single half-open probe.
	Cooldown time.Duration
}

// Defaulted fills zero fields: trip after 5 consecutive failures, probe
// after 500ms.
func (c BreakerConfig) Defaulted() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	return c
}

// Breaker is a per-peer circuit breaker: after Threshold consecutive
// failures it refuses traffic for Cooldown, then admits exactly one
// probe; the probe's outcome closes or re-opens it. Safe for concurrent
// use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	failures int
	openedAt time.Time
	now      func() time.Time // test hook
}

// NewBreaker returns a closed breaker over c (zero fields defaulted).
func NewBreaker(c BreakerConfig) *Breaker {
	return &Breaker{cfg: c.Defaulted(), now: time.Now}
}

// newBreakerAt is the test constructor with a manual clock.
func newBreakerAt(c BreakerConfig, now func() time.Time) *Breaker {
	return &Breaker{cfg: c.Defaulted(), now: now}
}

// Allow reports whether an attempt may proceed now. In the open state
// it returns false until the cooldown elapses, then transitions to
// half-open and admits exactly one caller; concurrent callers during
// the probe are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Admittable reports whether new traffic should be accepted toward
// this peer: true when closed, when half-open (the in-flight probe may
// deliver it), or when open with the cooldown elapsed (the attempt
// becomes the probe). Unlike Allow it never changes state, so senders
// can poll it without stealing the probe slot from the dialer.
func (b *Breaker) Admittable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return b.now().Sub(b.openedAt) >= b.cfg.Cooldown
	}
	return true
}

// Success records a successful attempt: closes the breaker and clears
// the failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
}

// Failure records a failed attempt. In half-open it re-opens
// immediately; in closed it trips once Threshold consecutive failures
// accumulate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = b.now()
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the breaker's current position (open reported as open
// even if the cooldown has elapsed — the transition happens in Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
