// Package tablefmt renders simple column-aligned text tables for the
// experiment harness — the rows/series the paper's tables and figures
// report, regenerated from the simulator and the analytic model.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row. Cells beyond the header width are allowed (the
// table grows); missing cells render empty.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with
// %v.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line rendered after the table body.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// widths computes the per-column display widths.
func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Header {
		if len(h) > w[i] {
			w[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := t.widths()
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Header) > 0 {
		line(t.Header)
		rule := make([]string, len(widths))
		for i, wd := range widths {
			rule[i] = strings.Repeat("-", wd)
		}
		line(rule)
	}
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
