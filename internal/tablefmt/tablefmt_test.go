package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tab := New("Title", "A", "LongHeader")
	tab.Add("x", "1")
	tab.Add("longer", "2")
	tab.Note("a note %d", 7)
	s := tab.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Fatalf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("got %d lines: %q", len(lines), s)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "LongHeader") {
		t.Fatalf("header line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-") {
		t.Fatalf("rule line: %q", lines[2])
	}
	// Column 2 must start at the same offset in both rows.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2") {
		t.Fatalf("misaligned columns:\n%q\n%q", lines[3], lines[4])
	}
	if !strings.Contains(lines[5], "note: a note 7") {
		t.Fatalf("note line: %q", lines[5])
	}
}

func TestAddfFormatting(t *testing.T) {
	tab := New("", "x")
	tab.Addf(3, 1.23456789, "s", true)
	row := tab.Rows[0]
	if row[0] != "3" || row[1] != "1.235" || row[2] != "s" || row[3] != "true" {
		t.Fatalf("row = %v", row)
	}
}

func TestRaggedRows(t *testing.T) {
	tab := New("", "a", "b")
	tab.Add("1")
	tab.Add("1", "2", "3")
	s := tab.String()
	if !strings.Contains(s, "3") {
		t.Fatalf("extra cell dropped: %q", s)
	}
}

func TestNoHeader(t *testing.T) {
	tab := &Table{}
	tab.Add("only", "row")
	s := tab.String()
	if strings.Contains(s, "--") {
		t.Fatalf("rule rendered without header: %q", s)
	}
	if !strings.Contains(s, "only") {
		t.Fatalf("row missing: %q", s)
	}
}
