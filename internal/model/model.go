// Package model implements the closed-form execution-time analysis of
// Lee & Shin's comparative study (Section VI): the best-case (ρ = 0,
// dedicated network) times of Table II, the η = μ = 2 instantiation of
// Table III, the heavy-traffic worst-case times of Table IV, the Theorem 4
// optimality bound, the crossover conditions under which the IHC
// algorithm beats the alternatives, and the paper's headline numbers
// (Dally's 20 ns cut-through time on Q10 and Q16).
//
// All times are exact integer ticks; the mesh formulas use the exact hop
// counts (2m-5 cut-throughs for KS on a hex mesh of size m, 2√N-6 for VSQ
// on an m x m torus) rather than the paper's √N approximations, so
// simulator results can be asserted equal to these values.
package model

import (
	"fmt"
	"math"

	"ihc/internal/simnet"
)

// Params are the timing parameters shared with the simulator.
type Params struct {
	TauS  simnet.Time // message startup time τ_S
	Alpha simnet.Time // cut-through delay per intermediate node α
	Mu    int         // packet length in FIFO-buffer units μ
	D     simnet.Time // queueing delay for blocked packets
}

// PacketTime returns μα.
func (p Params) PacketTime() simnet.Time { return simnet.Time(p.Mu) * p.Alpha }

// Log2 returns log2 of a power of two; it panics otherwise (the hypercube
// algorithms are only defined for N = 2^m).
func Log2(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("model: %d is not a positive power of two", n))
	}
	m := 0
	for n > 1 {
		n >>= 1
		m++
	}
	return m
}

// --- Table II: best case, dedicated network (ρ = 0) ---

// IHCBest returns the Table II execution time of the IHC algorithm:
// η(τ_S + μα + (N-2)α) — η stages, each one startup, one transmission,
// and N-2 cut-throughs.
func IHCBest(p Params, n, eta int) simnet.Time {
	return simnet.Time(eta) * (p.TauS + p.PacketTime() + simnet.Time(n-2)*p.Alpha)
}

// IHCBestOverlapped returns the modified IHC algorithm's time: stages
// overlap by μ-1 time steps, saving (μ-1)²α in total (Section VI-A).
func IHCBestOverlapped(p Params, n, eta int) simnet.Time {
	save := simnet.Time((p.Mu-1)*(p.Mu-1)) * p.Alpha
	return IHCBest(p, n, eta) - save
}

// VRSATABest returns the Table II time of VRS-ATA on a hypercube with N
// nodes: N((log2 N - 1)(τ_S + μα) + 2α) — N sequential VRS broadcasts,
// each with a longest path of γ-1 store-and-forwards and 2 cut-throughs.
func VRSATABest(p Params, n int) simnet.Time {
	gamma := Log2(n)
	return simnet.Time(n) * (simnet.Time(gamma-1)*(p.TauS+p.PacketTime()) + 2*p.Alpha)
}

// KSATABest returns the Table II time of KS-ATA on a hex mesh of size m
// (N = 3m(m-1)+1): N(3(τ_S + μα) + (2m-5)α) — the longest KS path has 3
// store-and-forwards and 2m-5 cut-throughs.
func KSATABest(p Params, m int) simnet.Time {
	n := 3*m*(m-1) + 1
	return simnet.Time(n) * (3*(p.TauS+p.PacketTime()) + simnet.Time(2*m-5)*p.Alpha)
}

// VSQATABest returns the Table II time of VSQ-ATA on an m x m torus
// (N = m²): N(3(τ_S + μα) + (2m-6)α).
func VSQATABest(p Params, m int) simnet.Time {
	n := m * m
	return simnet.Time(n) * (3*(p.TauS+p.PacketTime()) + simnet.Time(2*m-6)*p.Alpha)
}

// FRSBest returns the Table II time of Fraigniaud's store-and-forward
// lock-step ATA algorithm on a hypercube: (log2 N + 1)τ_S + (N-1)μα.
func FRSBest(p Params, n int) simnet.Time {
	gamma := Log2(n)
	return simnet.Time(gamma+1)*p.TauS + simnet.Time(n-1)*p.PacketTime()
}

// --- Table IV: worst case (heavy traffic, all hops buffered + queued) ---

// IHCWorst returns η(N-1)(τ_S + μα + D).
func IHCWorst(p Params, n, eta int) simnet.Time {
	return simnet.Time(eta) * simnet.Time(n-1) * (p.TauS + p.PacketTime() + p.D)
}

// VRSATAWorst returns N(log2 N + 1)(τ_S + μα + D).
func VRSATAWorst(p Params, n int) simnet.Time {
	gamma := Log2(n)
	return simnet.Time(n) * simnet.Time(gamma+1) * (p.TauS + p.PacketTime() + p.D)
}

// KSATAWorst returns N(2m-2)(τ_S + μα + D): the KS longest path has
// 3 + (2m-5) = 2m-2 hops, every one buffered and queued.
func KSATAWorst(p Params, m int) simnet.Time {
	n := 3*m*(m-1) + 1
	return simnet.Time(n) * simnet.Time(2*m-2) * (p.TauS + p.PacketTime() + p.D)
}

// VSQATAWorst returns N(2m-3)(τ_S + μα + D) for the m x m torus.
func VSQATAWorst(p Params, m int) simnet.Time {
	n := m * m
	return simnet.Time(n) * simnet.Time(2*m-3) * (p.TauS + p.PacketTime() + p.D)
}

// FRSWorst returns (log2 N + 1)(τ_S + D) + (N-1)μα: FRS pays the queueing
// delay only once per step, which is why it wins under saturation.
func FRSWorst(p Params, n int) simnet.Time {
	gamma := Log2(n)
	return simnet.Time(gamma+1)*(p.TauS+p.D) + simnet.Time(n-1)*p.PacketTime()
}

// --- Theorem 4 and crossover analysis ---

// OptimalATATime returns the Theorem 4 lower bound τ_S + (N-1)α on any
// ATA reliable broadcast in a dedicated network: γN(N-1) packets divided
// evenly over N nodes' γ outgoing links means each link carries N-1
// packets of α each after one startup. IHC with η = μ = 1 achieves it.
func OptimalATATime(p Params, n int) simnet.Time {
	return p.TauS + simnet.Time(n-1)*p.Alpha
}

// JungSakhoBound returns τ_S + (N-1)μα: the per-link load lower bound
// on γ-copy reliable ATA broadcast over a γ-cycle decomposition,
// generalizing Theorem 4 to μ-packet messages. Jung & Sakho's
// construction gives γ = 2n edge-disjoint Hamiltonian cycles on the
// k-ary n-dimensional torus, so every node sources γ(N-1) message
// copies of μα each over exactly γ dedicated outgoing links: some link
// carries N-1 messages after one startup. At μ = 1 this is exactly
// OptimalATATime; IHC with η = μ meets it up to the fixed pipelining
// term (η-1)(τ_S + μα), independent of N.
func JungSakhoBound(p Params, n int) simnet.Time {
	return p.TauS + simnet.Time(n-1)*p.PacketTime()
}

// MaxEtaBeatingCutThroughBaselines returns the largest interleaving
// distance η for which IHC is faster than all other cut-through
// ATA algorithms (Section VI-A): η <= min{log2 N - 1, 2√((N-1)/3) - 2,
// 2√N - 3}. The bound is evaluated with the paper's real-valued square
// roots, floored.
func MaxEtaBeatingCutThroughBaselines(n int) int {
	hyper := float64(ilog2floor(n)) - 1
	hex := 2*math.Sqrt(float64(n-1)/3) - 2
	sq := 2*math.Sqrt(float64(n)) - 3
	return int(math.Floor(math.Min(hyper, math.Min(hex, sq))))
}

func ilog2floor(n int) int {
	m := 0
	for n > 1 {
		n >>= 1
		m++
	}
	return m
}

// IHCBeatsFRS reports whether, at η = μ and ρ = 0, IHC is faster than FRS.
// The paper's sufficient condition is τ_S >= μ²α/2.
func IHCBeatsFRS(p Params) bool {
	return 2*p.TauS >= simnet.Time(p.Mu*p.Mu)*p.Alpha
}

// --- Headline numbers (Section VI-A) ---

// HeadlineParams are the constants the paper quotes: Dally's 20 ns
// cut-through time, τ_S = 0.5 ms, with the dedicated η = μ = 2 regime.
// One tick = 1 ns.
func HeadlineParams() Params {
	return Params{TauS: 500_000, Alpha: 20, Mu: 2, D: 0}
}

// Headline describes one of the paper's quoted data points.
type Headline struct {
	Name        string
	N           int
	Gamma       int
	Packets     int64       // γN(N-1) packets sent and received
	Time        simnet.Time // IHC execution time in ns (includes 2τ_S)
	TimeLessTau simnet.Time // the "2τ_S + X" X part, in ns
}

// Headlines returns the paper's two quoted configurations: a 1024-node
// Q10 (2τ_S + 0.02 ms) and a 64K-node Q16 (2τ_S + 1.31 ms; with
// τ_S = 0.5 ms that is 1.81 ms for 68.7 billion packets).
func Headlines() []Headline {
	p := HeadlineParams()
	out := make([]Headline, 0, 2)
	for _, m := range []int{10, 16} {
		n := 1 << m
		t := IHCBest(p, n, 2)
		out = append(out, Headline{
			Name:        fmt.Sprintf("Q%d", m),
			N:           n,
			Gamma:       m,
			Packets:     int64(m) * int64(n) * int64(n-1),
			Time:        t,
			TimeLessTau: t - 2*p.TauS,
		})
	}
	return out
}
