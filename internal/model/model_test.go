package model

import (
	"testing"
	"testing/quick"

	"ihc/internal/simnet"
)

var p = Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

func TestLog2(t *testing.T) {
	for m := 0; m <= 20; m++ {
		if Log2(1<<m) != m {
			t.Fatalf("Log2(2^%d) = %d", m, Log2(1<<m))
		}
	}
	for _, bad := range []int{0, -4, 3, 12, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Log2(%d) did not panic", bad)
				}
			}()
			Log2(bad)
		}()
	}
}

func TestIHCBestMatchesPaperForm(t *testing.T) {
	// η(τ_S + μα + (N-2)α), spot-checked by hand: N=16, η=2, μ=2:
	// 2(100 + 40 + 14*20) = 2*420 = 840.
	if got := IHCBest(p, 16, 2); got != 840 {
		t.Fatalf("IHCBest = %d, want 840", got)
	}
}

func TestIHCBestOverlappedSaving(t *testing.T) {
	// Saving is (μ-1)²α independent of N and η.
	for _, mu := range []int{1, 2, 3, 5} {
		pm := p
		pm.Mu = mu
		save := IHCBest(pm, 64, mu) - IHCBestOverlapped(pm, 64, mu)
		want := simnet.Time((mu-1)*(mu-1)) * pm.Alpha
		if save != want {
			t.Fatalf("μ=%d: saving = %d, want %d", mu, save, want)
		}
	}
}

func TestTheorem4OptimalEqualsIHCAtEtaMuOne(t *testing.T) {
	// With η = μ = 1, IHCBest = τ_S + α + (N-2)α = τ_S + (N-1)α.
	p1 := p
	p1.Mu = 1
	for _, n := range []int{16, 64, 1024} {
		if IHCBest(p1, n, 1) != OptimalATATime(p1, n) {
			t.Fatalf("N=%d: IHC(η=μ=1)=%d != bound %d", n, IHCBest(p1, n, 1), OptimalATATime(p1, n))
		}
	}
}

func TestVRSATABest(t *testing.T) {
	// N=16 (γ=4): 16(3(140) + 40) = 16*460 = 7360.
	if got := VRSATABest(p, 16); got != 7360 {
		t.Fatalf("VRSATABest = %d, want 7360", got)
	}
}

func TestKSATABest(t *testing.T) {
	// m=3 (N=19): 19(3*140 + 1*20) = 19*440 = 8360.
	if got := KSATABest(p, 3); got != 8360 {
		t.Fatalf("KSATABest = %d, want 8360", got)
	}
}

func TestVSQATABest(t *testing.T) {
	// m=4 (N=16): 16(3*140 + 2*20) = 16*460 = 7360.
	if got := VSQATABest(p, 4); got != 7360 {
		t.Fatalf("VSQATABest = %d, want 7360", got)
	}
}

func TestFRSBest(t *testing.T) {
	// N=16: 5*100 + 15*40 = 1100.
	if got := FRSBest(p, 16); got != 1100 {
		t.Fatalf("FRSBest = %d, want 1100", got)
	}
}

func TestWorstCaseFormulas(t *testing.T) {
	unit := p.TauS + p.PacketTime() + p.D // 177
	if got := IHCWorst(p, 16, 2); got != 2*15*unit {
		t.Fatalf("IHCWorst = %d", got)
	}
	if got := VRSATAWorst(p, 16); got != 16*5*unit {
		t.Fatalf("VRSATAWorst = %d", got)
	}
	if got := KSATAWorst(p, 3); got != 19*4*unit {
		t.Fatalf("KSATAWorst = %d", got)
	}
	if got := VSQATAWorst(p, 4); got != 16*5*unit {
		t.Fatalf("VSQATAWorst = %d", got)
	}
	if got := FRSWorst(p, 16); got != 5*(p.TauS+p.D)+15*p.PacketTime() {
		t.Fatalf("FRSWorst = %d", got)
	}
}

// In the worst case FRS must dominate (paper's conclusion for saturated
// networks), and in the best case IHC with small η must dominate.
func TestBestAndWorstCaseOrdering(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024} {
		if IHCBest(p, n, 2) >= VRSATABest(p, n) {
			t.Fatalf("N=%d: IHC best not faster than VRS-ATA", n)
		}
		if IHCBest(p, n, 2) >= FRSBest(p, n) {
			t.Fatalf("N=%d: IHC best (η=μ=2, τ_S=100>=μ²α/2=40) not faster than FRS", n)
		}
		if FRSWorst(p, n) >= IHCWorst(p, n, 2) {
			t.Fatalf("N=%d: FRS worst not faster than IHC worst", n)
		}
		if FRSWorst(p, n) >= VRSATAWorst(p, n) {
			t.Fatalf("N=%d: FRS worst not faster than VRS-ATA worst", n)
		}
	}
}

func TestMaxEtaBeatingCutThroughBaselines(t *testing.T) {
	// N=1024: min(log2N-1, 2√(341)-2, 2*32-3) = min(9, 34.9, 61) = 9.
	if got := MaxEtaBeatingCutThroughBaselines(1024); got != 9 {
		t.Fatalf("maxEta(1024) = %d, want 9", got)
	}
	// N=64: min(5, 2√21-2=7.16, 13) = 5.
	if got := MaxEtaBeatingCutThroughBaselines(64); got != 5 {
		t.Fatalf("maxEta(64) = %d, want 5", got)
	}
}

// The crossover claim, verified directly against the formulas: for every
// η up to the bound, IHC beats every cut-through baseline of matching
// size; for η above the hypercube bound, it loses to at least one.
func TestCrossoverAgainstFormulas(t *testing.T) {
	n := 1024 // Q10, SQ32; hex uses m=19 => N=1027 (closest size)
	bound := MaxEtaBeatingCutThroughBaselines(n)
	for eta := 1; eta <= bound; eta++ {
		if IHCBest(p, n, eta) >= VRSATABest(p, n) {
			t.Fatalf("η=%d <= bound %d but IHC >= VRS-ATA", eta, bound)
		}
		if IHCBest(p, n, eta) >= VSQATABest(p, 32) {
			t.Fatalf("η=%d <= bound %d but IHC >= VSQ-ATA", eta, bound)
		}
		if IHCBest(p, 1027, eta) >= KSATABest(p, 19) {
			t.Fatalf("η=%d <= bound %d but IHC >= KS-ATA", eta, bound)
		}
	}
	// Far above the bound IHC must lose to the tightest baseline.
	loseEta := 12 * (bound + 1)
	if IHCBest(p, n, loseEta) < VRSATABest(p, n) {
		t.Fatalf("η=%d far above bound but IHC still wins", loseEta)
	}
}

func TestIHCBeatsFRSCondition(t *testing.T) {
	good := Params{TauS: 40, Alpha: 20, Mu: 2} // μ²α/2 = 40 <= τ_S
	if !IHCBeatsFRS(good) {
		t.Fatalf("condition should hold at τ_S = μ²α/2")
	}
	badP := Params{TauS: 39, Alpha: 20, Mu: 2}
	if IHCBeatsFRS(badP) {
		t.Fatalf("condition should fail below μ²α/2")
	}
	// And the condition is the right predictor of the actual comparison
	// for η = μ (up to the paper's approximation, which drops additive
	// lower-order terms; check the exact inequality at a large N).
	n := 4096
	if IHCBest(good, n, good.Mu) >= FRSBest(good, n) {
		t.Fatalf("predicted IHC win but formula says loss")
	}
}

func TestHeadlines(t *testing.T) {
	hs := Headlines()
	if len(hs) != 2 {
		t.Fatalf("want 2 headlines")
	}
	q10, q16 := hs[0], hs[1]
	// Q10: 2τ_S + 0.02 ms: η(μα + (N-2)α) = 2(40 + 1022*20) = 40960 ns ≈ 0.04 ms.
	// The paper rounds 2(N-2)α = 40.88 µs to "0.02 ms" per stage... its
	// quoted total is 2τ_S + 0.02 ms·(stages aggregated): accept ±factor 2
	// of 0.02 ms here and assert the exact formula value instead.
	if q10.TimeLessTau != 2*(40+1022*20) {
		t.Fatalf("Q10 time-less-τ = %d", q10.TimeLessTau)
	}
	if q10.N != 1024 || q10.Gamma != 10 {
		t.Fatalf("Q10 meta wrong: %+v", q10)
	}
	// Q16: the paper quotes 2τ_S + 1.31 ms and 68.7e9 packets in 1.81 ms.
	if q16.Packets != 16*65536*65535 {
		t.Fatalf("Q16 packets = %d", q16.Packets)
	}
	if q16.Packets < 68_000_000_000 || q16.Packets > 69_000_000_000 {
		t.Fatalf("Q16 packets %d not ≈ 68.7e9", q16.Packets)
	}
	msLess := float64(q16.TimeLessTau) / 1e6
	if msLess < 2.55 || msLess > 2.70 {
		// 2(μα + (N-2)α) = 2*(40+65534*20) ns = 2.62 ms; the paper's
		// "1.31 ms" is the per-stage value (see EXPERIMENTS.md).
		t.Fatalf("Q16 time-less-τ = %.3f ms, want ≈ 2.62", msLess)
	}
	perStage := float64(q16.TimeLessTau) / 2 / 1e6
	if perStage < 1.28 || perStage > 1.34 {
		t.Fatalf("Q16 per-stage = %.3f ms, want ≈ 1.31", perStage)
	}
	totalMs := float64(q16.Time) / 1e6
	if totalMs < 3.5 || totalMs > 3.7 {
		t.Fatalf("Q16 total = %.3f ms", totalMs)
	}
}

// Property: best-case times are monotone in N for every algorithm.
func TestQuickMonotoneInN(t *testing.T) {
	f := func(a, b uint8) bool {
		m1 := int(a)%7 + 4 // 4..10
		m2 := int(b)%7 + 4
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		if m1 == m2 {
			return true
		}
		n1, n2 := 1<<m1, 1<<m2
		return IHCBest(p, n1, 2) < IHCBest(p, n2, 2) &&
			VRSATABest(p, n1) < VRSATABest(p, n2) &&
			FRSBest(p, n1) < FRSBest(p, n2) &&
			IHCWorst(p, n1, 2) < IHCWorst(p, n2, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the worst case is never faster than the best case.
func TestQuickWorstAtLeastBest(t *testing.T) {
	f := func(a uint8, etaRaw uint8) bool {
		m := int(a)%9 + 4 // 4..12
		n := 1 << m
		eta := int(etaRaw)%4 + 1
		return IHCWorst(p, n, eta) >= IHCBest(p, n, eta) &&
			VRSATAWorst(p, n) >= VRSATABest(p, n) &&
			FRSWorst(p, n) >= FRSBest(p, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
