package cluster

import (
	"context"
	"testing"
	"time"

	"ihc/internal/chaos"
	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/hamilton"
	"ihc/internal/topology"
	"ihc/internal/transport"
)

func q3(t *testing.T) *core.IHC {
	t.Helper()
	g := topology.MustHypercube(3)
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func quickTiming(cfg Config) Config {
	cfg.StageDur = 30 * time.Millisecond
	cfg.HopLatency = time.Millisecond
	cfg.Slack = 60 * time.Millisecond
	cfg.Retry = transport.BackoffConfig{
		Base: 10 * time.Millisecond, Max: 150 * time.Millisecond,
		Factor: 1.6, Jitter: 0.2, Seed: 42,
	}
	cfg.MaxAttempts = 30
	cfg.Timeout = 20 * time.Second
	return cfg
}

// TestLoopbackFaultFree runs a fault-free Q3 ATA round over the
// in-process mesh and checks both the per-node γ-copy ledgers and the
// delivery-multiset equivalence against the discrete-event engine.
func TestLoopbackFaultFree(t *testing.T) {
	cfg := quickTiming(Config{IHC: q3(t), Eta: 2, KeySeed: 7})
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 8 {
		t.Fatalf("got %d survivors, want 8", len(res.Nodes))
	}
	if err := CompareWithSimnet(cfg, res); err != nil {
		t.Fatal(err)
	}
}

// TestTCPFaultFree is the same round over real sockets.
func TestTCPFaultFree(t *testing.T) {
	cfg := quickTiming(Config{IHC: q3(t), Eta: 2, KeySeed: 7, TCP: true})
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := CompareWithSimnet(cfg, res); err != nil {
		t.Fatal(err)
	}
}

// chaosQuick is the transport-quick fault plan: background frame chaos
// on every link, a mid-round partition of link {1,3} (not incident to
// the crash victim), and node 6 crashing during stage 1 — after its own
// stage-0 injections have propagated, so survivors still owe each other
// exactly γ copies of all 8 sources.
func chaosQuick(stageDur time.Duration) *chaos.Config {
	tick := time.Millisecond
	stage := int64(stageDur / tick)
	return &chaos.Config{
		Plan: &fault.TemporalPlan{
			Nodes: []fault.NodeFault{{Node: 6, Kind: fault.Crash, At: 1}},
			Links: []fault.LinkFault{{U: 1, V: 3, From: 1, Until: 4}},
		},
		// Plan times are in stages here: scale ticks so tick 1 =
		// one stage into the round.
		TickDur:     time.Duration(stage) * tick,
		Seed:        99,
		DropRate:    0.05,
		DupRate:     0.05,
		CorruptRate: 0.03,
		DelayRate:   0.1,
		MaxDelay:    3 * time.Millisecond,
	}
}

// TestLoopbackChaos drives the full chaos scenario — drop, dup,
// corrupt, delay, partition, crash — over the in-process mesh and
// asserts the surviving nodes' exact γ-copy postcondition.
func TestLoopbackChaos(t *testing.T) {
	cfg := quickTiming(Config{IHC: q3(t), Eta: 2, KeySeed: 7})
	cfg.Chaos = chaosQuick(cfg.StageDur)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 6 {
		t.Fatalf("crashed = %v, want [6]", res.Crashed)
	}
	if len(res.Nodes) != 7 {
		t.Fatalf("got %d survivors, want 7", len(res.Nodes))
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPChaos is the headline scenario over real sockets and
// socket-level chaos proxies.
func TestTCPChaos(t *testing.T) {
	cfg := quickTiming(Config{IHC: q3(t), Eta: 2, KeySeed: 7, TCP: true})
	cfg.Chaos = chaosQuick(cfg.StageDur)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 7 {
		t.Fatalf("got %d survivors, want 7", len(res.Nodes))
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}
