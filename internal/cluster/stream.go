package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ihc/internal/chaos"
	"ihc/internal/hlc"
	"ihc/internal/observe"
	"ihc/internal/reliable"
	"ihc/internal/stream"
	"ihc/internal/topology"
	"ihc/internal/transport"
)

// This file is the streaming counterpart of Run: a full cluster of
// stream.Nodes over the loopback mesh, each fed by a synthetic client
// load, with the soak harness's fault script — a mid-stream kill and
// restart of one node (the rejoin path under test) and whatever link
// chaos the plan carries — executed against it. The kill is as close
// to SIGKILL as an in-process cluster gets: the node's context is
// cancelled with zero notice and every frame addressed to it during
// the downtime is read off the wire and discarded, exactly what a dead
// process's kernel does to its sockets. The restart hands the same
// endpoint to a brand-new stream.Node with no state but the keyring —
// it must rediscover the epoch via the JOIN handshake and catch up.

// KillSpec schedules the mid-stream kill of one node.
type KillSpec struct {
	Node topology.Node
	// At is the kill time as an offset from epoch 0's scheduled start;
	// Downtime is how long the node stays dead before restarting.
	At       time.Duration
	Downtime time.Duration
}

// LoadSpec shapes the synthetic client load each node's ingress
// receives while the stream runs.
type LoadSpec struct {
	// Interval between submissions per node; Bytes per payload.
	Interval time.Duration
	Bytes    int
	// HighEvery marks every k-th submission high-priority (0 = all low).
	HighEvery int
}

// StreamConfig shapes one streaming cluster run. The embedded Config
// supplies topology, keys, per-round timing, retry shape, and the
// chaos plan; TCP must be false (the kill/restart choreography is
// loopback-only — the multi-process variant is cmd/ihcd's job).
type StreamConfig struct {
	Config
	// Epochs to stream; Period between epoch starts; MaxInflight
	// overlapping rounds.
	Epochs      int
	Period      time.Duration
	MaxInflight int
	Retain      int
	// Drain bounds the post-schedule straggler window.
	Drain time.Duration
	// Ingress and Load shape the client-payload path. A zero Load
	// disables the generators (only heartbeat batches flow).
	Ingress stream.IngressConfig
	Load    LoadSpec
	// Kill, when non-nil, schedules the mid-stream kill/restart.
	Kill *KillSpec
	// Payload, when non-nil, bypasses ingress on every node — node v's
	// epoch-e injection is Payload(v, e). The equivalence tests use it.
	Payload func(v topology.Node, epoch uint32) []byte
	// Gauges aggregates cluster-wide streaming metrics (shared sink).
	Gauges *observe.StreamGauges
	// CollectPayloads retains delivered payload bytes per epoch result.
	CollectPayloads bool
}

func (c StreamConfig) defaulted() StreamConfig {
	c.Config = c.Config.defaulted()
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.Period <= 0 {
		c.Period = 4 * c.StageDur
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2
	}
	if c.Retain <= 0 {
		c.Retain = 64
	}
	if c.Drain <= 0 {
		c.Drain = 5 * time.Second
	}
	return c
}

// StreamResult is one streaming cluster run's outcome.
type StreamResult struct {
	Epoch0 time.Time
	Epochs int
	Gamma  int
	Kill   *KillSpec
	// PerNode merges each node's epoch verdicts across its lifetimes
	// (the killed node has two: pre-kill and post-rejoin).
	PerNode map[topology.Node][]stream.EpochResult
	RunErrs map[topology.Node]error
	// NaksSent sums pulls across all nodes and lifetimes.
	NaksSent int
	Snapshot observe.StreamSnapshot
}

// Verify renders the soak verdict:
//   - every survivor completed every epoch with the exact γ-copy
//     ledger postcondition (LedgerErr nil), no failed epochs;
//   - the killed node (if any) completed every epoch too, across its
//     two lifetimes — pre-kill live rounds plus post-rejoin catch-up —
//     with at least one CatchUp completion proving the rejoin path ran;
//   - no high-priority payload was shed.
func (r *StreamResult) Verify() error {
	if len(r.PerNode) == 0 {
		return fmt.Errorf("stream: no node results")
	}
	for v, results := range r.PerNode {
		killed := r.Kill != nil && r.Kill.Node == v
		done := make(map[uint32]bool)
		caughtUp := 0
		for _, er := range results {
			if er.Completed && er.LedgerErr != nil {
				return fmt.Errorf("stream: node %d epoch %d ledger: %w", v, er.Epoch, er.LedgerErr)
			}
			if er.Completed {
				done[er.Epoch] = true
				if er.CatchUp {
					caughtUp++
				}
			} else if !killed {
				return fmt.Errorf("stream: survivor %d failed epoch %d", v, er.Epoch)
			}
		}
		for e := 0; e < r.Epochs; e++ {
			if !done[uint32(e)] {
				return fmt.Errorf("stream: node %d never completed epoch %d (%d/%d done)", v, e, len(done), r.Epochs)
			}
		}
		if killed && caughtUp == 0 {
			return fmt.Errorf("stream: killed node %d completed all epochs without any catch-up round — the kill happened too late to bite", v)
		}
	}
	for v, err := range r.RunErrs {
		if err != nil {
			return fmt.Errorf("stream: node %d run: %w", v, err)
		}
	}
	if r.Snapshot.ShedHigh > 0 {
		return fmt.Errorf("stream: %d high-priority payloads shed", r.Snapshot.ShedHigh)
	}
	return nil
}

// RunStream executes one streaming cluster run over the loopback mesh.
func RunStream(ctx context.Context, cfg StreamConfig) (*StreamResult, error) {
	cfg = cfg.defaulted()
	if cfg.IHC == nil {
		return nil, fmt.Errorf("stream: config needs an IHC schedule")
	}
	if cfg.TCP {
		return nil, fmt.Errorf("stream: RunStream is loopback-only")
	}
	g := cfg.IHC.Graph()
	n := g.N()
	keyring := reliable.NewKeyring(n, cfg.KeySeed)
	epoch0 := time.Now().Add(cfg.SetupDelay)

	lbCfg := transport.LoopbackConfig{Graph: g, Latency: cfg.HopLatency, Epoch: epoch0}
	if cfg.Chaos != nil {
		cc := *cfg.Chaos
		cc.Graph = g
		cc.Epoch = epoch0
		plan, err := chaos.NewPlan(cc)
		if err != nil {
			return nil, err
		}
		lbCfg.Filter = plan
	}
	lb, err := transport.NewLoopback(lbCfg)
	if err != nil {
		return nil, err
	}
	defer lb.Close()

	runCtx, cancelAll := context.WithTimeout(ctx, cfg.Timeout)
	defer cancelAll()
	serveCtx, stopServing := context.WithCancel(context.Background())
	defer stopServing()

	nodeCfg := func(v topology.Node, ep transport.Endpoint, join bool) stream.Config {
		sc := stream.Config{
			IHC:             cfg.IHC,
			Eta:             cfg.Eta,
			Self:            v,
			Endpoint:        ep,
			Keyring:         keyring,
			Epoch0:          epoch0,
			Period:          cfg.Period,
			StageDur:        cfg.StageDur,
			HopLatency:      cfg.HopLatency,
			Slack:           cfg.Slack,
			Retry:           seededFor(cfg.Retry, v),
			MaxAttempts:     cfg.MaxAttempts,
			MaxInflight:     cfg.MaxInflight,
			Retain:          cfg.Retain,
			Epochs:          cfg.Epochs,
			Drain:           cfg.Drain,
			Join:            join,
			Ingress:         cfg.Ingress,
			Clock:           hlc.New(),
			Gauges:          cfg.Gauges,
			CollectPayloads: cfg.CollectPayloads,
		}
		if cfg.Payload != nil {
			sc.Payload = func(e uint32) []byte { return cfg.Payload(v, e) }
		}
		return sc
	}

	type outcome struct {
		node topology.Node
		res  *stream.Result
		err  error
	}
	results := make(chan outcome, n+1)
	var wg sync.WaitGroup

	// Load generators stop with the whole run.
	startLoad := func(nd *stream.Node) {
		if cfg.Load.Interval <= 0 {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(cfg.Load.Interval)
			defer tick.Stop()
			i := 0
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					i++
					pri := stream.Low
					if cfg.Load.HighEvery > 0 && i%cfg.Load.HighEvery == 0 {
						pri = stream.High
					}
					payload := make([]byte, cfg.Load.Bytes)
					for j := range payload {
						payload[j] = byte(i + j)
					}
					_ = nd.Ingress().Submit(payload, pri) // ErrShed is the point
				}
			}
		}()
	}

	expect := n
	var killCancel context.CancelFunc
	for v := 0; v < n; v++ {
		node := topology.Node(v)
		ep, err := lb.Endpoint(node)
		if err != nil {
			return nil, err
		}
		nd, err := stream.NewNode(nodeCfg(node, ep, false))
		if err != nil {
			return nil, fmt.Errorf("stream: node %d: %w", v, err)
		}
		nodeCtx := runCtx
		if cfg.Kill != nil && cfg.Kill.Node == node {
			var cancel context.CancelFunc
			nodeCtx, cancel = context.WithCancel(runCtx)
			killCancel = cancel
		}
		victim := cfg.Kill != nil && cfg.Kill.Node == node
		startLoad(nd)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := nd.Run(nodeCtx)
			results <- outcome{node: node, res: res, err: err}
			// Keep answering pulls and JOINs: a finished node may be a
			// straggler's only provider. The victim's first lifetime
			// must NOT serve — dead is dead; its restart takes over.
			if !victim {
				nd.Serve(serveCtx)
			}
		}()
	}

	if cfg.Kill != nil {
		expect++ // the victim reports twice: pre-kill and post-rejoin
		ks := *cfg.Kill
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-runCtx.Done():
				results <- outcome{node: ks.Node, err: runCtx.Err()}
				return
			case <-time.After(time.Until(epoch0.Add(ks.At))):
			}
			killCancel() // zero-notice stop: no flush, no goodbye
			// A dead process's kernel discards everything addressed to
			// it; the loopback analogue is draining the inbox on the
			// floor for the whole downtime.
			ep, _ := lb.Endpoint(ks.Node)
			downUntil := time.After(ks.Downtime)
		drain:
			for {
				select {
				case <-runCtx.Done():
					results <- outcome{node: ks.Node, err: runCtx.Err()}
					return
				case <-ep.Recv():
				case <-downUntil:
					break drain
				}
			}
			// Restart: a fresh node with no protocol state — it must
			// JOIN its way back in and catch up.
			nd, err := stream.NewNode(nodeCfg(ks.Node, ep, true))
			if err != nil {
				results <- outcome{node: ks.Node, err: err}
				return
			}
			startLoad(nd)
			res, err := nd.Run(runCtx)
			results <- outcome{node: ks.Node, res: res, err: err}
			nd.Serve(serveCtx)
		}()
	}

	out := &StreamResult{
		Epoch0:  epoch0,
		Epochs:  cfg.Epochs,
		Gamma:   cfg.IHC.Gamma(),
		Kill:    cfg.Kill,
		PerNode: make(map[topology.Node][]stream.EpochResult),
		RunErrs: make(map[topology.Node]error),
	}
	for i := 0; i < expect; i++ {
		oc := <-results
		if oc.res != nil {
			out.PerNode[oc.node] = append(out.PerNode[oc.node], oc.res.Epochs...)
			out.NaksSent += oc.res.NaksSent
		}
		killedInstance := cfg.Kill != nil && cfg.Kill.Node == oc.node
		// The victim's first lifetime ends in context.Canceled by
		// design; only unexpected errors count.
		if oc.err != nil && !(killedInstance && oc.err == context.Canceled) {
			out.RunErrs[oc.node] = oc.err
		}
	}
	stopServing()
	cancelAll()
	wg.Wait()
	for v := range out.PerNode {
		sort.Slice(out.PerNode[v], func(i, j int) bool { return out.PerNode[v][i].Epoch < out.PerNode[v][j].Epoch })
	}
	out.Snapshot = cfg.Gauges.Snapshot()
	return out, nil
}
