// Package cluster spins up a full IHC broadcast cluster — one
// transport.Node per network node — over either the in-process
// loopback mesh or real TCP sockets, optionally behind the chaos
// layer, runs one complete ATA round, and renders the per-survivor
// γ-copy verdicts. It is the harness behind the transport tests and
// `make transport-quick`, and the library `cmd/ihcd -launch` drives
// for the multi-process variant.
package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ihc/internal/chaos"
	"ihc/internal/core"
	"ihc/internal/hlc"
	"ihc/internal/reliable"
	"ihc/internal/simnet"
	"ihc/internal/topology"
	"ihc/internal/transport"
)

// Config shapes one cluster run.
type Config struct {
	IHC *core.IHC
	Eta int
	// KeySeed derives the cluster's HMAC keyring.
	KeySeed int64
	// TCP selects real sockets; false runs the loopback mesh.
	TCP bool
	// Chaos, when non-nil, interposes the compiled fault plan on every
	// link (loopback filter or per-arc TCP proxies) and schedules the
	// plan's node crashes. Its Epoch is overridden with the cluster's.
	Chaos *chaos.Config
	// Timing. StageDur must comfortably exceed per-hop latency ×
	// longest route for fault-free runs to finish inside the schedule.
	StageDur   time.Duration
	HopLatency time.Duration
	Slack      time.Duration
	// Retry/Breaker shape the repair backoff and (TCP) per-peer
	// circuit breakers.
	Retry       transport.BackoffConfig
	Breaker     transport.BreakerConfig
	MaxAttempts int
	// Timeout bounds the whole round. Default 30s.
	Timeout time.Duration
	// SetupDelay is how far in the future the cluster epoch (stage-0
	// start) is placed, leaving construction time. Default 100ms.
	SetupDelay time.Duration
}

func (c Config) defaulted() Config {
	if c.StageDur <= 0 {
		c.StageDur = 50 * time.Millisecond
	}
	if c.HopLatency <= 0 {
		c.HopLatency = time.Millisecond
	}
	if c.Slack <= 0 {
		c.Slack = c.StageDur
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.SetupDelay <= 0 {
		c.SetupDelay = 100 * time.Millisecond
	}
	return c
}

// Result is one cluster run's outcome.
type Result struct {
	Epoch   time.Time
	Gamma   int
	Nodes   map[topology.Node]*transport.NodeResult // survivors only
	Crashed []topology.Node
	// RunErrs records per-node transport/context errors (crashed
	// nodes' context cancellations excluded).
	RunErrs map[topology.Node]error
}

// Verify renders the cluster verdict: every surviving node's ledger
// must show the exact γ-copy postcondition, with no exhausted repairs.
func (r *Result) Verify() error {
	if len(r.Nodes) == 0 {
		return fmt.Errorf("cluster: no surviving nodes")
	}
	for v, nr := range r.Nodes {
		if len(nr.Exhausted) > 0 {
			return fmt.Errorf("cluster: node %d gave up on %d copies (first: source %d channel %d)",
				v, len(nr.Exhausted), nr.Exhausted[0].Source, nr.Exhausted[0].Channel)
		}
		if nr.LedgerErr != nil {
			return fmt.Errorf("cluster: node %d ledger: %w", v, nr.LedgerErr)
		}
	}
	return nil
}

// Repaired sums the copies that arrived via the repair path across
// survivors.
func (r *Result) Repaired() int {
	total := 0
	for _, nr := range r.Nodes {
		total += nr.Repaired
	}
	return total
}

// Run executes one full ATA round and returns the per-node results.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.defaulted()
	if cfg.IHC == nil {
		return nil, fmt.Errorf("cluster: config needs an IHC schedule")
	}
	g := cfg.IHC.Graph()
	n := g.N()
	keyring := reliable.NewKeyring(n, cfg.KeySeed)
	epoch := time.Now().Add(cfg.SetupDelay)

	var plan *chaos.Plan
	crashes := map[topology.Node]time.Duration{}
	if cfg.Chaos != nil {
		cc := *cfg.Chaos
		cc.Graph = g
		cc.Epoch = epoch
		var err error
		plan, err = chaos.NewPlan(cc)
		if err != nil {
			return nil, err
		}
		crashes = plan.Crashes()
	}

	endpoints := make(map[topology.Node]transport.Endpoint, n)
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	if cfg.TCP {
		// Pre-bind every listener so the address book (and the proxy
		// mesh in front of it) exists before any node starts.
		listeners := make(map[topology.Node]net.Listener, n)
		realAddrs := make(map[topology.Node]string, n)
		for v := 0; v < n; v++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("cluster: bind node %d: %w", v, err)
			}
			listeners[topology.Node(v)] = ln
			realAddrs[topology.Node(v)] = ln.Addr().String()
		}
		peerAddrs := func(v topology.Node) map[topology.Node]string {
			out := make(map[topology.Node]string)
			for _, nb := range g.Neighbors(v) {
				out[nb] = realAddrs[nb]
			}
			return out
		}
		if plan != nil {
			pm, err := chaos.NewProxyMesh(plan, realAddrs)
			if err != nil {
				for _, ln := range listeners {
					ln.Close()
				}
				return nil, err
			}
			closers = append(closers, func() { pm.Close() })
			peerAddrs = pm.Addrs
		}
		for v := 0; v < n; v++ {
			node := topology.Node(v)
			ep, err := transport.NewTCP(transport.TCPConfig{
				Self:     node,
				Graph:    g,
				Listener: listeners[node],
				Peers:    peerAddrs(node),
				Dial:     cfg.Retry,
				Breaker:  cfg.Breaker,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster: node %d endpoint: %w", v, err)
			}
			endpoints[node] = ep
			closers = append(closers, func() { ep.Close() })
		}
	} else {
		lbCfg := transport.LoopbackConfig{Graph: g, Latency: cfg.HopLatency, Epoch: epoch}
		if plan != nil {
			lbCfg.Filter = plan
		}
		lb, err := transport.NewLoopback(lbCfg)
		if err != nil {
			return nil, err
		}
		closers = append(closers, func() { lb.Close() })
		for v := 0; v < n; v++ {
			ep, err := lb.Endpoint(topology.Node(v))
			if err != nil {
				return nil, err
			}
			endpoints[topology.Node(v)] = ep
		}
	}

	runCtx, cancelAll := context.WithTimeout(ctx, cfg.Timeout)
	defer cancelAll()
	serveCtx, stopServing := context.WithCancel(context.Background())
	defer stopServing()

	type outcome struct {
		node topology.Node
		res  *transport.NodeResult
		err  error
	}
	results := make(chan outcome, n)
	var wg sync.WaitGroup
	cancels := make(map[topology.Node]func(), n)

	for v := 0; v < n; v++ {
		node := topology.Node(v)
		nd, err := transport.NewNode(transport.NodeConfig{
			IHC:         cfg.IHC,
			Eta:         cfg.Eta,
			Self:        node,
			Endpoint:    endpoints[node],
			Keyring:     keyring,
			Epoch:       epoch,
			StageDur:    cfg.StageDur,
			HopLatency:  cfg.HopLatency,
			Slack:       cfg.Slack,
			Retry:       seededFor(cfg.Retry, node),
			MaxAttempts: cfg.MaxAttempts,
			Clock:       hlc.New(),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", v, err)
		}
		nodeCtx, cancelRun := context.WithCancel(runCtx)
		nodeServeCtx, cancelServe := context.WithCancel(serveCtx)
		// A crash must silence the node completely: stop its run loop
		// AND its post-run pull service.
		cancels[node] = func() { cancelRun(); cancelServe() }
		wg.Add(1)
		go func() {
			defer cancelRun()
			defer cancelServe()
			defer wg.Done()
			res, err := nd.Run(nodeCtx)
			results <- outcome{node: node, res: res, err: err}
			// Keep answering pulls: a finished (or even a partially
			// failed) node may be a straggler's only provider.
			nd.Serve(nodeServeCtx)
		}()
	}

	// Schedule the plan's crashes: cancel the node and kill its
	// endpoint so peers see real connection resets, not a polite exit.
	for v, at := range crashes {
		v, at := v, at
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-runCtx.Done():
				return
			case <-time.After(time.Until(epoch.Add(at))):
			}
			cancels[v]()
			endpoints[v].Close()
		}()
	}

	res := &Result{
		Epoch:   epoch,
		Gamma:   cfg.IHC.Gamma(),
		Nodes:   make(map[topology.Node]*transport.NodeResult),
		RunErrs: make(map[topology.Node]error),
	}
	for range cancels {
		oc := <-results
		if _, crashed := crashes[oc.node]; crashed {
			res.Crashed = append(res.Crashed, oc.node)
			continue
		}
		if oc.res != nil {
			res.Nodes[oc.node] = oc.res
		}
		if oc.err != nil {
			res.RunErrs[oc.node] = oc.err
		}
	}
	sort.Slice(res.Crashed, func(i, j int) bool { return res.Crashed[i] < res.Crashed[j] })
	stopServing()
	cancelAll()
	wg.Wait()
	return res, nil
}

// seededFor decorrelates per-node retry jitter while keeping the whole
// cluster deterministic under one seed.
func seededFor(b transport.BackoffConfig, v topology.Node) transport.BackoffConfig {
	if b.Seed != 0 {
		b.Seed = b.Seed*6364136223846793005 + int64(v) + 1
	}
	return b
}

// CompareWithSimnet checks the wall-clock run's delivery multiset
// against the discrete-event engine's on the same schedule: for every
// surviving receiver r and source s, the set of channels r's copies of
// s arrived on must equal {0..γ-1} with the per-(r,s) count the
// engine's CopyMatrix records. This is the acceptance bridge between
// the two transports — same topology, same schedule, same multiset.
func CompareWithSimnet(cfg Config, res *Result) error {
	sim, err := cfg.IHC.Run(core.Config{Eta: cfg.Eta, Params: simnet.Params{}.Defaulted()})
	if err != nil {
		return fmt.Errorf("cluster: simnet reference run: %w", err)
	}
	if sim.Copies == nil {
		return fmt.Errorf("cluster: simnet reference run recorded no copy matrix")
	}
	n := cfg.IHC.N()
	gamma := cfg.IHC.Gamma()
	for r, nr := range res.Nodes {
		for s := 0; s < n; s++ {
			src := topology.Node(s)
			if src == r {
				continue
			}
			chans := append([]uint8(nil), nr.Copies[src]...)
			want := sim.Copies.Get(r, src)
			if len(chans) != want {
				return fmt.Errorf("cluster: node %d holds %d copies from source %d, simnet delivered %d", r, len(chans), s, want)
			}
			sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })
			if len(chans) != gamma {
				return fmt.Errorf("cluster: node %d holds %d copies from source %d, want γ=%d", r, len(chans), s, gamma)
			}
			for j := 0; j < gamma; j++ {
				if int(chans[j]) != j {
					return fmt.Errorf("cluster: node %d's copies from source %d arrived on channels %v, want one per channel 0..%d", r, s, chans, gamma-1)
				}
			}
		}
	}
	return nil
}
