package cluster

import (
	"bytes"
	"context"
	"runtime"
	"sort"
	"testing"
	"time"

	"ihc/internal/chaos"
	"ihc/internal/fault"
	"ihc/internal/observe"
	"ihc/internal/reliable"
	"ihc/internal/repair"
	"ihc/internal/topology"
)

func wantKey(s topology.Node, ch uint8) repair.Want {
	return repair.Want{Source: s, Channel: ch}
}

func quickStream(t *testing.T) StreamConfig {
	t.Helper()
	return StreamConfig{
		Config:      quickTiming(Config{IHC: q3(t), Eta: 2, KeySeed: 7}),
		Epochs:      6,
		Period:      120 * time.Millisecond,
		MaxInflight: 2,
		Drain:       4 * time.Second,
		Load:        LoadSpec{Interval: 10 * time.Millisecond, Bytes: 64, HighEvery: 4},
		Gauges:      &observe.StreamGauges{},
	}
}

// TestStreamFaultFree pipelines six epochs over a fault-free Q3
// loopback mesh under synthetic client load and checks every node's
// per-epoch γ-copy verdict.
func TestStreamFaultFree(t *testing.T) {
	cfg := quickStream(t)
	res, err := RunStream(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.EpochsCompleted < int64(cfg.Epochs*8) {
		t.Fatalf("completed %d per-node epochs, want ≥ %d", res.Snapshot.EpochsCompleted, cfg.Epochs*8)
	}
	if res.Snapshot.Payloads == 0 {
		t.Fatal("no client payloads delivered under load")
	}
}

// TestStreamEquivalenceOneShot is the acceptance bridge: at
// MaxInflight=1 with the ingress bypassed, every streamed epoch must
// deliver the same multiset — byte-identical payload per (source,
// channel), one copy per channel per source — that a one-shot
// cluster.Run round delivers on the same schedule.
func TestStreamEquivalenceOneShot(t *testing.T) {
	cfg := quickStream(t)
	cfg.Epochs = 3
	cfg.MaxInflight = 1
	cfg.Load = LoadSpec{}
	cfg.CollectPayloads = true
	cfg.Payload = func(v topology.Node, epoch uint32) []byte {
		return reliable.TruthPayload(v) // the one-shot injection payload
	}
	res, err := RunStream(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}

	ref, err := Run(context.Background(), cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Verify(); err != nil {
		t.Fatal(err)
	}

	gamma := cfg.IHC.Gamma()
	n := cfg.IHC.N()
	for v, results := range res.PerNode {
		refCopies := ref.Nodes[v].Copies
		for _, er := range results {
			for s := 0; s < n; s++ {
				src := topology.Node(s)
				if src == v {
					continue
				}
				chans := append([]uint8(nil), er.Copies[src]...)
				sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })
				refChans := append([]uint8(nil), refCopies[src]...)
				sort.Slice(refChans, func(i, j int) bool { return refChans[i] < refChans[j] })
				if len(chans) != len(refChans) {
					t.Fatalf("node %d epoch %d: %d copies from %d, one-shot delivered %d",
						v, er.Epoch, len(chans), s, len(refChans))
				}
				for j := range chans {
					if chans[j] != refChans[j] {
						t.Fatalf("node %d epoch %d source %d: channels %v, one-shot %v",
							v, er.Epoch, s, chans, refChans)
					}
				}
				want := reliable.TruthPayload(src)
				for j := 0; j < gamma; j++ {
					got := er.Payloads[wantKey(src, uint8(j))]
					if !bytes.Equal(got, want) {
						t.Fatalf("node %d epoch %d source %d channel %d: payload differs from one-shot",
							v, er.Epoch, s, j)
					}
				}
			}
		}
	}
}

// TestStreamSoakKillRestart is the robustness core: twenty pipelined
// epochs with background frame chaos, a mid-stream partition window,
// and one node killed with zero notice and restarted cold. The victim
// must rediscover the epoch via the JOIN handshake and catch up; the
// survivors must complete every epoch — including the rounds that
// stalled waiting for the victim's copies — and no high-priority
// payload may be shed.
func TestStreamSoakKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	before := runtime.NumGoroutine()
	cfg := quickStream(t)
	cfg.Epochs = 20
	cfg.Period = 150 * time.Millisecond
	cfg.Timeout = 45 * time.Second
	cfg.Drain = 10 * time.Second
	cfg.Kill = &KillSpec{Node: 6, At: 600 * time.Millisecond, Downtime: 500 * time.Millisecond}
	cfg.Chaos = &chaos.Config{
		Seed:     99,
		DropRate: 0.02, DupRate: 0.02, CorruptRate: 0.01, DelayRate: 0.05,
		// Partition link {1,3} (not incident to the victim) for ticks
		// [1400,1800) = a 400ms window while the victim is back up.
		Plan: &fault.TemporalPlan{Links: []fault.LinkFault{{U: 1, V: 3, From: 1400, Until: 1800}}},
	}
	res, err := RunStream(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.EpochsCaughtUp == 0 {
		t.Fatal("kill/restart produced no catch-up epochs")
	}
	if res.Snapshot.Joins == 0 {
		t.Fatal("restarted node never sent a JOIN")
	}
	// Goroutine hygiene: everything RunStream started must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after", before, g)
	}
}
