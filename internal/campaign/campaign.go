// Package campaign searches for worst-case fault placements against the
// IHC broadcast and verifies the paper's fault-tolerance bounds under an
// adversary, instead of merely sampling random plans.
//
// The searchable fault domains are single-kind placements of t elements:
// broken or noisy (payload-corrupting) links, and crash, corrupt, or
// Byzantine nodes. For each (topology, signedness, domain, kind, t)
// point the driver enumerates every placement when the space is small
// enough, falls back to seeded random sampling otherwise, grades each
// placement, and greedily shrinks any bound-violating placement to a
// 1-minimal counterexample confirmed by both the combinatorial evaluator
// (reliable.EvaluateIHC) and the timed engine grader
// (reliable.EvaluateTimed).
//
// Which bounds hold adversarially is itself the experiment's finding.
// The γ routes carrying a (source, receiver) pair's copies are
// arc-disjoint but NOT node-disjoint: an interior node lies on γ/2 of
// them (one direction of each undirected cycle), so two well-placed
// faulty nodes can cover all γ routes of some pair and the paper's
// node-count bounds do not survive adversarial *placement* — consistent
// with Maurer–Tixeuil's observation that where Byzantine nodes sit
// matters as much as how many there are. Faulty *links* are the domain
// where the bounds are exact: each undirected link carries arcs of only
// one cycle's two orientations, and the two directed routes of a pair on
// that cycle traverse complementary edge sets, so one faulty link
// touches at most one of the pair's γ copies. Hence ⌈γ/2⌉−1 noisy links
// are always survived unsigned (intact copies outnumber corrupted ones),
// γ−1 signed (at least one intact copy survives), and both bounds are
// tight — the campaign finds and shrinks violations at exactly t+1.
package campaign

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/reliable"
	"ihc/internal/topology"
)

// Domain selects what kind of element a placement consists of.
type Domain int

const (
	// DomainLinks places faulty undirected links (indices into
	// Graph.Edges()).
	DomainLinks Domain = iota
	// DomainNodes places faulty nodes (node ids). Faulty nodes are
	// excluded from the graded pairs, as in reliable.EvaluateIHC.
	DomainNodes
)

func (d Domain) String() string {
	switch d {
	case DomainLinks:
		return "links"
	case DomainNodes:
		return "nodes"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Point is one adversary-search problem: find a t-element placement of
// like-kind faults that breaks delivery on this topology.
type Point struct {
	Topo   string // display name (defaults to the graph's name)
	X      *core.IHC
	Signed bool
	Domain Domain
	// Kind interprets the elements. For DomainNodes any of Crash,
	// Corrupt, Byzantine. For DomainLinks: Crash means broken (copies
	// lost), Corrupt means noisy (copies delivered corrupted).
	Kind fault.Kind
	T    int
	Seed int64 // drives Byzantine coins and the sampling fallback
}

func (pt Point) name() string {
	if pt.Topo != "" {
		return pt.Topo
	}
	return pt.X.Graph().Name()
}

// grader grades placements structurally, without materializing routes or
// copies: the fate of the copy a pair exchanges over one directed cycle
// is Lost if any drop-acting fault sits strictly upstream of the
// receiver, else Corrupted if any corrupt-acting fault does, else Intact
// — fates are order-free along a route, so cyclic-position arithmetic
// over the placement's few elements replaces the O(N) route walk, and a
// full grade costs O(N²·γ·t). Agreement with reliable.EvaluateIHC is
// pinned by tests and spot-checked during campaign runs.
type grader struct {
	x       *core.IHC
	n       int
	gamma   int
	seed    int64
	pos     [][]int32 // pos[j][v] = position of v on directed cycle j
	edges   []topology.Edge
	edgeIdx map[topology.Edge]int
	// edgePos[j][e] = p when directed cycle j traverses edge e as the arc
	// cycle[p]→cycle[p+1], else -1. Each undirected edge belongs to one
	// undirected HC, hence to exactly two directed cycles (its two
	// orientations).
	edgePos [][]int32
}

func newGrader(x *core.IHC, seed int64) *grader {
	g := x.Graph()
	gr := &grader{x: x, n: g.N(), gamma: x.Gamma(), seed: seed, edges: g.Edges()}
	gr.edgeIdx = make(map[topology.Edge]int, len(gr.edges))
	edgeIdx := gr.edgeIdx
	for i, e := range gr.edges {
		edgeIdx[e] = i
	}
	for j := 0; j < gr.gamma; j++ {
		c := x.DirectedCycle(j)
		pos := make([]int32, gr.n)
		for p, v := range c {
			pos[v] = int32(p)
		}
		ep := make([]int32, len(gr.edges))
		for i := range ep {
			ep[i] = -1
		}
		for p := 0; p < gr.n; p++ {
			e := topology.NewEdge(c[p], c[(p+1)%gr.n])
			ep[edgeIdx[e]] = int32(p)
		}
		gr.pos = append(gr.pos, pos)
		gr.edgePos = append(gr.edgePos, ep)
	}
	return gr
}

// byzCoin reproduces fault.Plan.TraceRoute's per-copy Byzantine decision
// for node v at route position k of channel j: 0 drop, 1 corrupt, 2 pass.
func (gr *grader) byzCoin(v topology.Node, j, k int) uint64 {
	h := uint64(gr.seed) ^ uint64(v)*2654435761 ^ uint64(j)*40503 ^ uint64(k)*97
	return h % 3
}

// pairCopies returns how many of the pair's γ copies arrive intact and
// how many corrupted under the placement (the rest are lost).
func (gr *grader) pairCopies(elems []int, domain Domain, kind fault.Kind, s, r int) (intact, corrupted int) {
	n := int32(gr.n)
	for j := 0; j < gr.gamma; j++ {
		pos := gr.pos[j]
		ps := pos[s]
		d := pos[r] - ps
		if d < 0 {
			d += n
		}
		lost, tainted := false, false
		switch domain {
		case DomainLinks:
			ep := gr.edgePos[j]
			for _, ei := range elems {
				q := ep[ei]
				if q < 0 {
					continue
				}
				if o := (q - ps + n) % n; o < d {
					if kind == fault.Crash {
						lost = true
					} else {
						tainted = true
					}
				}
			}
		case DomainNodes:
			for _, vi := range elems {
				k := pos[vi] - ps
				if k < 0 {
					k += n
				}
				if k <= 0 || k >= d {
					continue // source and receiver relay nothing here
				}
				switch kind {
				case fault.Crash:
					lost = true
				case fault.Corrupt:
					tainted = true
				case fault.Byzantine:
					switch gr.byzCoin(topology.Node(vi), j, int(k)) {
					case 0:
						lost = true
					case 1:
						tainted = true
					}
				}
			}
		}
		switch {
		case lost:
		case tainted:
			corrupted++
		default:
			intact++
		}
	}
	return intact, corrupted
}

// grade evaluates the placement over every graded ordered pair. All
// corrupted copies of one message carry the same payload
// (reliable.CorruptPayload is deterministic), so the unsigned plurality
// vote reduces to comparing the intact and corrupted counts; the signed
// vote needs one intact copy, since corrupted copies fail MAC
// verification.
func (gr *grader) grade(elems []int, domain Domain, kind fault.Kind, signed bool) reliable.Outcome {
	var faulty []bool
	if domain == DomainNodes {
		faulty = make([]bool, gr.n)
		for _, v := range elems {
			faulty[v] = true
		}
	}
	var out reliable.Outcome
	for r := 0; r < gr.n; r++ {
		if faulty != nil && faulty[r] {
			continue
		}
		for s := 0; s < gr.n; s++ {
			if s == r || (faulty != nil && faulty[s]) {
				continue
			}
			out.Pairs++
			i, c := gr.pairCopies(elems, domain, kind, s, r)
			if signed {
				if i >= 1 {
					out.Correct++
				} else {
					out.Missing++
				}
				continue
			}
			switch {
			case i > c:
				out.Correct++
			case c > i:
				out.Wrong++
			default:
				out.Missing++
			}
		}
	}
	return out
}

// violates is the campaign's failure predicate: any graded pair that did
// not decide on the true payload.
func violates(o reliable.Outcome) bool { return o.Wrong > 0 || o.Missing > 0 }

// buildPlan materializes a placement as a combinatorial fault.Plan, for
// cross-checking against reliable.EvaluateIHC and for reporting.
func (gr *grader) buildPlan(elems []int, domain Domain, kind fault.Kind) *fault.Plan {
	p := fault.NewPlan(gr.seed)
	for _, el := range elems {
		switch domain {
		case DomainLinks:
			e := gr.edges[el]
			if kind == fault.Crash {
				p.Links[e] = true
			} else {
				p.Noisy[e] = true
			}
		case DomainNodes:
			p.Nodes[topology.Node(el)] = kind
		}
	}
	return p
}

// describe renders a placement for reports.
func (gr *grader) describe(elems []int, domain Domain) []string {
	out := make([]string, len(elems))
	for i, el := range elems {
		if domain == DomainLinks {
			e := gr.edges[el]
			out[i] = fmt.Sprintf("{%d,%d}", e.U, e.V)
		} else {
			out[i] = fmt.Sprintf("%d", el)
		}
	}
	return out
}
