package campaign

import (
	"math/rand"
	"testing"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/hamilton"
	"ihc/internal/reliable"
	"ihc/internal/topology"
)

func mustIHC(t *testing.T, g *topology.Graph) *core.IHC {
	t.Helper()
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestGraderMatchesEvaluateIHC pins the structural grader to the
// reference combinatorial evaluator over random placements of every
// domain and kind, signed and unsigned.
func TestGraderMatchesEvaluateIHC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []*topology.Graph{topology.MustSquareTorus(4), topology.MustHexMesh(3)} {
		x := mustIHC(t, g)
		kr := reliable.NewKeyring(g.N(), 3)
		cases := []struct {
			domain Domain
			kind   fault.Kind
		}{
			{DomainLinks, fault.Crash},   // broken links
			{DomainLinks, fault.Corrupt}, // noisy links
			{DomainNodes, fault.Crash},
			{DomainNodes, fault.Corrupt},
			{DomainNodes, fault.Byzantine},
		}
		for _, c := range cases {
			gr := newGrader(x, rng.Int63())
			size := len(gr.edges)
			if c.domain == DomainNodes {
				size = g.N()
			}
			for trial := 0; trial < 20; trial++ {
				tSize := rng.Intn(5)
				elems := make([]int, tSize)
				sampleSubset(rng, size, elems)
				for _, signed := range []bool{false, true} {
					got := gr.grade(elems, c.domain, c.kind, signed)
					want, err := reliable.EvaluateIHC(x, gr.buildPlan(elems, c.domain, c.kind), signed, kr)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("%s %v/%v signed=%v elems=%v: grader %+v != EvaluateIHC %+v",
							g.Name(), c.domain, c.kind, signed, elems, got, want)
					}
				}
			}
		}
	}
}

func quickSearch() Search { return Search{Budget: 50000, Samples: 4000, CrossCheck: 997} }

// TestUnsignedNoisyLinkFrontier is the satellite property test for the
// unsigned bound t = ⌈γ/2⌉−1 under the adversary model where it is
// exact (payload-corrupting links): every enumerated placement at the
// bound delivers everywhere, and at t+1 the campaign finds — and shrinks
// to minimal size — a violating placement on every topology.
func TestUnsignedNoisyLinkFrontier(t *testing.T) {
	for _, tc := range []struct {
		g     *topology.Graph
		bound int // ⌈γ/2⌉−1
	}{
		{topology.MustSquareTorus(4), 1}, // SQ4, γ=4
		{topology.MustHypercube(4), 1},   // Q4, γ=4
		{topology.MustHexMesh(3), 2},     // H3, γ=6
	} {
		x := mustIHC(t, tc.g)
		base := Point{X: x, Domain: DomainLinks, Kind: fault.Corrupt, Seed: 1}
		f, err := RunFrontier(base, quickSearch(), tc.bound+1)
		if err != nil {
			t.Fatal(err)
		}
		if f.MaxSafe != tc.bound {
			t.Errorf("%s unsigned noisy links: MaxSafe = %d, want %d (reports %+v)",
				tc.g.Name(), f.MaxSafe, tc.bound, f.Reports)
			continue
		}
		if f.MinBroken != tc.bound+1 {
			t.Errorf("%s unsigned noisy links: MinBroken = %d, want %d", tc.g.Name(), f.MinBroken, tc.bound+1)
			continue
		}
		for _, rep := range f.Reports[:tc.bound] {
			if !rep.Exhaustive {
				t.Errorf("%s t=%d: expected exhaustive enumeration, got sampling", tc.g.Name(), rep.T)
			}
			if rep.Violations != 0 {
				t.Errorf("%s t=%d: %d violations at or below the bound", tc.g.Name(), rep.T, rep.Violations)
			}
		}
		broken := f.Reports[tc.bound]
		if !broken.Confirmed || len(broken.Counterexample) == 0 {
			t.Errorf("%s t=%d: violation not confirmed/shrunk: %+v", tc.g.Name(), broken.T, broken)
		}
		// At t = γ/2 a tie is the failure mode: the vote goes missing, it
		// cannot go wrong (corrupted can tie but never outnumber intact).
		if o := broken.CounterexampleOutcome; o.Wrong != 0 || o.Missing == 0 {
			t.Errorf("%s t=%d counterexample outcome %+v: want missing>0, wrong=0", tc.g.Name(), broken.T, o)
		}
	}
}

// TestSignedNoisyLinkFrontier: with MACs, corrupted copies are discarded
// on receipt, so delivery survives any t ≤ γ−1 noisy links (at least one
// copy arrives intact) and fails at t = γ. SQ4 and Q4 are enumerated
// exhaustively through the whole frontier; H3's C(57,5) ≈ 4.2M placements
// exceed the budget, so the bound there is checked by seeded uniform +
// targeted sampling.
func TestSignedNoisyLinkFrontier(t *testing.T) {
	for _, tc := range []struct {
		g     *topology.Graph
		gamma int
	}{
		{topology.MustSquareTorus(4), 4},
		{topology.MustHexMesh(3), 6},
	} {
		x := mustIHC(t, tc.g)
		base := Point{X: x, Signed: true, Domain: DomainLinks, Kind: fault.Corrupt, Seed: 1}
		f, err := RunFrontier(base, quickSearch(), tc.gamma)
		if err != nil {
			t.Fatal(err)
		}
		if f.MaxSafe != tc.gamma-1 || f.MinBroken != tc.gamma {
			t.Errorf("%s signed noisy links: MaxSafe=%d MinBroken=%d, want %d/%d",
				tc.g.Name(), f.MaxSafe, f.MinBroken, tc.gamma-1, tc.gamma)
			continue
		}
		broken := f.Reports[len(f.Reports)-1]
		if !broken.Confirmed {
			t.Errorf("%s signed t=%d: counterexample not confirmed", tc.g.Name(), broken.T)
		}
		// Signed failure is always detected, never silent.
		if o := broken.CounterexampleOutcome; o.Wrong != 0 {
			t.Errorf("%s signed counterexample has wrong deliveries: %+v", tc.g.Name(), o)
		}
	}
}

// TestQ6UnsignedFrontier is the large-topology acceptance point: on Q6
// (γ=6, 192 links) t=1 and t=2 are enumerated exhaustively (192 and
// C(192,2)=18336 placements) with zero violations, and t=3 — where
// C(192,3) ≈ 1.16M exceeds the budget — is searched with 10⁴ seeded
// samples. Uniform samples almost never land 3 noisy links on one
// pair's routes in a domain this large; the alternating targeted
// strategy is what finds the t=3 tie violation.
func TestQ6UnsignedFrontier(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(6))
	base := Point{X: x, Domain: DomainLinks, Kind: fault.Corrupt, Seed: 1}
	f, err := RunFrontier(base, DefaultSearch(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxSafe != 2 || f.MinBroken != 3 {
		t.Fatalf("Q6 unsigned noisy links: MaxSafe=%d MinBroken=%d, want 2/3 (%+v)", f.MaxSafe, f.MinBroken, f.Reports)
	}
	for _, rep := range f.Reports[:2] {
		if !rep.Exhaustive || rep.Violations != 0 {
			t.Errorf("Q6 t=%d: exhaustive=%v violations=%d, want exhaustive and none", rep.T, rep.Exhaustive, rep.Violations)
		}
	}
	broken := f.Reports[2]
	if broken.Exhaustive || broken.Placements < 10000 {
		t.Errorf("Q6 t=3 should sample >= 10^4 placements, got %d (exhaustive=%v)", broken.Placements, broken.Exhaustive)
	}
	if !broken.Confirmed || broken.CounterexampleT != 3 {
		t.Errorf("Q6 t=3 counterexample not confirmed/minimal: %+v", broken)
	}
}

// TestNodeFrontierPlacementMatters records the experiment's headline
// negative finding: the node-count bound does not survive adversarial
// *placement*. A pair's γ routes are arc-disjoint but not node-disjoint
// (an interior node lies on γ/2 of them), so on H3 (γ=6, Dolev bound
// t=2) two well-placed crash nodes already cut all six routes of some
// pair, while on SQ4 (bound t=1) the single-fault bound holds and the
// first violations appear at t=2.
func TestNodeFrontierPlacementMatters(t *testing.T) {
	cfg := quickSearch()

	sq4 := Point{X: mustIHC(t, topology.MustSquareTorus(4)), Domain: DomainNodes, Kind: fault.Crash, Seed: 1}
	f, err := RunFrontier(sq4, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxSafe != 1 || f.MinBroken != 2 {
		t.Errorf("SQ4 crash nodes: MaxSafe=%d MinBroken=%d, want 1/2", f.MaxSafe, f.MinBroken)
	}

	h3 := Point{X: mustIHC(t, topology.MustHexMesh(3)), Domain: DomainNodes, Kind: fault.Crash, Seed: 1}
	rep, err := RunPoint(Point{X: h3.X, Domain: DomainNodes, Kind: fault.Crash, Seed: 1, T: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exhaustive {
		t.Fatalf("H3 t=2 crash should enumerate C(19,2)=171 placements, got sampling")
	}
	if rep.Violations == 0 {
		t.Fatalf("H3 t=2 crash nodes: adversarial placement found no violation — "+
			"the Dolev bound would hold adversarially, contradicting the route-coverage analysis: %+v", rep)
	}
	if !rep.Confirmed {
		t.Fatalf("H3 t=2 crash counterexample not confirmed: %+v", rep)
	}
}

// TestShrinkIsOneMinimal removes each element of a shrunk counterexample
// in turn and checks the violation disappears — the 1-minimality
// contract — using the reference evaluator, not the structural grader.
func TestShrinkIsOneMinimal(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	gr := newGrader(x, 7)
	// Start from a deliberately fat violating placement: 6 noisy links
	// found by scanning (unsigned).
	rng := rand.New(rand.NewSource(3))
	var fat []int
	for {
		elems := make([]int, 6)
		sampleSubset(rng, len(gr.edges), elems)
		if violates(gr.grade(elems, DomainLinks, fault.Corrupt, false)) {
			fat = elems
			break
		}
	}
	shrunk := gr.shrink(fat, DomainLinks, fault.Corrupt, false)
	if len(shrunk) >= len(fat) {
		t.Fatalf("shrink did not shrink: %d -> %d", len(fat), len(shrunk))
	}
	out, err := reliable.EvaluateIHC(x, gr.buildPlan(shrunk, DomainLinks, fault.Corrupt), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !violates(out) {
		t.Fatalf("shrunk placement no longer violates: %+v", out)
	}
	for i := range shrunk {
		sub := append(append([]int(nil), shrunk[:i]...), shrunk[i+1:]...)
		out, err := reliable.EvaluateIHC(x, gr.buildPlan(sub, DomainLinks, fault.Corrupt), false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if violates(out) {
			t.Fatalf("dropping element %d still violates — counterexample not 1-minimal", shrunk[i])
		}
	}
}

// TestRunAllOrderAndDeterminism: reports come back in input order and a
// re-run with the same seeds is bitwise-identical in the deterministic
// fields.
func TestRunAllOrderAndDeterminism(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	points := []Point{
		{X: x, Domain: DomainLinks, Kind: fault.Corrupt, T: 1, Seed: 9},
		{X: x, Domain: DomainLinks, Kind: fault.Corrupt, T: 2, Seed: 9},
		{X: x, Domain: DomainNodes, Kind: fault.Crash, T: 2, Seed: 9},
		{X: x, Signed: true, Domain: DomainLinks, Kind: fault.Corrupt, T: 2, Seed: 9},
	}
	cfg := quickSearch()
	a, err := RunAll(points, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAll(points, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if a[i].T != points[i].T || a[i].Domain != points[i].Domain.String() {
			t.Fatalf("report %d out of order: %+v", i, a[i])
		}
		if a[i].Placements != b[i].Placements || a[i].Violations != b[i].Violations ||
			a[i].MinCorrectFraction != b[i].MinCorrectFraction ||
			len(a[i].Counterexample) != len(b[i].Counterexample) {
			t.Fatalf("report %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
		for j := range a[i].Counterexample {
			if a[i].Counterexample[j] != b[i].Counterexample[j] {
				t.Fatalf("report %d counterexample differs: %v vs %v", i, a[i].Counterexample, b[i].Counterexample)
			}
		}
	}
}
