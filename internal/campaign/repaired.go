package campaign

import (
	"fmt"
	"math/rand"
	"time"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/reliable"
	"ihc/internal/repair"
	"ihc/internal/topology"
)

// The repaired frontier asks the adversary question with the recovery
// layer switched on: how many permanently dead links can the adversary
// place before some fault-free pair fails to receive a message? The
// static bound is exactly γ (PR 3's campaign finds violating placements
// at γ broken links); the self-healing layer must move the frontier
// strictly past it, because detection + NAK + retransmission over
// patched routes only needs the residual graph to be connected, not γ
// surviving arc-disjoint cycle paths.
//
// Placements that disconnect the residual graph are screened out and
// counted, not graded: no routing discipline can deliver across a cut
// with every crossing link dead, so they say nothing about the repair
// layer. The smallest such placement is the edge connectivity, which on
// these topologies equals γ — hence the frontier's ceiling is the
// largest t where every connected placement still delivers, and the
// claim "MaxSafe > γ" is a meaningful strengthening.

// RepairedReport is the outcome of searching one broken-link count t
// with repair enabled.
type RepairedReport struct {
	Topo  string `json:"topo"`
	N     int    `json:"n"`
	Gamma int    `json:"gamma"`
	T     int    `json:"t"`
	// Placements graded (connected residual graphs only).
	Placements int  `json:"placements"`
	Exhaustive bool `json:"exhaustive"`
	// PartitionedSkipped counts placements screened out because the dead
	// links disconnected the graph (delivery is impossible, not a repair
	// failure).
	PartitionedSkipped int `json:"partitioned_skipped"`
	// Violations counts connected placements where some fault-free pair
	// still graded Wrong or Missing after repair.
	Violations int `json:"violations"`
	// Counterexample is the first violating placement, if any.
	Counterexample []string `json:"counterexample,omitempty"`
	// Aggregate repair activity over graded placements.
	Timeouts        int64 `json:"timeouts"`
	Naks            int64 `json:"naks"`
	Retransmissions int64 `json:"retransmissions"`
	DeadLinks       int64 `json:"dead_links"`
	Detours         int64 `json:"detours"`
	// MeanOverheadPct is the average latency overhead of the repaired
	// runs against the fault-free baseline.
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
	ElapsedSec      float64 `json:"elapsed_sec"`
}

// RunRepairedPoint searches one (topology, t) point with repair
// enabled: it visits broken-link placements of size t (exhaustively
// when C(M,t) fits cfg.Budget, else cfg.Samples seeded draws), screens
// out those that disconnect the graph, and grades the rest through the
// engine with the recovery layer attached.
func RunRepairedPoint(x *core.IHC, t int, cfg Search, seed int64) (*RepairedReport, error) {
	g := x.Graph()
	edges := g.Edges()
	if t < 0 || t > len(edges) {
		return nil, fmt.Errorf("campaign: repaired point t = %d out of range [0,%d] on %s", t, len(edges), g.Name())
	}
	rep := &RepairedReport{Topo: g.Name(), N: g.N(), Gamma: x.Gamma(), T: t}
	start := time.Now()
	var overheadSum float64

	visit := func(elems []int) error {
		select {
		case <-cfg.Cancel:
			return ErrCanceled
		default:
		}
		res := topology.New("residual", g.N())
		dead := make(map[int]bool, len(elems))
		for _, ei := range elems {
			dead[ei] = true
		}
		for i, e := range edges {
			if !dead[i] {
				res.AddEdge(e.U, e.V)
			}
		}
		if !res.Connected() {
			rep.PartitionedSkipped++
			return nil
		}
		tp := &fault.TemporalPlan{Seed: seed}
		for _, ei := range elems {
			e := edges[ei]
			tp.Links = append(tp.Links, fault.LinkFault{U: e.U, V: e.V, Until: fault.Forever})
		}
		out, err := reliable.EvaluateRepaired(x, tp, false, nil, core.Config{}, repair.Config{})
		if err != nil {
			return fmt.Errorf("campaign: repaired grading on %s t=%d: %w", g.Name(), t, err)
		}
		rep.Placements++
		rep.Timeouts += int64(out.Stats.Timeouts)
		rep.Naks += int64(out.Stats.Naks)
		rep.Retransmissions += int64(out.Stats.Retransmissions)
		rep.DeadLinks += int64(out.Stats.DeadLinks)
		rep.Detours += int64(out.Stats.Detours)
		overheadSum += out.OverheadPct
		if violates(out.Outcome) {
			rep.Violations++
			if rep.Counterexample == nil {
				for _, ei := range elems {
					e := edges[ei]
					rep.Counterexample = append(rep.Counterexample, fmt.Sprintf("{%d,%d}", e.U, e.V))
				}
			}
		}
		return nil
	}

	if binomial(len(edges), t) <= cfg.Budget {
		rep.Exhaustive = true
		if err := forEachCombination(len(edges), t, visit); err != nil {
			return nil, err
		}
	} else {
		rng := rand.New(rand.NewSource(seed ^ int64(t)*0x9e3779b9))
		elems := make([]int, t)
		for i := 0; i < cfg.Samples; i++ {
			sampleSubset(rng, len(edges), elems)
			if err := visit(elems); err != nil {
				return nil, err
			}
		}
	}
	if rep.Placements > 0 {
		rep.MeanOverheadPct = overheadSum / float64(rep.Placements)
	}
	rep.ElapsedSec = time.Since(start).Seconds()
	return rep, nil
}

// RepairedFrontier walks t = 1, 2, ... up to maxT and returns the per-t
// reports plus MaxSafe: the largest t whose connected placements all
// delivered everywhere after repair. The walk stops early at the first
// t with a violation (the frontier) or when every graded placement at
// some t was partitioned (nothing left to defend).
func RepairedFrontier(x *core.IHC, maxT int, cfg Search, seed int64) ([]*RepairedReport, int, error) {
	var reports []*RepairedReport
	maxSafe := 0
	for t := 1; t <= maxT; t++ {
		rep, err := RunRepairedPoint(x, t, cfg, seed)
		if err != nil {
			return nil, 0, err
		}
		reports = append(reports, rep)
		if rep.Violations > 0 {
			break
		}
		if rep.Placements == 0 {
			break
		}
		maxSafe = t
	}
	return reports, maxSafe, nil
}
