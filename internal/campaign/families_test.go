package campaign

import (
	"testing"

	"ihc/internal/fault"
	"ihc/internal/topology"
)

// TestFamiliesUnsignedNoisyLinkFrontier extends the bound/bound+1
// property suite to the registry's new families. TQ_4 and the 4-ary
// 2-torus both have γ=4, so the exact unsigned frontier is the same as
// SQ4/Q4: every placement of ⌈γ/2⌉−1 = 1 noisy link delivers, and at
// t=2 the campaign finds and shrinks a tie. TQ_5 runs the decomposition
// in reduced-reliability mode (two HCs on a 5-regular graph, 16 of 80
// links on no cycle), which exercises the grader's off-cycle handling —
// the frontier must still land exactly on the γ=4 bound.
func TestFamiliesUnsignedNoisyLinkFrontier(t *testing.T) {
	for _, tc := range []struct {
		g     *topology.Graph
		bound int // ⌈γ/2⌉−1
	}{
		{topology.MustTwistedCube(4), 1},  // TQ4, γ=4, full cover
		{topology.MustKAryTorus(4, 2), 1}, // KT4x2, γ=4
		{topology.MustTwistedCube(5), 1},  // TQ5, γ=4, reduced mode
	} {
		x := mustIHC(t, tc.g)
		if got := x.Gamma(); got != 2*(tc.bound+1) {
			t.Fatalf("%s: γ = %d, want %d", tc.g.Name(), got, 2*(tc.bound+1))
		}
		base := Point{X: x, Domain: DomainLinks, Kind: fault.Corrupt, Seed: 1}
		f, err := RunFrontier(base, quickSearch(), tc.bound+1)
		if err != nil {
			t.Fatal(err)
		}
		if f.MaxSafe != tc.bound || f.MinBroken != tc.bound+1 {
			t.Errorf("%s unsigned noisy links: MaxSafe=%d MinBroken=%d, want %d/%d (reports %+v)",
				tc.g.Name(), f.MaxSafe, f.MinBroken, tc.bound, tc.bound+1, f.Reports)
			continue
		}
		for _, rep := range f.Reports[:tc.bound] {
			if !rep.Exhaustive {
				t.Errorf("%s t=%d: expected exhaustive enumeration, got sampling", tc.g.Name(), rep.T)
			}
			if rep.Violations != 0 {
				t.Errorf("%s t=%d: %d violations at or below the bound", tc.g.Name(), rep.T, rep.Violations)
			}
		}
		broken := f.Reports[tc.bound]
		if !broken.Confirmed || len(broken.Counterexample) == 0 {
			t.Errorf("%s t=%d: violation not confirmed/shrunk: %+v", tc.g.Name(), broken.T, broken)
		}
		// At t = γ/2 the failure mode is a tie: votes go missing,
		// never wrong (corrupted copies can tie but not outnumber).
		if o := broken.CounterexampleOutcome; o.Wrong != 0 || o.Missing == 0 {
			t.Errorf("%s t=%d counterexample outcome %+v: want missing>0, wrong=0", tc.g.Name(), broken.T, o)
		}
	}
}

// TestFamiliesSignedNoisyLinkFrontier: with MACs the new families obey
// the same γ−1 bound as class Λ — both TQ_4 and KT4x2 have 32 links, so
// the whole frontier through t=γ=4 (C(32,4) = 35960 placements) is
// enumerated exhaustively within the quick budget.
func TestFamiliesSignedNoisyLinkFrontier(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.MustTwistedCube(4),
		topology.MustKAryTorus(4, 2),
	} {
		x := mustIHC(t, g)
		gamma := x.Gamma()
		base := Point{X: x, Signed: true, Domain: DomainLinks, Kind: fault.Corrupt, Seed: 1}
		f, err := RunFrontier(base, quickSearch(), gamma)
		if err != nil {
			t.Fatal(err)
		}
		if f.MaxSafe != gamma-1 || f.MinBroken != gamma {
			t.Errorf("%s signed noisy links: MaxSafe=%d MinBroken=%d, want %d/%d",
				g.Name(), f.MaxSafe, f.MinBroken, gamma-1, gamma)
			continue
		}
		broken := f.Reports[len(f.Reports)-1]
		if !broken.Confirmed {
			t.Errorf("%s signed t=%d: counterexample not confirmed", g.Name(), broken.T)
		}
		if o := broken.CounterexampleOutcome; o.Wrong != 0 {
			t.Errorf("%s signed counterexample has wrong deliveries: %+v", g.Name(), o)
		}
	}
}
