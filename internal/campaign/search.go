package campaign

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/reliable"
	"ihc/internal/topology"
)

// Search configures the adversary-search driver.
type Search struct {
	// Budget is the largest placement count still enumerated
	// exhaustively; C(domain, t) above it switches to random sampling.
	Budget int
	// Samples is the number of seeded random placements graded in
	// sampling mode.
	Samples int
	// CrossCheck, when > 0, re-grades every CrossCheck-th placement with
	// reliable.EvaluateIHC and errors out on disagreement — a live
	// defense against structural-grader bugs, at ~100x the cost per
	// checked placement.
	CrossCheck int
	// Keyring signs messages for signed points; nil derives one per
	// point.
	Keyring *reliable.Keyring
	// Cancel, when non-nil, aborts the search between placements once
	// it is closed; the aborted call returns ErrCanceled. Wire a
	// signal-bound context's Done() channel here for interruptible
	// command-line runs.
	Cancel <-chan struct{}
}

// ErrCanceled is returned when a search stops because its Cancel
// channel closed before the sweep finished.
var ErrCanceled = errors.New("campaign: search canceled")

// DefaultSearch is the standard configuration: exhaustive through a few
// tens of thousands of placements, 10⁴ samples beyond, sparse live
// cross-checking.
func DefaultSearch() Search {
	return Search{Budget: 50000, Samples: 10000, CrossCheck: 1000}
}

// Report is the outcome of searching one Point.
type Report struct {
	Topo       string `json:"topo"`
	N          int    `json:"n"`
	Gamma      int    `json:"gamma"`
	Signed     bool   `json:"signed"`
	Domain     string `json:"domain"`
	Kind       string `json:"kind"`
	T          int    `json:"t"`
	Exhaustive bool   `json:"exhaustive"`
	Placements int    `json:"placements"`
	Violations int    `json:"violations"`
	// Counterexample is the first bound-violating placement found,
	// greedily shrunk to a 1-minimal set (dropping any single element
	// restores delivery). Empty when no violation was found.
	Counterexample []string `json:"counterexample,omitempty"`
	// CounterexampleT is the size of the shrunk counterexample; a value
	// below T means T was not minimal for this violation.
	CounterexampleT int `json:"counterexample_t,omitempty"`
	// Outcome of the shrunk counterexample, as graded by EvaluateIHC.
	CounterexampleOutcome *reliable.Outcome `json:"counterexample_outcome,omitempty"`
	// Confirmed records that the shrunk counterexample was re-graded by
	// both reliable.EvaluateIHC and the timed engine grader
	// (reliable.EvaluateTimed on the statically-lifted plan) with the
	// same violation verdict.
	Confirmed bool `json:"confirmed,omitempty"`
	// MinCorrectFraction is the worst correct fraction over all graded
	// placements.
	MinCorrectFraction float64 `json:"min_correct_fraction"`
	ElapsedSec         float64 `json:"elapsed_sec"`
	PlacementsPerSec   float64 `json:"placements_per_sec"`
}

// pointSeed mixes a Point's identity into its seed so sampling, Byzantine
// coins, and hence whole campaigns are reproducible per point.
func pointSeed(pt Point) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%v|%v|%v|%d", pt.name(), pt.Signed, pt.Domain, pt.Kind, pt.T)
	return pt.Seed ^ int64(h.Sum64()&0x7fffffffffffffff)
}

// domainSize returns how many elements the point's domain has.
func domainSize(pt Point) int {
	if pt.Domain == DomainLinks {
		return pt.X.Graph().M()
	}
	return pt.X.N()
}

// binomial returns C(n, k), saturating at a large sentinel to avoid
// overflow on big domains.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const sat = 1 << 50
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (n - k + i) / i
		if c > sat {
			return sat
		}
	}
	return c
}

// RunPoint searches one point and reports what it found. Exhaustive mode
// enumerates t-subsets in lexicographic order (so "first violation" is
// deterministic); sampling mode draws distinct seeded random subsets.
func RunPoint(pt Point, cfg Search) (*Report, error) {
	if pt.T < 0 || pt.T > domainSize(pt) {
		return nil, fmt.Errorf("campaign: t = %d out of range [0,%d] on %s", pt.T, domainSize(pt), pt.name())
	}
	gr := newGrader(pt.X, pointSeed(pt))
	kr := cfg.Keyring
	if kr == nil && pt.Signed {
		kr = reliable.NewKeyring(pt.X.N(), pointSeed(pt))
	}
	rep := &Report{
		Topo: pt.name(), N: pt.X.N(), Gamma: pt.X.Gamma(),
		Signed: pt.Signed, Domain: pt.Domain.String(), Kind: pt.Kind.String(), T: pt.T,
		MinCorrectFraction: 1,
	}
	start := time.Now()

	var firstViolation []int
	graded := 0
	visit := func(elems []int) error {
		select {
		case <-cfg.Cancel:
			return ErrCanceled
		default:
		}
		graded++
		out := gr.grade(elems, pt.Domain, pt.Kind, pt.Signed)
		if cfg.CrossCheck > 0 && graded%cfg.CrossCheck == 1 {
			ref, err := reliable.EvaluateIHC(pt.X, gr.buildPlan(elems, pt.Domain, pt.Kind), pt.Signed, kr)
			if err != nil {
				return fmt.Errorf("campaign: cross-check: %w", err)
			}
			if ref != out {
				return fmt.Errorf("campaign: grader disagrees with EvaluateIHC on %s %v: %+v vs %+v",
					pt.name(), gr.describe(elems, pt.Domain), out, ref)
			}
		}
		if f := out.CorrectFraction(); f < rep.MinCorrectFraction {
			rep.MinCorrectFraction = f
		}
		if violates(out) {
			rep.Violations++
			if firstViolation == nil {
				firstViolation = append([]int(nil), elems...)
			}
		}
		return nil
	}

	size := domainSize(pt)
	total := binomial(size, pt.T)
	if total <= cfg.Budget {
		rep.Exhaustive = true
		if err := forEachCombination(size, pt.T, visit); err != nil {
			return nil, err
		}
	} else {
		// Random search alternates two adversary strategies: uniform
		// placements over the whole domain, and *targeted* placements
		// drawn from the routes of one random (source, receiver) pair.
		// Uniform samples almost never concentrate t faults on a single
		// pair in a large domain, so on their own they understate the
		// adversary; targeted samples are the placements that would break
		// the bound if it were breakable, which makes a zero-violation
		// result meaningful evidence rather than an artifact of sparse
		// sampling.
		rng := rand.New(rand.NewSource(pointSeed(pt)))
		elems := make([]int, pt.T)
		for i := 0; i < cfg.Samples; i++ {
			if i%2 == 0 {
				sampleSubset(rng, size, elems)
			} else {
				gr.sampleTargeted(rng, pt.Domain, elems)
			}
			if err := visit(elems); err != nil {
				return nil, err
			}
		}
	}
	rep.Placements = graded
	rep.ElapsedSec = time.Since(start).Seconds()
	if rep.ElapsedSec > 0 {
		rep.PlacementsPerSec = float64(graded) / rep.ElapsedSec
	}

	if firstViolation != nil {
		shrunk := gr.shrink(firstViolation, pt.Domain, pt.Kind, pt.Signed)
		rep.Counterexample = gr.describe(shrunk, pt.Domain)
		rep.CounterexampleT = len(shrunk)
		plan := gr.buildPlan(shrunk, pt.Domain, pt.Kind)
		out, err := reliable.EvaluateIHC(pt.X, plan, pt.Signed, kr)
		if err != nil {
			return nil, fmt.Errorf("campaign: counterexample grading: %w", err)
		}
		rep.CounterexampleOutcome = &out
		timed, err := reliable.EvaluateTimed(pt.X, fault.FromStatic(plan), pt.Signed, kr, core.Config{})
		if err != nil {
			return nil, fmt.Errorf("campaign: timed confirmation: %w", err)
		}
		rep.Confirmed = violates(out) && violates(timed)
		if !rep.Confirmed {
			return nil, fmt.Errorf("campaign: shrunk counterexample %v not confirmed (combinatorial %+v, timed %+v)",
				rep.Counterexample, out, timed)
		}
	}
	return rep, nil
}

// shrink greedily removes elements while the placement still violates the
// bound, yielding a 1-minimal counterexample: removing any single
// remaining element restores correct delivery.
func (gr *grader) shrink(elems []int, domain Domain, kind fault.Kind, signed bool) []int {
	cur := append([]int(nil), elems...)
	for {
		removed := false
		for i := range cur {
			cand := make([]int, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if violates(gr.grade(cand, domain, kind, signed)) {
				cur, removed = cand, true
				break
			}
		}
		if !removed {
			sort.Ints(cur)
			return cur
		}
	}
}

// forEachCombination enumerates all k-subsets of {0..n-1} in
// lexicographic order, reusing one backing slice.
func forEachCombination(n, k int, visit func([]int) error) error {
	if k == 0 {
		return visit(nil)
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if err := visit(idx); err != nil {
			return err
		}
		// Advance: find the rightmost index that can move.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// sampleTargeted fills elems with a placement concentrated on one random
// (source, receiver) pair: each element is drawn from the links (or
// interior nodes) of the pair's γ directed-cycle routes, the only
// elements that can affect that pair at all. Shortfall from collisions is
// topped up uniformly.
func (gr *grader) sampleTargeted(rng *rand.Rand, domain Domain, elems []int) {
	t := len(elems)
	s := rng.Intn(gr.n)
	r := rng.Intn(gr.n - 1)
	if r >= s {
		r++
	}
	n32 := int32(gr.n)
	seen := make(map[int]bool, t)
	for tries := 0; len(seen) < t && tries < 8*t; tries++ {
		j := rng.Intn(gr.gamma)
		pos := gr.pos[j]
		ps := pos[s]
		d := pos[r] - ps
		if d < 0 {
			d += n32
		}
		if domain == DomainLinks {
			// A random crossed edge: arc position ps+o for o in [0, d).
			p := int((ps + int32(rng.Intn(int(d)))) % n32)
			c := gr.x.DirectedCycle(j)
			e := topology.NewEdge(c[p], c[(p+1)%gr.n])
			seen[gr.edgeIdx[e]] = true
		} else {
			if d < 2 {
				continue // no interior node on this cycle's route
			}
			k := 1 + int32(rng.Intn(int(d)-1))
			seen[int(gr.x.DirectedCycle(j)[int((ps+k)%n32)])] = true
		}
	}
	for len(seen) < t {
		cand := rng.Intn(domainSizeOf(gr, domain))
		if domain == DomainNodes && (cand == s || cand == r) {
			continue
		}
		seen[cand] = true
	}
	elems = elems[:0]
	for v := range seen {
		elems = append(elems, v)
	}
	sort.Ints(elems)
}

func domainSizeOf(gr *grader, domain Domain) int {
	if domain == DomainLinks {
		return len(gr.edges)
	}
	return gr.n
}

// sampleSubset fills elems with a uniform random t-subset of {0..n-1}
// (Floyd's algorithm), in sorted order.
func sampleSubset(rng *rand.Rand, n int, elems []int) {
	t := len(elems)
	seen := make(map[int]bool, t)
	for i := n - t; i < n; i++ {
		v := rng.Intn(i + 1)
		if seen[v] {
			v = i
		}
		seen[v] = true
	}
	elems = elems[:0]
	for v := range seen {
		elems = append(elems, v)
	}
	sort.Ints(elems)
}

// Frontier is the measured tolerance frontier of one (topology,
// signedness, domain, kind) series: per-t reports plus the two summary
// numbers an operator wants — the largest t with no violation found at
// any t' <= t, and the smallest t where the adversary won.
type Frontier struct {
	Topo      string    `json:"topo"`
	Signed    bool      `json:"signed"`
	Domain    string    `json:"domain"`
	Kind      string    `json:"kind"`
	Bound     int       `json:"bound"` // the paper's bound for this series
	MaxSafe   int       `json:"max_safe"`
	MinBroken int       `json:"min_broken"` // -1: no violation found up to tMax
	Reports   []*Report `json:"reports"`
}

// RunFrontier searches base's series at t = 1..tMax and summarizes the
// measured frontier. base.T is ignored.
func RunFrontier(base Point, cfg Search, tMax int) (*Frontier, error) {
	bound := reliable.DolevBound(base.X.Gamma(), base.X.N())
	if base.Signed {
		bound = reliable.SignedBound(base.X.Gamma())
	}
	f := &Frontier{
		Topo: base.name(), Signed: base.Signed,
		Domain: base.Domain.String(), Kind: base.Kind.String(),
		Bound: bound, MinBroken: -1,
	}
	for t := 1; t <= tMax; t++ {
		pt := base
		pt.T = t
		rep, err := RunPoint(pt, cfg)
		if err != nil {
			return nil, err
		}
		f.Reports = append(f.Reports, rep)
		if rep.Violations > 0 {
			f.MinBroken = t
			break
		}
		f.MaxSafe = t
	}
	return f, nil
}

// RunAll searches every point on a bounded worker pool and returns the
// reports in input order. The first error aborts the batch.
func RunAll(points []Point, cfg Search, workers int) ([]*Report, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(points) {
		workers = len(points)
	}
	reports := make([]*Report, len(points))
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				reports[i], errs[i] = RunPoint(points[i], cfg)
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}
