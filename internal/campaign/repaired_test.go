package campaign

import (
	"testing"

	"ihc/internal/topology"
)

// TestRepairedFrontierBeatsStaticBound is the tentpole acceptance
// criterion: with repair enabled, the broken-link tolerance frontier on
// SQ4 strictly exceeds the static masking bound γ. The static campaign
// (TestBrokenLinkFrontier) finds violating placements at exactly γ; here
// every connected placement at γ — and at γ+1 — must still deliver every
// pair after NAK-driven retransmission over patched routes.
func TestRepairedFrontierBeatsStaticBound(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	gamma := x.Gamma()
	cfg := Search{Budget: 40, Samples: 25}
	reports, maxSafe, err := RepairedFrontier(x, gamma+1, cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if maxSafe <= gamma {
		t.Fatalf("repaired MaxSafe = %d, want > γ = %d (reports: %+v)", maxSafe, gamma, reports)
	}
	for _, rep := range reports {
		if rep.Violations > 0 {
			t.Fatalf("t=%d: %d violations, counterexample %v", rep.T, rep.Violations, rep.Counterexample)
		}
		if rep.Placements == 0 {
			t.Fatalf("t=%d: every placement screened out (%d partitioned)", rep.T, rep.PartitionedSkipped)
		}
	}
	// At t = γ the adversary CAN partition (edge connectivity is γ), so
	// the screen must have something to do by then across the walk.
	last := reports[len(reports)-1]
	if last.T >= gamma && last.PartitionedSkipped == 0 && last.Exhaustive {
		t.Fatalf("t=%d exhaustive with no partitioned placements — screen suspect", last.T)
	}
}

// TestRunRepairedPointRange pins argument validation.
func TestRunRepairedPointRange(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	if _, err := RunRepairedPoint(x, -1, DefaultSearch(), 1); err == nil {
		t.Fatal("negative t accepted")
	}
	if _, err := RunRepairedPoint(x, x.Graph().M()+1, DefaultSearch(), 1); err == nil {
		t.Fatal("t beyond edge count accepted")
	}
}
