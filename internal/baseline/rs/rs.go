// Package rs implements Ramanathan & Shin's reliable broadcast algorithm
// for hypercubes (the paper's RS [20]), its virtual cut-through conversion
// VRS, and the serialized all-to-all variant VRS-ATA.
//
// RS structure: to broadcast from a source s in Q_γ, s first sends a copy
// to each of its γ neighbors (step 1). The neighbor in direction i then
// performs the recursive-doubling broadcast over the rotated direction
// sequence i+1, i+2, ..., i+γ-1, i (steps 2..γ+1): in each step every
// node holding tree i's copy sends it in the step's direction. Each tree
// spans the whole cube, so every node receives γ copies — one per tree,
// over node-disjoint paths — in γ+1 steps. The sends of the final step
// that would return copies to the source are optional and omitted by
// default (Table I's bold entries).
//
// VRS conversion: a node that received a copy in the previous step and
// sends it in the next direction "forwards" the packet — a cut-through.
// A node that sends an additional copy in a later step "redirects" it — a
// store-and-forward. The broadcast therefore decomposes into columns
// (Table I): maximal chains that start with an injection or redirection
// and continue through forwards. Each column is one simulated packet;
// redirection columns causally depend on the column that delivered the
// copy to their head node.
package rs

import (
	"fmt"

	"ihc/internal/baseline/atarun"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Op is a single send-receive operation of the RS algorithm.
type Op struct {
	From, To topology.Node
	Step     int  // 1-based algorithm step
	Tree     int  // direction index of the spanning tree
	Column   int  // index into the broadcast's column list
	Return   bool // final-step send returning a copy to the source
}

// Column is a maximal cut-through chain of the VRS conversion: the head
// hop Route[0]->Route[1] is an injection (Parent < 0) or a redirection
// (Parent is the column that delivered the copy to Route[0]); every later
// hop is a forward, performed as a cut-through.
type Column struct {
	Tree     int
	Route    []topology.Node
	HeadStep int // step of the head hop
	Parent   int // index of parent column, -1 for source-injected columns
}

// Broadcast is the full RS/VRS schedule for one source.
type Broadcast struct {
	M       int // hypercube dimension γ
	Src     topology.Node
	Columns []Column
	Ops     []Op
	// parent[i][v] is the node that delivered tree i's copy to v
	// (v != Src), tracing the γ node-disjoint paths.
	parent [][]topology.Node
	// includeReturns records whether the optional final-step returns to
	// the source were generated.
	includeReturns bool
}

// New computes the RS broadcast schedule from src in Q_m. When
// includeReturns is true, the optional final-step sends that return
// copies to the source are included (as in the unabridged Table I).
// Out-of-range dimensions or sources are errors, not panics — bad input
// must not crash a long-running process.
func New(m int, src topology.Node, includeReturns bool) (*Broadcast, error) {
	if m < 1 || m > 20 {
		return nil, fmt.Errorf("rs: dimension %d out of range [1,20]", m)
	}
	n := 1 << m
	if int(src) < 0 || int(src) >= n {
		return nil, fmt.Errorf("rs: source %d not in Q%d", src, m)
	}
	b := &Broadcast{M: m, Src: src, includeReturns: includeReturns}
	for i := 0; i < m; i++ {
		b.buildTree(i)
	}
	return b, nil
}

// MustNew is New for statically known-good inputs (the
// regexp.MustCompile idiom).
func MustNew(m int, src topology.Node, includeReturns bool) *Broadcast {
	b, err := New(m, src, includeReturns)
	if err != nil {
		panic(err)
	}
	return b
}

// buildTree generates tree i's sends, columns, and parent pointers.
func (b *Broadcast) buildTree(i int) {
	m := 1 << b.M
	parent := make([]topology.Node, m)
	for v := range parent {
		parent[v] = -1
	}
	// coveredStep[v] and coveredCol[v]: when and through which column v
	// obtained tree i's copy. The source holds it from "step 0".
	coveredStep := make([]int, m)
	coveredCol := make([]int, m)
	for v := range coveredStep {
		coveredStep[v] = -1
	}
	coveredStep[b.Src] = 0
	coveredCol[b.Src] = -1

	addOp := func(from, to topology.Node, step, col int, ret bool) {
		b.Ops = append(b.Ops, Op{From: from, To: to, Step: step, Tree: i, Column: col, Return: ret})
	}

	// Step 1: injection. Starts tree i's first column.
	u := b.Src ^ topology.Node(1<<i)
	col0 := len(b.Columns)
	b.Columns = append(b.Columns, Column{Tree: i, Route: []topology.Node{b.Src, u}, HeadStep: 1, Parent: -1})
	addOp(b.Src, u, 1, col0, false)
	parent[u] = b.Src
	coveredStep[u], coveredCol[u] = 1, col0

	// Steps 2..γ+1: recursive doubling over directions i+1, ..., i+γ.
	holders := []topology.Node{u}
	for step := 2; step <= b.M+1; step++ {
		d := topology.Node(1 << uint((i+step-1)%b.M))
		newHolders := make([]topology.Node, 0, len(holders))
		for _, w := range holders {
			y := w ^ d
			if y == b.Src {
				// Optional return of a copy to the originator.
				if b.includeReturns {
					c := len(b.Columns)
					if coveredStep[w] == step-1 {
						c = coveredCol[w]
						b.Columns[c].Route = append(b.Columns[c].Route, y)
					} else {
						b.Columns = append(b.Columns, Column{
							Tree: i, Route: []topology.Node{w, y}, HeadStep: step, Parent: coveredCol[w],
						})
					}
					addOp(w, y, step, c, true)
				}
				continue
			}
			if coveredStep[y] >= 0 {
				panic(fmt.Sprintf("rs: node %d covered twice in tree %d", y, i))
			}
			var c int
			if coveredStep[w] == step-1 {
				// w received last step: this send is a forward — extend
				// w's column (w is necessarily its tail).
				c = coveredCol[w]
				b.Columns[c].Route = append(b.Columns[c].Route, y)
			} else {
				// Redirection: w sends an extra copy; new column.
				c = len(b.Columns)
				b.Columns = append(b.Columns, Column{
					Tree: i, Route: []topology.Node{w, y}, HeadStep: step, Parent: coveredCol[w],
				})
			}
			addOp(w, y, step, c, false)
			parent[y] = w
			coveredStep[y], coveredCol[y] = step, c
			newHolders = append(newHolders, y)
		}
		holders = append(holders, newHolders...)
	}
	b.parent = append(b.parent, parent)
}

// PathTo returns the node path of tree i's copy from the source to v,
// inclusive of both endpoints.
func (b *Broadcast) PathTo(tree int, v topology.Node) []topology.Node {
	if v == b.Src {
		return []topology.Node{b.Src}
	}
	var rev []topology.Node
	for x := v; x != b.Src; x = b.parent[tree][x] {
		if x < 0 {
			panic(fmt.Sprintf("rs: no tree-%d path to %d", tree, v))
		}
		rev = append(rev, x)
	}
	rev = append(rev, b.Src)
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Packets converts the column decomposition into simulator packets for a
// broadcast starting at the given time. Redirection columns carry an
// After dependency on their parent column, so causality holds under any
// network condition. seq tags packet IDs.
func (b *Broadcast) Packets(start simnet.Time, seq int) []simnet.PacketSpec {
	specs := make([]simnet.PacketSpec, len(b.Columns))
	for c, col := range b.Columns {
		specs[c] = simnet.PacketSpec{
			ID:    simnet.PacketID{Source: b.Src, Channel: c, Seq: seq},
			Route: col.Route,
			Tee:   true,
		}
		if col.Parent < 0 {
			specs[c].Inject = start
		} else {
			specs[c].After = []int{col.Parent}
			// Inject is relative to the copy's arrival at the head node.
		}
	}
	return specs
}

// Sends returns the total number of send operations of the broadcast.
func (b *Broadcast) Sends() int { return len(b.Ops) }

// StepOps returns the operations grouped by algorithm step (index 0 =
// step 1), each group ordered by tree then column — the layout of the
// paper's Table I.
func (b *Broadcast) StepOps() [][]Op {
	out := make([][]Op, b.M+1)
	for _, op := range b.Ops {
		out[op.Step-1] = append(out[op.Step-1], op)
	}
	return out
}

// ATA runs VRS-ATA: every node of Q_m executes the VRS broadcast in turn.
func ATA(m int, p simnet.Params, opts atarun.Options) (*atarun.Result, error) {
	g, err := topology.Hypercube(m)
	if err != nil {
		return nil, err
	}
	if _, err := New(m, 0, false); err != nil {
		return nil, err
	}
	gen := func(src topology.Node, start simnet.Time, seq int) []simnet.PacketSpec {
		// m and src are validated above / drawn from g.
		return MustNew(m, src, false).Packets(start, seq)
	}
	return atarun.Sequential(g, p, gen, opts)
}
