package rs

import (
	"testing"
	"testing/quick"

	"ihc/internal/baseline/atarun"
	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

var p = simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

func mp() model.Params {
	return model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
}

func TestBroadcastStructureQ4(t *testing.T) {
	b := MustNew(4, 0, false)
	// γ 2^γ sends minus the γ omitted returns.
	if b.Sends() != 4*16-4 {
		t.Fatalf("sends = %d, want 60", b.Sends())
	}
	steps := b.StepOps()
	if len(steps) != 5 {
		t.Fatalf("steps = %d, want γ+1 = 5", len(steps))
	}
	// Step k has γ·2^{k-2} sends (k >= 2); step 1 has γ; the last step
	// omits the γ returns.
	want := []int{4, 4, 8, 16, 28}
	for i, ops := range steps {
		if len(ops) != want[i] {
			t.Fatalf("step %d: %d ops, want %d", i+1, len(ops), want[i])
		}
	}
	// Spot-check paper Table I entries (source 0, Q4).
	has := func(from, to topology.Node, step int) bool {
		for _, op := range steps[step-1] {
			if op.From == from && op.To == to {
				return true
			}
		}
		return false
	}
	for _, c := range []struct {
		from, to topology.Node
		step     int
	}{
		{0, 1, 1}, {0, 2, 1}, {0, 4, 1}, {0, 8, 1}, // fan-out
		{1, 3, 2}, {2, 6, 2}, {4, 12, 2}, {8, 9, 2}, // first doubling
		{3, 7, 3}, {6, 14, 3}, {12, 13, 3}, {9, 11, 3},
		{7, 15, 4}, {14, 15, 4}, {13, 15, 4}, {11, 15, 4},
		{15, 14, 5}, {13, 5, 5}, {7, 3, 5}, {11, 9, 5},
	} {
		if !has(c.from, c.to, c.step) {
			t.Fatalf("missing Table I op %d->%d at step %d", c.from, c.to, c.step)
		}
	}
}

func TestIncludeReturns(t *testing.T) {
	b := MustNew(4, 0, true)
	if b.Sends() != 4*16 {
		t.Fatalf("sends with returns = %d, want 64", b.Sends())
	}
	returns := 0
	for _, op := range b.Ops {
		if op.Return {
			if op.To != 0 {
				t.Fatalf("return op to %d, not source", op.To)
			}
			returns++
		}
	}
	if returns != 4 {
		t.Fatalf("returns = %d, want γ = 4", returns)
	}
}

// Every node receives exactly γ copies, one per tree, over node-disjoint
// paths (the property RS [20] proves, which the paper relies on).
func TestPathsNodeDisjoint(t *testing.T) {
	for _, m := range []int{3, 4, 5} {
		for _, src := range []topology.Node{0, 5} {
			b := MustNew(m, src, false)
			n := 1 << m
			for v := topology.Node(0); int(v) < n; v++ {
				if v == src {
					continue
				}
				seen := map[topology.Node]int{}
				for i := 0; i < m; i++ {
					path := b.PathTo(i, v)
					if path[0] != src || path[len(path)-1] != v {
						t.Fatalf("Q%d src=%d tree %d: bad endpoints %v", m, src, i, path)
					}
					for _, x := range path[1 : len(path)-1] {
						seen[x]++
						if seen[x] > 1 {
							t.Fatalf("Q%d src=%d: node %d shared by paths to %d", m, src, x, v)
						}
					}
				}
			}
		}
	}
}

func TestColumnsPartitionSends(t *testing.T) {
	b := MustNew(5, 0, false)
	total := 0
	for ci, col := range b.Columns {
		total += len(col.Route) - 1
		if col.Parent >= ci {
			t.Fatalf("column %d has forward parent %d", ci, col.Parent)
		}
		if col.Parent >= 0 {
			// Parent column must pass through this column's head node.
			head := col.Route[0]
			found := false
			for _, x := range b.Columns[col.Parent].Route[1:] {
				if x == head {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("column %d head %d not covered by parent %d", ci, head, col.Parent)
			}
		}
	}
	if total != b.Sends() {
		t.Fatalf("columns carry %d sends, ops say %d", total, b.Sends())
	}
}

// A single VRS broadcast simulated on a dedicated network: contention
// free, every node gets γ copies, and the span equals the causal
// longest path (γ/2+1)(τ_S+μα) for even γ — within (i.e., at most) the
// paper's structural bound (γ-1)(τ_S+μα)+2α.
func TestSingleBroadcastTiming(t *testing.T) {
	for _, m := range []int{4, 6} {
		g := topology.MustHypercube(m)
		net, err := simnet.New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(MustNew(m, 0, false).Packets(0, 0), simnet.Options{Copies: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Contentions != 0 {
			t.Fatalf("Q%d: %d contentions", m, res.Contentions)
		}
		for v := 1; v < g.N(); v++ {
			if got := res.Copies.Get(topology.Node(v), 0); got != m {
				t.Fatalf("Q%d: node %d got %d copies", m, v, got)
			}
		}
		measured := res.Finish
		causal := simnet.Time(m/2+1) * (p.TauS + p.PacketTime())
		if measured != causal {
			t.Fatalf("Q%d: span = %d, want causal %d", m, measured, causal)
		}
		bound := simnet.Time(m-1)*(p.TauS+p.PacketTime()) + 2*p.Alpha
		if measured > bound {
			t.Fatalf("Q%d: span %d exceeds paper bound %d", m, measured, bound)
		}
	}
}

func TestATACompleteAndBounded(t *testing.T) {
	for _, m := range []int{3, 4, 5} {
		res, err := ATA(m, p, atarun.Options{Copies: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Copies.VerifyATA(m); err != nil {
			t.Fatalf("Q%d: %v", m, err)
		}
		if res.Contentions != 0 {
			t.Fatalf("Q%d: %d contentions in serialized ATA", m, res.Contentions)
		}
		n := 1 << m
		bound := model.VRSATABest(mp(), n)
		if res.Finish > bound {
			t.Fatalf("Q%d: ATA %d exceeds Table II bound %d", m, res.Finish, bound)
		}
		// The serialized structure: N equal broadcasts back to back.
		if res.BroadcastFinish[n-1] != res.Finish {
			t.Fatalf("Q%d: last broadcast finish mismatch", m)
		}
		per := res.BroadcastFinish[0]
		if res.Finish != simnet.Time(n)*per {
			t.Fatalf("Q%d: ATA %d != N x per-broadcast %d", m, res.Finish, per)
		}
	}
}

// IHC's headline comparison: VRS-ATA is far slower than IHC best case on
// the same cube (factor ~N/η in broadcasts).
func TestATAMuchSlowerThanIHCModel(t *testing.T) {
	for _, m := range []int{4, 5, 6} {
		n := 1 << m
		res, err := ATA(m, p, atarun.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ihc := model.IHCBest(mp(), n, 2)
		if res.Finish < 4*ihc {
			t.Fatalf("Q%d: VRS-ATA %d not ≫ IHC %d", m, res.Finish, ihc)
		}
	}
}

func TestSaturatedATAWithinTableIV(t *testing.T) {
	res, err := ATA(4, p, atarun.Options{Saturated: true})
	if err != nil {
		t.Fatal(err)
	}
	bound := model.VRSATAWorst(mp(), 16)
	if res.Finish > bound {
		t.Fatalf("saturated ATA %d exceeds Table IV bound %d", res.Finish, bound)
	}
	// And saturation really hurts: at least 2x the dedicated time (VRS is
	// already store-and-forward dominated, so the slowdown is milder than
	// for IHC).
	ded, err := ATA(4, p, atarun.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish < 2*ded.Finish {
		t.Fatalf("saturated %d not ≫ dedicated %d", res.Finish, ded.Finish)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		m   int
		src topology.Node
	}{{0, 0}, {25, 0}, {3, 9}, {3, -1}} {
		if b, err := New(tc.m, tc.src, false); err == nil || b != nil {
			t.Fatalf("New(%d, %d) = %v, %v; want error", tc.m, tc.src, b, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad input")
		}
	}()
	MustNew(0, 0, false)
}

// Property: for random sources in Q5, the broadcast covers every node
// exactly γ times with no contention.
func TestQuickBroadcastFromAnySource(t *testing.T) {
	g := topology.MustHypercube(5)
	f := func(srcRaw uint8) bool {
		src := topology.Node(srcRaw % 32)
		net, err := simnet.New(g, p)
		if err != nil {
			return false
		}
		res, err := net.Run(MustNew(5, src, false).Packets(0, 0), simnet.Options{Copies: true})
		if err != nil || res.Contentions != 0 {
			return false
		}
		for v := 0; v < 32; v++ {
			want := 5
			if topology.Node(v) == src {
				want = 0
			}
			if res.Copies.Get(topology.Node(v), src) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}
