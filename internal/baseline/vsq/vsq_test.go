package vsq

import (
	"testing"
	"testing/quick"

	"ihc/internal/baseline/atarun"
	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

var p = simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

func mp() model.Params {
	return model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
}

// Each direction's pattern is a spanning tree, and the four patterns are
// pairwise arc-disjoint ("do not interfere") with exactly one unused arc
// per direction.
func TestTreesSpanAndDontInterfere(t *testing.T) {
	for _, m := range []int{3, 4, 5, 8} {
		for _, src := range []topology.Node{0, topology.TorusNode(m, 1, 2)} {
			b := MustNew(m, src)
			g := topology.MustSquareTorus(m)
			seen := map[topology.Arc]int{}
			arcs := b.Arcs()
			for dir := 0; dir < 4; dir++ {
				if len(arcs[dir]) != m*m-1 {
					t.Fatalf("SQ%d src=%d dir %d: %d arcs, want N-1=%d", m, src, dir, len(arcs[dir]), m*m-1)
				}
				for _, a := range arcs[dir] {
					if !g.HasEdge(a.From, a.To) {
						t.Fatalf("SQ%d: arc %v not a link", m, a)
					}
					if prev, dup := seen[a]; dup {
						t.Fatalf("SQ%d src=%d: arc %v used by directions %d and %d", m, src, a, prev, dir)
					}
					seen[a] = dir
				}
				// Spanning: every node reachable, path ends at source.
				for v := topology.Node(0); int(v) < m*m; v++ {
					path := b.PathTo(dir, v)
					if path[0] != src || path[len(path)-1] != v {
						t.Fatalf("SQ%d dir %d: bad path to %d: %v", m, dir, v, path)
					}
				}
			}
			if len(seen) != 4*(m*m-1) {
				t.Fatalf("SQ%d: %d arcs used", m, len(seen))
			}
		}
	}
}

// The longest path of the construction: at most 2m-2 hops and at most 3
// chain heads (store-and-forwards) deep.
func TestPathProfile(t *testing.T) {
	for _, m := range []int{3, 5, 8} {
		b := MustNew(m, 0)
		maxHops := 0
		for dir := 0; dir < 4; dir++ {
			for v := topology.Node(1); int(v) < m*m; v++ {
				if h := len(b.PathTo(dir, v)) - 1; h > maxHops {
					maxHops = h
				}
			}
		}
		if maxHops > 2*m-2 {
			t.Fatalf("SQ%d: longest path %d hops > 2m-2", m, maxHops)
		}
		// Chain-depth: ray=1, tooth=2, leg=3.
		maxDepth := 0
		for _, ch := range b.Chains {
			d := 1
			for parent := ch.Parent; parent >= 0; parent = b.Chains[parent].Parent {
				d++
			}
			if d > maxDepth {
				maxDepth = d
			}
		}
		if maxDepth != 3 {
			t.Fatalf("SQ%d: chain depth %d, want 3", m, maxDepth)
		}
	}
}

// Simulated single broadcast: contention-free, 4 copies everywhere,
// within the paper's Table II per-broadcast time.
func TestSingleBroadcast(t *testing.T) {
	for _, m := range []int{4, 6} {
		g := topology.MustSquareTorus(m)
		net, err := simnet.New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(MustNew(m, 0).Packets(0, 0), simnet.Options{Copies: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Contentions != 0 {
			t.Fatalf("SQ%d: %d contentions", m, res.Contentions)
		}
		for v := 1; v < m*m; v++ {
			if got := res.Copies.Get(topology.Node(v), 0); got != 4 {
				t.Fatalf("SQ%d: node %d got %d copies", m, v, got)
			}
		}
		// Paper per-broadcast bound: 3(τ_S+μα) + (2m-6)α, valid when
		// τ_S+μα >= 2α (always here).
		bound := 3*(p.TauS+p.PacketTime()) + simnet.Time(2*m-6)*p.Alpha
		slack := simnet.Time(0)
		if m == 3 {
			slack = p.Alpha
		}
		if res.Finish > bound+slack {
			t.Fatalf("SQ%d: broadcast %d exceeds paper bound %d", m, res.Finish, bound)
		}
	}
}

func TestATA(t *testing.T) {
	for _, m := range []int{3, 4, 5} {
		res, err := ATA(m, p, atarun.Options{Copies: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Copies.VerifyATA(4); err != nil {
			t.Fatalf("SQ%d: %v", m, err)
		}
		if res.Contentions != 0 {
			t.Fatalf("SQ%d: %d contentions", m, res.Contentions)
		}
		n := m * m
		bound := model.VSQATABest(mp(), m)
		// m=3 exceeds the paper form by N·α (see TestSingleBroadcast).
		if res.Finish > bound+simnet.Time(n)*p.Alpha {
			t.Fatalf("SQ%d: ATA %d far exceeds Table II bound %d", m, res.Finish, bound)
		}
		// And IHC dominates by a large factor.
		if res.Finish < 4*model.IHCBest(mp(), n, 2) {
			t.Fatalf("SQ%d: VSQ-ATA %d not ≫ IHC", m, res.Finish)
		}
	}
}

func TestSaturatedWithinTableIV(t *testing.T) {
	res, err := ATA(4, p, atarun.Options{Saturated: true})
	if err != nil {
		t.Fatal(err)
	}
	// Our reconstruction's longest path is 2m-2 hops (one more than the
	// paper's 2m-3, from the second wrap leg), so the saturated bound is
	// N(2m-2)(τ_S+μα+D).
	m := 4
	bound := simnet.Time(m*m) * simnet.Time(2*m-2) * (p.TauS + p.PacketTime() + p.D)
	if res.Finish > bound {
		t.Fatalf("saturated ATA %d exceeds bound %d", res.Finish, bound)
	}
	if paper := model.VSQATAWorst(mp(), 4); bound <= paper {
		t.Fatalf("bound arithmetic wrong: %d <= %d", bound, paper)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		m   int
		src topology.Node
	}{{2, 0}, {4, 16}, {4, -1}} {
		if b, err := New(tc.m, tc.src); err == nil || b != nil {
			t.Fatalf("New(%d, %d) = %v, %v; want error", tc.m, tc.src, b, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad input")
		}
	}()
	MustNew(2, 0)
}

// Property: the pattern is translation-invariant — the tree from any
// source is the source-0 tree shifted.
func TestQuickTranslationInvariance(t *testing.T) {
	const m = 5
	base := MustNew(m, 0)
	f := func(sRaw uint8) bool {
		src := topology.Node(sRaw % 25)
		b := MustNew(m, src)
		sr, sc := topology.TorusCoords(m, src)
		for dir := 0; dir < 4; dir++ {
			for v := 0; v < 25; v++ {
				r, c := topology.TorusCoords(m, topology.Node(v))
				shifted := topology.TorusNode(m, r+sr, c+sc)
				pv := base.parent[dir][v]
				pb := b.parent[dir][shifted]
				if pv < 0 {
					if pb >= 0 {
						return false
					}
					continue
				}
				pr, pc := topology.TorusCoords(m, pv)
				if pb != topology.TorusNode(m, pr+sr, pc+sc) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
