// Package vsq implements the VSQ reliable broadcast algorithm for
// torus-wrapped square meshes SQ_m and its serialized all-to-all variant
// VSQ-ATA (the paper's Section V-C).
//
// The broadcast sends one copy of the packet in each of the four
// directions; the four per-direction patterns are 90°-rotations of each
// other and must not interfere (no two patterns use the same directed
// link). Each pattern is a spanning tree — that is forced by the arc
// budget: four trees of N-1 arcs each fit in the 4N directed links with
// exactly one spare arc per direction — so every node receives four
// copies, one per direction.
//
// The paper's Fig. 9 gives the original pattern only graphically; this
// package uses an equivalent explicit construction with the same germane
// properties (arc-disjointness, at most 3 store-and-forward operations on
// any path, O(√N) cut-throughs). The east tree is a comb:
//
//   - ray: east along the source's row, m-1 hops (cut-through chain);
//   - teeth: north from every ray node, m-1 hops each (one redirection
//     per tooth, then cut-throughs), covering all columns except the
//     source's;
//   - wrap legs: the source's own column is reached by one extra west
//     hop from the first tooth (a second redirection).
//
// The longest path therefore has 2 store-and-forwards + 2m-4
// cut-throughs (tooth tip of the last column) or 3 store-and-forwards +
// m-2 cut-throughs (top of the source column), never exceeding the
// paper's structural bound of 3 store-and-forwards + 2√N-6 cut-throughs
// in execution time under the paper's parameter regime.
package vsq

import (
	"fmt"

	"ihc/internal/baseline/atarun"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Direction indices: 0 = east (+col), 1 = north (+row), 2 = west, 3 = south.
const (
	East = iota
	North
	West
	South
)

// step returns the (dRow, dCol) displacement of a direction.
func step(dir int) (dr, dc int) {
	switch dir {
	case East:
		return 0, 1
	case North:
		return 1, 0
	case West:
		return 0, -1
	default:
		return -1, 0
	}
}

// Chain is a cut-through chain of one direction's pattern: the head hop
// is an injection (Parent < 0) or a redirection (Parent = index of the
// chain that delivered the packet to Route[0]).
type Chain struct {
	Dir    int
	Route  []topology.Node
	Parent int
}

// Broadcast is the full VSQ schedule for one source in SQ_m.
type Broadcast struct {
	M      int
	Src    topology.Node
	Chains []Chain
	// parent[d][v]: the node that delivers direction-d's copy to v.
	parent [4][]topology.Node
}

// New computes the VSQ broadcast pattern from src in SQ_m (m >= 3).
// Out-of-range inputs are errors, not panics.
func New(m int, src topology.Node) (*Broadcast, error) {
	if m < 3 {
		return nil, fmt.Errorf("vsq: need m >= 3, got %d", m)
	}
	n := m * m
	if int(src) < 0 || int(src) >= n {
		return nil, fmt.Errorf("vsq: source %d not in SQ%d", src, m)
	}
	b := &Broadcast{M: m, Src: src}
	sr, sc := topology.TorusCoords(m, src)
	for dir := 0; dir < 4; dir++ {
		b.buildTree(dir, sr, sc)
	}
	return b, nil
}

// MustNew is New for statically known-good inputs (the
// regexp.MustCompile idiom).
func MustNew(m int, src topology.Node) *Broadcast {
	b, err := New(m, src)
	if err != nil {
		panic(err)
	}
	return b
}

// buildTree emits direction dir's comb, rotated so that "east" is dir.
// Coordinates are expressed in the rotated frame (x = along-ray, y =
// along-teeth) and mapped back through rot.
func (b *Broadcast) buildTree(dir, sr, sc int) {
	m := b.M
	par := make([]topology.Node, m*m)
	for i := range par {
		par[i] = -1
	}
	// rot maps comb-frame coordinates (x along dir, y along dir+1) to a
	// concrete torus node.
	rdr, rdc := step(dir)
	tdr, tdc := step((dir + 1) % 4)
	at := func(x, y int) topology.Node {
		return topology.TorusNode(m, sr+x*rdr+y*tdr, sc+x*rdc+y*tdc)
	}
	link := func(child, parent topology.Node) {
		if par[child] != -1 {
			panic(fmt.Sprintf("vsq: node %d covered twice in direction %d", child, dir))
		}
		par[child] = parent
	}

	// Ray: x = 1..m-1 at y = 0.
	ray := Chain{Dir: dir, Parent: -1, Route: []topology.Node{at(0, 0)}}
	for x := 1; x <= m-1; x++ {
		ray.Route = append(ray.Route, at(x, 0))
		link(at(x, 0), at(x-1, 0))
	}
	rayIdx := len(b.Chains)
	b.Chains = append(b.Chains, ray)

	// Teeth: from every ray node x = 1..m-1, y = 1..m-1.
	toothIdx := make([]int, m)
	for x := 1; x <= m-1; x++ {
		tooth := Chain{Dir: dir, Parent: rayIdx, Route: []topology.Node{at(x, 0)}}
		for y := 1; y <= m-1; y++ {
			tooth.Route = append(tooth.Route, at(x, y))
			link(at(x, y), at(x, y-1))
		}
		toothIdx[x] = len(b.Chains)
		b.Chains = append(b.Chains, tooth)
	}

	// Wrap legs: the source column (x = 0, y = 1..m-1) is reached by one
	// backward (dir+2) hop from the first tooth.
	for y := 1; y <= m-1; y++ {
		leg := Chain{Dir: dir, Parent: toothIdx[1], Route: []topology.Node{at(1, y), at(0, y)}}
		link(at(0, y), at(1, y))
		b.Chains = append(b.Chains, leg)
	}
	b.parent[dir] = par
}

// PathTo returns direction dir's delivery path from the source to v.
func (b *Broadcast) PathTo(dir int, v topology.Node) []topology.Node {
	if v == b.Src {
		return []topology.Node{b.Src}
	}
	var rev []topology.Node
	for x := v; x != b.Src; x = b.parent[dir][x] {
		if x < 0 {
			panic(fmt.Sprintf("vsq: no direction-%d path to %d", dir, v))
		}
		rev = append(rev, x)
	}
	rev = append(rev, b.Src)
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Packets converts the chains into simulator packets; redirection chains
// depend on their parent chain's delivery at their head node.
func (b *Broadcast) Packets(start simnet.Time, seq int) []simnet.PacketSpec {
	specs := make([]simnet.PacketSpec, len(b.Chains))
	for c, ch := range b.Chains {
		specs[c] = simnet.PacketSpec{
			ID:    simnet.PacketID{Source: b.Src, Channel: c, Seq: seq},
			Route: ch.Route,
			Tee:   true,
		}
		if ch.Parent < 0 {
			specs[c].Inject = start
		} else {
			specs[c].After = []int{ch.Parent}
		}
	}
	return specs
}

// Arcs returns every directed link used by the broadcast, per direction
// pattern — used to verify the non-interference condition.
func (b *Broadcast) Arcs() [4][]topology.Arc {
	var out [4][]topology.Arc
	for _, ch := range b.Chains {
		for i := 0; i+1 < len(ch.Route); i++ {
			out[ch.Dir] = append(out[ch.Dir], topology.Arc{From: ch.Route[i], To: ch.Route[i+1]})
		}
	}
	return out
}

// ATA runs VSQ-ATA: every node of SQ_m broadcasts in turn.
func ATA(m int, p simnet.Params, opts atarun.Options) (*atarun.Result, error) {
	g, err := topology.SquareTorus(m)
	if err != nil {
		return nil, err
	}
	if _, err := New(m, 0); err != nil {
		return nil, err
	}
	gen := func(src topology.Node, start simnet.Time, seq int) []simnet.PacketSpec {
		return MustNew(m, src).Packets(start, seq)
	}
	return atarun.Sequential(g, p, gen, opts)
}
