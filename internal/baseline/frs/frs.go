// Package frs implements Fraigniaud's all-to-all reliable broadcast
// algorithm for hypercubes (the paper's FRS [12]): every node executes
// the RS reliable broadcast simultaneously and in lock step, and in every
// step after the first each node merges the messages received in the
// previous step before relaying the (larger) merged message. In the last
// step the merged message is shortened by the portion that would be
// returned to its originator.
//
// The aggregate behaviour is striking: at every step, every directed link
// of the cube carries exactly one merged message, so the network runs at
// 100% link utilization for the whole broadcast, and the total time is
// (γ+1)τ_S + (2^γ-1)Lτ_L — the best possible under heavy load, which is
// why FRS wins the paper's worst-case comparison (Table IV).
//
// Two complementary models are provided:
//
//   - a timing model for the discrete-event simulator: one packet per
//     directed link per step, with per-node lock-step dependencies and
//     per-step message lengths 1, 1, 2, 4, ..., 2^{γ-2}, 2^{γ-1}-1 (in
//     units of L);
//   - a content model used for delivery verification: by the
//     translation-symmetry of the lock-step execution, source s's message
//     crosses link (v, v⊕2^d) at step k iff node v⊕s sends in direction d
//     at step k in the RS broadcast from node 0. Every node provably ends
//     up with γ copies of every other node's message; the content model
//     checks it concretely.
package frs

import (
	"fmt"

	"ihc/internal/baseline/rs"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// StepLengths returns the per-step merged-message lengths in units of the
// original message length L for a Q_m broadcast: step 1 carries the
// node's own message; step k in 2..γ carries 2^{k-2} merged messages; the
// final step carries 2^{γ-1}-1 (the returned portion is removed). The
// lengths sum to 2^γ - 1 = N-1.
func StepLengths(m int) []int {
	out := make([]int, m+1)
	out[0] = 1
	for k := 2; k <= m; k++ {
		out[k-1] = 1 << uint(k-2)
	}
	out[m] = 1<<uint(m-1) - 1
	return out
}

// sends[k-1] lists, for step k of the RS broadcast from node 0 in Q_m,
// the (sender, direction) pairs. Returns are included: FRS carries them
// merged until the final-step shortening, which StepLengths accounts for.
func rsSends(m int) [][]struct {
	from topology.Node
	dir  int
} {
	b := rs.MustNew(m, 0, true)
	out := make([][]struct {
		from topology.Node
		dir  int
	}, m+1)
	for _, op := range b.Ops {
		d := topology.HypercubeDirection(op.From, op.To)
		out[op.Step-1] = append(out[op.Step-1], struct {
			from topology.Node
			dir  int
		}{op.From, d})
	}
	return out
}

// Content returns the set of sources whose message crosses the directed
// link (v, v ⊕ 2^d) at step k (1-based), excluding at the final step the
// message that would merely return to its originator. Out-of-range
// inputs are errors, not panics.
func Content(m, k int, v topology.Node, d int) ([]topology.Node, error) {
	if m < 1 || m > 20 {
		return nil, fmt.Errorf("frs: dimension %d out of range [1,20]", m)
	}
	if k < 1 || k > m+1 {
		return nil, fmt.Errorf("frs: step %d out of range [1,%d]", k, m+1)
	}
	sends := rsSends(m)
	recv := v ^ topology.Node(1<<uint(d))
	var out []topology.Node
	for _, s := range sends[k-1] {
		if s.dir != d {
			continue
		}
		src := v ^ s.from
		if k == m+1 && src == recv {
			// Final-step shortening: drop the portion returning to its
			// originator.
			continue
		}
		out = append(out, src)
	}
	return out, nil
}

// Copies computes the delivery matrix of the whole FRS broadcast from the
// content model: entry (w, s) counts the copies of s's message that w
// receives over all steps and links.
func Copies(m int) *simnet.CopyMatrix {
	n := 1 << m
	cm := simnet.NewCopyMatrix(n)
	sends := rsSends(m)
	for k := 1; k <= m+1; k++ {
		for _, s := range sends[k-1] {
			// In the broadcast from source src, node src^s.from sends to
			// src^s.from^2^d; equivalently, for every node v the link
			// (v, v^2^d) carries source v^s.from.
			for v := topology.Node(0); int(v) < n; v++ {
				src := v ^ s.from
				recv := v ^ topology.Node(1<<uint(s.dir))
				if k == m+1 && src == recv {
					continue
				}
				if src == recv {
					continue // never deliver a node its own message
				}
				cm.Add(recv, src)
			}
		}
	}
	return cm
}

// Packets returns the lock-step packet schedule for the simulator: one
// packet per directed link per step, sized by StepLengths (in flit units
// of μ per L), each depending on all of its sender's previous-step
// receptions. The packet at (step k, node v, direction d) has spec index
// (k-1)·Nγ + v·γ + d.
func Packets(m int, mu int, start simnet.Time) []simnet.PacketSpec {
	n := 1 << m
	lengths := StepLengths(m)
	idx := func(k int, v topology.Node, d int) int {
		return (k-1)*n*m + int(v)*m + d
	}
	specs := make([]simnet.PacketSpec, (m+1)*n*m)
	for k := 1; k <= m+1; k++ {
		for v := topology.Node(0); int(v) < n; v++ {
			for d := 0; d < m; d++ {
				spec := simnet.PacketSpec{
					ID:    simnet.PacketID{Source: v, Channel: d, Seq: k},
					Route: []topology.Node{v, v ^ topology.Node(1<<uint(d))},
					Flits: lengths[k-1] * mu,
				}
				if k == 1 {
					spec.Inject = start
				} else {
					after := make([]int, m)
					for j := 0; j < m; j++ {
						after[j] = idx(k-1, v^topology.Node(1<<uint(j)), j)
					}
					spec.After = after
				}
				specs[idx(k, v, d)] = spec
			}
		}
	}
	return specs
}

// Result is an FRS execution summary.
type Result struct {
	Finish      simnet.Time
	Contentions int
	Injections  int
	Events      int64
	LinkBusy    simnet.Time
	Copies      *simnet.CopyMatrix // from the content model
}

// Run executes FRS on a fresh Q_m network. The switching mode of p is
// forced to store-and-forward (FRS is a store-and-forward algorithm).
// The delivery matrix comes from the content model when copies is true.
func Run(m int, p simnet.Params, copies bool) (*Result, error) {
	p.Mode = simnet.StoreAndForward
	g, err := topology.Hypercube(m)
	if err != nil {
		return nil, err
	}
	net, err := simnet.New(g, p)
	if err != nil {
		return nil, err
	}
	r, err := net.Run(Packets(m, p.Mu, 0), simnet.Options{})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Finish:      r.Finish,
		Contentions: r.Contentions,
		Injections:  r.Injections,
		Events:      r.Events,
		LinkBusy:    r.LinkBusy,
	}
	if copies {
		res.Copies = Copies(m)
	}
	return res, nil
}
