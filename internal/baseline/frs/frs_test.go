package frs

import (
	"testing"
	"testing/quick"

	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

var p = simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

func mp() model.Params {
	return model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
}

func TestStepLengths(t *testing.T) {
	// Q4: 1, 1, 2, 4, 7 — summing to N-1 = 15.
	got := StepLengths(4)
	want := []int{1, 1, 2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("lengths = %v", got)
	}
	sum := 0
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("lengths = %v, want %v", got, want)
		}
		sum += got[i]
	}
	if sum != 15 {
		t.Fatalf("sum = %d", sum)
	}
	for m := 2; m <= 10; m++ {
		sum := 0
		for _, l := range StepLengths(m) {
			sum += l
		}
		if sum != (1<<m)-1 {
			t.Fatalf("Q%d lengths sum %d != N-1", m, sum)
		}
	}
}

func TestContentSizesMatchStepLengths(t *testing.T) {
	const m = 4
	lengths := StepLengths(m)
	for k := 1; k <= m+1; k++ {
		for _, v := range []topology.Node{0, 7, 12} {
			for d := 0; d < m; d++ {
				c, err := Content(m, k, v, d)
				if err != nil {
					t.Fatal(err)
				}
				if got := len(c); got != lengths[k-1] {
					t.Fatalf("step %d link (%d,dir %d): content %d, want %d", k, v, d, got, lengths[k-1])
				}
			}
		}
	}
}

func TestContentStepOne(t *testing.T) {
	// Step 1: each link carries exactly its sender's own message.
	c, err := Content(4, 1, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0] != 9 {
		t.Fatalf("step-1 content = %v", c)
	}
}

func TestContentRejectsBadInput(t *testing.T) {
	if _, err := Content(4, 6, 0, 0); err == nil {
		t.Fatal("no error on bad step")
	}
	if _, err := Content(4, 0, 0, 0); err == nil {
		t.Fatal("no error on step 0")
	}
	if _, err := Content(0, 1, 0, 0); err == nil {
		t.Fatal("no error on bad dimension")
	}
}

// The fundamental FRS delivery property: every node receives exactly γ
// copies of every other node's message.
func TestCopiesGammaPerPair(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5} {
		if err := Copies(m).VerifyATA(m); err != nil {
			t.Fatalf("Q%d: %v", m, err)
		}
	}
}

// Simulated execution time equals the Table II closed form exactly, with
// 100% link utilization and no contention (lock-step merges prevent it).
func TestRunMatchesTableII(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 6} {
		res, err := Run(m, p, m <= 4)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 << m
		want := model.FRSBest(mp(), n)
		if res.Finish != want {
			t.Fatalf("Q%d: finish = %d, want %d", m, res.Finish, want)
		}
		if res.Contentions != 0 {
			t.Fatalf("Q%d: %d contentions", m, res.Contentions)
		}
		if res.Injections != (m+1)*n*m {
			t.Fatalf("Q%d: injections = %d", m, res.Injections)
		}
		// 100% utilization: every link busy the whole time except the
		// γ+1 startups: LinkBusy = links * (finish - (γ+1)τ_S).
		links := simnet.Time(2 * topology.MustHypercube(m).M())
		wantBusy := links * (res.Finish - simnet.Time(m+1)*p.TauS)
		if res.LinkBusy != wantBusy {
			t.Fatalf("Q%d: link busy = %d, want %d", m, res.LinkBusy, wantBusy)
		}
		if m <= 4 {
			if err := res.Copies.VerifyATA(m); err != nil {
				t.Fatalf("Q%d: %v", m, err)
			}
		}
	}
}

// FRS under saturation is modeled analytically (Table IV): its worst case
// only adds D per step. Verify the model ordering against IHC's.
func TestWorstCaseOrderingVsIHC(t *testing.T) {
	for _, m := range []int{4, 6, 8, 10} {
		n := 1 << m
		frsW := model.FRSWorst(mp(), n)
		ihcW := model.IHCWorst(mp(), n, 2)
		if frsW >= ihcW {
			t.Fatalf("Q%d: FRS worst %d not faster than IHC worst %d", m, frsW, ihcW)
		}
		// But in the dedicated network IHC wins.
		if model.IHCBest(mp(), n, 2) >= model.FRSBest(mp(), n) {
			t.Fatalf("Q%d: IHC best not faster than FRS best", m)
		}
	}
}

// Property: content translation symmetry — the content of link (v, v^2^d)
// equals the content of link (0, 2^d) shifted by v.
func TestQuickContentTranslationInvariance(t *testing.T) {
	const m = 4
	f := func(vRaw, kRaw, dRaw uint8) bool {
		v := topology.Node(vRaw % 16)
		k := int(kRaw)%(m+1) + 1
		d := int(dRaw) % m
		base, errB := Content(m, k, 0, d)
		shifted, errS := Content(m, k, v, d)
		if errB != nil || errS != nil {
			return false
		}
		if len(base) != len(shifted) {
			return false
		}
		set := map[topology.Node]bool{}
		for _, s := range shifted {
			set[s] = true
		}
		for _, s := range base {
			if !set[v^s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
