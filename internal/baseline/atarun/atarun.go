// Package atarun provides the shared execution harness for the
// "serialized" ATA reliable broadcast baselines of Section V: VRS-ATA,
// KS-ATA and VSQ-ATA all execute one node's reliable broadcast at a time,
// with node b+1's broadcast starting when node b's finishes. Each
// baseline supplies a generator producing the packet schedule of a single
// broadcast; this package chains N such broadcasts on one simulated
// network and aggregates the results.
package atarun

import (
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Generator produces the packet schedule for one source's reliable
// broadcast, injected at the given start time. seq tags the packets'
// sequence number so packet IDs stay unique across broadcasts.
type Generator func(src topology.Node, start simnet.Time, seq int) []simnet.PacketSpec

// Options mirror the relevant simulation switches.
type Options struct {
	Copies    bool // build the delivery matrix
	Saturated bool // heavy-traffic limiting regime (Table IV)
	// Scratch optionally supplies reusable simulator working memory,
	// shared by all N chained broadcasts. Nil borrows from simnet's
	// internal pool. Must not be shared by concurrent runs.
	Scratch *simnet.Scratch
	// Observe optionally streams every performed hop and delivery of
	// all N chained broadcasts to an observability sink. Nil is the
	// fast path.
	Observe simnet.Observer
	// EngineWorkers shards each chained broadcast's event loop across
	// that many goroutines (simnet.Options.EngineWorkers); 0 or 1 runs
	// the sequential engine. Results are byte-identical either way.
	EngineWorkers int
}

// Result aggregates a full serialized ATA broadcast.
type Result struct {
	Finish          simnet.Time
	BroadcastFinish []simnet.Time // completion time of each node's broadcast
	Contentions     int
	BgBlocked       int
	CutThroughs     int
	BufferedHops    int
	Injections      int
	Deliveries      int
	Events          int64
	LinkBusy        simnet.Time
	Copies          *simnet.CopyMatrix
}

// Sequential runs gen(src) for every node of g in turn on a single fresh
// network with parameters p.
func Sequential(g *topology.Graph, p simnet.Params, gen Generator, opts Options) (*Result, error) {
	net, err := simnet.New(g, p)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if opts.Copies {
		res.Copies = simnet.NewCopyMatrix(g.N())
	}
	simOpts := simnet.Options{
		Copies: opts.Copies, Saturated: opts.Saturated, Observe: opts.Observe,
		EngineWorkers: opts.EngineWorkers,
	}
	start := simnet.Time(0)
	for src := 0; src < g.N(); src++ {
		r, err := net.RunScratch(gen(topology.Node(src), start, src), simOpts, opts.Scratch)
		if err != nil {
			return nil, err
		}
		res.Finish = r.Finish
		res.BroadcastFinish = append(res.BroadcastFinish, r.Finish)
		res.Contentions += r.Contentions
		res.BgBlocked += r.BgBlocked
		res.CutThroughs += r.CutThroughs
		res.BufferedHops += r.BufferedHops
		res.Injections += r.Injections
		res.Deliveries += r.Deliveries
		res.Events += r.Events
		res.LinkBusy += r.LinkBusy
		if res.Copies != nil && r.Copies != nil {
			res.Copies.Merge(r.Copies)
		}
		start = r.Finish
	}
	return res, nil
}
