// Package ks implements a Kandlur–Shin style reliable broadcast for
// C-wrapped hexagonal meshes H_m (the paper's KS [15]) and its serialized
// all-to-all variant KS-ATA.
//
// The broadcast initiates one copy in each of the six directions; the six
// per-direction patterns are 60°-rotations of each other (the rotation of
// H_m is multiplication of addresses by ω = 3m-1, which cyclically
// permutes the six neighbor steps) and must not interfere. As with VSQ,
// the arc budget forces each pattern to be a spanning tree: six trees of
// N-1 arcs fit in the 6N directed links with six arcs to spare, so every
// node receives six copies of the packet, one per direction.
//
// The original KS pattern is published only as a figure (the paper's
// Fig. 8); this package uses an equivalent explicit construction with the
// same germane properties — six arc-disjoint spanning trees, at most 3
// store-and-forward operations on any delivery path, O(√N) cut-throughs.
// The direction-0 tree is an address-space comb, exploiting the fact that
// the direction steps satisfy s₀ = 1, s₁ = 3m-1, and s₁·(3m-2) ≡ -1
// (mod N):
//
//   - ray: nodes 1..m-1 by +1 steps (direction 0);
//   - teeth: from each ray node x, nodes x + y·s₁ for y = 1..3m-3
//     (direction 1) — the columns are disjoint because no small multiple
//     of s₁ is congruent to a small integer;
//   - legs: the source's own column {y·s₁ : y = 1..2m-2} is reached by
//     one backward -1 hop from the first tooth (direction 3).
//
// Every construction is verified by the package tests: full coverage,
// pairwise arc-disjointness of the six trees, and six copies delivered
// to every node in simulation.
package ks

import (
	"fmt"
	"sync"

	"ihc/internal/baseline/atarun"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Chain is one cut-through chain of the broadcast (see vsq.Chain).
type Chain struct {
	Dir    int
	Route  []topology.Node
	Parent int
}

// Broadcast is the full KS schedule for one source in H_m.
type Broadcast struct {
	M      int
	Src    topology.Node
	N      int
	Chains []Chain
	parent [6][]topology.Node
}

// New computes the KS broadcast pattern from src in H_m (m >= 2).
// Out-of-range inputs are errors, not panics.
func New(m int, src topology.Node) (*Broadcast, error) {
	if m < 2 {
		return nil, fmt.Errorf("ks: need m >= 2, got %d", m)
	}
	n := topology.HexMeshSize(m)
	if int(src) < 0 || int(src) >= n {
		return nil, fmt.Errorf("ks: source %d not in H%d", src, m)
	}
	b := &Broadcast{M: m, Src: src, N: n}
	for dir := 0; dir < 6; dir++ {
		b.buildTree(dir)
	}
	return b, nil
}

// MustNew is New for statically known-good inputs (the
// regexp.MustCompile idiom).
func MustNew(m int, src topology.Node) *Broadcast {
	b, err := New(m, src)
	if err != nil {
		panic(err)
	}
	return b
}

// dirStep returns the address step of direction d in H_m: directions 0,
// 1, 2 are +1, +(3m-1), +(3m-2); directions 3, 4, 5 their negations.
// (s₀ + s₂ = s₁, the hexagonal closure property.)
func dirStep(m, d int) int {
	n := topology.HexMeshSize(m)
	steps := [6]int{1, 3*m - 1, 3*m - 2, n - 1, n - (3*m - 1), n - (3*m - 2)}
	return steps[d]
}

// buildTree emits direction dir's comb: the direction-0 pattern with all
// addresses multiplied by ω^dir and translated to the source.
func (b *Broadcast) buildTree(dir int) {
	pat := patternFor(b.M)
	m, n := b.M, b.N
	// ω^dir: each multiplication by ω = 3m-1 rotates 60°.
	omega := 1
	for i := 0; i < dir; i++ {
		omega = omega * (3*m - 1) % n
	}
	at := func(v int) topology.Node {
		return topology.Node((int(b.Src) + v*omega%n) % n)
	}
	par := make([]topology.Node, n)
	for i := range par {
		par[i] = -1
	}
	base := len(b.Chains)
	for _, ch := range pat.chains {
		route := make([]topology.Node, len(ch.route))
		for i, v := range ch.route {
			route[i] = at(v)
		}
		parent := ch.parent
		if parent >= 0 {
			parent += base
		}
		b.Chains = append(b.Chains, Chain{Dir: dir, Route: route, Parent: parent})
		for i := 1; i < len(route); i++ {
			if par[route[i]] != -1 {
				panic(fmt.Sprintf("ks: H%d node %d covered twice in direction %d", m, route[i], dir))
			}
			par[route[i]] = route[i-1]
		}
	}
	b.parent[dir] = par
}

// pattern is the direction-0 comb for source 0, shared by all sources and
// directions of a given mesh size.
type pattern struct {
	chains []patChain
}

type patChain struct {
	route  []int
	parent int
}

var (
	patternMu    sync.Mutex
	patternCache = map[int]*pattern{}
)

func patternFor(m int) *pattern {
	patternMu.Lock()
	defer patternMu.Unlock()
	if p, ok := patternCache[m]; ok {
		return p
	}
	p := buildPattern(m)
	patternCache[m] = p
	return p
}

// buildPattern constructs the direction-0 spanning tree from source 0
// such that the tree and its five rotations are pairwise arc-disjoint.
//
// The key observation: six rotation-symmetric arc-disjoint spanning trees
// use, at every non-source node, all six incoming arcs (one per tree) and
// leave unused exactly the six arcs into the source. In orbit space — the
// arc (u, dir d) is equivalent under rotation to (u·ω^{-d}, dir 0) —
// building the direction-0 tree amounts to growing a single spanning tree
// that uses each arc orbit at most once. The growth is a greedy frontier
// search that prefers (1) continuing straight chains (same direction as
// the parent's inbound arc; these hops become cut-throughs in the virtual
// cut-through execution) and (2) shallow chain depth (few
// store-and-forwards per delivery path), with deterministic tie-breaking
// and backtracking on dead ends. The package tests verify the result: six
// spanning trees, pairwise arc-disjoint, bounded chain depth.
func buildPattern(m int) *pattern {
	// Try cost-greedy searches with several redirect weights; the
	// backtracking is capped, so pathological sizes fall back to the
	// segmented Hamiltonian-path pattern, which is always feasible.
	for _, rc := range []int{8, 6, 12, 5, 16, 4, 10, 20} {
		if p := tryBuildPattern(m, rc, 200_000); p != nil {
			return p
		}
	}
	return hamPathPattern(m)
}

// hamPathPattern is the always-feasible fallback: the +1 Hamiltonian path
// split into segments of about 2m hops, each segment a chain redirected
// off the previous one. Its rotations are trivially arc-disjoint (they
// use the six address-step directions exclusively).
func hamPathPattern(m int) *pattern {
	n := topology.HexMeshSize(m)
	segLen := 2 * m
	p := &pattern{}
	for start := 0; start < n-1; start += segLen {
		end := start + segLen
		if end > n-1 {
			end = n - 1
		}
		route := make([]int, 0, end-start+1)
		for v := start; v <= end; v++ {
			route = append(route, v)
		}
		p.chains = append(p.chains, patChain{route: route, parent: len(p.chains) - 1})
	}
	return p
}

func tryBuildPattern(m, redirectCost, maxSteps int) *pattern {
	n := topology.HexMeshSize(m)
	steps := [6]int{1, 3*m - 1, 3*m - 2, n - 1, n - (3*m - 1), n - (3*m - 2)}
	// ω^{-1} = -s₂ mod n (since ω·s₂ = ω³ ≡ -1).
	invOmega := n - (3*m - 2)
	orbit := func(u, d int) int {
		for k := 0; k < d; k++ {
			u = u * invOmega % n
		}
		return u
	}

	type chainState struct {
		route  []int
		parent int
		tail   int
		depth  int
	}
	type decision struct {
		u, d, v  int
		straight bool
		chain    int // chain extended or created
		tried    map[int]bool
	}
	var (
		chains    []chainState
		covered   = make([]bool, n)
		inDir     = make([]int, n)
		chainOf   = make([]int, n)
		orbitUsed = make([]bool, n)
		stack     []decision
	)
	covered[0] = true
	chainOf[0] = -1
	inDir[0] = -1
	// cost approximates arrival time: a cut-through hop (straight chain
	// continuation) costs 1, a redirection (new chain head, paying the
	// startup τ_S) costs redirectCost — roughly (τ_S+μα)/α in the
	// parameter regimes of interest. The greedy grows a minimum-cost
	// spanning pattern under the orbit constraint, which is what keeps
	// both chain depth and hop depth small.
	cost := make([]int, n)
	remaining := n - 1

	// freeIn counts how many of v's six inbound arcs still have a free
	// orbit; when it hits zero the node is unreachable and the search
	// must backtrack.
	freeIn := func(v int) int {
		c := 0
		for d := 0; d < 6; d++ {
			if !orbitUsed[orbit((v-steps[d]+n)%n, d)] {
				c++
			}
		}
		return c
	}

	// nextCandidate returns the next growth arc: if some uncovered node
	// is nearly out of inbound orbits it is served first
	// (most-constrained-first); otherwise the lowest-arrival-cost arc
	// wins. skip holds arcs already tried at this search depth.
	nextCandidate := func(skip map[int]bool) (u, d, v int, straight bool, ok bool) {
		// Urgency scan.
		urgent, urgentFree := -1, 3
		for vv := 0; vv < n; vv++ {
			if covered[vv] {
				continue
			}
			f := freeIn(vv)
			if f == 0 {
				return 0, 0, 0, false, false // dead end
			}
			if f < urgentFree {
				urgent, urgentFree = vv, f
			}
		}
		bestCost := 1 << 30
		found := false
		consider := func(uu, dd, vv int) {
			if covered[vv] || orbitUsed[orbit(uu, dd)] || skip[uu*8+dd] {
				return
			}
			st := uu != 0 && inDir[uu] == dd && chains[chainOf[uu]].tail == uu
			c := cost[uu] + 1
			if !st {
				c = cost[uu] + redirectCost
			}
			better := c < bestCost ||
				(c == bestCost && st && !straight) ||
				(c == bestCost && st == straight && (vv < v || (vv == v && dd < d)))
			if !found || better {
				u, d, v, straight, bestCost, found = uu, dd, vv, st, c, true
			}
		}
		if urgent >= 0 {
			for dd := 0; dd < 6; dd++ {
				uu := (urgent - steps[dd] + n) % n
				if covered[uu] {
					consider(uu, dd, urgent)
				}
			}
			if found {
				return u, d, v, straight, true
			}
		}
		for uu := 0; uu < n; uu++ {
			if !covered[uu] {
				continue
			}
			for dd := 0; dd < 6; dd++ {
				consider(uu, dd, (uu+steps[dd])%n)
			}
		}
		return u, d, v, straight, found
	}

	apply := func(u, d, v int, straight bool) int {
		orbitUsed[orbit(u, d)] = true
		covered[v] = true
		inDir[v] = d
		if straight {
			cost[v] = cost[u] + 1
		} else {
			cost[v] = cost[u] + redirectCost
		}
		var ci int
		if straight {
			ci = chainOf[u]
			chains[ci].route = append(chains[ci].route, v)
			chains[ci].tail = v
		} else {
			parent := -1
			depth := 1
			if u != 0 {
				parent = chainOf[u]
				depth = chains[parent].depth + 1
			}
			ci = len(chains)
			chains = append(chains, chainState{route: []int{u, v}, parent: parent, tail: v, depth: depth})
		}
		chainOf[v] = ci
		remaining--
		return ci
	}

	undo := func(dec decision) {
		orbitUsed[orbit(dec.u, dec.d)] = false
		covered[dec.v] = false
		remaining++
		if dec.straight {
			c := &chains[dec.chain]
			c.route = c.route[:len(c.route)-1]
			c.tail = c.route[len(c.route)-1]
		} else {
			chains = chains[:len(chains)-1]
		}
	}

	for stepsTaken := 0; remaining > 0; stepsTaken++ {
		if stepsTaken > maxSteps {
			return nil
		}
		var skip map[int]bool
		if len(stack) > 0 && stack[len(stack)-1].chain == -2 {
			// Re-entering after a backtrack: reuse the frame's skip set.
			skip = stack[len(stack)-1].tried
			stack = stack[:len(stack)-1]
		} else {
			skip = map[int]bool{}
		}
		u, d, v, straight, ok := nextCandidate(skip)
		if !ok {
			// Dead end: backtrack.
			if len(stack) == 0 {
				return nil
			}
			dec := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			undo(dec)
			dec.tried[dec.u*8+dec.d] = true
			// Push a marker frame carrying the skip set.
			stack = append(stack, decision{chain: -2, tried: dec.tried})
			continue
		}
		ci := apply(u, d, v, straight)
		stack = append(stack, decision{u: u, d: d, v: v, straight: straight, chain: ci, tried: skip})
	}

	p := &pattern{}
	for _, c := range chains {
		p.chains = append(p.chains, patChain{route: c.route, parent: c.parent})
	}
	return p
}

// PathTo returns direction dir's delivery path from the source to v.
func (b *Broadcast) PathTo(dir int, v topology.Node) []topology.Node {
	if v == b.Src {
		return []topology.Node{b.Src}
	}
	var rev []topology.Node
	for x := v; x != b.Src; x = b.parent[dir][x] {
		if x < 0 {
			panic(fmt.Sprintf("ks: no direction-%d path to %d", dir, v))
		}
		rev = append(rev, x)
	}
	rev = append(rev, b.Src)
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Packets converts the chains into simulator packets (see vsq.Packets).
func (b *Broadcast) Packets(start simnet.Time, seq int) []simnet.PacketSpec {
	specs := make([]simnet.PacketSpec, len(b.Chains))
	for c, ch := range b.Chains {
		specs[c] = simnet.PacketSpec{
			ID:    simnet.PacketID{Source: b.Src, Channel: c, Seq: seq},
			Route: ch.Route,
			Tee:   true,
		}
		if ch.Parent < 0 {
			specs[c].Inject = start
		} else {
			specs[c].After = []int{ch.Parent}
		}
	}
	return specs
}

// Arcs returns the directed links used by each direction's pattern.
func (b *Broadcast) Arcs() [6][]topology.Arc {
	var out [6][]topology.Arc
	for _, ch := range b.Chains {
		for i := 0; i+1 < len(ch.Route); i++ {
			out[ch.Dir] = append(out[ch.Dir], topology.Arc{From: ch.Route[i], To: ch.Route[i+1]})
		}
	}
	return out
}

// ATA runs KS-ATA: every node of H_m broadcasts in turn.
func ATA(m int, p simnet.Params, opts atarun.Options) (*atarun.Result, error) {
	g, err := topology.HexMesh(m)
	if err != nil {
		return nil, err
	}
	if _, err := New(m, 0); err != nil {
		return nil, err
	}
	gen := func(src topology.Node, start simnet.Time, seq int) []simnet.PacketSpec {
		return MustNew(m, src).Packets(start, seq)
	}
	return atarun.Sequential(g, p, gen, opts)
}
