package ks

import (
	"testing"
	"testing/quick"

	"ihc/internal/baseline/atarun"
	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

var p = simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

func mp() model.Params {
	return model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
}

// Each direction's pattern is a spanning tree of H_m, the six patterns
// are pairwise arc-disjoint, and exactly six arcs of the mesh go unused.
func TestTreesSpanAndDontInterfere(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 6} {
		n := topology.HexMeshSize(m)
		for _, src := range []topology.Node{0, topology.Node(n / 2)} {
			b := MustNew(m, src)
			g := topology.MustHexMesh(m)
			seen := map[topology.Arc]int{}
			arcs := b.Arcs()
			for dir := 0; dir < 6; dir++ {
				if len(arcs[dir]) != n-1 {
					t.Fatalf("H%d src=%d dir %d: %d arcs, want N-1=%d", m, src, dir, len(arcs[dir]), n-1)
				}
				for _, a := range arcs[dir] {
					if !g.HasEdge(a.From, a.To) {
						t.Fatalf("H%d: arc %v is not a link", m, a)
					}
					if prev, dup := seen[a]; dup {
						t.Fatalf("H%d src=%d: arc %v used by directions %d and %d", m, src, a, prev, dir)
					}
					seen[a] = dir
				}
				for v := topology.Node(0); int(v) < n; v++ {
					path := b.PathTo(dir, v)
					if path[0] != src || path[len(path)-1] != v {
						t.Fatalf("H%d dir %d: bad path to %d", m, dir, v)
					}
				}
			}
			if len(seen) != 6*(n-1) {
				t.Fatalf("H%d: %d arcs used, want %d", m, len(seen), 6*(n-1))
			}
		}
	}
}

// The reconstruction's path profile: at most 4 store-and-forward
// operations deep (the paper's original pattern has 3; Fig. 8 is only
// published graphically) and, for m >= 4, at most 2m+2 hops on any
// delivery path (the paper's is 2m-2) — same Θ(√N) cut-through shape.
func TestChainDepthAndHops(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 6, 8} {
		b := MustNew(m, 0)
		maxDepth := 0
		for _, ch := range b.Chains {
			d := 1
			for parent := ch.Parent; parent >= 0; parent = b.Chains[parent].Parent {
				d++
			}
			if d > maxDepth {
				maxDepth = d
			}
		}
		if maxDepth > 4 {
			t.Fatalf("H%d: chain depth %d, want <= 4", m, maxDepth)
		}
		if m >= 4 {
			maxHops := 0
			for dir := 0; dir < 6; dir++ {
				for v := 1; v < b.N; v++ {
					if h := len(b.PathTo(dir, topology.Node(v))) - 1; h > maxHops {
						maxHops = h
					}
				}
			}
			if maxHops > 2*m+3 {
				t.Fatalf("H%d: longest path %d hops, want <= 2m+3 = %d", m, maxHops, 2*m+3)
			}
		}
	}
}

// Simulated single broadcast: contention-free, six copies everywhere.
func TestSingleBroadcast(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		g := topology.MustHexMesh(m)
		n := g.N()
		net, err := simnet.New(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(MustNew(m, 0).Packets(0, 0), simnet.Options{Copies: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Contentions != 0 {
			t.Fatalf("H%d: %d contentions", m, res.Contentions)
		}
		for v := 1; v < n; v++ {
			if got := res.Copies.Get(topology.Node(v), 0); got != 6 {
				t.Fatalf("H%d: node %d got %d copies", m, v, got)
			}
		}
	}
}

func TestATA(t *testing.T) {
	for _, m := range []int{2, 3} {
		res, err := ATA(m, p, atarun.Options{Copies: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Copies.VerifyATA(6); err != nil {
			t.Fatalf("H%d: %v", m, err)
		}
		if res.Contentions != 0 {
			t.Fatalf("H%d: %d contentions", m, res.Contentions)
		}
		// Our reconstruction's teeth are up to 3m-3 long (the original
		// Fig. 8 pattern is published only graphically), so its longest
		// path has up to 2m-2 more cut-throughs than the paper's: allow
		// the Table II bound stretched by N(τ_S+μα+2mα): our pattern has
		// up to one extra store-and-forward and a few extra cut-throughs
		// per path vs the original Fig. 8 pattern.
		n := topology.HexMeshSize(m)
		bound := model.KSATABest(mp(), m) +
			simnet.Time(n)*((p.TauS+p.PacketTime())+simnet.Time(2*m)*p.Alpha)
		if res.Finish > bound {
			t.Fatalf("H%d: ATA %d exceeds stretched bound %d", m, res.Finish, bound)
		}
		if res.Finish < 4*model.IHCBest(mp(), n, 1) {
			t.Fatalf("H%d: KS-ATA %d not ≫ IHC", m, res.Finish)
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		m   int
		src topology.Node
	}{{1, 0}, {3, 19}, {3, -1}} {
		if b, err := New(tc.m, tc.src); err == nil || b != nil {
			t.Fatalf("New(%d, %d) = %v, %v; want error", tc.m, tc.src, b, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad input")
		}
	}()
	MustNew(1, 0)
}

// Property: rotation invariance — direction d+1's tree is direction d's
// tree with all addresses multiplied by ω = 3m-1.
func TestQuickRotationInvariance(t *testing.T) {
	const m = 4
	n := topology.HexMeshSize(m)
	b := MustNew(m, 0)
	omega := 3*m - 1
	f := func(vRaw uint8, dRaw uint8) bool {
		v := int(vRaw) % n
		d := int(dRaw) % 5 // compare d and d+1
		pv := b.parent[d][v]
		rv := v * omega % n
		prv := b.parent[d+1][rv]
		if pv < 0 {
			return prv < 0 || rv == 0
		}
		return int(prv) == int(pv)*omega%n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
