package core

import (
	"reflect"
	"testing"

	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// TestShardedEquivalenceIHC is the issue's acceptance matrix: full IHC
// ATA broadcasts on SQ4, Q6, and T4x4x4 must produce byte-identical
// results under the sharded engine at 1, 2, 4, and 7 workers (7 leaves a
// ragged final shard), including the ordered delivery log and the
// Theorem 4 copy matrix, which is additionally re-verified per worker
// count so a miscounted copy cannot hide behind a matching makespan.
func TestShardedEquivalenceIHC(t *testing.T) {
	cases := []struct {
		name string
		g    *topology.Graph
	}{
		{"SQ4", topology.MustSquareTorus(4)},
		{"Q6", topology.MustHypercube(6)},
		{"T4x4x4", topology.MustTorusND(4, 4, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cycles, err := hamilton.Decompose(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			x, err := New(tc.g, cycles)
			if err != nil {
				t.Fatal(err)
			}
			base := Config{
				Eta:              2,
				Params:           simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37},
				RecordDeliveries: true,
				Ledger:           true,
			}
			want, err := x.Run(base)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.Copies.VerifyATA(x.Gamma()); err != nil {
				t.Fatalf("sequential reference violates ATA postcondition: %v", err)
			}
			if err := want.Ledger.VerifyATA(x.Gamma()); err != nil {
				t.Fatalf("sequential reference violates ledger ATA postcondition: %v", err)
			}
			for _, w := range []int{1, 2, 4, 7} {
				cfg := base
				cfg.EngineWorkers = w
				got, err := x.Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got.Finish != want.Finish || got.Contentions != want.Contentions ||
					got.Deliveries != want.Deliveries || got.Events != want.Events ||
					got.CutThroughs != want.CutThroughs || got.Injections != want.Injections ||
					got.LinkBusy != want.LinkBusy {
					t.Errorf("workers=%d: aggregate result differs:\n got %+v\nwant %+v", w, got, want)
				}
				if !reflect.DeepEqual(got.StageFinish, want.StageFinish) {
					t.Errorf("workers=%d: stage finish times differ: %v vs %v", w, got.StageFinish, want.StageFinish)
				}
				if !reflect.DeepEqual(got.Deliveriesv, want.Deliveriesv) {
					t.Errorf("workers=%d: delivery log differs (%d vs %d entries)",
						w, len(got.Deliveriesv), len(want.Deliveriesv))
				}
				if err := got.Copies.VerifyATA(x.Gamma()); err != nil {
					t.Errorf("workers=%d: ATA postcondition violated: %v", w, err)
				}
				if err := got.Ledger.VerifyATA(x.Gamma()); err != nil {
					t.Errorf("workers=%d: counters-only ledger violated: %v", w, err)
				}
			}
		})
	}
}

// TestSharedPathMatchesPerHopCompilation pins the compiled-path layout
// at the algorithm level: disabling the cycle-path cache (by patching
// every route to a fresh copy, which defeats the slice-identity check)
// must not change anything about the run.
func TestSharedPathMatchesPerHopCompilation(t *testing.T) {
	g := topology.MustHypercube(4)
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Eta:              2,
		Params:           simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37},
		RecordDeliveries: true,
	}
	shared, err := x.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	perHop := base
	perHop.PatchRoutes = func(specs []simnet.PacketSpec) {
		for i := range specs {
			specs[i].Route = append([]topology.Node(nil), specs[i].Route...)
		}
	}
	plain, err := x.Run(perHop)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Finish != plain.Finish || shared.Events != plain.Events ||
		shared.Deliveries != plain.Deliveries || shared.Contentions != plain.Contentions {
		t.Fatalf("shared-path run differs from per-hop compilation:\n got %+v\nwant %+v", shared, plain)
	}
	if !reflect.DeepEqual(shared.Deliveriesv, plain.Deliveriesv) {
		t.Fatal("shared-path delivery log differs from per-hop compilation")
	}
}
