package core

import (
	"reflect"
	"testing"

	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// TestShardedEquivalenceFamilies extends the sharded-engine acceptance
// matrix to the registry's new families: full IHC ATA broadcasts on
// TQ_3–TQ_5 (reduced-reliability twisted cubes) and on 3-ary and 5-ary
// tori must produce byte-identical results — ordered delivery log
// included — at 1, 2, and 4 engine workers. The twisted cubes exercise
// the sharded engine on decompositions that do NOT cover every edge
// (idle links must shard identically), and the odd-N 3-ary/5-ary tori
// exercise the ragged η seam.
func TestShardedEquivalenceFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *topology.Graph
	}{
		{"TQ3", topology.MustTwistedCube(3)},
		{"TQ4", topology.MustTwistedCube(4)},
		{"TQ5", topology.MustTwistedCube(5)},
		{"KT3x2", topology.MustKAryTorus(3, 2)},
		{"KT3x3", topology.MustKAryTorus(3, 3)},
		{"KT5x2", topology.MustKAryTorus(5, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cycles, err := hamilton.Decompose(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			x, err := New(tc.g, cycles)
			if err != nil {
				t.Fatal(err)
			}
			base := Config{
				Eta:              2,
				Params:           simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37},
				RecordDeliveries: true,
				Ledger:           true,
			}
			want, err := x.Run(base)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.Copies.VerifyATA(x.Gamma()); err != nil {
				t.Fatalf("sequential reference violates ATA postcondition: %v", err)
			}
			if err := want.Ledger.VerifyATA(x.Gamma()); err != nil {
				t.Fatalf("sequential reference violates ledger ATA postcondition: %v", err)
			}
			for _, w := range []int{1, 2, 4} {
				cfg := base
				cfg.EngineWorkers = w
				got, err := x.Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got.Finish != want.Finish || got.Contentions != want.Contentions ||
					got.Deliveries != want.Deliveries || got.Events != want.Events ||
					got.CutThroughs != want.CutThroughs || got.Injections != want.Injections ||
					got.LinkBusy != want.LinkBusy {
					t.Errorf("workers=%d: aggregate result differs:\n got %+v\nwant %+v", w, got, want)
				}
				if !reflect.DeepEqual(got.StageFinish, want.StageFinish) {
					t.Errorf("workers=%d: stage finish times differ: %v vs %v", w, got.StageFinish, want.StageFinish)
				}
				if !reflect.DeepEqual(got.Deliveriesv, want.Deliveriesv) {
					t.Errorf("workers=%d: delivery log differs (%d vs %d entries)",
						w, len(got.Deliveriesv), len(want.Deliveriesv))
				}
				if err := got.Copies.VerifyATA(x.Gamma()); err != nil {
					t.Errorf("workers=%d: ATA postcondition violated: %v", w, err)
				}
				if err := got.Ledger.VerifyATA(x.Gamma()); err != nil {
					t.Errorf("workers=%d: counters-only ledger violated: %v", w, err)
				}
			}
		})
	}
}
