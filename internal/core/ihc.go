// Package core implements the paper's primary contribution: the IHC
// algorithm for interleaved all-to-all (ATA) reliable broadcast on
// class-Λ interconnection networks.
//
// Given a γ-regular graph with γ/2 undirected edge-disjoint Hamiltonian
// cycles (package hamilton), the algorithm orients every cycle both ways,
// obtaining γ directed HCs that partition the directed links, and runs η
// stages: in stage i, every node v with ID_j(v) ≡ i (mod η) injects its
// broadcast packet onto directed cycle HC_j, and every packet flows N-1
// hops around its cycle, being tee-copied by each node it cuts through.
// Because packets on one cycle stay η nodes apart and cycles share no
// directed links, no two packets ever contend for a link when η >= μ —
// every relay is a pure cut-through — and after all stages every node
// holds exactly γ copies of every other node's message, one per directed
// cycle, received over edge-disjoint paths.
package core

import (
	"fmt"

	"ihc/internal/hamilton"
	"ihc/internal/sched"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// IHC is an instance of the algorithm bound to a topology and its
// Hamiltonian decomposition.
type IHC struct {
	g          *topology.Graph
	undirected []hamilton.Cycle
	directed   []hamilton.Cycle // all anchored at N0 = node 0
	doubled    [][]topology.Node
	pos        [][]int // pos[j][v] = ID_j(v), distance from N0 along HC_j
}

// New validates the decomposition and prepares the γ directed Hamiltonian
// cycles. cycles must be edge-disjoint Hamiltonian cycles of g; for strict
// class-Λ membership len(cycles) == degree/2, but any non-empty subset is
// accepted (the paper's reduced-reliability mode for odd-dimensional
// hypercubes uses γ = degree-1).
func New(g *topology.Graph, cycles []hamilton.Cycle) (*IHC, error) {
	if len(cycles) == 0 {
		return nil, fmt.Errorf("core: no Hamiltonian cycles given for %s", g.Name())
	}
	if err := hamilton.VerifyDecomposition(g, cycles, false); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	deg, ok := g.IsRegular()
	if !ok {
		return nil, fmt.Errorf("core: %s is not regular", g.Name())
	}
	if 2*len(cycles) > deg {
		return nil, fmt.Errorf("core: %d cycles exceed degree %d of %s", len(cycles), deg, g.Name())
	}
	x := &IHC{g: g, undirected: cycles}
	for _, d := range hamilton.DirectedCycles(cycles) {
		// Anchor every directed cycle at N0 = node 0, so ID_j(v) is the
		// distance from N0 when traversing HC_j.
		anchored := d.Rotated(d.Positions()[0])
		x.directed = append(x.directed, anchored)
		double := make([]topology.Node, 0, 2*len(anchored))
		double = append(double, anchored...)
		double = append(double, anchored...)
		x.doubled = append(x.doubled, double)
		ids := make([]int, g.N())
		for i, v := range anchored {
			ids[v] = i
		}
		x.pos = append(x.pos, ids)
	}
	return x, nil
}

// Graph returns the underlying topology.
func (x *IHC) Graph() *topology.Graph { return x.g }

// N returns the node count.
func (x *IHC) N() int { return x.g.N() }

// Gamma returns the number of directed Hamiltonian cycles γ — the number
// of copies of every message each node receives, and hence the algorithm's
// fault-tolerance degree (t <= γ-1 with signed messages).
func (x *IHC) Gamma() int { return len(x.directed) }

// DirectedCycle returns directed cycle HC_{j+1} (0-indexed j), anchored at
// N0.
func (x *IHC) DirectedCycle(j int) hamilton.Cycle { return x.directed[j] }

// ID returns ID_j(v): the distance from N0 to v along directed cycle j.
func (x *IHC) ID(j int, v topology.Node) int { return x.pos[j][v] }

// checkEta rejects interleaving distances outside [1, N] with a
// descriptive error instead of letting `mod η` panic with a bare
// integer-divide error deep in a scheduling loop.
func (x *IHC) checkEta(eta int) error {
	if eta < 1 || eta > x.N() {
		return fmt.Errorf("core: interleaving distance η = %d out of range [1,%d] on %s", eta, x.N(), x.g.Name())
	}
	return nil
}

// checkCycle rejects directed-cycle indices outside [0, γ).
func (x *IHC) checkCycle(j int) error {
	if j < 0 || j >= x.Gamma() {
		return fmt.Errorf("core: cycle index %d out of range [0,%d) on %s", j, x.Gamma(), x.g.Name())
	}
	return nil
}

// InitiationPattern returns, for directed cycle j and interleaving
// distance η, the stage in which each node initiates its packet, indexed
// by position along the cycle — the paper's Fig. 6 pattern
// (0,1,...,η-1,0,1,... around the cycle). η must be in [1, N] and j in
// [0, γ).
func (x *IHC) InitiationPattern(j, eta int) ([]int, error) {
	if err := x.checkCycle(j); err != nil {
		return nil, err
	}
	if err := x.checkEta(eta); err != nil {
		return nil, err
	}
	out := make([]int, x.N())
	for i := range out {
		out[i] = i % eta
	}
	return out, nil
}

// route returns the N-node route of the packet that node at position p of
// directed cycle j initiates: from v around the cycle to prev_j(v). The
// slice aliases shared backing storage; callers must not modify it.
func (x *IHC) route(j, p int) []topology.Node {
	return x.doubled[j][p : p+x.N()]
}

// StagePackets returns the packets initiated in stage i with interleaving
// distance η on the given directed cycles (nil means all), injected at t0
// plus any per-node skew. η must be in [1, N], the stage in [0, η), and
// every cycle index in [0, γ).
func (x *IHC) StagePackets(cycles []int, stage, eta int, t0 simnet.Time, skew SkewFunc) ([]simnet.PacketSpec, error) {
	if err := x.checkEta(eta); err != nil {
		return nil, err
	}
	if stage < 0 || stage >= eta {
		return nil, fmt.Errorf("core: stage %d out of range [0,%d) for η = %d", stage, eta, eta)
	}
	if cycles == nil {
		cycles = allCycles(x.Gamma())
	}
	var specs []simnet.PacketSpec
	for _, j := range cycles {
		if err := x.checkCycle(j); err != nil {
			return nil, err
		}
		c := x.directed[j]
		for p := stage; p < len(c); p += eta {
			inject := t0
			if skew != nil {
				inject += skew(c[p], stage)
			}
			specs = append(specs, simnet.PacketSpec{
				ID:     simnet.PacketID{Source: c[p], Channel: j, Seq: stage},
				Route:  x.route(j, p),
				Inject: inject,
				Tee:    true,
			})
		}
	}
	return specs, nil
}

func allCycles(gamma int) []int {
	out := make([]int, gamma)
	for i := range out {
		out[i] = i
	}
	return out
}

// SkewFunc perturbs a node's injection time in a given stage, modeling
// loose synchronization. It must be non-negative.
type SkewFunc func(v topology.Node, stage int) simnet.Time

// Config selects how an ATA broadcast is executed.
type Config struct {
	// Eta is the interleaving distance η >= 1. η >= μ is required for
	// contention-free operation; smaller values are permitted so the
	// degradation is observable, as are values with N mod η != 0 (the
	// wrap-around seam then spaces two initiators closer than η).
	Eta int
	// Params are the network timing parameters.
	Params simnet.Params
	// Overlap enables the modified IHC algorithm: each stage starts
	// (μ-1)α before the previous one completes, saving (η-1)(μ-1)α
	// overall ((μ-1)²α at η = μ); stages run in reverse index order, as
	// the paper notes.
	Overlap bool
	// Saturated runs the heavy-traffic limiting regime (Table IV).
	Saturated bool
	// Cycles restricts the broadcast to a subset of the γ directed
	// cycles (reduced reliability/time trade-off); nil means all.
	Cycles []int
	// Skew optionally perturbs per-node injection times.
	Skew SkewFunc
	// PerCycle lets each cycle advance to its next stage as soon as its
	// own previous stage finished ("the nodes on cycle HC_j can start on
	// stage i+1 immediately"), rather than waiting for the slowest cycle.
	PerCycle bool
	// Start offsets the whole broadcast's first stage.
	Start simnet.Time
	// Copies disables the O(N²) delivery matrix when false-by-default
	// behavior is needed... (kept on by default through Run).
	SkipCopies bool
	// Scratch optionally supplies reusable simulator working memory,
	// shared by every stage of the run (and by subsequent runs that pass
	// the same Scratch). Nil borrows from simnet's internal pool. Must
	// not be shared by concurrent runs.
	Scratch *simnet.Scratch
	// Fault, when non-nil, injects faults into every stage's relay path
	// (see simnet.FaultHook and fault.TemporalPlan.Compile). Stage
	// chaining still uses each stage's measured finish time, so a drop
	// that shortens a stage shifts the following stages earlier — exactly
	// the behaviour a temporal plan wants graded.
	Fault simnet.FaultHook
	// RecordDeliveries collects every delivery (with its corruption flag)
	// across all stages into Result.Deliveriesv, in simulation order
	// within each stage run. Required by the timed reliability grader.
	RecordDeliveries bool
	// Control attaches an online controller to every stage's simulation
	// run (see simnet.Controller): it observes deliveries, sets timers,
	// and may inject recovery traffic mid-stage. The repair layer's
	// Manager is the canonical implementation. Nil is the fast path.
	Control simnet.Controller
	// PatchRoutes, when non-nil, is handed each stage's packet specs
	// before the stage is simulated and may replace individual Route
	// slices (never modify them in place — they alias shared backing
	// storage). The repair layer uses it to detour subsequent stages
	// around links it has diagnosed dead.
	PatchRoutes func(specs []simnet.PacketSpec)
	// Observe, when non-nil, streams every performed hop and delivery
	// of every stage to an observability sink (see simnet.Observer and
	// internal/observe: metrics aggregators, live theorem oracles,
	// trace exporters). Nil is the fast path.
	Observe simnet.Observer
	// EngineWorkers shards every stage's simulation across that many
	// worker goroutines (see simnet.Options.EngineWorkers). 0 or 1 runs
	// the sequential engine; results are byte-identical either way.
	// Incompatible with Control.
	EngineWorkers int
	// Ledger maintains the O(N) counters-only Theorem-4 copy ledger
	// (see simnet.CopyLedger) incrementally across every stage run,
	// exposed as Result.Ledger. Unlike the O(N²) Copies matrix its
	// footprint is two cache lines per node, so Q14+/Q16-scale runs can
	// verify the exact-γ-copies postcondition with bounded memory;
	// combine with SkipCopies for a fully counters-only run.
	Ledger bool
}

// Result aggregates an ATA broadcast execution.
type Result struct {
	Finish       simnet.Time   // completion of the whole ATA broadcast
	StageFinish  []simnet.Time // completion time of each stage (slowest cycle)
	Contentions  int           // broadcast-vs-broadcast link conflicts (0 when η >= μ, ρ = 0)
	BgBlocked    int           // hops delayed by background traffic
	CutThroughs  int
	BufferedHops int
	Stalls       int
	Injections   int
	Deliveries   int
	Events       int64 // simulator events processed across all stage runs (int64: Q16-scale runs exceed 32-bit counts)
	LinkBusy     simnet.Time
	FaultDrops   int                // copies killed in flight by the fault hook
	FaultTaints  int                // payload corruptions injected by the fault hook
	Copies       *simnet.CopyMatrix // nil when SkipCopies
	Ledger       *simnet.CopyLedger // populated only when Config.Ledger
	Deliveriesv  []simnet.Delivery  // populated only when RecordDeliveries
}

// Utilization returns the fraction of total link capacity (links x
// makespan) the broadcast operation used.
func (r *Result) Utilization(links int) float64 {
	if r.Finish <= 0 || links == 0 {
		return 0
	}
	return float64(r.LinkBusy) / (float64(links) * float64(r.Finish))
}

func (r *Result) absorb(s *simnet.Result) {
	if s.Finish > r.Finish {
		r.Finish = s.Finish
	}
	r.Contentions += s.Contentions
	r.BgBlocked += s.BgBlocked
	r.CutThroughs += s.CutThroughs
	r.BufferedHops += s.BufferedHops
	r.Stalls += s.Stalls
	r.Injections += s.Injections
	r.Deliveries += s.Deliveries
	r.Events += s.Events
	r.LinkBusy += s.LinkBusy
	r.FaultDrops += s.FaultDrops
	r.FaultTaints += s.FaultTaints
	if r.Copies != nil && s.Copies != nil {
		r.Copies.Merge(s.Copies)
	}
	r.Deliveriesv = append(r.Deliveriesv, s.Deliveriesv...)
}

func (x *IHC) validate(cfg *Config) error {
	if err := x.checkEta(cfg.Eta); err != nil {
		return err
	}
	if err := cfg.Params.Validate(); err != nil {
		return err
	}
	for _, j := range cfg.Cycles {
		if err := x.checkCycle(j); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the full ATA reliable broadcast on a fresh simulated
// network and returns the aggregate result. Stages are chained
// adaptively: stage i+1 starts when stage i finishes (per cycle if
// cfg.PerCycle), or (μ-1)α earlier with cfg.Overlap — so in a dedicated
// network the measured Finish equals the paper's Table II closed form
// with no analytic scheduling baked in.
func (x *IHC) Run(cfg Config) (*Result, error) {
	if err := x.validate(&cfg); err != nil {
		return nil, err
	}
	net, err := simnet.New(x.g, cfg.Params)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if !cfg.SkipCopies {
		res.Copies = simnet.NewCopyMatrix(x.N())
	}
	opts := simnet.Options{
		Copies:           !cfg.SkipCopies,
		Saturated:        cfg.Saturated,
		Fault:            cfg.Fault,
		RecordDeliveries: cfg.RecordDeliveries,
		Control:          cfg.Control,
		Observe:          cfg.Observe,
		EngineWorkers:    cfg.EngineWorkers,
	}
	if cfg.Ledger {
		// One ledger shared by every stage run: the engine only adds, so
		// chaining accumulates the whole broadcast's deliveries.
		res.Ledger = simnet.NewCopyLedger(x.N())
		opts.Ledger = res.Ledger
	}
	overlapLead := simnet.Time(0)
	if cfg.Overlap {
		overlapLead = simnet.Time(cfg.Params.Mu-1) * cfg.Params.Alpha
	}
	cycles := cfg.Cycles
	if cycles == nil {
		cycles = allCycles(x.Gamma())
	}
	stages := stageOrder(cfg.Eta, cfg.Overlap)
	paths := newPathCache(x, net)

	if cfg.PerCycle {
		for _, j := range cycles {
			start := cfg.Start
			for _, i := range stages {
				specs, err := x.StagePackets([]int{j}, i, cfg.Eta, start, cfg.Skew)
				if err != nil {
					return nil, err
				}
				if cfg.PatchRoutes != nil {
					cfg.PatchRoutes(specs)
				}
				if err := paths.attach(specs); err != nil {
					return nil, err
				}
				r, err := net.RunScratch(specs, opts, cfg.Scratch)
				if err != nil {
					return nil, err
				}
				res.absorb(r)
				start = r.Finish - overlapLead
			}
		}
		// StageFinish is not meaningful per-cycle; leave it empty.
		return res, nil
	}

	start := cfg.Start
	for _, i := range stages {
		specs, err := x.StagePackets(cycles, i, cfg.Eta, start, cfg.Skew)
		if err != nil {
			return nil, err
		}
		if cfg.PatchRoutes != nil {
			cfg.PatchRoutes(specs)
		}
		if err := paths.attach(specs); err != nil {
			return nil, err
		}
		r, err := net.RunScratch(specs, opts, cfg.Scratch)
		if err != nil {
			return nil, err
		}
		res.absorb(r)
		res.StageFinish = append(res.StageFinish, r.Finish)
		start = r.Finish - overlapLead
	}
	return res, nil
}

// pathCache shares one compiled route per directed doubled cycle across
// all N window routes that reference it — per spec the engine then skips
// per-hop adjacency resolution, and a run's compiled-route footprint
// drops from O(γN²) to O(γN). At the paper's Q16 headline (N = 65536,
// γ = 8) that is the difference between ~100 MB and ~140 GB of arc
// tables per stage. Cycles are compiled lazily on first use.
type pathCache struct {
	x     *IHC
	net   *simnet.Network
	paths []*simnet.CompiledPath // per directed cycle, nil until first used
}

func newPathCache(x *IHC, net *simnet.Network) *pathCache {
	return &pathCache{x: x, net: net, paths: make([]*simnet.CompiledPath, x.Gamma())}
}

// attach annotates each spec whose Route still is the canonical window of
// its cycle's doubled path with that path. Identity is established by
// slice identity (same backing array position and length), so a route a
// patcher replaced — e.g. the repair layer detouring a dead link — never
// matches and simply compiles per hop; no caller contract required.
func (pc *pathCache) attach(specs []simnet.PacketSpec) error {
	for i := range specs {
		s := &specs[i]
		j := s.ID.Channel
		if j < 0 || j >= len(pc.paths) || len(s.Route) != pc.x.N() {
			continue
		}
		p := pc.x.pos[j][s.ID.Source]
		if &s.Route[0] != &pc.x.doubled[j][p] {
			continue
		}
		if pc.paths[j] == nil {
			cp, err := pc.net.CompilePath(pc.x.doubled[j])
			if err != nil {
				return err
			}
			pc.paths[j] = cp
		}
		s.Path, s.PathOff = pc.paths[j], p
	}
	return nil
}

// stageOrder returns 0..η-1, or reversed when overlapping (the paper's
// modified IHC iterates the outer loop from η-1 down to 0). η < 1 yields
// no stages; callers validate η before scheduling.
func stageOrder(eta int, overlap bool) []int {
	if eta < 1 {
		return nil
	}
	out := make([]int, eta)
	for i := range out {
		if overlap {
			out[i] = eta - 1 - i
		} else {
			out[i] = i
		}
	}
	return out
}

// RunSequential executes the reduced mode for nodes that can only drive
// one incoming and one outgoing link at a time: k sequential invocations
// of the algorithm, one per directed cycle. Each node then receives k
// copies of every message (reliability/time trade-off, Section IV).
func (x *IHC) RunSequential(cfg Config, k int) (*Result, error) {
	if k < 1 || k > x.Gamma() {
		return nil, fmt.Errorf("core: k = %d out of range [1,%d]", k, x.Gamma())
	}
	res := &Result{}
	if !cfg.SkipCopies {
		res.Copies = simnet.NewCopyMatrix(x.N())
	}
	if cfg.Ledger {
		res.Ledger = simnet.NewCopyLedger(x.N())
	}
	start := cfg.Start
	for j := 0; j < k; j++ {
		sub := cfg
		sub.Cycles = []int{j}
		sub.Start = start
		r, err := x.Run(sub)
		if err != nil {
			return nil, err
		}
		res.Finish = r.Finish
		res.StageFinish = append(res.StageFinish, r.StageFinish...)
		res.Contentions += r.Contentions
		res.BgBlocked += r.BgBlocked
		res.CutThroughs += r.CutThroughs
		res.BufferedHops += r.BufferedHops
		res.Stalls += r.Stalls
		res.Injections += r.Injections
		res.Deliveries += r.Deliveries
		res.Events += r.Events
		res.LinkBusy += r.LinkBusy
		res.FaultDrops += r.FaultDrops
		res.FaultTaints += r.FaultTaints
		if res.Copies != nil && r.Copies != nil {
			res.Copies.Merge(r.Copies)
		}
		if res.Ledger != nil && r.Ledger != nil {
			res.Ledger.Merge(r.Ledger)
		}
		res.Deliveriesv = append(res.Deliveriesv, r.Deliveriesv...)
		start = r.Finish
	}
	return res, nil
}

// StaticSchedule builds the complete ideal-time packet schedule (all
// stages, analytic stage starts) for offline analysis, and returns it
// together with the per-stage start times.
func (x *IHC) StaticSchedule(cfg Config) ([]simnet.PacketSpec, []simnet.Time, error) {
	if err := x.validate(&cfg); err != nil {
		return nil, nil, err
	}
	p := cfg.Params
	stageTime := p.TauS + p.PacketTime() + simnet.Time(x.N()-2)*p.Alpha
	step := stageTime
	if cfg.Overlap {
		step -= simnet.Time(p.Mu-1) * p.Alpha
	}
	var specs []simnet.PacketSpec
	var starts []simnet.Time
	start := cfg.Start
	for _, i := range stageOrder(cfg.Eta, cfg.Overlap) {
		starts = append(starts, start)
		stage, err := x.StagePackets(cfg.Cycles, i, cfg.Eta, start, cfg.Skew)
		if err != nil {
			return nil, nil, err
		}
		specs = append(specs, stage...)
		start += step
	}
	return specs, starts, nil
}

// VerifyContentionFree statically checks the IHC invariant for the given
// configuration: with ideal cut-through timing, no two packets of the
// schedule ever occupy the same directed link at the same time. A
// configuration with η < μ violates the paper's contention-freedom
// precondition outright and is reported as such before any interval
// analysis runs.
func (x *IHC) VerifyContentionFree(cfg Config) error {
	if err := x.validate(&cfg); err != nil {
		return err
	}
	if cfg.Eta < cfg.Params.Mu {
		return fmt.Errorf("core: η = %d < μ = %d: contention-free operation requires interleaving distance η >= packet length μ",
			cfg.Eta, cfg.Params.Mu)
	}
	specs, _, err := x.StaticSchedule(cfg)
	if err != nil {
		return err
	}
	return sched.Verify(cfg.Params, specs)
}
