package core

import (
	"strings"
	"testing"
	"testing/quick"

	"ihc/internal/hamilton"
	"ihc/internal/model"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

func params(mu int) simnet.Params {
	return simnet.Params{TauS: 100, Alpha: 20, Mu: mu, D: 37}
}

func modelParams(p simnet.Params) model.Params {
	return model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
}

func mustIHC(t *testing.T, g *topology.Graph) *IHC {
	t.Helper()
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNewValidation(t *testing.T) {
	g := topology.MustHypercube(4)
	cycles, err := hamilton.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, nil); err == nil {
		t.Fatal("empty cycle set accepted")
	}
	if _, err := New(g, []hamilton.Cycle{cycles[0][:10]}); err == nil {
		t.Fatal("truncated cycle accepted")
	}
	if _, err := New(g, []hamilton.Cycle{cycles[0], cycles[1], cycles[0]}); err == nil {
		t.Fatal("3 cycles on degree-4 graph accepted")
	}
	irregular := topology.New("irr", 4)
	irregular.AddEdge(0, 1)
	irregular.AddEdge(1, 2)
	irregular.AddEdge(2, 3)
	irregular.AddEdge(3, 0)
	irregular.AddEdge(0, 2)
	if _, err := New(irregular, []hamilton.Cycle{{0, 1, 2, 3}}); err == nil {
		t.Fatal("irregular graph accepted")
	}
}

func TestIDAndPattern(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(4))
	if x.Gamma() != 4 {
		t.Fatalf("gamma = %d", x.Gamma())
	}
	for j := 0; j < x.Gamma(); j++ {
		c := x.DirectedCycle(j)
		if c[0] != 0 {
			t.Fatalf("cycle %d not anchored at N0", j)
		}
		for i, v := range c {
			if x.ID(j, v) != i {
				t.Fatalf("ID_%d(%d) = %d, want %d", j, v, x.ID(j, v), i)
			}
		}
	}
	pat, err := x.InitiationPattern(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range pat {
		if s != i%3 {
			t.Fatalf("pattern[%d] = %d", i, s)
		}
	}
}

// The η guards: before the fix, InitiationPattern and StagePackets
// divided/modded by η unchecked, so η = 0 panicked with an integer divide
// and η < 0 silently produced an empty schedule that "verified" as
// contention-free.
func TestEtaValidation(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(4))
	for _, tc := range []struct {
		eta  int
		ok   bool
		name string
	}{
		{0, false, "zero"},
		{-1, false, "negative"},
		{17, false, "beyond N"},
		{1, true, "minimum"},
		{2, true, "eta equals mu"},
		{16, true, "maximum N"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, patErr := x.InitiationPattern(0, tc.eta)
			_, spErr := x.StagePackets(nil, 0, tc.eta, 0, nil)
			_, runErr := x.Run(Config{Eta: tc.eta, Params: params(2), SkipCopies: true})
			if tc.ok {
				if patErr != nil || spErr != nil || runErr != nil {
					t.Fatalf("η=%d rejected: %v / %v / %v", tc.eta, patErr, spErr, runErr)
				}
				return
			}
			if patErr == nil {
				t.Errorf("InitiationPattern accepted η=%d", tc.eta)
			}
			if spErr == nil {
				t.Errorf("StagePackets accepted η=%d", tc.eta)
			}
			if runErr == nil {
				t.Errorf("Run accepted η=%d", tc.eta)
			}
		})
	}
	if _, err := x.StagePackets(nil, 2, 2, 0, nil); err == nil {
		t.Error("stage = η accepted")
	}
	if _, err := x.StagePackets(nil, -1, 2, 0, nil); err == nil {
		t.Error("negative stage accepted")
	}
	if _, err := x.StagePackets([]int{7}, 0, 2, 0, nil); err == nil {
		t.Error("out-of-range cycle index accepted")
	}
	if _, err := x.InitiationPattern(4, 2); err == nil {
		t.Error("out-of-range cycle index accepted by InitiationPattern")
	}
	if stageOrder(0, false) != nil || stageOrder(-3, true) != nil {
		t.Error("stageOrder built a schedule for η < 1")
	}
	// Contention-freedom requires η >= μ; the checker must say so rather
	// than run the schedule.
	err := x.VerifyContentionFree(Config{Eta: 1, Params: params(2)})
	if err == nil || !strings.Contains(err.Error(), "η >= packet length μ") {
		t.Errorf("VerifyContentionFree(η<μ) = %v", err)
	}
	if err := x.VerifyContentionFree(Config{Eta: 2, Params: params(2)}); err != nil {
		t.Errorf("VerifyContentionFree(η=μ) = %v", err)
	}
}

func TestStagePacketsStructure(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	specs, err := x.StagePackets(nil, 1, 2, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 directed cycles x 8 sources (positions 1,3,...,15).
	if len(specs) != 4*8 {
		t.Fatalf("got %d packets", len(specs))
	}
	for _, s := range specs {
		if len(s.Route) != 16 {
			t.Fatalf("route length %d", len(s.Route))
		}
		if !s.Tee {
			t.Fatal("IHC packets must tee")
		}
		if s.Inject != 50 {
			t.Fatalf("inject = %d", s.Inject)
		}
		if x.ID(s.ID.Channel, s.ID.Source)%2 != 1 {
			t.Fatalf("packet %v not a stage-1 source", s.ID)
		}
		// Route must follow the cycle: last node is prev_j(source).
		c := x.DirectedCycle(s.ID.Channel)
		p := x.ID(s.ID.Channel, s.ID.Source)
		if s.Route[15] != c.Prev(p) {
			t.Fatalf("route end %d != prev %d", s.Route[15], c.Prev(p))
		}
	}
}

// The central claims, on all three topology families: with η >= μ and a
// dedicated network the run is contention-free, every relay cuts through,
// every node gets exactly γ copies of every message, and the measured
// time equals Table II's closed form.
func TestDedicatedRunMatchesTableII(t *testing.T) {
	cases := []struct {
		g   *topology.Graph
		eta int
		mu  int
	}{
		{topology.MustHypercube(4), 2, 2},
		{topology.MustHypercube(4), 4, 4},
		{topology.MustHypercube(5), 2, 2},
		{topology.MustHypercube(6), 2, 2},
		{topology.MustSquareTorus(4), 2, 2},
		{topology.MustSquareTorus(6), 3, 3},
		{topology.MustSquareTorus(5), 5, 5},
		{topology.MustHexMesh(3), 1, 1},
		{topology.MustHexMesh(4), 1, 1},
	}
	for _, tc := range cases {
		x := mustIHC(t, tc.g)
		p := params(tc.mu)
		cfg := Config{Eta: tc.eta, Params: p}
		if err := x.VerifyContentionFree(cfg); err != nil {
			t.Fatalf("%s η=%d μ=%d: static check: %v", tc.g.Name(), tc.eta, tc.mu, err)
		}
		res, err := x.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := tc.g.N()
		if res.Contentions != 0 {
			t.Fatalf("%s η=%d μ=%d: %d contentions", tc.g.Name(), tc.eta, tc.mu, res.Contentions)
		}
		want := model.IHCBest(modelParams(p), n, tc.eta)
		if res.Finish != want {
			t.Fatalf("%s η=%d μ=%d: finish = %d, want %d", tc.g.Name(), tc.eta, tc.mu, res.Finish, want)
		}
		if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
			t.Fatalf("%s: %v", tc.g.Name(), err)
		}
		// All non-injection hops were cut-throughs: γN packets, N-1 hops
		// each, of which the first is the injection.
		wantCuts := x.Gamma() * n * (n - 2)
		if res.CutThroughs != wantCuts {
			t.Fatalf("%s: cut-throughs = %d, want %d", tc.g.Name(), res.CutThroughs, wantCuts)
		}
	}
}

// Theorem 4: with η = μ = 1 the measured time equals the optimality bound
// τ_S + (N-1)α exactly.
func TestTheorem4Optimality(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.MustHypercube(4),
		topology.MustHypercube(6),
		topology.MustSquareTorus(5),
		topology.MustHexMesh(3),
	} {
		x := mustIHC(t, g)
		p := params(1)
		res, err := x.Run(Config{Eta: 1, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		want := model.OptimalATATime(modelParams(p), g.N())
		if res.Finish != want {
			t.Fatalf("%s: finish = %d, bound %d", g.Name(), res.Finish, want)
		}
	}
}

// η < μ must contend (negative control for the interleaving invariant).
func TestEtaBelowMuContends(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(4))
	res, err := x.Run(Config{Eta: 1, Params: params(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contentions == 0 {
		t.Fatal("η=1 < μ=2 ran without contention")
	}
	// Delivery is still complete and correct — contention costs time, not
	// correctness.
	if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
		t.Fatal(err)
	}
	if err := x.VerifyContentionFree(Config{Eta: 1, Params: params(2)}); err == nil {
		t.Fatal("static analysis missed η<μ contention")
	}
}

// The modified (overlapped) IHC saves exactly (η-1)(μ-1)α and stays
// contention-free.
func TestOverlappedStages(t *testing.T) {
	for _, tc := range []struct {
		g   *topology.Graph
		eta int
	}{
		{topology.MustHypercube(4), 2},
		{topology.MustHypercube(4), 4},
		{topology.MustSquareTorus(6), 3},
	} {
		x := mustIHC(t, tc.g)
		p := params(tc.eta) // η = μ
		plain, err := x.Run(Config{Eta: tc.eta, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		over, err := x.Run(Config{Eta: tc.eta, Params: p, Overlap: true})
		if err != nil {
			t.Fatal(err)
		}
		if over.Contentions != 0 {
			t.Fatalf("%s η=μ=%d overlapped: %d contentions", tc.g.Name(), tc.eta, over.Contentions)
		}
		saving := plain.Finish - over.Finish
		want := simnet.Time((tc.eta-1)*(p.Mu-1)) * p.Alpha
		if saving != want {
			t.Fatalf("%s η=μ=%d: saving = %d, want %d", tc.g.Name(), tc.eta, saving, want)
		}
		if err := over.Copies.VerifyATA(x.Gamma()); err != nil {
			t.Fatal(err)
		}
		want2 := model.IHCBestOverlapped(modelParams(p), tc.g.N(), tc.eta)
		if over.Finish != want2 {
			t.Fatalf("%s: overlapped finish %d != model %d", tc.g.Name(), over.Finish, want2)
		}
	}
}

// Saturated regime reproduces Table IV exactly.
func TestSaturatedMatchesTableIV(t *testing.T) {
	for _, eta := range []int{1, 2, 4} {
		x := mustIHC(t, topology.MustHypercube(4))
		p := params(2)
		res, err := x.Run(Config{Eta: eta, Params: p, Saturated: true})
		if err != nil {
			t.Fatal(err)
		}
		want := model.IHCWorst(modelParams(p), 16, eta)
		if res.Finish != want {
			t.Fatalf("η=%d: saturated finish = %d, want %d", eta, res.Finish, want)
		}
		if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
			t.Fatal(err)
		}
	}
}

// Background traffic slows the broadcast but never past the Table IV
// bound's regime, and delivery stays complete.
func TestLoadedNetworkDegradesGracefully(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	p := params(2)
	p.Rho = 0.4
	p.Seed = 11
	res, err := x.Run(Config{Eta: 2, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	clean := model.IHCBest(modelParams(params(2)), 16, 2)
	if res.Finish <= clean {
		t.Fatalf("loaded run %d not slower than dedicated %d", res.Finish, clean)
	}
	if res.BgBlocked == 0 {
		t.Fatal("no background blocking at ρ=0.4")
	}
	if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
		t.Fatal(err)
	}
}

// Injection skew stretches time but does not break correctness or cause
// packet loss ("it merely affects the amount of time required").
func TestSkewToleratedCorrectly(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	p := params(2)
	skew := func(v topology.Node, stage int) simnet.Time {
		return simnet.Time(v%5) * 7 // deterministic jitter up to 28 ticks
	}
	res, err := x.Run(Config{Eta: 2, Params: p, Skew: skew})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
		t.Fatal(err)
	}
	base := model.IHCBest(modelParams(p), 16, 2)
	if res.Finish < base {
		t.Fatalf("skewed run finished before dedicated bound")
	}
}

// Per-cycle stage chaining produces the same result in a dedicated
// network (all cycles advance in lockstep anyway).
func TestPerCycleChainingDedicated(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(4))
	p := params(2)
	a, err := x.Run(Config{Eta: 2, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	b, err := x.Run(Config{Eta: 2, Params: p, PerCycle: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Finish != b.Finish || a.Contentions != b.Contentions {
		t.Fatalf("per-cycle %d/%d vs batch %d/%d", b.Finish, b.Contentions, a.Finish, a.Contentions)
	}
	if err := b.Copies.VerifyATA(x.Gamma()); err != nil {
		t.Fatal(err)
	}
}

// Sequential invocation over k < γ cycles: k copies per message, k times
// the single-cycle duration.
func TestRunSequentialReducedReliability(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(4))
	p := params(2)
	for k := 1; k <= 4; k++ {
		res, err := x.RunSequential(Config{Eta: 2, Params: p}, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Copies.VerifyATA(k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := simnet.Time(k) * model.IHCBest(modelParams(p), 16, 2)
		if res.Finish != want {
			t.Fatalf("k=%d: finish = %d, want %d", k, res.Finish, want)
		}
	}
	if _, err := x.RunSequential(Config{Eta: 2, Params: p}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := x.RunSequential(Config{Eta: 2, Params: p}, 5); err == nil {
		t.Fatal("k>γ accepted")
	}
}

func TestRunValidation(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(4))
	if _, err := x.Run(Config{Eta: 0, Params: params(1)}); err == nil {
		t.Fatal("η=0 accepted")
	}
	if _, err := x.Run(Config{Eta: 17, Params: params(1)}); err == nil {
		t.Fatal("η>N accepted")
	}
	bad := params(1)
	bad.Alpha = 0
	if _, err := x.Run(Config{Eta: 1, Params: bad}); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := x.Run(Config{Eta: 1, Params: params(1), Cycles: []int{9}}); err == nil {
		t.Fatal("bad cycle index accepted")
	}
}

// Property: for random η >= μ dividing N, dedicated hypercube runs are
// contention-free and match the model.
func TestQuickDedicatedInvariant(t *testing.T) {
	x := mustIHC(t, topology.MustHypercube(4))
	f := func(etaRaw, muRaw uint8) bool {
		eta := []int{1, 2, 4, 8, 16}[int(etaRaw)%5]
		mu := int(muRaw)%eta + 1 // μ <= η
		p := params(mu)
		res, err := x.Run(Config{Eta: eta, Params: p, SkipCopies: true})
		if err != nil {
			return false
		}
		return res.Contentions == 0 &&
			res.Finish == model.IHCBest(modelParams(p), 16, eta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of injected packets is γN regardless of η, and
// deliveries total γN(N-1).
func TestQuickPacketAccounting(t *testing.T) {
	x := mustIHC(t, topology.MustSquareTorus(4))
	f := func(etaRaw uint8) bool {
		eta := []int{1, 2, 4, 8, 16}[int(etaRaw)%5]
		p := params(1)
		res, err := x.Run(Config{Eta: eta, Params: p, SkipCopies: true})
		if err != nil {
			return false
		}
		n := 16
		return res.Injections == x.Gamma()*n && res.Deliveries == x.Gamma()*n*(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
