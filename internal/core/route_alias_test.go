package core

import (
	"testing"

	"ihc/internal/hamilton"
	"ihc/internal/topology"
)

// TestStagePacketsShareRouteBacking pins the schedule-memory contract:
// every packet's Route is a window into its directed cycle's shared
// doubled buffer, not a per-packet copy — O(N·γ) schedule memory rather
// than O(N²·γ). With η=1 all N nodes of a cycle initiate in stage 0 at
// consecutive positions, so adjacent specs' routes must overlap
// element-for-element in the same backing array.
func TestStagePacketsShareRouteBacking(t *testing.T) {
	g := topology.MustHypercube(4)
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := x.StagePackets([]int{0}, 0, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != g.N() {
		t.Fatalf("%d specs, want %d", len(specs), g.N())
	}
	for i := 0; i+1 < len(specs); i++ {
		a, b := specs[i].Route, specs[i+1].Route
		if len(a) != g.N() || len(b) != g.N() {
			t.Fatalf("route lengths %d/%d, want %d", len(a), len(b), g.N())
		}
		// Packet i+1 starts one position later on the same cycle, so its
		// route is packet i's route shifted by one — same memory.
		if &a[1] != &b[0] {
			t.Fatalf("specs %d and %d do not share route backing storage", i, i+1)
		}
	}
}
