// Package message implements the "practical issues" the paper's
// conclusion defers: the packet format, the relay stop rules, and message
// reconstruction and control for the IHC algorithm.
//
//   - Packet format: a fixed binary header (source, directed-cycle id,
//     stage, fragment index/count, the routing tag carrying the last
//     node to relay, payload length), an optional 32-byte HMAC trailer
//     for signed operation, and a payload of at most μ·B_FIFO minus
//     overhead bytes.
//   - Stop rules: Section IV gives two ways for a node to know when to
//     stop relaying a cycle's packets — counting the packets passed, or
//     checking the routing-tag "address of the last node" planted by the
//     source. Both are implemented and proven equivalent on cycle routes.
//   - Reconstruction: applications broadcast messages longer than one
//     packet by fragmenting them across successive IHC invocations; the
//     Reassembler collects the γ redundant copies of every fragment,
//     deduplicates, and reconstructs each source's message.
package message

import (
	"encoding/binary"
	"fmt"

	"ihc/internal/topology"
)

// HeaderSize is the encoded size of a packet header in bytes.
const HeaderSize = 12

// MACSize is the size of the optional authentication trailer.
const MACSize = 32

// Header is the fixed routing/control header of an IHC broadcast packet.
type Header struct {
	Source  uint16 // originating node
	Channel uint8  // directed Hamiltonian cycle index (1..γ in the paper)
	Stage   uint8  // interleaving stage the packet was injected in
	Frag    uint16 // fragment index within the source's message
	Total   uint16 // total fragments of the source's message (>= 1)
	TagLast uint16 // routing tag: the last node that relays this packet
	PayLen  uint16 // payload length in bytes
}

// Packet is a header plus payload and optional MAC.
type Packet struct {
	Header  Header
	Payload []byte
	MAC     []byte // nil or MACSize bytes
}

// Encode serializes the packet. The wire layout is little-endian:
// source(2) channel(1) stage(1) frag(2) total(2) tag(2) paylen(2)
// payload(paylen) [mac(32)].
func (p *Packet) Encode() ([]byte, error) {
	if len(p.Payload) != int(p.Header.PayLen) {
		return nil, fmt.Errorf("message: payload length %d != header PayLen %d", len(p.Payload), p.Header.PayLen)
	}
	if p.MAC != nil && len(p.MAC) != MACSize {
		return nil, fmt.Errorf("message: MAC length %d != %d", len(p.MAC), MACSize)
	}
	if p.Header.Total == 0 {
		return nil, fmt.Errorf("message: Total must be >= 1")
	}
	if p.Header.Frag >= p.Header.Total {
		return nil, fmt.Errorf("message: Frag %d out of range [0,%d)", p.Header.Frag, p.Header.Total)
	}
	out := make([]byte, 0, HeaderSize+len(p.Payload)+len(p.MAC))
	var h [HeaderSize]byte
	binary.LittleEndian.PutUint16(h[0:], p.Header.Source)
	h[2] = p.Header.Channel
	h[3] = p.Header.Stage
	binary.LittleEndian.PutUint16(h[4:], p.Header.Frag)
	binary.LittleEndian.PutUint16(h[6:], p.Header.Total)
	binary.LittleEndian.PutUint16(h[8:], p.Header.TagLast)
	binary.LittleEndian.PutUint16(h[10:], p.Header.PayLen)
	out = append(out, h[:]...)
	out = append(out, p.Payload...)
	out = append(out, p.MAC...)
	return out, nil
}

// Decode parses a packet. withMAC selects whether a MAC trailer is
// expected (the whole network runs signed or unsigned, so the format is
// not self-describing — exactly one byte length is valid either way).
func Decode(buf []byte, withMAC bool) (*Packet, error) {
	if len(buf) < HeaderSize {
		return nil, fmt.Errorf("message: %d bytes, need at least %d", len(buf), HeaderSize)
	}
	var p Packet
	p.Header.Source = binary.LittleEndian.Uint16(buf[0:])
	p.Header.Channel = buf[2]
	p.Header.Stage = buf[3]
	p.Header.Frag = binary.LittleEndian.Uint16(buf[4:])
	p.Header.Total = binary.LittleEndian.Uint16(buf[6:])
	p.Header.TagLast = binary.LittleEndian.Uint16(buf[8:])
	p.Header.PayLen = binary.LittleEndian.Uint16(buf[10:])
	want := HeaderSize + int(p.Header.PayLen)
	if withMAC {
		want += MACSize
	}
	if len(buf) != want {
		return nil, fmt.Errorf("message: %d bytes, header implies %d", len(buf), want)
	}
	if p.Header.Total == 0 || p.Header.Frag >= p.Header.Total {
		return nil, fmt.Errorf("message: bad fragment bounds %d/%d", p.Header.Frag, p.Header.Total)
	}
	p.Payload = append([]byte(nil), buf[HeaderSize:HeaderSize+int(p.Header.PayLen)]...)
	if withMAC {
		p.MAC = append([]byte(nil), buf[HeaderSize+int(p.Header.PayLen):]...)
	}
	return &p, nil
}

// PayloadCapacity returns how many payload bytes fit in a packet of
// μ·bFIFO bytes total, with or without the MAC trailer. It is an error
// (returned as 0) if the packet cannot even hold the header.
func PayloadCapacity(mu, bFIFO int, withMAC bool) int {
	c := mu*bFIFO - HeaderSize
	if withMAC {
		c -= MACSize
	}
	if c < 0 {
		return 0
	}
	return c
}

// --- Stop rules (Section IV) ---

// StopByCount reports whether a node should stop relaying after having
// relayed `relayed` packets of one cycle's stage: each stage of the IHC
// algorithm moves each packet N-1 hops, so a node relays a given packet
// until it has passed through N-2 intermediate relays... concretely, a
// node relays each packet of its cycle exactly once, and a packet dies
// at its N-1-th receiver: the receiver at distance N-1 from the source
// (= the source's cycle predecessor) does not relay. hops is the
// distance (along the directed cycle) from the packet's source to the
// current node.
func StopByCount(hops, n int) bool { return hops >= n-1 }

// StopByTag reports whether the current node should stop relaying the
// packet according to its routing tag: the source planted the address of
// the last node to receive it (its cycle predecessor).
func StopByTag(h Header, self topology.Node) bool {
	return topology.Node(h.TagLast) == self
}

// TagFor returns the routing tag a source at position pos of directed
// cycle c must plant: its predecessor on the cycle.
func TagFor(c []topology.Node, pos int) topology.Node {
	return c[(pos-1+len(c))%len(c)]
}

// --- Fragmentation and reassembly ---

// Split fragments an application message into payloads of at most
// capacity bytes. A nil or empty message still produces one (empty)
// fragment, so every node participates in every round. It is an error if
// the message needs more than 65535 fragments.
func Split(msg []byte, capacity int) ([][]byte, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("message: payload capacity %d", capacity)
	}
	if len(msg) == 0 {
		return [][]byte{{}}, nil
	}
	total := (len(msg) + capacity - 1) / capacity
	if total > 0xffff {
		return nil, fmt.Errorf("message: %d fragments exceed the 16-bit fragment space", total)
	}
	out := make([][]byte, 0, total)
	for off := 0; off < len(msg); off += capacity {
		end := off + capacity
		if end > len(msg) {
			end = len(msg)
		}
		out = append(out, msg[off:end])
	}
	return out, nil
}

// Reassembler reconstructs per-source messages from fragments, tolerating
// the γ duplicate copies the IHC algorithm delivers and out-of-order
// arrival. It is used per receiving node.
type Reassembler struct {
	sources map[uint16]*partial
}

type partial struct {
	total uint16
	frags [][]byte
	have  int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{sources: make(map[uint16]*partial)}
}

// Accept ingests one packet copy. Duplicates are ignored; conflicting
// metadata (same source, different Total) or conflicting fragment content
// is an error — with signed packets that can only happen on a corrupted
// copy the caller failed to filter.
func (r *Reassembler) Accept(p *Packet) error {
	st, ok := r.sources[p.Header.Source]
	if !ok {
		st = &partial{total: p.Header.Total, frags: make([][]byte, p.Header.Total)}
		r.sources[p.Header.Source] = st
	}
	if st.total != p.Header.Total {
		return fmt.Errorf("message: source %d fragment count changed %d -> %d", p.Header.Source, st.total, p.Header.Total)
	}
	if prev := st.frags[p.Header.Frag]; prev != nil {
		if string(prev) != string(p.Payload) {
			return fmt.Errorf("message: source %d fragment %d content conflict", p.Header.Source, p.Header.Frag)
		}
		return nil // duplicate copy, expected with γ-redundant delivery
	}
	// Store non-nil even for empty payloads: nil marks "not received".
	st.frags[p.Header.Frag] = append(make([]byte, 0, len(p.Payload)), p.Payload...)
	st.have++
	return nil
}

// Complete reports whether source's message is fully received.
func (r *Reassembler) Complete(source topology.Node) bool {
	st, ok := r.sources[uint16(source)]
	return ok && st.have == int(st.total)
}

// Message returns source's reconstructed message; ok is false until all
// fragments arrived.
func (r *Reassembler) Message(source topology.Node) ([]byte, bool) {
	st, ok := r.sources[uint16(source)]
	if !ok || st.have != int(st.total) {
		return nil, false
	}
	var out []byte
	for _, f := range st.frags {
		out = append(out, f...)
	}
	return out, true
}

// Sources returns how many sources have contributed at least one
// fragment.
func (r *Reassembler) Sources() int { return len(r.sources) }
