package message

import (
	"bytes"
	"fmt"
	"testing"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/model"
	"ihc/internal/reliable"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

func mustIHC(t *testing.T, g *topology.Graph) *core.IHC {
	t.Helper()
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func params() simnet.Params {
	return simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
}

// End-to-end multi-round exchange: every node broadcasts a message longer
// than one packet; every node reconstructs all N messages exactly; the
// total time is rounds x the Table II per-invocation time.
func TestBroadcastMultiRound(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	n := g.N()
	const bFIFO = 16 // packet = μ·B_FIFO = 32 bytes; 20 payload bytes unsigned
	msgs := make([][]byte, n)
	for v := range msgs {
		msgs[v] = []byte(fmt.Sprintf("node-%02d says: %s", v, bytes.Repeat([]byte{byte('a' + v)}, 30)))
	}
	p := params()
	res, err := Broadcast(x, msgs, p, 2, bFIFO, nil)
	if err != nil {
		t.Fatal(err)
	}
	capacity := PayloadCapacity(p.Mu, bFIFO, false)
	wantRounds := (len(msgs[0]) + capacity - 1) / capacity
	if res.Rounds != wantRounds {
		t.Fatalf("rounds = %d, want %d", res.Rounds, wantRounds)
	}
	if res.Contentions != 0 {
		t.Fatalf("contentions = %d", res.Contentions)
	}
	mp := model.Params{TauS: p.TauS, Alpha: p.Alpha, Mu: p.Mu, D: p.D}
	want := simnet.Time(res.Rounds) * model.IHCBest(mp, n, 2)
	if res.Finish != want {
		t.Fatalf("finish = %d, want rounds x T_IHC = %d", res.Finish, want)
	}
	for v := 0; v < n; v++ {
		for s := 0; s < n; s++ {
			if v == s {
				continue
			}
			if !bytes.Equal(res.Messages[v][s], msgs[s]) {
				t.Fatalf("node %d reconstructed source %d wrong: %q", v, s, res.Messages[v][s])
			}
		}
	}
}

// Mixed message lengths: short senders pad by re-sending their last
// fragment; reconstruction still exact.
func TestBroadcastMixedLengths(t *testing.T) {
	g := topology.MustHypercube(3)
	x := mustIHC(t, g)
	msgs := [][]byte{
		[]byte("a"),
		bytes.Repeat([]byte("long"), 20),
		{},
		[]byte("medium message"),
		bytes.Repeat([]byte("x"), 41),
		[]byte("b"),
		[]byte("c"),
		bytes.Repeat([]byte("zz"), 15),
	}
	res, err := Broadcast(x, msgs, params(), 2, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		for s := 0; s < 8; s++ {
			if v == s {
				continue
			}
			if !bytes.Equal(res.Messages[v][s], msgs[s]) {
				t.Fatalf("node %d got %q for source %d, want %q", v, res.Messages[v][s], s, msgs[s])
			}
		}
	}
}

// Signed operation: MACs ride in the packets, capacity shrinks, nothing
// is rejected in a fault-free network, and reconstruction is exact.
func TestBroadcastSigned(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	n := g.N()
	kr := reliable.NewKeyring(n, 99)
	msgs := make([][]byte, n)
	for v := range msgs {
		msgs[v] = bytes.Repeat([]byte{byte(v + 1)}, 25)
	}
	res, err := Broadcast(x, msgs, params(), 2, 32, kr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected %d copies in a fault-free run", res.Rejected)
	}
	for v := 0; v < n; v++ {
		for s := 0; s < n; s++ {
			if v != s && !bytes.Equal(res.Messages[v][s], msgs[s]) {
				t.Fatalf("signed reconstruction wrong at (%d,%d)", v, s)
			}
		}
	}
}

func TestBroadcastValidation(t *testing.T) {
	g := topology.MustSquareTorus(4)
	x := mustIHC(t, g)
	if _, err := Broadcast(x, make([][]byte, 3), params(), 2, 16, nil); err == nil {
		t.Fatal("wrong message count accepted")
	}
	// Packet too small for the header.
	if _, err := Broadcast(x, make([][]byte, 16), params(), 2, 4, nil); err == nil {
		t.Fatal("tiny packet accepted")
	}
}
