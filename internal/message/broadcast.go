package message

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/reliable"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// BroadcastResult reports a multi-round all-to-all message exchange.
type BroadcastResult struct {
	Rounds      int
	Finish      simnet.Time // completion of the last round
	Contentions int
	// Messages[v][s] is node v's reconstruction of node s's message.
	Messages [][][]byte
	// Rejected counts signed copies discarded for bad MACs (0 without
	// fault injection).
	Rejected int
}

// Broadcast performs a complete application-level all-to-all exchange of
// arbitrary-length messages over repeated IHC invocations: every node's
// message is fragmented into packets of μ·bFIFO bytes (less header/MAC
// overhead), one IHC ATA broadcast carries fragment round f of every
// node, and per-node reassemblers rebuild all N messages from the
// γ-redundant copies. Nodes whose message is shorter than the longest
// one re-send their final fragment in the surplus rounds, keeping every
// stage fully populated (the interleaving invariant assumes every node
// initiates).
//
// When kr is non-nil the exchange runs signed: every fragment carries an
// HMAC and receivers reject copies that fail verification.
func Broadcast(x *core.IHC, msgs [][]byte, p simnet.Params, eta, bFIFO int, kr *reliable.Keyring) (*BroadcastResult, error) {
	n := x.N()
	if len(msgs) != n {
		return nil, fmt.Errorf("message: %d messages for %d nodes", len(msgs), n)
	}
	capacity := PayloadCapacity(p.Mu, bFIFO, kr != nil)
	if capacity <= 0 {
		return nil, fmt.Errorf("message: packet size μ·B_FIFO = %d cannot hold the %d-byte header%s",
			p.Mu*bFIFO, HeaderSize, map[bool]string{true: " + MAC", false: ""}[kr != nil])
	}

	frags := make([][][]byte, n)
	rounds := 0
	for v := range msgs {
		f, err := Split(msgs[v], capacity)
		if err != nil {
			return nil, fmt.Errorf("message: node %d: %w", v, err)
		}
		frags[v] = f
		if len(f) > rounds {
			rounds = len(f)
		}
	}

	res := &BroadcastResult{Rounds: rounds}
	reasm := make([]*Reassembler, n)
	for v := range reasm {
		reasm[v] = NewReassembler()
	}

	start := simnet.Time(0)
	for round := 0; round < rounds; round++ {
		run, err := x.Run(core.Config{Eta: eta, Params: p, Start: start})
		if err != nil {
			return nil, fmt.Errorf("message: round %d: %w", round, err)
		}
		if err := run.Copies.VerifyATA(x.Gamma()); err != nil {
			return nil, fmt.Errorf("message: round %d delivery: %w", round, err)
		}
		res.Finish = run.Finish
		res.Contentions += run.Contentions
		start = run.Finish

		// Content plane: the verified γ-copy delivery carries, for every
		// source, its round-th fragment (clamped: short messages re-send
		// their last fragment).
		for s := 0; s < n; s++ {
			fi := round
			if fi >= len(frags[s]) {
				fi = len(frags[s]) - 1
			}
			pkt := Packet{
				Header: Header{
					Source: uint16(s),
					Frag:   uint16(fi),
					Total:  uint16(len(frags[s])),
					PayLen: uint16(len(frags[s][fi])),
				},
				Payload: frags[s][fi],
			}
			if kr != nil {
				signed, err := kr.Sign(reliable.Message{Source: topology.Node(s), Payload: pkt.Payload})
				if err != nil {
					return nil, fmt.Errorf("message: round %d source %d: %w", round, s, err)
				}
				pkt.MAC = signed.MAC
			}
			wire, err := pkt.Encode()
			if err != nil {
				return nil, fmt.Errorf("message: round %d source %d: %w", round, s, err)
			}
			for v := 0; v < n; v++ {
				if v == s {
					continue
				}
				// γ copies arrive; decode each from the wire format.
				for c := 0; c < x.Gamma(); c++ {
					got, err := Decode(wire, kr != nil)
					if err != nil {
						return nil, fmt.Errorf("message: decode: %w", err)
					}
					if kr != nil {
						// A wire-decoded header may claim any source id; an
						// out-of-keyring claim is rejected like a bad MAC
						// rather than aborting the whole broadcast.
						ok, err := kr.Verify(reliable.Message{
							Source:  topology.Node(got.Header.Source),
							Payload: got.Payload,
							MAC:     got.MAC,
						})
						if err != nil || !ok {
							res.Rejected++
							continue
						}
					}
					if err := reasm[v].Accept(got); err != nil {
						return nil, fmt.Errorf("message: node %d: %w", v, err)
					}
				}
			}
		}
	}

	res.Messages = make([][][]byte, n)
	for v := 0; v < n; v++ {
		res.Messages[v] = make([][]byte, n)
		for s := 0; s < n; s++ {
			if v == s {
				continue
			}
			m, ok := reasm[v].Message(topology.Node(s))
			if !ok {
				return nil, fmt.Errorf("message: node %d did not reconstruct source %d", v, s)
			}
			res.Messages[v][s] = m
		}
	}
	return res, nil
}
