package message

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"ihc/internal/hamilton"
	"ihc/internal/topology"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{
			Source: 300, Channel: 5, Stage: 1,
			Frag: 2, Total: 7, TagLast: 299, PayLen: 5,
		},
		Payload: []byte("hello"),
	}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != HeaderSize+5 {
		t.Fatalf("wire length %d", len(wire))
	}
	got, err := Decode(wire, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != p.Header || !bytes.Equal(got.Payload, p.Payload) || got.MAC != nil {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEncodeDecodeWithMAC(t *testing.T) {
	mac := bytes.Repeat([]byte{0xab}, MACSize)
	p := &Packet{
		Header:  Header{Source: 1, Total: 1, PayLen: 3},
		Payload: []byte("abc"),
		MAC:     mac,
	}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.MAC, mac) {
		t.Fatal("MAC lost")
	}
	// Decoding with the wrong MAC expectation must fail (length check).
	if _, err := Decode(wire, false); err == nil {
		t.Fatal("signed wire decoded as unsigned")
	}
}

func TestEncodeValidation(t *testing.T) {
	bad := []*Packet{
		{Header: Header{Total: 1, PayLen: 4}, Payload: []byte("abc")}, // length mismatch
		{Header: Header{Total: 0, PayLen: 0}},                         // zero total
		{Header: Header{Frag: 3, Total: 3, PayLen: 0}},                // frag out of range
		{Header: Header{Total: 1, PayLen: 0}, MAC: []byte{1, 2}},      // short MAC
	}
	for i, p := range bad {
		if _, err := p.Encode(); err == nil {
			t.Fatalf("bad packet %d encoded", i)
		}
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}, false); err == nil {
		t.Fatal("short buffer decoded")
	}
	good := &Packet{Header: Header{Total: 2, Frag: 1, PayLen: 1}, Payload: []byte("x")}
	wire, _ := good.Encode()
	if _, err := Decode(append(wire, 0), false); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Corrupt fragment bounds on the wire.
	wire2 := append([]byte(nil), wire...)
	wire2[6], wire2[7] = 0, 0 // Total = 0
	if _, err := Decode(wire2, false); err == nil {
		t.Fatal("zero total accepted")
	}
}

func TestPayloadCapacity(t *testing.T) {
	if c := PayloadCapacity(2, 32, false); c != 64-HeaderSize {
		t.Fatalf("capacity = %d", c)
	}
	if c := PayloadCapacity(2, 32, true); c != 64-HeaderSize-MACSize {
		t.Fatalf("signed capacity = %d", c)
	}
	if c := PayloadCapacity(1, 8, true); c != 0 {
		t.Fatalf("impossible capacity = %d", c)
	}
}

// The two stop rules of Section IV agree on every position of every
// directed cycle.
func TestStopRulesEquivalent(t *testing.T) {
	cycles, err := hamilton.Decompose(topology.MustSquareTorus(4))
	if err != nil {
		t.Fatal(err)
	}
	dir := hamilton.DirectedCycles(cycles)
	for j, c := range dir {
		n := len(c)
		for pos := 0; pos < n; pos++ {
			tag := TagFor(c, pos)
			h := Header{Source: uint16(c[pos]), TagLast: uint16(tag)}
			for hops := 1; hops < n; hops++ {
				self := c[(pos+hops)%n]
				byCount := StopByCount(hops, n)
				byTag := StopByTag(h, self)
				if byCount != byTag {
					t.Fatalf("cycle %d pos %d hops %d: count=%v tag=%v", j, pos, hops, byCount, byTag)
				}
			}
		}
	}
}

func TestSplit(t *testing.T) {
	msg := []byte("abcdefghij")
	frags, err := Split(msg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 || string(frags[0]) != "abcd" || string(frags[2]) != "ij" {
		t.Fatalf("frags = %q", frags)
	}
	empty, err := Split(nil, 4)
	if err != nil || len(empty) != 1 || len(empty[0]) != 0 {
		t.Fatalf("empty split = %q, %v", empty, err)
	}
	if _, err := Split(msg, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := Split(make([]byte, 70000), 1); err == nil {
		t.Fatal("fragment overflow accepted")
	}
}

func TestReassemblerDuplicatesAndConflicts(t *testing.T) {
	r := NewReassembler()
	mk := func(frag, total int, pay string) *Packet {
		return &Packet{
			Header:  Header{Source: 9, Frag: uint16(frag), Total: uint16(total), PayLen: uint16(len(pay))},
			Payload: []byte(pay),
		}
	}
	if err := r.Accept(mk(1, 2, "yz")); err != nil {
		t.Fatal(err)
	}
	if r.Complete(9) {
		t.Fatal("complete with one of two fragments")
	}
	// γ duplicate copies are fine.
	for i := 0; i < 4; i++ {
		if err := r.Accept(mk(1, 2, "yz")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Accept(mk(0, 2, "wx")); err != nil {
		t.Fatal(err)
	}
	msg, ok := r.Message(9)
	if !ok || string(msg) != "wxyz" {
		t.Fatalf("message = %q, %v", msg, ok)
	}
	// Conflicting content must be detected.
	if err := r.Accept(mk(0, 2, "QQ")); err == nil {
		t.Fatal("conflicting fragment accepted")
	}
	// Conflicting totals must be detected.
	if err := r.Accept(mk(0, 3, "wx")); err == nil {
		t.Fatal("conflicting total accepted")
	}
	if r.Sources() != 1 {
		t.Fatalf("sources = %d", r.Sources())
	}
	if _, ok := r.Message(5); ok {
		t.Fatal("unknown source reconstructed")
	}
}

// Property: encode/decode round-trips for arbitrary header/payload
// combinations.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(src uint16, ch, st uint8, frag uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		total := uint16(int(frag) + 1)
		p := &Packet{
			Header: Header{
				Source: src, Channel: ch, Stage: st,
				Frag: frag, Total: total, PayLen: uint16(len(payload)),
			},
			Payload: payload,
		}
		wire, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire, false)
		if err != nil {
			return false
		}
		return got.Header == p.Header && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Split followed by concatenation is the identity.
func TestQuickSplitJoin(t *testing.T) {
	f := func(msg []byte, capRaw uint8) bool {
		capacity := int(capRaw)%64 + 1
		frags, err := Split(msg, capacity)
		if err != nil {
			return false
		}
		var joined []byte
		for _, fr := range frags {
			if len(fr) > capacity {
				return false
			}
			joined = append(joined, fr...)
		}
		if len(msg) == 0 {
			return len(frags) == 1 && len(joined) == 0
		}
		return bytes.Equal(joined, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

var _ = fmt.Sprintf // keep fmt for debug helpers in this file's future edits
