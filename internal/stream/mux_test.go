package stream

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	cases := [][]Item{
		nil, // heartbeat
		{{High: true, Data: []byte("urgent")}},
		{{Data: []byte("a")}, {High: true, Data: []byte("b")}, {Data: nil}},
		{{Data: bytes.Repeat([]byte{0xAB}, 1000)}},
	}
	for i, items := range cases {
		b, err := EncodeBatch(items)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if len(b) != BatchBytes(lensOf(items)) {
			t.Fatalf("case %d: BatchBytes predicted %d, encoded %d", i, BatchBytes(lensOf(items)), len(b))
		}
		got, err := DecodeBatch(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(got) != len(items) {
			t.Fatalf("case %d: %d items round-tripped to %d", i, len(items), len(got))
		}
		for j := range got {
			if got[j].High != items[j].High || !bytes.Equal(got[j].Data, items[j].Data) {
				t.Fatalf("case %d item %d: got %+v want %+v", i, j, got[j], items[j])
			}
		}
	}
}

func lensOf(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = len(it.Data)
	}
	return out
}

func TestBatchDecodeRejectsCorrupt(t *testing.T) {
	good, err := EncodeBatch([]Item{{Data: []byte("hello")}, {High: true, Data: []byte("world")}})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		{0x01},             // shorter than the header
		good[:len(good)-1], // truncated payload
		append(append([]byte(nil), good...), 0x00), // trailing byte
	}
	// Lying count.
	lie := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(lie, 40)
	bad = append(bad, lie)
	// Length pointing past the buffer.
	lie2 := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(lie2[3:], 60000)
	bad = append(bad, lie2)
	// Unknown flag bits.
	lie3 := append([]byte(nil), good...)
	lie3[2] = 0x80
	bad = append(bad, lie3)
	for i, b := range bad {
		if _, err := DecodeBatch(b); err == nil {
			t.Fatalf("case %d: corrupt batch decoded cleanly", i)
		}
	}
}

func TestBatchEncodeLimits(t *testing.T) {
	tooMany := make([]Item, maxBatchLen+1)
	if _, err := EncodeBatch(tooMany); err == nil {
		t.Fatal("oversized batch encoded")
	}
	if _, err := EncodeBatch([]Item{{Data: make([]byte, 1<<16)}}); err == nil {
		t.Fatal("oversized item encoded")
	}
}
