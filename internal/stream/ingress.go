package stream

import (
	"errors"
	"sync"
	"time"

	"ihc/internal/observe"
)

// ErrShed is the admission-control verdict: the service is refusing
// this payload *now*, explicitly, instead of queueing it unboundedly.
// Callers may retry later; nothing was enqueued.
var ErrShed = errors.New("stream: payload shed (admission control)")

// Priority classes. High-priority traffic bypasses the token bucket
// and is bounded only by its queue capacity; low-priority traffic is
// rate-limited and is what overload sheds first.
type Priority uint8

const (
	Low Priority = iota
	High
)

// IngressConfig shapes one node's client-payload admission.
type IngressConfig struct {
	// HighCap / LowCap bound the per-class queues (items). Defaults
	// 1024 each.
	HighCap, LowCap int
	// Rate is the low-priority admission rate in payloads/second via a
	// token bucket of depth Burst; <= 0 disables rate limiting (queue
	// bounds still apply). Burst defaults to Rate.
	Rate, Burst float64
	// MaxBatchBytes bounds one epoch batch's encoded size. Default
	// 32 KiB (comfortably inside transport.MaxFrame with route + MAC).
	MaxBatchBytes int
}

func (c IngressConfig) defaulted() IngressConfig {
	if c.HighCap <= 0 {
		c.HighCap = 1024
	}
	if c.LowCap <= 0 {
		c.LowCap = 1024
	}
	if c.Burst <= 0 {
		c.Burst = c.Rate
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 32 << 10
	}
	return c
}

// Ingress is one node's bounded, two-class client-payload queue.
// Submit is safe from any goroutine; drain is called by the node's
// event loop at epoch open. Backpressure is explicit: a full queue or
// an empty token bucket sheds with ErrShed instead of blocking or
// growing.
type Ingress struct {
	mu     sync.Mutex
	cfg    IngressConfig
	high   [][]byte
	low    [][]byte
	tokens float64
	last   time.Time
	gauges *observe.StreamGauges
	now    func() time.Time // test hook
}

// NewIngress returns an empty queue publishing into gauges (nil ok).
func NewIngress(cfg IngressConfig, gauges *observe.StreamGauges) *Ingress {
	cfg = cfg.defaulted()
	return &Ingress{cfg: cfg, tokens: cfg.Burst, gauges: gauges, now: time.Now}
}

func (in *Ingress) refillLocked(now time.Time) {
	if in.cfg.Rate <= 0 {
		return
	}
	if !in.last.IsZero() {
		in.tokens += now.Sub(in.last).Seconds() * in.cfg.Rate
		if in.tokens > in.cfg.Burst {
			in.tokens = in.cfg.Burst
		}
	}
	in.last = now
}

// Submit admits one client payload into the queue for the next epoch
// batch, or sheds it with ErrShed. The payload is referenced, not
// copied — callers must not mutate it afterwards.
func (in *Ingress) Submit(data []byte, pri Priority) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if pri == High {
		if len(in.high) >= in.cfg.HighCap {
			in.gauges.Shed(true)
			return ErrShed
		}
		in.high = append(in.high, data)
		in.gauges.Submitted(true, len(data))
		return nil
	}
	in.refillLocked(in.now())
	if len(in.low) >= in.cfg.LowCap || (in.cfg.Rate > 0 && in.tokens < 1) {
		in.gauges.Shed(false)
		return ErrShed
	}
	if in.cfg.Rate > 0 {
		in.tokens--
	}
	in.low = append(in.low, data)
	in.gauges.Submitted(false, len(data))
	return nil
}

// Depth returns the current (high, low) queue depths.
func (in *Ingress) Depth() (high, low int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.high), len(in.low)
}

// drain packs queued payloads — high class first, then low, FIFO
// within a class — into one batch up to the configured byte budget.
// Payloads that do not fit stay queued for the next epoch.
func (in *Ingress) drain() []Item {
	in.mu.Lock()
	defer in.mu.Unlock()
	budget := in.cfg.MaxBatchBytes - batchHdr
	var items []Item
	bytesOut := 0
	take := func(q *[][]byte, high bool) {
		for len(*q) > 0 && len(items) < maxBatchLen {
			d := (*q)[0]
			cost := itemOverhead + len(d)
			if cost > budget {
				return
			}
			budget -= cost
			bytesOut += len(d)
			items = append(items, Item{High: high, Data: d})
			*q = (*q)[1:]
		}
	}
	take(&in.high, true)
	take(&in.low, false)
	in.gauges.Drained(len(items), bytesOut)
	return items
}
