package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// An epoch batch multiplexes many client payloads into the single
// packet a node injects per (node, epoch): the compaction step that
// turns the per-round ATA schedule into a streaming service. Layout,
// little-endian:
//
//	count u16 | per item: flags u8 | len u16 | data
//
// flag bit 0 marks a high-priority item. An empty batch (count 0) is
// the heartbeat a node with no queued traffic injects — the schedule
// runs every epoch regardless, because the γ-copy ledger postcondition
// is per (source, channel), not per payload.
//
// Batches arrive inside HMAC-verified frames, but the codec still
// bounds-checks every length: a buggy or malicious *signer* must
// surface as a decode error, never a panic or over-allocation.

// Item is one client payload inside an epoch batch.
type Item struct {
	High bool
	Data []byte
}

const (
	batchHdr     = 2
	itemOverhead = 3
	maxBatchLen  = 1 << 12
)

var ErrBatchCorrupt = errors.New("stream: corrupt epoch batch")

// BatchBytes returns the encoded size of a batch holding the given
// item data lengths — what the ingress drain uses to pack a byte
// budget exactly.
func BatchBytes(itemLens []int) int {
	n := batchHdr
	for _, l := range itemLens {
		n += itemOverhead + l
	}
	return n
}

// EncodeBatch serialises items into one epoch payload.
func EncodeBatch(items []Item) ([]byte, error) {
	if len(items) > maxBatchLen {
		return nil, fmt.Errorf("stream: batch of %d items exceeds %d", len(items), maxBatchLen)
	}
	n := batchHdr
	for _, it := range items {
		if len(it.Data) > 1<<16-1 {
			return nil, fmt.Errorf("stream: batch item of %d bytes exceeds u16", len(it.Data))
		}
		n += itemOverhead + len(it.Data)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(items)))
	for _, it := range items {
		var flags byte
		if it.High {
			flags |= 1
		}
		b = append(b, flags)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(it.Data)))
		b = append(b, it.Data...)
	}
	return b, nil
}

// DecodeBatch parses an epoch payload. Every length is validated
// before use; trailing bytes are an error (a truncated or padded batch
// must not half-decode).
func DecodeBatch(b []byte) ([]Item, error) {
	if len(b) < batchHdr {
		return nil, ErrBatchCorrupt
	}
	count := int(binary.LittleEndian.Uint16(b))
	if count > maxBatchLen {
		return nil, ErrBatchCorrupt
	}
	items := make([]Item, 0, count)
	off := batchHdr
	for i := 0; i < count; i++ {
		if len(b) < off+itemOverhead {
			return nil, ErrBatchCorrupt
		}
		flags := b[off]
		if flags > 1 {
			return nil, ErrBatchCorrupt
		}
		l := int(binary.LittleEndian.Uint16(b[off+1:]))
		off += itemOverhead
		if len(b) < off+l {
			return nil, ErrBatchCorrupt
		}
		it := Item{High: flags&1 != 0}
		if l > 0 {
			it.Data = append([]byte(nil), b[off:off+l]...)
		}
		items = append(items, it)
		off += l
	}
	if off != len(b) {
		return nil, ErrBatchCorrupt
	}
	return items, nil
}
