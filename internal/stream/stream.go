// Package stream turns the one-shot wall-clock ATA round into a
// continuous broadcast service: an unbounded sequence of epochs, each
// one full IHC all-to-all round, pipelined back-to-back into the η−μ
// link slack the interleaving schedule leaves idle. Every epoch is
// HLC-stamped, at most MaxInflight rounds overlap (opening is deferred
// — backpressure — when the cap is hit), and each node's injection
// payload is an epoch batch multiplexing many client payloads from a
// bounded two-class ingress queue with token-bucket admission; under
// overload low-priority payloads are shed with an explicit ErrShed.
//
// The robustness core is the rejoin path: a node killed mid-stream
// restarts with no state, learns the current epoch from any peer —
// an explicit JOIN→EPOCH handshake, or passively from the epoch field
// of any signed frame — then catches up the rounds it missed through
// the same wall-clock NAK/pull planner the one-shot protocol repairs
// with, while late-injecting its own copies for those rounds so that
// the survivors' stalled epochs complete too. Every completed epoch
// satisfies the exact γ-copy ledger postcondition, kill or no kill.
package stream

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ihc/internal/core"
	"ihc/internal/hlc"
	"ihc/internal/observe"
	"ihc/internal/reliable"
	"ihc/internal/repair"
	"ihc/internal/simnet"
	"ihc/internal/topology"
	"ihc/internal/transport"
)

// Config shapes one streaming node.
type Config struct {
	IHC      *core.IHC
	Eta      int
	Self     topology.Node
	Endpoint transport.Endpoint
	Keyring  *reliable.Keyring
	// Epoch0 is the cluster-agreed wall-clock start of epoch 0's stage
	// 0; epoch e is scheduled at Epoch0 + e·Period.
	Epoch0 time.Time
	// Period is the epoch cadence. Pipelining happens when Period is
	// shorter than a full round (stages + relay + repair tail): up to
	// MaxInflight rounds overlap in the η−μ link slack.
	Period time.Duration
	// StageDur / HopLatency / Slack are the per-round timing model,
	// exactly as in the one-shot transport.NodeConfig.
	StageDur   time.Duration
	HopLatency time.Duration
	Slack      time.Duration
	// Retry shapes pull backoff; MaxAttempts bounds pulls per missing
	// copy. Streaming defaults are more patient than one-shot (the
	// provider may be a killed node that has not rejoined yet).
	Retry       transport.BackoffConfig
	MaxAttempts int
	// MaxInflight caps concurrently open (live, non-stalled) epochs;
	// epoch opening is deferred while the cap is hit. Default 2.
	MaxInflight int
	// Retain is how many epochs of accepted-payload store are kept
	// after an epoch closes, to serve late pulls from rejoiners and
	// stragglers. Also bounds the rejoin catch-up horizon. Default 64.
	Retain int
	// Epochs stops the stream after this many epochs (0 = run until
	// ctx is cancelled).
	Epochs int
	// Drain bounds how long after the last scheduled epoch the node
	// waits for stalled epochs to revive before finalizing them as
	// failed. Default 5s.
	Drain time.Duration
	// Join starts the node with no epoch base: it discovers the
	// current epoch from peers (JOIN handshake / any signed frame) and
	// catches up missed rounds within the Retain horizon.
	Join bool
	// Ingress shapes client-payload admission.
	Ingress IngressConfig
	// Payload, when set, bypasses the ingress/mux path: epoch e's
	// injection payload is exactly Payload(e). The equivalence tests
	// use it to pin streaming against repeated one-shot rounds.
	Payload func(epoch uint32) []byte
	// Clock is the node's HLC; fresh if nil. Gauges may be shared by
	// the whole cluster (atomic deltas); nil is a no-op sink.
	Gauges *observe.StreamGauges
	Clock  *hlc.Clock
	// CollectPayloads retains delivered payload bytes in EpochResults
	// (tests); CollectCopies retains per-source channel sets.
	CollectPayloads bool
}

func (c Config) defaulted() (Config, error) {
	if c.IHC == nil || c.Endpoint == nil || c.Keyring == nil {
		return c, fmt.Errorf("stream: config needs IHC, Endpoint, and Keyring")
	}
	if c.Eta < 1 || c.Eta > c.IHC.N() {
		return c, fmt.Errorf("stream: eta %d outside [1,%d]", c.Eta, c.IHC.N())
	}
	if c.Period <= 0 {
		return c, fmt.Errorf("stream: Period must be positive")
	}
	if c.StageDur <= 0 {
		return c, fmt.Errorf("stream: StageDur must be positive")
	}
	if c.Slack <= 0 {
		c.Slack = c.StageDur
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 60
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2
	}
	if c.Retain <= 0 {
		c.Retain = 64
	}
	if c.Drain <= 0 {
		c.Drain = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = hlc.New()
	}
	return c, nil
}

// EpochResult is one node's verdict for one epoch.
type EpochResult struct {
	Epoch     uint32
	Node      topology.Node
	Completed bool // exact γ-copy postcondition reached
	CatchUp   bool // recovered after a rejoin, not live participation
	LedgerErr error
	Latency   time.Duration // scheduled start → local completion (live epochs)
	Repaired  int           // copies that arrived via the pull path
	Items     int           // client payloads delivered across all sources
	// Copies[s] lists the channels source s's copies arrived on;
	// Payloads maps each (source, channel) to its delivered payload
	// bytes (CollectPayloads only).
	Copies   map[topology.Node][]uint8
	Payloads map[repair.Want][]byte
}

// Result is a streaming node's final accounting.
type Result struct {
	Self     topology.Node
	Epochs   []EpochResult
	NaksSent int
	Stats    transport.EndpointStats
}

// epochState is one open round's protocol state.
type epochState struct {
	epoch     uint32
	scheduled time.Time // Epoch0 + e·Period
	started   time.Time // actual local open (injection base)
	planner   *repair.Planner
	store     map[repair.Want][]byte
	ledger    *simnet.CopyLedger
	copies    map[topology.Node][]uint8
	injected  []bool
	payload   []byte // own injection payload (epoch batch)
	repaired  int
	catchup   bool
	stalled   bool // every pending want exhausted; waiting on a revival
}

// Node runs the streaming protocol on one endpoint. Construct with
// NewNode, feed client payloads through Ingress(), drive with Run.
// All protocol state is owned by the Run goroutine; Ingress and Gauges
// are the only cross-goroutine surfaces.
type Node struct {
	cfg     Config
	clock   *hlc.Clock
	ingress *Ingress

	n, gamma  int
	cycleOf   [][]topology.Node
	neighbors []topology.Node

	open     map[uint32]*epochState
	retained map[uint32]map[repair.Want][]byte // closed epochs' stores, for serving pulls
	next     uint32                            // next epoch to open
	highest  uint32                            // highest epoch seen in any signed frame
	joined   bool                              // epoch base known
	joinIdx  int                               // JOIN target rotation
	joinAt   time.Time

	results  []EpochResult
	naksSent int
}

// NewNode validates cfg and prepares the streaming state.
func NewNode(cfg Config) (*Node, error) {
	cfg, err := cfg.defaulted()
	if err != nil {
		return nil, err
	}
	nd := &Node{
		cfg:      cfg,
		clock:    cfg.Clock,
		ingress:  NewIngress(cfg.Ingress, cfg.Gauges),
		n:        cfg.IHC.N(),
		gamma:    cfg.IHC.Gamma(),
		open:     make(map[uint32]*epochState),
		retained: make(map[uint32]map[repair.Want][]byte),
		joined:   !cfg.Join,
	}
	for j := 0; j < nd.gamma; j++ {
		nd.cycleOf = append(nd.cycleOf, []topology.Node(cfg.IHC.DirectedCycle(j)))
	}
	nd.neighbors = cfg.IHC.Graph().Neighbors(cfg.Self)
	return nd, nil
}

// Ingress returns the node's client-payload admission queue.
func (nd *Node) Ingress() *Ingress { return nd.ingress }

func (nd *Node) scheduled(e uint32) time.Time {
	return nd.cfg.Epoch0.Add(time.Duration(e) * nd.cfg.Period)
}

func (nd *Node) routeOf(s topology.Node, j int) []topology.Node {
	c := nd.cycleOf[j]
	p := nd.cfg.IHC.ID(j, s)
	route := make([]topology.Node, nd.n)
	for k := 0; k < nd.n; k++ {
		route[k] = c[(p+k)%nd.n]
	}
	return route
}

func (nd *Node) stageOf(s topology.Node, j int) int {
	return nd.cfg.IHC.ID(j, s) % nd.cfg.Eta
}

// liveOpen counts open epochs against the MaxInflight cap. Stalled
// epochs (all pending pulls exhausted, waiting on a rejoiner's late
// injection) do not hold a pipeline slot — otherwise a dead peer
// would wedge the whole stream instead of just its own rounds — and
// neither do catch-up epochs, which are repair traffic, not live load:
// a rejoiner must resume current rounds immediately, or the survivors
// stall waiting for its new copies while it replays old ones.
func (nd *Node) liveOpen() int {
	live := 0
	for _, st := range nd.open {
		if !st.stalled && !st.catchup {
			live++
		}
	}
	return live
}

// openEpochIDs returns the open set in ascending epoch order, for
// deterministic iteration.
func (nd *Node) openEpochIDs() []uint32 {
	ids := make([]uint32, 0, len(nd.open))
	for e := range nd.open {
		ids = append(ids, e)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// openEpoch creates epoch e's state and registers its expected copies.
// catchup epochs (rejoin recovery) get immediate pull deadlines and
// immediate own-copy injection; live epochs follow the stage schedule
// from effectiveStart = max(scheduled, now).
func (nd *Node) openEpoch(e uint32, now time.Time, catchup bool) *epochState {
	start := nd.scheduled(e)
	if start.Before(now) {
		start = now
	}
	bo := transport.NewBackoff(nd.cfg.Retry)
	st := &epochState{
		epoch:     e,
		scheduled: nd.scheduled(e),
		started:   start,
		planner: repair.NewPlanner(repair.PullConfig{
			MaxAttempts: nd.cfg.MaxAttempts,
			Delay:       func(int) time.Duration { return bo.Next() },
		}),
		store:    make(map[repair.Want][]byte),
		ledger:   simnet.NewCopyLedger(nd.n),
		copies:   make(map[topology.Node][]uint8),
		injected: make([]bool, nd.cfg.Eta),
		catchup:  catchup,
	}
	// Injection payload: the ingress batch drained at open (the
	// compaction step), or the test hook, or — for catch-up rounds,
	// whose original client payloads died with the process — an empty
	// heartbeat batch.
	switch {
	case nd.cfg.Payload != nil:
		st.payload = nd.cfg.Payload(e)
	case catchup:
		st.payload, _ = EncodeBatch(nil)
	default:
		st.payload, _ = EncodeBatch(nd.ingress.drain())
	}
	for j := 0; j < nd.gamma; j++ {
		c := nd.cycleOf[j]
		myPos := nd.cfg.IHC.ID(j, nd.cfg.Self)
		pred := c[(myPos+nd.n-1)%nd.n]
		providers := []topology.Node{pred}
		for _, nb := range nd.neighbors {
			if nb != pred {
				providers = append(providers, nb)
			}
		}
		for s := 0; s < nd.n; s++ {
			src := topology.Node(s)
			if src == nd.cfg.Self {
				continue
			}
			var deadline time.Time
			if catchup {
				deadline = now // the round is long past; pull immediately
			} else {
				hops := (myPos - nd.cfg.IHC.ID(j, src) + nd.n) % nd.n
				deadline = st.started.
					Add(time.Duration(nd.stageOf(src, j)) * nd.cfg.StageDur).
					Add(time.Duration(hops) * nd.cfg.HopLatency).
					Add(nd.cfg.Slack)
			}
			st.planner.Expect(repair.Want{Source: src, Channel: uint8(j)}, deadline, providers)
		}
	}
	nd.open[e] = st
	if e >= nd.next {
		nd.next = e + 1
	}
	nd.cfg.Gauges.EpochOpened()
	if catchup {
		for stg := 0; stg < nd.cfg.Eta; stg++ {
			nd.injectStage(st, stg)
		}
	}
	return st
}

// Run executes the stream until cfg.Epochs rounds have closed (plus
// the drain window for stragglers) or ctx is cancelled. The error is
// non-nil only for transport-level failures or cancellation; per-epoch
// verdicts live in the Result.
func (nd *Node) Run(ctx context.Context) (*Result, error) {
	timer := time.NewTimer(time.Millisecond)
	defer timer.Stop()
	for {
		nd.step(time.Now())
		if nd.finished(time.Now()) {
			return nd.result(), nil
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(nd.wakeIn())
		select {
		case <-ctx.Done():
			return nd.result(), ctx.Err()
		case <-timer.C:
		case body, ok := <-nd.cfg.Endpoint.Recv():
			if !ok {
				return nd.result(), fmt.Errorf("stream: endpoint closed under node %d", nd.cfg.Self)
			}
			nd.handle(body)
		}
	}
}

// finished reports whether a bounded stream is done: every scheduled
// epoch opened and closed, or the drain window after the last
// scheduled round expired with only stalled epochs left.
func (nd *Node) finished(now time.Time) bool {
	if nd.cfg.Epochs <= 0 {
		return false
	}
	if nd.joined && int(nd.next) >= nd.cfg.Epochs && len(nd.open) == 0 {
		return true
	}
	drainBy := nd.scheduled(uint32(nd.cfg.Epochs)).Add(nd.cfg.Drain)
	if now.After(drainBy) {
		for _, e := range nd.openEpochIDs() {
			nd.finalize(nd.open[e], false, now)
		}
		return true
	}
	return false
}

// step runs all timer-driven work due at now.
func (nd *Node) step(now time.Time) {
	if !nd.joined {
		nd.stepJoin(now)
		return
	}
	// Open live epochs: wall-clock schedule plus HLC-carried
	// fast-forward (highest signed epoch seen), gated by MaxInflight.
	for int(nd.next) < nd.cfg.Epochs || nd.cfg.Epochs <= 0 {
		if nd.liveOpen() >= nd.cfg.MaxInflight {
			break
		}
		if now.Before(nd.scheduled(nd.next)) && nd.highest < nd.next {
			break
		}
		nd.openEpoch(nd.next, now, false)
	}
	for _, e := range nd.openEpochIDs() {
		st := nd.open[e]
		// Stage injections due by the local schedule.
		elapsed := now.Sub(st.started)
		for stg := 0; stg < nd.cfg.Eta; stg++ {
			if !st.injected[stg] && elapsed >= time.Duration(stg)*nd.cfg.StageDur {
				nd.injectStage(st, stg)
			}
		}
		// Repair pulls due.
		for _, pull := range st.planner.Due(now, nd.cfg.Endpoint.PeerDown) {
			nd.sendNak(st.epoch, pull)
		}
		if st.planner.Done() {
			nd.finalize(st, true, now)
			continue
		}
		if st.planner.Terminal() && !st.stalled {
			// Out of pull budget with copies still missing (the
			// provider is probably dead). Release the pipeline slot
			// and wait: a rejoiner's late injection can still revive
			// and complete this round.
			st.stalled = true
		}
		// Epochs that fell out of the retain horizon can never be
		// revived (peers have dropped their stores); fail them.
		if st.stalled && nd.next > uint32(nd.cfg.Retain) && st.epoch < nd.next-uint32(nd.cfg.Retain) {
			nd.finalize(st, false, now)
		}
	}
}

// stepJoin drives the rejoin handshake: rotate JOIN requests across
// neighbors until any signed frame tells us the current epoch.
func (nd *Node) stepJoin(now time.Time) {
	if now.Before(nd.joinAt) {
		return
	}
	target := nd.neighbors[nd.joinIdx%len(nd.neighbors)]
	nd.joinIdx++
	nd.joinAt = now.Add(nd.joinInterval())
	f := &transport.Frame{Kind: transport.FrameJoin, From: nd.cfg.Self, Source: nd.cfg.Self, HLC: nd.clock.Now()}
	nd.cfg.Endpoint.Send(target, f)
	nd.cfg.Gauges.Join()
}

func (nd *Node) joinInterval() time.Duration {
	iv := nd.cfg.Period / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// adoptEpoch is the rejoin resolution: a signed frame proved the
// stream has reached epoch e. Resume live participation at e+1 and
// open catch-up rounds for the missed epochs inside the retain
// horizon.
func (nd *Node) adoptEpoch(e uint32, now time.Time) {
	nd.joined = true
	first := uint32(0)
	if e+1 > uint32(nd.cfg.Retain) {
		first = e + 1 - uint32(nd.cfg.Retain)
	}
	for miss := first; miss <= e; miss++ {
		if nd.cfg.Epochs > 0 && int(miss) >= nd.cfg.Epochs {
			break
		}
		nd.openEpoch(miss, now, true)
	}
	if nd.next <= e {
		nd.next = e + 1
	}
}

// wakeIn returns how long the event loop may sleep.
func (nd *Node) wakeIn() time.Duration {
	const idle = 250 * time.Millisecond
	now := time.Now()
	wake := now.Add(idle)
	if !nd.joined {
		if nd.joinAt.Before(wake) {
			wake = nd.joinAt
		}
	} else {
		if (nd.cfg.Epochs <= 0 || int(nd.next) < nd.cfg.Epochs) && nd.liveOpen() < nd.cfg.MaxInflight {
			if t := nd.scheduled(nd.next); t.Before(wake) {
				wake = t
			}
		}
		for _, st := range nd.open {
			for stg := 0; stg < nd.cfg.Eta; stg++ {
				if !st.injected[stg] {
					if t := st.started.Add(time.Duration(stg) * nd.cfg.StageDur); t.Before(wake) {
						wake = t
					}
					break
				}
			}
			if t, ok := st.planner.NextWake(); ok && t.Before(wake) {
				wake = t
			}
		}
	}
	d := time.Until(wake)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// injectStage emits this node's own copies of one epoch scheduled for
// stage stg.
func (nd *Node) injectStage(st *epochState, stg int) {
	st.injected[stg] = true
	for j := 0; j < nd.gamma; j++ {
		if nd.stageOf(nd.cfg.Self, j) != stg {
			continue
		}
		w := repair.Want{Source: nd.cfg.Self, Channel: uint8(j)}
		f := &transport.Frame{
			Kind:    transport.FrameData,
			From:    nd.cfg.Self,
			Source:  nd.cfg.Self,
			Epoch:   st.epoch,
			Channel: uint8(j),
			Stage:   uint8(stg),
			Route:   nd.routeOf(nd.cfg.Self, j),
			Payload: st.payload,
		}
		if err := transport.SignFrame(nd.cfg.Keyring, f); err != nil {
			continue
		}
		if _, dup := st.store[w]; !dup {
			st.store[w] = st.payload
		}
		nd.forward(st.epoch, f, 0)
	}
}

// forward sends f's next hop, if any remains.
func (nd *Node) forward(epoch uint32, f *transport.Frame, holder int) {
	if holder+1 >= len(f.Route) {
		return
	}
	out := *f
	out.From = nd.cfg.Self
	out.Epoch = epoch
	out.Hop = uint16(holder)
	out.HLC = nd.clock.Now()
	nd.cfg.Endpoint.Send(f.Route[holder+1], &out)
}

// handle processes one raw inbound frame body.
func (nd *Node) handle(body []byte) {
	f, err := transport.DecodeFrame(body)
	if err != nil {
		return
	}
	nd.clock.Update(f.HLC)
	ok, err := transport.VerifyFrame(nd.cfg.Keyring, f)
	if err != nil || !ok {
		return
	}
	now := time.Now()
	// Epoch learning: every *signed* frame carries an authenticated
	// epoch. JOIN/NAK/MISS are unsigned and must not fast-forward us.
	signed := f.Kind == transport.FrameData || f.Kind == transport.FrameRepair || f.Kind == transport.FrameEpoch
	if signed {
		if f.Epoch > nd.highest {
			nd.highest = f.Epoch
		}
		if !nd.joined {
			nd.adoptEpoch(f.Epoch, now)
		}
	}
	switch f.Kind {
	case transport.FrameData, transport.FrameRepair:
		nd.acceptCopy(f, now)
	case transport.FrameNak:
		nd.serveNak(f)
	case transport.FrameMiss:
		if st, ok := nd.open[f.Epoch]; ok {
			st.planner.Miss(repair.Want{Source: f.Source, Channel: f.Channel}, now)
		}
	case transport.FrameJoin:
		nd.serveJoin(f)
	case transport.FrameEpoch:
		// Learning already happened above; nothing else to do.
	}
}

// acceptCopy ingests a DATA or REPAIR frame for its epoch.
func (nd *Node) acceptCopy(f *transport.Frame, now time.Time) {
	if int(f.Channel) >= nd.gamma || f.Source == nd.cfg.Self {
		return
	}
	st, isOpen := nd.open[f.Epoch]
	if !isOpen {
		if _, closed := nd.retained[f.Epoch]; closed {
			return // late duplicate for a finished round
		}
		if !nd.joined || f.Epoch < nd.next {
			return // round from before our join horizon: not ours to track
		}
		// A future epoch arrived before our wall clock opened it —
		// HLC fast-forward. Respect the pipeline cap: if we are full,
		// drop; the schedule or a pull will bring it back.
		if nd.liveOpen() >= nd.cfg.MaxInflight {
			return
		}
		st = nd.openEpoch(f.Epoch, now, false)
	}
	// A frame from stage k of this epoch proves the cluster reached
	// stage k: start our own ≤k injections now.
	for stg := 0; stg <= int(f.Stage) && stg < nd.cfg.Eta; stg++ {
		if !st.injected[stg] {
			nd.injectStage(st, stg)
		}
	}
	w := repair.Want{Source: f.Source, Channel: f.Channel}
	if _, dup := st.store[w]; dup {
		return
	}
	st.store[w] = f.Payload
	st.ledger.Add(nd.cfg.Self, f.Source)
	st.copies[f.Source] = append(st.copies[f.Source], f.Channel)
	if first := st.planner.Got(w); first && f.Kind == transport.FrameRepair {
		st.repaired++
		nd.cfg.Gauges.Repaired()
	}
	holder := int(f.Hop) + 1
	if holder < len(f.Route) && f.Route[holder] == nd.cfg.Self {
		nd.forward(st.epoch, f, holder)
	}
	if st.planner.Done() {
		nd.finalize(st, true, now)
	}
}

// serveNak answers a pull against the epoch's store — open or
// retained — with a REPAIR, or a MISS if we do not hold the copy.
func (nd *Node) serveNak(f *transport.Frame) {
	w := repair.Want{Source: f.Source, Channel: f.Channel}
	requester := f.From
	var payload []byte
	var held bool
	if st, ok := nd.open[f.Epoch]; ok {
		payload, held = st.store[w]
	} else if store, ok := nd.retained[f.Epoch]; ok {
		payload, held = store[w]
	}
	if !held {
		miss := &transport.Frame{
			Kind: transport.FrameMiss, From: nd.cfg.Self,
			Source: f.Source, Epoch: f.Epoch, Channel: f.Channel, HLC: nd.clock.Now(),
		}
		nd.cfg.Endpoint.Send(requester, miss)
		return
	}
	route := nd.routeOf(w.Source, int(w.Channel))
	hop := 0
	for i, v := range route {
		if v == requester {
			hop = i - 1
			break
		}
	}
	rep := &transport.Frame{
		Kind:    transport.FrameRepair,
		From:    nd.cfg.Self,
		Source:  w.Source,
		Epoch:   f.Epoch,
		Channel: w.Channel,
		Stage:   uint8(nd.stageOf(w.Source, int(w.Channel))),
		Hop:     uint16(hop),
		HLC:     nd.clock.Now(),
		Route:   route,
		Payload: payload,
	}
	if err := transport.SignFrame(nd.cfg.Keyring, rep); err != nil {
		return
	}
	nd.cfg.Endpoint.Send(requester, rep)
}

// serveJoin answers a rejoiner's epoch query with a signed EPOCH
// response carrying the highest round we know of.
func (nd *Node) serveJoin(f *transport.Frame) {
	if !nd.joined || nd.next == 0 {
		return // we do not know the epoch either
	}
	cur := nd.next - 1
	if nd.highest > cur {
		cur = nd.highest
	}
	rep := &transport.Frame{
		Kind:   transport.FrameEpoch,
		From:   nd.cfg.Self,
		Source: nd.cfg.Self,
		Epoch:  cur,
		HLC:    nd.clock.Now(),
	}
	if err := transport.SignFrame(nd.cfg.Keyring, rep); err != nil {
		return
	}
	nd.cfg.Endpoint.Send(f.From, rep)
}

// sendNak emits one planned pull for one epoch.
func (nd *Node) sendNak(epoch uint32, p repair.Pull) {
	nd.naksSent++
	nd.cfg.Gauges.Nak()
	f := &transport.Frame{
		Kind:    transport.FrameNak,
		From:    nd.cfg.Self,
		Source:  p.Source,
		Epoch:   epoch,
		Channel: p.Channel,
		HLC:     nd.clock.Now(),
	}
	nd.cfg.Endpoint.Send(p.Provider, f)
}

// finalize closes one epoch: record the verdict, retain the store for
// late pulls, release the pipeline slot, GC stores beyond the retain
// horizon.
func (nd *Node) finalize(st *epochState, completed bool, now time.Time) {
	delete(nd.open, st.epoch)
	res := EpochResult{
		Epoch:     st.epoch,
		Node:      nd.cfg.Self,
		Completed: completed,
		CatchUp:   st.catchup,
		LedgerErr: st.ledger.VerifyReceiver(nd.cfg.Self, nd.gamma),
		Repaired:  st.repaired,
		Copies:    st.copies,
	}
	if completed && !st.catchup {
		res.Latency = now.Sub(st.scheduled)
	}
	items, bytes := 0, 0
	for w, payload := range st.store {
		if w.Source == nd.cfg.Self || w.Channel != 0 {
			continue // count each source's batch once, not γ times
		}
		if batch, err := DecodeBatch(payload); err == nil {
			for _, it := range batch {
				items++
				bytes += len(it.Data)
			}
		} else if len(payload) > 0 {
			items++
			bytes += len(payload)
		}
	}
	res.Items = items
	if nd.cfg.CollectPayloads {
		res.Payloads = make(map[repair.Want][]byte, len(st.store))
		for w, p := range st.store {
			res.Payloads[w] = p
		}
	}
	nd.results = append(nd.results, res)
	if completed {
		nd.cfg.Gauges.Delivered(items, bytes)
	}
	lat := res.Latency
	if st.catchup || !completed {
		lat = -1
	}
	nd.cfg.Gauges.EpochClosed(completed, lat)
	if st.catchup && completed {
		nd.cfg.Gauges.CaughtUp()
	}
	nd.retained[st.epoch] = st.store
	if nd.next > uint32(nd.cfg.Retain) {
		min := nd.next - uint32(nd.cfg.Retain)
		for e := range nd.retained {
			if e < min {
				delete(nd.retained, e)
			}
		}
	}
}

// Serve keeps answering pulls and JOIN queries from the retained
// stores after Run returns — a node that finished its own epochs may
// be a straggler's only provider, and a rejoiner may still need the
// epoch handshake. Call it after Run; it exits when ctx is cancelled
// or the endpoint closes.
func (nd *Node) Serve(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case body, ok := <-nd.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			f, err := transport.DecodeFrame(body)
			if err != nil {
				continue
			}
			nd.clock.Update(f.HLC)
			if ok, err := transport.VerifyFrame(nd.cfg.Keyring, f); err != nil || !ok {
				continue
			}
			switch f.Kind {
			case transport.FrameNak:
				nd.serveNak(f)
			case transport.FrameJoin:
				nd.serveJoin(f)
			}
		}
	}
}

func (nd *Node) result() *Result {
	sort.Slice(nd.results, func(i, j int) bool { return nd.results[i].Epoch < nd.results[j].Epoch })
	return &Result{
		Self:     nd.cfg.Self,
		Epochs:   nd.results,
		NaksSent: nd.naksSent,
		Stats:    nd.cfg.Endpoint.Stats(),
	}
}
