package stream

import (
	"errors"
	"testing"
	"time"

	"ihc/internal/observe"
)

// manualClock lets the token-bucket tests advance time explicitly.
type manualClock struct{ t time.Time }

func (m *manualClock) now() time.Time { return m.t }

func newTestIngress(cfg IngressConfig) (*Ingress, *manualClock) {
	mc := &manualClock{t: time.Unix(1000, 0)}
	in := NewIngress(cfg, nil)
	in.now = mc.now
	return in, mc
}

func TestIngressQueueBoundsShed(t *testing.T) {
	in, _ := newTestIngress(IngressConfig{HighCap: 2, LowCap: 2})
	for i := 0; i < 2; i++ {
		if err := in.Submit([]byte{byte(i)}, High); err != nil {
			t.Fatalf("high %d: %v", i, err)
		}
		if err := in.Submit([]byte{byte(i)}, Low); err != nil {
			t.Fatalf("low %d: %v", i, err)
		}
	}
	if err := in.Submit([]byte{9}, High); !errors.Is(err, ErrShed) {
		t.Fatalf("full high queue returned %v, want ErrShed", err)
	}
	if err := in.Submit([]byte{9}, Low); !errors.Is(err, ErrShed) {
		t.Fatalf("full low queue returned %v, want ErrShed", err)
	}
	h, l := in.Depth()
	if h != 2 || l != 2 {
		t.Fatalf("depth (%d,%d), want (2,2)", h, l)
	}
}

func TestIngressTokenBucketShedsLowNotHigh(t *testing.T) {
	in, mc := newTestIngress(IngressConfig{Rate: 10, Burst: 2})
	// Burst allows 2 immediately; the third low is shed.
	for i := 0; i < 2; i++ {
		if err := in.Submit([]byte{byte(i)}, Low); err != nil {
			t.Fatalf("burst %d: %v", i, err)
		}
	}
	if err := in.Submit([]byte{9}, Low); !errors.Is(err, ErrShed) {
		t.Fatalf("rate-limited low returned %v, want ErrShed", err)
	}
	// High bypasses the bucket entirely.
	if err := in.Submit([]byte{9}, High); err != nil {
		t.Fatalf("high under empty bucket: %v", err)
	}
	// A 100ms refill at 10/s buys exactly one more token.
	mc.t = mc.t.Add(100 * time.Millisecond)
	if err := in.Submit([]byte{10}, Low); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := in.Submit([]byte{11}, Low); !errors.Is(err, ErrShed) {
		t.Fatal("second post-refill low admitted; bucket should hold one token")
	}
}

func TestIngressDrainHighFirstWithinBudget(t *testing.T) {
	in, _ := newTestIngress(IngressConfig{MaxBatchBytes: batchHdr + 3*(itemOverhead+4)})
	for i := 0; i < 3; i++ {
		if err := in.Submit([]byte{0, 0, 0, byte(i)}, Low); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Submit([]byte{1, 1, 1, 1}, High); err != nil {
		t.Fatal(err)
	}
	items := in.drain()
	if len(items) != 3 {
		t.Fatalf("drained %d items into a 3-item budget", len(items))
	}
	if !items[0].High {
		t.Fatal("high-priority item not drained first")
	}
	// The item that did not fit stays queued for the next epoch.
	h, l := in.Depth()
	if h != 0 || l != 1 {
		t.Fatalf("post-drain depth (%d,%d), want (0,1)", h, l)
	}
	if next := in.drain(); len(next) != 1 {
		t.Fatalf("second drain got %d items, want the leftover", len(next))
	}
}

func TestIngressGaugesCount(t *testing.T) {
	g := &observe.StreamGauges{}
	in := NewIngress(IngressConfig{HighCap: 1, LowCap: 1}, g)
	_ = in.Submit([]byte{1}, High)
	_ = in.Submit([]byte{2}, High) // shed
	_ = in.Submit([]byte{3}, Low)
	in.drain()
	s := g.Snapshot()
	if s.SubmittedHigh != 1 || s.SubmittedLow != 1 || s.ShedHigh != 1 {
		t.Fatalf("snapshot %+v: want 1 high, 1 low submitted, 1 high shed", s)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", s.QueueDepth)
	}
}
