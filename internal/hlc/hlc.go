// Package hlc implements hybrid logical clocks (Kulkarni et al.,
// "Logical Physical Clocks and Consistent Snapshots"): a timestamp that
// tracks physical wall time closely while preserving the happens-before
// ordering of a Lamport clock. The transport layer stamps every frame
// with the sender's HLC and merges the remote timestamp on receipt, so
// the "loosely synchronized stage starts" the paper assumes hold on a
// real mesh even when the hosts' physical clocks drift: a node whose
// clock lags is dragged forward by the first frame it receives from a
// node that has already entered a later stage.
//
// A Timestamp is (Wall, Logical): Wall is physical nanoseconds, Logical
// breaks ties among events within one Wall reading. The clock never
// runs backwards, and Update never returns a timestamp earlier than the
// remote one it merged — the two properties the stage-start protocol
// relies on.
package hlc

import (
	"fmt"
	"sync"
	"time"
)

// Timestamp is one hybrid-logical-clock reading.
type Timestamp struct {
	Wall    int64  // physical component, Unix nanoseconds
	Logical uint32 // causality component within one Wall reading
}

// Compare orders two timestamps: -1, 0, or +1 as t is before, equal to,
// or after u.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t.Wall < u.Wall:
		return -1
	case t.Wall > u.Wall:
		return 1
	case t.Logical < u.Logical:
		return -1
	case t.Logical > u.Logical:
		return 1
	default:
		return 0
	}
}

// Before reports whether t orders strictly before u.
func (t Timestamp) Before(u Timestamp) bool { return t.Compare(u) < 0 }

// Time returns the physical component as a time.Time.
func (t Timestamp) Time() time.Time { return time.Unix(0, t.Wall) }

func (t Timestamp) String() string {
	return fmt.Sprintf("hlc(%d.%d)", t.Wall, t.Logical)
}

// Clock is a thread-safe hybrid logical clock. The zero value is not
// usable; construct with New.
type Clock struct {
	mu   sync.Mutex
	last Timestamp
	now  func() int64 // physical clock source, Unix nanoseconds
}

// New returns a clock driven by the system wall clock.
func New() *Clock { return NewAt(func() int64 { return time.Now().UnixNano() }) }

// NewAt returns a clock driven by an arbitrary physical source —
// tests substitute a manual one to pin merge behaviour exactly.
func NewAt(now func() int64) *Clock { return &Clock{now: now} }

// Now returns a timestamp for a local event: the physical clock if it
// has advanced past the last issued timestamp, else the last timestamp
// with the logical component bumped. Successive calls are strictly
// increasing.
func (c *Clock) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	pt := c.now()
	if pt > c.last.Wall {
		c.last = Timestamp{Wall: pt}
	} else {
		c.last.Logical++
	}
	return c.last
}

// Update merges a remote timestamp into the clock (called on frame
// receipt) and returns the timestamp of the receive event. The result
// is strictly after both the remote timestamp and every timestamp the
// clock issued before, which is what makes "a frame from stage i+1
// fast-forwards the receiver" sound: the receiver's subsequent readings
// can never order before the sender's send event.
func (c *Clock) Update(remote Timestamp) Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	pt := c.now()
	switch {
	case pt > c.last.Wall && pt > remote.Wall:
		c.last = Timestamp{Wall: pt}
	case remote.Wall > c.last.Wall:
		c.last = Timestamp{Wall: remote.Wall, Logical: remote.Logical + 1}
	case remote.Wall == c.last.Wall && remote.Logical >= c.last.Logical:
		c.last = Timestamp{Wall: remote.Wall, Logical: remote.Logical + 1}
	default:
		c.last.Logical++
	}
	return c.last
}

// Last returns the most recently issued timestamp without advancing the
// clock.
func (c *Clock) Last() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}
