package hlc

import (
	"sync"
	"testing"
)

// manual is a settable physical clock.
type manual struct {
	mu sync.Mutex
	t  int64
}

func (m *manual) now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

func (m *manual) set(t int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = t
}

func TestNowMonotonic(t *testing.T) {
	phys := &manual{t: 100}
	c := NewAt(phys.now)
	prev := c.Now()
	if prev.Wall != 100 || prev.Logical != 0 {
		t.Fatalf("first reading = %v, want 100.0", prev)
	}
	// Physical clock frozen: logical component must carry monotonicity.
	for i := 0; i < 10; i++ {
		ts := c.Now()
		if !prev.Before(ts) {
			t.Fatalf("Now() not strictly increasing: %v then %v", prev, ts)
		}
		prev = ts
	}
	// Physical clock jumps forward: wall component takes over again.
	phys.set(200)
	ts := c.Now()
	if ts.Wall != 200 || ts.Logical != 0 {
		t.Fatalf("after physical advance got %v, want 200.0", ts)
	}
}

func TestUpdateDominatesRemote(t *testing.T) {
	phys := &manual{t: 100}
	c := NewAt(phys.now)

	// Remote far ahead of local physical time: the merge must land after
	// the remote timestamp (causality), not at local physical time.
	got := c.Update(Timestamp{Wall: 500, Logical: 7})
	if !(Timestamp{Wall: 500, Logical: 7}).Before(got) {
		t.Fatalf("Update result %v not after remote 500.7", got)
	}
	if got.Wall != 500 || got.Logical != 8 {
		t.Fatalf("Update = %v, want 500.8", got)
	}

	// Remote behind: local just ticks.
	prev := got
	got = c.Update(Timestamp{Wall: 10, Logical: 3})
	if !prev.Before(got) {
		t.Fatalf("Update went backwards: %v then %v", prev, got)
	}

	// Physical clock overtakes everything: wall resets, logical clears.
	phys.set(1000)
	got = c.Update(Timestamp{Wall: 600})
	if got.Wall != 1000 || got.Logical != 0 {
		t.Fatalf("Update after physical overtake = %v, want 1000.0", got)
	}
}

func TestCompare(t *testing.T) {
	a := Timestamp{Wall: 1, Logical: 2}
	b := Timestamp{Wall: 1, Logical: 3}
	cc := Timestamp{Wall: 2, Logical: 0}
	if a.Compare(a) != 0 || a.Compare(b) != -1 || b.Compare(a) != 1 || b.Compare(cc) != -1 {
		t.Fatal("Compare ordering wrong")
	}
}

// TestBackwardsClockMonotonic runs the physical source backwards —
// NTP step, VM migration, leap smearing gone wrong — mid-sequence.
// Readings must stay strictly increasing through the regression and
// recover the wall component only once physical time passes the high
// water mark again.
func TestBackwardsClockMonotonic(t *testing.T) {
	phys := &manual{t: 1000}
	c := NewAt(phys.now)
	prev := c.Now()
	for i, pt := range []int64{900, 500, 100, 999, 1000} {
		phys.set(pt)
		for k := 0; k < 3; k++ {
			ts := c.Now()
			if !prev.Before(ts) {
				t.Fatalf("step %d (phys=%d): Now went backwards: %v then %v", i, pt, prev, ts)
			}
			if ts.Wall < 1000 {
				t.Fatalf("step %d: wall component %v regressed below the high water mark", i, ts)
			}
			prev = ts
		}
		// Update with a stale remote must not regress either.
		ts := c.Update(Timestamp{Wall: pt - 50, Logical: 9})
		if !prev.Before(ts) {
			t.Fatalf("step %d: Update went backwards: %v then %v", i, prev, ts)
		}
		prev = ts
	}
	// Physical time finally overtakes: wall takes over, logical clears.
	phys.set(5000)
	if ts := c.Now(); ts.Wall != 5000 || ts.Logical != 0 {
		t.Fatalf("after recovery got %v, want 5000.0", ts)
	}
}

// TestConcurrentNowUpdateUnique hammers one clock from goroutines
// mixing Now and Update while the physical source jitters backwards
// and freezes. Every issued timestamp must be unique (the clock hands
// out each reading exactly once) and each goroutine's sequence must be
// strictly increasing. Run under -race this also proves the locking.
func TestConcurrentNowUpdateUnique(t *testing.T) {
	phys := &manual{t: 1}
	c := NewAt(phys.now)
	const goroutines, per = 8, 2000
	out := make([][]Timestamp, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var ts Timestamp
				switch i % 4 {
				case 0, 1:
					ts = c.Now()
				case 2:
					ts = c.Update(Timestamp{Wall: int64(i), Logical: uint32(g)})
				case 3:
					// Remote from the "future" drags the clock forward.
					ts = c.Update(Timestamp{Wall: int64(1000 + i), Logical: 2})
				}
				out[g] = append(out[g], ts)
				if i%16 == 0 {
					// Jitter the physical source, sometimes backwards.
					phys.set(int64((i * 37) % 500))
				}
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[Timestamp]int, goroutines*per)
	for g, seq := range out {
		for i := 1; i < len(seq); i++ {
			if !seq[i-1].Before(seq[i]) {
				t.Fatalf("goroutine %d: non-increasing %v then %v", g, seq[i-1], seq[i])
			}
		}
		for _, ts := range seq {
			if prior, dup := seen[ts]; dup {
				t.Fatalf("timestamp %v issued to goroutines %d and %d", ts, prior, g)
			}
			seen[ts] = g
		}
	}
}

func TestConcurrentMonotonic(t *testing.T) {
	phys := &manual{t: 1}
	c := NewAt(phys.now)
	var wg sync.WaitGroup
	out := make([][]Timestamp, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				out[g] = append(out[g], c.Now())
			}
		}(g)
	}
	wg.Wait()
	for g, seq := range out {
		for i := 1; i < len(seq); i++ {
			if !seq[i-1].Before(seq[i]) {
				t.Fatalf("goroutine %d: non-increasing %v then %v", g, seq[i-1], seq[i])
			}
		}
	}
}
