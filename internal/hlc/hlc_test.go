package hlc

import (
	"sync"
	"testing"
)

// manual is a settable physical clock.
type manual struct {
	mu sync.Mutex
	t  int64
}

func (m *manual) now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

func (m *manual) set(t int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = t
}

func TestNowMonotonic(t *testing.T) {
	phys := &manual{t: 100}
	c := NewAt(phys.now)
	prev := c.Now()
	if prev.Wall != 100 || prev.Logical != 0 {
		t.Fatalf("first reading = %v, want 100.0", prev)
	}
	// Physical clock frozen: logical component must carry monotonicity.
	for i := 0; i < 10; i++ {
		ts := c.Now()
		if !prev.Before(ts) {
			t.Fatalf("Now() not strictly increasing: %v then %v", prev, ts)
		}
		prev = ts
	}
	// Physical clock jumps forward: wall component takes over again.
	phys.set(200)
	ts := c.Now()
	if ts.Wall != 200 || ts.Logical != 0 {
		t.Fatalf("after physical advance got %v, want 200.0", ts)
	}
}

func TestUpdateDominatesRemote(t *testing.T) {
	phys := &manual{t: 100}
	c := NewAt(phys.now)

	// Remote far ahead of local physical time: the merge must land after
	// the remote timestamp (causality), not at local physical time.
	got := c.Update(Timestamp{Wall: 500, Logical: 7})
	if !(Timestamp{Wall: 500, Logical: 7}).Before(got) {
		t.Fatalf("Update result %v not after remote 500.7", got)
	}
	if got.Wall != 500 || got.Logical != 8 {
		t.Fatalf("Update = %v, want 500.8", got)
	}

	// Remote behind: local just ticks.
	prev := got
	got = c.Update(Timestamp{Wall: 10, Logical: 3})
	if !prev.Before(got) {
		t.Fatalf("Update went backwards: %v then %v", prev, got)
	}

	// Physical clock overtakes everything: wall resets, logical clears.
	phys.set(1000)
	got = c.Update(Timestamp{Wall: 600})
	if got.Wall != 1000 || got.Logical != 0 {
		t.Fatalf("Update after physical overtake = %v, want 1000.0", got)
	}
}

func TestCompare(t *testing.T) {
	a := Timestamp{Wall: 1, Logical: 2}
	b := Timestamp{Wall: 1, Logical: 3}
	cc := Timestamp{Wall: 2, Logical: 0}
	if a.Compare(a) != 0 || a.Compare(b) != -1 || b.Compare(a) != 1 || b.Compare(cc) != -1 {
		t.Fatal("Compare ordering wrong")
	}
}

func TestConcurrentMonotonic(t *testing.T) {
	phys := &manual{t: 1}
	c := NewAt(phys.now)
	var wg sync.WaitGroup
	out := make([][]Timestamp, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				out[g] = append(out[g], c.Now())
			}
		}(g)
	}
	wg.Wait()
	for g, seq := range out {
		for i := 1; i < len(seq); i++ {
			if !seq[i-1].Before(seq[i]) {
				t.Fatalf("goroutine %d: non-increasing %v then %v", g, seq[i-1], seq[i])
			}
		}
	}
}
