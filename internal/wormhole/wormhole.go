// Package wormhole is a flit-level wormhole-routing model built to study
// the one hazard the paper's main simulator abstracts away: deadlock.
//
// In wormhole routing a blocked packet is not buffered — it stays
// stretched across the channels it occupies, so packets circulating a
// ring can form a cyclic wait and deadlock. The paper (Section IV) notes
// that the wormhole implementation of the IHC algorithm is safe if
// (a) the network is dedicated to the broadcast — with η >= μ no packet
// ever blocks, so the cycle of waits cannot form — or (b) Dally & Seitz's
// virtual-channel method is used: each physical link carries multiple
// virtual channels and a packet switches from the high to the low channel
// class when it crosses its cycle's dateline, making the channel
// dependency graph acyclic.
//
// The model is deliberately simple and fully deterministic: time advances
// in unit steps (one flit transfer); each packet's head tries to acquire
// the next channel (selected by the dateline rule), and its μ-flit body
// occupies the last μ channels behind the head. A sweep in which no
// packet moves while packets remain is a deadlock, and the blocked
// wait-for cycle is reported.
package wormhole

import (
	"fmt"
	"sort"

	"ihc/internal/topology"
)

// Channel identifies one virtual channel of one directed link.
type Channel struct {
	Link topology.Arc
	VC   int
}

// Packet is one wormhole worm: a route, a length in flits, and an
// injection time.
type Packet struct {
	ID     int
	Route  []topology.Node // len >= 2
	Flits  int             // body length μ >= 1
	Inject int             // time step at which the header may first move
	// Dateline is the position index in Route after which the packet
	// switches from VC 1 to VC 0 (the Dally-Seitz rule). A negative
	// value means the packet always uses VC 0 (single-channel network).
	Dateline int
}

// Result summarizes a run.
type Result struct {
	Deadlocked bool
	// WaitCycle lists the packet IDs forming the cyclic wait when
	// deadlocked (in discovery order).
	WaitCycle []int
	// Steps is the number of time steps simulated (to completion or
	// deadlock).
	Steps int
	// MaxQueued is the peak number of simultaneously blocked packets.
	MaxQueued int
}

// Network is a wormhole-routing instance.
type Network struct {
	g   *topology.Graph
	vcs int
}

// New builds a wormhole network over g with the given number of virtual
// channels per directed link (>= 1).
func New(g *topology.Graph, vcs int) (*Network, error) {
	if vcs < 1 {
		return nil, fmt.Errorf("wormhole: need >= 1 virtual channel, got %d", vcs)
	}
	return &Network{g: g, vcs: vcs}, nil
}

// intent is one packet's desired action in a time step.
type intent struct {
	want     Channel  // channel the header wants (zero for drains)
	drain    bool     // header at destination, draining body flits
	releases *Channel // channel freed if this packet moves
}

type worm struct {
	spec Packet
	// pos is the index of the route hop the header occupies: the header
	// has crossed link pos-1 (route[pos-1] -> route[pos]); -1 = not
	// injected. done when pos == len(route)-1 and body drained.
	pos int
	// body holds the channels currently occupied, oldest first.
	body []Channel
	done bool
}

// vcFor returns the virtual channel class the packet must use for the
// hop leaving route position i.
func (w *worm) vcFor(i, vcs int) int {
	if vcs == 1 || w.spec.Dateline < 0 {
		return 0
	}
	if i > w.spec.Dateline {
		return 0
	}
	return 1 % vcs
}

// Run simulates the packets to completion or deadlock.
//
// Advancement uses simultaneous (lockstep) semantics, the way wormhole
// hardware pipelines flits: in each time step the set of movable packets
// is computed as a fixpoint — a packet can move if its wanted channel is
// free, or is being released this very step by another moving packet.
// This is what lets an η = μ IHC pipeline flow around a ring with a
// single virtual channel: every packet's advance releases the channel
// the packet behind it needs.
func (n *Network) Run(packets []Packet, maxSteps int) (*Result, error) {
	worms := make([]*worm, len(packets))
	for i, p := range packets {
		if len(p.Route) < 2 {
			return nil, fmt.Errorf("wormhole: packet %d has a %d-node route", p.ID, len(p.Route))
		}
		if p.Flits < 1 {
			return nil, fmt.Errorf("wormhole: packet %d has %d flits", p.ID, p.Flits)
		}
		for h := 0; h+1 < len(p.Route); h++ {
			if !n.g.HasEdge(p.Route[h], p.Route[h+1]) {
				return nil, fmt.Errorf("wormhole: packet %d route hop %d is not a link", p.ID, h)
			}
		}
		worms[i] = &worm{spec: p, pos: -1}
	}
	owner := make(map[Channel]int) // channel -> packet index holding it
	res := &Result{}

	for step := 0; ; step++ {
		if step > maxSteps {
			return nil, fmt.Errorf("wormhole: exceeded %d steps without completion or deadlock", maxSteps)
		}
		res.Steps = step

		intents := make(map[int]intent)
		allDone := true
		pendingInject := false
		for i, w := range worms {
			if w.done {
				continue
			}
			allDone = false
			if step < w.spec.Inject {
				pendingInject = true
				continue
			}
			if w.pos == len(w.spec.Route)-1 {
				// Header arrived: drain one body flit per step.
				rel := w.body[0]
				intents[i] = intent{drain: true, releases: &rel}
				continue
			}
			from := 0
			if w.pos >= 0 {
				from = w.pos
			}
			want := Channel{
				Link: topology.Arc{From: w.spec.Route[from], To: w.spec.Route[from+1]},
				VC:   w.vcFor(from, n.vcs),
			}
			it := intent{want: want}
			if len(w.body) == w.spec.Flits {
				rel := w.body[0]
				it.releases = &rel
			}
			intents[i] = it
		}
		if allDone {
			return res, nil
		}

		// Movable set S: the *greatest* fixpoint — start from everyone
		// and remove packets whose wanted channel is neither free nor
		// released this step by a surviving mover. The greatest fixpoint
		// (rather than growth from free seeds) is what admits the fully
		// loaded η = μ ring rotating synchronously: every mover's want
		// is released by the mover ahead of it, all the way around.
		// Genuine deadlocks still shrink to nothing, because a worm with
		// a non-full body releases no channel when it moves.
		movable := map[int]bool{}
		for i := range intents {
			movable[i] = true
		}
		ids := make([]int, 0, len(intents))
		for i := range intents {
			ids = append(ids, i)
		}
		sort.Ints(ids)
		for {
			released := map[Channel]bool{}
			for i, it := range intents {
				if movable[i] && it.releases != nil {
					released[*it.releases] = true
				}
			}
			next := map[int]bool{}
			claimed := map[Channel]int{}
			for _, i := range ids {
				if !movable[i] {
					continue
				}
				it := intents[i]
				if it.drain {
					next[i] = true
					continue
				}
				holder, busy := owner[it.want]
				avail := !busy || (movable[holder] && released[it.want] && ownerReleases(intents, holder, it.want))
				if !avail {
					continue
				}
				if _, dup := claimed[it.want]; dup {
					continue // a lower-id mover claimed this channel
				}
				claimed[it.want] = i
				next[i] = true
			}
			if len(next) == len(movable) {
				break
			}
			movable = next
		}

		if len(movable) == 0 {
			if pendingInject {
				continue // waiting for injections only
			}
			// Nothing can move and nothing will: find the wait cycle.
			waitsOn := map[int]int{}
			for i, it := range intents {
				if it.drain {
					continue
				}
				if holder, busy := owner[it.want]; busy {
					waitsOn[i] = holder
				}
			}
			res.Deadlocked = true
			for _, i := range findCycle(waitsOn) {
				res.WaitCycle = append(res.WaitCycle, worms[i].spec.ID)
			}
			return res, nil
		}
		blocked := 0
		for i := range intents {
			if !movable[i] {
				blocked++
			}
		}
		if blocked > res.MaxQueued {
			res.MaxQueued = blocked
		}

		// Apply: releases first, then acquisitions.
		for i := range movable {
			it := intents[i]
			w := worms[i]
			if it.releases != nil {
				delete(owner, *it.releases)
				w.body = w.body[1:]
			}
			if it.drain {
				if len(w.body) == 0 {
					w.done = true
				}
			}
		}
		for i := range movable {
			it := intents[i]
			if it.drain {
				continue
			}
			w := worms[i]
			owner[it.want] = i
			w.body = append(w.body, it.want)
			if w.pos < 0 {
				w.pos = 1
			} else {
				w.pos++
			}
		}
	}
}

// ownerReleases reports whether the holder's move releases exactly ch.
func ownerReleases(intents map[int]intent, holder int, ch Channel) bool {
	it, ok := intents[holder]
	return ok && it.releases != nil && *it.releases == ch
}

// findCycle returns a cycle in the wait-for graph, or nil.
func findCycle(waitsOn map[int]int) []int {
	keys := make([]int, 0, len(waitsOn))
	for k := range waitsOn {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, start := range keys {
		seen := map[int]int{} // node -> position in walk
		walk := []int{}
		cur := start
		for {
			if at, ok := seen[cur]; ok {
				return walk[at:]
			}
			next, ok := waitsOn[cur]
			if !ok {
				break // chain ends at a movable packet
			}
			seen[cur] = len(walk)
			walk = append(walk, cur)
			cur = next
		}
	}
	return nil
}
