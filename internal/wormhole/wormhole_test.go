package wormhole

import (
	"testing"

	"ihc/internal/hamilton"
	"ihc/internal/topology"
)

// ringPackets builds one packet per source (spaced eta apart) circling an
// n-ring for n-1 hops, with the dateline rule applied relative to node 0.
func ringPackets(n, eta, flits int, dateline bool) []Packet {
	var out []Packet
	id := 0
	for s := 0; s < n; s += eta {
		route := make([]topology.Node, n)
		for i := range route {
			route[i] = topology.Node((s + i) % n)
		}
		dl := -1
		if dateline {
			// Position index after which the packet has crossed node 0:
			// node 0 is at position n-s (mod n) in this packet's route.
			dl = (n - s) % n
		}
		out = append(out, Packet{ID: id, Route: route, Flits: flits, Dateline: dl})
		id++
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(topology.MustCycle(4), 0); err == nil {
		t.Fatal("0 virtual channels accepted")
	}
	n, err := New(topology.MustCycle(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Packet{
		{ID: 0, Route: []topology.Node{0}, Flits: 1},
	}
	if _, err := n.Run(bad, 100); err == nil {
		t.Fatal("short route accepted")
	}
	if _, err := n.Run([]Packet{{ID: 0, Route: []topology.Node{0, 1}, Flits: 0}}, 100); err == nil {
		t.Fatal("0 flits accepted")
	}
	if _, err := n.Run([]Packet{{ID: 0, Route: []topology.Node{0, 2}, Flits: 1}}, 100); err == nil {
		t.Fatal("non-adjacent route accepted")
	}
}

func TestSinglePacketCompletes(t *testing.T) {
	net, _ := New(topology.MustCycle(8), 1)
	res, err := net.Run(ringPackets(8, 8, 2, false), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("single packet deadlocked")
	}
	// 7 hops + 2 drain flits, pipelined: header advances one channel per
	// step, tail drains after.
	if res.Steps < 7 || res.Steps > 12 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

// The IHC invariant carried to wormhole switching: with η = μ the ring
// pipeline is self-synchronizing — every advance frees the channel the
// packet behind needs — so even a single virtual channel never deadlocks.
func TestEtaEqualsMuNeverDeadlocks(t *testing.T) {
	for _, mu := range []int{1, 2, 4} {
		net, _ := New(topology.MustCycle(24), 1)
		res, err := net.Run(ringPackets(24, mu, mu, false), 10000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("η=μ=%d deadlocked (cycle %v)", mu, res.WaitCycle)
		}
	}
}

// Oversubscription (η < μ) with one virtual channel deadlocks: the worms
// wrap the ring and form a cyclic wait — the hazard Dally & Seitz's
// virtual channels exist to break.
func TestOversubscribedRingDeadlocks(t *testing.T) {
	net, _ := New(topology.MustCycle(8), 1)
	res, err := net.Run(ringPackets(8, 1, 2, false), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("η=1 < μ=2 ring did not deadlock on one virtual channel")
	}
	if len(res.WaitCycle) < 2 {
		t.Fatalf("wait cycle %v too short", res.WaitCycle)
	}
}

// The same oversubscribed ring with two virtual channels and the dateline
// rule completes: packets that crossed node 0 switch to VC 0, so the
// channel dependency graph is acyclic.
func TestDatelineVirtualChannelsPreventDeadlock(t *testing.T) {
	net, _ := New(topology.MustCycle(8), 2)
	res, err := net.Run(ringPackets(8, 1, 2, true), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("dateline VCs deadlocked (cycle %v)", res.WaitCycle)
	}
	if res.MaxQueued == 0 {
		t.Fatal("expected some blocking while packets serialized")
	}
}

// Control: two VCs without the dateline rule still deadlock (everyone
// stays on one class), showing it is the dateline switch, not the extra
// buffering, that breaks the cycle.
func TestTwoVCsWithoutDatelineStillDeadlock(t *testing.T) {
	net, _ := New(topology.MustCycle(8), 2)
	res, err := net.Run(ringPackets(8, 1, 2, false), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("expected deadlock without the dateline rule")
	}
}

// A full IHC wormhole broadcast on a class-Λ network: all γ directed
// cycles at η = μ on one virtual channel, dedicated network — the paper's
// "dedicated mode" wormhole claim.
func TestIHCWormholeDedicated(t *testing.T) {
	g := topology.MustSquareTorus(4)
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	dir := hamilton.DirectedCycles(cycles)
	const mu = 2
	var packets []Packet
	id := 0
	for _, c := range dir {
		// Anchor at node 0 to define ID_j and the stage structure.
		anchored := c.Rotated(c.Positions()[0])
		for _, stage := range []int{0, 1} {
			for pos := stage; pos < len(anchored); pos += mu {
				route := make([]topology.Node, len(anchored))
				for i := range route {
					route[i] = anchored[(pos+i)%len(anchored)]
				}
				packets = append(packets, Packet{
					ID:     id,
					Route:  route,
					Flits:  mu,
					Inject: stage * (len(anchored) + mu) * 2, // stages well separated
				})
				id++
			}
		}
	}
	net, _ := New(g, 1)
	res, err := net.Run(packets, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("dedicated IHC wormhole deadlocked (cycle %v)", res.WaitCycle)
	}
	if res.MaxQueued != 0 {
		t.Fatalf("dedicated IHC wormhole blocked %d packets", res.MaxQueued)
	}
}
