// Command atasim runs one ATA reliable broadcast on the simulator and
// reports timing, contention, and delivery statistics.
//
// Usage:
//
//	atasim -net Q6 -algo ihc -eta 2
//	atasim -net Q6 -algo ihc -eta 2,4,8     # sweep η on the worker pool
//	atasim -net SQ8 -algo vsq
//	atasim -net Q6 -algo ihc -eta 2 -rho 0.5 -seed 7
//	atasim -net H3 -algo ks -saturated
//	atasim -net Q6 -algo frs
//	atasim -net Q6 -algo vrs
//	atasim -net Q6 -algo ihc -eta 2 -metrics            # per-link/stage aggregates
//	atasim -net Q6 -algo ihc -eta 2 -oracle             # live Theorem 3/4 verification
//	atasim -net Q4 -algo ihc -eta 2 -trace run.jsonl    # per-hop JSONL stream
//	atasim -net Q4 -algo ihc -eta 2 -trace run.json -tracefmt chrome
//	atasim -net Q10 -algo ihc -eta 2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"ihc/internal/baseline/atarun"
	"ihc/internal/baseline/frs"
	"ihc/internal/baseline/ks"
	"ihc/internal/baseline/rs"
	"ihc/internal/baseline/vsq"
	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/observe"
	"ihc/internal/profiling"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// stopProf finishes any active profiles; fail() runs it so profiles
// survive error exits too.
var stopProf = func() {}

func main() {
	var (
		net       = flag.String("net", "Q4", "network: Q<m>, SQ<m>, or H<m>")
		algo      = flag.String("algo", "ihc", "algorithm: ihc, vrs, ks, vsq, frs")
		eta       = flag.String("eta", "2", "IHC interleaving distance η, or a comma-separated list to sweep")
		workers   = flag.Int("workers", 0, "worker-pool width for η sweeps (0 = GOMAXPROCS, 1 = sequential)")
		engineW   = flag.Int("engine-workers", 0, "shard each simulation run across this many goroutines (0/1 = sequential engine; results are byte-identical)")
		overlap   = flag.Bool("overlap", false, "IHC: overlap stages (modified algorithm)")
		taus      = flag.Int64("taus", 100, "startup τ_S (ticks)")
		alpha     = flag.Int64("alpha", 20, "cut-through delay α (ticks)")
		mu        = flag.Int("mu", 2, "packet length μ (FIFO units)")
		d         = flag.Int64("d", 37, "queueing delay D (ticks)")
		rho       = flag.Float64("rho", 0, "background link load ρ in [0,1)")
		seed      = flag.Int64("seed", 1, "background traffic seed")
		saturated = flag.Bool("saturated", false, "heavy-traffic limiting regime (Table IV)")
		verify    = flag.Bool("verify", true, "verify the γ-copy ATA delivery postcondition")
		ledgerF   = flag.Bool("ledger", false, "ihc: verify the ATA postcondition with the O(N) counters-only copy ledger instead of the O(N²) matrix — the memory-bounded mode for Q14+ scale runs")
		metricsF  = flag.Bool("metrics", false, "aggregate per-link/node/stage metrics and print a summary")
		oracleF   = flag.Bool("oracle", false, "ihc: verify Theorem 3/4 invariants live from the hop stream")
		oracleS   = flag.Bool("oracle-strict", false, "like -oracle but asserts contention-freeness unconditionally — exits non-zero on any contention, even at η < μ")
		tracePath = flag.String("trace", "", "write the per-hop observer stream to this file (\"-\" for stdout)")
		traceFmt  = flag.String("tracefmt", "jsonl", "trace format: jsonl or chrome (chrome://tracing / Perfetto)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stop, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	stopProf = stop
	defer stop()

	p := simnet.Params{
		TauS: simnet.Time(*taus), Alpha: simnet.Time(*alpha), Mu: *mu,
		D: simnet.Time(*d), Rho: *rho, Seed: *seed,
	}
	g, err := buildGraph(*net)
	if err != nil {
		fail(err)
	}

	trace, traceDone, err := openTrace(*tracePath, *traceFmt)
	if err != nil {
		fail(err)
	}

	switch *algo {
	case "ihc":
		etas, err := parseEtas(*eta)
		if err != nil {
			fail(err)
		}
		cycles, err := hamilton.Decompose(g)
		if err != nil {
			fail(err)
		}
		x, err := core.New(g, cycles)
		if err != nil {
			fail(err)
		}
		// The IHC instance is read-only during Run (each call builds a
		// fresh simnet.Network), so the η sweep points fan out across a
		// bounded pool; results print in input order.
		type out struct {
			res  *core.Result
			err  error
			met  *observe.Metrics
			orc  *observe.Oracle
			done bool
		}
		outs := make([]out, len(etas))
		w := *workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > len(etas) {
			w = len(etas)
		}
		if trace != nil {
			// A trace sink is single-stream: run the sweep sequentially so
			// the exported stream is the engine's deterministic order.
			w = 1
		}
		runOne := func(i int) {
			select {
			case <-ctx.Done():
				return // sweep interrupted: leave the point unrun
			default:
			}
			var sinks []simnet.Observer
			if trace != nil {
				sinks = append(sinks, trace)
			}
			var met *observe.Metrics
			if *metricsF {
				met = observe.NewMetrics()
				sinks = append(sinks, met)
			}
			var orc *observe.Oracle
			if *oracleF || *oracleS {
				n := g.N()
				// Theorem 3 promises contention-freeness only on a
				// dedicated, unmodified run with η >= μ and N mod η = 0;
				// elsewhere the oracle counts contention without failing —
				// unless -oracle-strict demands a clean run regardless.
				free := *oracleS ||
					(*rho == 0 && !*saturated && !*overlap && etas[i] >= p.Mu && n%etas[i] == 0)
				oc := observe.OracleConfig{
					X: x, Params: p, Eta: etas[i],
					ExpectContentionFree: free,
					ExpectFinish:         -1,
					Light:                n > 512,
				}
				if free && n <= 256 {
					oc.ExpectCopies = x.Gamma()
				}
				o, err := observe.NewOracle(oc)
				if err != nil {
					outs[i] = out{err: err, done: true}
					return
				}
				orc = o
				sinks = append(sinks, orc)
			}
			res, err := x.Run(core.Config{
				Eta: etas[i], Params: p, Overlap: *overlap, Saturated: *saturated,
				SkipCopies: !*verify || *ledgerF, Ledger: *ledgerF && *verify,
				Observe:       observe.Tee(sinks...),
				EngineWorkers: *engineW,
			})
			outs[i] = out{res, err, met, orc, true}
		}
		if w <= 1 {
			for i := range etas {
				runOne(i)
			}
		} else {
			idx := make(chan int)
			var wg sync.WaitGroup
			for j := 0; j < w; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						runOne(i)
					}
				}()
			}
		dispatch:
			for i := range etas {
				select {
				case idx <- i:
				case <-ctx.Done():
					break dispatch
				}
			}
			close(idx)
			wg.Wait()
		}
		printed := false
		for i, o := range outs {
			if !o.done {
				continue // skipped after an interrupt
			}
			if o.err != nil {
				fail(o.err)
			}
			if printed {
				fmt.Println()
			}
			printed = true
			res := o.res
			fmt.Printf("IHC on %s: η=%d γ=%d\n", g.Name(), etas[i], x.Gamma())
			fmt.Printf("finish:       %d ticks\n", res.Finish)
			fmt.Printf("injections:   %d packets (γN)\n", res.Injections)
			fmt.Printf("deliveries:   %d copies (γN(N-1))\n", res.Deliveries)
			fmt.Printf("cut-throughs: %d   buffered: %d   stalls: %d\n", res.CutThroughs, res.BufferedHops, res.Stalls)
			fmt.Printf("contentions:  %d   bg-blocked: %d\n", res.Contentions, res.BgBlocked)
			fmt.Printf("events:       %d simulator events\n", res.Events)
			fmt.Printf("utilization:  %.3f of link capacity\n", res.Utilization(2*g.M()))
			if *verify && res.Copies != nil {
				if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
					fail(fmt.Errorf("ATA postcondition violated: %w", err))
				}
				fmt.Printf("verified:     every node holds %d copies of every other node's message\n", x.Gamma())
			}
			if res.Ledger != nil {
				if err := res.Ledger.VerifyATA(x.Gamma()); err != nil {
					fail(fmt.Errorf("ATA postcondition violated: %w", err))
				}
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				fmt.Printf("verified:     every node holds %d copies of every other node's message (O(N) ledger)\n", x.Gamma())
				fmt.Printf("memory:       %.1f MiB heap in use, %.1f MiB from OS\n",
					float64(ms.HeapAlloc)/(1<<20), float64(ms.Sys)/(1<<20))
			}
			if o.orc != nil {
				if err := o.orc.Finalize(); err != nil {
					fail(fmt.Errorf("oracle: %w", err))
				}
				st := o.orc.Stats()
				fmt.Printf("oracle:       %d hops checked, %d contentions, peak FIFO %d flits — all invariants hold\n",
					st.DataHops, st.Contentions, st.PeakOccupancy)
			}
			if o.met != nil {
				fmt.Printf("metrics:      %s\n", o.met.Snapshot().Summary())
			}
		}

	case "vrs", "ks", "vsq":
		if *oracleF || *oracleS {
			fail(fmt.Errorf("-oracle checks IHC cycle invariants; it does not apply to %s", *algo))
		}
		if *ledgerF {
			fail(fmt.Errorf("-ledger is the IHC counters-only mode; it does not apply to %s", *algo))
		}
		var met *observe.Metrics
		var sinks []simnet.Observer
		if trace != nil {
			sinks = append(sinks, trace)
		}
		if *metricsF {
			met = observe.NewMetrics()
			sinks = append(sinks, met)
		}
		res, gamma, err := runSerialized(*algo, g, p, atarun.Options{
			Copies: *verify, Saturated: *saturated, Observe: observe.Tee(sinks...),
			EngineWorkers: *engineW,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s-ATA on %s (serialized, one broadcast per node)\n", strings.ToUpper(*algo), g.Name())
		fmt.Printf("finish:       %d ticks\n", res.Finish)
		fmt.Printf("per broadcast: %d ticks\n", res.BroadcastFinish[0])
		fmt.Printf("cut-throughs: %d   buffered: %d   contentions: %d\n", res.CutThroughs, res.BufferedHops, res.Contentions)
		if *verify && res.Copies != nil {
			if err := res.Copies.VerifyATA(gamma); err != nil {
				fail(fmt.Errorf("ATA postcondition violated: %w", err))
			}
			fmt.Printf("verified:     every node holds %d copies of every other node's message\n", gamma)
		}
		if met != nil {
			fmt.Printf("metrics:      %s\n", met.Snapshot().Summary())
		}

	case "frs":
		if trace != nil || *metricsF || *oracleF || *oracleS {
			fail(fmt.Errorf("frs runs on the lock-step simulator, which has no per-hop observer"))
		}
		if *ledgerF {
			fail(fmt.Errorf("-ledger is the IHC counters-only mode; it does not apply to frs"))
		}
		if *engineW > 1 {
			fail(fmt.Errorf("frs runs on the lock-step simulator; -engine-workers does not apply"))
		}
		m, ok := hypercubeDim(g)
		if !ok {
			fail(fmt.Errorf("frs runs on hypercubes only, got %s", g.Name()))
		}
		res, err := frs.Run(m, p, *verify)
		if err != nil {
			fail(err)
		}
		fmt.Printf("FRS on %s (lock-step store-and-forward with merging)\n", g.Name())
		fmt.Printf("finish:       %d ticks\n", res.Finish)
		fmt.Printf("injections:   %d link-step packets\n", res.Injections)
		fmt.Printf("contentions:  %d\n", res.Contentions)
		if *verify && res.Copies != nil {
			if err := res.Copies.VerifyATA(m); err != nil {
				fail(fmt.Errorf("ATA postcondition violated: %w", err))
			}
			fmt.Printf("verified:     every node holds %d copies of every other node's message\n", m)
		}

	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	if err := traceDone(); err != nil {
		fail(err)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "atasim: interrupted; completed sweep points flushed")
		os.Exit(3)
	}
}

// openTrace builds the requested trace exporter. The returned done func
// flushes the exporter and closes the file; both are no-ops when no
// trace was requested.
func openTrace(path, format string) (simnet.Observer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	var w io.Writer = os.Stdout
	var file *os.File
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		w, file = f, f
	}
	closeFile := func() error {
		if file != nil {
			return file.Close()
		}
		return nil
	}
	switch format {
	case "jsonl":
		j := observe.NewJSONL(w)
		return j, func() error {
			if err := j.Flush(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		}, nil
	case "chrome":
		ct := observe.NewChromeTrace(w)
		return ct, func() error {
			if err := ct.Close(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		}, nil
	}
	closeFile()
	return nil, nil, fmt.Errorf("unknown -tracefmt %q (want jsonl or chrome)", format)
}

func runSerialized(algo string, g *topology.Graph, p simnet.Params, opts atarun.Options) (*atarun.Result, int, error) {
	switch algo {
	case "vrs":
		m, ok := hypercubeDim(g)
		if !ok {
			return nil, 0, fmt.Errorf("vrs runs on hypercubes only, got %s", g.Name())
		}
		res, err := rs.ATA(m, p, opts)
		return res, m, err
	case "ks":
		m, ok := sizeOf(g, "H")
		if !ok {
			return nil, 0, fmt.Errorf("ks runs on hex meshes only, got %s", g.Name())
		}
		res, err := ks.ATA(m, p, opts)
		return res, 6, err
	default: // vsq
		m, ok := sizeOf(g, "SQ")
		if !ok {
			return nil, 0, fmt.Errorf("vsq runs on square tori only, got %s", g.Name())
		}
		res, err := vsq.ATA(m, p, opts)
		return res, 4, err
	}
}

// parseEtas parses the -eta flag: a single η or a comma-separated sweep.
func parseEtas(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	etas := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -eta value %q (want positive integers, comma-separated)", part)
		}
		etas = append(etas, v)
	}
	return etas, nil
}

func hypercubeDim(g *topology.Graph) (int, bool) {
	return sizeOf(g, "Q")
}

func sizeOf(g *topology.Graph, prefix string) (int, bool) {
	name := g.Name()
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	m, err := strconv.Atoi(name[len(prefix):])
	return m, err == nil
}

// buildGraph resolves the -net name through the decomposition registry,
// so every registered family (Q, SQ, H, T, TQ, KT) is simulatable
// without per-family dispatch here. Names are case-insensitive.
func buildGraph(name string) (*topology.Graph, error) {
	canon := strings.ReplaceAll(strings.ToUpper(name), "X", "x")
	in, err := hamilton.Parse(canon)
	if err != nil {
		keys := make([]string, 0, 8)
		for _, f := range hamilton.Families() {
			keys = append(keys, f.Key()+"...")
		}
		return nil, fmt.Errorf("cannot parse network %q (registered families: %s)", name, strings.Join(keys, ", "))
	}
	return in.Graph()
}

func fail(err error) {
	stopProf()
	fmt.Fprintln(os.Stderr, "atasim:", err)
	os.Exit(1)
}
