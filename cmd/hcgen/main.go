// Command hcgen constructs and verifies the class-Λ Hamiltonian cycle
// decompositions of the supported network families: the γ/2 edge-disjoint
// Hamiltonian cycles of hypercubes (Theorems 1-2 of the paper), square
// tori, and C-wrapped hexagonal meshes.
//
// Usage:
//
//	hcgen -net Q6           # dimension-6 hypercube
//	hcgen -net SQ8          # 8x8 torus-wrapped square mesh
//	hcgen -net H4 -verbose  # hex mesh of size 4, print full cycles
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ihc/internal/hamilton"
	"ihc/internal/topology"
)

func main() {
	var (
		net     = flag.String("net", "Q4", "network: Q<m>, SQ<m>, or H<m>")
		verbose = flag.Bool("verbose", false, "print each cycle in full")
	)
	flag.Parse()

	g, err := buildGraph(*net)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	deg, _ := g.IsRegular()
	fmt.Printf("%s: %d nodes, %d edges, degree %d\n", g.Name(), g.N(), g.M(), deg)
	fmt.Printf("decomposition: %d edge-disjoint Hamiltonian cycles (verified)\n", len(cycles))
	if unused := hamilton.UnusedEdges(g, cycles); len(unused) > 0 {
		fmt.Printf("unused edges: %d (reduced-reliability decomposition)\n", len(unused))
	} else {
		fmt.Printf("unused edges: 0 (full Hamiltonian decomposition)\n")
	}
	for i, c := range cycles {
		if *verbose {
			parts := make([]string, len(c))
			for j, v := range c {
				parts[j] = strconv.Itoa(int(v))
			}
			fmt.Printf("HC%d: %s\n", i+1, strings.Join(parts, " "))
		} else {
			fmt.Printf("HC%d: %d %d %d ... (%d nodes)\n", i+1, c[0], c[1], c[2], len(c))
		}
	}
}

// buildGraph resolves a network name through the decomposition
// registry, so hcgen prints cycles for every registered family
// (Q, SQ, H, T, TQ, KT). Names are case-insensitive.
func buildGraph(name string) (*topology.Graph, error) {
	canon := strings.ReplaceAll(strings.ToUpper(name), "X", "x")
	in, err := hamilton.Parse(canon)
	if err != nil {
		keys := make([]string, 0, 8)
		for _, f := range hamilton.Families() {
			keys = append(keys, f.Key()+"...")
		}
		return nil, fmt.Errorf("hcgen: cannot parse network %q (registered families: %s)", name, strings.Join(keys, ", "))
	}
	return in.Graph()
}
