// Command hcgen constructs and verifies the class-Λ Hamiltonian cycle
// decompositions of the supported network families: the γ/2 edge-disjoint
// Hamiltonian cycles of hypercubes (Theorems 1-2 of the paper), square
// tori, and C-wrapped hexagonal meshes.
//
// Usage:
//
//	hcgen -net Q6           # dimension-6 hypercube
//	hcgen -net SQ8          # 8x8 torus-wrapped square mesh
//	hcgen -net H4 -verbose  # hex mesh of size 4, print full cycles
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ihc/internal/hamilton"
	"ihc/internal/topology"
)

func main() {
	var (
		net     = flag.String("net", "Q4", "network: Q<m>, SQ<m>, or H<m>")
		verbose = flag.Bool("verbose", false, "print each cycle in full")
	)
	flag.Parse()

	g, err := buildGraph(*net)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	deg, _ := g.IsRegular()
	fmt.Printf("%s: %d nodes, %d edges, degree %d\n", g.Name(), g.N(), g.M(), deg)
	fmt.Printf("decomposition: %d edge-disjoint Hamiltonian cycles (verified)\n", len(cycles))
	if unused := hamilton.UnusedEdges(g, cycles); len(unused) > 0 {
		fmt.Printf("unused edges: %d (perfect matching, odd-dimensional hypercube)\n", len(unused))
	} else {
		fmt.Printf("unused edges: 0 (full Hamiltonian decomposition)\n")
	}
	for i, c := range cycles {
		if *verbose {
			parts := make([]string, len(c))
			for j, v := range c {
				parts[j] = strconv.Itoa(int(v))
			}
			fmt.Printf("HC%d: %s\n", i+1, strings.Join(parts, " "))
		} else {
			fmt.Printf("HC%d: %d %d %d ... (%d nodes)\n", i+1, c[0], c[1], c[2], len(c))
		}
	}
}

func buildGraph(name string) (*topology.Graph, error) {
	parse := func(prefix string) (int, bool) {
		if !strings.HasPrefix(name, prefix) {
			return 0, false
		}
		m, err := strconv.Atoi(name[len(prefix):])
		if err != nil || m <= 0 {
			return 0, false
		}
		return m, true
	}
	if m, ok := parse("SQ"); ok {
		return topology.SquareTorus(m)
	}
	if dims, ok := topology.TorusDims(name); ok {
		return topology.TorusND(dims...)
	}
	if m, ok := parse("Q"); ok {
		return topology.Hypercube(m)
	}
	if m, ok := parse("H"); ok {
		return topology.HexMesh(m)
	}
	return nil, fmt.Errorf("hcgen: cannot parse network %q (want Q<m>, SQ<m>, H<m>, or T<k1>x<k2>x...)", name)
}
