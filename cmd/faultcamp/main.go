// Command faultcamp runs the adversarial fault campaign: for each
// requested topology it sweeps the tolerance frontier of several fault
// series (noisy/broken links, crash/Byzantine nodes; signed and
// unsigned voting), enumerating placements exhaustively where the space
// fits the budget and falling back to seeded uniform + targeted random
// search beyond it. Any bound-violating placement is shrunk to a
// 1-minimal counterexample and confirmed by both the combinatorial
// evaluator and the timed event-engine grader. `make bench-fault`
// writes BENCH_fault.json at the repository root.
//
// Usage:
//
//	faultcamp                          # sq4,q4,q6,h3,tq4,kt4x2 at full budget
//	faultcamp -quick                   # smaller budgets (seconds)
//	faultcamp -topo sq4,h3 -samples 20000
//	faultcamp -repair                  # also sweep the self-healing frontier
//	faultcamp -oracle                  # pre-flight: verify fault-free invariants per topology
//	faultcamp -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ihc/internal/campaign"
	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/hamilton"
	"ihc/internal/observe"
	"ihc/internal/profiling"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

type report struct {
	Date             string               `json:"date"`
	GoVersion        string               `json:"go_version"`
	Workers          int                  `json:"workers"`
	Budget           int                  `json:"budget"`
	Samples          int                  `json:"samples"`
	Seed             int64                `json:"seed"`
	Frontiers        []*campaign.Frontier `json:"frontiers"`
	Repaired         []repairedFrontier   `json:"repaired_frontiers,omitempty"`
	TotalPlacements  int                  `json:"total_placements"`
	ElapsedSec       float64              `json:"elapsed_sec"`
	PlacementsPerSec float64              `json:"placements_per_sec"`
	Violations       []string             `json:"bound_violations,omitempty"`
	// Interrupted marks a report flushed after SIGINT/SIGTERM: the
	// frontiers present are complete, the rest never ran.
	Interrupted bool `json:"interrupted,omitempty"`
}

type repairedFrontier struct {
	Topo    string                     `json:"topo"`
	Gamma   int                        `json:"gamma"`
	MaxSafe int                        `json:"max_safe"`
	Reports []*campaign.RepairedReport `json:"reports"`
}

func main() {
	var (
		topos   = flag.String("topo", "sq4,q4,q6,h3,tq4,kt4x2", "comma-separated topologies (any registered family: sqM, qN, hM, tqN, ktKxN, tK1xK2...)")
		budget  = flag.Int("budget", 50000, "largest placement count enumerated exhaustively")
		samples = flag.Int("samples", 10000, "random placements per point beyond the budget")
		seed    = flag.Int64("seed", 1, "campaign seed (sampling and Byzantine coins)")
		workers = flag.Int("workers", 0, "frontier series run concurrently (0 = GOMAXPROCS)")
		quick   = flag.Bool("quick", false, "shrink budgets so the campaign runs in seconds")
		repairF = flag.Bool("repair", false, "also sweep the broken-link frontier with the self-healing layer on; fail unless it beats the static γ bound")
		oracleF = flag.Bool("oracle", false, "pre-flight each topology fault-free under the live theorem oracle before the campaign")
		out     = flag.String("o", "BENCH_fault.json", "output file (\"-\" for stdout)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := campaign.Search{Budget: *budget, Samples: *samples, CrossCheck: 997, Cancel: ctx.Done()}
	if *quick {
		if cfg.Budget > 2000 {
			cfg.Budget = 2000
		}
		if cfg.Samples > 500 {
			cfg.Samples = 500
		}
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	type job struct {
		base campaign.Point
		tMax int
	}
	var jobs []job
	type topoIHC struct {
		name string
		x    *core.IHC
	}
	var repairTargets []topoIHC
	for _, name := range strings.Split(*topos, ",") {
		g, err := parseTopo(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		cycles, err := hamilton.Decompose(g)
		if err != nil {
			fail(err)
		}
		x, err := core.New(g, cycles)
		if err != nil {
			fail(err)
		}
		gamma := x.Gamma()
		repairTargets = append(repairTargets, topoIHC{g.Name(), x})
		for _, s := range []struct {
			signed bool
			domain campaign.Domain
			kind   fault.Kind
			tMax   int
		}{
			{false, campaign.DomainLinks, fault.Corrupt, (gamma + 1) / 2}, // bound ⌈γ/2⌉−1, break at γ/2
			{true, campaign.DomainLinks, fault.Corrupt, gamma},            // bound γ−1, break at γ
			{false, campaign.DomainLinks, fault.Crash, gamma},             // lost copies can't outvote; break at γ
			{false, campaign.DomainNodes, fault.Crash, 3},
			{false, campaign.DomainNodes, fault.Byzantine, 3},
		} {
			jobs = append(jobs, job{campaign.Point{
				X: x, Signed: s.signed, Domain: s.domain, Kind: s.kind, Seed: *seed,
			}, s.tMax})
		}
	}

	if *oracleF {
		// Pre-flight: a topology whose fault-free run violates the
		// paper's invariants would make every frontier below meaningless,
		// so verify each one under the live oracle before spending the
		// campaign budget on it.
		for _, tgt := range repairTargets {
			if err := preflight(tgt.x); err != nil {
				fail(fmt.Errorf("fault-free pre-flight on %s: %w", tgt.name, err))
			}
			fmt.Printf("%-4s fault-free oracle pre-flight passed (γ=%d copies, zero contention)\n",
				tgt.name, tgt.x.Gamma())
		}
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}

	start := time.Now()
	frontiers := make([]*campaign.Frontier, len(jobs))
	errs := make([]error, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				frontiers[j], errs[j] = campaign.RunFrontier(jobs[j].base, cfg, jobs[j].tMax)
			}
		}()
	}
dispatch:
	for j := range jobs {
		select {
		case idx <- j:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	stopProf()
	interrupted := ctx.Err() != nil
	for _, err := range errs {
		if err != nil && !errors.Is(err, campaign.ErrCanceled) {
			fail(err)
		}
	}
	if interrupted {
		// Keep the frontiers that finished; flush them below so a long
		// campaign interrupted near the end still leaves its data.
		done := frontiers[:0]
		for _, f := range frontiers {
			if f != nil {
				done = append(done, f)
			}
		}
		frontiers = done
	}

	rep := report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Workers:   w, Budget: cfg.Budget, Samples: cfg.Samples, Seed: *seed,
		Frontiers:   frontiers,
		ElapsedSec:  time.Since(start).Seconds(),
		Interrupted: interrupted,
	}
	if *repairF && !interrupted {
		// Each repaired placement costs a full engine simulation plus a
		// baseline run, so the repaired sweep gets its own small budget.
		rcfg := campaign.Search{Budget: 60, Samples: 40}
		if *quick {
			rcfg = campaign.Search{Budget: 30, Samples: 15}
		}
		rcfg.Cancel = ctx.Done()
		for _, tgt := range repairTargets {
			gamma := tgt.x.Gamma()
			reports, maxSafe, err := campaign.RepairedFrontier(tgt.x, gamma+1, rcfg, *seed)
			if errors.Is(err, campaign.ErrCanceled) {
				rep.Interrupted = true
				break
			}
			if err != nil {
				fail(err)
			}
			rep.Repaired = append(rep.Repaired, repairedFrontier{
				Topo: tgt.name, Gamma: gamma, MaxSafe: maxSafe, Reports: reports,
			})
			for _, r := range reports {
				rep.TotalPlacements += r.Placements
			}
			if maxSafe <= gamma {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s repaired max_safe=%d does not beat static bound γ=%d", tgt.name, maxSafe, gamma))
			}
		}
		rep.ElapsedSec = time.Since(start).Seconds()
	}
	for _, f := range frontiers {
		for _, r := range f.Reports {
			rep.TotalPlacements += r.Placements
		}
		// A violation at or under the paper's bound would falsify the
		// reproduction; links are where the bounds are exact, so only
		// link-domain series count (node-domain frontiers measure how far
		// adversarial placement undercuts the bound — the campaign's
		// finding, not a failure).
		if f.Domain == campaign.DomainLinks.String() && f.MinBroken > 0 && f.MinBroken <= f.Bound {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s %s/%s signed=%v broken at t=%d <= bound %d", f.Topo, f.Domain, f.Kind, f.Signed, f.MinBroken, f.Bound))
		}
	}
	if rep.ElapsedSec > 0 {
		rep.PlacementsPerSec = float64(rep.TotalPlacements) / rep.ElapsedSec
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}

	for _, f := range frontiers {
		broken := "none"
		if f.MinBroken > 0 {
			broken = strconv.Itoa(f.MinBroken)
		}
		fmt.Printf("%-4s %-5s %-9s signed=%-5v bound=%d max_safe=%d min_broken=%s\n",
			f.Topo, f.Domain, f.Kind, f.Signed, f.Bound, f.MaxSafe, broken)
	}
	for _, rf := range rep.Repaired {
		fmt.Printf("%-4s repaired broken-link frontier: γ=%d max_safe=%d (static bound beaten: %v)\n",
			rf.Topo, rf.Gamma, rf.MaxSafe, rf.MaxSafe > rf.Gamma)
	}
	fmt.Printf("faultcamp: %d placements in %.1fs (%.3g placements/s) on %d worker(s) -> %s\n",
		rep.TotalPlacements, rep.ElapsedSec, rep.PlacementsPerSec, w, *out)
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "BOUND VIOLATION:", v)
		}
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "faultcamp: interrupted; partial report (%d of %d frontiers) flushed to %s\n",
			len(frontiers), len(jobs), *out)
		os.Exit(3)
	}
}

// preflight runs one fault-free IHC execution under the full theorem
// oracle: contention-free (η = μ where N mod μ = 0, else η = μ = 1),
// every copy on its compiled cycle, FIFO occupancy ≤ μ, and γ
// edge-disjoint copies per (receiver, source) pair.
func preflight(x *core.IHC) error {
	p := simnet.Params{}.Defaulted()
	eta := p.Mu
	n := x.N()
	if n%eta != 0 {
		// Wrap-seam topologies (odd N): verify in the Theorem 4 regime.
		p.Mu, eta = 1, 1
	}
	orc, err := observe.NewOracle(observe.OracleConfig{
		X: x, Params: p, Eta: eta,
		ExpectContentionFree: true,
		ExpectFinish:         -1,
		ExpectCopies:         x.Gamma(),
	})
	if err != nil {
		return err
	}
	if _, err := x.Run(core.Config{Eta: eta, Params: p, SkipCopies: true, Observe: orc}); err != nil {
		return err
	}
	return orc.Finalize()
}

// parseTopo maps a topology name (sq4, q6, h3, tq4, kt4x2, t4x4 — case
// insensitive) to its graph through the decomposition registry, so the
// campaign accepts every registered family without its own switch.
func parseTopo(s string) (*topology.Graph, error) {
	// Canonical names are uppercase except the 'x' dimension
	// separators ("KT4x2", "T4x4").
	canon := strings.ReplaceAll(strings.ToUpper(s), "X", "x")
	in, err := hamilton.Parse(canon)
	if err != nil {
		keys := make([]string, 0, 8)
		for _, f := range hamilton.Families() {
			keys = append(keys, strings.ToLower(f.Key()))
		}
		return nil, fmt.Errorf("unknown topology %q (registered families: %s)", s, strings.Join(keys, ", "))
	}
	return in.Graph()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "faultcamp:", err)
	os.Exit(1)
}
