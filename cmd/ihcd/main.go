// Command ihcd is the IHC node daemon: one process per network node,
// executing the interleaved all-to-all broadcast schedule over real TCP
// sockets with wall-clock stage starts, HLC drift correction, and
// pull-based repair.
//
// Daemon mode (default) runs a single node:
//
//	ihcd -node 3 -m 3 -eta 2 -listen 127.0.0.1:4003 -peers book.json -epoch <unixnano>
//
// where book.json maps neighbor ids to dial addresses. The daemon runs
// one ATA round, prints its RESULT verdict as JSON on stdout, then
// keeps serving repair pulls until SIGTERM (exit 0) — a finished node
// may be a straggler's only provider.
//
// Launch mode orchestrates a whole local cluster:
//
//	ihcd -launch -m 3 -eta 2            # chaos round: partition + crash
//	ihcd -launch -faultfree             # clean round, compared against simnet
//
// The launcher spawns one child daemon per node, interposes a chaos
// proxy on every directed link (chaos mode), SIGKILLs the crash victim
// mid-round, collects every child's RESULT, asserts the γ-copy ledger
// postcondition on all survivors, and exits nonzero on any violation.
//
// Soak mode streams pipelined epochs over the in-process loopback mesh
// with the full chaos script — background frame faults, a partition
// window, and one node killed mid-stream and restarted cold (rejoining
// via the epoch handshake):
//
//	ihcd -soak -epochs 24 -period 150ms
//
// It prints the streaming gauges (throughput, shed counts, latency
// percentiles) and exits nonzero unless every node completed every
// epoch with the exact γ-copy ledger postcondition.
//
// Both -launch and -soak accept -deadline: a hard wall-clock budget
// enforced by a watchdog that kills any child processes and exits 4.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ihc/internal/chaos"
	"ihc/internal/cluster"
	"ihc/internal/core"
	"ihc/internal/fault"
	"ihc/internal/hamilton"
	"ihc/internal/observe"
	"ihc/internal/reliable"
	"ihc/internal/simnet"
	"ihc/internal/stream"
	"ihc/internal/topology"
	"ihc/internal/transport"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ihcd: "+format+"\n", args...)
	os.Exit(1)
}

// watchdog enforces a hard wall-clock budget on an orchestration mode:
// when the deadline expires it kills every registered child process and
// exits 4 — a distinct code so CI can tell "hung" from "failed".
type watchdog struct {
	mu    sync.Mutex
	kills []func()
}

// add registers a cleanup to run on expiry (child kill, proxy close).
func (w *watchdog) add(f func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.kills = append(w.kills, f)
}

// arm starts the timer; d <= 0 disables the watchdog.
func (w *watchdog) arm(d time.Duration, label string) {
	if d <= 0 {
		return
	}
	go func() {
		time.Sleep(d)
		w.mu.Lock()
		kills := append([]func(){}, w.kills...)
		w.mu.Unlock()
		fmt.Fprintf(os.Stderr, "ihcd: %s exceeded -deadline %s; killing children and exiting 4\n", label, d)
		for _, f := range kills {
			f()
		}
		os.Exit(4)
	}()
}

// result is the JSON verdict a daemon prints after its round.
type result struct {
	Node      int            `json:"node"`
	OK        bool           `json:"ok"`
	LedgerErr string         `json:"ledger_err,omitempty"`
	Exhausted int            `json:"exhausted"`
	Repaired  int            `json:"repaired"`
	Naks      int            `json:"naks"`
	Copies    map[int][]int  `json:"copies"` // source -> channels received
	Stats     map[string]int `json:"stats"`
	Interrupt bool           `json:"interrupted,omitempty"`
}

func main() {
	var (
		launch    = flag.Bool("launch", false, "orchestrate a full local cluster instead of running one node")
		faultfree = flag.Bool("faultfree", false, "launch mode: run without chaos and compare deliveries against the simulator")
		m         = flag.Int("m", 3, "hypercube dimension (N = 2^m nodes)")
		eta       = flag.Int("eta", 2, "interleaving distance η")
		node      = flag.Int("node", -1, "this daemon's node id (daemon mode)")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address (daemon mode)")
		peersPath = flag.String("peers", "", "path to the JSON neighbor address book (daemon mode)")
		epochNano = flag.Int64("epoch", 0, "cluster epoch: wall-clock start of stage 0, Unix nanoseconds")
		stageDur  = flag.Duration("stage-dur", 50*time.Millisecond, "wall-clock length of one schedule stage")
		hopLat    = flag.Duration("hop-latency", time.Millisecond, "expected per-hop relay latency (deadline model)")
		slack     = flag.Duration("slack", 100*time.Millisecond, "deadline slack before the first repair pull")
		keySeed   = flag.Int64("key-seed", 7, "HMAC keyring master seed")
		seed      = flag.Int64("seed", 99, "chaos / retry-jitter seed")
		maxAtt    = flag.Int("max-attempts", 30, "repair pulls per missing copy before giving up")
		timeout   = flag.Duration("timeout", 30*time.Second, "round timeout")
		soak      = flag.Bool("soak", false, "stream pipelined epochs over loopback with kill/restart + partition chaos")
		epochs    = flag.Int("epochs", 24, "soak mode: epochs to stream")
		period    = flag.Duration("period", 150*time.Millisecond, "soak mode: epoch cadence")
		inflight  = flag.Int("max-inflight", 2, "soak mode: concurrently open epochs")
		deadline  = flag.Duration("deadline", 0, "launch/soak: hard wall-clock budget; on expiry children are killed and the exit code is 4 (0 = off)")
	)
	flag.Parse()

	wd := &watchdog{}
	if *soak {
		wd.arm(*deadline, "soak")
		os.Exit(runSoak(*m, *eta, *epochs, *inflight, *period, *stageDur, *hopLat, *slack, *keySeed, *seed, *maxAtt, *timeout))
	}
	if *launch {
		wd.arm(*deadline, "launch")
		os.Exit(runLaunch(*m, *eta, *faultfree, *keySeed, *seed, *stageDur, *hopLat, *slack, *maxAtt, *timeout, wd))
	}
	if *node < 0 {
		fail("daemon mode needs -node (or use -launch)")
	}
	os.Exit(runDaemon(*m, *eta, *node, *listen, *peersPath, *epochNano, *stageDur, *hopLat, *slack, *keySeed, *seed, *maxAtt, *timeout))
}

func buildIHC(m int) (*core.IHC, error) {
	g, err := topology.Hypercube(m)
	if err != nil {
		return nil, err
	}
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		return nil, err
	}
	return core.New(g, cycles)
}

// ---------------------------------------------------------------------------
// Daemon mode

func runDaemon(m, eta, self int, listen, peersPath string, epochNano int64, stageDur, hopLat, slack time.Duration, keySeed, seed int64, maxAtt int, timeout time.Duration) int {
	x, err := buildIHC(m)
	if err != nil {
		fail("%v", err)
	}
	if peersPath == "" {
		fail("daemon mode needs -peers")
	}
	raw, err := os.ReadFile(peersPath)
	if err != nil {
		fail("read peers: %v", err)
	}
	var book map[string]string
	if err := json.Unmarshal(raw, &book); err != nil {
		fail("parse peers: %v", err)
	}
	peers := make(map[topology.Node]string, len(book))
	for k, addr := range book {
		id, err := strconv.Atoi(k)
		if err != nil {
			fail("peers: bad node id %q", k)
		}
		peers[topology.Node(id)] = addr
	}
	epoch := time.Unix(0, epochNano)
	if epochNano == 0 {
		epoch = time.Now().Add(time.Second)
	}

	ep, err := transport.NewTCP(transport.TCPConfig{
		Self:    topology.Node(self),
		Graph:   x.Graph(),
		Listen:  listen,
		Peers:   peers,
		Dial:    transport.BackoffConfig{Seed: seed + int64(self) + 1},
		Breaker: transport.BreakerConfig{},
	})
	if err != nil {
		fail("%v", err)
	}
	defer ep.Close()

	nd, err := transport.NewNode(transport.NodeConfig{
		IHC:         x,
		Eta:         eta,
		Self:        topology.Node(self),
		Endpoint:    ep,
		Keyring:     reliable.NewKeyring(x.N(), keySeed),
		Epoch:       epoch,
		StageDur:    stageDur,
		HopLatency:  hopLat,
		Slack:       slack,
		Retry:       transport.BackoffConfig{Base: 10 * time.Millisecond, Max: 150 * time.Millisecond, Factor: 1.6, Jitter: 0.2, Seed: seed*31 + int64(self) + 1},
		MaxAttempts: maxAtt,
	})
	if err != nil {
		fail("%v", err)
	}

	// SIGINT/SIGTERM cancel the round; a signal before the round
	// completes is an interrupted (nonzero) exit, after it a clean one.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	runCtx, cancelRun := context.WithTimeout(sigCtx, timeout)
	defer cancelRun()

	res, runErr := nd.Run(runCtx)
	interrupted := runErr != nil && sigCtx.Err() != nil

	out := result{
		Node:      self,
		OK:        runErr == nil && res.LedgerErr == nil && len(res.Exhausted) == 0,
		Exhausted: len(res.Exhausted),
		Repaired:  res.Repaired,
		Naks:      res.NaksSent,
		Copies:    make(map[int][]int),
		Stats: map[string]int{
			"sent": int(res.Stats.Sent), "received": int(res.Stats.Received),
			"send_errors": int(res.Stats.SendErrors), "reconnects": int(res.Stats.Reconnects),
			"dial_fails": int(res.Stats.DialFails),
		},
		Interrupt: interrupted,
	}
	if res.LedgerErr != nil {
		out.LedgerErr = res.LedgerErr.Error()
	}
	for src, chans := range res.Copies {
		cs := make([]int, len(chans))
		for i, c := range chans {
			cs[i] = int(c)
		}
		sort.Ints(cs)
		out.Copies[int(src)] = cs
	}
	// The RESULT line is the machine-readable verdict the launcher
	// scrapes; flush it even when interrupted so a dying campaign
	// still reports partial state.
	enc, _ := json.Marshal(out)
	fmt.Printf("RESULT %s\n", enc)
	os.Stdout.Sync()

	if interrupted {
		return 3
	}
	if runErr != nil || !out.OK {
		// Keep serving briefly anyway: our stored copies may complete
		// someone else's round even if ours failed.
		nd.Serve(sigCtx)
		return 2
	}
	// Round complete: serve repair pulls until told to stop.
	nd.Serve(sigCtx)
	return 0
}

// ---------------------------------------------------------------------------
// Soak mode

// runSoak streams pipelined epochs over the in-process loopback mesh
// under the full chaos script: background drop/dup/corrupt/delay on
// every link, one partition window, and one node killed with zero
// notice mid-stream and restarted cold — it must rediscover the epoch
// via the JOIN handshake and catch up through the pull planner. The
// verdict requires every node to complete every epoch with the exact
// γ-copy ledger postcondition and zero high-priority sheds.
func runSoak(m, eta, epochs, inflight int, period, stageDur, hopLat, slack time.Duration, keySeed, seed int64, maxAtt int, timeout time.Duration) int {
	x, err := buildIHC(m)
	if err != nil {
		fail("%v", err)
	}
	// The fault script scales with the cadence: kill after 4 epochs,
	// stay down ~3, partition a non-victim link while the rejoiner is
	// catching up.
	killAt := 4 * period
	downFor := 3 * period
	partFrom := 9 * period
	partFor := 3 * period
	gauges := &observe.StreamGauges{}
	cfg := cluster.StreamConfig{
		Config: cluster.Config{
			IHC: x, Eta: eta, KeySeed: keySeed,
			StageDur: stageDur, HopLatency: hopLat, Slack: slack,
			Retry: transport.BackoffConfig{
				Base: 10 * time.Millisecond, Max: 150 * time.Millisecond,
				Factor: 1.6, Jitter: 0.2, Seed: seed,
			},
			MaxAttempts: maxAtt,
			Timeout:     timeout,
			Chaos: &chaos.Config{
				Seed:     seed,
				DropRate: 0.02, DupRate: 0.02, CorruptRate: 0.01, DelayRate: 0.05,
				TickDur: time.Millisecond,
				Plan: &fault.TemporalPlan{Links: []fault.LinkFault{{
					U: 1, V: 3,
					From:  simnet.Time(partFrom / time.Millisecond),
					Until: simnet.Time((partFrom + partFor) / time.Millisecond),
				}}},
			},
		},
		Epochs:      epochs,
		Period:      period,
		MaxInflight: inflight,
		Drain:       10 * time.Second,
		// The load deliberately outruns the low-priority token bucket
		// (~250 low/s offered against 200/s admitted), so the soak also
		// exercises overload shedding — which must hit ONLY the low
		// class; one shed high-priority payload fails the verdict.
		Ingress: stream.IngressConfig{Rate: 200, Burst: 50},
		Load:    cluster.LoadSpec{Interval: 3 * time.Millisecond, Bytes: 64, HighEvery: 4},
		Kill:    &cluster.KillSpec{Node: 6, At: killAt, Downtime: downFor},
		Gauges:  gauges,
	}
	fmt.Printf("ihcd: soaking Q%d: %d epochs @ %s, ≤%d inflight; kill node 6 at %s for %s, partition {1,3} at %s for %s\n",
		m, epochs, period, inflight, killAt, downFor, partFrom, partFor)

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	start := time.Now()
	res, err := cluster.RunStream(sigCtx, cfg)
	if err != nil {
		fail("soak: %v", err)
	}
	elapsed := time.Since(start)

	snap := res.Snapshot
	fmt.Print(snap.Summary())
	verdictErr := res.Verify()
	out := map[string]any{
		"ok":       verdictErr == nil,
		"epochs":   epochs,
		"elapsed":  elapsed.String(),
		"naks":     res.NaksSent,
		"snapshot": snap,
	}
	if verdictErr != nil {
		out["err"] = verdictErr.Error()
	}
	enc, _ := json.Marshal(out)
	fmt.Printf("RESULT %s\n", enc)
	if verdictErr != nil {
		fmt.Fprintf(os.Stderr, "ihcd: soak FAILED: %v\n", verdictErr)
		return 1
	}
	fmt.Printf("ihcd: soak complete in %s: all %d nodes completed %d epochs (γ-copy exact), %d caught up after the kill, 0 high-priority sheds\n",
		elapsed.Round(time.Millisecond), x.N(), epochs, snap.EpochsCaughtUp)
	return 0
}

// ---------------------------------------------------------------------------
// Launch mode

type child struct {
	node topology.Node
	cmd  *exec.Cmd
	res  *result
	done chan error
}

func runLaunch(m, eta int, faultfree bool, keySeed, seed int64, stageDur, hopLat, slack time.Duration, maxAtt int, timeout time.Duration, wd *watchdog) int {
	x, err := buildIHC(m)
	if err != nil {
		fail("%v", err)
	}
	g := x.Graph()
	n := g.N()
	gamma := x.Gamma()
	self, err := os.Executable()
	if err != nil {
		fail("locate own binary: %v", err)
	}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Pre-allocate one listener address per node: bind, record, close.
	// The window between close and the child's re-bind is a benign
	// localhost race.
	realAddrs := make(map[topology.Node]string, n)
	for v := 0; v < n; v++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("reserve port: %v", err)
		}
		realAddrs[topology.Node(v)] = ln.Addr().String()
		ln.Close()
	}

	epoch := time.Now().Add(1500 * time.Millisecond)

	// The chaos scenario: partition link {1,3} for stages [1,4) and
	// crash node 6 one stage in — after its own stage-0 injections
	// (η=2 puts every even-position node in stage 0) have propagated,
	// so survivors still owe each other γ copies of all N sources.
	var plan *chaos.Plan
	crashes := map[topology.Node]time.Duration{}
	peerAddrs := func(v topology.Node) map[topology.Node]string {
		out := make(map[topology.Node]string)
		for _, nb := range g.Neighbors(v) {
			out[nb] = realAddrs[nb]
		}
		return out
	}
	if !faultfree {
		plan, err = chaos.NewPlan(chaos.Config{
			Graph: g,
			Plan: &fault.TemporalPlan{
				Nodes: []fault.NodeFault{{Node: 6, Kind: fault.Crash, At: 1}},
				Links: []fault.LinkFault{{U: 1, V: 3, From: 1, Until: 4}},
			},
			TickDur:     stageDur, // plan ticks are whole stages
			Seed:        seed,
			DropRate:    0.05,
			DupRate:     0.05,
			CorruptRate: 0.03,
			DelayRate:   0.1,
			MaxDelay:    3 * time.Millisecond,
			Epoch:       epoch,
		})
		if err != nil {
			fail("%v", err)
		}
		pm, err := chaos.NewProxyMesh(plan, realAddrs)
		if err != nil {
			fail("%v", err)
		}
		defer pm.Close()
		peerAddrs = pm.Addrs
		crashes = plan.Crashes()
	}

	// Per-child address books.
	dir, err := os.MkdirTemp("", "ihcd-launch-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(dir)

	children := make(map[topology.Node]*child, n)
	defer func() {
		for _, c := range children {
			if c.cmd.Process != nil {
				c.cmd.Process.Kill()
			}
		}
	}()
	for v := 0; v < n; v++ {
		nodeID := topology.Node(v)
		book := make(map[string]string)
		for nb, addr := range peerAddrs(nodeID) {
			book[strconv.Itoa(int(nb))] = addr
		}
		raw, _ := json.Marshal(book)
		path := fmt.Sprintf("%s/peers-%d.json", dir, v)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			fail("%v", err)
		}
		cmd := exec.Command(self,
			"-node", strconv.Itoa(v),
			"-m", strconv.Itoa(m),
			"-eta", strconv.Itoa(eta),
			"-listen", realAddrs[nodeID],
			"-peers", path,
			"-epoch", strconv.FormatInt(epoch.UnixNano(), 10),
			"-stage-dur", stageDur.String(),
			"-hop-latency", hopLat.String(),
			"-slack", slack.String(),
			"-key-seed", strconv.FormatInt(keySeed, 10),
			"-seed", strconv.FormatInt(seed, 10),
			"-max-attempts", strconv.Itoa(maxAtt),
			"-timeout", timeout.String(),
		)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fail("%v", err)
		}
		if err := cmd.Start(); err != nil {
			fail("start node %d: %v", v, err)
		}
		c := &child{node: nodeID, cmd: cmd, done: make(chan error, 1)}
		children[nodeID] = c
		wd.add(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		})
		go func() {
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				if rest, ok := strings.CutPrefix(line, "RESULT "); ok {
					var r result
					if json.Unmarshal([]byte(rest), &r) == nil {
						c.res = &r
					}
				}
			}
			c.done <- cmd.Wait()
		}()
	}

	// Execute the plan's crashes with SIGKILL — a real crash, not a
	// polite shutdown.
	for v, at := range crashes {
		v, at := v, at
		go func() {
			select {
			case <-sigCtx.Done():
				return
			case <-time.After(time.Until(epoch.Add(at))):
			}
			if c := children[v]; c.cmd.Process != nil {
				c.cmd.Process.Kill()
				fmt.Printf("ihcd: crashed node %d (SIGKILL) at %s into the round\n", v, at)
			}
		}()
	}

	// Wait for every survivor's RESULT: poll children until each
	// non-crashed child printed one or the deadline passes.
	deadline := time.After(timeout + 5*time.Second)
	pending := make(map[topology.Node]bool)
	for v := range children {
		if _, dies := crashes[v]; !dies {
			pending[v] = true
		}
	}
	for len(pending) > 0 {
		select {
		case <-sigCtx.Done():
			fmt.Fprintln(os.Stderr, "ihcd: interrupted; killing cluster")
			return 3
		case <-deadline:
			fail("timed out waiting for RESULT from nodes %v", keys(pending))
		case <-time.After(20 * time.Millisecond):
			for v := range pending {
				if children[v].res != nil {
					delete(pending, v)
				}
			}
		}
	}

	// Verdict: every survivor must report the exact γ-copy
	// postcondition over all N sources — including the crashed node's
	// messages, which were injected before the crash and repaired
	// around it.
	violations := 0
	totalRepaired, totalNaks, totalReconnects := 0, 0, 0
	for v, c := range children {
		if _, dies := crashes[v]; dies {
			continue
		}
		r := c.res
		totalRepaired += r.Repaired
		totalNaks += r.Naks
		totalReconnects += r.Stats["reconnects"]
		if !r.OK {
			fmt.Fprintf(os.Stderr, "ihcd: node %d FAILED: ledger=%q exhausted=%d\n", v, r.LedgerErr, r.Exhausted)
			violations++
			continue
		}
		if err := checkCopies(r, int(v), n, gamma); err != nil {
			fmt.Fprintf(os.Stderr, "ihcd: node %d FAILED: %v\n", v, err)
			violations++
		}
	}

	// Fault-free acceptance: the wall-clock delivery multiset must
	// equal the discrete-event engine's on the same schedule.
	if faultfree && violations == 0 {
		sim, err := x.Run(core.Config{Eta: eta, Params: simnet.Params{}.Defaulted()})
		if err != nil {
			fail("simnet reference: %v", err)
		}
		for v, c := range children {
			for s := 0; s < n; s++ {
				if int(v) == s {
					continue
				}
				want := sim.Copies.Get(v, topology.Node(s))
				if got := len(c.res.Copies[s]); got != want {
					fmt.Fprintf(os.Stderr, "ihcd: node %d got %d copies from %d, simnet delivered %d\n", v, got, s, want)
					violations++
				}
			}
		}
		if violations == 0 {
			fmt.Printf("ihcd: wall-clock delivery multiset matches simnet (%d nodes × %d sources × γ=%d)\n", n, n-1, gamma)
		}
	}

	// Graceful shutdown: SIGTERM every survivor and require exit 0.
	for v, c := range children {
		if _, dies := crashes[v]; dies {
			continue
		}
		c.cmd.Process.Signal(syscall.SIGTERM)
	}
	for v, c := range children {
		if _, dies := crashes[v]; dies {
			<-c.done // SIGKILLed: error expected, just reap it
			continue
		}
		select {
		case err := <-c.done:
			if err != nil {
				fmt.Fprintf(os.Stderr, "ihcd: node %d did not shut down cleanly: %v\n", v, err)
				violations++
			}
		case <-time.After(5 * time.Second):
			fmt.Fprintf(os.Stderr, "ihcd: node %d ignored SIGTERM\n", v)
			c.cmd.Process.Kill()
			violations++
		}
	}

	mode := "chaos (partition {1,3}, crash node 6, drop/dup/corrupt/delay)"
	if faultfree {
		mode = "fault-free"
	}
	fmt.Printf("ihcd: %s round on Q%d complete: %d survivors verified γ=%d copies/source; %d repaired copies, %d NAKs, %d reconnects, %d violations\n",
		mode, m, n-len(crashes), gamma, totalRepaired, totalNaks, totalReconnects, violations)
	if violations > 0 {
		return 1
	}
	return 0
}

// checkCopies asserts one survivor's reported delivery multiset: for
// every other source, exactly one copy per channel 0..γ-1.
func checkCopies(r *result, self, n, gamma int) error {
	for s := 0; s < n; s++ {
		if s == self {
			continue
		}
		chans := r.Copies[s]
		if len(chans) != gamma {
			return fmt.Errorf("%d copies from source %d, want γ=%d", len(chans), s, gamma)
		}
		for j := 0; j < gamma; j++ {
			if chans[j] != j {
				return fmt.Errorf("copies from source %d arrived on channels %v, want one per channel 0..%d", s, chans, gamma-1)
			}
		}
	}
	return nil
}

func keys(m map[topology.Node]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}
