// Command ihcbench regenerates the paper's evaluation: every table and
// figure, model-vs-measured, rendered as text tables.
//
// Usage:
//
//	ihcbench                  # run everything at full size
//	ihcbench -quick           # small networks (seconds)
//	ihcbench -run table2      # one experiment by id
//	ihcbench -list            # list experiment ids
//	ihcbench -taus 100 -alpha 20 -mu 2 -d 37   # timing overrides
package main

import (
	"flag"
	"fmt"
	"os"

	"ihc/internal/harness"
	"ihc/internal/simnet"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "use small network sizes")
		run   = flag.String("run", "", "run a single experiment id (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		taus  = flag.Int64("taus", 100, "message startup time τ_S (ticks)")
		alpha = flag.Int64("alpha", 20, "cut-through delay α (ticks)")
		mu    = flag.Int("mu", 2, "packet length μ (FIFO-buffer units)")
		d     = flag.Int64("d", 37, "queueing delay D (ticks)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	cfg := harness.Config{
		Quick: *quick,
		Params: simnet.Params{
			TauS:  simnet.Time(*taus),
			Alpha: simnet.Time(*alpha),
			Mu:    *mu,
			D:     simnet.Time(*d),
		},
	}

	exps := harness.All()
	if *run != "" {
		e, err := harness.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	failures := 0
	for _, e := range exps {
		fmt.Printf("=== %s (%s): %s ===\n", e.ID, e.Paper, e.Title)
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAILED %s: %v\n\n", e.ID, err)
			failures++
			continue
		}
		for _, t := range tables {
			t.Render(os.Stdout)
			fmt.Println()
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
