// Command ihcbench regenerates the paper's evaluation: every table and
// figure, model-vs-measured, rendered as text tables.
//
// Usage:
//
//	ihcbench                  # run everything at full size
//	ihcbench -quick           # small networks (seconds)
//	ihcbench -run table2      # one experiment by id
//	ihcbench -list            # list experiment ids
//	ihcbench -workers 8       # worker-pool width (0 = GOMAXPROCS)
//	ihcbench -run scaling -engine-workers 4     # shard each big run's event loop
//	ihcbench -taus 100 -alpha 20 -mu 2 -d 37   # timing overrides
//	ihcbench -metrics         # aggregate observability metrics across all runs
//	ihcbench -run table2 -trace t2.jsonl        # per-hop stream of one experiment
//	ihcbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments — and the independent sweep points inside them — fan out
// across a bounded worker pool; results are merged in the registry's
// stable order, so stdout is byte-identical for every -workers value.
// -metrics attaches a per-worker observability sink to every simulation;
// the per-worker aggregates merge order-independently, so the reported
// snapshot is also identical for every -workers value. -trace is
// single-stream: it forces the pool to width 1 and requires -run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ihc/internal/harness"
	"ihc/internal/observe"
	"ihc/internal/profiling"
	"ihc/internal/simnet"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "use small network sizes")
		run       = flag.String("run", "", "run a single experiment id (default: all)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		workers   = flag.Int("workers", 0, "worker-pool width for experiments and sweep points (0 = GOMAXPROCS, 1 = sequential)")
		engineW   = flag.Int("engine-workers", 0, "shard each large simulation run across this many goroutines; divides the -workers budget (0/1 = sequential engine; output is byte-identical)")
		taus      = flag.Int64("taus", 100, "message startup time τ_S (ticks)")
		alpha     = flag.Int64("alpha", 20, "cut-through delay α (ticks)")
		mu        = flag.Int("mu", 2, "packet length μ (FIFO-buffer units)")
		d         = flag.Int64("d", 37, "queueing delay D (ticks)")
		metricsF  = flag.Bool("metrics", false, "aggregate per-link/node/stage metrics across every simulation and print a summary")
		tracePath = flag.String("trace", "", "write the per-hop observer stream to this file (\"-\" for stdout; requires -run, forces -workers 1)")
		traceFmt  = flag.String("tracefmt", "jsonl", "trace format: jsonl or chrome")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-12s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	if *tracePath != "" && *run == "" {
		fmt.Fprintln(os.Stderr, "ihcbench: -trace streams one experiment's hops; pick it with -run")
		os.Exit(2)
	}
	trace, traceDone, err := openTrace(*tracePath, *traceFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ihcbench:", err)
		os.Exit(2)
	}
	var shared *observe.Shared
	if *metricsF {
		shared = observe.NewShared()
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stats := &harness.RunStats{}
	cfg := harness.Config{
		Quick: *quick,
		Params: simnet.Params{
			TauS:  simnet.Time(*taus),
			Alpha: simnet.Time(*alpha),
			Mu:    *mu,
			D:     simnet.Time(*d),
		},
		Workers:       *workers,
		EngineWorkers: *engineW,
		Stats:         stats,
		Metrics:       shared,
		Trace:         trace,
		Cancel:        ctx.Done(),
	}

	exps := harness.All()
	if *run != "" {
		e, err := harness.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	reports := harness.RunExperiments(exps, cfg)
	elapsed := time.Since(start)
	stopProf()

	interrupted := ctx.Err() != nil
	failures := 0
	skipped := 0
	for _, r := range reports {
		if errors.Is(r.Err, harness.ErrCanceled) {
			skipped++
			continue
		}
		fmt.Printf("=== %s (%s): %s ===\n", r.ID, r.Paper, r.Title)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "FAILED %s: %v\n\n", r.ID, r.Err)
			failures++
			continue
		}
		for _, t := range r.Tables {
			t.Render(os.Stdout)
			fmt.Println()
		}
	}

	if err := traceDone(); err != nil {
		fmt.Fprintln(os.Stderr, "ihcbench:", err)
		os.Exit(1)
	}
	if shared != nil {
		fmt.Printf("=== metrics ===\n%s\n", shared.Snapshot().Summary())
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if trace != nil {
		w = 1
	}
	fmt.Fprintf(os.Stderr, "%s; %v elapsed on %d worker(s)\n",
		stats.Summary(), elapsed.Round(time.Millisecond), w)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "ihcbench: interrupted; %d experiment(s) skipped, completed tables flushed\n", skipped)
		os.Exit(3)
	}
}

// openTrace builds the requested trace exporter; done flushes and
// closes. Both are no-ops when no trace was requested.
func openTrace(path, format string) (simnet.Observer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	var w io.Writer = os.Stdout
	var file *os.File
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		w, file = f, f
	}
	closeFile := func() error {
		if file != nil {
			return file.Close()
		}
		return nil
	}
	switch format {
	case "jsonl":
		j := observe.NewJSONL(w)
		return j, func() error {
			if err := j.Flush(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		}, nil
	case "chrome":
		ct := observe.NewChromeTrace(w)
		return ct, func() error {
			if err := ct.Close(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		}, nil
	}
	closeFile()
	return nil, nil, fmt.Errorf("unknown -tracefmt %q (want jsonl or chrome)", format)
}
